#include "trace/chunked.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "workloads/rodinia.h"

namespace stemroot {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Profiled deterministic trace: durations derived from seq so every
/// field of the columnar payload carries distinguishable data.
KernelTrace MakeTrace(size_t min_invocations = 0) {
  KernelTrace trace = workloads::MakeRodinia("gaussian", 42, 0.05);
  EXPECT_GE(trace.NumInvocations(), min_invocations);
  for (auto& inv : trace.MutableInvocations())
    inv.duration_us = static_cast<double>(inv.seq + 1) * 0.25;
  return trace;
}

void ExpectInvocationEq(const KernelInvocation& a, const KernelInvocation& b) {
  EXPECT_EQ(a.kernel_id, b.kernel_id);
  EXPECT_EQ(a.context_id, b.context_id);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.launch, b.launch);
  EXPECT_EQ(a.behavior.instructions, b.behavior.instructions);
  EXPECT_EQ(a.behavior.footprint_bytes, b.behavior.footprint_bytes);
  EXPECT_EQ(a.behavior.mem_fraction, b.behavior.mem_fraction);
  EXPECT_EQ(a.behavior.shared_fraction, b.behavior.shared_fraction);
  EXPECT_EQ(a.behavior.locality, b.behavior.locality);
  EXPECT_EQ(a.behavior.coalescing, b.behavior.coalescing);
  EXPECT_EQ(a.behavior.branch_divergence, b.behavior.branch_divergence);
  EXPECT_EQ(a.behavior.fp16_fraction, b.behavior.fp16_fraction);
  EXPECT_EQ(a.behavior.fp32_fraction, b.behavior.fp32_fraction);
  EXPECT_EQ(a.behavior.ilp, b.behavior.ilp);
  EXPECT_EQ(a.behavior.input_scale, b.behavior.input_scale);
  EXPECT_EQ(a.behavior.store_fraction, b.behavior.store_fraction);
  EXPECT_EQ(a.duration_us, b.duration_us);
}

void ExpectTraceEq(const KernelTrace& a, const KernelTrace& b) {
  EXPECT_EQ(a.WorkloadName(), b.WorkloadName());
  ASSERT_EQ(a.NumKernelTypes(), b.NumKernelTypes());
  for (uint32_t k = 0; k < a.NumKernelTypes(); ++k) {
    EXPECT_EQ(a.Type(k).name, b.Type(k).name);
    EXPECT_EQ(a.Type(k).num_basic_blocks, b.Type(k).num_basic_blocks);
    EXPECT_EQ(a.Type(k).block_weights, b.Type(k).block_weights);
  }
  ASSERT_EQ(a.NumInvocations(), b.NumInvocations());
  for (size_t i = 0; i < a.NumInvocations(); ++i)
    ExpectInvocationEq(a.At(i), b.At(i));
}

// ---------------------------------------------------------------------------
// Chunk payload encode/decode

TEST(ChunkPayloadTest, RoundTripPreservesEveryColumn) {
  const KernelTrace trace = MakeTrace(3);
  const auto invocations = InMemoryChunkSource(trace, 64).Chunk(0);
  const std::string payload = EncodeChunk(invocations);
  EXPECT_EQ(payload.size(),
            8 + invocations.size() * ChunkWireBytesPerInvocation());
  const std::vector<KernelInvocation> decoded = DecodeChunk(payload, 0);
  ASSERT_EQ(decoded.size(), invocations.size());
  for (size_t i = 0; i < decoded.size(); ++i)
    ExpectInvocationEq(decoded[i], invocations[i]);
}

TEST(ChunkPayloadTest, EmptyChunkRoundTrips) {
  const std::string payload = EncodeChunk({});
  EXPECT_EQ(payload.size(), 8u);  // just the u64 count
  EXPECT_TRUE(DecodeChunk(payload, 0).empty());
}

TEST(ChunkPayloadTest, SingleInvocationRoundTripsWithSeqRebase) {
  KernelInvocation inv;
  inv.kernel_id = 3;
  inv.seq = 999;  // encoder drops seq; decoder rebuilds from first_seq
  inv.duration_us = 7.5;
  const std::string payload =
      EncodeChunk(std::span<const KernelInvocation>(&inv, 1));
  const auto decoded = DecodeChunk(payload, 12345);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].seq, 12345u);
  EXPECT_EQ(decoded[0].kernel_id, 3u);
  EXPECT_EQ(decoded[0].duration_us, 7.5);
}

TEST(ChunkPayloadTest, HugeCountPrefixThrowsWithoutAllocating) {
  // A hostile count prefix far beyond the payload bytes must throw
  // std::runtime_error from the bounds check, never reach a
  // count-driven allocation (the serialize.cc hardening contract
  // applied to the chunk layer).
  std::string payload = EncodeChunk({});
  payload.resize(8);
  const uint64_t huge = ~uint64_t{0} / 2;
  payload.replace(0, 8, reinterpret_cast<const char*>(&huge), 8);
  EXPECT_THROW(DecodeChunk(payload, 0), std::runtime_error);
}

TEST(ChunkPayloadTest, TruncatedAndOversizedPayloadsThrow) {
  const KernelTrace trace = MakeTrace(2);
  const auto invocations = InMemoryChunkSource(trace, 8).Chunk(0);
  const std::string payload = EncodeChunk(invocations);
  EXPECT_THROW(DecodeChunk(std::string_view(payload).substr(0, 4), 0),
               std::runtime_error);
  EXPECT_THROW(
      DecodeChunk(std::string_view(payload).substr(0, payload.size() - 1), 0),
      std::runtime_error);
  EXPECT_THROW(DecodeChunk(payload + "x", 0), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Writer + reader round trips

TEST(ChunkedFileTest, RoundTripWithPartialLastChunk) {
  const KernelTrace trace = MakeTrace(5);
  const std::string path = TempPath("partial_last.srtc");
  // A capacity that does not divide the trace: the last chunk is partial.
  const uint64_t cap = trace.NumInvocations() / 2 + 1;
  ASSERT_NE(trace.NumInvocations() % cap, 0u);
  EXPECT_EQ(SpillTraceChunked(trace, path, cap), 2u);

  const ChunkedTraceReader reader(path);
  EXPECT_EQ(reader.ChunkCapacity(), cap);
  EXPECT_EQ(reader.NumInvocations(), trace.NumInvocations());
  ASSERT_EQ(reader.NumChunks(), 2u);
  EXPECT_EQ(reader.Chunk(0).count, cap);
  EXPECT_EQ(reader.Chunk(1).count, trace.NumInvocations() - cap);
  for (size_t i = 0; i < reader.NumChunks(); ++i)
    EXPECT_TRUE(reader.VerifyChunk(i));
  ExpectTraceEq(AssembleTrace(FileChunkSource(path)), trace);
}

TEST(ChunkedFileTest, SingleInvocationFileRoundTrips) {
  KernelTrace trace("one");
  const uint32_t k = trace.InternKernel("solo");
  KernelInvocation inv;
  inv.kernel_id = k;
  inv.duration_us = 3.0;
  trace.Add(inv);
  const std::string path = TempPath("single.srtc");
  EXPECT_EQ(SpillTraceChunked(trace, path, 4), 1u);
  const ChunkedTraceReader reader(path);
  ASSERT_EQ(reader.NumChunks(), 1u);
  EXPECT_EQ(reader.Chunk(0).count, 1u);
  ExpectTraceEq(AssembleTrace(FileChunkSource(path)), trace);
}

TEST(ChunkedFileTest, EmptyTraceRoundTripsWithZeroChunks) {
  KernelTrace trace("empty");
  trace.InternKernel("unused");
  const std::string path = TempPath("empty.srtc");
  EXPECT_EQ(SpillTraceChunked(trace, path, 16), 0u);
  const ChunkedTraceReader reader(path);
  EXPECT_EQ(reader.NumChunks(), 0u);
  EXPECT_EQ(reader.NumInvocations(), 0u);
  EXPECT_EQ(reader.Header().WorkloadName(), "empty");
  EXPECT_EQ(reader.Header().NumKernelTypes(), 1u);
  EXPECT_EQ(AssembleTrace(FileChunkSource(path)).NumInvocations(), 0u);
}

TEST(ChunkedFileTest, ExactMultipleCapacityHasNoPartialChunk) {
  KernelTrace trace("exact");
  const uint32_t k = trace.InternKernel("k");
  for (int i = 0; i < 8; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.duration_us = 1.0 + i;
    trace.Add(inv);
  }
  const std::string path = TempPath("exact.srtc");
  EXPECT_EQ(SpillTraceChunked(trace, path, 4), 2u);
  const ChunkedTraceReader reader(path);
  EXPECT_EQ(reader.Chunk(0).count, 4u);
  EXPECT_EQ(reader.Chunk(1).count, 4u);
  ExpectTraceEq(AssembleTrace(FileChunkSource(path)), trace);
}

TEST(ChunkedFileTest, ReadChunkRebuildsGlobalSeq) {
  const KernelTrace trace = MakeTrace(5);
  const std::string path = TempPath("seq.srtc");
  const uint64_t cap = 3;
  SpillTraceChunked(trace, path, cap);
  const ChunkedTraceReader reader(path);
  for (size_t i = 0; i < reader.NumChunks(); ++i) {
    const auto chunk = reader.ReadChunk(i);
    for (size_t j = 0; j < chunk.size(); ++j)
      EXPECT_EQ(chunk[j].seq, i * cap + j);
  }
}

TEST(ChunkedFileTest, WriterBatchAndSingleAppendsAgree) {
  const KernelTrace trace = MakeTrace(4);
  const std::string batch_path = TempPath("batch.srtc");
  const std::string single_path = TempPath("single_append.srtc");
  SpillTraceChunked(trace, batch_path, 7);  // batch Append under the hood
  {
    ChunkedTraceWriter writer(single_path, trace, 7);
    for (size_t i = 0; i < trace.NumInvocations(); ++i)
      writer.Append(trace.At(i));
    writer.Finish();
  }
  std::ifstream a(batch_path, std::ios::binary);
  std::ifstream b(single_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------------
// Corruption: throw on read, false on verify, reject on open

TEST(ChunkedFileTest, CorruptChunkDigestIsDetectedPerChunk) {
  const KernelTrace trace = MakeTrace(5);
  const std::string path = TempPath("corrupt_chunk.srtc");
  SpillTraceChunked(trace, path, trace.NumInvocations() / 2 + 1);
  ChunkInfo second;
  {
    const ChunkedTraceReader reader(path);
    ASSERT_EQ(reader.NumChunks(), 2u);
    second = reader.Chunk(1);
  }
  {
    // Flip one byte inside chunk 1's payload; chunk 0 stays intact.
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(second.offset + 8));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(second.offset + 8));
    file.put(static_cast<char>(byte ^ 0x5a));
  }
  const ChunkedTraceReader reader(path);  // footer still consistent
  EXPECT_TRUE(reader.VerifyChunk(0));
  EXPECT_FALSE(reader.VerifyChunk(1));
  EXPECT_NO_THROW(reader.ReadChunk(0));
  EXPECT_THROW(reader.ReadChunk(1), std::runtime_error);
  EXPECT_THROW(AssembleTrace(FileChunkSource(path)), std::runtime_error);
}

TEST(ChunkedFileTest, TruncatedFileIsRejectedAtOpen) {
  const KernelTrace trace = MakeTrace(2);
  const std::string full = TempPath("trunc_full.srtc");
  SpillTraceChunked(trace, full, 8);
  std::ifstream in(full, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  // Chop at several depths: inside the trailer, inside the footer, and
  // down to a stub shorter than any trailer. All must throw at open.
  for (const size_t keep :
       {bytes.size() - 1, bytes.size() - 40, bytes.size() / 2, size_t{10}}) {
    const std::string cut = TempPath("trunc_cut.srtc");
    std::ofstream(cut, std::ios::binary) << bytes.substr(0, keep);
    EXPECT_THROW(ChunkedTraceReader{cut}, std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(ChunkedFileTest, MissingFileAndGarbageAreRejected) {
  EXPECT_THROW(ChunkedTraceReader{"/nonexistent/x.srtc"},
               std::runtime_error);
  const std::string path = TempPath("garbage.srtc");
  std::ofstream(path, std::ios::binary)
      << std::string(4096, '\x5a');  // big enough to hold a fake trailer
  EXPECT_THROW(ChunkedTraceReader{path}, std::runtime_error);
}

TEST(ChunkedFileTest, UnfinishedWriterLeavesRejectedFile) {
  const KernelTrace trace = MakeTrace(2);
  const std::string path = TempPath("unfinished.srtc");
  {
    ChunkedTraceWriter writer(path, trace, 4);
    writer.Append(trace.At(0));
    // No Finish(): destructor finishes best-effort -- emulate a crash by
    // writing a second, footerless file instead.
  }
  const std::string crashed = TempPath("crashed.srtc");
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 36u);
    std::ofstream(crashed, std::ios::binary)
        << bytes.substr(0, bytes.size() - 36);  // strip the trailer
  }
  EXPECT_THROW(ChunkedTraceReader{crashed}, std::runtime_error);
}

// ---------------------------------------------------------------------------
// Chunk sources

TEST(ChunkSourceTest, InMemoryAndFileChunksAreByteIdentical) {
  const KernelTrace trace = MakeTrace(5);
  const std::string path = TempPath("byte_identical.srtc");
  const uint64_t cap = trace.NumInvocations() / 3 + 1;
  SpillTraceChunked(trace, path, cap);
  const InMemoryChunkSource mem(trace, cap);
  const FileChunkSource file(path);
  ASSERT_EQ(mem.NumChunks(), file.NumChunks());
  for (size_t i = 0; i < mem.NumChunks(); ++i) {
    EXPECT_EQ(EncodeChunk(mem.Chunk(i)), file.Reader().ReadChunkPayload(i));
  }
  ExpectTraceEq(AssembleTrace(mem), AssembleTrace(file));
}

TEST(ChunkSourceTest, ReplicatedTilesBaseTraceDeterministically) {
  const KernelTrace base = MakeTrace(3);
  const uint64_t n = base.NumInvocations();
  const uint64_t total = 2 * n + 3;  // partial final tile
  const ReplicatedChunkSource source(base, total, n);
  EXPECT_EQ(source.NumInvocations(), total);
  EXPECT_EQ(source.NumChunks(), 3u);
  uint64_t seen = 0;
  for (size_t i = 0; i < source.NumChunks(); ++i) {
    const auto chunk = source.Chunk(i);
    for (const KernelInvocation& inv : chunk) {
      EXPECT_EQ(inv.seq, seen);
      KernelInvocation expected = base.At(seen % n);
      expected.seq = seen;
      ExpectInvocationEq(inv, expected);
      ++seen;
    }
    // Determinism: re-materializing yields byte-identical chunks.
    EXPECT_EQ(EncodeChunk(chunk), EncodeChunk(source.Chunk(i)));
  }
  EXPECT_EQ(seen, total);
}

TEST(ChunkSourceTest, ResidentBudgetIsIndependentOfLogicalSize) {
  const KernelTrace base = MakeTrace(1);
  const ReplicatedChunkSource small(base, 1000, 256);
  const ReplicatedChunkSource huge(base, 1000000000ull, 256);
  EXPECT_GT(small.ResidentBudgetBytes(), 0u);
  // The streaming memory contract: the budget scales with the chunk
  // capacity and header, never with the logical invocation count.
  EXPECT_EQ(small.ResidentBudgetBytes(), huge.ResidentBudgetBytes());
  const ReplicatedChunkSource wider(base, 1000, 512);
  EXPECT_GT(wider.ResidentBudgetBytes(), small.ResidentBudgetBytes());
}

TEST(ChunkSourceTest, InMemorySourceCoversWholeTraceOnce) {
  const KernelTrace trace = MakeTrace(4);
  const InMemoryChunkSource source(trace, 3);
  uint64_t seen = 0;
  for (size_t i = 0; i < source.NumChunks(); ++i) {
    for (const KernelInvocation& inv : source.Chunk(i)) {
      ExpectInvocationEq(inv, trace.At(seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, trace.NumInvocations());
}

}  // namespace
}  // namespace stemroot
