#include "trace/kernel.h"

#include <gtest/gtest.h>

#include <numeric>

namespace stemroot {
namespace {

TEST(LaunchConfigTest, GeometryDerivations) {
  LaunchConfig launch;
  launch.grid_x = 4;
  launch.grid_y = 2;
  launch.block_x = 96;
  EXPECT_EQ(launch.NumCtas(), 8u);
  EXPECT_EQ(launch.ThreadsPerCta(), 96u);
  EXPECT_EQ(launch.TotalThreads(), 768u);
  EXPECT_EQ(launch.WarpsPerCta(), 3u);
  EXPECT_EQ(launch.TotalWarps(), 24u);
}

TEST(LaunchConfigTest, PartialWarpRoundsUp) {
  LaunchConfig launch;
  launch.block_x = 33;
  EXPECT_EQ(launch.WarpsPerCta(), 2u);
}

TEST(KernelBehaviorTest, InstructionPartitionsSum) {
  KernelBehavior b;
  b.instructions = 1000000;
  b.mem_fraction = 0.2f;
  b.shared_fraction = 0.1f;
  const uint64_t total = b.ComputeInstructions() +
                         b.GlobalMemInstructions() +
                         b.SharedMemInstructions();
  EXPECT_NEAR(static_cast<double>(total), 1e6, 2.0);
  EXPECT_EQ(b.GlobalMemInstructions(), 200000u);
  EXPECT_EQ(b.SharedMemInstructions(), 100000u);
}

TEST(KernelBehaviorTest, ValidateAcceptsDefaults) {
  KernelBehavior b;
  b.instructions = 100;
  EXPECT_NO_THROW(b.Validate());
}

TEST(KernelBehaviorTest, ValidateRejectsBadFractions) {
  KernelBehavior b;
  b.mem_fraction = 1.5f;
  EXPECT_THROW(b.Validate(), std::invalid_argument);

  KernelBehavior c;
  c.mem_fraction = 0.7f;
  c.shared_fraction = 0.5f;  // sum > 1
  EXPECT_THROW(c.Validate(), std::invalid_argument);

  KernelBehavior d;
  d.fp16_fraction = 0.6f;
  d.fp32_fraction = 0.6f;  // sum > 1
  EXPECT_THROW(d.Validate(), std::invalid_argument);

  KernelBehavior e;
  e.ilp = 0.5f;
  EXPECT_THROW(e.Validate(), std::invalid_argument);

  KernelBehavior f;
  f.input_scale = 0.0f;
  EXPECT_THROW(f.Validate(), std::invalid_argument);
}

TEST(KernelMetricsTest, GetSetRoundTripAllIndices) {
  KernelMetrics m;
  for (size_t i = 0; i < KernelMetrics::kCount; ++i) {
    m.Set(i, static_cast<double>(i) + 0.5);
  }
  for (size_t i = 0; i < KernelMetrics::kCount; ++i) {
    EXPECT_DOUBLE_EQ(m.Get(i), static_cast<double>(i) + 0.5);
    EXPECT_NE(KernelMetrics::Name(i), nullptr);
  }
  EXPECT_THROW(m.Get(KernelMetrics::kCount), std::out_of_range);
  EXPECT_THROW(m.Set(KernelMetrics::kCount, 0.0), std::out_of_range);
  EXPECT_THROW(KernelMetrics::Name(KernelMetrics::kCount),
               std::out_of_range);
}

TEST(KernelMetricsTest, RateClassificationMatchesPaperCategories) {
  // Rates: l1_hit_rate(4), l2_read_hit_rate(6), warp_execution_eff(10),
  // branch_eff(11), achieved_occupancy(12). Everything else is a count.
  size_t rates = 0;
  for (size_t i = 0; i < KernelMetrics::kCount; ++i)
    if (KernelMetrics::IsRate(i)) ++rates;
  EXPECT_EQ(rates, 5u);
  EXPECT_TRUE(KernelMetrics::IsRate(4));
  EXPECT_FALSE(KernelMetrics::IsRate(0));
  EXPECT_FALSE(KernelMetrics::IsRate(8));
}

TEST(KernelTypeTest, SynthesizeIsDeterministicPerName) {
  const KernelType a = KernelType::Synthesize("sgemm", 12);
  const KernelType b = KernelType::Synthesize("sgemm", 12);
  const KernelType c = KernelType::Synthesize("winograd", 12);
  EXPECT_EQ(a.block_weights, b.block_weights);
  EXPECT_NE(a.block_weights, c.block_weights);
}

TEST(KernelTypeTest, BlockWeightsNormalized) {
  const KernelType type = KernelType::Synthesize("bn_fw_inf", 8);
  ASSERT_EQ(type.block_weights.size(), 8u);
  const double sum = std::accumulate(type.block_weights.begin(),
                                     type.block_weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  for (float w : type.block_weights) EXPECT_GT(w, 0.0f);
}

TEST(KernelTypeTest, ZeroBlocksRejected) {
  EXPECT_THROW(KernelType::Synthesize("x", 0), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot
