#include "trace/serialize.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/csv.h"
#include "workloads/rodinia.h"

namespace stemroot {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, BinaryRoundTripPreservesEverything) {
  KernelTrace original = workloads::MakeRodinia("gaussian", 42, 0.05);
  for (auto& inv : original.MutableInvocations())
    inv.duration_us = static_cast<double>(inv.seq + 1) * 0.5;

  const std::string path = TempPath("trace_roundtrip.bin");
  SaveTraceBinary(original, path);
  const KernelTrace loaded = LoadTraceBinary(path);

  EXPECT_EQ(loaded.WorkloadName(), original.WorkloadName());
  ASSERT_EQ(loaded.NumInvocations(), original.NumInvocations());
  ASSERT_EQ(loaded.NumKernelTypes(), original.NumKernelTypes());
  for (size_t i = 0; i < original.NumInvocations(); ++i) {
    const KernelInvocation& a = original.At(i);
    const KernelInvocation& b = loaded.At(i);
    EXPECT_EQ(a.kernel_id, b.kernel_id);
    EXPECT_EQ(a.context_id, b.context_id);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.launch, b.launch);
    EXPECT_EQ(a.behavior.instructions, b.behavior.instructions);
    EXPECT_EQ(a.behavior.footprint_bytes, b.behavior.footprint_bytes);
    EXPECT_FLOAT_EQ(a.behavior.locality, b.behavior.locality);
    EXPECT_DOUBLE_EQ(a.duration_us, b.duration_us);
  }
  for (uint32_t k = 0; k < original.NumKernelTypes(); ++k) {
    EXPECT_EQ(loaded.Type(k).name, original.Type(k).name);
    EXPECT_EQ(loaded.Type(k).block_weights,
              original.Type(k).block_weights);
  }
}

TEST(SerializeTest, LoadRejectsMissingFile) {
  EXPECT_THROW(LoadTraceBinary("/nonexistent/trace.bin"),
               std::runtime_error);
}

TEST(SerializeTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  std::ofstream(path) << "NOPE this is not a trace";
  EXPECT_THROW(LoadTraceBinary(path), std::runtime_error);
}

TEST(SerializeTest, LoadRejectsTruncatedFile) {
  KernelTrace trace = workloads::MakeRodinia("lud", 1, 0.05);
  const std::string full_path = TempPath("full.bin");
  SaveTraceBinary(trace, full_path);

  std::ifstream in(full_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut_path = TempPath("cut.bin");
  std::ofstream(cut_path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(LoadTraceBinary(cut_path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hostile length/count prefixes: every prefix in the SRTR layout is
// bounds-checked against the bytes actually remaining, so a corrupt or
// truncated prefix throws std::runtime_error *before* any allocation is
// sized from it. Each test below corrupts exactly one prefix in a valid
// byte string and expects the deserializer to refuse it.

/// Overwrite a little-endian POD at `offset` in serialized trace bytes.
template <typename T>
std::string CorruptAt(std::string bytes, size_t offset, T value) {
  EXPECT_LE(offset + sizeof(T), bytes.size());
  bytes.replace(offset, sizeof(T), reinterpret_cast<const char*>(&value),
                sizeof(T));
  return bytes;
}

/// A tiny trace with deterministic prefix offsets: workload "wl" (2
/// bytes), one interned kernel type, `n` invocations.
KernelTrace TinyTrace(int n) {
  KernelTrace trace("wl");
  const uint32_t k = trace.InternKernel("k");
  for (int i = 0; i < n; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.duration_us = 1.0 + i;
    trace.Add(inv);
  }
  return trace;
}

// Prefix offsets in TinyTrace bytes: magic(4) version(4), then
// workload-name length at 8, num_types at 12+2, first type-name length
// at 18, and (after name "k", num_basic_blocks) the block-weight count
// at 18 + 4 + 1 + 4 = 27.
constexpr size_t kWorkloadLenOffset = 8;
constexpr size_t kNumTypesOffset = 14;
constexpr size_t kTypeNameLenOffset = 18;
constexpr size_t kWeightCountOffset = 27;

TEST(SerializeTest, CorruptWorkloadNameLengthThrows) {
  const std::string bytes = SerializeTrace(TinyTrace(2));
  // Implausibly huge (over the 1 MiB string cap)...
  EXPECT_THROW(DeserializeTrace(CorruptAt<uint32_t>(
                   bytes, kWorkloadLenOffset, 0x7fffffffu)),
               std::runtime_error);
  // ...and plausible-but-past-the-end: under the cap, over the payload.
  EXPECT_THROW(DeserializeTrace(CorruptAt<uint32_t>(
                   bytes, kWorkloadLenOffset,
                   static_cast<uint32_t>(bytes.size() + 1))),
               std::runtime_error);
}

TEST(SerializeTest, CorruptKernelTypeCountThrows) {
  const std::string bytes = SerializeTrace(TinyTrace(2));
  EXPECT_THROW(DeserializeTrace(
                   CorruptAt<uint32_t>(bytes, kNumTypesOffset, 0xffffffu)),
               std::runtime_error);
}

TEST(SerializeTest, CorruptTypeNameLengthThrows) {
  const std::string bytes = SerializeTrace(TinyTrace(2));
  EXPECT_THROW(DeserializeTrace(CorruptAt<uint32_t>(
                   bytes, kTypeNameLenOffset,
                   static_cast<uint32_t>(bytes.size()))),
               std::runtime_error);
}

TEST(SerializeTest, CorruptBlockWeightCountThrows) {
  const std::string bytes = SerializeTrace(TinyTrace(2));
  EXPECT_THROW(DeserializeTrace(
                   CorruptAt<uint32_t>(bytes, kWeightCountOffset, 0xffffffu)),
               std::runtime_error);
}

TEST(SerializeTest, CorruptInvocationCountThrows) {
  // The u64 invocation count sits 8 bytes before the invocation records;
  // derive its offset from an empty-timeline encoding of the same header
  // so the test never hardcodes record sizes.
  const std::string header_only = SerializeTrace(TinyTrace(0));
  const size_t count_offset = header_only.size() - sizeof(uint64_t);
  const std::string bytes = SerializeTrace(TinyTrace(3));
  // A count claiming far more records than the payload holds must throw
  // from the bounds check, never reach the count-sized Reserve.
  EXPECT_THROW(DeserializeTrace(CorruptAt<uint64_t>(
                   bytes, count_offset, uint64_t{1} << 50)),
               std::runtime_error);
  EXPECT_THROW(
      DeserializeTrace(CorruptAt<uint64_t>(bytes, count_offset, 4)),
      std::runtime_error);
  // Undercounting leaves trailing bytes, which the cache contract also
  // rejects (a payload must be exactly one trace).
  EXPECT_THROW(
      DeserializeTrace(CorruptAt<uint64_t>(bytes, count_offset, 2)),
      std::runtime_error);
}

TEST(SerializeTest, TruncationAtEveryByteThrowsNotCrashes) {
  const std::string bytes = SerializeTrace(TinyTrace(2));
  for (size_t keep = 0; keep < bytes.size(); ++keep)
    EXPECT_THROW(DeserializeTrace(bytes.substr(0, keep)),
                 std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
}

TEST(SerializeTest, TimelineCsvHasHeaderAndAllRows) {
  KernelTrace trace("wl");
  const uint32_t k = trace.InternKernel("sgemm");
  for (int i = 0; i < 3; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.behavior.instructions = 100;
    inv.duration_us = 1.0;
    trace.Add(inv);
  }
  const std::string path = TempPath("timeline.csv");
  ExportTimelineCsv(trace, path);
  const CsvTable table = CsvTable::ReadFile(path);
  ASSERT_EQ(table.rows.size(), 4u);  // header + 3
  EXPECT_EQ(table.rows[0][0], "kernel");
  EXPECT_EQ(table.rows[1][0], "sgemm");
}

TEST(SerializeTest, HostileKernelNamesRoundTripThroughCsv) {
  // Kernel names are the one externally-controlled CSV cell. RFC-4180
  // quoting in CsvWriter::WriteRow must carry commas, quotes, newlines,
  // and leading/trailing spaces through CsvTable's parser unchanged.
  const std::vector<std::string> hostile = {
      "plain",
      "with,comma",
      "with\"quote",
      "with\nnewline",
      " padded ",
      "\"quoted,mix\"\nall",
  };
  KernelTrace trace("hostile");
  for (const std::string& name : hostile) {
    KernelInvocation inv;
    inv.kernel_id = trace.InternKernel(name);
    inv.duration_us = 1.0;
    trace.Add(inv);
  }
  const std::string path = TempPath("hostile.csv");
  ExportTimelineCsv(trace, path);
  const CsvTable table = CsvTable::ReadFile(path);
  ASSERT_EQ(table.rows.size(), hostile.size() + 1);  // header + rows
  for (size_t i = 0; i < hostile.size(); ++i)
    EXPECT_EQ(table.rows[i + 1][0], hostile[i]) << "row " << i;
}

}  // namespace
}  // namespace stemroot
