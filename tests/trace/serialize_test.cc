#include "trace/serialize.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/csv.h"
#include "workloads/rodinia.h"

namespace stemroot {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, BinaryRoundTripPreservesEverything) {
  KernelTrace original = workloads::MakeRodinia("gaussian", 42, 0.05);
  for (auto& inv : original.MutableInvocations())
    inv.duration_us = static_cast<double>(inv.seq + 1) * 0.5;

  const std::string path = TempPath("trace_roundtrip.bin");
  SaveTraceBinary(original, path);
  const KernelTrace loaded = LoadTraceBinary(path);

  EXPECT_EQ(loaded.WorkloadName(), original.WorkloadName());
  ASSERT_EQ(loaded.NumInvocations(), original.NumInvocations());
  ASSERT_EQ(loaded.NumKernelTypes(), original.NumKernelTypes());
  for (size_t i = 0; i < original.NumInvocations(); ++i) {
    const KernelInvocation& a = original.At(i);
    const KernelInvocation& b = loaded.At(i);
    EXPECT_EQ(a.kernel_id, b.kernel_id);
    EXPECT_EQ(a.context_id, b.context_id);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.launch, b.launch);
    EXPECT_EQ(a.behavior.instructions, b.behavior.instructions);
    EXPECT_EQ(a.behavior.footprint_bytes, b.behavior.footprint_bytes);
    EXPECT_FLOAT_EQ(a.behavior.locality, b.behavior.locality);
    EXPECT_DOUBLE_EQ(a.duration_us, b.duration_us);
  }
  for (uint32_t k = 0; k < original.NumKernelTypes(); ++k) {
    EXPECT_EQ(loaded.Type(k).name, original.Type(k).name);
    EXPECT_EQ(loaded.Type(k).block_weights,
              original.Type(k).block_weights);
  }
}

TEST(SerializeTest, LoadRejectsMissingFile) {
  EXPECT_THROW(LoadTraceBinary("/nonexistent/trace.bin"),
               std::runtime_error);
}

TEST(SerializeTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  std::ofstream(path) << "NOPE this is not a trace";
  EXPECT_THROW(LoadTraceBinary(path), std::runtime_error);
}

TEST(SerializeTest, LoadRejectsTruncatedFile) {
  KernelTrace trace = workloads::MakeRodinia("lud", 1, 0.05);
  const std::string full_path = TempPath("full.bin");
  SaveTraceBinary(trace, full_path);

  std::ifstream in(full_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut_path = TempPath("cut.bin");
  std::ofstream(cut_path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(LoadTraceBinary(cut_path), std::runtime_error);
}

TEST(SerializeTest, TimelineCsvHasHeaderAndAllRows) {
  KernelTrace trace("wl");
  const uint32_t k = trace.InternKernel("sgemm");
  for (int i = 0; i < 3; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.behavior.instructions = 100;
    inv.duration_us = 1.0;
    trace.Add(inv);
  }
  const std::string path = TempPath("timeline.csv");
  ExportTimelineCsv(trace, path);
  const CsvTable table = CsvTable::ReadFile(path);
  ASSERT_EQ(table.rows.size(), 4u);  // header + 3
  EXPECT_EQ(table.rows[0][0], "kernel");
  EXPECT_EQ(table.rows[1][0], "sgemm");
}

}  // namespace
}  // namespace stemroot
