#include "trace/trace.h"

#include <gtest/gtest.h>

namespace stemroot {
namespace {

KernelInvocation MakeInvocation(uint32_t kernel_id, double duration = 1.0) {
  KernelInvocation inv;
  inv.kernel_id = kernel_id;
  inv.behavior.instructions = 1000;
  inv.duration_us = duration;
  return inv;
}

TEST(KernelTraceTest, InternReturnsStableIds) {
  KernelTrace trace("test");
  const uint32_t a = trace.InternKernel("sgemm");
  const uint32_t b = trace.InternKernel("relu");
  const uint32_t a2 = trace.InternKernel("sgemm");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(trace.NumKernelTypes(), 2u);
}

TEST(KernelTraceTest, AddAssignsSequenceNumbers) {
  KernelTrace trace("test");
  const uint32_t k = trace.InternKernel("k");
  for (int i = 0; i < 5; ++i) trace.Add(MakeInvocation(k));
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(trace.At(i).seq, i);
  EXPECT_EQ(trace.NumInvocations(), 5u);
  EXPECT_FALSE(trace.Empty());
}

TEST(KernelTraceTest, AddRejectsUnknownKernel) {
  KernelTrace trace("test");
  EXPECT_THROW(trace.Add(MakeInvocation(0)), std::invalid_argument);
}

TEST(KernelTraceTest, FindKernel) {
  KernelTrace trace("test");
  trace.InternKernel("a");
  EXPECT_EQ(trace.FindKernel("a"), 0);
  EXPECT_EQ(trace.FindKernel("missing"), -1);
}

TEST(KernelTraceTest, NamesResolve) {
  KernelTrace trace("test");
  const uint32_t k = trace.InternKernel("max_pool");
  trace.Add(MakeInvocation(k));
  EXPECT_EQ(trace.NameOf(trace.At(0)), "max_pool");
  EXPECT_EQ(trace.TypeOf(trace.At(0)).name, "max_pool");
}

TEST(KernelTraceTest, TotalDurationSums) {
  KernelTrace trace("test");
  const uint32_t k = trace.InternKernel("k");
  trace.Add(MakeInvocation(k, 1.5));
  trace.Add(MakeInvocation(k, 2.5));
  EXPECT_DOUBLE_EQ(trace.TotalDurationUs(), 4.0);
}

TEST(KernelTraceTest, GroupByKernelPreservesTimelineOrder) {
  KernelTrace trace("test");
  const uint32_t a = trace.InternKernel("a");
  const uint32_t b = trace.InternKernel("b");
  trace.Add(MakeInvocation(a));  // seq 0
  trace.Add(MakeInvocation(b));  // seq 1
  trace.Add(MakeInvocation(a));  // seq 2
  const auto groups = trace.GroupByKernel();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[a], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(groups[b], (std::vector<uint32_t>{1}));
}

TEST(KernelTraceTest, GroupByKernelIncludesEmptyGroups) {
  KernelTrace trace("test");
  trace.InternKernel("unused");
  const uint32_t used = trace.InternKernel("used");
  trace.Add(MakeInvocation(used));
  const auto groups = trace.GroupByKernel();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(groups[0].empty());
  EXPECT_EQ(groups[1].size(), 1u);
}

}  // namespace
}  // namespace stemroot
