#include "workloads/context_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace stemroot::workloads {
namespace {

WorkloadSpec TwoKernelSpec() {
  WorkloadSpec spec;
  spec.name = "toy";
  KernelSpec a{"alpha", 4, {}};
  ContextSpec a0;
  a0.base = ComputeBoundBehavior(1e6, 1 << 20);
  a0.launch.grid_x = 16;
  a0.launch.block_x = 128;
  a.contexts.push_back(a0);
  ContextSpec a1 = a0;
  a1.base.locality = 0.3f;
  a.contexts.push_back(a1);

  KernelSpec b{"beta", 4, {}};
  ContextSpec b0;
  b0.base = MemoryBoundBehavior(2e6, 2 << 20);
  b0.launch.grid_x = 8;
  b.contexts.push_back(b0);

  spec.kernels = {a, b};
  spec.graph = {{0, 0, 2}, {1, 0, 1}, {0, 1, 1}};
  spec.iterations = 25;
  return spec;
}

TEST(WorkloadSpecTest, TotalInvocationsGraphLoop) {
  const WorkloadSpec spec = TwoKernelSpec();
  EXPECT_EQ(spec.TotalInvocations(), 25u * 4u);
}

TEST(WorkloadSpecTest, ValidationCatchesBadGraph) {
  WorkloadSpec spec = TwoKernelSpec();
  spec.graph.push_back({5, 0, 1});  // bad kernel index
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = TwoKernelSpec();
  spec.graph.push_back({0, 7, 1});  // bad context index
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = TwoKernelSpec();
  spec.graph.push_back({0, 0, 0});  // zero repeat
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = TwoKernelSpec();
  spec.graph.clear();
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = TwoKernelSpec();
  spec.kernels.clear();
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(WorkloadSpecTest, ValidationCatchesBadMix) {
  WorkloadSpec spec = TwoKernelSpec();
  spec.schedule = ScheduleKind::kRandomMix;
  spec.random_invocations = 100;
  spec.mix_weights = {1.0};  // wrong arity (3 pairs exist)
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.mix_weights = {0.0, 0.0, 0.0};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.mix_weights = {1.0, 1.0, 1.0};
  spec.random_invocations = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(GenerateWorkloadTest, GraphLoopFollowsSchedule) {
  const WorkloadSpec spec = TwoKernelSpec();
  const KernelTrace trace = GenerateWorkload(spec, 3);
  ASSERT_EQ(trace.NumInvocations(), 100u);
  // Pattern per iteration: alpha(c0) x2, beta, alpha(c1).
  EXPECT_EQ(trace.NameOf(trace.At(0)), "alpha");
  EXPECT_EQ(trace.At(0).context_id, 0u);
  EXPECT_EQ(trace.NameOf(trace.At(2)), "beta");
  EXPECT_EQ(trace.NameOf(trace.At(3)), "alpha");
  EXPECT_EQ(trace.At(3).context_id, 1u);
}

TEST(GenerateWorkloadTest, DeterministicGivenSeed) {
  const WorkloadSpec spec = TwoKernelSpec();
  const KernelTrace a = GenerateWorkload(spec, 3);
  const KernelTrace b = GenerateWorkload(spec, 3);
  const KernelTrace c = GenerateWorkload(spec, 4);
  ASSERT_EQ(a.NumInvocations(), b.NumInvocations());
  bool any_diff_c = false;
  for (size_t i = 0; i < a.NumInvocations(); ++i) {
    EXPECT_EQ(a.At(i).behavior.instructions, b.At(i).behavior.instructions);
    any_diff_c |= a.At(i).behavior.instructions !=
                  c.At(i).behavior.instructions;
  }
  EXPECT_TRUE(any_diff_c);
}

TEST(GenerateWorkloadTest, InstructionJitterIsCentered) {
  WorkloadSpec spec = TwoKernelSpec();
  spec.kernels[0].contexts[0].instr_sigma = 0.1;
  const KernelTrace trace = GenerateWorkload(spec, 5);
  StreamingStats stats;
  for (const auto& inv : trace.Invocations())
    if (inv.kernel_id == 0 && inv.context_id == 0)
      stats.Add(static_cast<double>(inv.behavior.instructions));
  EXPECT_NEAR(stats.Mean() / 1e6, 1.0, 0.05);
  EXPECT_GT(stats.Cov(), 0.03);
}

TEST(GenerateWorkloadTest, RandomMixRespectsWeights) {
  WorkloadSpec spec = TwoKernelSpec();
  spec.schedule = ScheduleKind::kRandomMix;
  spec.random_invocations = 30000;
  // Pairs in kernel-major order: (a,c0), (a,c1), (b,c0).
  spec.mix_weights = {6.0, 3.0, 1.0};
  const KernelTrace trace = GenerateWorkload(spec, 7);
  size_t counts[3] = {0, 0, 0};
  for (const auto& inv : trace.Invocations()) {
    if (inv.kernel_id == 0)
      ++counts[inv.context_id];
    else
      ++counts[2];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 30000, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 30000, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 30000, 0.1, 0.02);
}

TEST(GenerateWorkloadTest, MutatorSeesIndexAndTotal) {
  WorkloadSpec spec = TwoKernelSpec();
  uint64_t seen_total = 0;
  spec.mutator = [&seen_total](uint64_t i, uint64_t total,
                               KernelInvocation& inv) {
    seen_total = total;
    if (i == 0) inv.behavior.instructions = 777;
  };
  const KernelTrace trace = GenerateWorkload(spec, 9);
  EXPECT_EQ(seen_total, 100u);
  EXPECT_EQ(trace.At(0).behavior.instructions, 777u);
  EXPECT_NE(trace.At(1).behavior.instructions, 777u);
}

TEST(ArchetypeTest, BehaviorsValidateAndDiffer) {
  const KernelBehavior compute = ComputeBoundBehavior(1e8, 1 << 20);
  const KernelBehavior memory = MemoryBoundBehavior(1e8, 1 << 20);
  const KernelBehavior irregular = IrregularBehavior(1e8, 1 << 20);
  EXPECT_NO_THROW(compute.Validate());
  EXPECT_NO_THROW(memory.Validate());
  EXPECT_NO_THROW(irregular.Validate());
  EXPECT_LT(compute.mem_fraction, memory.mem_fraction);
  EXPECT_LT(memory.coalescing, compute.coalescing);
  EXPECT_LT(irregular.coalescing, memory.coalescing);
  EXPECT_GT(compute.locality, memory.locality);
}

}  // namespace
}  // namespace stemroot::workloads
