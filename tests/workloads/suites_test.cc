#include "workloads/suite.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/huggingface.h"
#include "workloads/rodinia.h"

namespace stemroot::workloads {
namespace {

TEST(SuiteTest, TableTwoSuiteSizes) {
  // Paper Table 2: 13 Rodinia, 11 CASIO, 6 Huggingface workloads.
  EXPECT_EQ(RodiniaNames().size(), 13u);
  EXPECT_EQ(CasioNames().size(), 11u);
  EXPECT_EQ(HuggingfaceNames().size(), 6u);
}

TEST(SuiteTest, DispatchersCoverAllSuites) {
  for (const workloads::SuiteId id : AllSuites()) {
    EXPECT_FALSE(SuiteWorkloads(id).empty());
    EXPECT_NE(SuiteName(id), nullptr);
  }
  EXPECT_STREQ(SuiteName(SuiteId::kCasio), "CASIO");
}

TEST(SuiteTest, SuiteNamesRoundTripForEverySuite) {
  for (const workloads::SuiteId id : AllSuites()) {
    const char* token = ToName(id);
    ASSERT_NE(token, nullptr);
    const std::optional<SuiteId> parsed = SuiteFromName(token);
    ASSERT_TRUE(parsed.has_value()) << token;
    EXPECT_EQ(*parsed, id) << token;
  }
}

TEST(SuiteTest, SuiteFromNameIsCaseInsensitive) {
  EXPECT_EQ(SuiteFromName("CASIO"), SuiteId::kCasio);
  EXPECT_EQ(SuiteFromName("Rodinia"), SuiteId::kRodinia);
  EXPECT_EQ(SuiteFromName("HuggingFace"), SuiteId::kHuggingface);
  EXPECT_EQ(SuiteFromName("nope"), std::nullopt);
  EXPECT_EQ(SuiteFromName(""), std::nullopt);
}

TEST(SuiteTest, UnknownWorkloadsThrow) {
  EXPECT_THROW(RodiniaSpec("nope"), std::invalid_argument);
  EXPECT_THROW(CasioSpec("nope"), std::invalid_argument);
  EXPECT_THROW(HuggingfaceSpec("nope"), std::invalid_argument);
  EXPECT_THROW(RodiniaSpec("gaussian", 0.0), std::invalid_argument);
}

TEST(SuiteTest, EveryRodiniaWorkloadGenerates) {
  for (const std::string& name : RodiniaNames()) {
    const KernelTrace trace = MakeRodinia(name, 5, 0.2);
    EXPECT_GT(trace.NumInvocations(), 10u) << name;
    EXPECT_EQ(trace.WorkloadName(), name);
    for (const auto& inv : trace.Invocations())
      EXPECT_NO_THROW(inv.behavior.Validate());
  }
}

TEST(SuiteTest, EveryCasioWorkloadGenerates) {
  for (const std::string& name : CasioNames()) {
    const KernelTrace trace = MakeCasio(name, 5, 0.02);
    EXPECT_GT(trace.NumInvocations(), 50u) << name;
    EXPECT_GE(trace.NumKernelTypes(), 3u) << name;
  }
}

TEST(SuiteTest, EveryHuggingfaceWorkloadGenerates) {
  for (const std::string& name : HuggingfaceNames()) {
    const KernelTrace trace = MakeHuggingface(name, 5, 0.02);
    EXPECT_GT(trace.NumInvocations(), 100u) << name;
  }
}

TEST(SuiteTest, CasioKernelCountsAreMlScale) {
  // Table 2: CASIO averages ~64k kernel calls at full scale.
  double total = 0;
  for (const std::string& name : CasioNames())
    total += static_cast<double>(MakeCasio(name, 1, 1.0).NumInvocations());
  const double avg = total / CasioNames().size();
  EXPECT_GT(avg, 30000.0);
  EXPECT_LT(avg, 130000.0);
}

TEST(SuiteTest, HuggingfaceIsLargestSuite) {
  // At matched scale the HF workloads must dwarf CASIO (Table 2's
  // 11.6M vs 64k ordering; we generate 1:10 but the ratio holds).
  const size_t hf = MakeHuggingface("gpt2", 1, 0.1).NumInvocations();
  const size_t casio = MakeCasio("bert_infer", 1, 0.1).NumInvocations();
  EXPECT_GT(hf, casio * 5);
}

TEST(SuiteTest, HeartwallFirstInvocationIsTiny) {
  // Sec. 5.1: heartwall's first call executes ~1500x fewer instructions.
  const KernelTrace trace = MakeRodinia("heartwall", 3, 1.0);
  ASSERT_GE(trace.NumInvocations(), 2u);
  const double first =
      static_cast<double>(trace.At(0).behavior.instructions);
  const double second =
      static_cast<double>(trace.At(1).behavior.instructions);
  EXPECT_GT(second / first, 1000.0);
  EXPECT_LT(second / first, 2500.0);
}

TEST(SuiteTest, GaussianWorkDecaysTowardZero) {
  // Sec. 5.1: instruction counts decrease steadily, approaching zero.
  const KernelTrace trace = MakeRodinia("gaussian", 3, 1.0);
  const size_t n = trace.NumInvocations();
  const double early =
      static_cast<double>(trace.At(2).behavior.instructions);
  const double late =
      static_cast<double>(trace.At(n - 2).behavior.instructions);
  EXPECT_LT(late, early / 100.0);
}

TEST(SuiteTest, BfsWorkIsBellShaped) {
  const KernelTrace trace = MakeRodinia("bfs", 3, 1.0);
  const size_t n = trace.NumInvocations();
  const double start =
      static_cast<double>(trace.At(0).behavior.instructions);
  const double mid =
      static_cast<double>(trace.At(n / 2).behavior.instructions);
  const double end =
      static_cast<double>(trace.At(n - 1).behavior.instructions);
  EXPECT_GT(mid, start * 5);
  EXPECT_GT(mid, end * 5);
}

TEST(SuiteTest, PfFloatLikelihoodDominates) {
  // Sec. 5.1: certain particle-filter kernels are up to 100x longer.
  KernelTrace trace = MakeRodinia("pf_float", 3, 1.0);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);
  double likelihood = 0, smallest_kernel = 1e300;
  const auto groups = trace.GroupByKernel();
  for (uint32_t k = 0; k < groups.size(); ++k) {
    double mean = 0;
    for (uint32_t idx : groups[k]) mean += trace.At(idx).duration_us;
    mean /= static_cast<double>(groups[k].size());
    if (trace.Type(k).name == "likelihood_kernel") likelihood = mean;
    smallest_kernel = std::min(smallest_kernel, mean);
  }
  EXPECT_GT(likelihood / smallest_kernel, 20.0);
}

TEST(SuiteTest, CasioLayernormHasLocalityOnlyContexts) {
  // The pre-attention and pre-FFN layernorm contexts share instruction
  // counts (static signatures collide) but differ in locality -- the
  // Sec. 5.2 blind spot of instruction-level signatures.
  const KernelTrace trace = MakeCasio("bert_infer", 3, 0.05);
  const int64_t ln = trace.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  StreamingStats instr_c0, instr_c1, loc_c0, loc_c1;
  for (const auto& inv : trace.Invocations()) {
    if (inv.kernel_id != ln) continue;
    if (inv.context_id == 0) {
      instr_c0.Add(static_cast<double>(inv.behavior.instructions));
      loc_c0.Add(inv.behavior.locality);
    } else {
      instr_c1.Add(static_cast<double>(inv.behavior.instructions));
      loc_c1.Add(inv.behavior.locality);
    }
  }
  ASSERT_GT(instr_c0.Count(), 0u);
  ASSERT_GT(instr_c1.Count(), 0u);
  EXPECT_NEAR(instr_c0.Mean() / instr_c1.Mean(), 1.0, 0.05);
  EXPECT_GT(loc_c0.Mean() - loc_c1.Mean(), 0.1);
}

TEST(SuiteTest, TrainingWorkloadsIncludeOptimizerTail) {
  const KernelTrace trace = MakeCasio("bert_train", 3, 0.05);
  EXPECT_GE(trace.FindKernel("adam_update"), 0);
  const KernelTrace infer = MakeCasio("bert_infer", 3, 0.05);
  EXPECT_EQ(infer.FindKernel("adam_update"), -1);
}

TEST(SuiteTest, LlmWorkloadsHavePrefillAndDecodeContexts) {
  const KernelTrace trace = MakeHuggingface("gpt2", 3, 0.05);
  const int64_t attn = trace.FindKernel("fmha_cutlass_fwd");
  ASSERT_GE(attn, 0);
  bool saw_prefill = false, saw_decode = false;
  for (const auto& inv : trace.Invocations()) {
    if (inv.kernel_id != attn) continue;
    saw_prefill |= inv.context_id == 0;
    saw_decode |= inv.context_id == 1;
  }
  EXPECT_TRUE(saw_prefill);
  EXPECT_TRUE(saw_decode);
}

TEST(SuiteTest, SizeScaleShrinksWorkloads) {
  const size_t big = MakeCasio("bert_infer", 1, 0.2).NumInvocations();
  const size_t small = MakeCasio("bert_infer", 1, 0.05).NumInvocations();
  EXPECT_GT(big, small * 2);
}

}  // namespace
}  // namespace stemroot::workloads
