#include "service/protocol.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/json.h"
#include "eval/manifest.h"

namespace stemroot::service {
namespace {

/// Parse a broker response (every response must be valid JSON).
json::Value Parsed(const BrokerResult& result) {
  json::Value value;
  std::string error;
  EXPECT_TRUE(json::Parse(result.response, value, &error)) << error;
  return value;
}

bool Ok(const json::Value& response) {
  const json::Value* ok = response.Find("ok");
  return ok != nullptr && ok->number != 0.0;
}

double Num(const json::Value& response, std::string_view key) {
  const json::Value* v = response.Find(key);
  EXPECT_NE(v, nullptr) << key;
  return v == nullptr ? 0.0 : v->number;
}

class ProtocolTest : public ::testing::Test {
 protected:
  Service service_;
  SessionBroker broker_{service_};

  BrokerResult Handle(const std::string& line) {
    return broker_.HandleLine(line);
  }

  /// Open a tiny session and return its id.
  SessionId Open() {
    const BrokerResult result = Handle(
        R"({"op":"open","suite":"casio","workload":"bert_infer",)"
        R"("scale":0.05,"seed":99,"reps":2,"order":"shuffled"})");
    EXPECT_TRUE(result.ok) << result.response;
    return static_cast<SessionId>(Num(Parsed(result), "id"));
  }
};

TEST_F(ProtocolTest, RejectsMalformedLines) {
  EXPECT_FALSE(Handle("not json").ok);
  EXPECT_FALSE(Handle("[1,2,3]").ok);
  EXPECT_FALSE(Handle(R"({"no_op":true})").ok);
  EXPECT_FALSE(Handle(R"({"op":"florble"})").ok);
  const json::Value response = Parsed(Handle(R"({"op":"florble"})"));
  EXPECT_FALSE(Ok(response));
  EXPECT_NE(response.Find("error"), nullptr);
}

TEST_F(ProtocolTest, OpenValidatesRequests) {
  // Protocol sessions are source-fed: suite+workload are mandatory.
  EXPECT_FALSE(Handle(R"({"op":"open"})").ok);
  EXPECT_FALSE(Handle(R"({"op":"open","suite":"casio"})").ok);
  EXPECT_FALSE(
      Handle(R"({"op":"open","suite":"casio","workload":"bert_infer",)"
             R"("order":"sideways"})")
          .ok);
  EXPECT_FALSE(
      Handle(R"({"op":"open","suite":"casio","workload":"bert_infer",)"
             R"("epsilon":"tight"})")
          .ok);
  EXPECT_FALSE(
      Handle(R"({"op":"open","suite":"nope","workload":"bert_infer"})").ok);
  EXPECT_EQ(service_.NumOpenSessions(), 0u);
}

TEST_F(ProtocolTest, SessionRoundTrip) {
  const SessionId id = Open();
  EXPECT_EQ(service_.NumOpenSessions(), 1u);
  const std::string sid = std::to_string(id);

  // feed advances the session and reports convergence state.
  const json::Value fed = Parsed(
      Handle(R"({"op":"feed","id":)" + sid + R"(,"count":64})"));
  EXPECT_TRUE(Ok(fed));
  EXPECT_EQ(Num(fed, "fed"), 64.0);
  EXPECT_EQ(Num(fed, "seen"), 64.0);

  const json::Value status = Parsed(
      Handle(R"({"op":"query","id":)" + sid + R"(,"clusters":true})"));
  EXPECT_TRUE(Ok(status));
  EXPECT_EQ(Num(status, "invocations_seen"), 64.0);
  EXPECT_GT(Num(status, "invocations_total"), 64.0);
  EXPECT_GT(Num(status, "predicted_error"), 0.0);
  const json::Value* clusters = status.Find("clusters");
  ASSERT_NE(clusters, nullptr);
  ASSERT_TRUE(clusters->IsArray());
  EXPECT_FALSE(clusters->array->empty());
  EXPECT_NE(clusters->array->front().Find("kernel"), nullptr);

  const json::Value plan =
      Parsed(Handle(R"({"op":"plan","id":)" + sid + "}"));
  EXPECT_TRUE(Ok(plan));
  EXPECT_GT(Num(plan, "num_samples"), 0.0);

  const json::Value eval =
      Parsed(Handle(R"({"op":"eval","id":)" + sid + "}"));
  EXPECT_TRUE(Ok(eval));
  EXPECT_GT(Num(eval, "speedup"), 0.0);

  const json::Value stats = Parsed(Handle(R"({"op":"stats"})"));
  EXPECT_TRUE(Ok(stats));
  EXPECT_EQ(Num(stats, "open_sessions"), 1.0);

  const std::filesystem::path manifest_path =
      std::filesystem::temp_directory_path() /
      ("sr_protocol_manifest_" + sid + ".json");
  std::string close = R"({"op":"close","id":)" + sid + R"(,"manifest":)";
  json::AppendString(close, manifest_path.string());
  close += "}";
  const json::Value closed = Parsed(Handle(close));
  EXPECT_TRUE(Ok(closed));
  EXPECT_EQ(service_.NumOpenSessions(), 0u);

  // The written manifest round-trips as a stemroot-manifest-v1 document.
  const eval::RunManifest manifest =
      eval::RunManifest::Load(manifest_path.string());
  EXPECT_EQ(manifest.command, "session");
  EXPECT_TRUE(manifest.completed);
  EXPECT_EQ(manifest.config.workload, "bert_infer");
  EXPECT_EQ(manifest.counters.at("service.feed_invocations"), 64u);
  std::filesystem::remove(manifest_path);

  // The closed id is dead, and the broker reports that as an error
  // response rather than a dropped connection.
  EXPECT_FALSE(Handle(R"({"op":"query","id":)" + sid + "}").ok);
}

TEST_F(ProtocolTest, FeedValidatesArguments) {
  const SessionId id = Open();
  const std::string sid = std::to_string(id);
  EXPECT_FALSE(Handle(R"({"op":"feed"})").ok);
  EXPECT_FALSE(Handle(R"({"op":"feed","id":)" + sid + "}").ok);
  EXPECT_FALSE(
      Handle(R"({"op":"feed","id":)" + sid + R"(,"count":-3})").ok);
  EXPECT_FALSE(Handle(R"({"op":"feed","id":999,"count":4})").ok);
  Handle(R"({"op":"close","id":)" + sid + "}");
}

TEST_F(ProtocolTest, ParamsForwardToTheSampler) {
  const BrokerResult result = Handle(
      R"({"op":"open","method":"random","suite":"casio",)"
      R"("workload":"bert_infer","scale":0.05,)"
      R"("params":{"probability":0.25}})");
  ASSERT_TRUE(result.ok) << result.response;
  const std::string sid =
      std::to_string(static_cast<SessionId>(Num(Parsed(result), "id")));
  Handle(R"({"op":"feed","id":)" + sid + R"(,"count":200})");
  const json::Value plan =
      Parsed(Handle(R"({"op":"plan","id":)" + sid + "}"));
  EXPECT_TRUE(Ok(plan));
  // The plan's method is the sampler's resolved name, which embeds the
  // probability the params carried over the wire.
  EXPECT_EQ(plan.Find("method")->string, "Random(25%)");
  Handle(R"({"op":"close","id":)" + sid + "}");
}

TEST(ProtocolMetricsTest, StatsReportsVerbLatenciesAndJournal) {
  ServiceOptions options;
  options.enable_metrics = true;
  Service service(options);
  SessionBroker broker(service);
  const auto Handle = [&broker](const std::string& line) {
    return broker.HandleLine(line);
  };

  const BrokerResult opened = Handle(
      R"({"op":"open","suite":"casio","workload":"bert_infer",)"
      R"("scale":0.05,"seed":99,"reps":2,"order":"shuffled"})");
  ASSERT_TRUE(opened.ok) << opened.response;
  const std::string sid =
      std::to_string(static_cast<SessionId>(Num(Parsed(opened), "id")));
  Handle(R"({"op":"feed","id":)" + sid + R"(,"count":32})");
  Handle(R"({"op":"query","id":)" + sid + "}");

  const json::Value stats = Parsed(Handle(R"({"op":"stats"})"));
  EXPECT_TRUE(Ok(stats));
  EXPECT_EQ(Num(stats, "open_sessions"), 1.0);
  EXPECT_GE(Num(stats, "uptime_seconds"), 0.0);
  EXPECT_EQ(Num(stats, "sessions_opened"), 1.0);
  EXPECT_EQ(Num(stats, "sessions_closed"), 0.0);
  EXPECT_EQ(Num(stats, "feed_invocations"), 32.0);
  EXPECT_GE(Num(stats, "requests"), 3.0);  // open + feed + query

  // Per-verb breakdown: the verbs object carries a latency summary for
  // every verb; the ones exercised here show traffic.
  const json::Value* verbs = stats.Find("verbs");
  ASSERT_NE(verbs, nullptr);
  ASSERT_TRUE(verbs->IsObject());
  const json::Value* feed = verbs->Find("feed");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(Num(*feed, "requests"), 1.0);
  EXPECT_EQ(Num(*feed, "errors"), 0.0);
  EXPECT_GT(Num(*feed, "mean_us"), 0.0);
  EXPECT_GT(Num(*feed, "p50_us"), 0.0);
  EXPECT_GE(Num(*feed, "p99_us"), Num(*feed, "p50_us"));
  EXPECT_GT(Num(*feed, "max_us"), 0.0);
  const json::Value* close_verb = verbs->Find("close");
  ASSERT_NE(close_verb, nullptr);
  EXPECT_EQ(Num(*close_verb, "requests"), 0.0);

  // Journal counters are always present (zeros with no journal open).
  const json::Value* journal = stats.Find("journal");
  ASSERT_NE(journal, nullptr);
  ASSERT_TRUE(journal->IsObject());
  EXPECT_NE(journal->Find("emitted"), nullptr);
  EXPECT_NE(journal->Find("dropped"), nullptr);
  EXPECT_NE(journal->Find("errors"), nullptr);

  // Errors count into the verb's error column but still measure latency.
  EXPECT_FALSE(Handle(R"({"op":"feed","id":999,"count":4})").ok);
  const json::Value after = Parsed(Handle(R"({"op":"stats"})"));
  const json::Value* feed_after = after.Find("verbs")->Find("feed");
  EXPECT_EQ(Num(*feed_after, "requests"), 2.0);
  EXPECT_EQ(Num(*feed_after, "errors"), 1.0);

  Handle(R"({"op":"close","id":)" + sid + "}");
}

TEST_F(ProtocolTest, HealthReportsReadiness) {
  const json::Value health = Parsed(Handle(R"({"op":"health"})"));
  EXPECT_TRUE(Ok(health));
  ASSERT_NE(health.Find("status"), nullptr);
  EXPECT_EQ(health.Find("status")->string, "ok");
  EXPECT_EQ(Num(health, "ready"), 1.0);
  EXPECT_EQ(Num(health, "accepting"), 1.0);
  EXPECT_GE(Num(health, "uptime_seconds"), 0.0);
  EXPECT_EQ(Num(health, "open_sessions"), 0.0);
  EXPECT_GT(Num(health, "max_sessions"), 0.0);
  ASSERT_NE(health.Find("git_hash"), nullptr);
  EXPECT_TRUE(health.Find("git_hash")->IsString());
  // Health is not a session verb: it must not count request traffic.
  const json::Value stats = Parsed(Handle(R"({"op":"stats"})"));
  EXPECT_EQ(Num(stats, "requests"), 0.0);
}

TEST_F(ProtocolTest, ShutdownFlagsTheLoop) {
  const BrokerResult result = Handle(R"({"op":"shutdown"})");
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.shutdown);
  // Only shutdown sets the flag.
  EXPECT_FALSE(Handle(R"({"op":"stats"})").shutdown);
}

}  // namespace
}  // namespace stemroot::service
