#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace stemroot::service {
namespace {

TEST(ServiceMetricsTest, VerbNamesAreCanonical) {
  EXPECT_STREQ(VerbName(Verb::kOpen), "open");
  EXPECT_STREQ(VerbName(Verb::kFeed), "feed");
  EXPECT_STREQ(VerbName(Verb::kQuery), "query");
  EXPECT_STREQ(VerbName(Verb::kPlan), "plan");
  EXPECT_STREQ(VerbName(Verb::kEval), "eval");
  EXPECT_STREQ(VerbName(Verb::kClose), "close");
}

TEST(ServiceMetricsTest, DisabledRecordingIsANoOp) {
  ServiceMetrics metrics;
  EXPECT_FALSE(metrics.Enabled());
  metrics.RecordRequest(Verb::kFeed, 100.0, true);
  metrics.RecordRequest(Verb::kFeed, 100.0, false);
  EXPECT_EQ(metrics.Requests(Verb::kFeed), 0u);
  EXPECT_EQ(metrics.Errors(Verb::kFeed), 0u);
  EXPECT_EQ(metrics.Latency(Verb::kFeed).Count(), 0u);
}

TEST(ServiceMetricsTest, RecordRequestTracksPerVerb) {
  ServiceMetrics metrics;
  metrics.SetEnabled(true);
  metrics.RecordRequest(Verb::kFeed, 100.0, true);
  metrics.RecordRequest(Verb::kFeed, 300.0, true);
  metrics.RecordRequest(Verb::kFeed, 200.0, false);
  metrics.RecordRequest(Verb::kQuery, 50.0, true);

  EXPECT_EQ(metrics.Requests(Verb::kFeed), 3u);
  EXPECT_EQ(metrics.Errors(Verb::kFeed), 1u);
  EXPECT_EQ(metrics.Requests(Verb::kQuery), 1u);
  EXPECT_EQ(metrics.Errors(Verb::kQuery), 0u);
  EXPECT_EQ(metrics.Requests(Verb::kOpen), 0u);

  const VerbStats feed = metrics.GetVerb(Verb::kFeed);
  EXPECT_EQ(feed.verb, "feed");
  EXPECT_EQ(feed.requests, 3u);
  EXPECT_EQ(feed.errors, 1u);
  EXPECT_DOUBLE_EQ(feed.total_us, 600.0);
  EXPECT_DOUBLE_EQ(feed.mean_us, 200.0);
  EXPECT_DOUBLE_EQ(feed.max_us, 300.0);
  // Bucket-bound quantiles: within one growth factor above the exact
  // rank value, and never above the exact max by more than that.
  EXPECT_GE(feed.p50_us, 100.0);
  EXPECT_LE(feed.p99_us, 300.0 * 1.5);
  EXPECT_GE(feed.p99_us, feed.p50_us);
}

TEST(ServiceMetricsTest, AllVerbsCoversEnumOrder) {
  ServiceMetrics metrics;
  metrics.SetEnabled(true);
  metrics.RecordRequest(Verb::kClose, 10.0, true);
  const std::vector<VerbStats> all = metrics.AllVerbs();
  ASSERT_EQ(all.size(), kNumVerbs);
  EXPECT_EQ(all[0].verb, "open");
  EXPECT_EQ(all[5].verb, "close");
  EXPECT_EQ(all[5].requests, 1u);
  for (size_t i = 0; i + 1 < all.size(); ++i)
    EXPECT_NE(all[i].verb, all[i + 1].verb);
}

TEST(ServiceMetricsTest, RegisteredCounterSetIsClosedAndSorted) {
  const auto counters = RegisteredServiceCounters();
  ASSERT_FALSE(counters.empty());
  for (size_t i = 0; i + 1 < counters.size(); ++i)
    EXPECT_LT(counters[i], counters[i + 1]);
  for (std::string_view name : counters) {
    EXPECT_EQ(name.rfind("service.", 0), 0u) << name;
    EXPECT_TRUE(IsRegisteredServiceCounter(name)) << name;
  }
  EXPECT_FALSE(IsRegisteredServiceCounter("service.not_a_counter"));
  EXPECT_FALSE(IsRegisteredServiceCounter("cache.hits"));
}

ServiceStats MakeStats() {
  ServiceStats stats;
  stats.metrics_enabled = true;
  stats.uptime_seconds = 12.5;
  stats.open_sessions = 1;
  stats.max_sessions = 8;
  stats.sessions_opened = 3;
  stats.sessions_closed = 2;
  stats.feed_invocations = 40;
  stats.early_stops = 1;
  stats.requests_total = 50;
  stats.errors_total = 2;
  for (size_t i = 0; i < kNumVerbs; ++i) {
    VerbStats verb;
    verb.verb = VerbName(static_cast<Verb>(i));
    stats.verbs.push_back(verb);
  }
  // Only feed carries traffic; the other summaries must be absent.
  stats.verbs[1].requests = 40;
  stats.verbs[1].errors = 2;
  stats.verbs[1].total_us = 4000.0;
  stats.verbs[1].mean_us = 100.0;
  stats.verbs[1].p50_us = 96.0;
  stats.verbs[1].p90_us = 150.0;
  stats.verbs[1].p99_us = 200.0;
  stats.verbs[1].max_us = 250.0;
  stats.journal_emitted = 17;
  stats.journal_dropped = 0;
  stats.journal_errors = 0;
  return stats;
}

TEST(ServiceMetricsTest, PrometheusTextHasTypedFamilies) {
  const std::string text = PrometheusText(MakeStats());

  // Gauges.
  EXPECT_NE(text.find("# TYPE stemroot_service_uptime_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("stemroot_service_open_sessions 1"),
            std::string::npos);
  // Counters end in _total and carry verb labels.
  EXPECT_NE(text.find("# TYPE stemroot_service_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("stemroot_service_requests_total{verb=\"feed\"} 40"),
            std::string::npos);
  EXPECT_NE(
      text.find("stemroot_service_request_errors_total{verb=\"feed\"} 2"),
      std::string::npos);
  // The latency summary exposes quantile labels plus _sum/_count.
  EXPECT_NE(
      text.find("# TYPE stemroot_service_request_latency_us summary"),
      std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("stemroot_service_request_latency_us_count"
                      "{verb=\"feed\"} 40"),
            std::string::npos);
  // Journal counters surface too.
  EXPECT_NE(text.find("stemroot_journal_events_total 17"),
            std::string::npos);
}

TEST(ServiceMetricsTest, PrometheusTextOmitsEmptyVerbSummaries) {
  const std::string text = PrometheusText(MakeStats());
  // A quantile of an empty histogram is absent, not zero: verbs with no
  // traffic contribute no latency samples.
  EXPECT_EQ(text.find("stemroot_service_request_latency_us{verb=\"open\""),
            std::string::npos);
  EXPECT_NE(text.find("stemroot_service_request_latency_us{verb=\"feed\""),
            std::string::npos);
}

TEST(ServiceMetricsTest, PrometheusTextIsDeterministic) {
  const ServiceStats stats = MakeStats();
  EXPECT_EQ(PrometheusText(stats), PrometheusText(stats));
}

TEST(ServiceMetricsTest, PrometheusLinesAreWellFormed) {
  const std::string text = PrometheusText(MakeStats());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // Every non-comment line is `name[{labels}] value`.
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

}  // namespace
}  // namespace stemroot::service
