#include "service/service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "eval/pipeline.h"
#include "hw/gpu_spec.h"
#include "workloads/suite.h"

namespace stemroot::service {
namespace {

uint64_t Bits(double x) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

constexpr uint64_t kSeed = 99;
constexpr double kScale = 0.05;

SessionConfig SmallConfig() {
  SessionConfig config;
  config.method = "stem";
  config.epsilon = 0.05;
  config.confidence = 0.95;
  config.seed = kSeed;
  config.scale = kScale;
  config.reps = 3;
  config.suite = "casio";
  config.workload = "bert_infer";
  config.gpu = "rtx2080";
  return config;
}

/// The sampler a session builds for SmallConfig: the registry's "stem"
/// with the session's epsilon/confidence injected.
std::unique_ptr<core::Sampler> BatchSampler(const SessionConfig& config) {
  baselines::EnsureBuiltinSamplers();
  core::SamplerParams params = config.params;
  params.Set("epsilon", config.epsilon);
  params.Set("confidence", config.confidence);
  return core::SamplerRegistry::Global().Create(config.method, params);
}

void ExpectPlansBitwiseEqual(const core::SamplingPlan& a,
                             const core::SamplingPlan& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(Bits(a.theoretical_error), Bits(b.theoretical_error));
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation) << "i=" << i;
    EXPECT_EQ(Bits(a.entries[i].weight), Bits(b.entries[i].weight))
        << "i=" << i;
  }
}

TEST(ServiceTest, ValidatesConfigs) {
  ServiceOptions bad;
  bad.max_sessions = 0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);

  Service service;
  SessionConfig config = SmallConfig();
  config.epsilon = 1.5;
  EXPECT_THROW(service.OpenSession(config), std::invalid_argument);
  config = SmallConfig();
  config.epsilon = 0.0;  // sessions need an error contract
  EXPECT_THROW(service.OpenSession(config), std::invalid_argument);
  config = SmallConfig();
  config.suite = "";  // workload without suite
  EXPECT_THROW(service.OpenSession(config), std::invalid_argument);
  config = SmallConfig();
  config.method = "";
  EXPECT_THROW(service.OpenSession(config), std::invalid_argument);
}

ServiceOptions Limited(uint32_t max_sessions) {
  ServiceOptions options;
  options.max_sessions = max_sessions;
  return options;
}

TEST(ServiceTest, SessionLifecycle) {
  Service service(Limited(2));
  EXPECT_EQ(service.NumOpenSessions(), 0u);
  const SessionId a = service.OpenSession(SmallConfig());
  const SessionId b = service.OpenSession(SmallConfig());
  EXPECT_NE(a, b);
  EXPECT_EQ(service.NumOpenSessions(), 2u);
  EXPECT_THROW(service.OpenSession(SmallConfig()), std::runtime_error);
  EXPECT_THROW(service.Query(a + b + 17), std::out_of_range);

  service.CloseSession(a);
  EXPECT_EQ(service.NumOpenSessions(), 1u);
  EXPECT_THROW(service.Query(a), std::out_of_range);  // id is dead
  const SessionId c = service.OpenSession(SmallConfig());
  EXPECT_NE(c, a);  // ids are never reused
  service.CloseSession(b);
  service.CloseSession(c);
  EXPECT_EQ(service.NumOpenSessions(), 0u);
}

TEST(ServiceTest, GuardsBeforeFirstFeed) {
  Service service;
  const SessionId id = service.OpenSession(SmallConfig());
  EXPECT_THROW(service.BuildPlan(id), std::logic_error);
  EXPECT_THROW(service.Evaluate(id), std::logic_error);
  const SessionStatus status = service.Query(id);
  EXPECT_EQ(status.invocations_seen, 0u);
  EXPECT_GT(status.invocations_total, 0u);
  EXPECT_FALSE(status.converged);
  service.CloseSession(id);
}

TEST(ServiceTest, RejectsBadChunks) {
  Service service;
  SessionConfig config = SmallConfig();
  config.suite.clear();
  config.workload.clear();  // externally fed session
  const SessionId id = service.OpenSession(config);
  EXPECT_THROW(service.FeedFromSource(id, 8), std::logic_error);

  KernelTrace trace;
  KernelType type;
  type.name = "k";
  const uint32_t kid = trace.AddKernelType(type);
  KernelInvocation inv;
  inv.kernel_id = kid;
  inv.duration_us = 0.0;  // unprofiled
  EXPECT_THROW(service.Feed(id, trace, {&inv, 1}), std::invalid_argument);
  inv.duration_us = 1.0;
  inv.kernel_id = kid + 5;  // outside the type table
  EXPECT_THROW(service.Feed(id, trace, {&inv, 1}), std::out_of_range);
  // The failed chunks left the session untouched.
  EXPECT_EQ(service.Query(id).invocations_seen, 0u);
  service.CloseSession(id);
}

TEST(ServiceTest, ReplayEquivalenceMatchesBatchPipeline) {
  SetNumThreads(1);
  const SessionConfig config = SmallConfig();
  eval::Pipeline batch = eval::Pipeline::GenerateProfiled(
      workloads::SuiteId::kCasio, config.workload, hw::GpuSpec::Rtx2080(),
      {.seed = kSeed, .size_scale = kScale});
  const std::unique_ptr<core::Sampler> sampler = BatchSampler(config);
  const core::SamplingPlan batch_plan = batch.Sample(*sampler);
  const eval::EvalResult batch_result = batch.Evaluate(*sampler, config.reps);

  Service service;
  const SessionId id = service.OpenSession(config);
  const uint64_t total = batch.Trace().NumInvocations();
  EXPECT_EQ(service.FeedFromSource(id, total), total);
  EXPECT_EQ(service.FeedFromSource(id, 10), 0u);  // source exhausted

  ExpectPlansBitwiseEqual(service.BuildPlan(id), batch_plan);
  const eval::EvalResult session_result = service.Evaluate(id);
  EXPECT_EQ(session_result.method, batch_result.method);
  EXPECT_EQ(Bits(session_result.speedup), Bits(batch_result.speedup));
  EXPECT_EQ(Bits(session_result.error_pct), Bits(batch_result.error_pct));
  EXPECT_EQ(Bits(session_result.estimated_total_us),
            Bits(batch_result.estimated_total_us));
  EXPECT_EQ(session_result.num_samples, batch_result.num_samples);
  EXPECT_EQ(session_result.num_clusters, batch_result.num_clusters);
  service.CloseSession(id);
}

TEST(ServiceTest, ReplayEquivalenceIsThreadInvariant) {
  // Batch plan at --threads 1, chunked session at --threads 4: the
  // determinism contract says neither chunking nor thread count may move
  // a byte.
  SetNumThreads(1);
  const SessionConfig config = SmallConfig();
  eval::Pipeline batch = eval::Pipeline::GenerateProfiled(
      workloads::SuiteId::kCasio, config.workload, hw::GpuSpec::Rtx2080(),
      {.seed = kSeed, .size_scale = kScale});
  const std::unique_ptr<core::Sampler> sampler = BatchSampler(config);
  const core::SamplingPlan batch_plan = batch.Sample(*sampler);
  const eval::EvalResult batch_result = batch.Evaluate(*sampler, config.reps);

  SetNumThreads(4);
  Service service;
  const SessionId id = service.OpenSession(config);
  while (service.FeedFromSource(id, 37) > 0) {
  }
  ExpectPlansBitwiseEqual(service.BuildPlan(id), batch_plan);
  const eval::EvalResult session_result = service.Evaluate(id);
  EXPECT_EQ(Bits(session_result.speedup), Bits(batch_result.speedup));
  EXPECT_EQ(Bits(session_result.error_pct), Bits(batch_result.error_pct));
  service.CloseSession(id);
  SetNumThreads(1);
}

TEST(ServiceTest, ChunkedFeedMatchesOneShotFeed) {
  Service service;
  const SessionId chunked = service.OpenSession(SmallConfig());
  const SessionId one_shot = service.OpenSession(SmallConfig());
  while (service.FeedFromSource(chunked, 13) > 0) {
  }
  uint64_t fed = 0;
  while (true) {
    const uint64_t n =
        service.FeedFromSource(one_shot, 1u << 30);  // everything at once
    fed += n;
    if (n == 0) break;
  }
  EXPECT_EQ(service.Query(chunked).invocations_seen, fed);
  ExpectPlansBitwiseEqual(service.BuildPlan(chunked),
                          service.BuildPlan(one_shot));
  service.CloseSession(chunked);
  service.CloseSession(one_shot);
}

TEST(ServiceTest, QueryTracksStreamingStructure) {
  Service service;
  const SessionId id = service.OpenSession(SmallConfig());
  while (service.FeedFromSource(id, 64) > 0) {
  }
  const SessionStatus status = service.Query(id);
  EXPECT_EQ(status.invocations_seen, status.invocations_total);
  EXPECT_GT(status.num_kernels, 0u);
  EXPECT_GE(status.clusters.size(), status.num_kernels);
  EXPECT_GT(status.stem_samples_total, 0u);
  EXPECT_GT(status.allocation_error, 0.0);
  EXPECT_GT(status.predicted_error, 0.0);
  EXPECT_GT(status.estimated_total_us, 0.0);
  EXPECT_FALSE(status.early_stop);  // nothing left to skip
  uint64_t cluster_n = 0;
  for (const ClusterSummary& c : status.clusters) {
    EXPECT_FALSE(c.kernel.empty());
    cluster_n += c.n;
  }
  EXPECT_EQ(cluster_n, status.invocations_seen);  // counts conserved
  service.CloseSession(id);
}

TEST(ServiceTest, PredictedErrorTightensAcrossChunks) {
  SessionConfig config = SmallConfig();
  config.order = FeedOrder::kShuffled;
  Service service;
  const SessionId id = service.OpenSession(config);

  std::vector<double> errors;
  while (service.FeedFromSource(id, 96) > 0)
    errors.push_back(service.Query(id).predicted_error);
  ASSERT_GE(errors.size(), 4u);
  // The bound shrinks as ~1/sqrt(n) while the CoV estimate stabilizes;
  // allow small transient upticks while new clusters surface, but demand
  // the overall trajectory to be non-increasing and strictly tighter.
  for (size_t i = 1; i < errors.size(); ++i)
    EXPECT_LE(errors[i], errors[i - 1] * 1.05) << "chunk " << i;
  EXPECT_LT(errors.back(), errors.front() * 0.5);
  service.CloseSession(id);
}

TEST(ServiceTest, ShuffledEarlyStopMeetsEpsilon) {
  SessionConfig config = SmallConfig();
  config.order = FeedOrder::kShuffled;
  config.scale = 0.2;  // enough invocations to converge before exhaustion
  config.epsilon = 0.05;

  eval::Pipeline full = eval::Pipeline::GenerateProfiled(
      workloads::SuiteId::kCasio, config.workload, hw::GpuSpec::Rtx2080(),
      {.seed = kSeed, .size_scale = config.scale});
  const double true_total = full.Trace().TotalDurationUs();

  Service service;
  const SessionId id = service.OpenSession(config);
  SessionStatus status;
  while (true) {
    const uint64_t n = service.FeedFromSource(id, 64);
    status = service.Query(id);
    if (status.early_stop || n == 0) break;
  }
  ASSERT_TRUE(status.converged) << "never converged; predicted_error="
                                << status.predicted_error;
  ASSERT_TRUE(status.early_stop);
  EXPECT_LT(status.invocations_seen, status.invocations_total);
  // The acceptance criterion: the extrapolated total's realized error is
  // within the session's epsilon of the full-trace ground truth.
  const double realized =
      std::abs(status.estimated_total_us - true_total) / true_total;
  EXPECT_LE(realized, config.epsilon)
      << "seen " << status.invocations_seen << "/"
      << status.invocations_total;

  const eval::RunManifest manifest = service.CloseSession(id);
  EXPECT_EQ(manifest.counters.at("service.early_stops"), 1u);
}

TEST(ServiceTest, SessionManifestMirrorsBatchRun) {
  telemetry::SetEnabled(true);
  telemetry::Reset();
  const SessionConfig config = SmallConfig();

  eval::RunManifest batch;
  batch.tool = "stemroot";
  batch.command = "run";
  batch.completed = true;
  const eval::EvalResult batch_result = Service::RunBatch(config, &batch);
  batch.FillFromSnapshot(telemetry::Capture());

  telemetry::Reset();
  Service service;
  const SessionId id = service.OpenSession(config);
  while (service.FeedFromSource(id, 1u << 30) > 0) {
  }
  const eval::EvalResult session_result = service.Evaluate(id);
  const eval::RunManifest session = service.CloseSession(id);

  EXPECT_EQ(session.command, "session");
  EXPECT_TRUE(session.completed);
  EXPECT_EQ(session.config.suite, batch.config.suite);
  EXPECT_EQ(session.config.workload, batch.config.workload);
  EXPECT_EQ(session.config.gpu, batch.config.gpu);
  EXPECT_EQ(session.config.method, batch.config.method);
  EXPECT_EQ(session.config.seed, batch.config.seed);
  EXPECT_EQ(session.config.epsilon, batch.config.epsilon);
  EXPECT_EQ(session.metrics.present, batch.metrics.present);
  EXPECT_EQ(Bits(session.metrics.error_pct), Bits(batch.metrics.error_pct));
  EXPECT_EQ(Bits(session_result.speedup), Bits(batch_result.speedup));

  // Counter parity: the session's windowed deltas equal the batch run's
  // process counters outside the environmental service.* family.
  for (const auto& [name, value] : batch.counters) {
    if (name.rfind("cache.", 0) == 0) continue;
    EXPECT_EQ(session.counters.count(name), 1u) << name;
    if (session.counters.count(name) == 1) {
      EXPECT_EQ(session.counters.at(name), value) << name;
    }
  }
  EXPECT_EQ(session.counters.at("service.sessions"), 1u);
  EXPECT_GT(session.counters.at("service.feed_invocations"), 0u);
  EXPECT_EQ(session.counters.at("service.early_stops"), 0u);
  EXPECT_FALSE(session.stages.empty());
  telemetry::SetEnabled(false);
  telemetry::Reset();
}

TEST(ServiceTest, RunBatchRequiresWorkload) {
  SessionConfig config = SmallConfig();
  config.suite.clear();
  config.workload.clear();
  EXPECT_THROW(Service::RunBatch(config, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::service
