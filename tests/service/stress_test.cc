/// \file
/// Interleaved-session stress: many client threads driving one resident
/// Service concurrently, including several threads tearing at the SAME
/// session. Run under TSan (tools/check.sh tsan) this is the data-race
/// gate for the service layer; under any sanitizer it checks the
/// invariants that survive arbitrary interleavings (counts conserved,
/// every session closeable exactly once, ids never reused).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/protocol.h"
#include "service/service.h"

namespace stemroot::service {
namespace {

ServiceOptions Limited(uint32_t max_sessions) {
  ServiceOptions options;
  options.max_sessions = max_sessions;
  return options;
}

SessionConfig TinyConfig(uint64_t seed) {
  SessionConfig config;
  config.suite = "casio";
  config.workload = "bert_infer";
  config.scale = 0.05;
  config.seed = seed;
  config.reps = 2;
  config.order = FeedOrder::kShuffled;
  return config;
}

TEST(ServiceStressTest, ParallelIndependentSessions) {
  Service service(Limited(16));
  constexpr int kThreads = 8;
  std::atomic<uint64_t> total_fed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &total_fed, t] {
      const SessionId id = service.OpenSession(TinyConfig(100 + t));
      uint64_t fed = 0;
      uint64_t n = 0;
      while ((n = service.FeedFromSource(id, 17)) > 0) {
        fed += n;
        const SessionStatus status = service.Query(id);
        EXPECT_EQ(status.invocations_seen, fed);
      }
      EXPECT_FALSE(service.BuildPlan(id).entries.empty());
      const eval::RunManifest manifest = service.CloseSession(id);
      EXPECT_EQ(manifest.counters.at("service.feed_invocations"), fed);
      total_fed.fetch_add(fed);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(service.NumOpenSessions(), 0u);
  EXPECT_GT(total_fed.load(), 0u);
}

TEST(ServiceStressTest, TornFeedsOnOneSession) {
  // Several threads feed and query the SAME session; chunk boundaries and
  // query interleavings are arbitrary, but the total must be conserved
  // and every intermediate Query must see internally consistent state.
  Service service;
  const SessionId id = service.OpenSession(TinyConfig(7));
  const uint64_t total = service.Query(id).invocations_total;
  ASSERT_GT(total, 0u);

  constexpr int kThreads = 4;
  std::atomic<uint64_t> fed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &fed, id, t] {
      uint64_t n = 0;
      while ((n = service.FeedFromSource(id, 5 + t)) > 0) {
        fed.fetch_add(n);
        const SessionStatus status = service.Query(id);
        uint64_t cluster_n = 0;
        for (const ClusterSummary& c : status.clusters) cluster_n += c.n;
        EXPECT_EQ(cluster_n, status.invocations_seen);
        EXPECT_LE(status.invocations_seen, status.invocations_total);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fed.load(), total);
  const SessionStatus status = service.Query(id);
  EXPECT_EQ(status.invocations_seen, total);
  service.CloseSession(id);
}

TEST(ServiceStressTest, ConcurrentBrokersShareOneService) {
  // The protocol layer on top: concurrent brokers (one per simulated
  // connection) multiplex onto one Service, as `stemroot serve` does with
  // its thread-per-connection model.
  Service service(Limited(8));
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&service, t] {
      SessionBroker broker(service);
      const BrokerResult opened = broker.HandleLine(
          R"({"op":"open","suite":"casio","workload":"bert_infer",)"
          R"("scale":0.05,"seed":)" +
          std::to_string(300 + t) + "}");
      ASSERT_TRUE(opened.ok) << opened.response;
      json::Value open_response;
      ASSERT_TRUE(json::Parse(opened.response, open_response, nullptr));
      const std::string sid = std::to_string(
          static_cast<uint64_t>(open_response.Find("id")->number));
      for (int round = 0; round < 6; ++round) {
        EXPECT_TRUE(
            broker
                .HandleLine(R"({"op":"feed","id":)" + sid +
                            R"(,"count":23})")
                .ok);
        EXPECT_TRUE(
            broker.HandleLine(R"({"op":"query","id":)" + sid + "}").ok);
      }
      EXPECT_TRUE(
          broker.HandleLine(R"({"op":"close","id":)" + sid + "}").ok);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(service.NumOpenSessions(), 0u);
}

}  // namespace
}  // namespace stemroot::service
