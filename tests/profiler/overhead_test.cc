#include "profiler/overhead.h"

#include <gtest/gtest.h>

#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/rodinia.h"
#include "workloads/suite.h"

namespace stemroot::profiler {
namespace {

TraceCost CostOfWorkload(workloads::SuiteId suite, const std::string& name,
                         double scale) {
  KernelTrace trace = workloads::MakeWorkload(suite, name, 17, scale);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);
  return TraceCost::Of(trace);
}

TEST(OverheadTest, Table5OrderingHolds) {
  // NCU >> NVBit-instr >> NVBit-BBV >> NSYS (paper Table 5).
  const TraceCost cost =
      CostOfWorkload(workloads::SuiteId::kCasio, "bert_infer", 0.1);
  const double ncu = OverheadRatio(ProfilerKind::kNcuMetrics, cost);
  const double nvbit = OverheadRatio(ProfilerKind::kNvbitInstr, cost);
  const double bbv = OverheadRatio(ProfilerKind::kNvbitBbv, cost);
  const double nsys = OverheadRatio(ProfilerKind::kNsysTimeline, cost);
  EXPECT_GT(ncu, nvbit);
  EXPECT_GT(nvbit, bbv);
  EXPECT_GT(bbv, nsys);
  EXPECT_GE(nsys, 1.0);
}

TEST(OverheadTest, NsysStaysLightweight) {
  const TraceCost cost =
      CostOfWorkload(workloads::SuiteId::kCasio, "bert_infer", 0.1);
  EXPECT_LT(OverheadRatio(ProfilerKind::kNsysTimeline, cost), 20.0);
  EXPECT_GT(OverheadRatio(ProfilerKind::kNcuMetrics, cost), 100.0);
}

TEST(OverheadTest, RelativeOverheadGrowsWithKernelDensity) {
  // The paper's Table 5: per-kernel instrumentation overheads blow up on
  // ML suites because they launch far more (and shorter) kernels per
  // second than GPGPU suites.
  const TraceCost rodinia =
      CostOfWorkload(workloads::SuiteId::kRodinia, "hotspot", 1.0);
  const TraceCost casio =
      CostOfWorkload(workloads::SuiteId::kCasio, "bert_infer", 0.2);
  const double density_rodinia =
      static_cast<double>(rodinia.kernels) / rodinia.base_wall_us;
  const double density_casio =
      static_cast<double>(casio.kernels) / casio.base_wall_us;
  if (density_casio > density_rodinia) {
    EXPECT_GT(OverheadRatio(ProfilerKind::kNcuMetrics, casio),
              OverheadRatio(ProfilerKind::kNcuMetrics, rodinia));
  }
}

TEST(OverheadTest, TraceCostAggregatesCorrectly) {
  KernelTrace trace("t");
  const uint32_t k = trace.InternKernel("k", 10);
  for (int i = 0; i < 4; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.behavior.instructions = 1000;
    inv.duration_us = 2.0;
    trace.Add(inv);
  }
  const TraceCost cost = TraceCost::Of(trace);
  EXPECT_EQ(cost.kernels, 4u);
  EXPECT_DOUBLE_EQ(cost.total_instructions, 4000.0);
  EXPECT_DOUBLE_EQ(cost.base_wall_us, 8.0);
  EXPECT_DOUBLE_EQ(cost.mean_bbv_dim, 10.0);
}

TEST(OverheadTest, BbvReservoirCapsQuadraticCost) {
  // Past the reservoir cap the comparison cost grows linearly in N, not
  // quadratically: 10x the kernels -> ~10x the cost, not ~100x.
  TraceCost mid;
  mid.kernels = 1'000'000;
  mid.base_wall_us = 1e3;  // negligible base so comparisons dominate
  mid.mean_bbv_dim = 8;
  TraceCost huge = mid;
  huge.kernels = 10'000'000;  // HuggingFace scale

  OverheadParams params;
  const double cost_mid =
      ProfilingWallUs(ProfilerKind::kNvbitBbv, mid, params);
  const double cost_huge =
      ProfilingWallUs(ProfilerKind::kNvbitBbv, huge, params);
  EXPECT_NEAR(cost_huge / cost_mid, 10.0, 1.0);
  // Below the cap the growth IS quadratic: 16x kernels -> ~256x cost.
  TraceCost tiny = mid;
  tiny.kernels = 256;
  TraceCost tiny16 = mid;
  tiny16.kernels = 4096;
  const double q = (ProfilingWallUs(ProfilerKind::kNvbitBbv, tiny16,
                                    params) - tiny16.base_wall_us) /
                   (ProfilingWallUs(ProfilerKind::kNvbitBbv, tiny,
                                    params) - tiny.base_wall_us);
  EXPECT_NEAR(q, 256.0, 32.0);
}

TEST(OverheadTest, HuggingfaceScalePriorMethodsTakeDays) {
  // Sec. 5.6: prior methods would need up to ~78 days on HuggingFace
  // workloads; NSYS stays within a small multiple of native time.
  TraceCost hf;
  hf.kernels = 11'599'870;          // Table 2 average
  hf.base_wall_us = 1835.27 * 1e6;  // Table 2 average
  hf.total_instructions = 5e14;
  hf.mean_bbv_dim = 800;            // Sec. 5.6: 800+ BBV dims for GPT-2
  const double ncu_days =
      ProfilingWallUs(ProfilerKind::kNcuMetrics, hf) / 1e6 / 86400.0;
  const double nsys_ratio = OverheadRatio(ProfilerKind::kNsysTimeline, hf);
  EXPECT_GT(ncu_days, 3.0);  // days-scale, as Sec. 5.6 estimates
  EXPECT_LT(nsys_ratio, 5.0);
}

TEST(OverheadTest, ZeroBaseTimeRejected) {
  TraceCost cost;
  cost.kernels = 10;
  EXPECT_THROW(OverheadRatio(ProfilerKind::kNsysTimeline, cost),
               std::invalid_argument);
}

TEST(OverheadTest, KindNamesResolve) {
  EXPECT_STREQ(ProfilerKindName(ProfilerKind::kNsysTimeline), "NSYS");
  EXPECT_STREQ(ProfilerKindName(ProfilerKind::kNcuMetrics), "NCU");
  EXPECT_STREQ(ProfilerKindName(ProfilerKind::kNvbitInstr), "NVBit-instr");
  EXPECT_STREQ(ProfilerKindName(ProfilerKind::kNvbitBbv), "NVBit-BBV");
}

}  // namespace
}  // namespace stemroot::profiler
