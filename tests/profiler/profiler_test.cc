#include <gtest/gtest.h>

#include "hw/hardware_model.h"
#include "profiler/bbv_collector.h"
#include "profiler/instr_collector.h"
#include "profiler/metric_profiler.h"
#include "profiler/timeline_profiler.h"
#include "workloads/casio.h"

namespace stemroot::profiler {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = workloads::MakeCasio("bert_infer", 21, 0.02);
  }
  KernelTrace trace_;
};

TEST_F(ProfilerTest, TimelineProfilerFillsDurationsAndGroups) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  TimelineProfiler profiler(gpu);
  const hw::WorkloadProfile profile = profiler.Profile(trace_, 4);
  EXPECT_EQ(profile.total_invocations, trace_.NumInvocations());
  EXPECT_GT(profile.total_duration_us, 0.0);
  for (const auto& inv : trace_.Invocations())
    EXPECT_GT(inv.duration_us, 0.0);
}

TEST_F(ProfilerTest, PkaFeaturesBlindToLocalityOnlyContexts) {
  // layernorm contexts 0/1 differ only in cache locality; the 12
  // instruction-level metrics must (deliberately) not separate them
  // (paper Fig. 10's failure mode).
  const int64_t ln = trace_.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  const KernelInvocation* c0 = nullptr;
  const KernelInvocation* c1 = nullptr;
  for (const auto& inv : trace_.Invocations()) {
    if (inv.kernel_id != ln) continue;
    if (inv.context_id == 0 && !c0) c0 = &inv;
    if (inv.context_id == 1 && !c1) c1 = &inv;
  }
  ASSERT_TRUE(c0 && c1);
  const PkaFeatures f0 = MetricProfiler::Extract(trace_, *c0);
  const PkaFeatures f1 = MetricProfiler::Extract(trace_, *c1);
  for (size_t i = 0; i < PkaFeatures::kDim; ++i) {
    // Instruction jitter moves counts slightly; features must be close,
    // far closer than the 2x+ execution-time separation.
    if (f1.values[i] != 0.0) {
      EXPECT_NEAR(f0.values[i] / f1.values[i], 1.0, 0.05)
          << PkaFeatures::Name(i);
    }
  }
}

TEST_F(ProfilerTest, PkaFeaturesSeparateDifferentKernels) {
  const int64_t gemm = trace_.FindKernel("sgemm_128x64_nn");
  const int64_t ln = trace_.FindKernel("layernorm_fw");
  ASSERT_GE(gemm, 0);
  ASSERT_GE(ln, 0);
  const KernelInvocation* a = nullptr;
  const KernelInvocation* b = nullptr;
  for (const auto& inv : trace_.Invocations()) {
    if (inv.kernel_id == gemm && !a) a = &inv;
    if (inv.kernel_id == ln && !b) b = &inv;
  }
  ASSERT_TRUE(a && b);
  const PkaFeatures fa = MetricProfiler::Extract(trace_, *a);
  const PkaFeatures fb = MetricProfiler::Extract(trace_, *b);
  // Dynamic instruction counts (log2, index 0) differ by far.
  EXPECT_GT(std::abs(fa.values[0] - fb.values[0]), 1.0);
}

TEST_F(ProfilerTest, ExtractAllCoversTrace) {
  EXPECT_EQ(MetricProfiler::ExtractAll(trace_).size(),
            trace_.NumInvocations());
  EXPECT_EQ(InstrCountCollector::ExtractAll(trace_).size(),
            trace_.NumInvocations());
  EXPECT_EQ(BbvCollector::ExtractAll(trace_).size(),
            trace_.NumInvocations());
}

TEST_F(ProfilerTest, InstrRecordsMatchBehavior) {
  const KernelInvocation& inv = trace_.At(0);
  const InstrRecord record = InstrCountCollector::Extract(inv);
  EXPECT_EQ(record.instructions, inv.behavior.instructions);
  EXPECT_EQ(record.cta_size, inv.launch.ThreadsPerCta());
  EXPECT_EQ(record.num_ctas, inv.launch.NumCtas());
  EXPECT_GT(record.instr_per_warp, 0.0);
}

TEST_F(ProfilerTest, BbvDimensionMatchesKernelCfg) {
  const KernelInvocation& inv = trace_.At(0);
  const Bbv bbv = BbvCollector::Extract(trace_, inv);
  EXPECT_EQ(bbv.size(), trace_.TypeOf(inv).num_basic_blocks);
  for (double count : bbv) EXPECT_GT(count, 0.0);
}

TEST_F(ProfilerTest, BbvSeparatesInputScaleContexts) {
  // sgemm contexts differ in input_scale -> BBVs must differ (Photon can
  // cluster these correctly).
  const int64_t gemm = trace_.FindKernel("sgemm_128x64_nn");
  ASSERT_GE(gemm, 0);
  const KernelInvocation* c0 = nullptr;
  const KernelInvocation* c2 = nullptr;
  for (const auto& inv : trace_.Invocations()) {
    if (inv.kernel_id != gemm) continue;
    if (inv.context_id == 0 && !c0) c0 = &inv;
    if (inv.context_id == 2 && !c2) c2 = &inv;
  }
  ASSERT_TRUE(c0 && c2);
  const double dist = BbvCollector::NormalizedDistance(
      BbvCollector::Extract(trace_, *c0),
      BbvCollector::Extract(trace_, *c2));
  EXPECT_GT(dist, 0.1);
}

TEST_F(ProfilerTest, BbvBlindToLocalityOnlyContexts) {
  const int64_t ln = trace_.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  const KernelInvocation* c0 = nullptr;
  const KernelInvocation* c1 = nullptr;
  for (const auto& inv : trace_.Invocations()) {
    if (inv.kernel_id != ln) continue;
    if (inv.context_id == 0 && !c0) c0 = &inv;
    if (inv.context_id == 1 && !c1) c1 = &inv;
  }
  ASSERT_TRUE(c0 && c1);
  const double dist = BbvCollector::NormalizedDistance(
      BbvCollector::Extract(trace_, *c0),
      BbvCollector::Extract(trace_, *c1));
  EXPECT_LT(dist, 0.05);
}

TEST(BbvDistanceTest, MetricProperties) {
  const Bbv a = {1.0, 2.0, 3.0};
  const Bbv b = {3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(BbvCollector::NormalizedDistance(a, a), 0.0);
  EXPECT_GT(BbvCollector::NormalizedDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(BbvCollector::NormalizedDistance(a, b),
                   BbvCollector::NormalizedDistance(b, a));
  // Scale invariance (distance compares normalized shapes).
  const Bbv a2 = {2.0, 4.0, 6.0};
  EXPECT_NEAR(BbvCollector::NormalizedDistance(a, a2), 0.0, 1e-12);
  EXPECT_THROW(BbvCollector::NormalizedDistance(a, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::profiler
