#include "hw/profile.h"

#include <gtest/gtest.h>

#include "hw/hardware_model.h"
#include "workloads/casio.h"

namespace stemroot::hw {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = workloads::MakeCasio("bert_infer", 11, 0.02);
    HardwareModel gpu(GpuSpec::Rtx2080());
    gpu.ProfileTrace(trace_, 1);
  }
  KernelTrace trace_;
};

TEST_F(ProfileTest, FromTraceGroupsAllInvocations) {
  const WorkloadProfile profile = WorkloadProfile::FromTrace(trace_);
  EXPECT_EQ(profile.workload_name, "bert_infer");
  EXPECT_EQ(profile.total_invocations, trace_.NumInvocations());
  size_t grouped = 0;
  for (const KernelProfile& kp : profile.kernels) {
    EXPECT_EQ(kp.invocations.size(), kp.durations_us.size());
    EXPECT_EQ(kp.stats.count, kp.durations_us.size());
    grouped += kp.invocations.size();
  }
  EXPECT_EQ(grouped, trace_.NumInvocations());
  EXPECT_NEAR(profile.total_duration_us, trace_.TotalDurationUs(), 1e-6);
}

TEST_F(ProfileTest, ByTotalTimeIsDescending) {
  const WorkloadProfile profile = WorkloadProfile::FromTrace(trace_);
  const auto order = profile.ByTotalTime();
  ASSERT_GE(order.size(), 2u);
  for (size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(order[i - 1]->stats.sum, order[i]->stats.sum);
}

TEST_F(ProfileTest, GemmDominatesBertTime) {
  const WorkloadProfile profile = WorkloadProfile::FromTrace(trace_);
  EXPECT_NE(profile.ByTotalTime().front()->name.find("sgemm"),
            std::string::npos);
}

TEST_F(ProfileTest, MultiContextKernelShowsMultiplePeaks) {
  // sgemm has 3 contexts at well-separated work scales (Fig. 1 shape).
  const WorkloadProfile profile = WorkloadProfile::FromTrace(trace_);
  for (const KernelProfile& kp : profile.kernels) {
    if (kp.name == "sgemm_128x64_nn") {
      EXPECT_GE(kp.CountPeaks(60), 2u);
      return;
    }
  }
  FAIL() << "sgemm_128x64_nn not found in bert_infer";
}

TEST(ProfileErrorTest, RejectsUnprofiledTrace) {
  KernelTrace trace = workloads::MakeCasio("bert_infer", 1, 0.01);
  EXPECT_THROW(WorkloadProfile::FromTrace(trace), std::invalid_argument);
}

TEST(ProfileHistogramTest, HistogramCoversPopulation) {
  KernelProfile kp;
  kp.name = "k";
  kp.durations_us = {1.0, 2.0, 2.0, 3.0};
  kp.stats = SummaryStats::Of(kp.durations_us);
  const Histogram h = kp.MakeHistogram(8);
  EXPECT_EQ(h.TotalCount(), 4u);
}

}  // namespace
}  // namespace stemroot::hw
