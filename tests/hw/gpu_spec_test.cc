#include "hw/gpu_spec.h"

#include <gtest/gtest.h>

namespace stemroot::hw {
namespace {

TEST(GpuSpecTest, PresetsValidate) {
  EXPECT_NO_THROW(GpuSpec::Rtx2080().Validate());
  EXPECT_NO_THROW(GpuSpec::H100().Validate());
  EXPECT_NO_THROW(GpuSpec::H200().Validate());
}

TEST(GpuSpecTest, PresetNamesRoundTripThroughFromName) {
  for (const std::string& token : GpuSpec::PresetNames()) {
    const std::optional<GpuSpec> spec = GpuSpec::FromName(token);
    ASSERT_TRUE(spec.has_value()) << token;
    EXPECT_EQ(spec->Name(), token);
    EXPECT_NO_THROW(spec->Validate());
  }
  // Every factory preset is reachable by its Name() token.
  for (const GpuSpec& spec :
       {GpuSpec::Rtx2080(), GpuSpec::H100(), GpuSpec::H200()}) {
    const std::optional<GpuSpec> parsed = GpuSpec::FromName(spec.Name());
    ASSERT_TRUE(parsed.has_value()) << spec.Name();
    EXPECT_EQ(parsed->num_sms, spec.num_sms);
    EXPECT_EQ(parsed->dram_bw_gbps, spec.dram_bw_gbps);
  }
}

TEST(GpuSpecTest, FromNameIsCaseInsensitiveAndRejectsUnknown) {
  ASSERT_TRUE(GpuSpec::FromName("H100").has_value());
  ASSERT_TRUE(GpuSpec::FromName("RTX2080").has_value());
  EXPECT_FALSE(GpuSpec::FromName("h199").has_value());
  EXPECT_FALSE(GpuSpec::FromName("").has_value());
}

TEST(GpuSpecTest, GenerationalOrdering) {
  const GpuSpec rtx = GpuSpec::Rtx2080();
  const GpuSpec h100 = GpuSpec::H100();
  const GpuSpec h200 = GpuSpec::H200();
  EXPECT_GT(h100.num_sms, rtx.num_sms);
  EXPECT_GT(h100.dram_bw_gbps, rtx.dram_bw_gbps);
  // H200 is H100 compute with an upgraded memory system (Fig. 13 premise).
  EXPECT_EQ(h200.num_sms, h100.num_sms);
  EXPECT_GT(h200.dram_bw_gbps, h100.dram_bw_gbps);
}

TEST(GpuSpecTest, CacheScaleScalesBothLevels) {
  const GpuSpec base = GpuSpec::Rtx2080();
  const GpuSpec doubled = base.WithCacheScale(2.0);
  EXPECT_EQ(doubled.l1_bytes, base.l1_bytes * 2);
  EXPECT_EQ(doubled.l2_bytes, base.l2_bytes * 2);
  EXPECT_EQ(doubled.num_sms, base.num_sms);
  const GpuSpec halved = base.WithCacheScale(0.5);
  EXPECT_EQ(halved.l1_bytes, base.l1_bytes / 2);
}

TEST(GpuSpecTest, SmScaleRoundsAndFloors) {
  const GpuSpec base = GpuSpec::Rtx2080();
  EXPECT_EQ(base.WithSmScale(2.0).num_sms, base.num_sms * 2);
  EXPECT_EQ(base.WithSmScale(0.5).num_sms, base.num_sms / 2);
  EXPECT_GE(base.WithSmScale(0.001).num_sms, 1u);
}

TEST(GpuSpecTest, ScaleValidation) {
  const GpuSpec base = GpuSpec::Rtx2080();
  EXPECT_THROW(base.WithCacheScale(0.0), std::invalid_argument);
  EXPECT_THROW(base.WithSmScale(-1.0), std::invalid_argument);
}

TEST(GpuSpecTest, VariantNamesAreDescriptive) {
  const GpuSpec base = GpuSpec::Rtx2080();
  EXPECT_NE(base.WithCacheScale(2.0).name.find("cache"),
            std::string::npos);
  EXPECT_NE(base.WithSmScale(0.5).name.find("sm"), std::string::npos);
}

TEST(GpuSpecTest, ValidateCatchesCorruption) {
  GpuSpec spec = GpuSpec::Rtx2080();
  spec.num_sms = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = GpuSpec::Rtx2080();
  spec.line_bytes = 100;  // not a power of two
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = GpuSpec::Rtx2080();
  spec.fp16_speedup = 0.5;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = GpuSpec::Rtx2080();
  spec.dram_bw_gbps = 0.0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::hw
