#include "hw/hardware_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "workloads/context_model.h"

namespace stemroot::hw {
namespace {

LaunchConfig BigLaunch() {
  LaunchConfig launch;
  launch.grid_x = 1024;
  launch.block_x = 256;
  return launch;
}

class HardwareModelTest : public ::testing::Test {
 protected:
  HardwareModel gpu_{GpuSpec::Rtx2080()};
};

TEST_F(HardwareModelTest, MoreInstructionsTakeLonger) {
  KernelBehavior small = workloads::ComputeBoundBehavior(1e8, 1 << 20);
  KernelBehavior big = small;
  big.instructions = 1e9;
  EXPECT_LT(gpu_.ExpectedTimeUs(small, BigLaunch()),
            gpu_.ExpectedTimeUs(big, BigLaunch()));
}

TEST_F(HardwareModelTest, ComputeBoundKernelIsComputeBound) {
  const KernelBehavior b = workloads::ComputeBoundBehavior(1e9, 8 << 20);
  EXPECT_LT(gpu_.MemBoundedness(b, BigLaunch()), 0.5);
}

TEST_F(HardwareModelTest, IrregularKernelIsMemoryBound) {
  const KernelBehavior b = workloads::IrregularBehavior(1e8, 256 << 20);
  EXPECT_GT(gpu_.MemBoundedness(b, BigLaunch()), 0.8);
}

TEST_F(HardwareModelTest, LowerLocalityRunsSlower) {
  KernelBehavior warm = workloads::MemoryBoundBehavior(1e8, 64 << 20);
  warm.locality = 0.8f;
  KernelBehavior cold = warm;
  cold.locality = 0.2f;
  EXPECT_LT(gpu_.ExpectedTimeUs(warm, BigLaunch()),
            gpu_.ExpectedTimeUs(cold, BigLaunch()));
}

TEST_F(HardwareModelTest, WorseCoalescingRunsSlower) {
  KernelBehavior coalesced = workloads::MemoryBoundBehavior(1e8, 64 << 20);
  coalesced.coalescing = 0.95f;
  KernelBehavior scattered = coalesced;
  scattered.coalescing = 0.1f;
  EXPECT_LT(gpu_.ExpectedTimeUs(coalesced, BigLaunch()),
            gpu_.ExpectedTimeUs(scattered, BigLaunch()));
}

TEST_F(HardwareModelTest, BiggerCachesHelpMemoryBoundKernels) {
  const KernelBehavior b = workloads::MemoryBoundBehavior(1e8, 32 << 20);
  const HardwareModel big_cache(GpuSpec::Rtx2080().WithCacheScale(4.0));
  EXPECT_LT(big_cache.ExpectedTimeUs(b, BigLaunch()),
            gpu_.ExpectedTimeUs(b, BigLaunch()));
}

TEST_F(HardwareModelTest, CacheSizeBarelyMattersForComputeBound) {
  const KernelBehavior b = workloads::ComputeBoundBehavior(1e9, 4 << 20);
  const HardwareModel big_cache(GpuSpec::Rtx2080().WithCacheScale(4.0));
  const double base = gpu_.ExpectedTimeUs(b, BigLaunch());
  const double scaled = big_cache.ExpectedTimeUs(b, BigLaunch());
  EXPECT_NEAR(scaled / base, 1.0, 0.12);
}

TEST_F(HardwareModelTest, MoreSmsHelpComputeBoundKernels) {
  const KernelBehavior b = workloads::ComputeBoundBehavior(2e9, 4 << 20);
  const HardwareModel more_sms(GpuSpec::Rtx2080().WithSmScale(2.0));
  EXPECT_LT(more_sms.ExpectedTimeUs(b, BigLaunch()),
            gpu_.ExpectedTimeUs(b, BigLaunch()) * 0.85);
}

TEST_F(HardwareModelTest, OccupancySaturatesAtOne) {
  LaunchConfig tiny;
  tiny.grid_x = 1;
  tiny.block_x = 32;
  EXPECT_LT(gpu_.Occupancy(tiny), 0.01);
  EXPECT_DOUBLE_EQ(gpu_.Occupancy(BigLaunch()), 1.0);
}

TEST_F(HardwareModelTest, HitRatesAreValidProbabilities) {
  for (double locality : {0.0, 0.3, 0.7, 1.0}) {
    KernelBehavior b = workloads::MemoryBoundBehavior(1e8, 16 << 20);
    b.locality = static_cast<float>(locality);
    EXPECT_GE(gpu_.L1HitRate(b), 0.0);
    EXPECT_LE(gpu_.L1HitRate(b), 1.0);
    EXPECT_GE(gpu_.L2HitRate(b), 0.0);
    EXPECT_LE(gpu_.L2HitRate(b), 1.0);
  }
}

TEST_F(HardwareModelTest, HitRateMonotoneInLocality) {
  KernelBehavior lo = workloads::MemoryBoundBehavior(1e8, 16 << 20);
  lo.locality = 0.2f;
  KernelBehavior hi = lo;
  hi.locality = 0.9f;
  EXPECT_LT(gpu_.L1HitRate(lo), gpu_.L1HitRate(hi));
  EXPECT_LT(gpu_.L2HitRate(lo), gpu_.L2HitRate(hi));
}

TEST_F(HardwareModelTest, JitterWiderForMemoryBoundKernels) {
  // The paper's core observation (Sec. 2.2): memory-bound kernels have
  // wide execution-time distributions, compute-bound kernels narrow.
  KernelInvocation compute;
  compute.behavior = workloads::ComputeBoundBehavior(1e9, 4 << 20);
  compute.launch = BigLaunch();
  KernelInvocation memory;
  memory.behavior = workloads::IrregularBehavior(1e8, 256 << 20);
  memory.launch = BigLaunch();

  StreamingStats compute_stats, memory_stats;
  for (uint64_t run = 0; run < 400; ++run) {
    compute.seq = run;
    memory.seq = run;
    compute_stats.Add(gpu_.SampleTimeUs(compute, 1));
    memory_stats.Add(gpu_.SampleTimeUs(memory, 1));
  }
  EXPECT_LT(compute_stats.Cov(), 0.06);
  EXPECT_GT(memory_stats.Cov(), 0.10);
}

TEST_F(HardwareModelTest, JitterIsUnbiased) {
  KernelInvocation inv;
  inv.behavior = workloads::MemoryBoundBehavior(1e8, 64 << 20);
  inv.launch = BigLaunch();
  const double expected = gpu_.ExpectedTimeUs(inv.behavior, inv.launch);
  StreamingStats stats;
  for (uint64_t s = 0; s < 4000; ++s) {
    inv.seq = s;
    stats.Add(gpu_.SampleTimeUs(inv, 7));
  }
  EXPECT_NEAR(stats.Mean() / expected, 1.0, 0.02);
}

TEST_F(HardwareModelTest, SampleTimeDeterministicPerSeed) {
  KernelInvocation inv;
  inv.behavior = workloads::MemoryBoundBehavior(1e8, 64 << 20);
  inv.launch = BigLaunch();
  inv.seq = 17;
  EXPECT_DOUBLE_EQ(gpu_.SampleTimeUs(inv, 5), gpu_.SampleTimeUs(inv, 5));
  EXPECT_NE(gpu_.SampleTimeUs(inv, 5), gpu_.SampleTimeUs(inv, 6));
}

TEST_F(HardwareModelTest, MetricsArePlausible) {
  KernelInvocation inv;
  inv.behavior = workloads::MemoryBoundBehavior(1e8, 64 << 20);
  inv.behavior.fp16_fraction = 0.2f;
  inv.launch = BigLaunch();
  const KernelMetrics m = gpu_.Metrics(inv, 3);
  EXPECT_GT(m.global_load_transactions, 0.0);
  EXPECT_GT(m.global_store_transactions, 0.0);
  EXPECT_GT(m.fp16_ops, 0.0);
  EXPECT_GT(m.fp32_ops, 0.0);
  EXPECT_GE(m.l1_hit_rate, 0.0);
  EXPECT_LE(m.l1_hit_rate, 1.0);
  EXPECT_GE(m.branch_efficiency, 0.0);
  EXPECT_LE(m.branch_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(m.achieved_occupancy, 1.0);
}

TEST_F(HardwareModelTest, ProfileTraceFillsAllDurations) {
  KernelTrace trace("t");
  const uint32_t k = trace.InternKernel("k");
  for (int i = 0; i < 10; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.behavior = workloads::ComputeBoundBehavior(1e7, 1 << 20);
    inv.launch = BigLaunch();
    trace.Add(inv);
  }
  gpu_.ProfileTrace(trace, 9);
  for (const auto& inv : trace.Invocations()) EXPECT_GT(inv.duration_us, 0.0);
}

TEST_F(HardwareModelTest, LaunchOverheadBoundsTinyKernels) {
  KernelBehavior b = workloads::ComputeBoundBehavior(64, 4096);
  LaunchConfig tiny;
  tiny.grid_x = 1;
  EXPECT_GE(gpu_.ExpectedTimeUs(b, tiny),
            gpu_.Spec().launch_overhead_us);
}

}  // namespace
}  // namespace stemroot::hw
