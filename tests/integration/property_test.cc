/// \file
/// Cross-cutting property sweeps (parameterized): invariants that must
/// hold for every GPU preset, behaviour archetype, workload, and random
/// DAG -- the glue the per-module tests don't cover.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "core/sampler.h"
#include "dag/generator.h"
#include "dag/sampler.h"
#include "eval/pipeline.h"
#include "eval/runner.h"
#include "hw/hardware_model.h"
#include "trace/serialize.h"
#include "workloads/context_model.h"
#include "workloads/rodinia.h"
#include "workloads/suite.h"

namespace stemroot {
namespace {

// ---------------------------------------------------------------------
// Hardware-model invariants across every GPU preset x archetype.
// ---------------------------------------------------------------------

using GpuArchetype = std::tuple<int, int>;  // (gpu index, archetype index)

class HardwareSweepTest : public ::testing::TestWithParam<GpuArchetype> {
 protected:
  static hw::GpuSpec Gpu(int index) {
    switch (index) {
      case 0: return hw::GpuSpec::Rtx2080();
      case 1: return hw::GpuSpec::H100();
      default: return hw::GpuSpec::H200();
    }
  }
  static KernelBehavior Archetype(int index) {
    switch (index) {
      case 0: return workloads::ComputeBoundBehavior(5e8, 8 << 20);
      case 1: return workloads::MemoryBoundBehavior(1e8, 32 << 20);
      default: return workloads::IrregularBehavior(5e7, 128 << 20);
    }
  }
};

TEST_P(HardwareSweepTest, TimingInvariantsHold) {
  const auto [gpu_index, archetype_index] = GetParam();
  hw::HardwareModel gpu(Gpu(gpu_index));
  const KernelBehavior behavior = Archetype(archetype_index);
  LaunchConfig launch;
  launch.grid_x = 512;
  launch.block_x = 256;

  // Positive, overhead-bounded expected time.
  const double expected = gpu.ExpectedTimeUs(behavior, launch);
  EXPECT_GE(expected, gpu.Spec().launch_overhead_us);

  // Doubling work never speeds the kernel up.
  KernelBehavior doubled = behavior;
  doubled.instructions *= 2;
  EXPECT_GE(gpu.ExpectedTimeUs(doubled, launch), expected * 0.999);

  // Memory-boundedness is a valid fraction and drives jitter width.
  const double boundedness = gpu.MemBoundedness(behavior, launch);
  EXPECT_GE(boundedness, 0.0);
  EXPECT_LE(boundedness, 1.0);

  // Jitter is unbiased: mean of samples ~ expected time.
  KernelInvocation inv;
  inv.behavior = behavior;
  inv.launch = launch;
  StreamingStats stats;
  for (uint64_t s = 0; s < 2000; ++s) {
    inv.seq = s;
    stats.Add(gpu.SampleTimeUs(inv, 11));
  }
  EXPECT_NEAR(stats.Mean() / expected, 1.0, 0.03);

  // Metrics stay in their domains.
  const KernelMetrics metrics = gpu.Metrics(inv, 3);
  for (size_t i = 0; i < KernelMetrics::kCount; ++i) {
    EXPECT_GE(metrics.Get(i), 0.0) << KernelMetrics::Name(i);
    if (KernelMetrics::IsRate(i))
      EXPECT_LE(metrics.Get(i), 1.0) << KernelMetrics::Name(i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGpusAllArchetypes, HardwareSweepTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3)));

// ---------------------------------------------------------------------
// End-to-end STEM bound across every CASIO workload.
// ---------------------------------------------------------------------

class SuiteBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteBoundTest, StemStaysWithinEpsilonOnEveryCasioWorkload) {
  const auto& names = workloads::SuiteWorkloads(workloads::SuiteId::kCasio);
  const std::string name = names[static_cast<size_t>(GetParam())];
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const eval::Pipeline pipeline = eval::Pipeline::GenerateProfiled(
      {.suite = workloads::SuiteId::kCasio,
       .workload = name,
       .options = {.seed = 31, .size_scale = 0.1}},
      gpu);
  const KernelTrace& trace = pipeline.Trace();
  core::StemRootSampler sampler;
  const eval::EvalResult result =
      eval::EvaluateRepeated(sampler, trace, 3, 7);
  EXPECT_LT(result.error_pct, 5.0) << name;
  EXPECT_GT(result.speedup, 5.0) << name;
}

INSTANTIATE_TEST_SUITE_P(AllCasioWorkloads, SuiteBoundTest,
                         ::testing::Range(0, 11));

// ---------------------------------------------------------------------
// Serialization round-trip across suites.
// ---------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, EveryRodiniaWorkloadRoundTrips) {
  const auto& names =
      workloads::SuiteWorkloads(workloads::SuiteId::kRodinia);
  const std::string name = names[static_cast<size_t>(GetParam())];
  KernelTrace original = workloads::MakeRodinia(name, 3, 0.1);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(original, 1);

  const std::string path = testing::TempDir() + "/rt_" + name + ".bin";
  SaveTraceBinary(original, path);
  const KernelTrace loaded = LoadTraceBinary(path);
  ASSERT_EQ(loaded.NumInvocations(), original.NumInvocations());
  EXPECT_DOUBLE_EQ(loaded.TotalDurationUs(), original.TotalDurationUs());

  // Sampling the loaded trace gives the exact same plan.
  core::StemRootSampler sampler;
  const core::SamplingPlan a = sampler.BuildPlan(original, 9);
  const core::SamplingPlan b = sampler.BuildPlan(loaded, 9);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i)
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation);
}

INSTANTIATE_TEST_SUITE_P(AllRodiniaWorkloads, RoundTripTest,
                         ::testing::Range(0, 13));

// ---------------------------------------------------------------------
// DAG schedule lower bounds over random configurations.
// ---------------------------------------------------------------------

class DagScheduleBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(DagScheduleBoundTest, MakespanRespectsResourceLowerBounds) {
  Rng rng(DeriveSeed(123, static_cast<uint64_t>(GetParam())));
  dag::MultiGpuTrainingConfig config;
  config.devices = 2 + static_cast<uint32_t>(rng.NextBounded(7));
  config.layers = config.devices + static_cast<uint32_t>(rng.NextBounded(16));
  config.microbatches = 2 + static_cast<uint32_t>(rng.NextBounded(8));
  config.steps = 3 + static_cast<uint32_t>(rng.NextBounded(10));
  config.parallelism = rng.NextBool(0.5) ? dag::Parallelism::kData
                                         : dag::Parallelism::kPipeline;
  dag::DagWorkload workload =
      dag::MakeMultiGpuTraining(config, static_cast<uint64_t>(GetParam()));
  hw::HardwareModel gpu(hw::GpuSpec::H100());
  dag::NetworkModel network;
  dag::ProfileDag(workload, gpu, network, 5);

  const dag::ScheduleResult schedule = dag::ScheduleDag(workload);

  // Lower bound 1: the busiest device's compute load.
  std::vector<double> device_load(workload.NumDevices(), 0.0);
  double link_load = 0.0;
  for (const dag::DagOp& op : workload.Ops()) {
    if (op.kind == dag::OpKind::kCompute)
      device_load[op.device] += op.duration_us;
    else
      link_load += op.duration_us;
  }
  double max_device = 0.0;
  for (double load : device_load) max_device = std::max(max_device, load);
  EXPECT_GE(schedule.makespan_us, max_device * 0.999);
  // Lower bound 2: the serialized interconnect.
  EXPECT_GE(schedule.makespan_us, link_load * 0.999);
  // Upper bound: fully serial execution.
  EXPECT_LE(schedule.makespan_us, workload.TotalDurationUs() * 1.001);
  // Start times respect dependencies.
  for (uint32_t i = 0; i < workload.NumOps(); ++i)
    for (uint32_t dep : workload.At(i).deps)
      EXPECT_GE(schedule.start_us[i],
                schedule.start_us[dep] + workload.At(dep).duration_us -
                    1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DagScheduleBoundTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace stemroot
