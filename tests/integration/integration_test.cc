/// \file
/// End-to-end integration tests: the headline claims of the paper, scaled
/// to test size. These exercise the whole pipeline (generator -> hardware
/// profile -> samplers -> evaluation) exactly like the benches do.

#include <gtest/gtest.h>

#include <map>

#include "baselines/photon.h"
#include "baselines/pka.h"
#include "baselines/random_sampler.h"
#include "baselines/sieve.h"
#include "core/sampler.h"
#include "eval/pipeline.h"
#include "eval/runner.h"

namespace stemroot {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gpu_ = new hw::HardwareModel(hw::GpuSpec::Rtx2080());
    trace_ = new KernelTrace(
        eval::Pipeline::GenerateProfiled(
            {.suite = workloads::SuiteId::kCasio,
             .workload = "resnet50_train",
             .options = {.seed = 7, .size_scale = 0.05}},
            *gpu_)
            .Trace());
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete gpu_;
    trace_ = nullptr;
    gpu_ = nullptr;
  }
  static hw::HardwareModel* gpu_;
  static KernelTrace* trace_;
};

hw::HardwareModel* IntegrationTest::gpu_ = nullptr;
KernelTrace* IntegrationTest::trace_ = nullptr;

TEST_F(IntegrationTest, StemErrorIsWithinBoundAndNearZero) {
  core::StemRootSampler stem;
  const eval::EvalResult result =
      eval::EvaluateRepeated(stem, *trace_, 5, 11);
  EXPECT_LT(result.error_pct, 5.0);   // within epsilon
  EXPECT_LT(result.error_pct, 2.0);   // near-zero in practice (Table 3)
  EXPECT_GT(result.speedup, 10.0);
}

TEST_F(IntegrationTest, StemBeatsEveryBaselineOnError) {
  core::StemRootSampler stem;
  baselines::RandomSampler random(0.001);
  baselines::PkaSampler pka;
  baselines::SieveSampler sieve(baselines::SieveConfig{.use_kde = false});
  baselines::PhotonSampler photon;

  const double stem_err =
      eval::EvaluateRepeated(stem, *trace_, 3, 1).error_pct;
  for (const core::Sampler* baseline :
       std::initializer_list<const core::Sampler*>{&random, &pka, &sieve,
                                                   &photon}) {
    const double baseline_err =
        eval::EvaluateRepeated(*baseline, *trace_, 3, 1).error_pct;
    EXPECT_LT(stem_err, baseline_err) << baseline->Name();
  }
}

TEST_F(IntegrationTest, TheoreticalBoundHoldsAcrossSeeds) {
  // Property: over many sampling seeds, the realized error exceeds the
  // 95%-confidence epsilon bound in at most a small fraction of runs.
  core::StemRootSampler stem;
  const double truth = trace_->TotalDurationUs();
  int violations = 0;
  const int runs = 40;
  for (int seed = 0; seed < runs; ++seed) {
    const core::SamplingPlan plan = stem.BuildPlan(*trace_, seed);
    const double err =
        std::abs(plan.EstimateTotalUs(*trace_) - truth) / truth;
    if (err > 0.05) ++violations;
  }
  EXPECT_LE(violations, runs / 10);
}

TEST_F(IntegrationTest, EpsilonSweepTradesErrorForSpeedup) {
  // Fig. 11 shape: larger epsilon -> higher speedup.
  double prev_speedup = 0.0;
  for (double epsilon : {0.03, 0.05, 0.10, 0.25}) {
    core::StemRootConfig config;
    config.root.stem.epsilon = epsilon;
    core::StemRootSampler stem(config);
    const eval::EvalResult result =
        eval::EvaluateRepeated(stem, *trace_, 3, 3);
    EXPECT_LT(result.error_pct, epsilon * 100.0);
    EXPECT_GT(result.speedup, prev_speedup * 0.9);
    prev_speedup = result.speedup;
  }
}

TEST_F(IntegrationTest, RootClustersAlignWithHiddenContexts) {
  // Clustering quality: within a ROOT cluster, the dominant hidden
  // context must account for most members (the generator's ground truth,
  // which samplers never see).
  core::StemRootSampler stem;
  const auto groups = trace_->GroupByKernel();
  core::RootConfig config;
  size_t checked = 0;
  for (const auto& group : groups) {
    if (group.size() < 500) continue;
    std::vector<double> durations;
    for (uint32_t idx : group)
      durations.push_back(trace_->At(idx).duration_us);
    const auto clusters = core::RootCluster1D(durations, group, config);
    for (const auto& cluster : clusters) {
      if (cluster.members.size() < 50) continue;
      std::map<uint32_t, size_t> context_counts;
      for (uint32_t idx : cluster.members)
        ++context_counts[trace_->At(idx).context_id];
      size_t dominant = 0;
      for (const auto& [ctx, count] : context_counts)
        dominant = std::max(dominant, count);
      EXPECT_GT(static_cast<double>(dominant) /
                    static_cast<double>(cluster.members.size()),
                0.8);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(IntegrationRodiniaTest, IrregularWorkloadsStayBounded) {
  // The Sec. 5.1 stress cases: gaussian / heartwall / pf_naive.
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  core::StemRootSampler stem;
  for (const char* name : {"gaussian", "heartwall", "pf_naive", "bfs"}) {
    const eval::Pipeline pipeline = eval::Pipeline::GenerateProfiled(
        {.suite = workloads::SuiteId::kRodinia,
         .workload = name,
         .options = {.seed = 13, .size_scale = 1.0}},
        gpu);
    const KernelTrace& trace = pipeline.Trace();
    const eval::EvalResult result =
        eval::EvaluateRepeated(stem, trace, 5, 5);
    EXPECT_LT(result.error_pct, 5.0) << name;
  }
}

}  // namespace
}  // namespace stemroot
