#include "dag/sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dag/generator.h"

namespace stemroot::dag {
namespace {

class DagSamplerTest : public ::testing::Test {
 protected:
  static DagWorkload MakeProfiled(Parallelism parallelism,
                                  uint32_t steps = 30) {
    MultiGpuTrainingConfig config;
    config.parallelism = parallelism;
    config.steps = steps;
    DagWorkload workload = MakeMultiGpuTraining(config, 7);
    hw::HardwareModel gpu(hw::GpuSpec::H100());
    NetworkModel network;
    ProfileDag(workload, gpu, network, 3);
    return workload;
  }
};

TEST_F(DagSamplerTest, GeneratorProducesValidProfiledDag) {
  const DagWorkload workload = MakeProfiled(Parallelism::kData);
  EXPECT_GT(workload.NumOps(), 100u);
  EXPECT_EQ(workload.NumDevices(), 4u);
  bool saw_compute = false, saw_collective = false;
  for (const DagOp& op : workload.Ops()) {
    EXPECT_GT(op.duration_us, 0.0);
    saw_compute |= op.kind == OpKind::kCompute;
    saw_collective |= op.kind == OpKind::kCollective;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_collective);
  EXPECT_NO_THROW(ScheduleDag(workload));
}

TEST_F(DagSamplerTest, PipelineDagHasP2pAndDeeperMakespan) {
  const DagWorkload workload = MakeProfiled(Parallelism::kPipeline, 10);
  bool saw_p2p = false;
  for (const DagOp& op : workload.Ops())
    saw_p2p |= op.kind == OpKind::kPointToPoint;
  EXPECT_TRUE(saw_p2p);
  const ScheduleResult schedule = ScheduleDag(workload);
  // Pipelining overlaps stages: makespan is far below serial total but
  // above the per-device share.
  EXPECT_LT(schedule.makespan_us, workload.TotalDurationUs());
  EXPECT_GT(schedule.makespan_us,
            workload.TotalDurationUs() / workload.NumDevices() * 0.5);
}

TEST_F(DagSamplerTest, ConfigValidation) {
  MultiGpuTrainingConfig config;
  config.devices = 0;
  EXPECT_THROW(MakeMultiGpuTraining(config, 1), std::invalid_argument);
  config = MultiGpuTrainingConfig{};
  config.parallelism = Parallelism::kPipeline;
  config.layers = 2;
  config.devices = 4;
  EXPECT_THROW(MakeMultiGpuTraining(config, 1), std::invalid_argument);
}

TEST_F(DagSamplerTest, NodeSamplingEstimatesTotalWithinBound) {
  const DagWorkload workload = MakeProfiled(Parallelism::kData);
  StemDagSampler sampler;
  const DagSamplingPlan plan = sampler.BuildPlan(workload, 5);
  const double truth = workload.TotalDurationUs();
  const double estimate = EstimateTotalUs(plan, workload);
  EXPECT_LT(std::abs(estimate - truth) / truth,
            sampler.Config().stem.epsilon);
  EXPECT_LT(SampledCostUs(plan, workload), truth / 3.0);
  EXPECT_GT(plan.num_clusters, 0u);
}

TEST_F(DagSamplerTest, PlugInMakespanTracksSchedule) {
  const DagWorkload workload = MakeProfiled(Parallelism::kData);
  StemDagSampler sampler;
  const DagSamplingPlan plan = sampler.BuildPlan(workload, 5);
  const double truth = ScheduleDag(workload).makespan_us;
  const double estimate = EstimateMakespanUs(plan, workload);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.08);
}

TEST_F(DagSamplerTest, PipelineMakespanAlsoTracked) {
  const DagWorkload workload = MakeProfiled(Parallelism::kPipeline, 15);
  StemDagSampler sampler;
  const DagSamplingPlan plan = sampler.BuildPlan(workload, 5);
  const double truth = ScheduleDag(workload).makespan_us;
  const double estimate = EstimateMakespanUs(plan, workload);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.08);
}

TEST_F(DagSamplerTest, EveryOpBelongsToExactlyOneCluster) {
  const DagWorkload workload = MakeProfiled(Parallelism::kData);
  StemDagSampler sampler;
  const DagSamplingPlan plan = sampler.BuildPlan(workload, 5);
  ASSERT_EQ(plan.cluster_of_op.size(), workload.NumOps());
  for (uint32_t cluster : plan.cluster_of_op)
    EXPECT_LT(cluster, plan.num_clusters);
  for (double mean : plan.cluster_mean_us) EXPECT_GT(mean, 0.0);
}

TEST_F(DagSamplerTest, ClustersSeparateHiddenContexts) {
  // Early/late-layer contexts differ in locality -> time; node clustering
  // on durations should keep clusters context-pure.
  const DagWorkload workload = MakeProfiled(Parallelism::kData);
  StemDagSampler sampler;
  const DagSamplingPlan plan = sampler.BuildPlan(workload, 5);
  // For each cluster containing compute ops, the dominant hidden context
  // should account for most members.
  std::vector<std::map<uint32_t, size_t>> context_counts(plan.num_clusters);
  std::vector<size_t> sizes(plan.num_clusters, 0);
  for (uint32_t i = 0; i < workload.NumOps(); ++i) {
    if (workload.At(i).kind != OpKind::kCompute) continue;
    ++context_counts[plan.cluster_of_op[i]][workload.At(i).context_id];
    ++sizes[plan.cluster_of_op[i]];
  }
  size_t checked = 0;
  for (uint32_t c = 0; c < plan.num_clusters; ++c) {
    if (sizes[c] < 50) continue;
    size_t dominant = 0;
    for (const auto& [ctx, count] : context_counts[c])
      dominant = std::max(dominant, count);
    EXPECT_GT(static_cast<double>(dominant) / sizes[c], 0.8);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(DagSamplerTest, RejectsBadInput) {
  StemDagSampler sampler;
  DagWorkload empty("e", 1);
  EXPECT_THROW(sampler.BuildPlan(empty, 1), std::invalid_argument);

  MultiGpuTrainingConfig config;
  config.steps = 2;
  DagWorkload unprofiled = MakeMultiGpuTraining(config, 7);
  EXPECT_THROW(sampler.BuildPlan(unprofiled, 1), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::dag
