#include "dag/dag.h"
#include "dag/network.h"

#include <gtest/gtest.h>

namespace stemroot::dag {
namespace {

DagOp Compute(uint32_t kernel, uint32_t device, double duration,
              std::vector<uint32_t> deps = {}) {
  DagOp op;
  op.kind = OpKind::kCompute;
  op.kernel_id = kernel;
  op.device = device;
  op.duration_us = duration;
  op.deps = std::move(deps);
  return op;
}

TEST(DagWorkloadTest, InternAndAdd) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  EXPECT_EQ(workload.InternKernel("fwd"), k);
  EXPECT_EQ(workload.KernelName(k), "fwd");
  const uint32_t a = workload.Add(Compute(k, 0, 1.0));
  const uint32_t b = workload.Add(Compute(k, 1, 1.0, {a}));
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(workload.NumOps(), 2u);
  EXPECT_DOUBLE_EQ(workload.TotalDurationUs(), 2.0);
}

TEST(DagWorkloadTest, AddValidation) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  EXPECT_THROW(workload.Add(Compute(k + 1, 0, 1.0)), std::invalid_argument);
  EXPECT_THROW(workload.Add(Compute(k, 5, 1.0)), std::invalid_argument);
  // Forward (non-topological) dependency rejected.
  EXPECT_THROW(workload.Add(Compute(k, 0, 1.0, {7})),
               std::invalid_argument);
  DagOp p2p;
  p2p.kind = OpKind::kPointToPoint;
  p2p.kernel_id = k;
  p2p.device = 0;
  p2p.peer_device = 9;
  EXPECT_THROW(workload.Add(p2p), std::invalid_argument);
}

TEST(ScheduleTest, IndependentOpsOnDifferentDevicesOverlap) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  workload.Add(Compute(k, 0, 10.0));
  workload.Add(Compute(k, 1, 10.0));
  const ScheduleResult schedule = ScheduleDag(workload);
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 10.0);  // parallel
  EXPECT_DOUBLE_EQ(schedule.compute_time_us, 20.0);
}

TEST(ScheduleTest, SameDeviceSerializes) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  workload.Add(Compute(k, 0, 10.0));
  workload.Add(Compute(k, 0, 10.0));
  EXPECT_DOUBLE_EQ(ScheduleDag(workload).makespan_us, 20.0);
}

TEST(ScheduleTest, DependenciesChain) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  const uint32_t a = workload.Add(Compute(k, 0, 10.0));
  workload.Add(Compute(k, 1, 5.0, {a}));  // other device, but depends
  const ScheduleResult schedule = ScheduleDag(workload);
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 15.0);
  EXPECT_DOUBLE_EQ(schedule.start_us[1], 10.0);
}

TEST(ScheduleTest, CollectiveSynchronizesAllDevices) {
  DagWorkload workload("w", 2);
  const uint32_t k = workload.InternKernel("fwd");
  const uint32_t comm = workload.InternKernel("allreduce");
  workload.Add(Compute(k, 0, 10.0));
  workload.Add(Compute(k, 1, 4.0));
  DagOp collective;
  collective.kind = OpKind::kCollective;
  collective.kernel_id = comm;
  collective.duration_us = 3.0;
  collective.deps = {0, 1};
  workload.Add(collective);
  // Post-collective work on the fast device still starts after it.
  workload.Add(Compute(k, 1, 1.0, {2}));
  const ScheduleResult schedule = ScheduleDag(workload);
  EXPECT_DOUBLE_EQ(schedule.start_us[2], 10.0);  // waits for slowest
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 14.0);
  EXPECT_DOUBLE_EQ(schedule.comm_time_us, 3.0);
}

TEST(ScheduleTest, LinkSerializesTransfers) {
  DagWorkload workload("w", 3);
  const uint32_t send = workload.InternKernel("send");
  for (int i = 0; i < 2; ++i) {
    DagOp p2p;
    p2p.kind = OpKind::kPointToPoint;
    p2p.kernel_id = send;
    p2p.device = 0;
    p2p.peer_device = static_cast<uint32_t>(i + 1);
    p2p.duration_us = 5.0;
    workload.Add(p2p);
  }
  EXPECT_DOUBLE_EQ(ScheduleDag(workload).makespan_us, 10.0);
}

TEST(ScheduleTest, RejectsUnprofiledAndMismatchedInput) {
  DagWorkload workload("w", 1);
  const uint32_t k = workload.InternKernel("fwd");
  workload.Add(Compute(k, 0, 0.0));  // unprofiled
  EXPECT_THROW(ScheduleDag(workload), std::invalid_argument);
  const std::vector<double> wrong_arity = {1.0, 2.0};
  EXPECT_THROW(ScheduleDagWith(workload, wrong_arity),
               std::invalid_argument);
}

TEST(ScheduleTest, SubstitutedDurationsChangeMakespan) {
  DagWorkload workload("w", 1);
  const uint32_t k = workload.InternKernel("fwd");
  workload.Add(Compute(k, 0, 10.0));
  workload.Add(Compute(k, 0, 10.0, {0}));
  const std::vector<double> faster = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(ScheduleDagWith(workload, faster).makespan_us, 2.0);
}

TEST(NetworkModelTest, CollectiveScalesWithRingFactor) {
  NetworkModel network;
  network.link_gbps = 100.0;
  network.latency_us = 1.0;
  // 2 devices: wire bytes = 2 * (1/2) * bytes = bytes.
  EXPECT_NEAR(network.CollectiveTimeUs(100'000'000, 2),
              100'000'000 / (100.0 * 1e3) + 2.0, 1e-9);
  // More devices move more wire bytes (factor 2(n-1)/n grows).
  EXPECT_GT(network.CollectiveTimeUs(100'000'000, 8),
            network.CollectiveTimeUs(100'000'000, 2));
  // Single device: latency only.
  EXPECT_DOUBLE_EQ(network.CollectiveTimeUs(1 << 20, 1), 1.0);
  EXPECT_THROW(network.CollectiveTimeUs(1, 0), std::invalid_argument);
}

TEST(NetworkModelTest, P2pAndValidation) {
  NetworkModel network;
  network.link_gbps = 200.0;
  network.latency_us = 8.0;
  EXPECT_NEAR(network.P2pTimeUs(200'000'000), 1000.0 + 8.0, 1e-9);
  NetworkModel bad;
  bad.link_gbps = 0.0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::dag
