#include "common/cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <thread>

namespace stemroot {
namespace {

namespace fs = std::filesystem;

class ArtifactCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sr_cache_test_" +
            std::to_string(
                std::hash<std::thread::id>{}(std::this_thread::get_id())) +
            "_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed() +
                counter_++));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string DirStr() const { return dir_.string(); }

  fs::path dir_;
  static int counter_;
};

int ArtifactCacheTest::counter_ = 0;

TEST(Fnv1a64Test, KnownValuesAndSensitivity) {
  // FNV-1a offset basis for the empty string.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
  const std::string with_nul("a\0b", 3);
  EXPECT_NE(Fnv1a64(with_nul), Fnv1a64("ab"));
}

TEST(HexDigest64Test, FixedWidthLowercase) {
  EXPECT_EQ(HexDigest64(0), "0000000000000000");
  EXPECT_EQ(HexDigest64(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(HexDigest64(~0ULL), "ffffffffffffffff");
}

TEST_F(ArtifactCacheTest, MissOnEmptyCacheThenRoundTrip) {
  ArtifactCache cache(DirStr());
  EXPECT_FALSE(cache.Get("key-1").has_value());

  const std::string payload = "binary\0payload\xff with bytes";
  cache.Put("key-1", payload);
  const std::optional<std::string> got = cache.Get("key-1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(cache.Contains("key-1"));
  EXPECT_FALSE(cache.Contains("key-2"));
}

TEST_F(ArtifactCacheTest, PutReplacesExistingEntry) {
  ArtifactCache cache(DirStr());
  cache.Put("k", "first");
  cache.Put("k", "second");
  const std::optional<std::string> got = cache.Get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second");
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST_F(ArtifactCacheTest, EmptyPayloadRoundTrips) {
  ArtifactCache cache(DirStr());
  cache.Put("empty", "");
  const std::optional<std::string> got = cache.Get("empty");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_F(ArtifactCacheTest, NoTempFileResidueAfterPut) {
  ArtifactCache cache(DirStr());
  cache.Put("k", "payload");
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".srce") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(ArtifactCacheTest, TruncatedEntryIsAMiss) {
  ArtifactCache cache(DirStr());
  cache.Put("k", std::string(1024, 'x'));
  const std::string path = cache.EntryPath("k");
  fs::resize_file(path, 32);
  EXPECT_FALSE(cache.Get("k").has_value());
  // The defective entry can be overwritten and works again.
  cache.Put("k", "fresh");
  ASSERT_TRUE(cache.Get("k").has_value());
  EXPECT_EQ(*cache.Get("k"), "fresh");
}

TEST_F(ArtifactCacheTest, EvenHeaderOnlyTruncationIsAMiss) {
  ArtifactCache cache(DirStr());
  cache.Put("k", "payload");
  fs::resize_file(cache.EntryPath("k"), 3);  // shorter than the magic
  EXPECT_FALSE(cache.Get("k").has_value());
  fs::resize_file(cache.EntryPath("k"), 0);
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST_F(ArtifactCacheTest, FlippedPayloadByteIsAMiss) {
  ArtifactCache cache(DirStr());
  cache.Put("k", std::string(256, 'y'));
  const std::string path = cache.EntryPath("k");
  // Flip one byte near the end (inside the payload).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(-5, std::ios::end);
  f.put('Z');
  f.close();
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST_F(ArtifactCacheTest, WrongKeyInEntryIsAMiss) {
  ArtifactCache cache(DirStr());
  cache.Put("real-key", "payload");
  // Simulate a digest collision / renamed file: the entry for "real-key"
  // placed where another key's digest points.
  fs::copy_file(cache.EntryPath("real-key"), cache.EntryPath("other-key"));
  EXPECT_FALSE(cache.Get("other-key").has_value());
  EXPECT_TRUE(cache.Get("real-key").has_value());
}

TEST_F(ArtifactCacheTest, GarbageFileIsAMissNotACrash) {
  ArtifactCache cache(DirStr());
  fs::create_directories(dir_);
  std::ofstream(cache.EntryPath("k"), std::ios::binary)
      << "this is not an SRCE entry at all";
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST_F(ArtifactCacheTest, StatsCountEntriesAndBytes) {
  ArtifactCache cache(DirStr());
  EXPECT_EQ(cache.GetStats().entries, 0u);  // missing dir == empty cache
  cache.Put("a", std::string(100, 'a'));
  cache.Put("b", std::string(200, 'b'));
  const ArtifactCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 300u);  // payloads + headers
}

TEST_F(ArtifactCacheTest, VerifyReportsCorruptEntries) {
  ArtifactCache cache(DirStr());
  cache.Put("good", "payload");
  cache.Put("bad", std::string(512, 'b'));
  fs::resize_file(cache.EntryPath("bad"), 40);

  const std::vector<ArtifactCache::EntryInfo> report = cache.Verify();
  ASSERT_EQ(report.size(), 2u);
  size_t valid = 0, invalid = 0;
  for (const ArtifactCache::EntryInfo& info : report) {
    if (info.valid) {
      ++valid;
      EXPECT_TRUE(info.problem.empty());
    } else {
      ++invalid;
      EXPECT_FALSE(info.problem.empty());
    }
  }
  EXPECT_EQ(valid, 1u);
  EXPECT_EQ(invalid, 1u);
}

TEST_F(ArtifactCacheTest, EvictAllAndEvictToBudget) {
  ArtifactCache cache(DirStr());
  cache.Put("a", std::string(1000, 'a'));
  cache.Put("b", std::string(1000, 'b'));
  cache.Put("c", std::string(1000, 'c'));
  EXPECT_EQ(cache.GetStats().entries, 3u);

  // Shrink to roughly one entry's footprint: at least one must go.
  const uint64_t removed = cache.Evict(1200);
  EXPECT_GE(removed, 1u);
  EXPECT_LE(cache.GetStats().bytes, 1200u);

  cache.Evict(0);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST_F(ArtifactCacheTest, PutIntoUnwritableDirThrows) {
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores directory modes";
  fs::create_directories(dir_);
  fs::permissions(dir_, fs::perms::owner_read | fs::perms::owner_exec);
  ArtifactCache cache(DirStr());
  EXPECT_THROW(cache.Put("k", "payload"), std::runtime_error);
  fs::permissions(dir_, fs::perms::owner_all);
}

}  // namespace
}  // namespace stemroot
