#include "common/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace stemroot {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/journal_test_" + name + ".jsonl";
}

std::vector<json::Value> ReadEvents(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<json::Value> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value event;
    std::string error;
    EXPECT_TRUE(json::Parse(line, event, &error)) << error << ": " << line;
    events.push_back(std::move(event));
  }
  return events;
}

/// Every test owns the process-global journal for its duration.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal::Close();
    journal::ResetStats();
    journal::SetRateLimit(2000);
  }
  void TearDown() override {
    journal::Close();
    journal::SetRateLimit(2000);
  }
};

TEST_F(JournalTest, DisabledByDefaultAndEmitIsNoOp) {
  EXPECT_FALSE(journal::Enabled());
  journal::Emit(journal::Severity::kInfo, "never.written");
  EXPECT_EQ(journal::GetStats().emitted, 0u);
}

TEST_F(JournalTest, SeverityNames) {
  EXPECT_STREQ(journal::SeverityName(journal::Severity::kDebug), "debug");
  EXPECT_STREQ(journal::SeverityName(journal::Severity::kInfo), "info");
  EXPECT_STREQ(journal::SeverityName(journal::Severity::kWarn), "warn");
  EXPECT_STREQ(journal::SeverityName(journal::Severity::kError), "error");
}

TEST_F(JournalTest, EmitWritesReservedKeysAndTypedFields) {
  const std::string path = TempPath("emit");
  std::remove(path.c_str());
  journal::Open(path);
  EXPECT_TRUE(journal::Enabled());
  journal::Emit(journal::Severity::kWarn, "request.slow",
                {{"verb", "feed"},
                 {"latency_us", 312.5},
                 {"session", uint64_t{7}},
                 {"ok", false}});
  journal::Close();
  EXPECT_FALSE(journal::Enabled());

  const std::vector<json::Value> events = ReadEvents(path);
  ASSERT_EQ(events.size(), 1u);
  const json::Value& e = events[0];
  ASSERT_TRUE(e.IsObject());
  EXPECT_TRUE(e.Find("ts_us") != nullptr && e.Find("ts_us")->IsNumber());
  EXPECT_TRUE(e.Find("tid") != nullptr && e.Find("tid")->IsNumber());
  EXPECT_TRUE(e.Find("seq") != nullptr && e.Find("seq")->IsNumber());
  ASSERT_TRUE(e.Find("sev") != nullptr && e.Find("sev")->IsString());
  EXPECT_EQ(e.Find("sev")->string, "warn");
  ASSERT_TRUE(e.Find("event") != nullptr && e.Find("event")->IsString());
  EXPECT_EQ(e.Find("event")->string, "request.slow");
  ASSERT_TRUE(e.Find("verb") != nullptr && e.Find("verb")->IsString());
  EXPECT_EQ(e.Find("verb")->string, "feed");
  ASSERT_TRUE(e.Find("latency_us") != nullptr);
  EXPECT_DOUBLE_EQ(e.Find("latency_us")->number, 312.5);
  ASSERT_TRUE(e.Find("session") != nullptr);
  EXPECT_DOUBLE_EQ(e.Find("session")->number, 7.0);
  ASSERT_TRUE(e.Find("ok") != nullptr);
  EXPECT_EQ(e.Find("ok")->kind, json::Value::Kind::kBool);
}

TEST_F(JournalTest, SequenceIsGapFreeAndTimestampsMonotone) {
  const std::string path = TempPath("seq");
  std::remove(path.c_str());
  journal::Open(path);
  for (int i = 0; i < 20; ++i)
    journal::Emit(journal::Severity::kInfo, "tick", {{"i", i}});
  journal::Close();

  const std::vector<json::Value> events = ReadEvents(path);
  ASSERT_EQ(events.size(), 20u);
  uint64_t last_ts = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const uint64_t seq =
        static_cast<uint64_t>(events[i].Find("seq")->number);
    if (i > 0) {
      const uint64_t prev =
          static_cast<uint64_t>(events[i - 1].Find("seq")->number);
      EXPECT_EQ(seq, prev + 1) << "seq gap at line " << i;
    }
    const uint64_t ts =
        static_cast<uint64_t>(events[i].Find("ts_us")->number);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST_F(JournalTest, RateLimitDropsAndAnnotatesNextEvent) {
  const std::string path = TempPath("ratelimit");
  std::remove(path.c_str());
  journal::Open(path);
  journal::SetRateLimit(5);
  // A burst far over budget lands in a single token-bucket second.
  for (int i = 0; i < 50; ++i)
    journal::Emit(journal::Severity::kDebug, "storm", {{"i", i}});
  const journal::Stats mid = journal::GetStats();
  EXPECT_EQ(mid.emitted, 5u);
  EXPECT_EQ(mid.dropped, 45u);

  // Errors bypass the limiter even while the bucket is empty, and the
  // first post-drop write carries the drop count.
  journal::Emit(journal::Severity::kError, "storm.error");
  journal::Close();
  const journal::Stats final_stats = journal::GetStats();
  EXPECT_EQ(final_stats.emitted, 6u);
  EXPECT_EQ(final_stats.errors, 1u);

  const std::vector<json::Value> events = ReadEvents(path);
  ASSERT_EQ(events.size(), 6u);
  const json::Value& error_event = events.back();
  EXPECT_EQ(error_event.Find("event")->string, "storm.error");
  ASSERT_TRUE(error_event.Find("dropped_since_last") != nullptr);
  EXPECT_DOUBLE_EQ(error_event.Find("dropped_since_last")->number, 45.0);
}

TEST_F(JournalTest, ZeroRateLimitDisablesTheLimiter) {
  const std::string path = TempPath("nolimit");
  std::remove(path.c_str());
  journal::Open(path);
  journal::SetRateLimit(0);
  for (int i = 0; i < 5000; ++i)
    journal::Emit(journal::Severity::kDebug, "flood");
  journal::Close();
  const journal::Stats stats = journal::GetStats();
  EXPECT_EQ(stats.emitted, 5000u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(JournalTest, ReopenAppendsAndKeepsSequenceUnique) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  journal::Open(path);
  journal::Emit(journal::Severity::kInfo, "first");
  journal::Close();
  journal::Open(path);
  journal::Emit(journal::Severity::kInfo, "second");
  journal::Close();

  const std::vector<json::Value> events = ReadEvents(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Find("event")->string, "first");
  EXPECT_EQ(events[1].Find("event")->string, "second");
  // seq stays process-unique across reopen.
  EXPECT_GT(events[1].Find("seq")->number, events[0].Find("seq")->number);
}

TEST_F(JournalTest, OpenThrowsOnUnwritablePath) {
  EXPECT_THROW(journal::Open("/no/such/dir/journal.jsonl"),
               std::runtime_error);
  EXPECT_FALSE(journal::Enabled());
}

TEST_F(JournalTest, StringEscaping) {
  const std::string path = TempPath("escape");
  std::remove(path.c_str());
  journal::Open(path);
  journal::Emit(journal::Severity::kInfo, "escape.check",
                {{"text", "line\nbreak \"quoted\" back\\slash"}});
  journal::Close();
  const std::vector<json::Value> events = ReadEvents(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].Find("text")->string,
            "line\nbreak \"quoted\" back\\slash");
}

}  // namespace
}  // namespace stemroot
