#include "common/resource.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"

#ifndef SR_TESTDATA_DIR
#error "SR_TESTDATA_DIR must point at tests/common/testdata"
#endif

namespace stemroot::resource {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(SR_TESTDATA_DIR) + "/" + name;
}

/// Accounting state is process-global; every test that touches it starts
/// from a clean slate and leaves the switch off (the process default).
class AccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetAccountingEnabled(false);
    ResetAccounting();
  }
  void TearDown() override {
    SetAccountingEnabled(false);
    ResetAccounting();
  }
};

TEST(ResourceParseTest, StatmGoodFile) {
  // statm_good.txt: "48276 6144 1321 202 0 3459 0" — resident = field 2.
  const std::optional<uint64_t> rss =
      ParseStatmRssBytes("48276 6144 1321 202 0 3459 0\n", 4096);
  ASSERT_TRUE(rss.has_value());
  EXPECT_EQ(*rss, 6144u * 4096u);
}

TEST(ResourceParseTest, StatmPageSizeScales) {
  const std::optional<uint64_t> rss = ParseStatmRssBytes("10 7 1", 16384);
  ASSERT_TRUE(rss.has_value());
  EXPECT_EQ(*rss, 7u * 16384u);
}

TEST(ResourceParseTest, StatmTruncatedIsAbsent) {
  EXPECT_FALSE(ParseStatmRssBytes("48276", 4096).has_value());
  EXPECT_FALSE(ParseStatmRssBytes("", 4096).has_value());
  EXPECT_FALSE(ParseStatmRssBytes("  \n ", 4096).has_value());
}

TEST(ResourceParseTest, StatmGarbageIsAbsent) {
  EXPECT_FALSE(
      ParseStatmRssBytes("total resident shared", 4096).has_value());
  EXPECT_FALSE(ParseStatmRssBytes("48276 -3 1", 4096).has_value());
}

TEST(ResourceParseTest, StatusGoodText) {
  const StatusFields fields = ParseStatusText(
      "Name:\tstemroot\nVmHWM:\t   24576 kB\nVmRSS:\t   24320 kB\n");
  ASSERT_TRUE(fields.vm_hwm_bytes.has_value());
  ASSERT_TRUE(fields.vm_rss_bytes.has_value());
  EXPECT_EQ(*fields.vm_hwm_bytes, 24576u * 1024u);
  EXPECT_EQ(*fields.vm_rss_bytes, 24320u * 1024u);
}

TEST(ResourceParseTest, StatusMissingFieldsStayAbsent) {
  const StatusFields fields =
      ParseStatusText("Name:\tstemroot\nVmRSS:\t 8192 kB\n");
  EXPECT_FALSE(fields.vm_hwm_bytes.has_value());
  ASSERT_TRUE(fields.vm_rss_bytes.has_value());
  EXPECT_EQ(*fields.vm_rss_bytes, 8192u * 1024u);
}

TEST(ResourceParseTest, StatusBadUnitRejectedPerField) {
  // Each field fails independently: the mB line is malformed, the kB
  // line still parses.
  const StatusFields fields =
      ParseStatusText("VmHWM:\t 4096 mB\nVmRSS:\t 2048 kB\n");
  EXPECT_FALSE(fields.vm_hwm_bytes.has_value());
  ASSERT_TRUE(fields.vm_rss_bytes.has_value());
  EXPECT_EQ(*fields.vm_rss_bytes, 2048u * 1024u);
}

TEST(ResourceParseTest, StatusMissingUnitTolerated) {
  const StatusFields fields = ParseStatusText("VmRSS:\t 100\n");
  ASSERT_TRUE(fields.vm_rss_bytes.has_value());
  EXPECT_EQ(*fields.vm_rss_bytes, 100u * 1024u);
}

TEST(ResourceParseTest, StatusNegativeOrGarbageValueAbsent) {
  EXPECT_FALSE(ParseStatusText("VmRSS:\t -5 kB\n").vm_rss_bytes.has_value());
  EXPECT_FALSE(
      ParseStatusText("VmRSS:\t lots kB\n").vm_rss_bytes.has_value());
  EXPECT_FALSE(ParseStatusText("VmRSS:\n").vm_rss_bytes.has_value());
}

TEST(ResourceParseTest, ReadProcFilesFixtures) {
  const PhysicalSample sample = ReadProcFiles(
      Fixture("statm_good.txt"), Fixture("status_good.txt"), 4096);
  ASSERT_TRUE(sample.rss_bytes.has_value());
  EXPECT_EQ(*sample.rss_bytes, 6144u * 4096u);  // statm wins over VmRSS
  ASSERT_TRUE(sample.hwm_bytes.has_value());
  EXPECT_EQ(*sample.hwm_bytes, 24576u * 1024u);
  // The pure reader never touches getrusage.
  EXPECT_FALSE(sample.max_rss_bytes.has_value());
  EXPECT_DOUBLE_EQ(sample.user_cpu_seconds, 0.0);
}

TEST(ResourceParseTest, ReadProcFilesStatmFallsBackToVmRss) {
  const PhysicalSample sample = ReadProcFiles(
      Fixture("statm_truncated.txt"), Fixture("status_truncated.txt"), 4096);
  ASSERT_TRUE(sample.rss_bytes.has_value());
  EXPECT_EQ(*sample.rss_bytes, 8192u * 1024u);  // VmRSS fallback
  EXPECT_FALSE(sample.hwm_bytes.has_value());   // truncated before VmHWM
}

TEST(ResourceParseTest, ReadProcFilesGarbageAndBadUnit) {
  const PhysicalSample sample = ReadProcFiles(
      Fixture("statm_garbage.txt"), Fixture("status_bad_unit.txt"), 4096);
  ASSERT_TRUE(sample.rss_bytes.has_value());
  EXPECT_EQ(*sample.rss_bytes, 2048u * 1024u);  // VmRSS fallback again
  EXPECT_FALSE(sample.hwm_bytes.has_value());   // mB unit rejected
}

TEST(ResourceParseTest, ReadProcFilesMissingFilesAbsentNotFatal) {
  const PhysicalSample sample = ReadProcFiles(
      Fixture("no_such_statm.txt"), Fixture("no_such_status.txt"), 4096);
  EXPECT_FALSE(sample.rss_bytes.has_value());
  EXPECT_FALSE(sample.hwm_bytes.has_value());
  EXPECT_FALSE(sample.max_rss_bytes.has_value());
}

TEST_F(AccountingTest, DisabledIsNoOp) {
  EXPECT_FALSE(AccountingEnabled());
  Account("trace", 1000);
  AccountPeak("sim", 2000);
  EXPECT_TRUE(LogicalPeaks().empty());
}

TEST_F(AccountingTest, AccountIsChargeOnly) {
  SetAccountingEnabled(true);
  Account("trace", 100);
  Account("trace", 50);
  Account("root", 7);
  const std::map<std::string, uint64_t> peaks = LogicalPeaks();
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks.at("trace"), 150u);
  EXPECT_EQ(peaks.at("root"), 7u);
}

TEST_F(AccountingTest, AccountPeakTakesMax) {
  SetAccountingEnabled(true);
  AccountPeak("sim", 500);
  AccountPeak("sim", 200);  // lower value never shrinks the peak
  AccountPeak("sim", 900);
  EXPECT_EQ(LogicalPeaks().at("sim"), 900u);
}

TEST_F(AccountingTest, ResetClearsCategories) {
  SetAccountingEnabled(true);
  Account("trace", 1);
  ResetAccounting();
  EXPECT_TRUE(LogicalPeaks().empty());
}

TEST_F(AccountingTest, ConcurrentChargesAreScheduleInvariant) {
  // The determinism contract: N threads issuing a fixed set of charges
  // always land on the same peaks — Account peaks equal the total sum,
  // AccountPeak peaks equal the max over the fixed per-call values.
  SetAccountingEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Account("trace", 3);
        AccountPeak("sim", static_cast<uint64_t>((t * kPerThread + i) % 257));
      }
    });
  for (std::thread& t : threads) t.join();
  const std::map<std::string, uint64_t> peaks = LogicalPeaks();
  EXPECT_EQ(peaks.at("trace"),
            static_cast<uint64_t>(kThreads) * kPerThread * 3);
  EXPECT_EQ(peaks.at("sim"), 256u);  // max of (index % 257)
}

TEST(ResourceSamplerTest, SamplePhysicalFoldsIntoStats) {
  const Stats before = GetStats();
  const PhysicalSample sample = SamplePhysical();
  const Stats after = GetStats();
  EXPECT_GE(after.samples, before.samples + 1);
#if defined(__linux__)
  // On Linux /proc/self is always there: the sample and the folded peak
  // must both be live.
  ASSERT_TRUE(sample.rss_bytes.has_value());
  EXPECT_GT(*sample.rss_bytes, 0u);
  EXPECT_GT(after.peak_rss_bytes, 0u);
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(after.peak_rss_bytes, CurrentRssBytes());
#endif
  EXPECT_GE(after.user_cpu_seconds + after.system_cpu_seconds, 0.0);
}

TEST(ResourceSamplerTest, PeakRssBytesSamplesFirst) {
  const uint64_t samples_before = GetStats().samples;
  const uint64_t peak = PeakRssBytes();
  EXPECT_GE(GetStats().samples, samples_before + 1);
#if defined(__linux__)
  EXPECT_GT(peak, 0u);
#else
  (void)peak;
#endif
}

TEST(ResourceSamplerTest, PeakIsMonotone) {
  const uint64_t first = PeakRssBytes();
  // Grow the heap a little, then re-sample: the peak may rise but never
  // falls.
  std::vector<char> ballast(8 * 1024 * 1024, 1);
  const uint64_t second = PeakRssBytes();
  EXPECT_GE(second, first);
  (void)ballast[ballast.size() / 2];
}

TEST(ResourceSamplerTest, StartStopLifecycle) {
  EXPECT_FALSE(SamplerRunning());
  const uint64_t samples_before = GetStats().samples;
  StartSampler(1);
  EXPECT_TRUE(SamplerRunning());
  StartSampler(1);  // idempotent while running
  EXPECT_TRUE(SamplerRunning());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  StopSampler();
  EXPECT_FALSE(SamplerRunning());
  StopSampler();  // safe when not running
  // At least the initial tick plus the final sample in the destructor.
  EXPECT_GE(GetStats().samples, samples_before + 2);
}

TEST(ResourceSamplerTest, RssHistogramMergesIntoMatchingGeometry) {
  SamplePhysical();  // at least one recorded RSS on Linux
  LogHistogram snapshot = MakeRssHistogram();
  MergeRssHistogram(snapshot);
#if defined(__linux__)
  EXPECT_GT(snapshot.Count(), 0u);
  EXPECT_GT(snapshot.Max(), 0.0);
#endif
  // A histogram with foreign geometry is refused.
  LogHistogram wrong(1.0, 1.5, 10);
  EXPECT_THROW(MergeRssHistogram(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::resource
