#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace stemroot {
namespace {

/// Force a thread count for the duration of one test, restoring auto mode
/// afterwards so tests compose in any order.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(0); }
};

TEST(NumThreadsTest, DefaultsToAtLeastOne) {
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
}

TEST(NumThreadsTest, ExplicitSettingWins) {
  ScopedThreads guard(3);
  EXPECT_EQ(NumThreads(), 3);
}

TEST(NumThreadsTest, EnvVariableIsHonored) {
  SetNumThreads(0);
  ::setenv("STEMROOT_THREADS", "5", 1);
  EXPECT_EQ(NumThreads(), 5);
  // Explicit SetNumThreads overrides the environment.
  SetNumThreads(2);
  EXPECT_EQ(NumThreads(), 2);
  SetNumThreads(0);
  ::unsetenv("STEMROOT_THREADS");
}

TEST(NumThreadsTest, GarbageEnvFallsThrough) {
  SetNumThreads(0);
  ::setenv("STEMROOT_THREADS", "lots", 1);
  EXPECT_GE(NumThreads(), 1);
  ::setenv("STEMROOT_THREADS", "-4", 1);
  EXPECT_GE(NumThreads(), 1);
  ::unsetenv("STEMROOT_THREADS");
}

TEST(NumThreadsTest, NegativeExplicitThrows) {
  EXPECT_THROW(SetNumThreads(-1), std::invalid_argument);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ScopedThreads guard(8);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<uint32_t>> visits(kN);
  ParallelFor(0, kN, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
}

TEST(ParallelForTest, RespectsBeginOffset) {
  ScopedThreads guard(4);
  std::atomic<uint64_t> sum{0};
  ParallelFor(100, 200, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ParallelForTest, EmptyRangeDoesNothing) {
  ScopedThreads guard(8);
  std::atomic<uint32_t> calls{0};
  ParallelFor(0, 0, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); });  // inverted
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelForTest, RangeSmallerThanThreadCount) {
  ScopedThreads guard(8);
  std::vector<std::atomic<uint32_t>> visits(3);
  ParallelFor(0, 3, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) ASSERT_EQ(visits[i].load(), 1u);
}

TEST(ParallelForTest, PropagatesException) {
  ScopedThreads guard(8);
  EXPECT_THROW(
      ParallelFor(0, 1000,
                  [&](size_t i) {
                    if (i == 237) throw std::runtime_error("boom at 237");
                  }),
      std::runtime_error);
  // The pool survives a failed region: the next region works normally.
  std::atomic<uint32_t> calls{0};
  ParallelFor(0, 64, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64u);
}

TEST(ParallelForTest, ExceptionFromFirstChunkOnCallerThread) {
  ScopedThreads guard(8);
  EXPECT_THROW(ParallelFor(0, 8,
                           [&](size_t) {
                             throw std::invalid_argument("immediate");
                           },
                           /*grain=*/1),
               std::invalid_argument);
}

TEST(ParallelForTest, NestedCallsRunSerialAndComplete) {
  ScopedThreads guard(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<uint32_t>> visits(kOuter * kInner);
  ParallelFor(0, kOuter, [&](size_t outer) {
    EXPECT_TRUE(InParallelRegion());
    ParallelFor(0, kInner, [&](size_t inner) {
      visits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < visits.size(); ++i)
    ASSERT_EQ(visits[i].load(), 1u) << "slot " << i;
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForTest, SerialWhenSingleThreaded) {
  ScopedThreads guard(1);
  size_t calls = 0;  // unsynchronized on purpose: must run on this thread
  ParallelFor(0, 100, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 100u);
}

TEST(ParallelMapTest, PreservesInputOrder) {
  ScopedThreads guard(8);
  const std::vector<int> out =
      ParallelMap(1000, [](size_t i) { return static_cast<int>(i * 3); });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<int>(i * 3));
}

TEST(ParallelMapTest, MoveOnlyResults) {
  ScopedThreads guard(4);
  auto out = ParallelMap(
      64, [](size_t i) { return std::make_unique<size_t>(i); });
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(*out[i], i);
}

TEST(ParallelMapTest, ResultsIndependentOfThreadCount) {
  // The determinism contract at the primitive level: per-index derived
  // Rng streams give the same values no matter how chunks are scheduled.
  constexpr uint64_t kSeed = 0xBEEF;
  auto draw = [&](size_t i) {
    Rng rng(DeriveSeed(kSeed, i));
    return rng.NextDouble();
  };
  SetNumThreads(1);
  const std::vector<double> serial = ParallelMap(4096, draw);
  SetNumThreads(8);
  const std::vector<double> parallel = ParallelMap(4096, draw);
  SetNumThreads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], parallel[i]) << "index " << i;
}

TEST(ThreadPoolStressTest, TenThousandTasksWithConcurrentRngStreams) {
  ScopedThreads guard(8);
  constexpr size_t kTasks = 10000;
  constexpr uint64_t kSeed = 20260805;
  // Every task owns a derived stream and mixes several draw kinds; the
  // totals must match a serial recomputation exactly.
  std::vector<double> results(kTasks, 0.0);
  ParallelFor(0, kTasks, [&](size_t i) {
    Rng rng(DeriveSeed(kSeed, i));
    double acc = rng.NextDouble();
    acc += rng.NextGaussian();
    acc += static_cast<double>(rng.NextBounded(1000));
    acc += rng.NextLogNormal(0.0, 0.25);
    results[i] = acc;
  });
  for (size_t i = 0; i < kTasks; ++i) {
    Rng rng(DeriveSeed(kSeed, i));
    double expected = rng.NextDouble();
    expected += rng.NextGaussian();
    expected += static_cast<double>(rng.NextBounded(1000));
    expected += rng.NextLogNormal(0.0, 0.25);
    ASSERT_EQ(results[i], expected) << "task " << i;
  }
}

TEST(ThreadPoolStressTest, ManySmallRegionsBackToBack) {
  ScopedThreads guard(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(0, 50, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 50u);
}

TEST(ThreadPoolStressTest, ThreadCountChangesBetweenRegions) {
  std::atomic<uint64_t> total{0};
  for (int threads : {1, 8, 2, 8, 1, 4}) {
    SetNumThreads(threads);
    ParallelFor(0, 100, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  SetNumThreads(0);
  EXPECT_EQ(total.load(), 6u * 100u);
}

}  // namespace
}  // namespace stemroot
