#include <gtest/gtest.h>

#include <cmath>

#include "common/flags.h"
#include "common/log.h"
#include "common/str.h"
#include "common/table.h"

namespace stemroot {
namespace {

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(Format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(Format("empty"), "empty");
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("sgemm_128", "sgemm"));
  EXPECT_FALSE(StartsWith("sg", "sgemm"));
}

TEST(HumanCountTest, Suffixes) {
  EXPECT_EQ(HumanCount(950), "950.0");
  EXPECT_EQ(HumanCount(11599870), "11.6M");
  EXPECT_EQ(HumanCount(2.5e9), "2.5G");
  EXPECT_EQ(HumanCount(1500), "1.5k");
}

TEST(HumanDurationTest, UnitsProgress) {
  EXPECT_EQ(HumanDuration(500), "500.0us");
  EXPECT_EQ(HumanDuration(1500), "1.5ms");
  EXPECT_EQ(HumanDuration(2.5e6), "2.50s");
  EXPECT_EQ(HumanDuration(90e6), "1.5min");
  // The paper's 78.68-day profiling estimate renders in days.
  EXPECT_NE(HumanDuration(78.68 * 24 * 3600 * 1e6).find("days"),
            std::string::npos);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "12345"});
  const std::string render = table.Render();
  // Header rule present, all rows present.
  EXPECT_NE(render.find("----"), std::string::npos);
  EXPECT_NE(render.find("longer_name"), std::string::npos);
  // Column 2 starts at the same offset in the header and every data row.
  const auto lines = Split(render, '\n');
  ASSERT_GE(lines.size(), 4u);
  const size_t header_pos = lines[0].find("value");
  EXPECT_EQ(lines[2].find("1"), header_pos);      // row "x 1"
  EXPECT_EQ(lines[3].find("12345"), header_pos);  // row "longer_name 12345"
}

TEST(TextTableTest, ArityEnforced) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, NumFormatsNanAsNa) {
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Num(std::nan(""), 2), "N/A");
}

TEST(LogTest, FatalThrowsRuntimeError) {
  EXPECT_THROW(Fatal("bad config: %d", 42), std::runtime_error);
  try {
    Fatal("bad value %s", "x");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad value x"), std::string::npos);
  }
}

TEST(LogTest, LevelGates) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kSilent);
  // Nothing to assert on output, but these must not crash or throw.
  Inform("hidden %d", 1);
  Warn("hidden %d", 2);
  Debug("hidden %d", 3);
  SetLogLevel(old);
}

TEST(LogTest, LevelNamesRoundTrip) {
  for (const LogLevel level : {LogLevel::kSilent, LogLevel::kWarn,
                               LogLevel::kInform, LogLevel::kDebug}) {
    const auto parsed = LogLevelFromName(LogLevelName(level));
    ASSERT_TRUE(parsed.has_value()) << LogLevelName(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_EQ(LogLevelFromName("silent"), LogLevel::kSilent);
  EXPECT_EQ(LogLevelFromName("warn"), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromName("inform"), LogLevel::kInform);
  EXPECT_EQ(LogLevelFromName("debug"), LogLevel::kDebug);
  EXPECT_FALSE(LogLevelFromName("verbose").has_value());
  EXPECT_FALSE(LogLevelFromName("").has_value());
  EXPECT_FALSE(LogLevelFromName("WARN").has_value());  // case-sensitive
}

// The --log-level plumbing the CLI and benches use: a flag value parsed
// through Flags lands on SetLogLevel.
TEST(LogTest, LogLevelFlagDrivesGlobalLevel) {
  const LogLevel old = GetLogLevel();
  const char* argv[] = {"--log-level", "debug"};
  const Flags flags = Flags::Parse(2, argv);
  const auto level = LogLevelFromName(flags.GetString("log-level", "warn"));
  ASSERT_TRUE(level.has_value());
  SetLogLevel(*level);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  flags.CheckAllRead();
  SetLogLevel(old);
}

}  // namespace
}  // namespace stemroot
