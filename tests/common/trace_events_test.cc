/// \file
/// Chrome-trace event recording: on/off contract, ring wrap + drop
/// accounting, export repair of unbalanced pairs, schema validation, and
/// the Scope mid-toggle guarantee.

#include "common/trace_events.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace stemroot::trace_events {
namespace {

/// Every test starts from a clean, disabled subsystem and restores it:
/// trace state is process-global.
class TraceEventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    SetRingCapacity(65536);
    Reset();  // existing rings adopt the capacity on Reset
  }
  void TearDown() override {
    SetEnabled(false);
    SetRingCapacity(65536);
    Reset();
  }
};

TEST_F(TraceEventsTest, DisabledRecordsNothing) {
  Begin("a");
  End("a");
  Instant("i");
  CounterValue("c", 1.0);
  { Scope scope("s"); }
  const Stats stats = GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);

  std::string error;
  TraceInfo info;
  EXPECT_TRUE(ValidateTraceJson(ExportJson(), &error, nullptr, &info))
      << error;
  EXPECT_EQ(info.events, 0u);
}

TEST_F(TraceEventsTest, RecordsAllPhasesAndValidates) {
  SetEnabled(true);
  Begin("outer");
  Instant("tick");
  CounterValue("gauge", 42.5);
  {
    Scope scope("inner");
    Instant("nested");
  }
  End("outer");
  SetEnabled(false);

  std::string error;
  std::vector<std::string> names;
  TraceInfo info;
  const std::string json = ExportJson();
  ASSERT_TRUE(ValidateTraceJson(json, &error, &names, &info)) << error;
  EXPECT_EQ(info.events, 7u);
  EXPECT_EQ(info.threads, 1u);
  for (const char* expected : {"outer", "tick", "gauge", "inner", "nested"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_NE(json.find("\"stemroot-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceEventsTest, RingWrapDropsOldestAndExportStaysBalanced) {
  SetRingCapacity(8);
  Reset();
  SetEnabled(true);
  // 50 balanced pairs through an 8-slot ring: most B's are overwritten,
  // leaving E's whose begins are gone. Export must repair to balance.
  for (int i = 0; i < 50; ++i) {
    Begin("work");
    End("work");
  }
  SetEnabled(false);

  const Stats stats = GetStats();
  EXPECT_EQ(stats.recorded, 100u);
  EXPECT_EQ(stats.dropped, 92u);

  std::string error;
  TraceInfo info;
  const std::string json = ExportJson();
  ASSERT_TRUE(ValidateTraceJson(json, &error, nullptr, &info)) << error;
  // The exported events are a subset of the 8 surviving slots.
  EXPECT_LE(info.events, 8u);
  EXPECT_NE(json.find("\"dropped\":92"), std::string::npos);
}

TEST_F(TraceEventsTest, UnclosedBeginIsRepairedOut) {
  SetEnabled(true);
  Begin("never_closed");
  Instant("marker");
  SetEnabled(false);

  std::string error;
  std::vector<std::string> names;
  ASSERT_TRUE(ValidateTraceJson(ExportJson(), &error, &names)) << error;
  // The dangling begin is skipped; the instant survives.
  EXPECT_EQ(std::find(names.begin(), names.end(), "never_closed"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "marker"), names.end());
}

TEST_F(TraceEventsTest, ScopeEmitsEndWhenDisabledMidScope) {
  SetEnabled(true);
  {
    Scope scope("toggled");
    SetEnabled(false);
    // Destructor must still emit the matching end: pairs stay balanced.
  }
  std::string error;
  TraceInfo info;
  ASSERT_TRUE(ValidateTraceJson(ExportJson(), &error, nullptr, &info))
      << error;
  EXPECT_EQ(info.events, 2u);
}

TEST_F(TraceEventsTest, ScopeConstructedWhileDisabledStaysInert) {
  {
    Scope scope("inert");
    SetEnabled(true);
    // Enabled only mid-scope: the begin was never emitted, so the
    // destructor must not emit a dangling end.
  }
  SetEnabled(false);
  EXPECT_EQ(GetStats().recorded, 0u);
}

TEST_F(TraceEventsTest, ResetClearsEventsAndDropCounters) {
  SetRingCapacity(4);
  Reset();
  SetEnabled(true);
  for (int i = 0; i < 10; ++i) Instant("x");
  SetEnabled(false);
  EXPECT_GT(GetStats().dropped, 0u);

  Reset();
  const Stats stats = GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);

  TraceInfo info;
  std::string error;
  ASSERT_TRUE(ValidateTraceJson(ExportJson(), &error, nullptr, &info))
      << error;
  EXPECT_EQ(info.events, 0u);
}

TEST_F(TraceEventsTest, RingCapacityRejectsZero) {
  EXPECT_THROW(SetRingCapacity(0), std::invalid_argument);
}

TEST_F(TraceEventsTest, MultiThreadedRecordingValidates) {
  SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        Scope scope("thread.work");
        Instant("thread.tick");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetEnabled(false);

  std::string error;
  TraceInfo info;
  ASSERT_TRUE(ValidateTraceJson(ExportJson(), &error, nullptr, &info))
      << error;
  EXPECT_EQ(info.events, 4u * 300u);
  EXPECT_EQ(info.threads, 4u);
}

TEST_F(TraceEventsTest, ParallelForEmitsChunkScopes) {
  SetNumThreads(2);
  SetEnabled(true);
  ParallelFor(0, 64, [](size_t) {}, /*grain=*/8);
  SetEnabled(false);
  SetNumThreads(0);

  std::string error;
  std::vector<std::string> names;
  ASSERT_TRUE(ValidateTraceJson(ExportJson(), &error, &names)) << error;
  EXPECT_NE(std::find(names.begin(), names.end(), "parallel.chunk"),
            names.end());
}

TEST_F(TraceEventsTest, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateTraceJson("not json", &error));
  EXPECT_FALSE(ValidateTraceJson("{}", &error));
  // Wrong schema tag.
  EXPECT_FALSE(ValidateTraceJson(
      R"({"displayTimeUnit":"ms","otherData":{"schema":"other","recorded":0,)"
      R"("dropped":0,"repaired":0},"traceEvents":[]})",
      &error));
  // Unbalanced: E without B.
  EXPECT_FALSE(ValidateTraceJson(
      R"({"displayTimeUnit":"ms","otherData":{"schema":"stemroot-trace-v1",)"
      R"("recorded":1,"dropped":0,"repaired":0},"traceEvents":[)"
      R"({"name":"x","ph":"E","ts":1.0,"pid":1,"tid":0}]})",
      &error));
  EXPECT_NE(error.find("without a matching begin"), std::string::npos)
      << error;
  // Name-mismatched B/E.
  EXPECT_FALSE(ValidateTraceJson(
      R"({"displayTimeUnit":"ms","otherData":{"schema":"stemroot-trace-v1",)"
      R"("recorded":2,"dropped":0,"repaired":0},"traceEvents":[)"
      R"({"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},)"
      R"({"name":"b","ph":"E","ts":2.0,"pid":1,"tid":0}]})",
      &error));
  // Backwards per-thread timestamps.
  EXPECT_FALSE(ValidateTraceJson(
      R"({"displayTimeUnit":"ms","otherData":{"schema":"stemroot-trace-v1",)"
      R"("recorded":2,"dropped":0,"repaired":0},"traceEvents":[)"
      R"({"name":"a","ph":"B","ts":2.0,"pid":1,"tid":0},)"
      R"({"name":"a","ph":"E","ts":1.0,"pid":1,"tid":0}]})",
      &error));
  // Counter without args.value.
  EXPECT_FALSE(ValidateTraceJson(
      R"({"displayTimeUnit":"ms","otherData":{"schema":"stemroot-trace-v1",)"
      R"("recorded":1,"dropped":0,"repaired":0},"traceEvents":[)"
      R"({"name":"c","ph":"C","ts":1.0,"pid":1,"tid":0}]})",
      &error));
}

}  // namespace
}  // namespace stemroot::trace_events
