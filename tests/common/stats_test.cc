#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace stemroot {
namespace {

TEST(SummaryStatsTest, KnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SummaryStats s = SummaryStats::Of(values);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Cov(), 0.4);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(SummaryStatsTest, EmptyInputIsZeroed) {
  const SummaryStats s = SummaryStats::Of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.Cov(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  const std::vector<double> one = {3.5};
  const SummaryStats s = SummaryStats::Of(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(StreamingStatsTest, MatchesBatch) {
  Rng rng(3);
  std::vector<double> values;
  StreamingStats stream;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextLogNormal(1.0, 0.7);
    values.push_back(v);
    stream.Add(v);
  }
  const SummaryStats batch = SummaryStats::Of(values);
  EXPECT_EQ(stream.Count(), batch.count);
  EXPECT_NEAR(stream.Mean(), batch.mean, 1e-9 * batch.mean);
  EXPECT_NEAR(stream.Variance(), batch.variance, 1e-6 * batch.variance);
  EXPECT_DOUBLE_EQ(stream.Min(), batch.min);
  EXPECT_DOUBLE_EQ(stream.Max(), batch.max);
}

TEST(StreamingStatsTest, MergeEqualsSinglePass) {
  Rng rng(5);
  StreamingStats whole, left, right;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextGaussian(5.0, 2.0);
    whole.Add(v);
    (i % 2 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(NormalTest, CdfKnownPoints) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalTest, QuantileRejectsBadInput) {
  EXPECT_THROW(NormalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(1.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(-0.5), std::invalid_argument);
}

TEST(ZScoreTest, PaperValue95Percent) {
  // The paper uses z = 1.96 at the 95% confidence level.
  EXPECT_NEAR(ZScore(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(ZScore(0.99), 2.575829, 1e-5);
  EXPECT_THROW(ZScore(1.0), std::invalid_argument);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> values = {4.0, 1.0, 3.0, 2.0};  // unsorted
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 2.5);
  EXPECT_THROW(Percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(Percentile(values, 101.0), std::invalid_argument);
}

TEST(MeansTest, HarmonicAndGeometric) {
  const std::vector<double> values = {1.0, 4.0, 4.0};
  EXPECT_NEAR(HarmonicMean(values), 3.0 / (1.0 + 0.25 + 0.25), 1e-12);
  EXPECT_NEAR(GeometricMean(values), std::cbrt(16.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean(values), 3.0);
  const std::vector<double> with_zero = {1.0, 0.0};
  EXPECT_THROW(HarmonicMean(with_zero), std::invalid_argument);
  EXPECT_THROW(GeometricMean(with_zero), std::invalid_argument);
}

TEST(MeansTest, HarmonicDominatedBySlowest) {
  // Harmonic-mean speedup (the paper's convention) punishes outlier-slow
  // workloads; it is always <= the arithmetic mean.
  const std::vector<double> speedups = {100.0, 100.0, 2.0};
  EXPECT_LT(HarmonicMean(speedups), Mean(speedups));
  EXPECT_LT(HarmonicMean(speedups), 6.0);
}

TEST(MadTest, RobustToOutliers) {
  const std::vector<double> clean = {10, 11, 9, 10, 12, 8, 10};
  const std::vector<double> dirty = {10, 11, 9, 10, 12, 8, 1000};
  EXPECT_NEAR(Mad(clean), Mad(dirty), 0.8);
  EXPECT_THROW(Mad({}), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot
