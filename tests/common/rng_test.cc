#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace stemroot {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  // Re-running from the same seed reproduces the sequence.
  uint64_t state2 = 0;
  EXPECT_EQ(a, SplitMix64(state2));
  EXPECT_EQ(b, SplitMix64(state2));
}

TEST(DeriveSeedTest, DistinctStreamsDiffer) {
  std::set<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 1000; ++stream)
    seeds.insert(DeriveSeed(42, stream));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(DeriveSeed(7, 3), DeriveSeed(7, 3));
  EXPECT_NE(DeriveSeed(7, 3), DeriveSeed(8, 3));
}

TEST(HashStringTest, StableAndDiscriminating) {
  EXPECT_EQ(HashString("sgemm"), HashString("sgemm"));
  EXPECT_NE(HashString("sgemm"), HashString("sgemn"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(RngTest, NextBoundedRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.NextBounded(0), std::invalid_argument);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.NextInt(3, 2), std::invalid_argument);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalCenteredMeanIsOne) {
  // exp(N(-s^2/2, s)) has mean exactly 1 -- this is what keeps hardware
  // jitter unbiased.
  Rng rng(19);
  const double sigma = 0.2;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += rng.NextLogNormal(-0.5 * sigma * sigma, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.NextExponential(0.0), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.NextBool(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, JumpYieldsIndependentStream) {
  Rng a(31);
  Rng b(31);
  b.Jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace stemroot
