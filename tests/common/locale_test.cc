/// Locale-independence of every machine-readable number path.
///
/// A host with LANG=de_DE (comma decimal point) used to corrupt the
/// pipeline twice over: std::stod/strtod would stop parsing "1.5" at the
/// dot (silently yielding 1), and %.17g-style formatting would emit "1,5"
/// -- breaking JSON, CSV, flag parsing, and cache-key stability. These
/// tests force the nastiest locale available (plus a custom comma-decimal
/// C++ locale that always exists) and pin parse/format behavior.

#include <clocale>
#include <locale>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/json.h"
#include "common/str.h"
#include "common/telemetry.h"
#include "core/sampler_registry.h"

namespace stemroot {
namespace {

/// numpunct that makes the C++ global locale comma-decimal; installable
/// even on containers that ship only the C/POSIX C locales.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Force the most hostile numeric locale this host offers, for both the C
/// locale (snprintf/strtod) and the C++ global locale (iostreams). Restores
/// everything on destruction so other tests in the binary are unaffected.
class ScopedHostileLocale {
 public:
  ScopedHostileLocale() {
    const char* prev = std::setlocale(LC_NUMERIC, nullptr);
    saved_c_ = prev != nullptr ? prev : "C";
    // Real comma-decimal locales, if installed on this host; harmless
    // no-ops otherwise.
    static const char* kCandidates[] = {"de_DE.UTF-8", "de_DE.utf8",
                                        "fr_FR.UTF-8", "fr_FR.utf8",
                                        "de_DE",       "fr_FR"};
    for (const char* name : kCandidates) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        c_locale_applied_ = true;
        break;
      }
    }
    saved_cpp_ = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimal));
  }
  ~ScopedHostileLocale() {
    std::locale::global(saved_cpp_);
    std::setlocale(LC_NUMERIC, saved_c_.c_str());
  }

  bool CLocaleApplied() const { return c_locale_applied_; }

 private:
  std::string saved_c_;
  std::locale saved_cpp_;
  bool c_locale_applied_ = false;
};

TEST(LocaleTest, ParseDoubleIgnoresTheGlobalLocale) {
  ScopedHostileLocale hostile;
  EXPECT_EQ(ParseDouble("1.5"), 1.5);
  EXPECT_EQ(ParseDouble("-0.25"), -0.25);
  EXPECT_EQ(ParseDouble("+2.5e-3"), 2.5e-3);
  EXPECT_FALSE(ParseDouble("1,5").has_value());  // comma is never a decimal
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());

  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
  EXPECT_EQ(ParseInt("+7"), 7);
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("1e3").has_value());
}

TEST(LocaleTest, FormatDoubleNeverEmitsACommaDecimal) {
  ScopedHostileLocale hostile;
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.1), "0.1");
  EXPECT_EQ(FormatDouble(-2.5e-3), "-0.0025");
  EXPECT_EQ(FormatDoubleFixed(1234.5, 3), "1234.500");
  EXPECT_EQ(FormatDoubleFixed(0.0005, 3), "0.001");
  // Round trip: the shortest form parses back to the exact same value.
  const double v = 0.05000000000000001;
  EXPECT_EQ(ParseDouble(FormatDouble(v)), v);
}

TEST(LocaleTest, JsonParsesAndFormatsUnderHostileLocale) {
  ScopedHostileLocale hostile;
  EXPECT_EQ(json::Number(1.5), "1.5");
  EXPECT_EQ(json::Number(0.05), "0.05");

  json::Value v;
  std::string error;
  ASSERT_TRUE(json::Parse(R"({"scale":1.5,"eps":2.5e-2})", v, &error))
      << error;
  EXPECT_EQ(v.Find("scale")->number, 1.5);
  EXPECT_EQ(v.Find("eps")->number, 2.5e-2);
}

TEST(LocaleTest, FlagsParseDoublesUnderHostileLocale) {
  ScopedHostileLocale hostile;
  const char* argv[] = {"--scale", "0.05", "--reps", "3"};
  const Flags flags = Flags::Parse(4, argv);
  EXPECT_EQ(flags.GetDouble("scale", 1.0), 0.05);
  EXPECT_EQ(flags.GetInt("reps", 1), 3);
}

TEST(LocaleTest, SamplerParamsRoundTripUnderHostileLocale) {
  ScopedHostileLocale hostile;
  core::SamplerParams params;
  params.Set("epsilon", 0.05);
  EXPECT_EQ(params.GetString("epsilon", ""), "0.05");
  EXPECT_EQ(params.GetDouble("epsilon", 0.0), 0.05);
}

TEST(LocaleTest, TelemetryCsvStaysMachineReadable) {
  ScopedHostileLocale hostile;
  telemetry::SetEnabled(true);
  telemetry::Reset();
  telemetry::Record("locale.dist", 1.5);
  telemetry::Record("locale.dist", 2.5);
  const std::string csv = telemetry::Capture().ToCsv();
  telemetry::SetEnabled(false);
  telemetry::Reset();
  EXPECT_NE(csv.find("1.5"), std::string::npos) << csv;
  EXPECT_NE(csv.find("2.5"), std::string::npos) << csv;
  EXPECT_EQ(csv.find("1,5"), std::string::npos) << csv;
}

}  // namespace
}  // namespace stemroot
