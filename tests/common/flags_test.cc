#include "common/flags.h"

#include <gtest/gtest.h>

namespace stemroot {
namespace {

Flags Make(std::vector<const char*> args) {
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, PositionalThenFlags) {
  const Flags flags = Make({"sample", "--in", "t.bin", "--epsilon", "0.1"});
  ASSERT_EQ(flags.Positional().size(), 1u);
  EXPECT_EQ(flags.Positional()[0], "sample");
  EXPECT_EQ(flags.Require("in"), "t.bin");
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0.05), 0.1);
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = Make({"--seed=42", "--name=x"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "x");
}

TEST(FlagsTest, DefaultsApplyWhenMissing) {
  const Flags flags = Make({});
  EXPECT_EQ(flags.GetString("gpu", "rtx2080"), "rtx2080");
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0.05), 0.05);
  EXPECT_EQ(flags.GetInt("reps", 10), 10);
  EXPECT_TRUE(flags.GetBool("flag", true));
  EXPECT_FALSE(flags.Has("gpu"));
}

TEST(FlagsTest, TypedParsingErrors) {
  const Flags flags = Make({"--epsilon", "abc", "--reps", "1.5",
                            "--flush", "maybe"});
  EXPECT_THROW(flags.GetDouble("epsilon", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetInt("reps", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetBool("flush", false), std::invalid_argument);
}

TEST(FlagsTest, BoolAcceptsCanonicalForms) {
  const Flags flags = Make({"--a", "true", "--b", "0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
}

TEST(FlagsTest, RequireThrowsWhenAbsent) {
  const Flags flags = Make({});
  EXPECT_THROW(flags.Require("in"), std::invalid_argument);
}

TEST(FlagsTest, MissingValueRejected) {
  EXPECT_THROW(Make({"--in"}), std::invalid_argument);
}

TEST(FlagsTest, UnknownFlagsDetected) {
  const Flags flags = Make({"--in", "x", "--typo", "y"});
  (void)flags.Require("in");
  EXPECT_THROW(flags.CheckAllRead(), std::invalid_argument);
  const Flags clean = Make({"--in", "x"});
  (void)clean.Require("in");
  EXPECT_NO_THROW(clean.CheckAllRead());
}

}  // namespace
}  // namespace stemroot
