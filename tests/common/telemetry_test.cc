#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "common/trace_events.h"
#include "eval/stage_report.h"

namespace stemroot::telemetry {
namespace {

/// Every test owns the process-wide registry for its duration.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Reset();
  }
  void TearDown() override {
    Reset();
    SetEnabled(false);
  }
};

TEST_F(TelemetryTest, CountersAccumulate) {
  Count("a");
  Count("a", 2);
  Count("b", 10);
  const Snapshot snap = Capture();
  EXPECT_EQ(snap.Counter("a"), 3u);
  EXPECT_EQ(snap.Counter("b"), 10u);
  EXPECT_EQ(snap.Counter("missing"), 0u);
  EXPECT_EQ(snap.Counters().size(), 2u);
}

TEST_F(TelemetryTest, CaptureIsCumulativeUntilReset) {
  Count("a");
  EXPECT_EQ(Capture().Counter("a"), 1u);
  Count("a");
  EXPECT_EQ(Capture().Counter("a"), 2u);
  Reset();
  EXPECT_EQ(Capture().Counter("a"), 0u);
  EXPECT_TRUE(Capture().Counters().empty());
}

TEST_F(TelemetryTest, DisabledIsNoop) {
  SetEnabled(false);
  Count("a");
  Record("d", 1.0);
  { Span span("s"); }
  SetEnabled(true);
  const Snapshot snap = Capture();
  EXPECT_TRUE(snap.Counters().empty());
  EXPECT_TRUE(snap.Distributions().empty());
  EXPECT_TRUE(snap.Spans().empty());
}

TEST_F(TelemetryTest, DistributionSummary) {
  for (int i = 1; i <= 100; ++i) Record("d", static_cast<double>(i));
  const DistSummary dist = Capture().Dist("d");
  EXPECT_EQ(dist.count, 100u);
  EXPECT_DOUBLE_EQ(dist.min, 1.0);
  EXPECT_DOUBLE_EQ(dist.max, 100.0);
  EXPECT_DOUBLE_EQ(dist.mean, 50.5);
  // Quantiles index the sorted multiset at floor(q * n).
  EXPECT_DOUBLE_EQ(dist.p50, 51.0);
  EXPECT_DOUBLE_EQ(dist.p99, 100.0);
  EXPECT_EQ(Capture().Dist("missing").count, 0u);
}

TEST_F(TelemetryTest, RecordDropsNonFinite) {
  Record("d", std::numeric_limits<double>::quiet_NaN());
  Record("d", std::numeric_limits<double>::infinity());
  Record("d", -std::numeric_limits<double>::infinity());
  Record("d", 2.0);
  const DistSummary dist = Capture().Dist("d");
  EXPECT_EQ(dist.count, 1u);
  EXPECT_DOUBLE_EQ(dist.min, 2.0);
  EXPECT_DOUBLE_EQ(dist.max, 2.0);
}

TEST_F(TelemetryTest, SpanNestingTracksParent) {
  {
    Span outer("outer");
    Span inner("inner");
  }
  const Snapshot snap = Capture();
  EXPECT_TRUE(snap.HasSpan("outer"));
  EXPECT_TRUE(snap.HasSpan("inner"));
  EXPECT_FALSE(snap.HasSpan("missing"));
  ASSERT_EQ(snap.Spans().count({"outer", ""}), 1u);
  ASSERT_EQ(snap.Spans().count({"inner", "outer"}), 1u);
  const SpanStats& inner = snap.Spans().at({"inner", "outer"});
  EXPECT_EQ(inner.count, 1u);
  EXPECT_GE(inner.total_us, 0.0);
  const SpanStats& outer = snap.Spans().at({"outer", ""});
  EXPECT_GE(outer.total_us, inner.total_us);
}

TEST_F(TelemetryTest, ThreadBuffersMergeDeterministically) {
  SetNumThreads(4);
  ParallelFor(0, 1000, [](size_t i) {
    Count("n");
    Record("v", static_cast<double>(i % 10));
  });
  const Snapshot snap = Capture();
  EXPECT_EQ(snap.Counter("n"), 1000u);
  const DistSummary dist = snap.Dist("v");
  EXPECT_EQ(dist.count, 1000u);
  EXPECT_DOUBLE_EQ(dist.min, 0.0);
  EXPECT_DOUBLE_EQ(dist.max, 9.0);
  EXPECT_DOUBLE_EQ(dist.mean, 4.5);
  SetNumThreads(0);
}

TEST_F(TelemetryTest, CountersJsonIsSortedAndStable) {
  Count("zeta", 2);
  Count("alpha", 1);
  const std::string json = Capture().CountersJson();
  EXPECT_EQ(json, "{\"alpha\":1,\"zeta\":2}");
  EXPECT_EQ(Capture().CountersJson(), json);
}

TEST_F(TelemetryTest, ExportsValidateAndRoundTrip) {
  Count("c", 7);
  Record("d", 1.5);
  Record("d", 2.5);
  { Span span("stage"); }
  const Snapshot snap = Capture();

  std::string error;
  std::vector<std::string> span_names;
  ASSERT_TRUE(eval::ValidateTelemetryJson(snap.ToJson(), &error, &span_names))
      << error;
  ASSERT_EQ(span_names.size(), 1u);
  EXPECT_EQ(span_names[0], "stage");

  const std::string csv = snap.ToCsv();
  EXPECT_EQ(
      csv.rfind("kind,name,parent,count,min,mean,max,p50,p99,total", 0), 0u);
  EXPECT_NE(csv.find("counter,c,"), std::string::npos);
  EXPECT_NE(csv.find("distribution,d,"), std::string::npos);
  EXPECT_NE(csv.find("span,stage,"), std::string::npos);
}

TEST_F(TelemetryTest, ValidateRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(eval::ValidateTelemetryJson("", &error));
  EXPECT_FALSE(eval::ValidateTelemetryJson("{", &error));
  EXPECT_FALSE(eval::ValidateTelemetryJson("[]", &error));
  EXPECT_FALSE(eval::ValidateTelemetryJson("{\"schema\":\"wrong\"}", &error));
  EXPECT_FALSE(error.empty());
  // Truncating a valid export must fail the full-grammar parse.
  Count("c");
  const std::string json = Capture().ToJson();
  EXPECT_FALSE(eval::ValidateTelemetryJson(
      std::string_view(json).substr(0, json.size() - 2), &error));
}

// Regression: SetEnabled may flip between a Span's construction and its
// destruction (a bench toggling telemetry around a region, or the CLI
// enabling late). Neither direction may corrupt the per-thread name stack
// or crash; disabling mid-span simply discards that span's timing.
TEST_F(TelemetryTest, SpanToleratesDisableMidSpan) {
  {
    Span outer("outer");
    SetEnabled(false);
    // The stack entry must still be popped on destruction even though
    // recording is now off...
  }
  SetEnabled(true);
  EXPECT_TRUE(Capture().Spans().empty());

  // ...so a following span sees a clean stack (no stale "outer" parent).
  { Span next("next"); }
  const Snapshot snap = Capture();
  ASSERT_EQ(snap.Spans().size(), 1u);
  EXPECT_EQ(snap.Spans().begin()->second.name, "next");
  EXPECT_EQ(snap.Spans().begin()->second.parent, "");
}

TEST_F(TelemetryTest, SpanToleratesEnableMidSpan) {
  SetEnabled(false);
  {
    Span span("late");
    SetEnabled(true);
    // Construction saw telemetry off: nothing was pushed, so nothing may
    // be recorded or popped at destruction.
  }
  EXPECT_TRUE(Capture().Spans().empty());
}

TEST_F(TelemetryTest, NestedSpansSurviveMidSpanToggle) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      SetEnabled(false);
    }
    SetEnabled(true);
    // inner popped itself while disabled; a sibling must still see
    // "outer" as its parent.
    { Span sibling("sibling"); }
  }
  const Snapshot snap = Capture();
  bool found = false;
  for (const auto& [key, stats] : snap.Spans()) {
    if (stats.name != "sibling") continue;
    found = true;
    EXPECT_EQ(stats.parent, "outer");
  }
  EXPECT_TRUE(found);
}

// A Span feeds the trace-event timeline independently of telemetry: with
// telemetry off but tracing on it must still emit a balanced B/E pair.
TEST_F(TelemetryTest, SpanFeedsTraceEventsWhenTelemetryOff) {
  SetEnabled(false);
  trace_events::Reset();
  trace_events::SetEnabled(true);
  { Span span("traced_only"); }
  trace_events::SetEnabled(false);
  SetEnabled(true);

  EXPECT_TRUE(Capture().Spans().empty());
  std::string error;
  std::vector<std::string> names;
  trace_events::TraceInfo info;
  ASSERT_TRUE(trace_events::ValidateTraceJson(trace_events::ExportJson(),
                                              &error, &names, &info))
      << error;
  EXPECT_EQ(info.events, 2u);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "traced_only");
  trace_events::Reset();
}

// And the other mid-span hazard: tracing disabled between Span
// construction and destruction must still close the open begin.
TEST_F(TelemetryTest, SpanClosesTraceBeginWhenTracingDisabledMidSpan) {
  trace_events::Reset();
  trace_events::SetEnabled(true);
  {
    Span span("toggled");
    trace_events::SetEnabled(false);
  }
  std::string error;
  trace_events::TraceInfo info;
  ASSERT_TRUE(trace_events::ValidateTraceJson(trace_events::ExportJson(),
                                              &error, nullptr, &info))
      << error;
  EXPECT_EQ(info.events, 2u);
  trace_events::Reset();
}

TEST_F(TelemetryTest, SampleDoesNotDrainRecordingState) {
  Count("a", 3);
  Record("d", 1.0);
  // A mid-run observer samples...
  const Snapshot sample = Sample();
  EXPECT_EQ(sample.Counter("a"), 3u);
  EXPECT_EQ(sample.Dist("d").count, 1u);
  // ...and the final capture still sees everything, as if Sample() had
  // never run (non-draining contract).
  Count("a", 2);
  const Snapshot capture = Capture();
  EXPECT_EQ(capture.Counter("a"), 5u);
  EXPECT_EQ(capture.Dist("d").count, 1u);
}

TEST_F(TelemetryTest, QuiescedSampleMatchesCapture) {
  SetNumThreads(4);
  ParallelFor(0, 500, [](size_t i) {
    Count("n");
    Record("v", static_cast<double>(i % 7));
  });
  // Between parallel regions Sample() and Capture() must agree exactly.
  const std::string sampled = Sample().CountersJson();
  const Snapshot captured = Capture();
  EXPECT_EQ(sampled, captured.CountersJson());
  EXPECT_EQ(Sample().DistributionsJson(), captured.DistributionsJson());
  SetNumThreads(0);
}

TEST_F(TelemetryTest, SampleIsSafeDuringRecording) {
  SetNumThreads(4);
  std::atomic<bool> stop{false};
  std::thread observer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot live = Sample();
      // Live values are schedule-dependent; only sanity is asserted.
      EXPECT_LE(live.Counter("n"), 2000u);
    }
  });
  ParallelFor(0, 2000, [](size_t i) {
    Count("n");
    Record("v", static_cast<double>(i % 10));
  });
  stop.store(true, std::memory_order_relaxed);
  observer.join();
  // The hammering observer must not have perturbed the final record.
  const Snapshot snap = Capture();
  EXPECT_EQ(snap.Counter("n"), 2000u);
  EXPECT_EQ(snap.Dist("v").count, 2000u);
  SetNumThreads(0);
}

TEST_F(TelemetryTest, CounterDeltasReportOnlyGrowth) {
  Count("grows", 2);
  Count("static", 5);
  const Snapshot before = Capture();
  Count("grows", 3);
  Count("fresh", 7);
  const Snapshot after = Capture();

  const std::map<std::string, uint64_t> deltas =
      CounterDeltas(before, after);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas.at("grows"), 3u);
  // Absent from `before` counts from zero.
  EXPECT_EQ(deltas.at("fresh"), 7u);
  // Non-growing counters are omitted entirely.
  EXPECT_EQ(deltas.count("static"), 0u);
}

TEST_F(TelemetryTest, CounterDeltasOfIdenticalSnapshotsIsEmpty) {
  Count("a", 4);
  const Snapshot snap = Capture();
  EXPECT_TRUE(CounterDeltas(snap, snap).empty());
  EXPECT_TRUE(CounterDeltas(Snapshot{}, Snapshot{}).empty());
}

}  // namespace
}  // namespace stemroot::telemetry
