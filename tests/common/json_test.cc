#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace stemroot::json {
namespace {

bool Parses(const std::string& text, std::string* error = nullptr) {
  Value v;
  return Parse(text, v, error);
}

TEST(JsonTest, ParsesWellFormedDocuments) {
  Value v;
  ASSERT_TRUE(Parse(R"({"a": [1, 2.5, -3e2], "b": {"c": "x"},
                       "t": true, "f": false, "n": null})",
                    v, nullptr));
  ASSERT_TRUE(v.IsObject());
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  EXPECT_EQ(a->array->size(), 3u);
  EXPECT_DOUBLE_EQ((*a->array)[1].number, 2.5);
  const Value* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_EQ(b->Find("c")->string, "x");
}

TEST(JsonTest, RejectsTruncatedDocuments) {
  std::string error;
  // Every prefix of a valid object must fail cleanly, never crash.
  const std::string doc = R"({"key": [1, {"nested": "value"}], "n": 12.5})";
  for (size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(Parses(doc.substr(0, len), &error))
        << "prefix of length " << len << " unexpectedly parsed";
    EXPECT_FALSE(error.empty());
  }
  EXPECT_TRUE(Parses(doc, &error)) << error;
}

TEST(JsonTest, RejectsBadEscapes) {
  std::string error;
  EXPECT_FALSE(Parses(R"({"k": "\x41"})", &error));
  EXPECT_FALSE(Parses(R"({"k": "\u12"})", &error));    // truncated \u
  EXPECT_FALSE(Parses(R"({"k": "\uZZZZ"})", &error));  // non-hex \u
  EXPECT_FALSE(Parses("{\"k\": \"a\\", &error));       // escape at EOF
  EXPECT_FALSE(Parses("{\"k\": \"a\n\"}", &error));    // raw control char
  EXPECT_TRUE(Parses(R"({"k": "\" \\ \/ \b \f \n \r \t A"})", &error))
      << error;
}

TEST(JsonTest, RejectsNanAndInf) {
  // JSON has no non-finite literals; the number grammar must reject them
  // rather than let them poison downstream comparisons.
  std::string error;
  EXPECT_FALSE(Parses("{\"k\": NaN}", &error));
  EXPECT_FALSE(Parses("{\"k\": nan}", &error));
  EXPECT_FALSE(Parses("{\"k\": Infinity}", &error));
  EXPECT_FALSE(Parses("{\"k\": -Infinity}", &error));
  EXPECT_FALSE(Parses("{\"k\": inf}", &error));
}

TEST(JsonTest, RejectsOutOfRangeNumbers) {
  std::string error;
  EXPECT_FALSE(Parses("{\"k\": 1e999999}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, DeepNestingFailsGracefully) {
  // A pathological "[[[[..." document must produce a parse error, not a
  // stack overflow (the parser recurses per container level).
  constexpr int kDepth = 100000;
  std::string deep_array(kDepth, '[');
  deep_array.append(kDepth, ']');
  std::string error;
  EXPECT_FALSE(Parses(deep_array, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  std::string deep_object;
  for (int i = 0; i < kDepth; ++i) deep_object += "{\"k\":";
  deep_object += "1";
  for (int i = 0; i < kDepth; ++i) deep_object += '}';
  EXPECT_FALSE(Parses(deep_object, &error));

  // Reasonable nesting still parses.
  std::string ok(50, '[');
  ok.append(50, ']');
  EXPECT_TRUE(Parses(ok, &error)) << error;
}

TEST(JsonTest, RejectsTrailingGarbageAndBadLiterals) {
  std::string error;
  EXPECT_FALSE(Parses("{} extra", &error));
  EXPECT_FALSE(Parses("{\"k\": tru}", &error));
  EXPECT_FALSE(Parses("{\"k\": nul}", &error));
  EXPECT_FALSE(Parses("{\"k\" 1}", &error));   // missing colon
  EXPECT_FALSE(Parses("{\"k\": 1,}", &error)); // trailing comma
  EXPECT_FALSE(Parses("[1, 2,]", &error));
  EXPECT_FALSE(Parses("", &error));
}

TEST(JsonTest, StringRoundTripThroughAppendString) {
  std::string out;
  AppendString(out, "a\"b\\c\nd\te\rf\x01g");
  Value v;
  std::string error;
  ASSERT_TRUE(Parse(out, v, &error)) << error;
  ASSERT_TRUE(v.IsString());
}

}  // namespace
}  // namespace stemroot::json
