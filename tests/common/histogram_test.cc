#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace stemroot {
namespace {

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-5.0);   // clamps to first bin
  h.Add(100.0);  // clamps to last bin
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(9), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
}

TEST(HistogramTest, ConstructorValidation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, FromDataSpansInput) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::FromData(values, 4);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_LT(h.Lo(), 1.0);
  EXPECT_GT(h.Hi(), 4.0);
  EXPECT_THROW(Histogram::FromData({}, 4), std::invalid_argument);
}

TEST(HistogramTest, FromDataConstantValues) {
  const std::vector<double> values = {5.0, 5.0, 5.0};
  const Histogram h = Histogram::FromData(values, 8);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_EQ(h.CountPeaks(), 1u);
}

TEST(HistogramTest, SinglePeakDetected) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.NextGaussian(50, 4));
  const Histogram h = Histogram::FromData(values, 40);
  EXPECT_EQ(h.CountPeaks(), 1u);
}

TEST(HistogramTest, ThreePeaksDetected) {
  // The bn_fw_inf shape from the paper's Fig. 1: three separated modes.
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(20, 1));
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(50, 1.5));
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(90, 2));
  const Histogram h = Histogram::FromData(values, 60);
  EXPECT_EQ(h.CountPeaks(), 3u);
}

TEST(HistogramTest, TwoClosePeaksMergeWithCoarseBins) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextGaussian(10, 2));
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextGaussian(14, 2));
  const Histogram coarse = Histogram::FromData(values, 6);
  EXPECT_EQ(coarse.CountPeaks(), 1u);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string render = h.Render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  // Two rows -> two newlines.
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 2);
}

TEST(HistogramTest, EmptyHistogramHasNoPeaks) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.CountPeaks(), 0u);
}

TEST(LogHistogramTest, ConstructorValidation) {
  EXPECT_THROW(LogHistogram(1.0, 1.5, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(0.0, 1.5, 10), std::invalid_argument);
  EXPECT_THROW(LogHistogram(-1.0, 1.5, 10), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_NO_THROW(LogHistogram(1.0, 1.5, 3));
}

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, SingleSampleDominatesEveryQuantile) {
  LogHistogram h;
  h.Record(42.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  // Every quantile lands in the one occupied bucket; its upper bound
  // must cover the sample and stay within one growth factor of it.
  for (double q : {0.0, 0.5, 0.9, 0.99}) {
    EXPECT_GE(h.Quantile(q), 42.0) << q;
    EXPECT_LE(h.Quantile(q), 42.0 * 1.5) << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);  // q >= 1 is the exact max
}

TEST(LogHistogramTest, AllSamplesInOneBucketShareTheQuantile) {
  LogHistogram h(1.0, 2.0, 10);
  // [8, 16) is one bucket under growth 2.
  for (double v : {8.0, 9.0, 10.0, 15.0, 15.9}) h.Record(v);
  EXPECT_EQ(h.Count(), 5u);
  const double p50 = h.Quantile(0.5);
  EXPECT_DOUBLE_EQ(p50, h.Quantile(0.01));
  EXPECT_DOUBLE_EQ(p50, h.Quantile(0.99));
  EXPECT_DOUBLE_EQ(p50, 16.0);  // the shared bucket's upper bound
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 15.9);
}

TEST(LogHistogramTest, UnderflowBucketCatchesSmallValues) {
  LogHistogram h(10.0, 2.0, 8);
  h.Record(0.0);
  h.Record(5.0);
  EXPECT_EQ(h.BinCount(0), 2u);
  // Underflow quantiles report the underflow bound (lo).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
}

TEST(LogHistogramTest, OverflowBucketReportsExactMax) {
  LogHistogram h(1.0, 2.0, 4);  // buckets: <1, [1,2), [2,4), overflow >= 4
  h.Record(1e9);
  h.Record(5e9);
  EXPECT_EQ(h.BinCount(h.NumBins() - 1), 2u);
  // Overflow has no finite upper bound; quantiles degrade to the exact
  // max rather than reporting +inf.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5e9);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 5e9);
  EXPECT_TRUE(std::isinf(h.BinUpperBound(h.NumBins() - 1)));
}

TEST(LogHistogramTest, DropsNonFiniteAndNegative) {
  LogHistogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(3.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.DroppedCount(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 3.0);
}

TEST(LogHistogramTest, QuantilesAreMonotoneOnRandomData) {
  LogHistogram h;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i)
    h.Record(rng.NextDouble() * 1e5);
  // Bucket-bound quantiles are monotone in q; q == 1 is excluded because
  // it switches to the exact max, which a bucket bound may overshoot.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.Max());
  EXPECT_LE(h.Quantile(1.0), 1e5);
  EXPECT_EQ(h.Count(), 2000u);
}

TEST(LogHistogramTest, BucketEdgesLandInTheRightBucket) {
  LogHistogram h(1.0, 2.0, 10);
  // A bound value belongs to the bucket above: 2.0 is the upper bound of
  // [1,2) and must land in [2,4).
  h.Record(2.0);
  uint64_t total = 0;
  for (size_t i = 0; i < h.NumBins(); ++i) {
    if (h.BinCount(i) > 0) {
      EXPECT_GT(h.BinUpperBound(i), 2.0);
      EXPECT_LE(h.BinUpperBound(i), 4.0);
    }
    total += h.BinCount(i);
  }
  EXPECT_EQ(total, 1u);
}

TEST(LogHistogramTest, MergeAccumulatesCountsSumAndMax) {
  LogHistogram a(1.0, 2.0, 10);
  LogHistogram b(1.0, 2.0, 10);
  a.Record(3.0);
  a.Record(5.0);
  b.Record(100.0);
  b.Record(-1.0);  // dropped in b, carried across the merge
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.DroppedCount(), 1u);
  EXPECT_DOUBLE_EQ(a.Sum(), 108.0);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
  // Bucket counts are element-wise: the merged total matches Count().
  uint64_t total = 0;
  for (size_t i = 0; i < a.NumBins(); ++i) total += a.BinCount(i);
  EXPECT_EQ(total, 3u);
  // b is untouched.
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_DOUBLE_EQ(b.Max(), 100.0);
}

TEST(LogHistogramTest, MergeEmptyIsIdentity) {
  LogHistogram a;
  LogHistogram empty;
  a.Record(7.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.Max(), 7.0);
}

TEST(LogHistogramTest, MergeRejectsGeometryMismatch) {
  LogHistogram a(1.0, 2.0, 10);
  EXPECT_THROW(a.Merge(LogHistogram(2.0, 2.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.Merge(LogHistogram(1.0, 1.5, 10)), std::invalid_argument);
  EXPECT_THROW(a.Merge(LogHistogram(1.0, 2.0, 12)), std::invalid_argument);
}

TEST(LogHistogramTest, ConcurrentRecordsAllLand) {
  LogHistogram h;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.Record(static_cast<double>(t * kPerThread + i % 997) + 1.0);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t total = 0;
  for (size_t i = 0; i < h.NumBins(); ++i) total += h.BinCount(i);
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(h.Max(), 0.0);
  EXPECT_GT(h.Sum(), 0.0);
}

}  // namespace
}  // namespace stemroot
