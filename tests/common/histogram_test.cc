#include "common/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace stemroot {
namespace {

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-5.0);   // clamps to first bin
  h.Add(100.0);  // clamps to last bin
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(9), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
}

TEST(HistogramTest, ConstructorValidation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, FromDataSpansInput) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::FromData(values, 4);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_LT(h.Lo(), 1.0);
  EXPECT_GT(h.Hi(), 4.0);
  EXPECT_THROW(Histogram::FromData({}, 4), std::invalid_argument);
}

TEST(HistogramTest, FromDataConstantValues) {
  const std::vector<double> values = {5.0, 5.0, 5.0};
  const Histogram h = Histogram::FromData(values, 8);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_EQ(h.CountPeaks(), 1u);
}

TEST(HistogramTest, SinglePeakDetected) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.NextGaussian(50, 4));
  const Histogram h = Histogram::FromData(values, 40);
  EXPECT_EQ(h.CountPeaks(), 1u);
}

TEST(HistogramTest, ThreePeaksDetected) {
  // The bn_fw_inf shape from the paper's Fig. 1: three separated modes.
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(20, 1));
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(50, 1.5));
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextGaussian(90, 2));
  const Histogram h = Histogram::FromData(values, 60);
  EXPECT_EQ(h.CountPeaks(), 3u);
}

TEST(HistogramTest, TwoClosePeaksMergeWithCoarseBins) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextGaussian(10, 2));
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextGaussian(14, 2));
  const Histogram coarse = Histogram::FromData(values, 6);
  EXPECT_EQ(coarse.CountPeaks(), 1u);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string render = h.Render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  // Two rows -> two newlines.
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 2);
}

TEST(HistogramTest, EmptyHistogramHasNoPeaks) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.CountPeaks(), 0u);
}

}  // namespace
}  // namespace stemroot
