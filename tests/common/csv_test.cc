#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace stemroot {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    return testing::TempDir() + "/csv_test_" +
           std::to_string(counter_++) + ".csv";
  }
  int counter_ = 0;
};

TEST_F(CsvTest, RoundTripSimpleRows) {
  const std::string path = TempPath();
  {
    CsvWriter writer(path);
    writer.WriteHeader({"a", "b", "c"});
    writer.WriteRow({"1", "2", "3"});
    writer.Flush();
  }
  const CsvTable table = CsvTable::ReadFile(path);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvTest, QuotingRoundTrip) {
  const std::string path = TempPath();
  {
    CsvWriter writer(path);
    writer.WriteRow({"has,comma", "has\"quote", "has\nnewline", "plain"});
  }
  const CsvTable table = CsvTable::ReadFile(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "has,comma");
  EXPECT_EQ(table.rows[0][1], "has\"quote");
  EXPECT_EQ(table.rows[0][2], "has\nnewline");
  EXPECT_EQ(table.rows[0][3], "plain");
}

TEST(CsvQuoteTest, OnlyQuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::Quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::Quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvParseTest, EmptyFieldsPreserved) {
  const CsvTable table = CsvTable::Parse("a,,c\n,,\n");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseTest, CrLfHandled) {
  const CsvTable table = CsvTable::Parse("a,b\r\nc,d\r\n");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "d");
}

TEST(CsvParseTest, MissingTrailingNewline) {
  const CsvTable table = CsvTable::Parse("a,b\nc,d");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][0], "c");
}

TEST(CsvParseTest, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(CsvTable::Parse("").rows.empty());
}

TEST(CsvIoTest, MissingFileThrows) {
  EXPECT_THROW(CsvTable::ReadFile("/nonexistent/nope.csv"),
               std::runtime_error);
  EXPECT_THROW(CsvWriter("/nonexistent/dir/nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace stemroot
