#include "eval/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/sampler.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/stream.h"
#include "hw/hardware_model.h"
#include "workloads/suite.h"

namespace stemroot::eval {
namespace {

uint64_t Bits(double x) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

constexpr uint64_t kSeed = 99;
constexpr double kScale = 0.05;

Pipeline MakePipeline() {
  Pipeline pipeline = Pipeline::Generate(workloads::SuiteId::kCasio,
                                         "bert_infer",
                                         {.seed = kSeed, .size_scale = kScale});
  pipeline.Profile(hw::GpuSpec::Rtx2080());
  return pipeline;
}

TEST(PipelineTest, GenerateMatchesHistoricalSeedDerivation) {
  const Pipeline pipeline = MakePipeline();
  // The seed contract in pipeline.h: generation and profiling derive their
  // stage seeds from the one master seed exactly as RunSuite always did.
  KernelTrace manual = workloads::MakeWorkload(
      workloads::SuiteId::kCasio, "bert_infer",
      DeriveSeed(kSeed, HashString("bert_infer")), kScale);
  hw::HardwareModel(hw::GpuSpec::Rtx2080())
      .ProfileTrace(manual, DeriveSeed(kSeed, kProfileStream));

  ASSERT_EQ(pipeline.Trace().NumInvocations(), manual.NumInvocations());
  EXPECT_EQ(Bits(pipeline.Trace().TotalDurationUs()),
            Bits(manual.TotalDurationUs()));
  EXPECT_TRUE(pipeline.Profiled());
  EXPECT_EQ(pipeline.Opts().seed, kSeed);
}

// Pins the deprecated shim's equivalence with the facade: suppressing the
// deprecation warning here is deliberate, the shim must stay bit-exact
// until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PipelineTest, MatchesMakeProfiledWorkload) {
  const Pipeline pipeline = MakePipeline();
  const KernelTrace legacy =
      MakeProfiledWorkload(workloads::SuiteId::kCasio, "bert_infer",
                           hw::HardwareModel(hw::GpuSpec::Rtx2080()), kSeed,
                           kScale);
  ASSERT_EQ(pipeline.Trace().NumInvocations(), legacy.NumInvocations());
  EXPECT_EQ(Bits(pipeline.Trace().TotalDurationUs()),
            Bits(legacy.TotalDurationUs()));
}
#pragma GCC diagnostic pop

TEST(PipelineTest, SampleEqualsEvaluateRepZero) {
  const Pipeline pipeline = MakePipeline();
  const core::StemRootSampler stem;
  const core::SamplingPlan plan = pipeline.Sample(stem);
  const core::SamplingPlan rep0 = stem.BuildPlan(
      pipeline.Trace(), DeriveSeed(kSeed, HashString(stem.Name())));
  ASSERT_EQ(plan.entries.size(), rep0.entries.size());
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    EXPECT_EQ(plan.entries[i].invocation, rep0.entries[i].invocation);
    EXPECT_EQ(Bits(plan.entries[i].weight), Bits(rep0.entries[i].weight));
  }
}

TEST(PipelineTest, EvaluateMatchesEvaluateRepeated) {
  const Pipeline pipeline = MakePipeline();
  const core::StemRootSampler stem;
  const EvalResult via_pipeline = pipeline.Evaluate(stem, 3);
  const EvalResult direct =
      EvaluateRepeated(stem, pipeline.Trace(), 3,
                       DeriveSeed(kSeed, HashString(stem.Name())));
  EXPECT_EQ(via_pipeline.method, direct.method);
  EXPECT_EQ(Bits(via_pipeline.speedup), Bits(direct.speedup));
  EXPECT_EQ(Bits(via_pipeline.error_pct), Bits(direct.error_pct));
  EXPECT_EQ(via_pipeline.num_samples, direct.num_samples);
  EXPECT_EQ(via_pipeline.num_clusters, direct.num_clusters);
}

TEST(PipelineTest, UnprofiledStagesThrow) {
  const Pipeline pipeline =
      Pipeline::Generate(workloads::SuiteId::kCasio, "bert_infer",
                         {.seed = kSeed, .size_scale = kScale});
  EXPECT_FALSE(pipeline.Profiled());
  const core::StemRootSampler stem;
  EXPECT_THROW(pipeline.Sample(stem), std::logic_error);
  EXPECT_THROW(pipeline.Evaluate(stem, 1), std::logic_error);
}

TEST(PipelineTest, FromTraceDetectsProfiledTraces) {
  const Pipeline generated =
      Pipeline::Generate(workloads::SuiteId::kCasio, "bert_infer",
                         {.seed = kSeed, .size_scale = kScale});
  EXPECT_FALSE(Pipeline::FromTrace(generated.Trace()).Profiled());

  const Pipeline profiled = MakePipeline();
  Pipeline resumed = Pipeline::FromTrace(profiled.Trace(), {.seed = kSeed});
  EXPECT_TRUE(resumed.Profiled());
  // A resumed profiled trace supports Sample() without re-profiling.
  const core::StemRootSampler stem;
  EXPECT_FALSE(resumed.Sample(stem).entries.empty());
}

// ---------------------------------------------------------------------------
// Out-of-core spill (DESIGN.md section 16): --trace-spill is storage,
// never semantics. The in-memory path stays byte-identical with the
// spill enabled, at any thread count, and the spill file reassembles to
// the exact trace.

/// RAII thread pin (bench/perf_scalability.cc idiom).
struct ScopedThreads {
  explicit ScopedThreads(int n) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(0); }
};

Pipeline MakeSpillPipeline(const std::string& spill_dir,
                           uint64_t chunk_invocations) {
  Pipeline::Options options;
  options.seed = kSeed;
  options.size_scale = kScale;
  options.trace_chunk_invocations = chunk_invocations;
  options.trace_spill_dir = spill_dir;
  return Pipeline::GenerateProfiled(workloads::SuiteId::kCasio, "bert_infer",
                                    hw::GpuSpec::Rtx2080(), options);
}

TEST(PipelineSpillTest, ChunkedRunIsByteIdenticalToInMemory) {
  const std::string spill_dir = testing::TempDir() + "/spill_identity";
  std::filesystem::remove_all(spill_dir);
  const core::StemRootSampler stem;

  // In-memory reference at 1 thread.
  ScopedThreads one(1);
  const Pipeline reference = MakePipeline();
  const EvalResult ref_result = reference.Evaluate(stem, 2);

  // Chunked + spilled at 4 threads: the determinism contract and the
  // spill-is-storage contract, pinned together bit-for-bit.
  SetNumThreads(4);
  const Pipeline chunked = MakeSpillPipeline(spill_dir, 512);
  ASSERT_TRUE(chunked.Spill().enabled);
  EXPECT_FALSE(chunked.Spill().reused);
  EXPECT_EQ(chunked.Spill().chunk_invocations, 512u);
  EXPECT_GT(chunked.Spill().chunks, 0u);
  EXPECT_GT(chunked.Spill().bytes, 0u);

  ASSERT_EQ(chunked.Trace().NumInvocations(),
            reference.Trace().NumInvocations());
  EXPECT_EQ(Bits(chunked.Trace().TotalDurationUs()),
            Bits(reference.Trace().TotalDurationUs()));
  const EvalResult result = chunked.Evaluate(stem, 2);
  EXPECT_EQ(Bits(result.error_pct), Bits(ref_result.error_pct));
  EXPECT_EQ(Bits(result.speedup), Bits(ref_result.speedup));
  EXPECT_EQ(result.num_samples, ref_result.num_samples);
  EXPECT_EQ(result.num_clusters, ref_result.num_clusters);

  // The spill file holds the identical timeline: assembling it back and
  // re-encoding chunk 0 from memory agree byte-for-byte.
  const auto source = chunked.MakeChunkSource();
  const KernelTrace assembled = AssembleTrace(*source);
  ASSERT_EQ(assembled.NumInvocations(), reference.Trace().NumInvocations());
  EXPECT_EQ(Bits(assembled.TotalDurationUs()),
            Bits(reference.Trace().TotalDurationUs()));
  EXPECT_EQ(EncodeChunk(source->Chunk(0)),
            EncodeChunk(InMemoryChunkSource(reference.Trace(), 512).Chunk(0)));
}

TEST(PipelineSpillTest, SpillIsReusedWhenIntactAndRebuiltWhenCorrupt) {
  const std::string spill_dir = testing::TempDir() + "/spill_reuse";
  std::filesystem::remove_all(spill_dir);

  const Pipeline cold = MakeSpillPipeline(spill_dir, 256);
  ASSERT_TRUE(cold.Spill().enabled);
  EXPECT_FALSE(cold.Spill().reused);

  // Warm: every chunk digest verifies, so the file is reused as-is.
  const Pipeline warm = MakeSpillPipeline(spill_dir, 256);
  EXPECT_TRUE(warm.Spill().reused);
  EXPECT_EQ(warm.Spill().path, cold.Spill().path);
  EXPECT_EQ(warm.Spill().bytes, cold.Spill().bytes);

  // A different chunk capacity cannot reuse the old layout.
  const Pipeline recap = MakeSpillPipeline(spill_dir, 128);
  EXPECT_FALSE(recap.Spill().reused);

  // Corrupt one byte mid-file: the next run must detect it via the chunk
  // digests and rebuild, landing on identical bytes (corrupt spill costs
  // a rewrite, never a crash, never wrong chunks).
  {
    std::fstream file(cold.Spill().path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(cold.Spill().bytes / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(cold.Spill().bytes / 2));
    file.put(static_cast<char>(byte ^ 0x5a));
  }
  const Pipeline rebuilt = MakeSpillPipeline(spill_dir, 128);
  EXPECT_FALSE(rebuilt.Spill().reused);
  EXPECT_TRUE(FileChunkSource(rebuilt.Spill().path).Reader().VerifyChunk(0));
}

TEST(PipelineSpillTest, MakeChunkSourceDefaultsToInMemory) {
  const Pipeline pipeline = MakePipeline();
  EXPECT_FALSE(pipeline.Spill().enabled);
  const auto source = pipeline.MakeChunkSource();
  EXPECT_EQ(source->NumInvocations(), pipeline.Trace().NumInvocations());
  // No chunk size configured: one whole-trace chunk (the degenerate
  // in-memory case).
  EXPECT_EQ(source->NumChunks(), 1u);
}

TEST(PipelineSpillTest, StreamTraceIsSourceInvariant) {
  // The same timeline streamed from memory and from the spill file must
  // produce bit-identical statistics and cluster structure, at any chunk
  // size that preserves order.
  const std::string spill_dir = testing::TempDir() + "/spill_stream";
  std::filesystem::remove_all(spill_dir);
  const Pipeline pipeline = MakeSpillPipeline(spill_dir, 384);
  const StreamOptions options{.seed = kSeed};

  const StreamResult from_file = StreamTrace(*pipeline.MakeChunkSource(),
                                             options);
  const StreamResult from_memory = StreamTrace(
      InMemoryChunkSource(pipeline.Trace(), 384), options);
  const StreamResult coarser = StreamTrace(
      InMemoryChunkSource(pipeline.Trace(), 4096), options);

  EXPECT_EQ(from_file.invocations, pipeline.Trace().NumInvocations());
  for (const StreamResult* other : {&from_memory, &coarser}) {
    EXPECT_EQ(from_file.invocations, other->invocations);
    EXPECT_EQ(Bits(from_file.total_duration_us),
              Bits(other->total_duration_us));
    ASSERT_EQ(from_file.clusters.size(), other->clusters.size());
    for (size_t i = 0; i < from_file.clusters.size(); ++i) {
      EXPECT_EQ(from_file.clusters[i].n, other->clusters[i].n);
      EXPECT_EQ(Bits(from_file.clusters[i].mean),
                Bits(other->clusters[i].mean));
    }
  }
  // Chunk count is a pacing artifact, not part of the result identity.
  EXPECT_NE(from_file.chunks, coarser.chunks);
}

}  // namespace
}  // namespace stemroot::eval
