#include "eval/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "common/rng.h"
#include "core/sampler.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "hw/hardware_model.h"
#include "workloads/suite.h"

namespace stemroot::eval {
namespace {

uint64_t Bits(double x) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

constexpr uint64_t kSeed = 99;
constexpr double kScale = 0.05;

Pipeline MakePipeline() {
  Pipeline pipeline = Pipeline::Generate(workloads::SuiteId::kCasio,
                                         "bert_infer",
                                         {.seed = kSeed, .size_scale = kScale});
  pipeline.Profile(hw::GpuSpec::Rtx2080());
  return pipeline;
}

TEST(PipelineTest, GenerateMatchesHistoricalSeedDerivation) {
  const Pipeline pipeline = MakePipeline();
  // The seed contract in pipeline.h: generation and profiling derive their
  // stage seeds from the one master seed exactly as RunSuite always did.
  KernelTrace manual = workloads::MakeWorkload(
      workloads::SuiteId::kCasio, "bert_infer",
      DeriveSeed(kSeed, HashString("bert_infer")), kScale);
  hw::HardwareModel(hw::GpuSpec::Rtx2080())
      .ProfileTrace(manual, DeriveSeed(kSeed, kProfileStream));

  ASSERT_EQ(pipeline.Trace().NumInvocations(), manual.NumInvocations());
  EXPECT_EQ(Bits(pipeline.Trace().TotalDurationUs()),
            Bits(manual.TotalDurationUs()));
  EXPECT_TRUE(pipeline.Profiled());
  EXPECT_EQ(pipeline.Opts().seed, kSeed);
}

// Pins the deprecated shim's equivalence with the facade: suppressing the
// deprecation warning here is deliberate, the shim must stay bit-exact
// until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PipelineTest, MatchesMakeProfiledWorkload) {
  const Pipeline pipeline = MakePipeline();
  const KernelTrace legacy =
      MakeProfiledWorkload(workloads::SuiteId::kCasio, "bert_infer",
                           hw::HardwareModel(hw::GpuSpec::Rtx2080()), kSeed,
                           kScale);
  ASSERT_EQ(pipeline.Trace().NumInvocations(), legacy.NumInvocations());
  EXPECT_EQ(Bits(pipeline.Trace().TotalDurationUs()),
            Bits(legacy.TotalDurationUs()));
}
#pragma GCC diagnostic pop

TEST(PipelineTest, SampleEqualsEvaluateRepZero) {
  const Pipeline pipeline = MakePipeline();
  const core::StemRootSampler stem;
  const core::SamplingPlan plan = pipeline.Sample(stem);
  const core::SamplingPlan rep0 = stem.BuildPlan(
      pipeline.Trace(), DeriveSeed(kSeed, HashString(stem.Name())));
  ASSERT_EQ(plan.entries.size(), rep0.entries.size());
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    EXPECT_EQ(plan.entries[i].invocation, rep0.entries[i].invocation);
    EXPECT_EQ(Bits(plan.entries[i].weight), Bits(rep0.entries[i].weight));
  }
}

TEST(PipelineTest, EvaluateMatchesEvaluateRepeated) {
  const Pipeline pipeline = MakePipeline();
  const core::StemRootSampler stem;
  const EvalResult via_pipeline = pipeline.Evaluate(stem, 3);
  const EvalResult direct =
      EvaluateRepeated(stem, pipeline.Trace(), 3,
                       DeriveSeed(kSeed, HashString(stem.Name())));
  EXPECT_EQ(via_pipeline.method, direct.method);
  EXPECT_EQ(Bits(via_pipeline.speedup), Bits(direct.speedup));
  EXPECT_EQ(Bits(via_pipeline.error_pct), Bits(direct.error_pct));
  EXPECT_EQ(via_pipeline.num_samples, direct.num_samples);
  EXPECT_EQ(via_pipeline.num_clusters, direct.num_clusters);
}

TEST(PipelineTest, UnprofiledStagesThrow) {
  const Pipeline pipeline =
      Pipeline::Generate(workloads::SuiteId::kCasio, "bert_infer",
                         {.seed = kSeed, .size_scale = kScale});
  EXPECT_FALSE(pipeline.Profiled());
  const core::StemRootSampler stem;
  EXPECT_THROW(pipeline.Sample(stem), std::logic_error);
  EXPECT_THROW(pipeline.Evaluate(stem, 1), std::logic_error);
}

TEST(PipelineTest, FromTraceDetectsProfiledTraces) {
  const Pipeline generated =
      Pipeline::Generate(workloads::SuiteId::kCasio, "bert_infer",
                         {.seed = kSeed, .size_scale = kScale});
  EXPECT_FALSE(Pipeline::FromTrace(generated.Trace()).Profiled());

  const Pipeline profiled = MakePipeline();
  Pipeline resumed = Pipeline::FromTrace(profiled.Trace(), {.seed = kSeed});
  EXPECT_TRUE(resumed.Profiled());
  // A resumed profiled trace supports Sample() without re-profiling.
  const core::StemRootSampler stem;
  EXPECT_FALSE(resumed.Sample(stem).entries.empty());
}

}  // namespace
}  // namespace stemroot::eval
