#include "eval/runner.h"

#include <gtest/gtest.h>

#include "baselines/random_sampler.h"
#include "core/sampler.h"
#include "common/csv.h"
#include "eval/report.h"

namespace stemroot::eval {
namespace {

TEST(RunnerTest, RunsSelectedWorkloadsForAllSamplers) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.01);
  core::StemRootSampler stem;
  const core::Sampler* samplers[] = {&random, &stem};

  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.01;
  config.reps = 2;
  config.only_workloads = {"bert_infer", "dlrm_infer"};

  const SuiteResults results = RunSuite(config, gpu, samplers);
  EXPECT_EQ(results.rows.size(), 4u);  // 2 workloads x 2 samplers
  EXPECT_EQ(results.Methods().size(), 2u);
  EXPECT_EQ(results.ForWorkload("bert_infer").size(), 2u);
  EXPECT_NO_THROW(results.Aggregate("STEM"));
}

TEST(RunnerTest, StemBeatsRandomOnErrors) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.001);
  core::StemRootSampler stem;
  const core::Sampler* samplers[] = {&random, &stem};

  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.05;
  config.reps = 3;
  config.only_workloads = {"bert_infer"};

  const SuiteResults results = RunSuite(config, gpu, samplers);
  const EvalResult random_agg = results.Aggregate(random.Name());
  const EvalResult stem_agg = results.Aggregate("STEM");
  EXPECT_LT(stem_agg.error_pct, random_agg.error_pct);
}

// These two tests pin the deprecated MakeProfiledWorkload shim on purpose:
// it must keep producing bit-exact traces until the last caller migrates.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(RunnerTest, MakeProfiledWorkloadIsReady) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const KernelTrace trace = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 3, 0.1);
  EXPECT_GT(trace.NumInvocations(), 0u);
  EXPECT_GT(trace.TotalDurationUs(), 0.0);
}

TEST(RunnerTest, SeedChangesWorkloadRealization) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const KernelTrace a = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 3, 0.1);
  const KernelTrace b = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 4, 0.1);
  EXPECT_NE(a.TotalDurationUs(), b.TotalDurationUs());
}
#pragma GCC diagnostic pop

TEST(SuiteResultsIndexTest, ThousandRowResultSet) {
  // Regression for the quadratic Methods()/ForWorkload() scans: a DSE-sized
  // result set (1000 rows = 100 workloads x 10 methods) must index
  // correctly -- first-seen method order, insertion-ordered workload rows,
  // and aggregates that match the unindexed AggregateSuite path.
  SuiteResults results;
  for (int w = 0; w < 100; ++w) {
    for (int m = 0; m < 10; ++m) {
      EvalResult row;
      row.method = "method_" + std::to_string(m);
      row.workload = "workload_" + std::to_string(w);
      row.speedup = 1.0 + m + 0.01 * w;
      row.error_pct = 0.1 * (m + 1);
      row.num_samples = static_cast<size_t>(10 + m);
      results.Add(row);
    }
  }
  ASSERT_EQ(results.rows.size(), 1000u);

  const std::vector<std::string> methods = results.Methods();
  ASSERT_EQ(methods.size(), 10u);
  for (int m = 0; m < 10; ++m)  // first-seen order, not lexicographic
    EXPECT_EQ(methods[static_cast<size_t>(m)],
              "method_" + std::to_string(m));

  for (int w : {0, 42, 99}) {
    const auto rows = results.ForWorkload("workload_" + std::to_string(w));
    ASSERT_EQ(rows.size(), 10u);
    for (int m = 0; m < 10; ++m)
      EXPECT_EQ(rows[static_cast<size_t>(m)].method,
                "method_" + std::to_string(m));
  }
  EXPECT_TRUE(results.ForWorkload("no_such_workload").empty());

  const EvalResult indexed = results.Aggregate("method_7");
  const EvalResult scanned = AggregateSuite(results.rows, "method_7");
  EXPECT_EQ(indexed.speedup, scanned.speedup);
  EXPECT_EQ(indexed.error_pct, scanned.error_pct);
  EXPECT_EQ(indexed.num_samples, scanned.num_samples);
  EXPECT_THROW(results.Aggregate("no_such_method"), std::invalid_argument);
}

TEST(SuiteResultsIndexTest, IndexCatchesUpAfterAppend) {
  SuiteResults results;
  EvalResult row;
  row.method = "A";
  row.workload = "w1";
  row.speedup = 2.0;
  row.error_pct = 1.0;
  results.Add(row);
  EXPECT_EQ(results.Methods(), std::vector<std::string>{"A"});

  // Append directly to the public vector after a query: the lazy index
  // must pick the new rows up on the next query.
  row.method = "B";
  row.workload = "w2";
  results.rows.push_back(row);
  EXPECT_EQ(results.Methods(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(results.ForWorkload("w2").size(), 1u);

  // Shrinking forces a full rebuild.
  results.rows.pop_back();
  EXPECT_EQ(results.Methods(), std::vector<std::string>{"A"});
  EXPECT_TRUE(results.ForWorkload("w2").empty());
}

TEST(ReportTest, TablesContainAllMethodsAndWorkloads) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.01);
  const core::Sampler* samplers[] = {&random};
  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.01;
  config.reps = 1;
  config.only_workloads = {"bert_infer"};
  const SuiteResults results = RunSuite(config, gpu, samplers);

  const std::string table = FormatSuiteTable(results, "title");
  EXPECT_NE(table.find("title"), std::string::npos);
  EXPECT_NE(table.find("bert_infer"), std::string::npos);
  EXPECT_NE(table.find("Random"), std::string::npos);

  const std::string averages = FormatSuiteAverages(results, "avg");
  EXPECT_NE(averages.find("Random"), std::string::npos);

  const std::string csv_path = testing::TempDir() + "/runner_report.csv";
  WriteResultsCsv(results, csv_path);
  EXPECT_NO_THROW(stemroot::CsvTable::ReadFile(csv_path));
}

}  // namespace
}  // namespace stemroot::eval
