#include "eval/runner.h"

#include <gtest/gtest.h>

#include "baselines/random_sampler.h"
#include "core/sampler.h"
#include "common/csv.h"
#include "eval/report.h"

namespace stemroot::eval {
namespace {

TEST(RunnerTest, RunsSelectedWorkloadsForAllSamplers) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.01);
  core::StemRootSampler stem;
  const core::Sampler* samplers[] = {&random, &stem};

  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.01;
  config.reps = 2;
  config.only_workloads = {"bert_infer", "dlrm_infer"};

  const SuiteResults results = RunSuite(config, gpu, samplers);
  EXPECT_EQ(results.rows.size(), 4u);  // 2 workloads x 2 samplers
  EXPECT_EQ(results.Methods().size(), 2u);
  EXPECT_EQ(results.ForWorkload("bert_infer").size(), 2u);
  EXPECT_NO_THROW(results.Aggregate("STEM"));
}

TEST(RunnerTest, StemBeatsRandomOnErrors) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.001);
  core::StemRootSampler stem;
  const core::Sampler* samplers[] = {&random, &stem};

  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.05;
  config.reps = 3;
  config.only_workloads = {"bert_infer"};

  const SuiteResults results = RunSuite(config, gpu, samplers);
  const EvalResult random_agg = results.Aggregate(random.Name());
  const EvalResult stem_agg = results.Aggregate("STEM");
  EXPECT_LT(stem_agg.error_pct, random_agg.error_pct);
}

TEST(RunnerTest, MakeProfiledWorkloadIsReady) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const KernelTrace trace = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 3, 0.1);
  EXPECT_GT(trace.NumInvocations(), 0u);
  EXPECT_GT(trace.TotalDurationUs(), 0.0);
}

TEST(RunnerTest, SeedChangesWorkloadRealization) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const KernelTrace a = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 3, 0.1);
  const KernelTrace b = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 4, 0.1);
  EXPECT_NE(a.TotalDurationUs(), b.TotalDurationUs());
}

TEST(ReportTest, TablesContainAllMethodsAndWorkloads) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.01);
  const core::Sampler* samplers[] = {&random};
  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.01;
  config.reps = 1;
  config.only_workloads = {"bert_infer"};
  const SuiteResults results = RunSuite(config, gpu, samplers);

  const std::string table = FormatSuiteTable(results, "title");
  EXPECT_NE(table.find("title"), std::string::npos);
  EXPECT_NE(table.find("bert_infer"), std::string::npos);
  EXPECT_NE(table.find("Random"), std::string::npos);

  const std::string averages = FormatSuiteAverages(results, "avg");
  EXPECT_NE(averages.find("Random"), std::string::npos);

  const std::string csv_path = testing::TempDir() + "/runner_report.csv";
  WriteResultsCsv(results, csv_path);
  EXPECT_NO_THROW(stemroot::CsvTable::ReadFile(csv_path));
}

}  // namespace
}  // namespace stemroot::eval
