#include "eval/dse.h"

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "eval/runner.h"

namespace stemroot::eval {
namespace {

TEST(DseTest, StandardVariantsMatchTableFour) {
  const auto variants = StandardDseVariants(hw::GpuSpec::Rtx2080());
  ASSERT_EQ(variants.size(), 5u);
  EXPECT_EQ(variants[0].name, "Baseline");
  EXPECT_EQ(variants[1].spec.l2_bytes,
            hw::GpuSpec::Rtx2080().l2_bytes * 2);
  EXPECT_EQ(variants[2].spec.l2_bytes,
            hw::GpuSpec::Rtx2080().l2_bytes / 2);
  EXPECT_EQ(variants[3].spec.num_sms,
            hw::GpuSpec::Rtx2080().num_sms * 2);
  EXPECT_EQ(variants[4].spec.num_sms,
            hw::GpuSpec::Rtx2080().num_sms / 2);
}

TEST(DseTest, RetimePreservesOrderAndPositivity) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const KernelTrace trace = MakeProfiledWorkload(
      workloads::SuiteId::kRodinia, "lud", gpu, 3, 0.1);
  const auto durations = RetimeTrace(trace, AnalyticTiming(gpu, 42));
  ASSERT_EQ(durations.size(), trace.NumInvocations());
  for (double d : durations) EXPECT_GT(d, 0.0);
}

TEST(DseTest, PlanBuiltOnBaselineTransfersToVariant) {
  // The Sec. 5.4 property: plans from the baseline profile keep low error
  // when ground truth is re-timed on modified hardware.
  hw::HardwareModel base(hw::GpuSpec::Rtx2080());
  KernelTrace trace = MakeProfiledWorkload(
      workloads::SuiteId::kCasio, "bert_infer", base, 3, 0.02);

  core::StemRootSampler stem;
  std::vector<core::SamplingPlan> plans = {stem.BuildPlan(trace, 1)};

  for (const DseVariant& variant :
       StandardDseVariants(hw::GpuSpec::Rtx2080())) {
    hw::HardwareModel gpu(variant.spec);
    const auto durations = RetimeTrace(trace, AnalyticTiming(gpu, 99));
    const auto results =
        EvaluatePlansOnVariant(plans, durations, trace.WorkloadName());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_LT(results[0].error_pct, 8.0) << variant.name;
  }
}

TEST(DseTest, CrossGpuH100ToH200StaysAccurate) {
  // Fig. 13: sampling decided on H100, evaluated on H200.
  hw::HardwareModel h100(hw::GpuSpec::H100());
  KernelTrace trace = MakeProfiledWorkload(
      workloads::SuiteId::kCasio, "bert_infer", h100, 5, 0.02);
  core::StemRootSampler stem;
  const core::SamplingPlan plan = stem.BuildPlan(trace, 1);

  hw::HardwareModel h200(hw::GpuSpec::H200());
  const auto durations = RetimeTrace(trace, AnalyticTiming(h200, 7));
  const EvalResult result =
      EvaluatePlanOnDurations(plan, durations, "bert_infer");
  EXPECT_LT(result.error_pct, 10.0);
}

}  // namespace
}  // namespace stemroot::eval
