#include "eval/dse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/sampler.h"
#include "eval/manifest.h"
#include "eval/pipeline.h"
#include "eval/regress.h"
#include "eval/runner.h"

namespace stemroot::eval {
namespace {

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

TEST(DseTest, StandardVariantsMatchTableFour) {
  const auto variants = StandardDseVariants(hw::GpuSpec::Rtx2080());
  ASSERT_EQ(variants.size(), 5u);
  EXPECT_EQ(variants[0].name, "Baseline");
  EXPECT_EQ(variants[1].spec.l2_bytes,
            hw::GpuSpec::Rtx2080().l2_bytes * 2);
  EXPECT_EQ(variants[2].spec.l2_bytes,
            hw::GpuSpec::Rtx2080().l2_bytes / 2);
  EXPECT_EQ(variants[3].spec.num_sms,
            hw::GpuSpec::Rtx2080().num_sms * 2);
  EXPECT_EQ(variants[4].spec.num_sms,
            hw::GpuSpec::Rtx2080().num_sms / 2);
}

TEST(DseTest, RetimePreservesOrderAndPositivity) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  const Pipeline pipeline = Pipeline::GenerateProfiled(
      {.suite = workloads::SuiteId::kRodinia,
       .workload = "lud",
       .options = {.seed = 3, .size_scale = 0.1}},
      gpu);
  const KernelTrace& trace = pipeline.Trace();
  const auto durations = RetimeTrace(trace, AnalyticTiming(gpu, 42));
  ASSERT_EQ(durations.size(), trace.NumInvocations());
  for (double d : durations) EXPECT_GT(d, 0.0);
}

TEST(DseTest, PlanBuiltOnBaselineTransfersToVariant) {
  // The Sec. 5.4 property: plans from the baseline profile keep low error
  // when ground truth is re-timed on modified hardware.
  hw::HardwareModel base(hw::GpuSpec::Rtx2080());
  KernelTrace trace = Pipeline::GenerateProfiled(
                          {.suite = workloads::SuiteId::kCasio,
                           .workload = "bert_infer",
                           .options = {.seed = 3, .size_scale = 0.02}},
                          base)
                          .Trace();

  core::StemRootSampler stem;
  std::vector<core::SamplingPlan> plans = {stem.BuildPlan(trace, 1)};

  for (const DseVariant& variant :
       StandardDseVariants(hw::GpuSpec::Rtx2080())) {
    hw::HardwareModel gpu(variant.spec);
    const auto durations = RetimeTrace(trace, AnalyticTiming(gpu, 99));
    const auto results =
        EvaluatePlansOnVariant(plans, durations, trace.WorkloadName());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_LT(results[0].error_pct, 8.0) << variant.name;
  }
}

TEST(DseTest, CrossGpuH100ToH200StaysAccurate) {
  // Fig. 13: sampling decided on H100, evaluated on H200.
  hw::HardwareModel h100(hw::GpuSpec::H100());
  KernelTrace trace = Pipeline::GenerateProfiled(
                          {.suite = workloads::SuiteId::kCasio,
                           .workload = "bert_infer",
                           .options = {.seed = 5, .size_scale = 0.02}},
                          h100)
                          .Trace();
  core::StemRootSampler stem;
  const core::SamplingPlan plan = stem.BuildPlan(trace, 1);

  hw::HardwareModel h200(hw::GpuSpec::H200());
  const auto durations = RetimeTrace(trace, AnalyticTiming(h200, 7));
  const EvalResult result =
      EvaluatePlanOnDurations(plan, durations, "bert_infer");
  EXPECT_LT(result.error_pct, 10.0);
}

// ---------------------------------------------------------------------------
// DseSweep: the batched concurrent sweep (ISSUE satellite 4). The whole
// point grid runs concurrently, yet every result is byte-identical to a
// sequential loop of single-point evaluations.
// ---------------------------------------------------------------------------

/// Two small profiled Rodinia workloads with STEM plans, shared by all
/// sweep tests (building them dominates the test cost).
class DseSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
    static std::vector<KernelTrace> traces;
    static std::vector<std::vector<core::SamplingPlan>> plans;
    for (const char* name : {"hotspot", "lud"})
      traces.push_back(Pipeline::GenerateProfiled(
                           {.suite = workloads::SuiteId::kRodinia,
                            .workload = name,
                            .options = {.seed = 3, .size_scale = 0.05}},
                           gpu)
                           .Trace());
    core::StemRootSampler stem;
    for (const KernelTrace& trace : traces)
      plans.push_back({stem.BuildPlan(trace, 1)});
    static std::vector<DseWorkload> workloads_storage;
    for (size_t w = 0; w < traces.size(); ++w)
      workloads_storage.push_back({&traces[w], plans[w]});
    workloads_ = &workloads_storage;
    // Three variants keep the full-simulation cost in check.
    static std::vector<DseVariant> variants_storage =
        StandardDseVariants(hw::GpuSpec::Rtx2080());
    variants_storage.resize(3);
    variants_ = &variants_storage;
  }

  static const std::vector<DseWorkload>* workloads_;
  static const std::vector<DseVariant>* variants_;
};

const std::vector<DseWorkload>* DseSweepTest::workloads_ = nullptr;
const std::vector<DseVariant>* DseSweepTest::variants_ = nullptr;

void ExpectPointsIdentical(const DsePointResult& a, const DsePointResult& b) {
  EXPECT_EQ(a.variant, b.variant);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.variant_index, b.variant_index);
  EXPECT_EQ(a.workload_index, b.workload_index);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(Bits(a.full_cycles), Bits(b.full_cycles));
  ASSERT_EQ(a.methods.size(), b.methods.size());
  for (size_t m = 0; m < a.methods.size(); ++m) {
    EXPECT_EQ(a.methods[m].method, b.methods[m].method);
    EXPECT_EQ(Bits(a.methods[m].estimated_cycles),
              Bits(b.methods[m].estimated_cycles));
    EXPECT_EQ(Bits(a.methods[m].cost_cycles), Bits(b.methods[m].cost_cycles));
    EXPECT_EQ(a.methods[m].kernels_simulated, b.methods[m].kernels_simulated);
    EXPECT_EQ(Bits(a.methods[m].error_pct), Bits(b.methods[m].error_pct));
  }
}

TEST_F(DseSweepTest, ConcurrentSweepMatchesSequentialPointLoop) {
  DseSweepOptions options;
  options.seed = 99;
  options.sweep_threads = 4;
  const DseSweep sweep(*variants_, options);
  const DseSweepResult concurrent = sweep.Run(*workloads_);
  ASSERT_EQ(concurrent.points.size(),
            variants_->size() * workloads_->size());

  for (size_t vi = 0; vi < variants_->size(); ++vi)
    for (size_t wi = 0; wi < workloads_->size(); ++wi) {
      SCOPED_TRACE((*variants_)[vi].name + "/" +
                   (*workloads_)[wi].trace->WorkloadName());
      const DsePointResult serial =
          sweep.RunPoint(vi, (*workloads_)[wi], wi);
      ExpectPointsIdentical(concurrent.At(vi, wi), serial);
    }
}

TEST_F(DseSweepTest, SweepThreadCountNeverChangesResults) {
  DseSweepOptions options;
  options.seed = 99;
  // sim_shards > 1 inside each point exercises the nested-region path:
  // the engine degrades to serial inside the sweep's parallel region.
  options.shard.sim_shards = 2;
  options.sweep_threads = 1;
  const DseSweepResult one = DseSweep(*variants_, options).Run(*workloads_);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    options.sweep_threads = threads;
    const DseSweepResult many =
        DseSweep(*variants_, options).Run(*workloads_);
    ASSERT_EQ(many.points.size(), one.points.size());
    for (size_t i = 0; i < one.points.size(); ++i)
      ExpectPointsIdentical(one.points[i], many.points[i]);
  }
}

TEST_F(DseSweepTest, PointSeedsAreStableAndDistinct) {
  DseSweepOptions options;
  options.seed = 1234;
  const DseSweep sweep(*variants_, options);
  std::vector<uint64_t> seeds;
  for (size_t vi = 0; vi < variants_->size(); ++vi)
    for (size_t wi = 0; wi < workloads_->size(); ++wi)
      seeds.push_back(sweep.PointSeed(vi, wi));
  for (size_t i = 0; i < seeds.size(); ++i)
    for (size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
  // Stable across sweep instances (it is a pure seed derivation).
  EXPECT_EQ(DseSweep(*variants_, options).PointSeed(1, 1),
            sweep.PointSeed(1, 1));
}

TEST_F(DseSweepTest, PointManifestValidatesAndCarriesShardConfig) {
  DseSweepOptions options;
  options.seed = 7;
  options.shard.sim_shards = 2;
  options.shard.sim_threads = 3;
  options.shard.epoch_cycles = 1000;
  const DseSweep sweep(*variants_, options);
  const DsePointResult point = sweep.RunPoint(1, (*workloads_)[0], 0);
  const RunManifest manifest = point.ToManifest(options, "stemroot", "rodinia");

  EXPECT_EQ(manifest.command, "dse-point");
  EXPECT_TRUE(manifest.completed);
  EXPECT_EQ(manifest.config.gpu, (*variants_)[1].name);
  EXPECT_EQ(manifest.config.seed, point.seed);
  EXPECT_EQ(manifest.config.sim_shards, 2u);
  EXPECT_EQ(manifest.config.sim_threads, 3);
  EXPECT_EQ(manifest.config.epoch_cycles, 1000u);

  std::string error;
  EXPECT_TRUE(ValidateManifestJson(manifest.ToJson(/*pretty=*/true), &error))
      << error;
  // Round-trip keeps the shard block.
  RunManifest parsed;
  ASSERT_TRUE(
      RunManifest::FromJson(manifest.ToJson(/*pretty=*/true), parsed, &error))
      << error;
  EXPECT_EQ(parsed.config.sim_shards, 2u);
  EXPECT_EQ(parsed.config.sim_threads, 3);
  EXPECT_EQ(parsed.config.epoch_cycles, 1000u);
  EXPECT_EQ(parsed.Fingerprint(), manifest.Fingerprint());
}

TEST_F(DseSweepTest, FingerprintExcludesSimThreadsOnly) {
  DseSweepOptions options;
  options.seed = 7;
  options.shard.sim_shards = 2;
  const DseSweep sweep(*variants_, options);
  const DsePointResult point = sweep.RunPoint(0, (*workloads_)[0], 0);
  const RunManifest base = point.ToManifest(options);

  // sim_threads: pacing only -- same fingerprint, comparable (the §12
  // contract makes runs at different lane concurrency one series).
  DseSweepOptions threads = options;
  threads.shard.sim_threads = 8;
  const RunManifest with_threads = point.ToManifest(threads);
  EXPECT_EQ(base.Fingerprint(), with_threads.Fingerprint());
  EXPECT_TRUE(CompareManifests(base, with_threads).comparable);

  // epoch_cycles: wall-time knob -- splits the baseline series, but the
  // results are still comparable run-to-run.
  DseSweepOptions epoch = options;
  epoch.shard.epoch_cycles = 7;
  const RunManifest with_epoch = point.ToManifest(epoch);
  EXPECT_NE(base.Fingerprint(), with_epoch.Fingerprint());
  EXPECT_TRUE(CompareManifests(base, with_epoch).comparable);

  // sim_shards: modeling knob -- different fingerprint AND incomparable.
  DseSweepOptions shards = options;
  shards.shard.sim_shards = 4;
  const RunManifest with_shards = point.ToManifest(shards);
  EXPECT_NE(base.Fingerprint(), with_shards.Fingerprint());
  EXPECT_FALSE(CompareManifests(base, with_shards).comparable);
}

TEST_F(DseSweepTest, AccessorsRejectBadIndices) {
  DseSweepOptions options;
  const DseSweep sweep(*variants_, options);
  const DseSweepResult result = sweep.Run(*workloads_);
  EXPECT_THROW(result.At(variants_->size(), 0), std::out_of_range);
  EXPECT_THROW(result.At(0, workloads_->size()), std::out_of_range);
  EXPECT_THROW(result.MeanErrorPct(0, "no-such-method"), std::out_of_range);
  EXPECT_GT(result.MeanErrorPct(0, "STEM"), 0.0);
  EXPECT_THROW(DseSweep({}, options), std::invalid_argument);
  DseSweepOptions bad = options;
  bad.sweep_threads = -2;
  EXPECT_THROW(DseSweep(*variants_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::eval
