#include "eval/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "baselines/random_sampler.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/sampler.h"
#include "eval/pipeline.h"
#include "hw/gpu_spec.h"
#include "workloads/suite.h"

namespace stemroot::eval {
namespace {

KernelTrace ProfiledTrace(const std::string& workload, uint64_t seed,
                          double scale) {
  Pipeline pipeline = Pipeline::Generate(workloads::SuiteId::kRodinia,
                                         workload,
                                         {.seed = seed, .size_scale = scale});
  pipeline.Profile(hw::GpuSpec::Rtx2080());
  return pipeline.Trace();
}

// The acceptance gate from the issue: `stemroot audit --suite rodinia
// --seed 42` must show realized |error| within the predicted bound for at
// least 95% of clusters. Pin it here so the error model stays honest.
TEST(AuditTest, RodiniaSeed42StaysWithinBudget) {
  const core::StemRootSampler stem;
  AuditOptions options;
  options.trials = 5;
  options.seed = 42;
  const AuditReport report = AuditSuite(workloads::SuiteId::kRodinia, stem,
                                        hw::GpuSpec::Rtx2080(), options);
  EXPECT_EQ(report.method, stem.Name());
  EXPECT_EQ(report.workloads.size(),
            workloads::SuiteWorkloads(workloads::SuiteId::kRodinia).size());
  ASSERT_GT(report.TotalClusters(), 0u);
  EXPECT_GE(report.WithinBudgetFraction(), 0.95);
  EXPECT_GE(report.MeanCoverage(), 0.90);
  // Every workload's joint bound respects the configured epsilon.
  for (const WorkloadAudit& wl : report.workloads) {
    EXPECT_LE(wl.joint_predicted_error, report.epsilon + 1e-12)
        << wl.workload;
  }
}

TEST(AuditTest, JsonExportValidatesAndTextSummarizes) {
  const core::StemRootSampler stem;
  AuditOptions options;
  options.trials = 3;
  options.only_workloads = {"bfs", "hotspot"};
  const AuditReport report = AuditSuite(workloads::SuiteId::kRodinia, stem,
                                        hw::GpuSpec::Rtx2080(), options);
  ASSERT_EQ(report.workloads.size(), 2u);

  std::string error;
  EXPECT_TRUE(ValidateAuditJson(report.ToJson(), &error)) << error;

  const std::string text = report.ToText();
  EXPECT_NE(text.find("bfs"), std::string::npos);
  EXPECT_NE(text.find("hotspot"), std::string::npos);
  EXPECT_NE(text.find("Summary:"), std::string::npos);
}

TEST(AuditTest, ValidateRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(ValidateAuditJson("", &error));
  EXPECT_FALSE(ValidateAuditJson("{", &error));
  EXPECT_FALSE(ValidateAuditJson("[]", &error));
  EXPECT_FALSE(ValidateAuditJson("{\"schema\":\"wrong\"}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AuditTest, ReportIsThreadCountInvariant) {
  const core::StemRootSampler stem;
  AuditOptions options;
  options.trials = 4;
  options.only_workloads = {"hotspot"};
  SetNumThreads(1);
  const std::string serial =
      AuditSuite(workloads::SuiteId::kRodinia, stem, hw::GpuSpec::Rtx2080(),
                 options)
          .ToJson();
  SetNumThreads(4);
  const std::string threaded =
      AuditSuite(workloads::SuiteId::kRodinia, stem, hw::GpuSpec::Rtx2080(),
                 options)
          .ToJson();
  SetNumThreads(0);
  EXPECT_EQ(serial, threaded);
}

// Auditing a baseline must work with STEM's reference partition: the rows
// then show where the baseline leaves epsilon-clusters under-covered.
TEST(AuditTest, BaselineSamplerAuditsAgainstStemBudget) {
  const KernelTrace trace = ProfiledTrace("bfs", 42, 1.0);
  const baselines::RandomSampler random(0.1);
  const WorkloadAudit audit = AuditWorkload(
      trace, random, core::RootConfig{}, 3,
      DeriveSeed(42, HashString(random.Name())));
  ASSERT_FALSE(audit.clusters.empty());
  // The allocation column is STEM's KKT answer regardless of sampler; the
  // draw column is what the audited sampler actually did.
  bool any_mismatch = false;
  for (const ClusterAuditRow& row : audit.clusters) {
    EXPECT_GE(row.population, 1u);
    if (std::fabs(row.mean_draws - static_cast<double>(row.m_allocated)) >
        1e-9)
      any_mismatch = true;
  }
  EXPECT_TRUE(any_mismatch);
}

TEST(AuditTest, ZeroTrialsThrows) {
  const KernelTrace trace = ProfiledTrace("bfs", 7, 0.5);
  const core::StemRootSampler stem;
  EXPECT_THROW(AuditWorkload(trace, stem, core::RootConfig{}, 0, 1),
               std::invalid_argument);
}

TEST(AuditTest, ExhaustiveClustersRealizeZeroError) {
  const KernelTrace trace = ProfiledTrace("bfs", 42, 1.0);
  const core::StemRootSampler stem;
  const WorkloadAudit audit = AuditWorkload(
      trace, stem, core::RootConfig{}, 2,
      DeriveSeed(42, HashString(stem.Name())));
  for (const ClusterAuditRow& row : audit.clusters) {
    if (row.m_allocated < row.population) continue;
    // m >= N means every member is measured: the estimate is exact.
    EXPECT_NEAR(row.mean_abs_error, 0.0, 1e-9) << row.kernel;
    EXPECT_TRUE(row.within_budget) << row.kernel;
  }
}

}  // namespace
}  // namespace stemroot::eval
