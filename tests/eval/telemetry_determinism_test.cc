/// \file
/// The ISSUE acceptance test for the telemetry determinism contract: run
/// the full pipeline (generate -> profile -> cluster -> sample ->
/// evaluate) at 1 and at 8 threads and require the counters and
/// distributions sections of the export to be byte-identical. Span wall
/// times are excluded by design (telemetry.h), but all five canonical
/// stage spans must be present at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/sampler.h"
#include "eval/pipeline.h"
#include "eval/stage_report.h"
#include "hw/hardware_model.h"
#include "workloads/suite.h"

namespace stemroot::eval {
namespace {

struct TelemetryRun {
  std::string counters_json;
  std::string distributions_json;
  telemetry::Snapshot snapshot;
};

/// One `stemroot run`-shaped pipeline pass with telemetry on.
TelemetryRun RunInstrumentedPipeline(int threads) {
  SetNumThreads(threads);
  telemetry::SetEnabled(true);
  telemetry::Reset();

  Pipeline pipeline = Pipeline::Generate(workloads::SuiteId::kCasio,
                                         "bert_infer",
                                         {.seed = 99, .size_scale = 0.05});
  pipeline.Profile(hw::GpuSpec::Rtx2080());
  const core::StemRootSampler stem;
  pipeline.Evaluate(stem, 3);

  TelemetryRun run;
  run.snapshot = telemetry::Capture();
  run.counters_json = run.snapshot.CountersJson();
  run.distributions_json = run.snapshot.DistributionsJson();
  telemetry::Reset();
  telemetry::SetEnabled(false);
  SetNumThreads(0);
  return run;
}

TEST(TelemetryDeterminismTest, CountersByteIdenticalAcrossThreadCounts) {
  const TelemetryRun one = RunInstrumentedPipeline(1);
  const TelemetryRun eight = RunInstrumentedPipeline(8);

  EXPECT_FALSE(one.snapshot.Counters().empty());
  EXPECT_FALSE(one.snapshot.Distributions().empty());
  EXPECT_EQ(one.counters_json, eight.counters_json);
  EXPECT_EQ(one.distributions_json, eight.distributions_json);
}

TEST(TelemetryDeterminismTest, AllFiveStageSpansPresent) {
  for (const int threads : {1, 8}) {
    const TelemetryRun run = RunInstrumentedPipeline(threads);
    for (const std::string& stage : PipelineStageNames())
      EXPECT_TRUE(run.snapshot.HasSpan(stage))
          << stage << " missing at threads=" << threads;
    const StageReport report = StageReport::FromSnapshot(run.snapshot);
    for (const std::string& stage : PipelineStageNames())
      EXPECT_TRUE(report.HasStage(stage)) << stage;
    EXPECT_GT(report.TotalUs(), 0.0);
    EXPECT_FALSE(report.ToText().empty());
  }
}

TEST(TelemetryDeterminismTest, ExportValidatesAtBothThreadCounts) {
  for (const int threads : {1, 8}) {
    const TelemetryRun run = RunInstrumentedPipeline(threads);
    std::string error;
    std::vector<std::string> span_names;
    ASSERT_TRUE(ValidateTelemetryJson(run.snapshot.ToJson(), &error,
                                      &span_names))
        << "threads=" << threads << ": " << error;
    EXPECT_FALSE(span_names.empty());
  }
}

/// The observability extension of the contract: a mid-run Sample()
/// observer hammering the registry while the pipeline records must leave
/// the final Capture() byte-identical across thread counts — live
/// introspection may never perturb the deterministic record.
TelemetryRun RunInstrumentedPipelineWithSampler(int threads) {
  SetNumThreads(threads);
  telemetry::SetEnabled(true);
  telemetry::Reset();

  std::atomic<bool> stop{false};
  std::thread observer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const telemetry::Snapshot live = telemetry::Sample();
      (void)live.CountersJson();  // exercise the merge + export path
    }
  });

  Pipeline pipeline = Pipeline::Generate(workloads::SuiteId::kCasio,
                                         "bert_infer",
                                         {.seed = 99, .size_scale = 0.05});
  pipeline.Profile(hw::GpuSpec::Rtx2080());
  const core::StemRootSampler stem;
  pipeline.Evaluate(stem, 3);

  stop.store(true, std::memory_order_relaxed);
  observer.join();

  TelemetryRun run;
  run.snapshot = telemetry::Capture();
  run.counters_json = run.snapshot.CountersJson();
  run.distributions_json = run.snapshot.DistributionsJson();
  telemetry::Reset();
  telemetry::SetEnabled(false);
  SetNumThreads(0);
  return run;
}

TEST(TelemetryDeterminismTest, MidRunSamplingLeavesCaptureByteIdentical) {
  const TelemetryRun quiet = RunInstrumentedPipeline(1);
  const TelemetryRun sampled_one = RunInstrumentedPipelineWithSampler(1);
  const TelemetryRun sampled_four = RunInstrumentedPipelineWithSampler(4);

  // Sampling while recording changes nothing about the final record...
  EXPECT_EQ(sampled_one.counters_json, quiet.counters_json);
  EXPECT_EQ(sampled_one.distributions_json, quiet.distributions_json);
  // ...at any thread count.
  EXPECT_EQ(sampled_four.counters_json, quiet.counters_json);
  EXPECT_EQ(sampled_four.distributions_json, quiet.distributions_json);
}

}  // namespace
}  // namespace stemroot::eval
