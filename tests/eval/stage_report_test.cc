#include "eval/stage_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/telemetry.h"

namespace stemroot::eval {
namespace {

class StageReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetEnabled(true);
    telemetry::Reset();
  }
  void TearDown() override {
    telemetry::Reset();
    telemetry::SetEnabled(false);
  }
};

TEST_F(StageReportTest, EmptySnapshotProducesEmptyButValidExports) {
  const telemetry::Snapshot snap = telemetry::Capture();
  const StageReport report = StageReport::FromSnapshot(snap);
  EXPECT_TRUE(report.Stages().empty());
  EXPECT_DOUBLE_EQ(report.TotalUs(), 0.0);
  EXPECT_FALSE(report.HasStage("generate"));
  // ToText must not crash or divide by the zero total.
  const std::string text = report.ToText();
  EXPECT_FALSE(text.empty());

  std::string error;
  EXPECT_TRUE(ValidateTelemetryJson(snap.ToJson(), &error)) << error;
  std::vector<std::string> names;
  EXPECT_TRUE(ValidateTelemetryCsv(snap.ToCsv(), &error, &names)) << error;
  EXPECT_TRUE(names.empty());
}

TEST_F(StageReportTest, NestedParentageAggregatesByName) {
  {
    telemetry::Span gen("generate");
    { telemetry::Span inner("profile"); }
  }
  // The same stage name under a different parent still folds into one row.
  { telemetry::Span profile_again("profile"); }
  const StageReport report =
      StageReport::FromSnapshot(telemetry::Capture());
  ASSERT_TRUE(report.HasStage("generate"));
  ASSERT_TRUE(report.HasStage("profile"));
  for (const StageReport::Stage& stage : report.Stages()) {
    if (stage.name == "profile") {
      EXPECT_EQ(stage.count, 2u);
    }
    if (stage.name == "generate") {
      EXPECT_EQ(stage.count, 1u);
    }
  }
  // Canonical stages come first, in pipeline order.
  ASSERT_GE(report.Stages().size(), 2u);
  EXPECT_EQ(report.Stages()[0].name, "generate");
  EXPECT_EQ(report.Stages()[1].name, "profile");
}

TEST_F(StageReportTest, DeeplyNestedSpansKeepDistinctParents) {
  {
    telemetry::Span a("a");
    telemetry::Span b("b");
    telemetry::Span c("c");
    telemetry::Span d("d");
  }
  const telemetry::Snapshot snap = telemetry::Capture();
  ASSERT_EQ(snap.Spans().count({"d", "c"}), 1u);
  ASSERT_EQ(snap.Spans().count({"c", "b"}), 1u);
  ASSERT_EQ(snap.Spans().count({"b", "a"}), 1u);
  ASSERT_EQ(snap.Spans().count({"a", ""}), 1u);

  std::string error;
  std::vector<std::string> json_names;
  ASSERT_TRUE(ValidateTelemetryJson(snap.ToJson(), &error, &json_names))
      << error;
  std::vector<std::string> csv_names;
  ASSERT_TRUE(ValidateTelemetryCsv(snap.ToCsv(), &error, &csv_names))
      << error;
  EXPECT_EQ(json_names, csv_names);
  EXPECT_EQ(csv_names, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST_F(StageReportTest, CsvRoundTripsThroughDisk) {
  telemetry::Count("entries", 12);
  telemetry::Record("latency", 1.5);
  telemetry::Record("latency", 2.5);
  { telemetry::Span span("cluster"); }
  const telemetry::Snapshot snap = telemetry::Capture();

  const std::string path =
      ::testing::TempDir() + "/stage_report_roundtrip.csv";
  WriteTelemetry(snap, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), snap.ToCsv());

  std::string error;
  std::vector<std::string> names;
  EXPECT_TRUE(ValidateTelemetryCsv(buffer.str(), &error, &names)) << error;
  EXPECT_EQ(names, (std::vector<std::string>{"cluster"}));
  std::remove(path.c_str());
}

TEST_F(StageReportTest, CsvRoundTripsHostileNames) {
  // RFC 4180: names carrying commas, quotes, and newlines must survive
  // export -> parse -> validate with the original bytes intact.
  telemetry::Count("hits,per,\"phase\"", 2);
  telemetry::Record("lat\nency", 1.0);
  { telemetry::Span span("stage, with \"quotes\""); }
  const telemetry::Snapshot snap = telemetry::Capture();

  std::string error;
  std::vector<std::string> names;
  ASSERT_TRUE(ValidateTelemetryCsv(snap.ToCsv(), &error, &names)) << error;
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "stage, with \"quotes\"");

  const CsvTable table = CsvTable::Parse(snap.ToCsv());
  ASSERT_EQ(table.rows.size(), 4u);  // header + counter + dist + span
  EXPECT_EQ(table.rows[1][1], "hits,per,\"phase\"");
  EXPECT_EQ(table.rows[2][1], "lat\nency");
}

TEST_F(StageReportTest, CsvValidatorRejectsSchemaViolations) {
  const std::string header =
      "kind,name,parent,count,min,mean,max,p50,p99,total\n";
  std::string error;
  // Wrong header.
  EXPECT_FALSE(ValidateTelemetryCsv("kind,name\n", &error));
  EXPECT_FALSE(error.empty());
  // Unknown row kind.
  EXPECT_FALSE(
      ValidateTelemetryCsv(header + "gauge,x,,1,,,,,,\n", &error));
  // Wrong arity.
  EXPECT_FALSE(ValidateTelemetryCsv(header + "counter,x,,1\n", &error));
  // Counter with a non-numeric count.
  EXPECT_FALSE(
      ValidateTelemetryCsv(header + "counter,x,,abc,,,,,,\n", &error));
  // Counter carrying a value in a must-be-empty column.
  EXPECT_FALSE(
      ValidateTelemetryCsv(header + "counter,x,,1,2.0,,,,,\n", &error));
  // Span missing its numeric total column.
  EXPECT_FALSE(
      ValidateTelemetryCsv(header + "span,s,,1,0.5,,0.5,,,\n", &error));
  // A well-formed document still passes.
  EXPECT_TRUE(ValidateTelemetryCsv(
      header + "counter,x,,1,,,,,,\nspan,s,,1,0.5,,0.5,,,2.0\n", &error))
      << error;
}

TEST_F(StageReportTest, JsonPathWritesJsonCsvPathWritesCsv) {
  telemetry::Count("c", 1);
  const telemetry::Snapshot snap = telemetry::Capture();
  const std::string json_path = ::testing::TempDir() + "/stage_report.json";
  const std::string csv_path = ::testing::TempDir() + "/stage_report.csv";
  WriteTelemetry(snap, json_path);
  WriteTelemetry(snap, csv_path);
  std::ifstream json_in(json_path);
  std::ifstream csv_in(csv_path);
  std::stringstream json_buf, csv_buf;
  json_buf << json_in.rdbuf();
  csv_buf << csv_in.rdbuf();
  std::string error;
  EXPECT_TRUE(ValidateTelemetryJson(json_buf.str(), &error)) << error;
  EXPECT_TRUE(ValidateTelemetryCsv(csv_buf.str(), &error)) << error;
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace stemroot::eval
