#include "eval/regress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace stemroot::eval {
namespace {

RunManifest MakeRun(double wall_seconds = 1.0) {
  RunManifest m;
  m.tool = "stemroot";
  m.command = "run";
  m.completed = true;
  m.config.suite = "rodinia";
  m.config.workload = "hotspot";
  m.config.gpu = "RTX2080";
  m.config.method = "stem";
  m.config.epsilon = 0.05;
  m.config.confidence = 0.95;
  m.config.seed = 42;
  m.config.reps = 10;
  m.config.threads = 1;
  m.wall_time_seconds = wall_seconds;
  m.stages = {{"generate", 1, 100.0},
              {"cluster", 10, 2000.0},
              {"evaluate", 1, 3000.0}};
  m.counters = {{"core.kkt.solves", 100}, {"eval.evaluations", 1}};
  m.metrics.present = true;
  m.metrics.error_pct = 0.8;
  m.metrics.theoretical_error_pct = 5.0;
  m.metrics.speedup = 150.0;
  m.metrics.num_samples = 17;
  m.metrics.num_clusters = 9;
  return m;
}

// ---------------------------------------------------------------------------
// compare

TEST(CompareTest, IdenticalManifestsAreClean) {
  const RunManifest a = MakeRun();
  const CompareReport report = CompareManifests(a, a);
  EXPECT_TRUE(report.comparable);
  EXPECT_FALSE(report.deterministic_drift);
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);
  EXPECT_FALSE(report.ToText().empty());
}

TEST(CompareTest, ThreadCountAndWallTimesNeverGate) {
  // The determinism contract: same seed at different --threads must
  // compare clean even when every wall time moved.
  const RunManifest a = MakeRun(1.0);
  RunManifest b = MakeRun(2.0);
  b.config.threads = 8;
  for (auto& stage : b.stages) stage.total_us *= 3.0;
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.comparable);
  EXPECT_FALSE(report.deterministic_drift);
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);
}

TEST(CompareTest, ConfigMismatchIsNotComparable) {
  const RunManifest a = MakeRun();
  RunManifest b = MakeRun();
  b.config.seed = 43;
  const CompareReport report = CompareManifests(a, b);
  EXPECT_FALSE(report.comparable);
  EXPECT_EQ(report.ExitCode(CompareOptions{}), kExitNotComparable);
  EXPECT_EQ(report.ExitCode(CompareOptions{.allow_config_diff = true}), 0);
}

TEST(CompareTest, MetricDriftTripsTheExitCode) {
  const RunManifest a = MakeRun();
  RunManifest b = MakeRun();
  b.metrics.error_pct = 0.81;
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.comparable);
  EXPECT_TRUE(report.deterministic_drift);
  EXPECT_EQ(report.ExitCode(CompareOptions{}), kExitRegression);
}

TEST(CompareTest, CounterDriftTripsTheExitCode) {
  const RunManifest a = MakeRun();
  RunManifest b = MakeRun();
  b.counters["core.kkt.solves"] = 101;
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.deterministic_drift);
  EXPECT_EQ(report.ExitCode(CompareOptions{}), kExitRegression);
}

TEST(CompareTest, CacheCountersAreEnvironmental) {
  // A cold and a warm run of the same config are byte-identical in
  // results but not in cache traffic: cache.* counters must not gate.
  RunManifest cold = MakeRun();
  cold.counters["cache.miss"] = 1;
  cold.counters["cache.store"] = 1;
  cold.counters["cache.write_bytes"] = 4096;
  RunManifest warm = MakeRun();
  warm.counters["cache.hit"] = 1;
  warm.counters["cache.read_bytes"] = 4096;
  const CompareReport report = CompareManifests(cold, warm);
  EXPECT_TRUE(report.comparable);
  EXPECT_FALSE(report.deterministic_drift) << report.ToText();
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);

  // But a non-cache counter difference still trips.
  warm.counters["core.kkt.solves"] = 101;
  EXPECT_TRUE(CompareManifests(cold, warm).deterministic_drift);
}

TEST(CompareTest, SessionAndRunAreOneCommandFamily) {
  // A served session that fed its full source replays the batch run
  // byte-for-byte (service replay equivalence), so a "session" manifest
  // compares clean against a "run" manifest of the same config; the
  // session-only service.* counters are environmental like cache.*.
  const RunManifest batch = MakeRun();
  RunManifest session = MakeRun();
  session.command = "session";
  session.counters["service.sessions"] = 1;
  session.counters["service.feed_invocations"] = 1234;
  session.counters["service.early_stops"] = 0;
  const CompareReport report = CompareManifests(batch, session);
  EXPECT_TRUE(report.comparable) << report.ToText();
  EXPECT_FALSE(report.deterministic_drift) << report.ToText();
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);

  // Any other command pair still refuses to compare.
  RunManifest dse = MakeRun();
  dse.command = "dse";
  EXPECT_FALSE(CompareManifests(batch, dse).comparable);

  // And a session whose deterministic counters drifted still trips.
  session.counters["core.kkt.solves"] = 101;
  EXPECT_TRUE(CompareManifests(batch, session).deterministic_drift);
}

TEST(CompareTest, ChunkedSpillNeverGatesTheCompare) {
  // The chunked-pipeline contract: a spilled run is byte-identical to
  // the in-memory run, so a trace_spill block plus its cache.spill_*
  // traffic must compare clean against a run without any of it. (The
  // chunk size splits *perf baselines* via the fingerprint, but never
  // comparability -- that is the epoch_cycles precedent.)
  const RunManifest inmem = MakeRun();
  RunManifest spilled = MakeRun();
  spilled.trace_spill.present = true;
  spilled.trace_spill.chunk_invocations = 512;
  spilled.trace_spill.chunks = 28;
  spilled.trace_spill.bytes = 1 << 20;
  spilled.counters["cache.spill_write"] = 1;
  spilled.mem.present = true;
  spilled.mem.logical["cache"] = 1 << 20;
  const CompareReport report = CompareManifests(inmem, spilled);
  EXPECT_TRUE(report.comparable) << report.ToText();
  EXPECT_FALSE(report.deterministic_drift) << report.ToText();
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);
  EXPECT_NE(inmem.Fingerprint(), spilled.Fingerprint());
}

TEST(CompareTest, LogicalMemDriftTripsTheExitCode) {
  RunManifest a = MakeRun();
  a.mem.present = true;
  a.mem.logical = {{"trace", 1000}, {"root", 2000}};
  RunManifest b = a;
  b.mem.logical["trace"] = 1001;  // deterministic category moved
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.comparable);
  EXPECT_TRUE(report.deterministic_drift) << report.ToText();
  EXPECT_EQ(report.ExitCode(CompareOptions{}), kExitRegression);
}

TEST(CompareTest, EnvironmentalMemNeverGates) {
  // cache*/service* categories, the physical peak, and the sample count
  // are all environmental: warmth and scheduling move them freely.
  RunManifest a = MakeRun();
  a.mem.present = true;
  a.mem.peak_rss_bytes = 100 << 20;
  a.mem.samples = 4;
  a.mem.logical = {{"trace", 1000}, {"cache", 500}, {"service.session", 9}};
  RunManifest b = a;
  b.mem.peak_rss_bytes = 900 << 20;
  b.mem.samples = 40;
  b.mem.logical["cache"] = 99999;
  b.mem.logical.erase("service.session");
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.comparable);
  EXPECT_FALSE(report.deterministic_drift) << report.ToText();
  EXPECT_EQ(report.ExitCode(CompareOptions{}), 0);
}

TEST(CompareTest, MemGatesOnlyWhenBothSidesCarryIt) {
  // One side ran without accounting: that's environmental, not drift.
  RunManifest a = MakeRun();
  RunManifest b = MakeRun();
  b.mem.present = true;
  b.mem.logical = {{"trace", 12345}};
  const CompareReport report = CompareManifests(a, b);
  EXPECT_TRUE(report.comparable);
  EXPECT_FALSE(report.deterministic_drift) << report.ToText();
}

TEST(CompareTest, StageTableCoversTheUnion) {
  const RunManifest a = MakeRun();
  RunManifest b = MakeRun();
  b.stages.push_back({"extra", 1, 50.0});
  const CompareReport report = CompareManifests(a, b);
  ASSERT_EQ(report.stage_deltas.size(), 4u);
  EXPECT_EQ(report.stage_deltas.back().name, "extra");
  EXPECT_FALSE(report.stage_deltas.back().in_both);
}

// ---------------------------------------------------------------------------
// regress

TEST(RegressTest, EmptyLedgerIsUncheckedAndClean) {
  const Ledger ledger;
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_FALSE(report.checked);
  EXPECT_FALSE(report.HasRegression());
  EXPECT_EQ(report.ExitCode(), 0);
}

TEST(RegressTest, InsufficientHistoryReportsReason) {
  Ledger ledger;
  RunManifest only = MakeRun();
  only.metrics.present = false;  // no standalone gates either
  ledger.Add(only);
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_FALSE(report.checked);
  EXPECT_NE(report.reason.find("insufficient history"), std::string::npos);
  EXPECT_EQ(report.ExitCode(), 0);
}

TEST(RegressTest, IdenticalRunsAreClean) {
  Ledger ledger;
  for (int i = 0; i < 4; ++i) ledger.Add(MakeRun());
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_TRUE(report.checked);
  EXPECT_FALSE(report.HasRegression()) << report.ToText();
  EXPECT_EQ(report.ExitCode(), 0);
}

TEST(RegressTest, FivePercentStageSlowdownRegresses) {
  // Zero-MAD baseline (replayed identical manifests): the threshold is
  // the rel_slack floor (2%), so a 5% injected slowdown must trip.
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeRun());
  RunManifest slow = MakeRun();
  for (auto& stage : slow.stages)
    if (stage.name == "evaluate") stage.total_us *= 1.05;
  slow.wall_time_seconds *= 1.05;
  ledger.Add(slow);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  EXPECT_TRUE(report.HasRegression()) << report.ToText();
  EXPECT_EQ(report.ExitCode(), kExitRegression);
  bool evaluate_tripped = false, cluster_tripped = false;
  for (const GateResult& gate : report.gates) {
    if (gate.gate == "perf:evaluate") evaluate_tripped = gate.regressed;
    if (gate.gate == "perf:cluster") cluster_tripped = gate.regressed;
  }
  EXPECT_TRUE(evaluate_tripped);
  EXPECT_FALSE(cluster_tripped);
}

TEST(RegressTest, NoisyBaselineAbsorbsJitterViaMad) {
  // With real noise in the baseline the MAD term dominates the 2% floor:
  // a wobble inside the noise band must NOT regress.
  Ledger ledger;
  const double walls[] = {1.0, 1.3, 0.9, 1.2, 0.8, 1.1};
  for (double w : walls) {
    RunManifest m = MakeRun(w);
    for (auto& stage : m.stages) stage.total_us *= w;
    ledger.Add(m);
  }
  RunManifest probe = MakeRun(1.25);
  for (auto& stage : probe.stages) stage.total_us *= 1.25;
  ledger.Add(probe);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  for (const GateResult& gate : report.gates)
    if (gate.gate.rfind("perf:", 0) == 0)
      EXPECT_FALSE(gate.regressed) << gate.gate << "\n" << report.ToText();
}

TEST(RegressTest, AccuracyBudgetGateNeedsNoHistory) {
  Ledger ledger;
  RunManifest blown = MakeRun();
  blown.metrics.error_pct = 6.0;  // above its own 5.0 theoretical bound
  ledger.Add(blown);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.HasRegression());
  EXPECT_EQ(report.ExitCode(), kExitRegression);
  ASSERT_FALSE(report.gates.empty());
  EXPECT_EQ(report.gates[0].gate, "accuracy:budget");
  EXPECT_TRUE(report.gates[0].regressed);
}

TEST(RegressTest, AccuracyDriftRegressesOnAnyMovement) {
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeRun());
  RunManifest drifted = MakeRun();
  drifted.metrics.error_pct = 0.8001;  // tiny but real (deterministic field)
  ledger.Add(drifted);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  bool drift_tripped = false;
  for (const GateResult& gate : report.gates)
    if (gate.gate == "accuracy:drift") drift_tripped = gate.regressed;
  EXPECT_TRUE(drift_tripped) << report.ToText();
}

TEST(RegressTest, IncompleteNewestRunAlwaysRegresses) {
  Ledger ledger;
  RunManifest crashed = MakeRun();
  crashed.completed = false;
  ledger.Add(crashed);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_TRUE(report.HasRegression());
  EXPECT_EQ(report.ExitCode(), kExitRegression);
  ASSERT_FALSE(report.gates.empty());
  EXPECT_EQ(report.gates[0].gate, "completed");
}

TEST(RegressTest, WindowLimitsTheBaseline) {
  Ledger ledger;
  // Ancient slow history, then a fast recent regime.
  for (int i = 0; i < 5; ++i) ledger.Add(MakeRun(10.0));
  for (int i = 0; i < 4; ++i) ledger.Add(MakeRun(1.0));
  RunManifest probe = MakeRun(1.06);  // 6% over the recent regime
  ledger.Add(probe);

  RegressOptions options;
  options.window = 4;  // recent regime only
  const RegressReport report = CheckRegression(ledger, options);
  ASSERT_TRUE(report.checked);
  EXPECT_EQ(report.baseline_size, 4u);
  bool wall_tripped = false;
  for (const GateResult& gate : report.gates)
    if (gate.gate == "perf:wall_time") wall_tripped = gate.regressed;
  EXPECT_TRUE(wall_tripped) << report.ToText();

  // The full window dilutes the baseline with the slow regime; the probe
  // sits under that median, so nothing trips.
  options.window = 0;
  const RegressReport full = CheckRegression(ledger, options);
  for (const GateResult& gate : full.gates)
    if (gate.gate == "perf:wall_time")
      EXPECT_FALSE(gate.regressed) << full.ToText();
}

TEST(RegressTest, PerfBaselineIsWarmthMatched) {
  // Cold history, then a first warm-cache run whose generate/profile
  // stages collapse to near zero: the wall-time drop is environmental,
  // not a perf signal. With no same-warmth history the perf gates skip
  // instead of comparing warm apples to cold oranges.
  Ledger ledger;
  for (int i = 0; i < 3; ++i) {
    RunManifest cold = MakeRun(10.0);
    cold.counters["cache.miss"] = 1;
    ledger.Add(cold);
  }
  RunManifest warm = MakeRun(0.5);
  warm.counters["cache.hit"] = 1;
  for (auto& stage : warm.stages)
    if (stage.name == "generate") stage.total_us = 1.0;
  ledger.Add(warm);

  const RegressReport skip = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(skip.checked);
  for (const GateResult& gate : skip.gates)
    EXPECT_NE(gate.gate.rfind("perf:", 0), 0u)
        << gate.gate << " gated against a cold baseline\n" << skip.ToText();

  // Once warm history accumulates, a slow warm run gates against the
  // warm regime (and the cold entries stay out of that baseline).
  for (int i = 0; i < 2; ++i) {
    RunManifest fast = warm;
    ledger.Add(fast);
  }
  RunManifest slow = warm;
  slow.wall_time_seconds = 0.6;  // 20% over the warm regime
  ledger.Add(slow);
  const RegressReport gated = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(gated.checked);
  bool wall_tripped = false;
  for (const GateResult& gate : gated.gates)
    if (gate.gate == "perf:wall_time") wall_tripped = gate.regressed;
  EXPECT_TRUE(wall_tripped) << gated.ToText();
}

TEST(RegressTest, JournalErrorGateNeedsNoHistory) {
  Ledger ledger;
  RunManifest noisy = MakeRun();
  noisy.journal.present = true;
  noisy.journal.emitted = 100;
  noisy.journal.errors = 2;
  ledger.Add(noisy);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_TRUE(report.checked);
  bool errors_tripped = false;
  for (const GateResult& gate : report.gates)
    if (gate.gate == "journal:errors") errors_tripped = gate.regressed;
  EXPECT_TRUE(errors_tripped) << report.ToText();
  EXPECT_EQ(report.ExitCode(), kExitRegression);

  // A raised threshold admits the same run.
  RegressOptions lax;
  lax.max_journal_errors = 2;
  const RegressReport relaxed = CheckRegression(ledger, lax);
  for (const GateResult& gate : relaxed.gates)
    if (gate.gate == "journal:errors") {
      EXPECT_FALSE(gate.regressed) << relaxed.ToText();
    }
}

TEST(RegressTest, CleanJournalPassesAndDropGateIsOptIn) {
  Ledger ledger;
  RunManifest dropped = MakeRun();
  dropped.journal.present = true;
  dropped.journal.emitted = 50;
  dropped.journal.dropped = 10;  // capacity signal, not an error
  ledger.Add(dropped);

  // Default: drops never gate (max_journal_dropped < 0).
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  EXPECT_TRUE(report.checked);
  for (const GateResult& gate : report.gates) {
    EXPECT_NE(gate.gate, "journal:dropped") << report.ToText();
    if (gate.gate == "journal:errors") {
      EXPECT_FALSE(gate.regressed) << report.ToText();
    }
  }

  // Opting in makes the drop budget a gate.
  RegressOptions strict;
  strict.max_journal_dropped = 5;
  const RegressReport gated = CheckRegression(ledger, strict);
  bool dropped_tripped = false;
  for (const GateResult& gate : gated.gates)
    if (gate.gate == "journal:dropped") dropped_tripped = gate.regressed;
  EXPECT_TRUE(dropped_tripped) << gated.ToText();
}

TEST(RegressTest, ManifestsWithoutJournalSkipJournalGates) {
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeRun());
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  for (const GateResult& gate : report.gates)
    EXPECT_NE(gate.gate.rfind("journal:", 0), 0u) << gate.gate;
}

TEST(RegressTest, SummarizeJournalFileTalliesAndToleratesTornTail) {
  const std::string path =
      ::testing::TempDir() + "/regress_journal_summary.jsonl";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << R"({"ts_us":1,"tid":1,"seq":0,"sev":"info","event":"a"})" << "\n";
    out << R"({"ts_us":2,"tid":1,"seq":1,"sev":"warn","event":"b"})" << "\n";
    out << R"({"ts_us":3,"tid":1,"seq":2,"sev":"error","event":"c"})" << "\n";
    out << R"({"ts_us":4,"tid":1,"seq":3,"sev":"info","event":"d",)"
        << R"("dropped_since_last":7})" << "\n";
    out << R"({"ts_us":5,"tid":1,"seq":4,"sev":"in)";  // torn final line
  }
  const JournalSummary summary = SummarizeJournalFile(path);
  EXPECT_EQ(summary.events, 4u);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.warnings, 1u);
  EXPECT_EQ(summary.dropped, 7u);
  EXPECT_EQ(summary.unparseable, 1u);
  std::remove(path.c_str());

  // The summary drives the same gates as the manifest block.
  RegressReport report;
  RegressOptions options;
  AddJournalGates(summary, options, report);
  ASSERT_FALSE(report.gates.empty());
  bool errors_tripped = false;
  for (const GateResult& gate : report.gates)
    if (gate.gate == "journal:errors") errors_tripped = gate.regressed;
  EXPECT_TRUE(errors_tripped);
}

RunManifest MakeMemRun(uint64_t peak_rss_mb, uint64_t trace_bytes) {
  RunManifest m = MakeRun();
  m.mem.present = true;
  m.mem.peak_rss_bytes = peak_rss_mb << 20;
  m.mem.samples = 3;
  m.mem.logical = {{"trace", trace_bytes},
                   {"root", 4096},
                   {"cache", 1234}};
  return m;
}

TEST(RegressTest, PeakRssGateTripsOnInflatedMemory) {
  // Stable physical baseline, then a 10x blow-up: the mem:peak_rss gate
  // must trip (threshold = median + max(3*MAD, 2% median)).
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeMemRun(100, 1000));
  ledger.Add(MakeMemRun(1000, 1000));

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  bool rss_tripped = false;
  for (const GateResult& gate : report.gates)
    if (gate.gate == "mem:peak_rss") rss_tripped = gate.regressed;
  EXPECT_TRUE(rss_tripped) << report.ToText();
  EXPECT_EQ(report.ExitCode(), kExitRegression);
}

TEST(RegressTest, PeakRssWithinNoiseIsClean) {
  Ledger ledger;
  for (uint64_t mb : {100, 104, 98, 102}) ledger.Add(MakeMemRun(mb, 1000));
  ledger.Add(MakeMemRun(103, 1000));
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  for (const GateResult& gate : report.gates)
    if (gate.gate == "mem:peak_rss") {
      EXPECT_FALSE(gate.regressed) << report.ToText();
    }
}

TEST(RegressTest, LogicalMemCategoryGateTripsButEnvironmentalSkips) {
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeMemRun(100, 1000));
  RunManifest bloated = MakeMemRun(100, 5000);  // trace logical 5x up
  bloated.mem.logical["cache"] = 999999;        // environmental, never gated
  ledger.Add(bloated);

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  bool trace_tripped = false, root_seen = false;
  for (const GateResult& gate : report.gates) {
    if (gate.gate == "mem:trace") trace_tripped = gate.regressed;
    if (gate.gate == "mem:root") {
      root_seen = true;
      EXPECT_FALSE(gate.regressed) << report.ToText();
    }
    EXPECT_NE(gate.gate, "mem:cache") << "environmental category gated";
  }
  EXPECT_TRUE(trace_tripped) << report.ToText();
  EXPECT_TRUE(root_seen);
  EXPECT_EQ(report.ExitCode(), kExitRegression);
}

TEST(RegressTest, ManifestsWithoutMemSkipMemGates) {
  Ledger ledger;
  for (int i = 0; i < 3; ++i) ledger.Add(MakeRun());
  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  for (const GateResult& gate : report.gates)
    EXPECT_NE(gate.gate.rfind("mem:", 0), 0u) << gate.gate;
}

TEST(RegressTest, BaselineIgnoresOtherFingerprintsAndCrashedRuns) {
  Ledger ledger;
  RunManifest other = MakeRun(100.0);
  other.config.workload = "lud";
  ledger.Add(other);
  RunManifest crashed = MakeRun(100.0);
  crashed.completed = false;
  ledger.Add(crashed);
  for (int i = 0; i < 2; ++i) ledger.Add(MakeRun(1.0));
  ledger.Add(MakeRun(1.0));

  const RegressReport report = CheckRegression(ledger, RegressOptions{});
  ASSERT_TRUE(report.checked);
  EXPECT_EQ(report.baseline_size, 2u);
  EXPECT_FALSE(report.HasRegression()) << report.ToText();
}

}  // namespace
}  // namespace stemroot::eval
