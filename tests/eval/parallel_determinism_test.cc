/// \file
/// The determinism contract of the parallel evaluation engine: running the
/// suite pipeline at 1 thread and at 8 threads must produce byte-identical
/// results. Every stochastic component derives its stream from explicit
/// (seed, index) pairs, so the parallel schedule is unobservable -- this
/// suite is the regression gate that keeps it that way.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/random_sampler.h"
#include "common/parallel.h"
#include "common/resource.h"
#include "common/rng.h"
#include "core/sampler.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "eval/runner.h"

namespace stemroot::eval {
namespace {

/// Bit pattern of a double: "byte-identical", not merely approximately
/// equal. (No NaNs occur in these pipelines; equal bits iff equal bytes.)
uint64_t Bits(double x) {
  uint64_t u;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void ExpectRowsByteIdentical(const std::vector<EvalResult>& a,
                             const std::vector<EvalResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].method, b[i].method);
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(Bits(a[i].speedup), Bits(b[i].speedup));
    EXPECT_EQ(Bits(a[i].error_pct), Bits(b[i].error_pct));
    EXPECT_EQ(Bits(a[i].theoretical_error_pct),
              Bits(b[i].theoretical_error_pct));
    EXPECT_EQ(a[i].num_samples, b[i].num_samples);
    EXPECT_EQ(a[i].num_clusters, b[i].num_clusters);
    EXPECT_EQ(Bits(a[i].estimated_total_us), Bits(b[i].estimated_total_us));
    EXPECT_EQ(Bits(a[i].true_total_us), Bits(b[i].true_total_us));
  }
}

SuiteResults RunCasioSubset(int threads) {
  SetNumThreads(threads);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  baselines::RandomSampler random(0.01);
  core::StemRootSampler stem;
  const core::Sampler* samplers[] = {&random, &stem};
  SuiteRunConfig config;
  config.suite = workloads::SuiteId::kCasio;
  config.size_scale = 0.02;
  config.reps = 3;
  config.seed = 99;
  config.only_workloads = {"bert_infer", "dlrm_infer", "resnet50_train"};
  SuiteResults results = RunSuite(config, gpu, samplers);
  SetNumThreads(0);
  return results;
}

TEST(ParallelDeterminismTest, RunSuiteRowsIdenticalAcrossThreadCounts) {
  const SuiteResults serial = RunCasioSubset(1);
  const SuiteResults parallel = RunCasioSubset(8);
  ASSERT_EQ(serial.rows.size(), 6u);  // 3 workloads x 2 samplers
  ExpectRowsByteIdentical(serial.rows, parallel.rows);
}

TEST(ParallelDeterminismTest, ProfiledTraceIdenticalAcrossThreadCounts) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());

  const Pipeline::Spec spec{.suite = workloads::SuiteId::kCasio,
                            .workload = "bert_infer",
                            .options = {.seed = 7, .size_scale = 0.05}};
  SetNumThreads(1);
  const KernelTrace serial =
      Pipeline::GenerateProfiled(spec, gpu).Trace();
  SetNumThreads(8);
  const KernelTrace parallel =
      Pipeline::GenerateProfiled(spec, gpu).Trace();
  SetNumThreads(0);

  ASSERT_GT(serial.NumInvocations(), 100u);
  ASSERT_EQ(serial.NumInvocations(), parallel.NumInvocations());
  for (size_t i = 0; i < serial.NumInvocations(); ++i)
    ASSERT_EQ(Bits(serial.At(i).duration_us), Bits(parallel.At(i).duration_us))
        << "invocation " << i;
}

TEST(ParallelDeterminismTest, ReprofilingIsIdempotentAcrossThreadCounts) {
  // Same trace object, profiled twice at different thread counts with the
  // same run seed: durations must not move at all.
  hw::HardwareModel gpu(hw::GpuSpec::H100());
  SetNumThreads(1);
  KernelTrace trace = Pipeline::GenerateProfiled(
                          {.suite = workloads::SuiteId::kRodinia,
                           .workload = "lud",
                           .options = {.seed = 11, .size_scale = 0.2}},
                          gpu)
                          .Trace();
  std::vector<uint64_t> before;
  before.reserve(trace.NumInvocations());
  for (size_t i = 0; i < trace.NumInvocations(); ++i)
    before.push_back(Bits(trace.At(i).duration_us));

  SetNumThreads(8);
  gpu.ProfileTrace(trace, DeriveSeed(11, 0x50524F46ULL));
  SetNumThreads(0);
  for (size_t i = 0; i < trace.NumInvocations(); ++i)
    ASSERT_EQ(Bits(trace.At(i).duration_us), before[i]) << "invocation " << i;
}

/// Logical peaks with the environmental cache*/service* categories
/// stripped -- the set regress/compare actually gate.
std::map<std::string, uint64_t> DeterministicPeaks() {
  std::map<std::string, uint64_t> out;
  for (const auto& [category, bytes] : resource::LogicalPeaks())
    if (category.rfind("cache", 0) != 0 && category.rfind("service", 0) != 0)
      out.emplace(category, bytes);
  return out;
}

TEST(ParallelDeterminismTest, LogicalMemPeaksIdenticalAcrossThreadCounts) {
  // The mem-block determinism contract (DESIGN.md section 15): logical
  // per-category peaks are computed from container sizes, never from the
  // allocator or the schedule, so threads 1 and threads 4 must agree to
  // the byte. Physical RSS is environmental and deliberately unasserted.
  resource::SetAccountingEnabled(true);
  resource::ResetAccounting();
  RunCasioSubset(1);
  const std::map<std::string, uint64_t> serial = DeterministicPeaks();

  resource::ResetAccounting();
  RunCasioSubset(4);
  const std::map<std::string, uint64_t> parallel = DeterministicPeaks();
  resource::SetAccountingEnabled(false);
  resource::ResetAccounting();

  // The pipeline charges at least trace/plan/eval/root on this path.
  EXPECT_GE(serial.size(), 4u);
  for (const char* category : {"trace", "plan", "eval", "root"}) {
    EXPECT_TRUE(serial.count(category) != 0) << category;
    if (serial.count(category) != 0) {
      EXPECT_GT(serial.at(category), 0u);
    }
  }
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, EvaluateRepeatedIdenticalAcrossThreadCounts) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  SetNumThreads(1);
  const KernelTrace trace = Pipeline::GenerateProfiled(
                                {.suite = workloads::SuiteId::kCasio,
                                 .workload = "dlrm_infer",
                                 .options = {.seed = 21, .size_scale = 0.02}},
                                gpu)
                                .Trace();
  baselines::RandomSampler random(0.02);

  const EvalResult serial = EvaluateRepeated(random, trace, 8, 1234);
  SetNumThreads(8);
  const EvalResult parallel = EvaluateRepeated(random, trace, 8, 1234);
  SetNumThreads(0);

  ExpectRowsByteIdentical({serial}, {parallel});
}

}  // namespace
}  // namespace stemroot::eval
