#include "eval/journal_tail.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/journal.h"

namespace stemroot::eval {
namespace {

std::string TempJournalPath(const std::string& tag) {
  return ::testing::TempDir() + "/journal_tail_" + tag + ".jsonl";
}

TEST(SeverityRankTest, OrdersTheCanonicalTokens) {
  EXPECT_EQ(SeverityRank("debug"), 0);
  EXPECT_EQ(SeverityRank("info"), 1);
  EXPECT_EQ(SeverityRank("warn"), 2);
  EXPECT_EQ(SeverityRank("error"), 3);
  EXPECT_EQ(SeverityRank("fatal"), -1);
  EXPECT_EQ(SeverityRank(""), -1);
}

TEST(FormatJournalLineTest, RendersReservedAndCustomFields) {
  const std::string line =
      R"({"ts_us":12345678,"tid":3,"seq":7,"sev":"warn",)"
      R"("event":"request.slow","session":2,"verb":"feed",)"
      R"("latency_us":312000.0,"ok":true})";
  std::string out;
  ASSERT_TRUE(FormatJournalLine(line, JournalTailOptions{}, out));
  EXPECT_NE(out.find("12.345678s"), std::string::npos) << out;
  EXPECT_NE(out.find("warn"), std::string::npos);
  EXPECT_NE(out.find("request.slow"), std::string::npos);
  // Custom fields in emit order, key=value.
  const size_t session_at = out.find("session=2");
  const size_t verb_at = out.find("verb=\"feed\"");
  const size_t latency_at = out.find("latency_us=312000");
  ASSERT_NE(session_at, std::string::npos) << out;
  ASSERT_NE(verb_at, std::string::npos) << out;
  ASSERT_NE(latency_at, std::string::npos) << out;
  EXPECT_LT(session_at, verb_at);
  EXPECT_LT(verb_at, latency_at);
  EXPECT_NE(out.find("ok=true"), std::string::npos) << out;
  EXPECT_NE(out.find("(seq 7)"), std::string::npos) << out;
}

TEST(FormatJournalLineTest, ShowsDroppedGap) {
  const std::string line =
      R"({"ts_us":1,"tid":1,"seq":9,"sev":"info","event":"e",)"
      R"("dropped_since_last":4})";
  std::string out;
  ASSERT_TRUE(FormatJournalLine(line, JournalTailOptions{}, out));
  EXPECT_NE(out.find("[+4 dropped]"), std::string::npos) << out;
}

TEST(FormatJournalLineTest, MinSeverityFilters) {
  JournalTailOptions options;
  options.min_severity = "warn";
  std::string out;
  EXPECT_FALSE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":0,"sev":"info","event":"a"})", options,
      out));
  EXPECT_TRUE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":1,"sev":"error","event":"b"})", options,
      out));
  // Unknown or missing severity always prints: it is itself a signal.
  EXPECT_TRUE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":2,"sev":"weird","event":"c"})", options,
      out));
  EXPECT_TRUE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":3,"event":"d"})", options, out));
}

TEST(FormatJournalLineTest, EventFilterIsExact) {
  JournalTailOptions options;
  options.event = "session.open";
  std::string out;
  EXPECT_TRUE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":0,"sev":"info","event":"session.open"})",
      options, out));
  EXPECT_FALSE(FormatJournalLine(
      R"({"ts_us":1,"tid":1,"seq":1,"sev":"info","event":"session.close"})",
      options, out));
}

TEST(FormatJournalLineTest, MalformedLineThrows) {
  std::string out;
  EXPECT_THROW(FormatJournalLine("not json", JournalTailOptions{}, out),
               std::invalid_argument);
  EXPECT_THROW(FormatJournalLine("[1,2,3]", JournalTailOptions{}, out),
               std::invalid_argument);
}

TEST(JournalTailTest, RoundTripsWriterOutput) {
  // The round-trip contract: everything the journal writer emits, the
  // tail renderer can read back.
  const std::string path = TempJournalPath("roundtrip");
  journal::Open(path);
  journal::Emit(journal::Severity::kInfo, "session.open",
                {{"session", uint64_t{1}}, {"source", "rodinia/hotspot"}});
  journal::Emit(journal::Severity::kWarn, "mem_highwater",
                {{"rss_bytes", uint64_t{123456}},
                 {"peak_rss_bytes", uint64_t{123456}}});
  journal::Emit(journal::Severity::kError, "request.error",
                {{"detail", "boom \"quoted\""}});
  journal::Close();

  std::ostringstream out;
  const JournalTailResult result =
      TailJournal(path, JournalTailOptions{}, out);
  EXPECT_EQ(result.printed, 3u);
  EXPECT_EQ(result.filtered, 0u);
  EXPECT_EQ(result.unparseable, 0u);
  const std::string text = out.str();
  EXPECT_NE(text.find("session.open"), std::string::npos) << text;
  EXPECT_NE(text.find("source=\"rodinia/hotspot\""), std::string::npos);
  EXPECT_NE(text.find("mem_highwater"), std::string::npos);
  EXPECT_NE(text.find("rss_bytes=123456"), std::string::npos);
  EXPECT_NE(text.find("request.error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTailTest, FiltersBySeverityAndEvent) {
  const std::string path = TempJournalPath("filters");
  journal::Open(path);
  journal::Emit(journal::Severity::kDebug, "chatter", {});
  journal::Emit(journal::Severity::kInfo, "session.open", {});
  journal::Emit(journal::Severity::kWarn, "mem_highwater", {});
  journal::Emit(journal::Severity::kError, "request.error", {});
  journal::Close();

  JournalTailOptions warn_up;
  warn_up.min_severity = "warn";
  std::ostringstream out1;
  const JournalTailResult by_sev = TailJournal(path, warn_up, out1);
  EXPECT_EQ(by_sev.printed, 2u);
  EXPECT_EQ(by_sev.filtered, 2u);

  JournalTailOptions by_name;
  by_name.event = "session.open";
  std::ostringstream out2;
  const JournalTailResult by_event = TailJournal(path, by_name, out2);
  EXPECT_EQ(by_event.printed, 1u);
  EXPECT_EQ(by_event.filtered, 3u);
  EXPECT_EQ(out2.str().find("mem_highwater"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTailTest, TornTailCountsUnparseableAndMissingFileThrows) {
  const std::string path = TempJournalPath("torn");
  {
    std::ofstream raw(path, std::ios::binary | std::ios::trunc);
    raw << R"({"ts_us":1,"tid":1,"seq":0,"sev":"info","event":"a"})" << "\n";
    raw << R"({"ts_us":2,"tid":1,"seq":1,"sev":"in)";  // crash mid-append
  }
  std::ostringstream out;
  const JournalTailResult result =
      TailJournal(path, JournalTailOptions{}, out);
  EXPECT_EQ(result.printed, 1u);
  EXPECT_EQ(result.unparseable, 1u);
  std::remove(path.c_str());

  EXPECT_THROW(TailJournal(path, JournalTailOptions{}, out),
               std::runtime_error);
}

TEST(JournalTailTest, FollowPicksUpAppendedLines) {
  const std::string path = TempJournalPath("follow");
  {
    std::ofstream raw(path, std::ios::binary | std::ios::trunc);
    raw << R"({"ts_us":1,"tid":1,"seq":0,"sev":"info","event":"first"})"
        << "\n";
  }
  JournalTailOptions options;
  options.follow = true;
  options.poll_ms = 10;
  options.max_idle_polls = 30;  // bounded for the test

  std::thread appender([&path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    std::ofstream raw(path, std::ios::binary | std::ios::app);
    raw << R"({"ts_us":2,"tid":1,"seq":1,"sev":"info","event":"second"})"
        << "\n";
  });
  std::ostringstream out;
  const JournalTailResult result = TailJournal(path, options, out);
  appender.join();
  EXPECT_EQ(result.printed, 2u);
  EXPECT_NE(out.str().find("second"), std::string::npos) << out.str();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stemroot::eval
