#include "eval/trace_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/stem.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "hw/gpu_spec.h"
#include "hw/hardware_model.h"
#include "trace/chunked.h"
#include "trace/serialize.h"
#include "workloads/suite.h"

namespace stemroot::eval {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 99;
constexpr double kScale = 0.05;
constexpr auto kSuite = workloads::SuiteId::kCasio;
constexpr const char* kWorkload = "bert_infer";

uint64_t Bits(double x) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

void ExpectSameResult(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(Bits(a.speedup), Bits(b.speedup));
  EXPECT_EQ(Bits(a.error_pct), Bits(b.error_pct));
  EXPECT_EQ(Bits(a.estimated_total_us), Bits(b.estimated_total_us));
  EXPECT_EQ(Bits(a.true_total_us), Bits(b.true_total_us));
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TraceCacheKey MakeKey() {
  TraceCacheKey key;
  key.suite = "casio";
  key.workload = kWorkload;
  key.gpu_digest = GpuDigest(hw::HardwareModel(hw::GpuSpec::Rtx2080()));
  key.scale = kScale;
  key.seed = kSeed;
  key.build_stamp = BuildStamp();
  return key;
}

/// Every test gets its own cache directory and leaves the process-wide
/// cache disabled again afterwards (the library default other tests rely
/// on).
class TraceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sr_trace_cache_test_" +
            std::to_string(
                std::hash<std::thread::id>{}(std::this_thread::get_id())) +
            "_" + std::to_string(counter_++));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    SetTraceCacheDir("none");
    telemetry::SetEnabled(false);
    telemetry::Reset();
    SetNumThreads(0);
    fs::remove_all(dir_);
  }

  std::string DirStr() const { return dir_.string(); }

  /// The single entry file of the cache directory.
  fs::path OnlyEntry() const {
    fs::path found;
    size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      ++count;
      found = entry.path();
    }
    EXPECT_EQ(count, 1u);
    return found;
  }

  fs::path dir_;
  static int counter_;
};

int TraceCacheTest::counter_ = 0;

TEST(TraceCacheKeyTest, EveryFieldChangesTheKey) {
  const TraceCacheKey base = MakeKey();
  TraceCacheKey k = base;
  EXPECT_EQ(k.KeyString(), base.KeyString());
  k.suite = "rodinia";
  EXPECT_NE(k.KeyString(), base.KeyString());
  k = base;
  k.workload = "resnet_train";
  EXPECT_NE(k.KeyString(), base.KeyString());
  k = base;
  k.gpu_digest = GpuDigest(hw::HardwareModel(hw::GpuSpec::H100()));
  EXPECT_NE(k.KeyString(), base.KeyString());
  k = base;
  k.scale = kScale * 2;
  EXPECT_NE(k.KeyString(), base.KeyString());
  k = base;
  k.seed = kSeed + 1;
  EXPECT_NE(k.KeyString(), base.KeyString());
  k = base;
  k.build_stamp = "other-build";
  EXPECT_NE(k.KeyString(), base.KeyString());
}

TEST(TraceCacheKeyTest, GpuDigestCoversSpecAndTimingParams) {
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();
  EXPECT_EQ(GpuDigest(hw::HardwareModel(spec)),
            GpuDigest(hw::HardwareModel(spec)));
  // A DSE variant with the same preset lineage must not collide.
  EXPECT_NE(GpuDigest(hw::HardwareModel(spec)),
            GpuDigest(hw::HardwareModel(spec.WithCacheScale(2.0))));
  EXPECT_NE(GpuDigest(hw::HardwareModel(spec)),
            GpuDigest(hw::HardwareModel(spec.WithSmScale(0.5))));
  // Timing parameters are part of the digest, not just the GpuSpec.
  hw::TimingParams params;
  params.jitter_base *= 2;
  EXPECT_NE(GpuDigest(hw::HardwareModel(spec)),
            GpuDigest(hw::HardwareModel(spec, params)));
}

TEST_F(TraceCacheTest, StoreLoadRoundTripsTheExactBytes) {
  const Pipeline cold = Pipeline::Generate(kSuite, kWorkload,
                                           {.seed = kSeed,
                                            .size_scale = kScale})
                            .Profile(hw::GpuSpec::Rtx2080());
  const TraceCache cache(DirStr());
  const TraceCacheKey key = MakeKey();
  EXPECT_FALSE(cache.Load(key).has_value());
  EXPECT_TRUE(cache.Store(key, cold.Trace()));
  const std::optional<KernelTrace> warm = cache.Load(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(SerializeTrace(*warm), SerializeTrace(cold.Trace()));
}

TEST_F(TraceCacheTest, GenerateProfiledColdThenWarmIsByteIdentical) {
  SetTraceCacheDir(DirStr());
  const Pipeline::Options options{.seed = kSeed, .size_scale = kScale};
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();

  const Pipeline cold =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  EXPECT_EQ(OnlyEntry().extension(), ".srce");

  const Pipeline warm =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  EXPECT_EQ(SerializeTrace(warm.Trace()), SerializeTrace(cold.Trace()));
  EXPECT_TRUE(warm.Profiled());
  EXPECT_EQ(warm.SuiteName(), cold.SuiteName());
  EXPECT_EQ(warm.WorkloadName(), cold.WorkloadName());
  EXPECT_EQ(warm.GpuName(), spec.name);

  // The downstream stages see identical inputs, so evaluation results are
  // bit-equal too.
  const core::StemRootSampler stem;
  ExpectSameResult(warm.Evaluate(stem, 2), cold.Evaluate(stem, 2));
}

TEST_F(TraceCacheTest, WarmHitIsByteIdenticalAtAnyThreadCount) {
  SetTraceCacheDir(DirStr());
  const Pipeline::Options options{.seed = kSeed, .size_scale = kScale};
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();

  SetNumThreads(1);
  const std::string cold =
      SerializeTrace(Pipeline::GenerateProfiled(kSuite, kWorkload, spec,
                                                options)
                         .Trace());
  SetNumThreads(4);
  const std::string warm =
      SerializeTrace(Pipeline::GenerateProfiled(kSuite, kWorkload, spec,
                                                options)
                         .Trace());
  // And uncached at yet another thread count for the same bytes.
  SetTraceCacheDir("none");
  SetNumThreads(3);
  const std::string uncached =
      SerializeTrace(Pipeline::GenerateProfiled(kSuite, kWorkload, spec,
                                                options)
                         .Trace());
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, uncached);
}

TEST_F(TraceCacheTest, WarmRunReplaysStageCountersAndSpans) {
  SetTraceCacheDir(DirStr());
  const Pipeline::Options options{.seed = kSeed, .size_scale = kScale};
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();

  telemetry::SetEnabled(true);
  telemetry::Reset();
  Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  const telemetry::Snapshot cold = telemetry::Capture();
  EXPECT_EQ(cold.Counter("cache.hit"), 0u);
  EXPECT_EQ(cold.Counter("cache.miss"), 1u);
  EXPECT_EQ(cold.Counter("cache.store"), 1u);

  telemetry::Reset();
  Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  const telemetry::Snapshot warm = telemetry::Capture();
  EXPECT_EQ(warm.Counter("cache.hit"), 1u);
  EXPECT_EQ(warm.Counter("cache.miss"), 0u);

  // The deterministic counters the skipped stages would have produced are
  // replayed, so cold and warm snapshots agree on every non-cache.*
  // counter and distribution (the determinism contract `stemroot compare`
  // gates on).
  const auto non_cache = [](const telemetry::Snapshot& snap) {
    std::map<std::string, uint64_t> counters;
    for (const auto& [name, value] : snap.Counters())
      if (name.rfind("cache.", 0) != 0) counters[name] = value;
    return counters;
  };
  EXPECT_EQ(non_cache(cold), non_cache(warm));
  EXPECT_EQ(cold.DistributionsJson(), warm.DistributionsJson());

  // Stage spans still exist on the warm path (manifests and stage checks
  // rely on them), plus the cache.load span.
  EXPECT_TRUE(warm.HasSpan("generate"));
  EXPECT_TRUE(warm.HasSpan("profile"));
  EXPECT_TRUE(warm.HasSpan("cache.load"));
}

TEST_F(TraceCacheTest, TruncatedEntryFallsBackToRecompute) {
  SetTraceCacheDir(DirStr());
  const Pipeline::Options options{.seed = kSeed, .size_scale = kScale};
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();

  const Pipeline cold =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  fs::resize_file(OnlyEntry(), 32);

  const Pipeline again =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  EXPECT_EQ(SerializeTrace(again.Trace()), SerializeTrace(cold.Trace()));
  // The recompute re-stored a valid entry; the next run hits it.
  const TraceCache cache(DirStr());
  EXPECT_TRUE(cache.Load(MakeKey()).has_value());
}

TEST_F(TraceCacheTest, ChecksumMismatchFallsBackToRecompute) {
  SetTraceCacheDir(DirStr());
  const Pipeline::Options options{.seed = kSeed, .size_scale = kScale};
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();

  const Pipeline cold =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  {
    std::fstream f(OnlyEntry(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(-9, std::ios::end);
    f.put('\x5a');
  }
  const Pipeline again =
      Pipeline::GenerateProfiled(kSuite, kWorkload, spec, options);
  EXPECT_EQ(SerializeTrace(again.Trace()), SerializeTrace(cold.Trace()));
}

TEST_F(TraceCacheTest, StaleBuildStampIsUnreachableNotServed) {
  // An entry stored under a different build stamp digests to a different
  // file name, so the current binary's lookup simply misses it.
  const TraceCache cache(DirStr());
  TraceCacheKey stale = MakeKey();
  stale.build_stamp = "deadbeef+dirty|GNU 0.0.0|Debug|";
  KernelTrace trace =
      Pipeline::Generate(kSuite, kWorkload, {.seed = kSeed,
                                             .size_scale = kScale})
          .Profile(hw::GpuSpec::Rtx2080())
          .Trace();
  ASSERT_TRUE(cache.Store(stale, trace));
  EXPECT_FALSE(cache.Load(MakeKey()).has_value());
  EXPECT_TRUE(cache.Load(stale).has_value());
}

TEST_F(TraceCacheTest, DisabledCacheWritesNothing) {
  SetTraceCacheDir("none");
  EXPECT_EQ(DefaultTraceCache(), nullptr);
  Pipeline::GenerateProfiled(kSuite, kWorkload, hw::GpuSpec::Rtx2080(),
                             {.seed = kSeed, .size_scale = kScale});
  EXPECT_FALSE(fs::exists(dir_));
}

// ---------------------------------------------------------------------------
// Chunk entries (trace/chunked.h payloads in the content-addressed store)

TEST(TraceCacheKeyTest, ChunkKeyCoversBaseKeyVersionAndIndex) {
  const TraceCacheKey base = MakeKey();
  const std::string chunk0 = ChunkKeyString(base, 0);
  const std::string chunk1 = ChunkKeyString(base, 1);
  // The chunk key extends the whole-trace key: same invalidation story
  // (seed, build stamp, gpu digest...), plus format version and index.
  EXPECT_EQ(chunk0.rfind(base.KeyString(), 0), 0u);
  EXPECT_NE(chunk0, chunk1);
  EXPECT_NE(chunk0.find("srtc"), std::string::npos);
  TraceCacheKey other = base;
  other.seed = kSeed + 1;
  EXPECT_NE(ChunkKeyString(other, 0), chunk0);
}

TEST_F(TraceCacheTest, ChunkStoreLoadRoundTripsTheExactBytes) {
  const TraceCache cache(DirStr());
  const TraceCacheKey key = MakeKey();
  KernelTrace trace("wl");
  const uint32_t k = trace.InternKernel("k");
  for (int i = 0; i < 5; ++i) {
    KernelInvocation inv;
    inv.kernel_id = k;
    inv.duration_us = 1.0 + i;
    trace.Add(inv);
  }
  const std::string payload = EncodeChunk(trace.Invocations());
  EXPECT_FALSE(cache.LoadChunk(key, 0).has_value());  // cold miss
  ASSERT_TRUE(cache.StoreChunk(key, 0, payload));
  const auto loaded = cache.LoadChunk(key, 0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  // Chunk indices are distinct entries.
  EXPECT_FALSE(cache.LoadChunk(key, 1).has_value());
}

TEST_F(TraceCacheTest, CorruptChunkPayloadIsAMiss) {
  const TraceCache cache(DirStr());
  const TraceCacheKey key = MakeKey();
  // A stored payload whose count prefix lies about the bytes available
  // must come back as a plain miss (decode-validated on load), never be
  // served to a chunk consumer -- the corrupt-entry-is-a-miss contract
  // extended to chunk granularity.
  KernelInvocation inv;
  inv.duration_us = 2.0;
  std::string payload = EncodeChunk(std::span<const KernelInvocation>(&inv, 1));
  payload.resize(payload.size() / 2);  // truncate mid-record
  ASSERT_TRUE(cache.StoreChunk(key, 3, payload));
  EXPECT_FALSE(cache.LoadChunk(key, 3).has_value());
}

TEST_F(TraceCacheTest, SetTraceCacheDirTogglesTheDefault) {
  EXPECT_EQ(DefaultTraceCache(), nullptr);
  SetTraceCacheDir(DirStr());
  ASSERT_NE(DefaultTraceCache(), nullptr);
  EXPECT_EQ(DefaultTraceCache()->Artifacts().Dir(), DirStr());
  SetTraceCacheDir("");
  EXPECT_EQ(DefaultTraceCache(), nullptr);
}

}  // namespace
}  // namespace stemroot::eval
