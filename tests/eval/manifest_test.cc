#include "eval/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/telemetry.h"

namespace stemroot::eval {
namespace {

RunManifest MakeManifest() {
  RunManifest m;
  m.tool = "stemroot";
  m.command = "run";
  m.completed = true;
  m.StampBuild();
  m.config.suite = "rodinia";
  m.config.workload = "hotspot";
  m.config.gpu = "RTX2080";
  m.config.method = "stem";
  m.config.epsilon = 0.05;
  m.config.confidence = 0.95;
  m.config.scale = 1.0;
  m.config.seed = 42;
  m.config.reps = 10;
  m.config.threads = 4;
  m.wall_time_seconds = 1.25;
  m.stages = {{"generate", 1, 100.0},
              {"cluster", 10, 2500.5},
              {"evaluate", 1, 321.0}};
  m.counters = {{"core.kkt.solves", 100}, {"eval.evaluations", 1}};
  m.metrics.present = true;
  m.metrics.error_pct = 0.81;
  m.metrics.theoretical_error_pct = 5.0;
  m.metrics.speedup = 123.5;
  m.metrics.num_samples = 17;
  m.metrics.num_clusters = 9;
  return m;
}

void ExpectEqual(const RunManifest& a, const RunManifest& b) {
  EXPECT_EQ(a.tool, b.tool);
  EXPECT_EQ(a.command, b.command);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.build.git_hash, b.build.git_hash);
  EXPECT_EQ(a.build.git_dirty, b.build.git_dirty);
  EXPECT_EQ(a.build.compiler, b.build.compiler);
  EXPECT_EQ(a.config.suite, b.config.suite);
  EXPECT_EQ(a.config.workload, b.config.workload);
  EXPECT_EQ(a.config.gpu, b.config.gpu);
  EXPECT_EQ(a.config.method, b.config.method);
  EXPECT_DOUBLE_EQ(a.config.epsilon, b.config.epsilon);
  EXPECT_DOUBLE_EQ(a.config.confidence, b.config.confidence);
  EXPECT_DOUBLE_EQ(a.config.scale, b.config.scale);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.reps, b.config.reps);
  EXPECT_EQ(a.config.threads, b.config.threads);
  EXPECT_DOUBLE_EQ(a.wall_time_seconds, b.wall_time_seconds);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].name, b.stages[i].name);
    EXPECT_EQ(a.stages[i].count, b.stages[i].count);
    EXPECT_DOUBLE_EQ(a.stages[i].total_us, b.stages[i].total_us);
  }
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.metrics.present, b.metrics.present);
  EXPECT_DOUBLE_EQ(a.metrics.error_pct, b.metrics.error_pct);
  EXPECT_DOUBLE_EQ(a.metrics.theoretical_error_pct,
                   b.metrics.theoretical_error_pct);
  EXPECT_DOUBLE_EQ(a.metrics.speedup, b.metrics.speedup);
  EXPECT_EQ(a.metrics.num_samples, b.metrics.num_samples);
  EXPECT_EQ(a.metrics.num_clusters, b.metrics.num_clusters);
  EXPECT_EQ(a.error, b.error);
}

TEST(ManifestTest, RoundTripsPrettyAndCompact) {
  const RunManifest m = MakeManifest();
  for (bool pretty : {true, false}) {
    const std::string text = m.ToJson(pretty);
    RunManifest back;
    std::string error;
    ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
    ExpectEqual(m, back);
  }
  // The compact form is one line (the ledger encoding).
  const std::string compact = m.ToJson(/*pretty=*/false);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(ManifestTest, RoundTripsFailedRunWithErrorAndNoMetrics) {
  RunManifest m = MakeManifest();
  m.completed = false;
  m.metrics = {};
  m.error = "something \"quoted\"\nbroke";
  const std::string text = m.ToJson(/*pretty=*/true);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_FALSE(back.completed);
  EXPECT_FALSE(back.metrics.present);
  EXPECT_EQ(back.error, m.error);
}

TEST(ManifestTest, JournalBlockRoundTrips) {
  RunManifest m = MakeManifest();
  m.journal.present = true;
  m.journal.emitted = 120;
  m.journal.dropped = 3;
  m.journal.errors = 1;
  const std::string text = m.ToJson(/*pretty=*/true);
  EXPECT_NE(text.find("\"journal\""), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_TRUE(back.journal.present);
  EXPECT_EQ(back.journal.emitted, 120u);
  EXPECT_EQ(back.journal.dropped, 3u);
  EXPECT_EQ(back.journal.errors, 1u);
}

TEST(ManifestTest, JournalBlockIsOptional) {
  // Manifests from journal-less runs carry no block; readers see
  // present == false (pre-PR documents stay loadable, and batch-path
  // serialization is unchanged byte for byte).
  const RunManifest m = MakeManifest();
  const std::string text = m.ToJson(/*pretty=*/false);
  EXPECT_EQ(text.find("journal"), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_FALSE(back.journal.present);
  EXPECT_EQ(back.journal.emitted, 0u);
}

TEST(ManifestTest, JournalBlockRejectsNegativeCounts) {
  RunManifest m = MakeManifest();
  m.journal.present = true;
  std::string text = m.ToJson(/*pretty=*/false);
  const size_t pos = text.find("\"journal\":{\"emitted\":0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 22, "\"journal\":{\"emitted\":-1");
  RunManifest back;
  std::string error;
  EXPECT_FALSE(RunManifest::FromJson(text, back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, MemBlockRoundTrips) {
  RunManifest m = MakeManifest();
  m.mem.present = true;
  m.mem.peak_rss_bytes = 123456789;
  m.mem.samples = 42;
  m.mem.logical = {{"trace", 1000}, {"root", 2000}, {"cache", 3000}};
  const std::string text = m.ToJson(/*pretty=*/true);
  EXPECT_NE(text.find("\"mem\""), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_TRUE(back.mem.present);
  EXPECT_EQ(back.mem.peak_rss_bytes, 123456789u);
  EXPECT_EQ(back.mem.samples, 42u);
  EXPECT_EQ(back.mem.logical, m.mem.logical);
}

TEST(ManifestTest, MemBlockIsOptional) {
  // Pre-PR manifests carry no mem block; readers see present == false
  // and serialization without it is byte-for-byte unchanged.
  const RunManifest m = MakeManifest();
  const std::string text = m.ToJson(/*pretty=*/false);
  EXPECT_EQ(text.find("\"mem\""), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_FALSE(back.mem.present);
  EXPECT_EQ(back.mem.peak_rss_bytes, 0u);
  EXPECT_TRUE(back.mem.logical.empty());
}

TEST(ManifestTest, MemBlockRejectsNegativeAndMalformed) {
  RunManifest m = MakeManifest();
  m.mem.present = true;
  m.mem.peak_rss_bytes = 10;
  m.mem.logical = {{"trace", 5}};
  const std::string good = m.ToJson(/*pretty=*/false);
  auto broke = [&](const std::string& from, const std::string& to) {
    std::string doc = good;
    const size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return doc;
  };
  RunManifest back;
  std::string error;
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"peak_rss_bytes\":10", "\"peak_rss_bytes\":-10"), back,
      &error));
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"trace\":5", "\"trace\":-5"), back, &error));
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"trace\":5", "\"trace\":\"big\""), back, &error));
  // A mem block without the logical map is malformed.
  EXPECT_FALSE(RunManifest::FromJson(
      broke(",\"logical\":{\"trace\":5}", ""), back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, MemBlockDoesNotAffectFingerprint) {
  // Physical memory is environmental: two runs that differ only in the
  // mem block are the same ledger identity.
  const RunManifest a = MakeManifest();
  RunManifest b = a;
  b.mem.present = true;
  b.mem.peak_rss_bytes = 1ull << 40;
  b.mem.logical = {{"trace", 999}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ManifestTest, TraceSpillBlockRoundTrips) {
  RunManifest m = MakeManifest();
  m.trace_spill.present = true;
  m.trace_spill.chunk_invocations = 4096;
  m.trace_spill.chunks = 17;
  m.trace_spill.bytes = 987654;
  const std::string text = m.ToJson(/*pretty=*/true);
  EXPECT_NE(text.find("\"trace_spill\""), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_TRUE(back.trace_spill.present);
  EXPECT_EQ(back.trace_spill.chunk_invocations, 4096u);
  EXPECT_EQ(back.trace_spill.chunks, 17u);
  EXPECT_EQ(back.trace_spill.bytes, 987654u);
}

TEST(ManifestTest, TraceSpillBlockIsOptional) {
  // In-memory runs carry no trace_spill block; pre-section-16 manifests
  // keep parsing and serializing byte-for-byte unchanged.
  const RunManifest m = MakeManifest();
  const std::string text = m.ToJson(/*pretty=*/false);
  EXPECT_EQ(text.find("\"trace_spill\""), std::string::npos);
  RunManifest back;
  std::string error;
  ASSERT_TRUE(RunManifest::FromJson(text, back, &error)) << error;
  EXPECT_FALSE(back.trace_spill.present);
  EXPECT_EQ(back.trace_spill.chunk_invocations, 0u);
}

TEST(ManifestTest, TraceSpillBlockRejectsMalformed) {
  RunManifest m = MakeManifest();
  m.trace_spill.present = true;
  m.trace_spill.chunk_invocations = 8;
  m.trace_spill.chunks = 2;
  m.trace_spill.bytes = 100;
  const std::string good = m.ToJson(/*pretty=*/false);
  auto broke = [&](const std::string& from, const std::string& to) {
    std::string doc = good;
    const size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return doc;
  };
  RunManifest back;
  std::string error;
  // A spill that claims zero-invocation chunks is meaningless.
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"chunk_invocations\":8", "\"chunk_invocations\":0"), back,
      &error));
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"chunks\":2", "\"chunks\":-2"), back, &error));
  EXPECT_FALSE(RunManifest::FromJson(
      broke("\"bytes\":100", "\"bytes\":\"many\""), back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, ChunkSizeSplitsFingerprintLikeEpochCycles) {
  // chunk_invocations never changes results (the byte-identity contract)
  // but does change the wall-time profile, so perf baselines split on it
  // -- the epoch_cycles precedent. chunks/bytes are derived facts and
  // stay out.
  const RunManifest a = MakeManifest();
  RunManifest b = a;
  b.trace_spill.present = true;
  b.trace_spill.chunk_invocations = 1024;
  b.trace_spill.chunks = 3;
  b.trace_spill.bytes = 500;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  RunManifest c = b;
  c.trace_spill.chunks = 99;
  c.trace_spill.bytes = 12345;
  EXPECT_EQ(b.Fingerprint(), c.Fingerprint());
  RunManifest d = b;
  d.trace_spill.chunk_invocations = 2048;
  EXPECT_NE(b.Fingerprint(), d.Fingerprint());
}

TEST(ManifestTest, ValidationRejectsNonConformingDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateManifestJson("not json at all", &error));
  EXPECT_FALSE(ValidateManifestJson("[]", &error));
  EXPECT_FALSE(ValidateManifestJson("{}", &error));
  EXPECT_FALSE(
      ValidateManifestJson(R"({"schema": "some-other-schema"})", &error));

  // Field-level violations: start from a valid doc and break one thing.
  const RunManifest m = MakeManifest();
  const std::string good = m.ToJson(/*pretty=*/false);
  ASSERT_TRUE(ValidateManifestJson(good, &error)) << error;

  auto broke = [&](const std::string& from, const std::string& to) {
    std::string doc = good;
    const size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return doc;
  };
  // Missing build stamp member.
  EXPECT_FALSE(
      ValidateManifestJson(broke("\"git_hash\"", "\"nope\""), &error));
  // completed must be a bool.
  EXPECT_FALSE(
      ValidateManifestJson(broke("\"completed\":true", "\"completed\":1"),
                           &error));
  // Negative wall time.
  EXPECT_FALSE(ValidateManifestJson(
      broke("\"wall_time_seconds\":1.25", "\"wall_time_seconds\":-1"),
      &error));
  // Stage entry missing its count.
  EXPECT_FALSE(
      ValidateManifestJson(broke("\"count\":1,", "\"clowns\":1,"), &error));
  // Non-numeric counter value.
  EXPECT_FALSE(ValidateManifestJson(
      broke("\"core.kkt.solves\":100", "\"core.kkt.solves\":\"x\""),
      &error));
  // Metrics present but incomplete.
  EXPECT_FALSE(
      ValidateManifestJson(broke("\"speedup\"", "\"speedip\""), &error));
}

TEST(ManifestTest, FingerprintCoversConfigButNotBuild) {
  const RunManifest a = MakeManifest();
  RunManifest b = a;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // The build stamp is deliberately excluded: the ledger compares runs
  // across revisions.
  b.build.git_hash = "deadbeef0000";
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // Every config knob (threads included) is part of the identity.
  b = a; b.config.workload = "lud";
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a; b.config.seed = 43;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a; b.config.threads = 8;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a; b.config.epsilon = 0.10;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a; b.command = "evaluate";
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ManifestTest, FindStage) {
  const RunManifest m = MakeManifest();
  ASSERT_NE(m.FindStage("cluster"), nullptr);
  EXPECT_DOUBLE_EQ(m.FindStage("cluster")->total_us, 2500.5);
  EXPECT_EQ(m.FindStage("warp_drive"), nullptr);
}

TEST(ManifestTest, FillFromSnapshotAggregatesStagesAndCounters) {
  telemetry::SetEnabled(true);
  telemetry::Reset();
  {
    telemetry::Span gen("generate");
    telemetry::Count("widgets", 3);
  }
  { telemetry::Span eval_span("evaluate"); }
  RunManifest m;
  m.FillFromSnapshot(telemetry::Capture());
  telemetry::Reset();
  telemetry::SetEnabled(false);

  ASSERT_EQ(m.stages.size(), 2u);
  // Canonical pipeline order, not alphabetical.
  EXPECT_EQ(m.stages[0].name, "generate");
  EXPECT_EQ(m.stages[1].name, "evaluate");
  EXPECT_EQ(m.counters.at("widgets"), 3u);
}

TEST(ManifestTest, SaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/manifest_test.json";
  const RunManifest m = MakeManifest();
  m.Save(path);
  const RunManifest back = RunManifest::Load(path);
  ExpectEqual(m, back);
  std::remove(path.c_str());
  EXPECT_THROW(RunManifest::Load(path), std::runtime_error);
}

// Count the `<name>.tmp.<pid>` staging files Save leaves behind in `dir`
// (there must never be any once Save returns, success or not).
size_t TempResidue(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string().find(".tmp.") != std::string::npos)
      ++n;
  return n;
}

TEST(ManifestTest, SaveLeavesNoTempResidueAndOverwritesAtomically) {
  const std::string dir = ::testing::TempDir() + "/manifest_atomic_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/m.json";

  RunManifest m = MakeManifest();
  m.Save(path);
  EXPECT_EQ(TempResidue(dir), 0u);

  // Overwriting an existing manifest goes through the same staged rename.
  m.wall_time_seconds = 9.0;
  m.Save(path);
  EXPECT_EQ(TempResidue(dir), 0u);
  EXPECT_DOUBLE_EQ(RunManifest::Load(path).wall_time_seconds, 9.0);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, SaveToUnwritablePathThrowsWithoutResidue) {
  // A regular file where a directory is needed makes the temp-file open
  // fail for any user (chmod-based tests are no-ops under root).
  const std::string dir = ::testing::TempDir() + "/manifest_blocked_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string blocker = dir + "/blocker";
  { std::ofstream(blocker) << "not a directory"; }

  EXPECT_THROW(MakeManifest().Save(blocker + "/m.json"),
               std::runtime_error);
  EXPECT_EQ(TempResidue(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, FailedRenamePreservesTheDestination) {
  // Renaming a file over an existing directory fails after the temp file
  // was fully written: Save must clean up the temp and leave the
  // destination untouched.
  const std::string dir = ::testing::TempDir() + "/manifest_rename_test";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/m.json";
  std::filesystem::create_directories(path);  // destination is a directory

  EXPECT_THROW(MakeManifest().Save(path), std::runtime_error);
  EXPECT_TRUE(std::filesystem::is_directory(path));
  EXPECT_EQ(TempResidue(dir), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stemroot::eval
