#include "eval/ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace stemroot::eval {
namespace {

RunManifest MakeRun(double wall_seconds, uint64_t seed = 42,
                    bool completed = true) {
  RunManifest m;
  m.tool = "stemroot";
  m.command = "run";
  m.completed = completed;
  m.config.suite = "rodinia";
  m.config.workload = "hotspot";
  m.config.method = "stem";
  m.config.seed = seed;
  m.config.threads = 1;
  m.wall_time_seconds = wall_seconds;
  return m;
}

std::string TempLedger(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(LedgerTest, AppendAndLoadRoundTrip) {
  const std::string path = TempLedger("ledger_roundtrip.jsonl");
  Ledger::Append(MakeRun(1.0), path);
  Ledger::Append(MakeRun(2.0), path);
  Ledger::Append(MakeRun(3.0), path);

  const Ledger ledger = Ledger::Load(path);
  EXPECT_EQ(ledger.num_skipped(), 0u);
  ASSERT_EQ(ledger.Entries().size(), 3u);
  // Append order is chronological order.
  EXPECT_DOUBLE_EQ(ledger.Entries()[0].wall_time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(ledger.Entries()[2].wall_time_seconds, 3.0);
  std::remove(path.c_str());
}

TEST(LedgerTest, LoadSkipsTornTailAndJunkLines) {
  const std::string path = TempLedger("ledger_torn.jsonl");
  Ledger::Append(MakeRun(1.0), path);
  Ledger::Append(MakeRun(2.0), path);
  {
    // A crash mid-append leaves a torn final line; earlier corruption
    // (editor accident, merge marker) must not take the ledger down either.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"schema\":\"stemroot-manifest-v1\",\"tool\":\"trunc";
  }
  const Ledger ledger = Ledger::Load(path);
  EXPECT_EQ(ledger.Entries().size(), 2u);
  EXPECT_EQ(ledger.num_skipped(), 1u);
  std::remove(path.c_str());
}

TEST(LedgerTest, AppendToUnwritablePathThrows) {
  // A regular file where a directory is needed blocks the open for any
  // user (chmod-based unwritability is a no-op under root). A dropped
  // append must surface as an error, never silently succeed.
  const std::string blocker = TempLedger("ledger_blocker");
  { std::ofstream(blocker) << "not a directory"; }
  try {
    Ledger::Append(MakeRun(1.0), blocker + "/ledger.jsonl");
    FAIL() << "append into a non-directory should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos)
        << e.what();
  }
  std::remove(blocker.c_str());
}

TEST(LedgerTest, LoadThrowsOnMissingFile) {
  EXPECT_THROW(Ledger::Load(::testing::TempDir() + "/no_such_ledger.jsonl"),
               std::runtime_error);
}

TEST(LedgerTest, AppendCreatesParentDirectories) {
  const std::string dir = ::testing::TempDir() + "/ledger_subdir_test";
  const std::string path = dir + "/nested/ledger.jsonl";
  Ledger::Append(MakeRun(1.0), path);
  EXPECT_EQ(Ledger::Load(path).Entries().size(), 1u);
  std::remove(path.c_str());
}

TEST(LedgerTest, FilterKeepsFileOrder) {
  Ledger ledger;
  ledger.Add(MakeRun(1.0, 42));
  ledger.Add(MakeRun(2.0, 7));
  ledger.Add(MakeRun(3.0, 42));
  const auto hits = ledger.Filter(
      [](const RunManifest& m) { return m.config.seed == 42; });
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0]->wall_time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(hits[1]->wall_time_seconds, 3.0);
}

TEST(LedgerTest, BaselineMatchesFingerprintWindowAndCompleteness) {
  Ledger ledger;
  ledger.Add(MakeRun(1.0));
  ledger.Add(MakeRun(2.0, /*seed=*/7));            // different fingerprint
  ledger.Add(MakeRun(3.0));
  ledger.Add(MakeRun(4.0, 42, /*completed=*/false));  // crashed run
  ledger.Add(MakeRun(5.0));
  ledger.Add(MakeRun(6.0));  // the "newest" run under test

  const RunManifest reference = MakeRun(0.0);
  // Baseline of the newest entry: same fingerprint, completed only,
  // entries strictly before it, newest last.
  const size_t newest = ledger.Entries().size() - 1;
  auto base = ledger.Baseline(reference, newest, /*window=*/0);
  ASSERT_EQ(base.size(), 3u);
  EXPECT_DOUBLE_EQ(base[0]->wall_time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(base[1]->wall_time_seconds, 3.0);
  EXPECT_DOUBLE_EQ(base[2]->wall_time_seconds, 5.0);

  // A window keeps only the most recent entries.
  base = ledger.Baseline(reference, newest, /*window=*/2);
  ASSERT_EQ(base.size(), 2u);
  EXPECT_DOUBLE_EQ(base[0]->wall_time_seconds, 3.0);
  EXPECT_DOUBLE_EQ(base[1]->wall_time_seconds, 5.0);

  // before == Entries().size() includes the final entry too.
  base = ledger.Baseline(reference, ledger.Entries().size(), /*window=*/0);
  ASSERT_EQ(base.size(), 4u);
  EXPECT_DOUBLE_EQ(base.back()->wall_time_seconds, 6.0);
}

}  // namespace
}  // namespace stemroot::eval
