#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "baselines/random_sampler.h"
#include "core/sampler.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"

namespace stemroot::eval {
namespace {

KernelTrace SmallProfiledTrace() {
  KernelTrace trace = workloads::MakeCasio("bert_infer", 71, 0.02);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  return trace;
}

TEST(EvaluatePlanTest, PerfectPlanHasZeroError) {
  const KernelTrace trace = SmallProfiledTrace();
  core::SamplingPlan plan;
  plan.method = "full";
  for (uint32_t i = 0; i < trace.NumInvocations(); ++i)
    plan.entries.push_back({i, 1.0});
  const EvalResult result = EvaluatePlan(trace, plan);
  EXPECT_NEAR(result.error_pct, 0.0, 1e-9);
  EXPECT_NEAR(result.speedup, 1.0, 1e-9);
  EXPECT_EQ(result.workload, "bert_infer");
}

TEST(EvaluatePlanTest, KnownBiasYieldsKnownError) {
  const KernelTrace trace = SmallProfiledTrace();
  core::SamplingPlan plan;
  plan.method = "biased";
  // Represent the whole workload with double weight: estimate = 2x truth.
  for (uint32_t i = 0; i < trace.NumInvocations(); ++i)
    plan.entries.push_back({i, 2.0});
  const EvalResult result = EvaluatePlan(trace, plan);
  EXPECT_NEAR(result.error_pct, 100.0, 1e-6);
}

TEST(EvaluatePlanTest, SpeedupIsFullOverSampled) {
  const KernelTrace trace = SmallProfiledTrace();
  core::SamplingPlan plan;
  plan.method = "one";
  plan.entries.push_back(
      {0, static_cast<double>(trace.NumInvocations())});
  const EvalResult result = EvaluatePlan(trace, plan);
  EXPECT_NEAR(result.speedup,
              trace.TotalDurationUs() / trace.At(0).duration_us, 1e-9);
}

TEST(EvaluatePlanOnDurationsTest, UsesExternalTimings) {
  core::SamplingPlan plan;
  plan.method = "m";
  plan.entries = {{0, 2.0}, {1, 2.0}};
  const std::vector<double> durations = {10.0, 10.0, 10.0, 10.0};
  const EvalResult result =
      EvaluatePlanOnDurations(plan, durations, "wl");
  EXPECT_NEAR(result.error_pct, 0.0, 1e-9);  // 2*10+2*10 == 40
  EXPECT_NEAR(result.speedup, 2.0, 1e-9);
  const std::vector<double> with_zero = {10.0, 0.0, 10.0, 10.0};
  EXPECT_THROW(EvaluatePlanOnDurations(plan, with_zero, "wl"),
               std::invalid_argument);
}

TEST(EvaluateRepeatedTest, AveragesAcrossSeeds) {
  const KernelTrace trace = SmallProfiledTrace();
  baselines::RandomSampler sampler(0.02);
  const EvalResult avg = EvaluateRepeated(sampler, trace, 5, 1);
  EXPECT_GT(avg.speedup, 1.0);
  EXPECT_GE(avg.error_pct, 0.0);
  EXPECT_THROW(EvaluateRepeated(sampler, trace, 0, 1),
               std::invalid_argument);
}

TEST(EvaluateRepeatedTest, DeterministicSamplersRunOnce) {
  // Smoke: a deterministic sampler must produce identical results for any
  // rep count (only one run happens).
  const KernelTrace trace = SmallProfiledTrace();
  class FixedSampler : public core::Sampler {
   public:
    std::string Name() const override { return "Fixed"; }
    bool Deterministic() const override { return true; }
    core::SamplingPlan BuildPlan(const KernelTrace& t,
                                 uint64_t) const override {
      core::SamplingPlan plan;
      plan.method = Name();
      plan.entries.push_back(
          {0, static_cast<double>(t.NumInvocations())});
      return plan;
    }
  } sampler;
  const EvalResult once = EvaluateRepeated(sampler, trace, 1, 1);
  const EvalResult many = EvaluateRepeated(sampler, trace, 10, 1);
  EXPECT_DOUBLE_EQ(once.error_pct, many.error_pct);
  EXPECT_DOUBLE_EQ(once.speedup, many.speedup);
}

TEST(AggregateSuiteTest, PaperAveragingConventions) {
  std::vector<EvalResult> rows(3);
  rows[0].method = "STEM";
  rows[0].speedup = 10.0;
  rows[0].error_pct = 1.0;
  rows[1].method = "STEM";
  rows[1].speedup = 1000.0;
  rows[1].error_pct = 3.0;
  rows[2].method = "Other";
  rows[2].speedup = 5.0;
  rows[2].error_pct = 50.0;

  const EvalResult agg = AggregateSuite(rows, "STEM");
  // Harmonic mean of {10, 1000} = 2/(0.1 + 0.001) ~ 19.8 (not 505).
  EXPECT_NEAR(agg.speedup, 2.0 / (0.1 + 0.001), 1e-9);
  EXPECT_NEAR(agg.error_pct, 2.0, 1e-12);  // arithmetic mean
  EXPECT_THROW(AggregateSuite(rows, "Missing"), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::eval
