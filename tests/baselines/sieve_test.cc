#include "baselines/sieve.h"

#include <gtest/gtest.h>

#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/rodinia.h"

namespace stemroot::baselines {
namespace {

KernelTrace Profiled(KernelTrace trace) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  return trace;
}

TEST(SieveTest, OneSamplePerStratum) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 81, 0.02));
  SieveSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_EQ(plan.NumSamples(), plan.num_clusters);
  EXPECT_NO_THROW(plan.Validate(trace.NumInvocations()));
  EXPECT_NEAR(plan.TotalWeight(),
              static_cast<double>(trace.NumInvocations()), 0.5);
}

TEST(SieveTest, StableKernelGetsSingleSample) {
  // hotspot: one kernel with ~1.5% instruction CoV -> one stratum.
  const KernelTrace trace =
      Profiled(workloads::MakeRodinia("hotspot", 81, 0.5));
  SieveSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_EQ(plan.NumSamples(), 1u);
}

TEST(SieveTest, KdeSplitsGaussiansDecayingWork) {
  // gaussian's instruction counts span orders of magnitude; KDE mode
  // detection must produce multiple strata per kernel.
  const KernelTrace trace =
      Profiled(workloads::MakeRodinia("gaussian", 81, 1.0));
  SieveSampler with_kde;
  SieveConfig no_kde_config;
  no_kde_config.use_kde = false;
  SieveSampler without_kde(no_kde_config);
  const auto with = with_kde.BuildPlan(trace, 1);
  const auto without = without_kde.BuildPlan(trace, 1);
  EXPECT_GT(with.NumSamples(), without.NumSamples());
  EXPECT_EQ(without.NumSamples(), trace.NumKernelTypes());
}

TEST(SieveTest, CollapsesLocalityOnlyContexts) {
  // layernorm contexts share instruction counts -> Sieve sees one group.
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 91, 0.02));
  const int64_t ln = trace.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  SieveSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  size_t layernorm_reps = 0;
  for (const auto& e : plan.entries)
    if (trace.At(e.invocation).kernel_id == ln) ++layernorm_reps;
  EXPECT_LE(layernorm_reps, 1u);
}

TEST(SieveTest, DeterministicByDefaultRandomWithFlag) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 91, 0.02));
  SieveSampler chrono;
  EXPECT_TRUE(chrono.Deterministic());
  SieveConfig config;
  config.random_representative = true;
  SieveSampler random(config);
  EXPECT_FALSE(random.Deterministic());
  EXPECT_EQ(random.Name(), "Sieve(random-rep)");
  const auto a = random.BuildPlan(trace, 1);
  const auto b = random.BuildPlan(trace, 2);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.entries.size(), b.entries.size()); ++i)
    any_diff |= a.entries[i].invocation != b.entries[i].invocation;
  EXPECT_TRUE(any_diff);
}

TEST(SieveTest, HeartwallFirstChronologicalFails) {
  // The Sec. 5.1 failure: the first invocation is 1500x too small.
  KernelTrace trace = Profiled(workloads::MakeRodinia("heartwall", 91, 1.0));
  SieveConfig config;
  config.use_kde = false;
  SieveSampler sampler(config);
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const double truth = trace.TotalDurationUs();
  EXPECT_LT(plan.EstimateTotalUs(trace), truth * 0.1);
  // ... while the hand-tuned random-rep variant mostly recovers.
  SieveConfig tuned = config;
  tuned.random_representative = true;
  SieveSampler tuned_sampler(tuned);
  double err_sum = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto tuned_plan = tuned_sampler.BuildPlan(trace, seed);
    err_sum += std::abs(tuned_plan.EstimateTotalUs(trace) - truth) / truth;
  }
  EXPECT_LT(err_sum / 10.0, 0.35);
}

TEST(SieveTest, ConfigValidation) {
  SieveConfig bad;
  bad.variable_cov = bad.stable_cov;  // not strictly greater
  EXPECT_THROW(SieveSampler{bad}, std::invalid_argument);
  SieveConfig bins;
  bins.kde_bins = 2;
  EXPECT_THROW(SieveSampler{bins}, std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::baselines
