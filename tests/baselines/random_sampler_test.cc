#include "baselines/random_sampler.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"

namespace stemroot::baselines {
namespace {

class RandomSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = workloads::MakeCasio("bert_infer", 51, 0.05);
    hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
    gpu.ProfileTrace(trace_, 2);
  }
  KernelTrace trace_;
};

TEST_F(RandomSamplerTest, SelectsRoughlyPFraction) {
  RandomSampler sampler(0.01);
  const core::SamplingPlan plan = sampler.BuildPlan(trace_, 1);
  const double expected =
      static_cast<double>(trace_.NumInvocations()) * 0.01;
  EXPECT_GT(plan.NumSamples(), expected * 0.5);
  EXPECT_LT(plan.NumSamples(), expected * 1.5);
  for (const auto& e : plan.entries) EXPECT_DOUBLE_EQ(e.weight, 100.0);
}

TEST_F(RandomSamplerTest, EstimatorIsUnbiasedAcrossSeeds) {
  RandomSampler sampler(0.01);
  const double truth = trace_.TotalDurationUs();
  StreamingStats estimates;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    const core::SamplingPlan plan = sampler.BuildPlan(trace_, seed);
    estimates.Add(plan.EstimateTotalUs(trace_));
  }
  EXPECT_NEAR(estimates.Mean() / truth, 1.0, 0.08);
}

TEST_F(RandomSamplerTest, NeverReturnsEmptyPlan) {
  RandomSampler sampler(1e-9);  // essentially never selects
  const core::SamplingPlan plan = sampler.BuildPlan(trace_, 1);
  EXPECT_GE(plan.NumSamples(), 1u);
  EXPECT_NO_THROW(plan.Validate(trace_.NumInvocations()));
}

TEST_F(RandomSamplerTest, FullProbabilityTakesEverything) {
  RandomSampler sampler(1.0);
  const core::SamplingPlan plan = sampler.BuildPlan(trace_, 1);
  EXPECT_EQ(plan.NumSamples(), trace_.NumInvocations());
}

TEST(RandomSamplerValidationTest, RejectsBadProbability) {
  EXPECT_THROW(RandomSampler(0.0), std::invalid_argument);
  EXPECT_THROW(RandomSampler(1.5), std::invalid_argument);
  EXPECT_THROW(RandomSampler(-0.1), std::invalid_argument);
}

TEST(RandomSamplerNameTest, EncodesProbability) {
  EXPECT_EQ(RandomSampler(0.001).Name(), "Random(0.1%)");
  EXPECT_EQ(RandomSampler(0.1).Name(), "Random(10%)");
}

}  // namespace
}  // namespace stemroot::baselines
