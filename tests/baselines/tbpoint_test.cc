#include "baselines/tbpoint.h"

#include <gtest/gtest.h>

#include <set>

#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/rodinia.h"

namespace stemroot::baselines {
namespace {

KernelTrace Profiled(KernelTrace trace) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  return trace;
}

TEST(TbPointTest, PlanIsValidAndWeightConserving) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  TbPointSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_NO_THROW(plan.Validate(trace.NumInvocations()));
  EXPECT_EQ(plan.NumSamples(), plan.num_clusters);
  EXPECT_NEAR(plan.TotalWeight(),
              static_cast<double>(trace.NumInvocations()), 0.5);
  EXPECT_LE(plan.num_clusters, TbPointConfig{}.max_clusters);
}

TEST(TbPointTest, DeterministicAcrossSeeds) {
  const KernelTrace trace =
      Profiled(workloads::MakeRodinia("lud", 11, 0.3));
  TbPointSampler sampler;
  EXPECT_TRUE(sampler.Deterministic());
  const auto a = sampler.BuildPlan(trace, 1);
  const auto b = sampler.BuildPlan(trace, 2);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i)
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation);
}

TEST(TbPointTest, SeparatesDistinctKernels) {
  // Kernels with very different instruction-level features must not share
  // one cluster: at least one representative per kernel family.
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("resnet50_infer", 11, 0.02));
  TbPointSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  std::set<uint32_t> kernels_with_rep;
  for (const auto& e : plan.entries)
    kernels_with_rep.insert(trace.At(e.invocation).kernel_id);
  EXPECT_GE(kernels_with_rep.size(), 3u);
}

TEST(TbPointTest, CentroidNearestBeatsFirstChronologicalOnGaussian) {
  // gaussian's smoothly decaying work: the centroid-nearest member is a
  // mid-range kernel, so TBPoint's estimate is less biased than a
  // first-chronological pick (which is always the largest in cluster).
  KernelTrace trace = Profiled(workloads::MakeRodinia("gaussian", 11, 1.0));
  TbPointSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const double truth = trace.TotalDurationUs();
  const double estimate = plan.EstimateTotalUs(trace);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.5);
}

TEST(TbPointTest, LargeTracesUsePreReduction) {
  // Above the agglomeration cap the pre-reduction path must still produce
  // a valid plan (and terminate quickly).
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.1));
  ASSERT_GT(trace.NumInvocations(), TbPointConfig{}.agglomeration_cap);
  TbPointSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_NO_THROW(plan.Validate(trace.NumInvocations()));
  EXPECT_GT(plan.num_clusters, 1u);
}

TEST(TbPointTest, ConfigValidation) {
  TbPointConfig bad;
  bad.merge_threshold = 0.0;
  EXPECT_THROW(TbPointSampler{bad}, std::invalid_argument);
  bad = TbPointConfig{};
  bad.max_clusters = 0;
  EXPECT_THROW(TbPointSampler{bad}, std::invalid_argument);
  KernelTrace empty("e");
  TbPointSampler sampler;
  EXPECT_THROW(sampler.BuildPlan(empty, 1), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::baselines
