#include "baselines/photon.h"

#include <gtest/gtest.h>

#include "hw/hardware_model.h"
#include "workloads/casio.h"

namespace stemroot::baselines {
namespace {

KernelTrace Profiled(KernelTrace trace) {
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  return trace;
}

TEST(PhotonTest, PlanIsValidWeightConserving) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  PhotonSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_NO_THROW(plan.Validate(trace.NumInvocations()));
  EXPECT_EQ(plan.NumSamples(), plan.num_clusters);
  EXPECT_NEAR(plan.TotalWeight(),
              static_cast<double>(trace.NumInvocations()), 0.5);
}

TEST(PhotonTest, DistinguishesInputScaleContexts) {
  // sgemm contexts differ in BBV shape, so Photon must keep more than one
  // representative (unlike instruction-blind clustering). BBV shapes
  // saturate as loop blocks dominate at larger inputs, so the two largest
  // contexts may still merge under the 95% threshold -- Photon's
  // documented intermediate accuracy (Sec. 5.2).
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  const int64_t gemm = trace.FindKernel("sgemm_128x64_nn");
  ASSERT_GE(gemm, 0);
  PhotonSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  size_t gemm_reps = 0;
  for (const auto& e : plan.entries)
    if (trace.At(e.invocation).kernel_id == gemm) ++gemm_reps;
  EXPECT_GE(gemm_reps, 2u);
}

TEST(PhotonTest, MergesLocalityOnlyContexts) {
  // layernorm contexts share BBVs (and warp counts): one rep suffices for
  // Photon's 95% similarity threshold -- its documented blind spot.
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  const int64_t ln = trace.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  PhotonSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  size_t ln_reps = 0;
  for (const auto& e : plan.entries)
    if (trace.At(e.invocation).kernel_id == ln) ++ln_reps;
  EXPECT_LE(ln_reps, 2u);
}

TEST(PhotonTest, RepresentativeIsFirstOccurrence) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  PhotonSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  // Each representative must precede every invocation it represents;
  // at minimum, the very first invocation must be a representative.
  bool first_is_rep = false;
  for (const auto& e : plan.entries) first_is_rep |= e.invocation == 0;
  EXPECT_TRUE(first_is_rep);
}

TEST(PhotonTest, DeterministicAcrossSeeds) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  PhotonSampler sampler;
  EXPECT_TRUE(sampler.Deterministic());
  const auto a = sampler.BuildPlan(trace, 1);
  const auto b = sampler.BuildPlan(trace, 2);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i)
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation);
}

TEST(PhotonTest, LooserThresholdKeepsFewerReps) {
  const KernelTrace trace =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.02));
  PhotonConfig strict;
  strict.similarity_threshold = 0.999;
  PhotonConfig loose;
  loose.similarity_threshold = 0.5;
  const auto strict_plan = PhotonSampler(strict).BuildPlan(trace, 1);
  const auto loose_plan = PhotonSampler(loose).BuildPlan(trace, 1);
  EXPECT_GT(strict_plan.NumSamples(), loose_plan.NumSamples());
}

TEST(PhotonTest, ComparisonCostGrowsSuperlinearly) {
  // Sec. 5.6: Photon's comparison count is O(N*S)..O(N^2).
  const KernelTrace small =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.01));
  PhotonSampler sampler;
  sampler.BuildPlan(small, 1);
  const uint64_t comparisons_small = PhotonSampler::LastComparisonCount();
  const KernelTrace big =
      Profiled(workloads::MakeCasio("bert_infer", 11, 0.04));
  sampler.BuildPlan(big, 1);
  const uint64_t comparisons_big = PhotonSampler::LastComparisonCount();
  const double n_ratio = static_cast<double>(big.NumInvocations()) /
                         static_cast<double>(small.NumInvocations());
  EXPECT_GT(static_cast<double>(comparisons_big) /
                static_cast<double>(comparisons_small),
            n_ratio * 0.8);
}

TEST(PhotonTest, ConfigValidation) {
  PhotonConfig bad;
  bad.similarity_threshold = 0.0;
  EXPECT_THROW(PhotonSampler{bad}, std::invalid_argument);
  bad.similarity_threshold = 1.5;
  EXPECT_THROW(PhotonSampler{bad}, std::invalid_argument);
  PhotonConfig warp;
  warp.warp_tolerance = -0.1;
  EXPECT_THROW(PhotonSampler{warp}, std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::baselines
