#include "baselines/pka.h"

#include <gtest/gtest.h>

#include "baselines/feature.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/rodinia.h"

namespace stemroot::baselines {
namespace {

KernelTrace ProfiledTrace(const std::string& suite_workload, double scale) {
  KernelTrace trace = workloads::MakeCasio(suite_workload, 61, scale);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  return trace;
}

TEST(PkaTest, OneRepresentativePerCluster) {
  const KernelTrace trace = ProfiledTrace("bert_infer", 0.02);
  PkaSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  EXPECT_EQ(plan.NumSamples(), plan.num_clusters);
  EXPECT_NO_THROW(plan.Validate(trace.NumInvocations()));
  EXPECT_NEAR(plan.TotalWeight(),
              static_cast<double>(trace.NumInvocations()), 0.5);
  EXPECT_LE(plan.num_clusters, 20u);  // k swept 1..20
}

TEST(PkaTest, FirstChronologicalIsDeterministic) {
  const KernelTrace trace = ProfiledTrace("bert_infer", 0.02);
  PkaSampler sampler;
  EXPECT_TRUE(sampler.Deterministic());
  const core::SamplingPlan a = sampler.BuildPlan(trace, 1);
  const core::SamplingPlan b = sampler.BuildPlan(trace, 99);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i)
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation);
}

TEST(PkaTest, RandomRepVariantUsesSeed) {
  const KernelTrace trace = ProfiledTrace("bert_infer", 0.02);
  PkaConfig config;
  config.random_representative = true;
  PkaSampler sampler(config);
  EXPECT_FALSE(sampler.Deterministic());
  EXPECT_EQ(sampler.Name(), "PKA(random-rep)");
  const core::SamplingPlan a = sampler.BuildPlan(trace, 1);
  const core::SamplingPlan b = sampler.BuildPlan(trace, 2);
  bool any_diff = a.entries.size() != b.entries.size();
  for (size_t i = 0; !any_diff && i < a.entries.size(); ++i)
    any_diff = a.entries[i].invocation != b.entries[i].invocation;
  EXPECT_TRUE(any_diff);
}

TEST(PkaTest, MergesLocalityOnlyContexts) {
  // PKA's 12 instruction-level metrics cannot see locality-only context
  // differences (Fig. 10): both layernorm contexts must land in one
  // cluster, i.e. at most one representative carries layernorm weight.
  const KernelTrace trace = ProfiledTrace("bert_infer", 0.02);
  const int64_t ln = trace.FindKernel("layernorm_fw");
  ASSERT_GE(ln, 0);
  PkaSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  size_t layernorm_reps = 0;
  for (const auto& e : plan.entries)
    if (trace.At(e.invocation).kernel_id == ln) ++layernorm_reps;
  EXPECT_LE(layernorm_reps, 1u);
}

TEST(PkaTest, MisestimatesDecayingGaussian) {
  // Sec. 5.1: gaussian's work decays smoothly toward zero; coarse
  // clustering with first-chronological representatives systematically
  // picks the largest member of each cluster, overestimating the total.
  KernelTrace trace = workloads::MakeRodinia("gaussian", 71, 1.0);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  PkaSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const double estimate = plan.EstimateTotalUs(trace);
  const double truth = trace.TotalDurationUs();
  EXPECT_GT(std::abs(estimate - truth) / truth, 0.10);
  EXPECT_GT(estimate, truth);  // first-chronological == biggest-in-cluster
}

TEST(ZNormalizeTest, ColumnsBecomeStandardized) {
  std::vector<double> matrix = {1.0, 100.0, 2.0, 200.0, 3.0, 300.0};
  ZNormalizeColumns(matrix, 2);
  // Column means ~0.
  EXPECT_NEAR(matrix[0] + matrix[2] + matrix[4], 0.0, 1e-9);
  EXPECT_NEAR(matrix[1] + matrix[3] + matrix[5], 0.0, 1e-9);
  EXPECT_THROW(ZNormalizeColumns(matrix, 4), std::invalid_argument);
}

TEST(ZNormalizeTest, ConstantColumnBecomesZero) {
  std::vector<double> matrix = {5.0, 1.0, 5.0, 2.0};
  ZNormalizeColumns(matrix, 2);
  EXPECT_DOUBLE_EQ(matrix[0], 0.0);
  EXPECT_DOUBLE_EQ(matrix[2], 0.0);
}

TEST(ElbowTest, PicksKneeOfInertiaCurve) {
  // Sharp drop then flat: elbow at k=3.
  const std::vector<double> inertias = {100.0, 40.0, 8.0, 7.5, 7.2};
  EXPECT_EQ(ElbowK(inertias, 0.02), 3u);
  const std::vector<double> single = {100.0};
  EXPECT_EQ(ElbowK(single), 1u);
  const std::vector<double> none;
  EXPECT_THROW(ElbowK(none), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::baselines
