#include "core/stem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace stemroot::core {
namespace {

TEST(StemConfigTest, DefaultsMatchPaper) {
  const StemConfig config;
  EXPECT_DOUBLE_EQ(config.epsilon, 0.05);
  EXPECT_DOUBLE_EQ(config.confidence, 0.95);
  EXPECT_NEAR(config.Z(), 1.96, 0.001);
  EXPECT_NO_THROW(config.Validate());
}

TEST(StemConfigTest, ValidationRejectsBadValues) {
  StemConfig config;
  config.epsilon = 0.0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StemConfig{};
  config.confidence = 1.0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StemConfig{};
  config.min_samples = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(ClusterStatsTest, FromDurations) {
  const std::vector<double> durations = {2.0, 4.0, 6.0};
  const ClusterStats stats = ClusterStats::Of(durations);
  EXPECT_EQ(stats.n, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_NEAR(stats.Cov(), stats.stddev / 4.0, 1e-12);
}

TEST(SampleSizeTest, MatchesEquationThree) {
  // Eq. (3): m = ceil((z/eps * sigma/mu)^2). With CoV = 0.5, eps = 0.05,
  // z = 1.95996: m = ceil((1.95996 * 10)^2) = ceil(384.1) = 385.
  ClusterStats cluster{100000, 100.0, 50.0};
  StemConfig config;
  EXPECT_EQ(SingleClusterSampleSize(cluster, config), 385u);
}

TEST(SampleSizeTest, GrowsQuadraticallyWithCov) {
  StemConfig config;
  ClusterStats narrow{1000000, 100.0, 10.0};
  ClusterStats wide{1000000, 100.0, 40.0};
  const uint64_t m_narrow = SingleClusterSampleSize(narrow, config);
  const uint64_t m_wide = SingleClusterSampleSize(wide, config);
  EXPECT_NEAR(static_cast<double>(m_wide) / static_cast<double>(m_narrow),
              16.0, 1.0);
}

TEST(SampleSizeTest, ShrinksWithLooserEpsilon) {
  // Fig. 11 mechanism: larger epsilon -> fewer samples -> more speedup.
  ClusterStats cluster{1000000, 100.0, 50.0};
  StemConfig tight;
  tight.epsilon = 0.03;
  StemConfig loose;
  loose.epsilon = 0.25;
  EXPECT_GT(SingleClusterSampleSize(cluster, tight),
            SingleClusterSampleSize(cluster, loose) * 30);
}

TEST(SampleSizeTest, DegenerateClusterGetsFloor) {
  ClusterStats constant{5000, 10.0, 0.0};
  StemConfig config;
  EXPECT_EQ(SingleClusterSampleSize(constant, config), 1u);
  config.min_samples = 3;
  EXPECT_EQ(SingleClusterSampleSize(constant, config), 3u);
}

TEST(SampleSizeTest, CappedAtPopulation) {
  ClusterStats tiny{10, 100.0, 500.0};  // CoV 5 would want ~38k samples
  StemConfig config;
  EXPECT_EQ(SingleClusterSampleSize(tiny, config), 10u);
}

TEST(SampleSizeTest, EmptyAndInvalidClusters) {
  StemConfig config;
  EXPECT_EQ(SingleClusterSampleSize(ClusterStats{0, 0.0, 0.0}, config), 0u);
  EXPECT_THROW(
      SingleClusterSampleSize(ClusterStats{10, -1.0, 1.0}, config),
      std::invalid_argument);
}

TEST(TheoreticalErrorTest, InvertsSampleSize) {
  // Sampling exactly m = (z sigma / (eps mu))^2 gives error exactly eps.
  ClusterStats cluster{100000, 100.0, 50.0};
  StemConfig config;
  const double z = config.Z();
  const double m_exact = std::pow(z / config.epsilon * 0.5, 2.0);
  const double err = TheoreticalError(
      cluster, static_cast<uint64_t>(std::ceil(m_exact)), config);
  EXPECT_LE(err, config.epsilon);
  EXPECT_GT(err, config.epsilon * 0.95);
}

TEST(TheoreticalErrorTest, DecaysAsSqrtM) {
  ClusterStats cluster{100000, 100.0, 50.0};
  StemConfig config;
  const double e100 = TheoreticalError(cluster, 100, config);
  const double e400 = TheoreticalError(cluster, 400, config);
  EXPECT_NEAR(e100 / e400, 2.0, 1e-9);
}

TEST(TheoreticalErrorTest, Validation) {
  ClusterStats cluster{100, 10.0, 5.0};
  StemConfig config;
  EXPECT_THROW(TheoreticalError(cluster, 0, config), std::invalid_argument);
  EXPECT_THROW(TheoreticalError(ClusterStats{100, 0.0, 5.0}, 10, config),
               std::invalid_argument);
}

TEST(MultiClusterErrorTest, SingleClusterReducesToEqTwo) {
  ClusterStats cluster{100000, 100.0, 50.0};
  StemConfig config;
  const std::vector<ClusterStats> clusters = {cluster};
  const std::vector<uint64_t> m = {385};
  EXPECT_NEAR(MultiClusterError(clusters, m, config),
              TheoreticalError(cluster, 385, config), 1e-12);
}

TEST(MultiClusterErrorTest, MoreSamplesAnywhereReduceError) {
  StemConfig config;
  const std::vector<ClusterStats> clusters = {{1000, 10.0, 5.0},
                                              {2000, 50.0, 20.0}};
  const std::vector<uint64_t> base = {10, 10};
  const std::vector<uint64_t> more = {10, 40};
  EXPECT_LT(MultiClusterError(clusters, more, config),
            MultiClusterError(clusters, base, config));
}

TEST(MultiClusterErrorTest, ArityMismatchThrows) {
  StemConfig config;
  const std::vector<ClusterStats> clusters = {{1000, 10.0, 5.0}};
  const std::vector<uint64_t> m = {1, 2};
  EXPECT_THROW(MultiClusterError(clusters, m, config),
               std::invalid_argument);
}

TEST(SampleCostTest, SumsMiMui) {
  const std::vector<ClusterStats> clusters = {{100, 10.0, 1.0},
                                              {200, 5.0, 1.0}};
  const std::vector<uint64_t> m = {3, 4};
  EXPECT_DOUBLE_EQ(SampleCost(clusters, m), 3 * 10.0 + 4 * 5.0);
}

/// Property sweep: for many random clusters, sampling the Eq. (3) size
/// keeps the theoretical error within epsilon.
class StemPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StemPropertyTest, EquationThreeRespectsBound) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  StemConfig config;
  config.epsilon = rng.NextDouble(0.01, 0.3);
  ClusterStats cluster;
  cluster.n = 1 + rng.NextBounded(1000000);
  cluster.mean = rng.NextDouble(1.0, 1000.0);
  cluster.stddev = rng.NextDouble(0.0, cluster.mean * 3.0);
  const uint64_t m = SingleClusterSampleSize(cluster, config);
  ASSERT_GE(m, 1u);
  if (m < cluster.n) {  // not clipped by the population cap
    EXPECT_LE(TheoreticalError(cluster, m, config), config.epsilon * 1.0001)
        << "n=" << cluster.n << " mean=" << cluster.mean
        << " sd=" << cluster.stddev << " eps=" << config.epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, StemPropertyTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace stemroot::core
