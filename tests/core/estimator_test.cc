#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"

namespace stemroot::core {
namespace {

TEST(EstimatorTest, FullAggregateSumsCountsAveragesRates) {
  std::vector<KernelMetrics> metrics(2);
  metrics[0].global_load_transactions = 100;
  metrics[0].l1_hit_rate = 0.2;
  metrics[1].global_load_transactions = 300;
  metrics[1].l1_hit_rate = 0.6;

  const MetricAggregate agg = AggregateFull(metrics);
  EXPECT_DOUBLE_EQ(agg.values[2], 400.0);  // global_load = index 2
  EXPECT_DOUBLE_EQ(agg.values[4], 0.4);    // l1_hit_rate = index 4
}

TEST(EstimatorTest, SampledAggregateUsesWeights) {
  std::vector<KernelMetrics> metrics(3);
  metrics[0].fp32_ops = 10;
  metrics[1].fp32_ops = 50;
  metrics[2].fp32_ops = 90;
  metrics[0].branch_efficiency = 1.0;
  metrics[2].branch_efficiency = 0.5;

  SamplingPlan plan;
  plan.entries = {{0, 3.0}, {2, 1.0}};
  const MetricAggregate agg = AggregateSampled(plan, metrics);
  EXPECT_DOUBLE_EQ(agg.values[9], 3.0 * 10 + 1.0 * 90);      // fp32 count
  EXPECT_DOUBLE_EQ(agg.values[11], (3.0 * 1.0 + 0.5) / 4.0);  // rate mean
}

TEST(EstimatorTest, RelativeErrorSemantics) {
  MetricAggregate est, ref;
  est.values[0] = 110;  // count
  ref.values[0] = 100;
  est.values[4] = 0.55;  // rate
  ref.values[4] = 0.50;
  const auto err = MetricAggregate::RelativeError(est, ref);
  EXPECT_NEAR(err[0], 0.10, 1e-12);   // relative for counts
  EXPECT_NEAR(err[4], 0.05, 1e-12);   // absolute for rates
}

TEST(EstimatorTest, OutOfRangePlanIndexThrows) {
  std::vector<KernelMetrics> metrics(1);
  SamplingPlan plan;
  plan.entries = {{5, 1.0}};
  EXPECT_THROW(AggregateSampled(plan, metrics), std::out_of_range);
}

TEST(EstimatorTest, StemSampleReproducesMicroarchMetrics) {
  // The Fig. 14 property: a STEM plan's weighted metric aggregate matches
  // the full workload across all 13 metrics.
  KernelTrace trace = workloads::MakeCasio("bert_infer", 41, 0.05);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 3);

  std::vector<KernelMetrics> metrics;
  metrics.reserve(trace.NumInvocations());
  for (const auto& inv : trace.Invocations())
    metrics.push_back(gpu.Metrics(inv, 3));

  StemRootSampler sampler;
  const SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const MetricAggregate full = AggregateFull(metrics);
  const MetricAggregate sampled = AggregateSampled(plan, metrics);
  const auto err = MetricAggregate::RelativeError(sampled, full);
  for (size_t i = 0; i < KernelMetrics::kCount; ++i)
    EXPECT_LT(err[i], 0.10) << KernelMetrics::Name(i);
}

}  // namespace
}  // namespace stemroot::core
