#include "core/sampler.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hw/hardware_model.h"
#include "workloads/casio.h"
#include "workloads/rodinia.h"

namespace stemroot::core {
namespace {

class StemSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = workloads::MakeCasio("bert_infer", 31, 0.05);
    hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
    gpu.ProfileTrace(trace_, 2);
  }
  KernelTrace trace_;
  StemRootSampler sampler_;
};

TEST_F(StemSamplerTest, PlanIsValidAndWeightCoversWorkload) {
  const SamplingPlan plan = sampler_.BuildPlan(trace_, 1);
  EXPECT_NO_THROW(plan.Validate(trace_.NumInvocations()));
  EXPECT_EQ(plan.method, "STEM");
  EXPECT_GT(plan.NumSamples(), 0u);
  EXPECT_NEAR(plan.TotalWeight(),
              static_cast<double>(trace_.NumInvocations()),
              trace_.NumInvocations() * 1e-9);
}

TEST_F(StemSamplerTest, EstimateWithinTheoreticalBound) {
  const SamplingPlan plan = sampler_.BuildPlan(trace_, 1);
  const double truth = trace_.TotalDurationUs();
  const double estimate = plan.EstimateTotalUs(trace_);
  EXPECT_LT(std::abs(estimate - truth) / truth,
            sampler_.Config().root.stem.epsilon);
  EXPECT_LE(plan.theoretical_error,
            sampler_.Config().root.stem.epsilon * 1.0001);
}

TEST_F(StemSamplerTest, SamplesFarFewerThanWorkload) {
  const SamplingPlan plan = sampler_.BuildPlan(trace_, 1);
  EXPECT_LT(plan.DistinctInvocations().size(),
            trace_.NumInvocations() / 4);
}

TEST_F(StemSamplerTest, DeterministicGivenSeed) {
  const SamplingPlan a = sampler_.BuildPlan(trace_, 5);
  const SamplingPlan b = sampler_.BuildPlan(trace_, 5);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].invocation, b.entries[i].invocation);
    EXPECT_DOUBLE_EQ(a.entries[i].weight, b.entries[i].weight);
  }
  EXPECT_FALSE(sampler_.Deterministic());  // different seeds -> new draws
}

TEST_F(StemSamplerTest, ClusterCountExceedsKernelCount) {
  // ROOT must split at least the multi-context kernels beyond one
  // cluster per name.
  const SamplingPlan plan = sampler_.BuildPlan(trace_, 1);
  EXPECT_GT(plan.num_clusters, trace_.NumKernelTypes());
}

TEST_F(StemSamplerTest, TighterEpsilonSamplesMore) {
  StemRootConfig tight;
  tight.root.stem.epsilon = 0.01;
  StemRootConfig loose;
  loose.root.stem.epsilon = 0.25;
  const SamplingPlan plan_tight =
      StemRootSampler(tight).BuildPlan(trace_, 1);
  const SamplingPlan plan_loose =
      StemRootSampler(loose).BuildPlan(trace_, 1);
  EXPECT_GT(plan_tight.NumSamples(), plan_loose.NumSamples());
}

TEST_F(StemSamplerTest, RejectsUnprofiledTrace) {
  KernelTrace raw = workloads::MakeCasio("bert_infer", 1, 0.01);
  EXPECT_THROW(sampler_.BuildPlan(raw, 1), std::invalid_argument);
  KernelTrace empty("empty");
  EXPECT_THROW(sampler_.BuildPlan(empty, 1), std::invalid_argument);
}

TEST(StemSamplerHeartwallTest, CatchesTheShortFirstInvocation) {
  // heartwall: first-chronological sampling underestimates by ~99.9%
  // (Sec. 5.1); STEM's estimate must stay within epsilon.
  KernelTrace trace = workloads::MakeRodinia("heartwall", 13, 1.0);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 2);
  StemRootSampler sampler;
  const SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const double truth = trace.TotalDurationUs();
  const double estimate = plan.EstimateTotalUs(trace);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.05);
}

TEST(SamplingPlanTest, EstimateAndCostHelpers) {
  SamplingPlan plan;
  plan.entries = {{0, 2.0}, {2, 3.0}, {0, 2.0}};
  const std::vector<double> durations = {10.0, 99.0, 20.0};
  EXPECT_DOUBLE_EQ(plan.EstimateTotalUs(durations),
                   2.0 * 10 + 3.0 * 20 + 2.0 * 10);
  // Distinct cost counts invocation 0 once.
  EXPECT_DOUBLE_EQ(plan.SampledCostUs(durations), 10.0 + 20.0);
  EXPECT_EQ(plan.DistinctInvocations(), (std::vector<uint32_t>{0, 2}));
  EXPECT_DOUBLE_EQ(plan.TotalWeight(), 7.0);
}

TEST(SamplingPlanTest, ValidationCatchesBadEntries) {
  SamplingPlan plan;
  plan.entries = {{5, 1.0}};
  EXPECT_THROW(plan.Validate(3), std::out_of_range);
  plan.entries = {{0, 0.0}};
  EXPECT_THROW(plan.Validate(3), std::out_of_range);
  const std::vector<double> durations = {1.0};
  plan.entries = {{2, 1.0}};
  EXPECT_THROW(plan.EstimateTotalUs(durations), std::out_of_range);
  EXPECT_THROW(plan.SampledCostUs(durations), std::out_of_range);
}

}  // namespace
}  // namespace stemroot::core
