#include "core/streaming_root.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace stemroot::core {
namespace {

std::vector<double> BimodalDurations(size_t per_mode, Rng& rng) {
  std::vector<double> durations;
  for (size_t i = 0; i < per_mode; ++i) {
    durations.push_back(rng.NextGaussian(20.0, 0.6));
    durations.push_back(rng.NextGaussian(200.0, 5.0));
  }
  return durations;
}

TEST(StreamingRootConfigTest, Validation) {
  StreamingRootConfig config;
  EXPECT_NO_THROW(config.Validate());
  config.reservoir_capacity = 4;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.min_split_observations = 1;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.reassess_interval = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.max_clusters = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(StreamingRootTest, RejectsNonPositiveDurations) {
  StreamingRoot root(StreamingRootConfig{}, 1);
  EXPECT_THROW(root.Observe(0.0), std::invalid_argument);
  EXPECT_THROW(root.Observe(-1.0), std::invalid_argument);
}

TEST(StreamingRootTest, CountsAreConserved) {
  Rng rng(3);
  StreamingRoot root(StreamingRootConfig{}, 7);
  const auto durations = BimodalDurations(1500, rng);
  for (double d : durations) root.Observe(d);
  EXPECT_EQ(root.Observations(), durations.size());
  uint64_t total = 0;
  for (const ClusterStats& c : root.Stats()) total += c.n;
  EXPECT_EQ(total, durations.size());
}

TEST(StreamingRootTest, SplitsBimodalStream) {
  Rng rng(5);
  StreamingRoot root(StreamingRootConfig{}, 11);
  for (double d : BimodalDurations(2000, rng)) root.Observe(d);
  const auto stats = root.Stats();
  ASSERT_GE(stats.size(), 2u);
  // Separated modes: at least one cluster per mode, none straddling.
  EXPECT_LT(stats.front().mean, 100.0);
  EXPECT_GT(stats.back().mean, 100.0);
  EXPECT_GE(root.NumSplits(), 1u);
}

TEST(StreamingRootTest, DoesNotSplitNarrowUnimodal) {
  Rng rng(7);
  StreamingRoot root(StreamingRootConfig{}, 13);
  for (int i = 0; i < 5000; ++i) root.Observe(rng.NextGaussian(100.0, 1.0));
  // A 1% CoV population needs no splitting (Eq. 3 already gives m ~ 1);
  // merges must undo any speculative split on early noise.
  EXPECT_LE(root.NumClusters(), 2u);
}

TEST(StreamingRootTest, StatsAreSortedByMean) {
  Rng rng(9);
  StreamingRoot root(StreamingRootConfig{}, 17);
  for (double mode : {15.0, 40.0, 95.0})
    for (int i = 0; i < 2000; ++i)
      root.Observe(rng.NextGaussian(mode, mode * 0.02));
  const auto stats = root.Stats();
  EXPECT_TRUE(std::is_sorted(stats.begin(), stats.end(),
                             [](const ClusterStats& a, const ClusterStats& b) {
                               return a.mean < b.mean;
                             }));
}

TEST(StreamingRootTest, DeterministicForSameFeedOrder) {
  Rng rng(11);
  const auto durations = BimodalDurations(1000, rng);
  StreamingRoot a(StreamingRootConfig{}, 23);
  StreamingRoot b(StreamingRootConfig{}, 23);
  for (double d : durations) a.Observe(d);
  for (double d : durations) b.Observe(d);
  const auto sa = a.Stats();
  const auto sb = b.Stats();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].n, sb[i].n);
    EXPECT_EQ(sa[i].mean, sb[i].mean);
    EXPECT_EQ(sa[i].stddev, sb[i].stddev);
  }
  EXPECT_EQ(a.NumSplits(), b.NumSplits());
  EXPECT_EQ(a.NumMerges(), b.NumMerges());
}

TEST(StreamingRootTest, RespectsMaxClusters) {
  Rng rng(13);
  StreamingRootConfig config;
  config.max_clusters = 2;
  StreamingRoot root(config, 29);
  // A wide lognormal invites many splits; the cap must hold anyway.
  for (int i = 0; i < 8000; ++i) root.Observe(rng.NextLogNormal(2.0, 1.5));
  EXPECT_LE(root.NumClusters(), 2u);
}

TEST(StreamingRootTest, ApproximatesBatchStructure) {
  // The streaming structure is advisory, but on a well-separated stream it
  // should land on the same mode count batch ROOT finds.
  Rng rng(15);
  std::vector<double> durations;
  for (int i = 0; i < 3000; ++i) {
    durations.push_back(rng.NextGaussian(10.0, 0.2));
    durations.push_back(rng.NextGaussian(300.0, 6.0));
  }
  StreamingRootConfig config;
  StreamingRoot streaming(config, 31);
  for (double d : durations) streaming.Observe(d);
  const auto batch = RootCluster1D(durations, config.root);
  // Mode membership: population mass below/above the valley must agree.
  uint64_t stream_low = 0;
  for (const ClusterStats& c : streaming.Stats())
    if (c.mean < 100.0) stream_low += c.n;
  uint64_t batch_low = 0;
  for (const RootCluster& c : batch)
    if (c.stats.mean < 100.0) batch_low += c.stats.n;
  EXPECT_EQ(stream_low, batch_low);
}

// ---------------------------------------------------------------------------
// StreamingTraceClusterer: the per-kernel fan-out StreamTrace folds
// chunks into (DESIGN.md section 16).

/// A two-kernel trace whose durations form well-separated per-kernel
/// streams, deterministic in `seed`.
KernelTrace ClustererTrace(uint64_t seed, int n) {
  Rng rng(seed);
  KernelTrace trace("wl");
  const uint32_t a = trace.InternKernel("a");
  const uint32_t b = trace.InternKernel("b");
  for (int i = 0; i < n; ++i) {
    KernelInvocation inv;
    inv.kernel_id = (i % 3 == 0) ? b : a;
    inv.duration_us = inv.kernel_id == a ? rng.NextGaussian(10.0, 0.5)
                                         : rng.NextGaussian(200.0, 4.0);
    trace.Add(inv);
  }
  return trace;
}

void ExpectClusterersEqual(const StreamingTraceClusterer& x,
                           const StreamingTraceClusterer& y) {
  EXPECT_EQ(x.Observations(), y.Observations());
  EXPECT_EQ(x.TotalClusters(), y.TotalClusters());
  EXPECT_EQ(x.TotalSplits(), y.TotalSplits());
  EXPECT_EQ(x.TotalMerges(), y.TotalMerges());
  const auto sx = x.AllStats();
  const auto sy = y.AllStats();
  ASSERT_EQ(sx.size(), sy.size());
  for (size_t i = 0; i < sx.size(); ++i) {
    EXPECT_EQ(sx[i].n, sy[i].n);
    EXPECT_DOUBLE_EQ(sx[i].mean, sy[i].mean);
    EXPECT_DOUBLE_EQ(sx[i].stddev, sy[i].stddev);
  }
}

TEST(StreamingTraceClustererTest, ChunkSizeNeverChangesTheStructure) {
  // Feeding the same timeline in chunks of 1, 7, or all-at-once must
  // land on the identical structure: chunking is pacing, not modeling.
  const KernelTrace trace = ClustererTrace(3, 900);
  const StreamingRootConfig config;
  const auto invocations = trace.Invocations();
  StreamingTraceClusterer whole(config, trace, 42);
  whole.ObserveChunk(invocations);
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{256}}) {
    StreamingTraceClusterer chunked(config, trace, 42);
    for (size_t i = 0; i < invocations.size(); i += chunk)
      chunked.ObserveChunk(invocations.subspan(
          i, std::min(chunk, invocations.size() - i)));
    ExpectClusterersEqual(whole, chunked);
  }
}

TEST(StreamingTraceClustererTest, RoutesByKernelAndSkipsUnprofiled) {
  KernelTrace trace = ClustererTrace(5, 90);
  // Blank out every third duration: unprofiled invocations are skipped,
  // matching the service-session feed contract.
  size_t blanked = 0;
  for (auto& inv : trace.MutableInvocations())
    if (inv.seq % 3 == 2) {
      inv.duration_us = 0.0;
      ++blanked;
    }
  StreamingTraceClusterer clusterer({}, trace, 42);
  clusterer.ObserveChunk(trace.Invocations());
  EXPECT_EQ(clusterer.NumKernels(), 2u);
  EXPECT_EQ(clusterer.Observations(), trace.NumInvocations() - blanked);
  uint64_t routed = 0;
  for (size_t k = 0; k < clusterer.NumKernels(); ++k)
    for (const ClusterStats& c : clusterer.Root(k).Stats()) routed += c.n;
  EXPECT_EQ(routed, clusterer.Observations());
}

TEST(StreamingTraceClustererTest, ThrowsOnKernelIdOutsideHeader) {
  const KernelTrace trace = ClustererTrace(7, 10);
  StreamingTraceClusterer clusterer({}, trace, 42);
  KernelInvocation bad;
  bad.kernel_id = 99;
  bad.duration_us = 1.0;
  EXPECT_THROW(
      clusterer.ObserveChunk(std::span<const KernelInvocation>(&bad, 1)),
      std::out_of_range);
}

TEST(StreamingTraceClustererTest, PerKernelSeedsAreDecorrelated) {
  // Different master seeds must produce independently-seeded per-kernel
  // roots, while the same seed reproduces the structure exactly.
  const KernelTrace trace = ClustererTrace(9, 600);
  StreamingTraceClusterer x({}, trace, 42);
  StreamingTraceClusterer y({}, trace, 42);
  x.ObserveChunk(trace.Invocations());
  y.ObserveChunk(trace.Invocations());
  ExpectClusterersEqual(x, y);
}

}  // namespace
}  // namespace stemroot::core
