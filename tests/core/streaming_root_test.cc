#include "core/streaming_root.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace stemroot::core {
namespace {

std::vector<double> BimodalDurations(size_t per_mode, Rng& rng) {
  std::vector<double> durations;
  for (size_t i = 0; i < per_mode; ++i) {
    durations.push_back(rng.NextGaussian(20.0, 0.6));
    durations.push_back(rng.NextGaussian(200.0, 5.0));
  }
  return durations;
}

TEST(StreamingRootConfigTest, Validation) {
  StreamingRootConfig config;
  EXPECT_NO_THROW(config.Validate());
  config.reservoir_capacity = 4;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.min_split_observations = 1;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.reassess_interval = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = StreamingRootConfig{};
  config.max_clusters = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(StreamingRootTest, RejectsNonPositiveDurations) {
  StreamingRoot root(StreamingRootConfig{}, 1);
  EXPECT_THROW(root.Observe(0.0), std::invalid_argument);
  EXPECT_THROW(root.Observe(-1.0), std::invalid_argument);
}

TEST(StreamingRootTest, CountsAreConserved) {
  Rng rng(3);
  StreamingRoot root(StreamingRootConfig{}, 7);
  const auto durations = BimodalDurations(1500, rng);
  for (double d : durations) root.Observe(d);
  EXPECT_EQ(root.Observations(), durations.size());
  uint64_t total = 0;
  for (const ClusterStats& c : root.Stats()) total += c.n;
  EXPECT_EQ(total, durations.size());
}

TEST(StreamingRootTest, SplitsBimodalStream) {
  Rng rng(5);
  StreamingRoot root(StreamingRootConfig{}, 11);
  for (double d : BimodalDurations(2000, rng)) root.Observe(d);
  const auto stats = root.Stats();
  ASSERT_GE(stats.size(), 2u);
  // Separated modes: at least one cluster per mode, none straddling.
  EXPECT_LT(stats.front().mean, 100.0);
  EXPECT_GT(stats.back().mean, 100.0);
  EXPECT_GE(root.NumSplits(), 1u);
}

TEST(StreamingRootTest, DoesNotSplitNarrowUnimodal) {
  Rng rng(7);
  StreamingRoot root(StreamingRootConfig{}, 13);
  for (int i = 0; i < 5000; ++i) root.Observe(rng.NextGaussian(100.0, 1.0));
  // A 1% CoV population needs no splitting (Eq. 3 already gives m ~ 1);
  // merges must undo any speculative split on early noise.
  EXPECT_LE(root.NumClusters(), 2u);
}

TEST(StreamingRootTest, StatsAreSortedByMean) {
  Rng rng(9);
  StreamingRoot root(StreamingRootConfig{}, 17);
  for (double mode : {15.0, 40.0, 95.0})
    for (int i = 0; i < 2000; ++i)
      root.Observe(rng.NextGaussian(mode, mode * 0.02));
  const auto stats = root.Stats();
  EXPECT_TRUE(std::is_sorted(stats.begin(), stats.end(),
                             [](const ClusterStats& a, const ClusterStats& b) {
                               return a.mean < b.mean;
                             }));
}

TEST(StreamingRootTest, DeterministicForSameFeedOrder) {
  Rng rng(11);
  const auto durations = BimodalDurations(1000, rng);
  StreamingRoot a(StreamingRootConfig{}, 23);
  StreamingRoot b(StreamingRootConfig{}, 23);
  for (double d : durations) a.Observe(d);
  for (double d : durations) b.Observe(d);
  const auto sa = a.Stats();
  const auto sb = b.Stats();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].n, sb[i].n);
    EXPECT_EQ(sa[i].mean, sb[i].mean);
    EXPECT_EQ(sa[i].stddev, sb[i].stddev);
  }
  EXPECT_EQ(a.NumSplits(), b.NumSplits());
  EXPECT_EQ(a.NumMerges(), b.NumMerges());
}

TEST(StreamingRootTest, RespectsMaxClusters) {
  Rng rng(13);
  StreamingRootConfig config;
  config.max_clusters = 2;
  StreamingRoot root(config, 29);
  // A wide lognormal invites many splits; the cap must hold anyway.
  for (int i = 0; i < 8000; ++i) root.Observe(rng.NextLogNormal(2.0, 1.5));
  EXPECT_LE(root.NumClusters(), 2u);
}

TEST(StreamingRootTest, ApproximatesBatchStructure) {
  // The streaming structure is advisory, but on a well-separated stream it
  // should land on the same mode count batch ROOT finds.
  Rng rng(15);
  std::vector<double> durations;
  for (int i = 0; i < 3000; ++i) {
    durations.push_back(rng.NextGaussian(10.0, 0.2));
    durations.push_back(rng.NextGaussian(300.0, 6.0));
  }
  StreamingRootConfig config;
  StreamingRoot streaming(config, 31);
  for (double d : durations) streaming.Observe(d);
  const auto batch = RootCluster1D(durations, config.root);
  // Mode membership: population mass below/above the valley must agree.
  uint64_t stream_low = 0;
  for (const ClusterStats& c : streaming.Stats())
    if (c.mean < 100.0) stream_low += c.n;
  uint64_t batch_low = 0;
  for (const RootCluster& c : batch)
    if (c.stats.mean < 100.0) batch_low += c.stats.n;
  EXPECT_EQ(stream_low, batch_low);
}

}  // namespace
}  // namespace stemroot::core
