#include "core/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace stemroot::core {
namespace {

TEST(Kmeans1DTest, SeparatesTwoModes) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextGaussian(10, 1));
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextGaussian(100, 5));
  const KmeansResult result = Kmeans1D(values, 2);

  // Every point from mode A in one cluster, mode B in the other.
  const uint32_t cluster_a = result.assignment[0];
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(result.assignment[i], cluster_a);
  for (int i = 500; i < 1000; ++i)
    EXPECT_NE(result.assignment[i], cluster_a);

  std::vector<double> centers = result.centers;
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 10.0, 1.0);
  EXPECT_NEAR(centers[1], 100.0, 2.0);
}

TEST(Kmeans1DTest, ThreeModesWithKThree) {
  Rng rng(7);
  std::vector<double> values;
  for (double mode : {20.0, 50.0, 90.0})
    for (int i = 0; i < 300; ++i)
      values.push_back(rng.NextGaussian(mode, 1.5));
  const KmeansResult result = Kmeans1D(values, 3);
  std::vector<double> centers = result.centers;
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 20.0, 2.0);
  EXPECT_NEAR(centers[1], 50.0, 2.0);
  EXPECT_NEAR(centers[2], 90.0, 2.0);
}

TEST(Kmeans1DTest, DeterministicWithoutRng) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble(0, 100));
  const KmeansResult a = Kmeans1D(values, 4);
  const KmeansResult b = Kmeans1D(values, 4);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centers, b.centers);
}

TEST(Kmeans1DTest, InertiaDecreasesWithK) {
  Rng rng(13);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble(0, 100));
  double prev = Kmeans1D(values, 1).inertia;
  for (uint32_t k = 2; k <= 5; ++k) {
    const double inertia = Kmeans1D(values, k).inertia;
    EXPECT_LE(inertia, prev * 1.0001);
    prev = inertia;
  }
}

TEST(Kmeans1DTest, KOneIsTheMean) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 6.0};
  const KmeansResult result = Kmeans1D(values, 1);
  EXPECT_DOUBLE_EQ(result.centers[0], 3.0);
  for (uint32_t a : result.assignment) EXPECT_EQ(a, 0u);
}

TEST(Kmeans1DTest, ConstantDataHandled) {
  const std::vector<double> values(100, 5.0);
  const KmeansResult result = Kmeans1D(values, 2);
  // All points land in one cluster; no crash, assignments valid.
  for (uint32_t a : result.assignment) EXPECT_LT(a, 2u);
}

TEST(Kmeans1DTest, Validation) {
  const std::vector<double> values = {1.0};
  EXPECT_THROW(Kmeans1D(values, 0), std::invalid_argument);
  EXPECT_THROW(Kmeans1D({}, 2), std::invalid_argument);
}

TEST(KmeansNdTest, SeparatesBlobs) {
  Rng rng(17);
  std::vector<double> points;  // 2-D
  for (int i = 0; i < 300; ++i) {
    points.push_back(rng.NextGaussian(0, 1));
    points.push_back(rng.NextGaussian(0, 1));
  }
  for (int i = 0; i < 300; ++i) {
    points.push_back(rng.NextGaussian(20, 1));
    points.push_back(rng.NextGaussian(20, 1));
  }
  const KmeansResult result = KmeansNd(points, 2, 2);
  const uint32_t first = result.assignment[0];
  for (int i = 0; i < 300; ++i) EXPECT_EQ(result.assignment[i], first);
  for (int i = 300; i < 600; ++i) EXPECT_NE(result.assignment[i], first);
}

TEST(KmeansNdTest, InertiaZeroWhenKEqualsDistinctPoints) {
  // 3 distinct points, k = 3 -> every point is its own center.
  const std::vector<double> points = {0.0, 0.0, 10.0, 0.0, 0.0, 10.0};
  const KmeansResult result = KmeansNd(points, 2, 3);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KmeansNdTest, Validation) {
  const std::vector<double> points = {1.0, 2.0, 3.0};
  EXPECT_THROW(KmeansNd(points, 2, 2), std::invalid_argument);  // 3 % 2 != 0
  EXPECT_THROW(KmeansNd(points, 0, 2), std::invalid_argument);
  EXPECT_THROW(KmeansNd(points, 3, 0), std::invalid_argument);
  EXPECT_THROW(KmeansNd({}, 2, 2), std::invalid_argument);
}

/// Property: assignments always index a real cluster and every cluster
/// center equals the mean of its assigned points after convergence.
class KmeansPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KmeansPropertyTest, CentersAreClusterMeans) {
  Rng rng(DeriveSeed(7, static_cast<uint64_t>(GetParam())));
  std::vector<double> values;
  const size_t n = 50 + rng.NextBounded(500);
  for (size_t i = 0; i < n; ++i)
    values.push_back(rng.NextLogNormal(3.0, 1.0));
  const uint32_t k = 2 + static_cast<uint32_t>(rng.NextBounded(4));
  const KmeansResult result = Kmeans1D(values, k, 200);

  std::vector<double> sums(k, 0.0);
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LT(result.assignment[i], k);
    sums[result.assignment[i]] += values[i];
    ++counts[result.assignment[i]];
  }
  for (uint32_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    EXPECT_NEAR(result.centers[c], sums[c] / static_cast<double>(counts[c]),
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomData, KmeansPropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace stemroot::core
