/// \file
/// Golden-value pins for the statistical core: STEM's Eq. 2/3 sample sizes
/// and the KKT allocations of Sec. 3.3, checked against hand-computed
/// constants. The parallel evaluation engine refactors around this math --
/// these pins guarantee a scheduling or vectorization change can't silently
/// drift the numbers the whole evaluation rests on. Derivations are inlined
/// as comments; z = z_{0.975} = 1.9599639845400545 throughout.

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"
#include "core/kkt.h"
#include "core/stem.h"

namespace stemroot::core {
namespace {

constexpr double kZ975 = 1.9599639845400545;

StemConfig DefaultConfig() {
  StemConfig config;  // epsilon 0.05, confidence 0.95, min_samples 1
  return config;
}

TEST(GoldenValuesTest, ZScoreMatchesStandardNormalTable) {
  // The paper rounds to 1.96; the library promises |error| < 1e-9 against
  // the exact quantile.
  EXPECT_NEAR(ZScore(0.95), kZ975, 1e-9);
  EXPECT_NEAR(ZScore(0.99), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(ZScore(0.90), 1.6448536269514722, 1e-9);
}

TEST(GoldenValuesTest, Eq3SampleSizesPinned) {
  // m = ceil((z / eps * sigma/mu)^2).
  //
  //   CoV 0.5, eps 0.05: (z * 10)^2   = 384.14588...  -> 385
  //     (the classic "n = 385" survey sample size)
  //   CoV 1.0, eps 0.05: (z * 20)^2   = 1536.58353... -> 1537
  //   CoV 0.3, eps 0.02: (z * 15)^2   =  864.32823... -> 865
  //   CoV 0.2, eps 0.10: (z *  4)^2   =   15.36584... -> 16
  const StemConfig config = DefaultConfig();

  ClusterStats c;
  c.n = 1000000;  // large population: no cap
  c.mean = 100.0;
  c.stddev = 50.0;
  EXPECT_EQ(SingleClusterSampleSize(c, config), 385u);

  c.stddev = 100.0;
  EXPECT_EQ(SingleClusterSampleSize(c, config), 1537u);

  StemConfig tight = config;
  tight.epsilon = 0.02;
  c.stddev = 30.0;
  EXPECT_EQ(SingleClusterSampleSize(c, tight), 865u);

  StemConfig loose = config;
  loose.epsilon = 0.10;
  c.stddev = 20.0;
  EXPECT_EQ(SingleClusterSampleSize(c, loose), 16u);
}

TEST(GoldenValuesTest, Eq3CapsAndFloors) {
  const StemConfig config = DefaultConfig();

  // Population cap: CoV 0.5 wants 385, but only 100 invocations exist.
  ClusterStats small;
  small.n = 100;
  small.mean = 100.0;
  small.stddev = 50.0;
  EXPECT_EQ(SingleClusterSampleSize(small, config), 100u);

  // Degenerate (sigma = 0): the floor, capped at the population.
  ClusterStats flat;
  flat.n = 50;
  flat.mean = 10.0;
  flat.stddev = 0.0;
  EXPECT_EQ(SingleClusterSampleSize(flat, config), 1u);
  StemConfig floored = config;
  floored.min_samples = 3;
  EXPECT_EQ(SingleClusterSampleSize(flat, floored), 3u);
  flat.n = 2;
  EXPECT_EQ(SingleClusterSampleSize(flat, floored), 2u);

  // Empty cluster contributes nothing.
  ClusterStats empty;
  EXPECT_EQ(SingleClusterSampleSize(empty, config), 0u);
}

TEST(GoldenValuesTest, Eq2TheoreticalErrorPinned) {
  // err = z * (sigma/mu) / sqrt(m).
  //   CoV 0.5, m 385: 1.9599639845.../2 / sqrt(385) = 0.04994450700...
  //     (Eq. 3's m = 385 lands just under eps = 0.05: the inversion is
  //      exact up to the ceil)
  //   CoV 0.5, m 100: z/2/10 = 0.09799819922700...
  const StemConfig config = DefaultConfig();
  ClusterStats c;
  c.n = 1000000;
  c.mean = 100.0;
  c.stddev = 50.0;
  EXPECT_NEAR(TheoreticalError(c, 385, config), 0.049944507001986826, 1e-9);
  EXPECT_LT(TheoreticalError(c, 385, config), config.epsilon);
  EXPECT_NEAR(TheoreticalError(c, 100, config), 0.09799819922700273, 1e-9);
}

TEST(GoldenValuesTest, KktInteriorAllocationPinned) {
  // Two clusters, eps 0.05 (paper Eq. 6 with a_i = mu_i,
  // b_i = N_i^2 sigma_i^2, c = (eps * sum N_i mu_i / z)^2):
  //   C1: N 1000, mu  10, sigma  5 -> sqrt(a1 b1) = sqrt(10 * 2.5e7)
  //   C2: N 1000, mu 100, sigma 10 -> sqrt(a2 b2) = sqrt(100 * 1e8)
  //   sum N_i mu_i = 110000, budget c = (5500/z)^2 = 7874612.5917...
  //   S = 15811.388... + 100000 = 115811.388...
  //   m1 = S/c * sqrt(2.5e7/10)  = 23.2537... -> ceil 24
  //   m2 = S/c * sqrt(1e8/100)   = 14.7069... -> ceil 15
  //   cost = 24*10 + 15*100 = 1740 us
  //   err  = z * sqrt(1e6*25/24 + 1e6*100/15) / 110000 = 0.0494692868...
  const StemConfig config = DefaultConfig();
  const std::vector<ClusterStats> clusters = {
      {.n = 1000, .mean = 10.0, .stddev = 5.0},
      {.n = 1000, .mean = 100.0, .stddev = 10.0},
  };
  const KktSolution solution = SolveKkt(clusters, config);
  ASSERT_EQ(solution.sample_sizes.size(), 2u);
  EXPECT_EQ(solution.sample_sizes[0], 24u);
  EXPECT_EQ(solution.sample_sizes[1], 15u);
  EXPECT_NEAR(solution.cost_us, 1740.0, 1e-9);
  EXPECT_NEAR(solution.theoretical_error, 0.04946928680378061, 1e-9);
  EXPECT_LE(solution.theoretical_error, config.epsilon);
}

TEST(GoldenValuesTest, KktExhaustiveClampPinned) {
  // A tiny high-variance cluster whose closed-form m exceeds its
  // population is simulated exhaustively and the remainder re-solved:
  //   C1: N 50,    mu  1, sigma 1000 -> round-1 m_real = 626.47... >> 50
  //   C2: N 10000, mu 10, sigma    1
  //   round 1: C1 clamps to 50 (exhaustive); round 2 re-solves {C2} alone:
  //   m2 = 15.3505... -> ceil 16
  //   cost = 50*1 + 16*10 = 210 us
  //   err  = z * sqrt(1e8/16) / 100050 = 0.04897461230... (C1 contributes
  //   zero variance; tighter than eps, as re-solving only shrinks error)
  const StemConfig config = DefaultConfig();
  const std::vector<ClusterStats> clusters = {
      {.n = 50, .mean = 1.0, .stddev = 1000.0},
      {.n = 10000, .mean = 10.0, .stddev = 1.0},
  };
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 50u);  // exhaustive
  EXPECT_EQ(solution.sample_sizes[1], 16u);
  EXPECT_NEAR(solution.cost_us, 210.0, 1e-9);
  EXPECT_NEAR(solution.theoretical_error, 0.04897461230734769, 1e-9);
  EXPECT_LE(solution.theoretical_error, config.epsilon);
}

TEST(GoldenValuesTest, KktDegenerateClusterPinned) {
  // sigma = 0 clusters take the min_samples floor and drop out of the
  // optimization:
  //   C1: N 100,  mu  5, sigma 0 -> m1 = 1
  //   C2: N 1000, mu 10, sigma 2 -> active set is {C2} alone:
  //   sum N_i mu_i = 10500, c = (525/z)^2, S = sqrt(10 * 4e6)
  //   m2 = 55.75... -> ceil 56, cost = 1*5 + 56*10 = 565 us
  //   err = z * sqrt(4e6/56) / 10500 = 0.04988784843...
  const StemConfig config = DefaultConfig();
  const std::vector<ClusterStats> clusters = {
      {.n = 100, .mean = 5.0, .stddev = 0.0},
      {.n = 1000, .mean = 10.0, .stddev = 2.0},
  };
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 1u);
  EXPECT_EQ(solution.sample_sizes[1], 56u);
  EXPECT_NEAR(solution.cost_us, 565.0, 1e-9);
  EXPECT_NEAR(solution.theoretical_error, 0.04988784843921893, 1e-9);
}

TEST(GoldenValuesTest, JointKktBeatsPerClusterSizing) {
  // The paper's Sec. 3.3 claim on the pinned interior case: independent
  // Eq. 3 sizing spends m1 = 385 (CoV 0.5) + m2 = 16 (CoV 0.1)
  // -> cost 385*10 + 16*100 = 5450 us vs the joint 1740 us (3.1x).
  const StemConfig config = DefaultConfig();
  const std::vector<ClusterStats> clusters = {
      {.n = 1000, .mean = 10.0, .stddev = 5.0},
      {.n = 1000, .mean = 100.0, .stddev = 10.0},
  };
  const KktSolution per_cluster = SolvePerCluster(clusters, config);
  EXPECT_EQ(per_cluster.sample_sizes[0], 385u);
  EXPECT_EQ(per_cluster.sample_sizes[1], 16u);
  EXPECT_NEAR(per_cluster.cost_us, 5450.0, 1e-9);

  const KktSolution joint = SolveKkt(clusters, config);
  EXPECT_LT(joint.cost_us, per_cluster.cost_us);
  EXPECT_GT(per_cluster.cost_us / joint.cost_us, 3.0);
}

TEST(GoldenValuesTest, MultiClusterErrorMatchesKktReport) {
  // MultiClusterError on the pinned interior allocation reproduces the
  // solver's own theoretical_error (no exhaustive clusters involved).
  const StemConfig config = DefaultConfig();
  const std::vector<ClusterStats> clusters = {
      {.n = 1000, .mean = 10.0, .stddev = 5.0},
      {.n = 1000, .mean = 100.0, .stddev = 10.0},
  };
  const std::vector<uint64_t> sizes = {24, 15};
  EXPECT_NEAR(MultiClusterError(clusters, sizes, config),
              0.04946928680378061, 1e-9);
}

}  // namespace
}  // namespace stemroot::core
