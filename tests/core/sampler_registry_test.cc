#include "core/sampler_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "baselines/registry.h"
#include "core/sampler.h"

namespace stemroot::core {
namespace {

class SamplerRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { baselines::EnsureBuiltinSamplers(); }
};

TEST_F(SamplerRegistryTest, GlobalKnowsEveryBuiltin) {
  const std::vector<std::string> expected = {"photon", "pka",  "random",
                                             "sieve",  "stem", "tbpoint"};
  EXPECT_EQ(SamplerRegistry::Global().Names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(SamplerRegistry::Global().Contains(name)) << name;
    const std::unique_ptr<Sampler> sampler =
        SamplerRegistry::Global().Create(name);
    ASSERT_NE(sampler, nullptr) << name;
    EXPECT_FALSE(sampler->Name().empty()) << name;
  }
  EXPECT_FALSE(SamplerRegistry::Global().Contains("foo"));
}

TEST_F(SamplerRegistryTest, UnknownNameErrorListsRegistered) {
  try {
    SamplerRegistry::Global().Create("foo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown sampler 'foo'"), std::string::npos)
        << message;
    // The listing is sorted and stable, so error messages (and the CLI
    // help that surfaces them) are byte-identical run to run.
    size_t previous = 0;
    for (const char* name :
         {"photon", "pka", "random", "sieve", "stem", "tbpoint"}) {
      const size_t at = message.find(name, previous);
      ASSERT_NE(at, std::string::npos) << name << " in: " << message;
      EXPECT_GE(at, previous) << message;
      previous = at;
    }
  }
}

TEST_F(SamplerRegistryTest, NamesAreSortedAndStable) {
  const std::vector<std::string> first = SamplerRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(first, SamplerRegistry::Global().Names());
}

TEST_F(SamplerRegistryTest, DuplicateOrEmptyRegistrationThrows) {
  EXPECT_THROW(SamplerRegistry::Global().Register(
                   "stem", [](const SamplerParams&) {
                     return std::unique_ptr<Sampler>();
                   }),
               std::invalid_argument);
  SamplerRegistry local;
  EXPECT_THROW(local.Register("", [](const SamplerParams&) {
    return std::unique_ptr<Sampler>();
  }),
               std::invalid_argument);
}

TEST_F(SamplerRegistryTest, FactoriesHonorParams) {
  const std::unique_ptr<Sampler> stem = SamplerRegistry::Global().Create(
      "stem", SamplerParams().Set("epsilon", 0.25).Set("branch_k", int64_t{3}));
  const auto* typed = dynamic_cast<const StemRootSampler*>(stem.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->Config().root.stem.epsilon, 0.25);
  EXPECT_EQ(typed->Config().root.branch_k, 3u);

  const std::unique_ptr<Sampler> random = SamplerRegistry::Global().Create(
      "random", SamplerParams().Set("probability", 0.01));
  EXPECT_EQ(random->Name(), "Random(1%)");

  const std::unique_ptr<Sampler> pka = SamplerRegistry::Global().Create(
      "pka", SamplerParams().Set("random_representative", true));
  EXPECT_NE(pka->Name().find("random-rep"), std::string::npos) << pka->Name();
}

TEST(SamplerParamsTest, TypedGettersParseAndFallBack) {
  SamplerParams params;
  params.Set("s", "hello")
      .Set("d", 0.5)
      .Set("i", int64_t{42})
      .Set("b", true);
  EXPECT_TRUE(params.Has("s"));
  EXPECT_FALSE(params.Has("missing"));
  EXPECT_EQ(params.GetString("s", ""), "hello");
  EXPECT_DOUBLE_EQ(params.GetDouble("d", 0.0), 0.5);
  EXPECT_EQ(params.GetInt("i", 0), 42);
  EXPECT_TRUE(params.GetBool("b", false));
  EXPECT_EQ(params.GetString("missing", "fb"), "fb");
  EXPECT_DOUBLE_EQ(params.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(params.GetInt("missing", 7), 7);
  EXPECT_FALSE(params.GetBool("missing", false));
}

TEST(SamplerParamsTest, MalformedValuesThrow) {
  SamplerParams params;
  params.Set("x", "not-a-number");
  EXPECT_THROW(params.GetDouble("x", 0.0), std::invalid_argument);
  EXPECT_THROW(params.GetInt("x", 0), std::invalid_argument);
  EXPECT_THROW(params.GetBool("x", false), std::invalid_argument);
  EXPECT_EQ(params.GetString("x", ""), "not-a-number");
}

}  // namespace
}  // namespace stemroot::core
