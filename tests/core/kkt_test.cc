#include "core/kkt.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stemroot::core {
namespace {

std::vector<ClusterStats> TypicalClusters() {
  return {
      {50000, 120.0, 15.0},  // frequent, fairly stable GEMM peak
      {20000, 40.0, 18.0},   // memory-bound elementwise, wide
      {5000, 900.0, 90.0},   // rare long kernel
      {80000, 10.0, 1.0},    // tiny stable kernel
  };
}

TEST(KktTest, SolutionSatisfiesErrorBound) {
  const auto clusters = TypicalClusters();
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_LE(solution.theoretical_error, config.epsilon * 1.0001);
  for (size_t i = 0; i < clusters.size(); ++i) {
    EXPECT_GE(solution.sample_sizes[i], 1u);
    EXPECT_LE(solution.sample_sizes[i], clusters[i].n);
  }
}

TEST(KktTest, JointBeatsPerClusterSizing) {
  // Sec. 3.3: the joint optimization reduces total sample cost ~2-3x vs.
  // applying Eq. (3) per cluster.
  const auto clusters = TypicalClusters();
  StemConfig config;
  const KktSolution joint = SolveKkt(clusters, config);
  const KktSolution naive = SolvePerCluster(clusters, config);
  EXPECT_LT(joint.cost_us, naive.cost_us);
  EXPECT_GT(naive.cost_us / joint.cost_us, 1.5);
}

TEST(KktTest, PerClusterAlsoSatisfiesBound) {
  const auto clusters = TypicalClusters();
  StemConfig config;
  const KktSolution naive = SolvePerCluster(clusters, config);
  EXPECT_LE(naive.theoretical_error, config.epsilon * 1.0001);
}

TEST(KktTest, SymmetricClustersGetEqualSamples) {
  const std::vector<ClusterStats> clusters = {{10000, 50.0, 10.0},
                                              {10000, 50.0, 10.0}};
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], solution.sample_sizes[1]);
}

TEST(KktTest, NoisierClusterGetsMoreSamples) {
  const std::vector<ClusterStats> clusters = {{10000, 50.0, 5.0},
                                              {10000, 50.0, 25.0}};
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_GT(solution.sample_sizes[1], solution.sample_sizes[0] * 2);
}

TEST(KktTest, DegenerateClusterGetsFloorOnly) {
  const std::vector<ClusterStats> clusters = {{10000, 50.0, 0.0},
                                              {10000, 50.0, 20.0}};
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 1u);
  EXPECT_GT(solution.sample_sizes[1], 1u);
}

TEST(KktTest, EmptyClusterGetsZero) {
  const std::vector<ClusterStats> clusters = {{0, 0.0, 0.0},
                                              {1000, 50.0, 20.0}};
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 0u);
  EXPECT_GT(solution.sample_sizes[1], 0u);
}

TEST(KktTest, DominantVolatileTinyClusterBecomesExhaustive) {
  // A tiny cluster that dominates total time with huge variance wants far
  // more samples than it has members: it must be simulated fully and its
  // variance excluded from the bound.
  const std::vector<ClusterStats> clusters = {{5, 1e5, 3e5},
                                              {100000, 1.0, 0.5}};
  StemConfig config;
  config.epsilon = 0.01;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 5u);
  EXPECT_GT(solution.sample_sizes[1], 1u);
  EXPECT_LT(solution.sample_sizes[1], 100000u);
  EXPECT_LE(solution.theoretical_error, config.epsilon * 1.0001);
}

TEST(KktTest, AllExhaustiveYieldsZeroError) {
  const std::vector<ClusterStats> clusters = {{3, 10.0, 20.0},
                                              {2, 5.0, 10.0}};
  StemConfig config;
  config.epsilon = 0.001;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_EQ(solution.sample_sizes[0], 3u);
  EXPECT_EQ(solution.sample_sizes[1], 2u);
  EXPECT_DOUBLE_EQ(solution.theoretical_error, 0.0);
}

TEST(KktTest, NonPositiveMeanRejected) {
  const std::vector<ClusterStats> clusters = {{100, 0.0, 1.0}};
  StemConfig config;
  EXPECT_THROW(SolveKkt(clusters, config), std::invalid_argument);
}

TEST(KktTest, CostMatchesSampleCostHelper) {
  const auto clusters = TypicalClusters();
  StemConfig config;
  const KktSolution solution = SolveKkt(clusters, config);
  EXPECT_NEAR(solution.cost_us,
              SampleCost(clusters, solution.sample_sizes), 1e-9);
}

/// Property sweep: the joint solution never costs more than per-cluster
/// sizing and always meets the bound, across random cluster sets.
class KktPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KktPropertyTest, JointIsFeasibleAndNoWorse) {
  Rng rng(DeriveSeed(99, static_cast<uint64_t>(GetParam())));
  const size_t k = 1 + rng.NextBounded(12);
  std::vector<ClusterStats> clusters;
  for (size_t i = 0; i < k; ++i) {
    ClusterStats c;
    c.n = 1 + rng.NextBounded(200000);
    c.mean = rng.NextDouble(0.5, 2000.0);
    c.stddev = rng.NextDouble(0.0, c.mean * 2.0);
    clusters.push_back(c);
  }
  StemConfig config;
  config.epsilon = rng.NextDouble(0.01, 0.25);

  const KktSolution joint = SolveKkt(clusters, config);
  const KktSolution naive = SolvePerCluster(clusters, config);
  EXPECT_LE(joint.theoretical_error, config.epsilon * 1.0001);
  // Ceiling effects can cost a few mu_i; allow a tiny slack.
  EXPECT_LE(joint.cost_us, naive.cost_us * 1.05 + 1e-6);
  for (size_t i = 0; i < k; ++i)
    EXPECT_LE(joint.sample_sizes[i], clusters[i].n);
}

INSTANTIATE_TEST_SUITE_P(RandomClusterSets, KktPropertyTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace stemroot::core
