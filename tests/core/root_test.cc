#include "core/root.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/kkt.h"

namespace stemroot::core {
namespace {

std::vector<double> BimodalDurations(size_t per_mode, Rng& rng) {
  std::vector<double> durations;
  for (size_t i = 0; i < per_mode; ++i)
    durations.push_back(rng.NextGaussian(20.0, 0.6));
  for (size_t i = 0; i < per_mode; ++i)
    durations.push_back(rng.NextGaussian(200.0, 5.0));
  return durations;
}

TEST(RootConfigTest, Validation) {
  RootConfig config;
  EXPECT_NO_THROW(config.Validate());
  config.branch_k = 1;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = RootConfig{};
  config.min_split_size = 1;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config = RootConfig{};
  config.max_depth = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

TEST(RootTest, SplitsBimodalPopulation) {
  Rng rng(3);
  const auto durations = BimodalDurations(2000, rng);
  const auto clusters = RootCluster1D(durations, RootConfig{});
  ASSERT_GE(clusters.size(), 2u);

  // Each final cluster must be unimodal-ish: no cluster spans both modes.
  for (const RootCluster& c : clusters) {
    EXPECT_TRUE(c.stats.mean < 100.0 || c.stats.mean > 100.0);
    for (uint32_t idx : c.members) {
      const bool low_mode = durations[idx] < 100.0;
      EXPECT_EQ(low_mode, c.stats.mean < 100.0);
    }
  }
}

TEST(RootTest, DoesNotSplitNarrowUnimodal) {
  Rng rng(5);
  std::vector<double> durations;
  for (int i = 0; i < 5000; ++i)
    durations.push_back(rng.NextGaussian(100.0, 1.0));
  const auto clusters = RootCluster1D(durations, RootConfig{});
  // A 1% CoV population needs no splitting: Eq. (3) already gives m ~ 1.
  EXPECT_LE(clusters.size(), 2u);
}

TEST(RootTest, PartitionIsExactAndDisjoint) {
  Rng rng(7);
  std::vector<double> durations;
  for (int i = 0; i < 3000; ++i)
    durations.push_back(rng.NextLogNormal(3.0, 0.8));
  const auto clusters = RootCluster1D(durations, RootConfig{});

  std::set<uint32_t> seen;
  for (const RootCluster& c : clusters) {
    EXPECT_EQ(c.members.size(), c.stats.n);
    for (uint32_t idx : c.members) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate member " << idx;
      EXPECT_LT(idx, durations.size());
    }
  }
  EXPECT_EQ(seen.size(), durations.size());
}

TEST(RootTest, SplittingReducesPredictedCost) {
  // The accepted hierarchy must never predict a higher simulated time
  // than treating the kernel as one cluster (Eqs. 7/8).
  Rng rng(9);
  const auto durations = BimodalDurations(3000, rng);
  RootConfig config;

  const ClusterStats whole = ClusterStats::Of(durations);
  const double tau_old = static_cast<double>(SingleClusterSampleSize(
                             whole, config.stem)) * whole.mean;

  const auto clusters = RootCluster1D(durations, config);
  std::vector<ClusterStats> stats;
  for (const auto& c : clusters) stats.push_back(c.stats);
  const double tau_new = SolveKkt(stats, config.stem).cost_us;
  EXPECT_LT(tau_new, tau_old);
}

TEST(RootTest, ThreePeaksYieldAtLeastThreeClusters) {
  // The bn_fw_inf case from Fig. 1: three separated peaks.
  Rng rng(11);
  std::vector<double> durations;
  for (double mode : {15.0, 40.0, 95.0})
    for (int i = 0; i < 4000; ++i)
      durations.push_back(rng.NextGaussian(mode, mode * 0.02));
  const auto clusters = RootCluster1D(durations, RootConfig{});
  EXPECT_GE(clusters.size(), 3u);
}

TEST(RootTest, RespectsMinSplitSize) {
  Rng rng(13);
  auto durations = BimodalDurations(3, rng);  // 6 points total
  RootConfig config;
  config.min_split_size = 100;
  const auto clusters = RootCluster1D(durations, config);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(RootTest, RespectsMaxDepth) {
  Rng rng(15);
  std::vector<double> durations;
  for (int i = 0; i < 10000; ++i)
    durations.push_back(rng.NextLogNormal(2.0, 1.5));
  RootConfig config;
  config.max_depth = 1;
  const auto clusters = RootCluster1D(durations, config);
  EXPECT_LE(clusters.size(), 2u);
  for (const auto& c : clusters) EXPECT_LE(c.depth, 1u);
}

TEST(RootTest, ExternalIndicesArePreserved) {
  Rng rng(17);
  const auto durations = BimodalDurations(500, rng);
  std::vector<uint32_t> indices(durations.size());
  for (size_t i = 0; i < indices.size(); ++i)
    indices[i] = static_cast<uint32_t>(i) * 3 + 7;  // arbitrary mapping
  const auto clusters = RootCluster1D(durations, indices, RootConfig{});
  size_t total = 0;
  for (const auto& c : clusters) {
    for (uint32_t idx : c.members) EXPECT_EQ((idx - 7) % 3, 0u);
    total += c.members.size();
  }
  EXPECT_EQ(total, durations.size());
}

TEST(RootTest, EmptyInputYieldsNoClusters) {
  EXPECT_TRUE(RootCluster1D({}, RootConfig{}).empty());
}

TEST(RootTest, ArityMismatchThrows) {
  const std::vector<double> durations = {1.0, 2.0};
  const std::vector<uint32_t> indices = {0};
  EXPECT_THROW(RootCluster1D(durations, indices, RootConfig{}),
               std::invalid_argument);
}

TEST(RootTest, HigherBranchingAlsoWorks) {
  // Paper: "any number above 2 works well".
  Rng rng(19);
  const auto durations = BimodalDurations(2000, rng);
  RootConfig config;
  config.branch_k = 4;
  const auto clusters = RootCluster1D(durations, config);
  std::set<uint32_t> seen;
  for (const auto& c : clusters)
    for (uint32_t idx : c.members) seen.insert(idx);
  EXPECT_EQ(seen.size(), durations.size());
}

}  // namespace
}  // namespace stemroot::core
