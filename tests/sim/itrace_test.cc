#include "sim/itrace.h"

#include <gtest/gtest.h>

#include <map>

#include "workloads/context_model.h"

namespace stemroot::sim {
namespace {

LaunchConfig Launch(uint32_t ctas, uint32_t threads) {
  LaunchConfig launch;
  launch.grid_x = ctas;
  launch.block_x = threads;
  return launch;
}

class ItraceTest : public ::testing::Test {
 protected:
  SimConfig config_ = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
};

TEST_F(ItraceTest, InstructionCountMatchesPerThreadWork) {
  KernelBehavior b = workloads::ComputeBoundBehavior(1'024'000, 1 << 20);
  const LaunchConfig launch = Launch(4, 256);  // 1024 threads
  WarpProgram program(b, launch, config_, 1, 0, 0);
  EXPECT_EQ(program.InstructionsTotal(), 1000u);
  WarpInstr instr;
  uint64_t count = 0;
  while (program.Next(instr)) ++count;
  EXPECT_EQ(count, 1000u);
  EXPECT_FALSE(program.Next(instr));
}

TEST_F(ItraceTest, DeterministicStreams) {
  KernelBehavior b = workloads::MemoryBoundBehavior(512'000, 4 << 20);
  const LaunchConfig launch = Launch(2, 256);
  WarpProgram p1(b, launch, config_, 7, 0x42, 3);
  WarpProgram p2(b, launch, config_, 7, 0x42, 3);
  WarpInstr i1, i2;
  while (p1.Next(i1)) {
    ASSERT_TRUE(p2.Next(i2));
    EXPECT_EQ(i1.kind, i2.kind);
    EXPECT_EQ(i1.lines, i2.lines);
    EXPECT_EQ(i1.depends_on_prev, i2.depends_on_prev);
  }
}

TEST_F(ItraceTest, DifferentWarpsDiverge) {
  KernelBehavior b = workloads::MemoryBoundBehavior(512'000, 4 << 20);
  const LaunchConfig launch = Launch(2, 256);
  WarpProgram p1(b, launch, config_, 7, 0x42, 0);
  WarpProgram p2(b, launch, config_, 7, 0x42, 1);
  WarpInstr i1, i2;
  int diffs = 0;
  while (p1.Next(i1) && p2.Next(i2))
    diffs += i1.kind != i2.kind ? 1 : 0;
  EXPECT_GT(diffs, 0);
}

TEST_F(ItraceTest, MixMatchesBehaviorFractions) {
  KernelBehavior b = workloads::MemoryBoundBehavior(3'200'000, 8 << 20);
  b.mem_fraction = 0.3f;
  b.shared_fraction = 0.1f;
  const LaunchConfig launch = Launch(1, 32);  // 1 warp does all the work
  WarpProgram program(b, launch, config_, 11, 0, 0);
  std::map<OpKind, uint64_t> counts;
  WarpInstr instr;
  uint64_t total = 0;
  while (program.Next(instr)) {
    ++counts[instr.kind];
    ++total;
  }
  const double mem_frac =
      static_cast<double>(counts[OpKind::kLoad] + counts[OpKind::kStore]) /
      static_cast<double>(total);
  const double shared_frac = static_cast<double>(counts[OpKind::kSharedMem]) /
                             static_cast<double>(total);
  EXPECT_NEAR(mem_frac, 0.3, 0.01);
  EXPECT_NEAR(shared_frac, 0.1, 0.01);
}

TEST_F(ItraceTest, CoalescedKernelTouchesOneLinePerAccess) {
  KernelBehavior b = workloads::MemoryBoundBehavior(320'000, 4 << 20);
  b.coalescing = 1.0f;
  WarpProgram program(b, Launch(1, 32), config_, 13, 0, 0);
  WarpInstr instr;
  while (program.Next(instr)) {
    if (instr.kind == OpKind::kLoad || instr.kind == OpKind::kStore)
      EXPECT_EQ(instr.lines.size(), 1u);
  }
}

TEST_F(ItraceTest, ScatteredKernelTouchesManyLines) {
  KernelBehavior b = workloads::IrregularBehavior(320'000, 64 << 20);
  b.coalescing = 0.0f;
  WarpProgram program(b, Launch(1, 32), config_, 13, 0, 0);
  WarpInstr instr;
  bool saw_mem = false;
  while (program.Next(instr)) {
    if (instr.kind == OpKind::kLoad || instr.kind == OpKind::kStore) {
      saw_mem = true;
      EXPECT_EQ(instr.lines.size(),
                static_cast<size_t>(config_.warp_size));
    }
  }
  EXPECT_TRUE(saw_mem);
}

TEST_F(ItraceTest, AddressesStayInKernelRegion) {
  KernelBehavior b = workloads::MemoryBoundBehavior(640'000, 1 << 20);
  const uint64_t region = 0x7Full << 40;
  WarpProgram program(b, Launch(1, 32), config_, 17, region, 0);
  WarpInstr instr;
  while (program.Next(instr)) {
    for (uint64_t line : instr.lines) {
      EXPECT_GE(line, region);
      EXPECT_LT(line, region + b.footprint_bytes + config_.line_bytes);
    }
  }
}

TEST_F(ItraceTest, DependencyRateFollowsIlp) {
  KernelBehavior b = workloads::ComputeBoundBehavior(3'200'000, 1 << 20);
  b.ilp = 4.0f;
  WarpProgram program(b, Launch(1, 32), config_, 19, 0, 0);
  WarpInstr instr;
  uint64_t deps = 0, total = 0;
  while (program.Next(instr)) {
    deps += instr.depends_on_prev ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(deps) / static_cast<double>(total), 0.25,
              0.02);
}

TEST_F(ItraceTest, Fp16KernelEmitsFp16Ops) {
  KernelBehavior b = workloads::ComputeBoundBehavior(320'000, 1 << 20);
  b.fp16_fraction = 0.5f;
  b.fp32_fraction = 0.2f;
  WarpProgram program(b, Launch(1, 32), config_, 23, 0, 0);
  WarpInstr instr;
  uint64_t fp16 = 0;
  while (program.Next(instr)) fp16 += instr.kind == OpKind::kFp16 ? 1 : 0;
  EXPECT_GT(fp16, 0u);
}

}  // namespace
}  // namespace stemroot::sim
