#include "sim/dram.h"

#include <gtest/gtest.h>

namespace stemroot::sim {
namespace {

TEST(DramTest, SingleRequestPaysTransferPlusLatency) {
  DramModel dram(32.0, 100);
  // 128 bytes at 32 B/cycle = 4 cycles transfer + 100 latency.
  EXPECT_DOUBLE_EQ(dram.Request(0.0, 128), 104.0);
  EXPECT_EQ(dram.BytesTransferred(), 128u);
}

TEST(DramTest, BusSerializesBackToBackRequests) {
  DramModel dram(32.0, 100);
  const double first = dram.Request(0.0, 128);
  const double second = dram.Request(0.0, 128);
  EXPECT_DOUBLE_EQ(second - first, 4.0);  // queued behind the first
}

TEST(DramTest, IdleBusStartsAtRequestTime) {
  DramModel dram(32.0, 100);
  dram.Request(0.0, 128);
  // Long idle gap: next request starts fresh at its own time.
  EXPECT_DOUBLE_EQ(dram.Request(1000.0, 64), 1000.0 + 2.0 + 100.0);
}

TEST(DramTest, ThroughputConvergesToBandwidth) {
  DramModel dram(16.0, 50);
  double finish = 0.0;
  const int requests = 1000;
  for (int i = 0; i < requests; ++i) finish = dram.Request(0.0, 128);
  // Sustained: ~128/16 = 8 cycles per request (latency amortized away).
  EXPECT_NEAR((finish - 50.0) / requests, 8.0, 0.1);
  EXPECT_EQ(dram.BytesTransferred(), 128u * requests);
}

TEST(DramTest, ResetClearsQueueAndStats) {
  DramModel dram(32.0, 100);
  dram.Request(0.0, 128);
  dram.Reset();
  EXPECT_EQ(dram.BytesTransferred(), 0u);
  EXPECT_DOUBLE_EQ(dram.Request(0.0, 128), 104.0);
}

TEST(DramTest, RejectsZeroBandwidth) {
  EXPECT_THROW(DramModel(0.0, 100), std::invalid_argument);
  EXPECT_THROW(DramModel(-5.0, 100), std::invalid_argument);
}

}  // namespace
}  // namespace stemroot::sim
