#include "sim/intra_kernel.h"

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "hw/hardware_model.h"
#include "workloads/context_model.h"
#include "common/rng.h"
#include "workloads/rodinia.h"

namespace stemroot::sim {
namespace {

KernelInvocation LongKernel(uint64_t instructions = 800'000'000) {
  KernelInvocation inv;
  inv.behavior = workloads::ComputeBoundBehavior(instructions, 4 << 20);
  inv.launch.grid_x = 46 * 40;  // 40 CTAs per SM -> many waves
  inv.launch.block_x = 256;
  return inv;
}

class IntraKernelTest : public ::testing::Test {
 protected:
  SimConfig config_ = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
};

TEST_F(IntraKernelTest, OptionsValidation) {
  IntraKernelOptions bad;
  bad.sample_waves = 0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = IntraKernelOptions{};
  bad.min_waves_to_sample = 2;  // <= warmup + sample
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  EXPECT_NO_THROW(IntraKernelOptions{}.Validate());
}

TEST_F(IntraKernelTest, WavePrefixStopsEarly) {
  Simulator simulator(config_);
  const KernelInvocation inv = LongKernel();
  const WaveSimResult all = simulator.SimulateKernelWaves(inv, 1, 0);
  ASSERT_GT(all.total_waves, 6u);
  EXPECT_EQ(all.wave_cycles.size(), all.total_waves);
  const WaveSimResult prefix = simulator.SimulateKernelWaves(inv, 1, 3);
  EXPECT_EQ(prefix.wave_cycles.size(), 3u);
  EXPECT_EQ(prefix.total_waves, all.total_waves);
}

TEST_F(IntraKernelTest, ExtrapolationTracksFullKernel) {
  Simulator full_sim(config_);
  Simulator intra_sim(config_);
  const KernelInvocation inv = LongKernel();
  const double full = full_sim.SimulateKernel(inv, 1).cycles;
  const IntraKernelResult intra = SimulateKernelIntra(intra_sim, inv, 1);
  ASSERT_TRUE(intra.sampled);
  EXPECT_LT(std::abs(intra.estimated_cycles - full) / full, 0.08);
  // The prefix must be much cheaper than the full kernel.
  EXPECT_LT(intra.simulated_cycles, full * 0.4);
  EXPECT_LT(intra.waves_simulated, intra.total_waves);
}

TEST_F(IntraKernelTest, ShortKernelsRunFully) {
  Simulator simulator(config_);
  KernelInvocation inv = LongKernel(10'000'000);
  inv.launch.grid_x = 46 * 2;  // 2 waves only
  const IntraKernelResult result = SimulateKernelIntra(simulator, inv, 1);
  EXPECT_FALSE(result.sampled);
  Simulator reference(config_);
  EXPECT_NEAR(result.estimated_cycles,
              reference.SimulateKernel(inv, 1).cycles,
              result.estimated_cycles * 0.05);
}

TEST_F(IntraKernelTest, CombinedSamplingStaysAccurateAndCheaper) {
  // The Sec. 7.3 combination on a long-kernel workload: kernel-level STEM
  // plus wave-level extrapolation. Build a trace of repeated many-wave
  // kernels (the "few kernel calls, long-running kernels" case).
  KernelTrace trace("long_kernels");
  const uint32_t k = trace.InternKernel("mega_kernel");
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    KernelInvocation inv = LongKernel(static_cast<uint64_t>(
        8e8 * rng.NextLogNormal(0.0, 0.05)));
    inv.kernel_id = k;
    trace.Add(inv);
  }
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);
  const TraceSimResult full = SimulateTraceFull(trace, config_);

  core::StemRootSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const SampledSimResult kernel_only =
      SimulateSampled(trace, plan, config_);
  const CombinedSimResult combined =
      SimulateSampledIntra(trace, plan, config_);

  const double err_kernel =
      std::abs(kernel_only.estimated_total_cycles - full.total_cycles) /
      full.total_cycles;
  const double err_combined =
      std::abs(combined.estimated_total_cycles - full.total_cycles) /
      full.total_cycles;
  EXPECT_LT(err_combined, 0.10);
  EXPECT_LT(err_combined, err_kernel + 0.08);  // small extra error at most
  // ...for a strictly cheaper simulation.
  EXPECT_LT(combined.simulated_cost_cycles,
            kernel_only.simulated_cost_cycles * 0.7);
  EXPECT_GT(combined.kernels_wave_sampled, 0u);
}

}  // namespace
}  // namespace stemroot::sim
