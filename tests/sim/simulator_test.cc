#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "hw/hardware_model.h"
#include "sim/sampled_sim.h"
#include "workloads/context_model.h"
#include "workloads/rodinia.h"

namespace stemroot::sim {
namespace {

KernelInvocation MakeInvocation(const KernelBehavior& behavior,
                                uint32_t ctas, uint32_t threads,
                                uint64_t seq = 0) {
  KernelInvocation inv;
  inv.behavior = behavior;
  inv.launch.grid_x = ctas;
  inv.launch.block_x = threads;
  inv.seq = seq;
  return inv;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimConfig config_ = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
};

TEST_F(SimulatorTest, ConfigFromSpecConvertsUnits) {
  const hw::GpuSpec spec = hw::GpuSpec::Rtx2080();
  EXPECT_EQ(config_.num_sms, spec.num_sms);
  EXPECT_EQ(config_.l1_bytes, spec.l1_bytes);
  // 360 ns at 1.71 GHz ~ 616 cycles.
  EXPECT_NEAR(config_.dram_latency, spec.dram_latency_ns * spec.clock_ghz,
              1.0);
  // 448 GB/s at 1.71 GHz ~ 262 B/cycle.
  EXPECT_NEAR(config_.dram_bytes_per_cycle, 262.0, 1.0);
  EXPECT_NO_THROW(config_.Validate());
}

TEST_F(SimulatorTest, PlanWavesRespectsOccupancy) {
  LaunchConfig launch;
  launch.grid_x = config_.num_sms * 10;  // 10 CTAs for the simulated SM
  launch.block_x = 256;                  // 8 warps per CTA
  const WavePlan plan = PlanWaves(launch, config_);
  EXPECT_EQ(plan.ctas, 10u);
  EXPECT_EQ(plan.warps_per_cta, 8u);
  for (uint32_t warps : plan.wave_warps)
    EXPECT_LE(warps, config_.max_warps_per_sm);
  uint64_t total = 0;
  for (uint32_t warps : plan.wave_warps) total += warps;
  EXPECT_EQ(total, 10u * 8u);
}

TEST_F(SimulatorTest, PlanWavesRejectsOversizedCta) {
  LaunchConfig launch;
  launch.block_x = (config_.max_warps_per_sm + 1) * config_.warp_size;
  EXPECT_THROW(PlanWaves(launch, config_), std::invalid_argument);
}

TEST_F(SimulatorTest, MoreWorkMoreCycles) {
  Simulator simulator(config_);
  const auto small = MakeInvocation(
      workloads::ComputeBoundBehavior(50'000'000, 1 << 20), 92, 256);
  const auto big = MakeInvocation(
      workloads::ComputeBoundBehavior(500'000'000, 1 << 20), 92, 256);
  EXPECT_LT(simulator.SimulateKernel(small, 1).cycles,
            simulator.SimulateKernel(big, 1).cycles);
}

TEST_F(SimulatorTest, DeterministicGivenSeed) {
  const auto inv = MakeInvocation(
      workloads::MemoryBoundBehavior(50'000'000, 8 << 20), 92, 256);
  Simulator a(config_);
  Simulator b(config_);
  EXPECT_DOUBLE_EQ(a.SimulateKernel(inv, 3).cycles,
                   b.SimulateKernel(inv, 3).cycles);
}

TEST_F(SimulatorTest, SmallerCacheSlowsMemoryBoundKernel) {
  // Working set ~3 MB: resident in the 4 MB baseline L2, thrashing in the
  // 1 MB variant. Capacity shows on *warm* launches (a cold kernel only
  // streams its footprint once), so measure the second launch.
  KernelBehavior behavior =
      workloads::MemoryBoundBehavior(200'000'000, 3 << 20);
  behavior.locality = 0.5f;
  const auto first = MakeInvocation(behavior, 460, 256, 0);
  const auto second = MakeInvocation(behavior, 460, 256, 1);
  Simulator base(config_);
  Simulator small(SimConfig::FromSpec(
      hw::GpuSpec::Rtx2080().WithCacheScale(0.25)));
  base.SimulateKernel(first, 1);
  small.SimulateKernel(first, 1);
  EXPECT_GT(small.SimulateKernel(second, 1).cycles,
            base.SimulateKernel(second, 1).cycles * 1.5);
}

TEST_F(SimulatorTest, CacheSizeIrrelevantForComputeBoundKernel) {
  const auto inv = MakeInvocation(
      workloads::ComputeBoundBehavior(100'000'000, 1 << 20), 92, 256);
  Simulator base(config_);
  Simulator small(SimConfig::FromSpec(
      hw::GpuSpec::Rtx2080().WithCacheScale(0.25)));
  const double ratio = small.SimulateKernel(inv, 1).cycles /
                       base.SimulateKernel(inv, 1).cycles;
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST_F(SimulatorTest, MoreSmsSpeedUpBigComputeKernels) {
  const auto inv = MakeInvocation(
      workloads::ComputeBoundBehavior(2'000'000'000, 2 << 20), 920, 256);
  Simulator base(config_);
  Simulator doubled(
      SimConfig::FromSpec(hw::GpuSpec::Rtx2080().WithSmScale(2.0)));
  EXPECT_LT(doubled.SimulateKernel(inv, 1).cycles,
            base.SimulateKernel(inv, 1).cycles * 0.7);
}

TEST_F(SimulatorTest, StatsAreConsistent) {
  Simulator simulator(config_);
  const auto inv = MakeInvocation(
      workloads::MemoryBoundBehavior(50'000'000, 8 << 20), 92, 256);
  const KernelSimResult result = simulator.SimulateKernel(inv, 1);
  EXPECT_GT(result.stats.warp_instructions, 0u);
  EXPECT_GT(result.stats.l1_hits + result.stats.l1_misses, 0u);
  // L2 accesses = L1 misses.
  EXPECT_EQ(result.stats.l2_hits + result.stats.l2_misses,
            result.stats.l1_misses);
  // DRAM bytes = L2 misses * line size.
  EXPECT_EQ(result.stats.dram_bytes,
            result.stats.l2_misses * config_.line_bytes);
  EXPECT_GT(result.Microseconds(config_), 0.0);
}

TEST_F(SimulatorTest, RepeatedKernelsReuseL2) {
  // Second launch of the same kernel (same data region) hits L2 content
  // left by the first -- the inter-kernel reuse of Sec. 6.2.
  Simulator simulator(config_);
  KernelBehavior b = workloads::MemoryBoundBehavior(20'000'000, 2 << 20);
  const auto first = MakeInvocation(b, 92, 256, 0);
  auto second = MakeInvocation(b, 92, 256, 1);
  const double cold = simulator.SimulateKernel(first, 1).cycles;
  const double warm = simulator.SimulateKernel(second, 1).cycles;
  EXPECT_LT(warm, cold);
  // With a flush in between, the second launch is cold again.
  Simulator flushed(config_);
  flushed.SimulateKernel(first, 1);
  flushed.FlushL2();
  const double reflushed = flushed.SimulateKernel(second, 1).cycles;
  EXPECT_GT(reflushed, warm);
}

TEST(TraceSimTest, FullSimulationSumsPerInvocation) {
  KernelTrace trace = workloads::MakeRodinia("lud", 5, 0.05);
  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  const TraceSimResult result = SimulateTraceFull(trace, config);
  ASSERT_EQ(result.per_invocation_cycles.size(), trace.NumInvocations());
  double sum = 0.0;
  for (double c : result.per_invocation_cycles) {
    EXPECT_GT(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(sum, result.total_cycles, 1e-6 * sum);
}

TEST(TraceSimTest, SampledEstimateTracksFullSimulation) {
  KernelTrace trace = workloads::MakeRodinia("gaussian", 5, 0.05);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);

  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  const TraceSimResult full = SimulateTraceFull(trace, config);

  core::StemRootSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);
  const SampledSimResult sampled = SimulateSampled(trace, plan, config);

  EXPECT_LT(sampled.kernels_simulated, trace.NumInvocations());
  const double error = std::abs(sampled.estimated_total_cycles -
                                full.total_cycles) / full.total_cycles;
  EXPECT_LT(error, 0.15);
  EXPECT_LT(sampled.simulated_cost_cycles, full.total_cycles);
}

TEST(TraceSimTest, L2FlushOptionOnlyAddsCycles) {
  KernelTrace trace = workloads::MakeRodinia("hotspot", 5, 0.05);
  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  TraceSimOptions warm;
  TraceSimOptions flush;
  flush.flush_l2_between_kernels = true;
  const double warm_cycles = SimulateTraceFull(trace, config, warm).total_cycles;
  const double flush_cycles =
      SimulateTraceFull(trace, config, flush).total_cycles;
  EXPECT_GE(flush_cycles, warm_cycles);
}

}  // namespace
}  // namespace stemroot::sim

namespace stemroot::sim {
namespace {

TEST(WarmupPolicyTest, RicherWarmupReducesEstimationError) {
  // The Sec. 6.2 extension: warmup with the previous same-kernel launch
  // plus the predecessor must estimate at least as well as no warmup on a
  // workload with strong inter-launch reuse.
  KernelTrace trace = workloads::MakeRodinia("cfd", 5, 0.05);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);
  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  const TraceSimResult full = SimulateTraceFull(trace, config);
  core::StemRootSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);

  auto error_with = [&](WarmupPolicy policy) {
    TraceSimOptions options;
    options.warmup = policy;
    const SampledSimResult sampled =
        SimulateSampled(trace, plan, config, options);
    return std::abs(sampled.estimated_total_cycles - full.total_cycles) /
           full.total_cycles;
  };
  const double cold = error_with(WarmupPolicy::kNone);
  const double both = error_with(WarmupPolicy::kSameKernelThenPredecessor);
  EXPECT_LT(both, cold);
  EXPECT_LT(both, 0.10);
}

TEST(WarmupPolicyTest, PoliciesAreDistinct) {
  KernelTrace trace = workloads::MakeRodinia("cfd", 5, 0.05);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(trace, 1);
  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  core::StemRootSampler sampler;
  const core::SamplingPlan plan = sampler.BuildPlan(trace, 1);

  auto cost_with = [&](WarmupPolicy policy) {
    TraceSimOptions options;
    options.warmup = policy;
    return SimulateSampled(trace, plan, config, options)
        .estimated_total_cycles;
  };
  // Different L2 preparation must yield measurably different estimates.
  EXPECT_NE(cost_with(WarmupPolicy::kNone),
            cost_with(WarmupPolicy::kSameKernel));
  EXPECT_NE(cost_with(WarmupPolicy::kPredecessor),
            cost_with(WarmupPolicy::kSameKernelThenPredecessor));
}

}  // namespace
}  // namespace stemroot::sim

namespace stemroot::sim {
namespace {

TEST(SimConfigTest, ValidationCatchesCorruption) {
  SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  EXPECT_NO_THROW(config.Validate());

  SimConfig bad = config;
  bad.num_sms = 0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = config;
  bad.line_bytes = 100;  // not a power of two
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = config;
  bad.l1_assoc = 0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = config;
  bad.dram_bytes_per_cycle = 0.0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = config;
  bad.issue_width = 0.0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
}

TEST(SimConfigTest, DramShareSplitsEvenly) {
  const SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  EXPECT_NEAR(config.DramShareBytesPerCycle() * config.num_sms,
              config.dram_bytes_per_cycle, 1e-9);
}

TEST(SimConfigTest, H100HasMoreBandwidthPerSmThan2080) {
  const SimConfig rtx = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  const SimConfig h100 = SimConfig::FromSpec(hw::GpuSpec::H100());
  EXPECT_GT(h100.DramShareBytesPerCycle(), rtx.DramShareBytesPerCycle());
}

}  // namespace
}  // namespace stemroot::sim
