/// \file
/// The determinism contract of the sharded simulation engine (DESIGN.md
/// §12), pinned at the byte level:
///
///  - `--sim-threads` is a pacing knob: full, sampled, and sampled+intra
///    results are bit-identical at 1/2/4/8 lane threads, including the
///    per-lane L2 content digests and the epoch count.
///  - `--epoch-cycles` is a pacing knob: results are bit-identical across
///    epoch lengths {1, 7, 64, 4096}; only the number of synchronization
///    rounds may change.
///  - `sim_shards == 1` IS the legacy serial algorithm: the engine matches
///    hand-rolled one-Simulator loops (full, sampled-with-warmup, and
///    intra-kernel) bit for bit.
///  - Golden values: exact serial cycle counts for fixed small workloads
///    are hard-coded below, so *any* scheduling, merge-order, or
///    floating-point change in the engine trips a test instead of
///    silently drifting every experiment built on it.
///
/// Doubles are compared through their bit patterns (memcpy to uint64_t):
/// "deterministic" here means byte-identical manifests, not approximately
/// equal numbers.

#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/sampler.h"
#include "hw/hardware_model.h"
#include "sim/intra_kernel.h"
#include "sim/sampled_sim.h"
#include "workloads/rodinia.h"

namespace stemroot::sim {
namespace {

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

void Push(std::vector<uint64_t>& words, double value) {
  words.push_back(Bits(value));
}

void Push(std::vector<uint64_t>& words, const SmStats& stats) {
  words.push_back(stats.warp_instructions);
  words.push_back(stats.l1_hits);
  words.push_back(stats.l1_misses);
  words.push_back(stats.l2_hits);
  words.push_back(stats.l2_misses);
  words.push_back(stats.dram_bytes);
}

void Push(std::vector<uint64_t>& words, const ShardedRunInfo& info) {
  words.push_back(info.lanes);
  for (uint64_t digest : info.lane_l2_digests) words.push_back(digest);
  for (double cycles : info.lane_cycles) Push(words, cycles);
  for (double busy : info.lane_dram_busy) Push(words, busy);
  for (size_t n : info.lane_invocations) words.push_back(n);
}

/// Everything a run produces, as one flat word vector plus the epoch
/// count (the only output allowed to vary with --epoch-cycles).
struct RunSnapshot {
  std::vector<uint64_t> words;
  uint64_t epochs = 0;
};

/// A profiled trace with a STEM sampling plan, ready for all three modes.
struct Workbench {
  KernelTrace trace;
  core::SamplingPlan plan;
  SimConfig config = SimConfig::FromSpec(hw::GpuSpec::Rtx2080());
  uint64_t seed = 1;
};

Workbench MakeBench(const std::string& workload, uint64_t trace_seed,
                    uint64_t sim_seed) {
  Workbench bench;
  bench.trace = workloads::MakeRodinia(workload, trace_seed, 0.05);
  hw::HardwareModel gpu(hw::GpuSpec::Rtx2080());
  gpu.ProfileTrace(bench.trace, 1);
  core::StemRootSampler sampler;
  bench.plan = sampler.BuildPlan(bench.trace, 1);
  bench.seed = sim_seed;
  return bench;
}

TraceSimOptions MakeOptions(const Workbench& bench, uint32_t shards,
                            int threads, uint64_t epoch_cycles) {
  TraceSimOptions options;
  options.seed = bench.seed;
  options.shard.sim_shards = shards;
  options.shard.sim_threads = threads;
  options.shard.epoch_cycles = epoch_cycles;
  return options;
}

RunSnapshot SnapshotFull(const Workbench& bench,
                         const TraceSimOptions& options) {
  ShardedRunInfo info;
  const TraceSimResult result =
      ShardedSimulateTraceFull(bench.trace, bench.config, options, &info);
  RunSnapshot snap;
  Push(snap.words, result.total_cycles);
  for (double cycles : result.per_invocation_cycles) Push(snap.words, cycles);
  Push(snap.words, result.stats);
  Push(snap.words, info);
  snap.epochs = info.epochs;
  return snap;
}

RunSnapshot SnapshotSampled(const Workbench& bench,
                            const TraceSimOptions& options) {
  ShardedRunInfo info;
  const SampledSimResult result = ShardedSimulateSampled(
      bench.trace, bench.plan, bench.config, options, &info);
  RunSnapshot snap;
  Push(snap.words, result.estimated_total_cycles);
  Push(snap.words, result.simulated_cost_cycles);
  snap.words.push_back(result.kernels_simulated);
  Push(snap.words, info);
  snap.epochs = info.epochs;
  return snap;
}

RunSnapshot SnapshotIntra(const Workbench& bench,
                          const TraceSimOptions& options) {
  ShardedRunInfo info;
  const CombinedSimResult result = ShardedSimulateSampledIntra(
      bench.trace, bench.plan, bench.config, options, {}, &info);
  RunSnapshot snap;
  Push(snap.words, result.estimated_total_cycles);
  Push(snap.words, result.simulated_cost_cycles);
  snap.words.push_back(result.kernels_simulated);
  snap.words.push_back(result.kernels_wave_sampled);
  Push(snap.words, info);
  snap.epochs = info.epochs;
  return snap;
}

// Golden values for gaussian and cfd (trace seed 5, scale 0.05, sim
// seed 1), harvested from the serial engine with printf("%.17g") --
// %.17g round-trips doubles exactly, so EXPECT_EQ compares full bit
// patterns. The build pins the FP environment (base x86-64, no
// -ffast-math, no FMA contraction), so these hold on every conforming
// toolchain.
constexpr uint64_t kGoldenInvocations = 458;
constexpr double kGoldenSerialTotalCycles = 7129089.8157142866;
constexpr double kGoldenFirstKernelCycles = 20182.228571428572;
constexpr double kGoldenLastKernelCycles = 5157.25;
constexpr uint64_t kGoldenWarpInstructions = 1525360;
constexpr double kGoldenSampledEstimate = 7462740.6700000009;
// cfd has real cross-kernel L2 reuse, so lane-private L2s shift its
// total: the pair below pins both models and proves shards is a
// modeling knob (gaussian's kernels barely touch each other's lines --
// its serial and sharded totals coincide).
constexpr double kGoldenCfdSerialTotalCycles = 42382483.522857152;
constexpr double kGoldenCfdShardedTotalCycles = 42381184.875714295;

/// The (workload, trace seed, sim seed) roster every invariance test runs
/// over -- three distinct suites x seeds per the test plan.
struct Combo {
  const char* workload;
  uint64_t trace_seed;
  uint64_t sim_seed;
};
constexpr Combo kCombos[] = {
    {"cfd", 5, 1},
    {"hotspot", 7, 7},
    {"lud", 11, 42},
};

// ---------------------------------------------------------------------------
// Satellite 1: sim_threads invariance (byte-identical at 1/2/4/8 threads).
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, ThreadCountNeverChangesResults) {
  for (const Combo& combo : kCombos) {
    SCOPED_TRACE(combo.workload);
    const Workbench bench =
        MakeBench(combo.workload, combo.trace_seed, combo.sim_seed);
    const TraceSimOptions base = MakeOptions(bench, /*shards=*/4,
                                             /*threads=*/1,
                                             /*epoch_cycles=*/4'000'000);
    const RunSnapshot full = SnapshotFull(bench, base);
    const RunSnapshot sampled = SnapshotSampled(bench, base);
    const RunSnapshot intra = SnapshotIntra(bench, base);
    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE(threads);
      TraceSimOptions options = base;
      options.shard.sim_threads = threads;
      const RunSnapshot full_t = SnapshotFull(bench, options);
      const RunSnapshot sampled_t = SnapshotSampled(bench, options);
      const RunSnapshot intra_t = SnapshotIntra(bench, options);
      EXPECT_EQ(full.words, full_t.words);
      EXPECT_EQ(sampled.words, sampled_t.words);
      EXPECT_EQ(intra.words, intra_t.words);
      // Epoch counts are a function of epoch_cycles alone -- the round
      // targets are derived from lane pacing clocks, which the schedule
      // never touches.
      EXPECT_EQ(full.epochs, full_t.epochs);
      EXPECT_EQ(sampled.epochs, sampled_t.epochs);
      EXPECT_EQ(intra.epochs, intra_t.epochs);
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite 3: epoch-length invariance (property sweep over {1,7,64,4096}).
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, EpochLengthNeverChangesResults) {
  for (const Combo& combo : kCombos) {
    SCOPED_TRACE(combo.workload);
    const Workbench bench =
        MakeBench(combo.workload, combo.trace_seed, combo.sim_seed);
    const TraceSimOptions base = MakeOptions(bench, /*shards=*/4,
                                             /*threads=*/4,
                                             /*epoch_cycles=*/4'000'000);
    const RunSnapshot full = SnapshotFull(bench, base);
    const RunSnapshot sampled = SnapshotSampled(bench, base);
    for (uint64_t epoch : {uint64_t{1}, uint64_t{7}, uint64_t{64},
                           uint64_t{4096}}) {
      SCOPED_TRACE(epoch);
      TraceSimOptions options = base;
      options.shard.epoch_cycles = epoch;
      const RunSnapshot full_e = SnapshotFull(bench, options);
      const RunSnapshot sampled_e = SnapshotSampled(bench, options);
      EXPECT_EQ(full.words, full_e.words);
      EXPECT_EQ(sampled.words, sampled_e.words);
      // Shorter epochs mean *more* synchronization rounds, never fewer:
      // the barrier count is where the knob is allowed to show.
      EXPECT_GE(full_e.epochs, full.epochs);
      EXPECT_GE(sampled_e.epochs, sampled.epochs);
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite 2 (part 1): sim_shards == 1 is the hand-rolled serial loop.
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, OneShardMatchesHandRolledFullLoop) {
  for (const Combo& combo : kCombos) {
    SCOPED_TRACE(combo.workload);
    const Workbench bench =
        MakeBench(combo.workload, combo.trace_seed, combo.sim_seed);
    const TraceSimOptions options =
        MakeOptions(bench, /*shards=*/1, /*threads=*/4,
                    /*epoch_cycles=*/4'000'000);
    const TraceSimResult engine =
        ShardedSimulateTraceFull(bench.trace, bench.config, options);

    // The reference algorithm: one Simulator stepping the timeline in
    // order, L2 persisting across kernels.
    Simulator simulator(bench.config);
    double total = 0.0;
    ASSERT_EQ(engine.per_invocation_cycles.size(),
              bench.trace.NumInvocations());
    for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
      const KernelSimResult one =
          simulator.SimulateKernel(bench.trace.At(i), options.seed);
      EXPECT_EQ(Bits(engine.per_invocation_cycles[i]), Bits(one.cycles))
          << "invocation " << i;
      total += one.cycles;
    }
    EXPECT_EQ(Bits(engine.total_cycles), Bits(total));
  }
}

TEST(ShardedDeterminismTest, OneShardMatchesHandRolledSampledLoop) {
  for (const Combo& combo : kCombos) {
    SCOPED_TRACE(combo.workload);
    const Workbench bench =
        MakeBench(combo.workload, combo.trace_seed, combo.sim_seed);
    const TraceSimOptions options =
        MakeOptions(bench, /*shards=*/1, /*threads=*/2,
                    /*epoch_cycles=*/4'000'000);
    const SampledSimResult engine = ShardedSimulateSampled(
        bench.trace, bench.plan, bench.config, options);

    // Reference: selected invocations in timeline order on one Simulator,
    // each preceded by the default warmup (previous same-kernel launch,
    // then the immediate predecessor), warmups untimed.
    std::vector<char> selected(bench.trace.NumInvocations(), 0);
    for (uint32_t idx : bench.plan.DistinctInvocations()) selected[idx] = 1;
    std::vector<int64_t> prev_same(bench.trace.NumInvocations(), -1);
    {
      std::vector<int64_t> last(1u << 16, -1);
      for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
        const uint32_t kernel_id = bench.trace.At(i).kernel_id;
        ASSERT_LT(kernel_id, last.size());
        prev_same[i] = last[kernel_id];
        last[kernel_id] = i;
      }
    }
    Simulator simulator(bench.config);
    std::vector<double> measured(bench.trace.NumInvocations(), 0.0);
    double cost = 0.0;
    size_t kernels = 0;
    for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
      if (!selected[i]) continue;
      if (prev_same[i] >= 0)
        simulator.SimulateKernel(
            bench.trace.At(static_cast<uint32_t>(prev_same[i])),
            options.seed);
      if (i > 0 && prev_same[i] != static_cast<int64_t>(i) - 1)
        simulator.SimulateKernel(bench.trace.At(i - 1), options.seed);
      const KernelSimResult one =
          simulator.SimulateKernel(bench.trace.At(i), options.seed);
      measured[i] = one.cycles;
      cost += one.cycles;
      ++kernels;
    }
    double estimate = 0.0;
    for (const core::SampleEntry& entry : bench.plan.entries)
      estimate += entry.weight * measured[entry.invocation];

    EXPECT_EQ(Bits(engine.estimated_total_cycles), Bits(estimate));
    EXPECT_EQ(Bits(engine.simulated_cost_cycles), Bits(cost));
    EXPECT_EQ(engine.kernels_simulated, kernels);
  }
}

TEST(ShardedDeterminismTest, OneShardMatchesHandRolledIntraLoop) {
  const Workbench bench = MakeBench("cfd", 5, 1);
  const TraceSimOptions options = MakeOptions(bench, /*shards=*/1,
                                              /*threads=*/2,
                                              /*epoch_cycles=*/4'000'000);
  const IntraKernelOptions intra;
  const CombinedSimResult engine = ShardedSimulateSampledIntra(
      bench.trace, bench.plan, bench.config, options, intra);

  std::vector<char> selected(bench.trace.NumInvocations(), 0);
  for (uint32_t idx : bench.plan.DistinctInvocations()) selected[idx] = 1;
  std::vector<int64_t> prev_same(bench.trace.NumInvocations(), -1);
  std::vector<int64_t> last(1u << 16, -1);
  for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
    const uint32_t kernel_id = bench.trace.At(i).kernel_id;
    ASSERT_LT(kernel_id, last.size());
    prev_same[i] = last[kernel_id];
    last[kernel_id] = i;
  }
  Simulator simulator(bench.config);
  std::vector<double> measured(bench.trace.NumInvocations(), 0.0);
  double cost = 0.0;
  size_t kernels = 0;
  size_t wave_sampled = 0;
  for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
    if (!selected[i]) continue;
    // Warmup replays are themselves wave-sampled in this mode.
    if (prev_same[i] >= 0)
      SimulateKernelIntra(simulator,
                          bench.trace.At(static_cast<uint32_t>(prev_same[i])),
                          options.seed, intra);
    if (i > 0 && prev_same[i] != static_cast<int64_t>(i) - 1)
      SimulateKernelIntra(simulator, bench.trace.At(i - 1), options.seed,
                          intra);
    const IntraKernelResult one =
        SimulateKernelIntra(simulator, bench.trace.At(i), options.seed, intra);
    measured[i] = one.estimated_cycles;
    cost += one.simulated_cycles;
    ++kernels;
    if (one.sampled) ++wave_sampled;
  }
  double estimate = 0.0;
  for (const core::SampleEntry& entry : bench.plan.entries)
    estimate += entry.weight * measured[entry.invocation];

  EXPECT_EQ(Bits(engine.estimated_total_cycles), Bits(estimate));
  EXPECT_EQ(Bits(engine.simulated_cost_cycles), Bits(cost));
  EXPECT_EQ(engine.kernels_simulated, kernels);
  EXPECT_EQ(engine.kernels_wave_sampled, wave_sampled);
}

TEST(ShardedDeterminismTest, FlushOptionStillSerialEquivalent) {
  const Workbench bench = MakeBench("hotspot", 7, 7);
  TraceSimOptions options = MakeOptions(bench, /*shards=*/1, /*threads=*/4,
                                        /*epoch_cycles=*/4'000'000);
  options.flush_l2_between_kernels = true;
  const TraceSimResult engine =
      ShardedSimulateTraceFull(bench.trace, bench.config, options);

  Simulator simulator(bench.config);
  double total = 0.0;
  for (uint32_t i = 0; i < bench.trace.NumInvocations(); ++i) {
    simulator.FlushL2();
    total += simulator.SimulateKernel(bench.trace.At(i), options.seed).cycles;
  }
  EXPECT_EQ(Bits(engine.total_cycles), Bits(total));
}

// ---------------------------------------------------------------------------
// Engine structure: lanes partition the timeline, shards gate modeling.
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, LanesPartitionEveryInvocation) {
  const Workbench bench = MakeBench("cfd", 5, 1);
  ShardedRunInfo info;
  const TraceSimOptions options = MakeOptions(bench, /*shards=*/4,
                                              /*threads=*/4,
                                              /*epoch_cycles=*/4'000'000);
  ShardedSimulateTraceFull(bench.trace, bench.config, options, &info);
  EXPECT_EQ(info.lanes, 4u);
  EXPECT_GE(info.epochs, 1u);
  size_t covered = 0;
  size_t busy_lanes = 0;
  for (size_t n : info.lane_invocations) {
    covered += n;
    if (n > 0) ++busy_lanes;
  }
  EXPECT_EQ(covered, bench.trace.NumInvocations());
  // Kernel-affine LPT may leave a lane empty on a kernel-poor trace, but
  // the partition must actually spread this one.
  EXPECT_GE(busy_lanes, 2u);
  ASSERT_EQ(info.lane_cycles.size(), 4u);
  for (size_t i = 0; i < info.lane_cycles.size(); ++i) {
    if (info.lane_invocations[i] > 0)
      EXPECT_GT(info.lane_cycles[i], 0.0) << "lane " << i;
    else
      EXPECT_EQ(info.lane_cycles[i], 0.0) << "lane " << i;
  }
}

TEST(ShardedDeterminismTest, InvalidShardOptionsThrow) {
  const Workbench bench = MakeBench("lud", 11, 42);
  TraceSimOptions options;
  options.shard.sim_shards = 0;
  EXPECT_THROW(ShardedSimulateTraceFull(bench.trace, bench.config, options),
               std::invalid_argument);
  options.shard.sim_shards = 1;
  options.shard.epoch_cycles = 0;
  EXPECT_THROW(ShardedSimulateTraceFull(bench.trace, bench.config, options),
               std::invalid_argument);
  options.shard.epoch_cycles = 1;
  options.shard.sim_threads = -1;
  EXPECT_THROW(ShardedSimulateTraceFull(bench.trace, bench.config, options),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Satellite 2 (part 2): golden values. Exact doubles harvested from the
// serial engine on x86-64 (printf %.17g round-trips bit-exactly); any
// change in scheduling, merge order, or kernel math must trip these.
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, GoldenSerialCycleCountsPinned) {
  const Workbench bench = MakeBench("gaussian", 5, 1);
  const TraceSimOptions serial = MakeOptions(bench, /*shards=*/1,
                                             /*threads=*/1,
                                             /*epoch_cycles=*/4'000'000);
  const TraceSimResult full =
      ShardedSimulateTraceFull(bench.trace, bench.config, serial);
  ASSERT_EQ(bench.trace.NumInvocations(), kGoldenInvocations);
  EXPECT_EQ(full.total_cycles, kGoldenSerialTotalCycles);
  EXPECT_EQ(full.per_invocation_cycles.front(), kGoldenFirstKernelCycles);
  EXPECT_EQ(full.per_invocation_cycles.back(), kGoldenLastKernelCycles);
  EXPECT_EQ(full.stats.warp_instructions, kGoldenWarpInstructions);

  const SampledSimResult sampled =
      ShardedSimulateSampled(bench.trace, bench.plan, bench.config, serial);
  EXPECT_EQ(sampled.estimated_total_cycles, kGoldenSampledEstimate);

  // The parallel path must land on the same bytes (here at 8 threads and
  // a deliberately odd epoch length).
  const TraceSimOptions parallel = MakeOptions(bench, /*shards=*/1,
                                               /*threads=*/8,
                                               /*epoch_cycles=*/7);
  EXPECT_EQ(ShardedSimulateTraceFull(bench.trace, bench.config, parallel)
                .total_cycles,
            kGoldenSerialTotalCycles);
}

TEST(ShardedDeterminismTest, GoldenShardedCycleCountsPinned) {
  // shards == 4 is a different -- equally pinned -- model: lane-private
  // L2s drop cross-kernel pollution between lanes, so on a workload with
  // real inter-kernel reuse (cfd) the total shifts, and manifests with
  // different sim_shards are not comparable.
  const Workbench bench = MakeBench("cfd", 5, 1);
  const TraceSimResult serial = ShardedSimulateTraceFull(
      bench.trace, bench.config,
      MakeOptions(bench, /*shards=*/1, /*threads=*/1,
                  /*epoch_cycles=*/4'000'000));
  const TraceSimResult sharded = ShardedSimulateTraceFull(
      bench.trace, bench.config,
      MakeOptions(bench, /*shards=*/4, /*threads=*/4,
                  /*epoch_cycles=*/4'000'000));
  EXPECT_EQ(serial.total_cycles, kGoldenCfdSerialTotalCycles);
  EXPECT_EQ(sharded.total_cycles, kGoldenCfdShardedTotalCycles);
  EXPECT_NE(kGoldenCfdShardedTotalCycles, kGoldenCfdSerialTotalCycles);
  // Instruction counts are schedule- and shard-invariant: every
  // invocation runs exactly once either way.
  EXPECT_EQ(serial.stats.warp_instructions, sharded.stats.warp_instructions);
}

}  // namespace
}  // namespace stemroot::sim
