#include "sim/cache.h"

#include <gtest/gtest.h>

namespace stemroot::sim {
namespace {

TEST(CacheTest, ColdMissThenHit) {
  Cache cache(1024, 2, 64);
  EXPECT_FALSE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1010));  // same line
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(CacheTest, GeometryDerived) {
  Cache cache(8192, 4, 64);  // 128 lines, 32 sets
  EXPECT_EQ(cache.NumSets(), 32u);
  EXPECT_EQ(cache.Associativity(), 4u);
  EXPECT_EQ(cache.SizeBytes(), 8192u);
}

TEST(CacheTest, LruEvictsOldest) {
  // Direct-mapped within one set: 2-way, 1 set.
  Cache cache(128, 2, 64);
  cache.Access(0 * 64);    // A
  cache.Access(1 * 64);    // B
  cache.Access(0 * 64);    // touch A (B is now LRU)
  cache.Access(2 * 64);    // C evicts B
  EXPECT_TRUE(cache.Contains(0 * 64));
  EXPECT_FALSE(cache.Contains(1 * 64));
  EXPECT_TRUE(cache.Contains(2 * 64));
}

TEST(CacheTest, SetIndexingSeparatesConflicts) {
  // 2 sets, 1 way: lines alternate sets by address.
  Cache cache(128, 1, 64);
  EXPECT_EQ(cache.NumSets(), 2u);
  cache.Access(0 * 64);  // set 0
  cache.Access(1 * 64);  // set 1
  EXPECT_TRUE(cache.Contains(0 * 64));
  EXPECT_TRUE(cache.Contains(1 * 64));
  cache.Access(2 * 64);  // set 0 again -> evicts line 0
  EXPECT_FALSE(cache.Contains(0 * 64));
  EXPECT_TRUE(cache.Contains(1 * 64));
}

TEST(CacheTest, FlushInvalidatesEverything) {
  Cache cache(1024, 2, 64);
  cache.Access(0x100);
  cache.Access(0x200);
  cache.Flush();
  EXPECT_FALSE(cache.Contains(0x100));
  EXPECT_FALSE(cache.Contains(0x200));
  EXPECT_FALSE(cache.Access(0x100));  // miss again
}

TEST(CacheTest, ContainsDoesNotMutate) {
  Cache cache(128, 2, 64);
  cache.Access(0 * 64);
  cache.Access(1 * 64);
  // Probing A must not refresh its LRU position.
  cache.Contains(0 * 64);
  const uint64_t hits_before = cache.Hits();
  cache.Access(2 * 64);  // evicts true-LRU = A
  EXPECT_FALSE(cache.Contains(0 * 64));
  EXPECT_EQ(cache.Hits(), hits_before);
}

TEST(CacheTest, ResetStatsKeepsContent) {
  Cache cache(1024, 2, 64);
  cache.Access(0x100);
  cache.ResetStats();
  EXPECT_EQ(cache.Hits(), 0u);
  EXPECT_EQ(cache.Misses(), 0u);
  EXPECT_TRUE(cache.Contains(0x100));
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  Cache cache(1024, 2, 64);  // 16 lines
  // Stream 64 distinct lines twice: second pass still mostly misses.
  for (int pass = 0; pass < 2; ++pass)
    for (uint64_t line = 0; line < 64; ++line)
      cache.Access(line * 64);
  EXPECT_LT(static_cast<double>(cache.Hits()) /
                static_cast<double>(cache.Hits() + cache.Misses()),
            0.2);
}

TEST(CacheTest, WorkingSetFittingCacheHitsOnReuse) {
  Cache cache(4096, 4, 64);  // 64 lines
  for (int pass = 0; pass < 10; ++pass)
    for (uint64_t line = 0; line < 32; ++line)
      cache.Access(line * 64);
  // First pass misses, the rest hit: hit rate ~ 9/10.
  EXPECT_GT(static_cast<double>(cache.Hits()) /
                static_cast<double>(cache.Hits() + cache.Misses()),
            0.85);
}

TEST(CacheTest, ConstructionValidation) {
  EXPECT_THROW(Cache(0, 2, 64), std::invalid_argument);
  EXPECT_THROW(Cache(1024, 0, 64), std::invalid_argument);
  EXPECT_THROW(Cache(1024, 2, 60), std::invalid_argument);  // not pow2
  EXPECT_THROW(Cache(100, 3, 64), std::invalid_argument);   // ragged sets
}

}  // namespace
}  // namespace stemroot::sim
