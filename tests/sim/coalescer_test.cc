#include "sim/coalescer.h"

#include <gtest/gtest.h>

namespace stemroot::sim {
namespace {

TEST(CoalescerTest, FullyCoalescedWarpIsOneLine) {
  // 32 consecutive 4-byte lane accesses inside one 128 B line.
  std::vector<uint64_t> lanes;
  for (uint64_t lane = 0; lane < 32; ++lane)
    lanes.push_back(0x1000 + lane * 4);
  const auto lines = CoalesceLaneAddresses(lanes, 128);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 0x1000u);
}

TEST(CoalescerTest, StridedAccessSpansLines) {
  // Stride-128 float accesses: one line per lane.
  std::vector<uint64_t> lanes;
  for (uint64_t lane = 0; lane < 32; ++lane)
    lanes.push_back(lane * 128);
  EXPECT_EQ(CoalesceLaneAddresses(lanes, 128).size(), 32u);
}

TEST(CoalescerTest, MisalignedAccessTouchesTwoLines) {
  std::vector<uint64_t> lanes;
  for (uint64_t lane = 0; lane < 32; ++lane)
    lanes.push_back(0x1000 + 64 + lane * 4);  // straddles 0x1000/0x1080
  const auto lines = CoalesceLaneAddresses(lanes, 128);
  EXPECT_EQ(lines.size(), 2u);
}

TEST(CoalescerTest, OutputSortedAndAligned) {
  const std::vector<uint64_t> lanes = {0x5000, 0x100, 0x5010, 0x230};
  const auto lines = CoalesceLaneAddresses(lanes, 128);
  for (size_t i = 1; i < lines.size(); ++i)
    EXPECT_LT(lines[i - 1], lines[i]);
  for (uint64_t line : lines) EXPECT_EQ(line % 128, 0u);
}

TEST(CoalescerTest, ReusableOutputVector) {
  std::vector<uint64_t> out = {999, 999, 999};
  CoalesceLaneAddresses(std::vector<uint64_t>{0x80}, 128, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0x80u);
}

TEST(CoalescerTest, RejectsBadLineSize) {
  const std::vector<uint64_t> lanes = {0x100};
  EXPECT_THROW(CoalesceLaneAddresses(lanes, 100), std::invalid_argument);
  EXPECT_THROW(CoalesceLaneAddresses(lanes, 0), std::invalid_argument);
}

TEST(CoalescerTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(CoalesceLaneAddresses({}, 128).empty());
}

}  // namespace
}  // namespace stemroot::sim
