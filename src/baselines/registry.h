/// \file
/// One-time registration of the baseline samplers with the global
/// core::SamplerRegistry. Core pre-registers "stem"; this adds
/// random/pka/sieve/photon/tbpoint (idempotent, thread-safe). Front ends
/// call it once before resolving --method names.

#pragma once

namespace stemroot::baselines {

/// Ensure random/pka/sieve/photon/tbpoint are registered (plus core's
/// built-in stem). Safe to call repeatedly and from multiple threads.
void EnsureBuiltinSamplers();

}  // namespace stemroot::baselines
