#include "baselines/feature.h"

#include <cmath>
#include <stdexcept>

namespace stemroot::baselines {

void ZNormalizeColumns(std::span<double> matrix, size_t dim) {
  if (dim == 0) throw std::invalid_argument("ZNormalizeColumns: dim == 0");
  if (matrix.size() % dim != 0)
    throw std::invalid_argument("ZNormalizeColumns: bad shape");
  const size_t n = matrix.size() / dim;
  if (n == 0) return;

  for (size_t j = 0; j < dim; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += matrix[i * dim + j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = matrix[i * dim + j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(var);
    for (size_t i = 0; i < n; ++i) {
      double& cell = matrix[i * dim + j];
      cell = stddev > 0.0 ? (cell - mean) / stddev : 0.0;
    }
  }
}

uint32_t ElbowK(std::span<const double> inertias, double threshold) {
  if (inertias.empty()) throw std::invalid_argument("ElbowK: empty input");
  const double base = inertias[0];
  if (base <= 0.0) return 1;
  for (size_t k = 1; k < inertias.size(); ++k) {
    const double reduction = (inertias[k - 1] - inertias[k]) / base;
    if (reduction < threshold) return static_cast<uint32_t>(k);
  }
  return static_cast<uint32_t>(inertias.size());
}

}  // namespace stemroot::baselines
