/// \file
/// Sieve — stratified GPU-compute workload sampling (Naderan-Tahan et al.,
/// ISPASS '23), reimplemented per the paper's Table 1 / Sec. 7.2 summary:
///
///  - the only signature is the kernel name + dynamic instruction count
///    (collected with NVBit);
///  - kernels (by name) are stratified into three groups by the variation
///    (CoV) of instruction counts across invocations of the same code;
///  - stable kernels contribute a single sample; variable kernels are
///    optionally subdivided by KDE mode detection on instruction counts
///    (the paper disables this on CASIO as it oversamples);
///  - the representative is the first-chronological invocation among those
///    with the *dominant CTA size*.

#pragma once

#include "core/sampler.h"

namespace stemroot::baselines {

/// Sieve knobs.
struct SieveConfig {
  /// CoV below which a kernel's instruction count is considered constant.
  double stable_cov = 0.05;
  /// CoV above which a kernel is "highly variable" (third stratum).
  double variable_cov = 0.5;
  /// Subdivide variable kernels by KDE modes on log instruction count.
  bool use_kde = true;
  /// KDE: number of histogram bins used for mode detection.
  size_t kde_bins = 64;
  /// Hand-tuned variant: random representative instead of
  /// first-chronological (paper Sec. 5.1).
  bool random_representative = false;
};

/// Sieve sampler.
class SieveSampler : public core::Sampler {
 public:
  explicit SieveSampler(SieveConfig config = {});

  std::string Name() const override;
  bool Deterministic() const override {
    return !config_.random_representative;
  }
  core::SamplingPlan BuildPlan(const KernelTrace& trace,
                               uint64_t seed) const override;

 private:
  SieveConfig config_;
};

}  // namespace stemroot::baselines
