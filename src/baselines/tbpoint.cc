#include "baselines/tbpoint.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "baselines/feature.h"
#include "common/telemetry.h"
#include "core/kmeans.h"
#include "profiler/metric_profiler.h"

namespace stemroot::baselines {

TbPointSampler::TbPointSampler(TbPointConfig config) : config_(config) {
  if (config_.merge_threshold <= 0.0)
    throw std::invalid_argument("TbPointSampler: merge_threshold <= 0");
  if (config_.max_clusters == 0 || config_.agglomeration_cap == 0)
    throw std::invalid_argument("TbPointSampler: zero cap");
}

namespace {

constexpr size_t kDim = profiler::PkaFeatures::kDim;

double SqDist(const std::vector<double>& features, size_t a, size_t b) {
  double sum = 0.0;
  for (size_t j = 0; j < kDim; ++j) {
    const double d = features[a * kDim + j] - features[b * kDim + j];
    sum += d * d;
  }
  return sum;
}

/// Average-linkage agglomeration via centroid merging (O(n^2 log n)
/// with a simple nearest-pair scan; n is capped by the caller).
struct Agglomerator {
  struct Cluster {
    std::vector<double> centroid;  // kDim
    std::vector<uint32_t> members;
    bool alive = true;
  };
  std::vector<Cluster> clusters;

  double CentroidDist(const Cluster& a, const Cluster& b) const {
    double sum = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      const double d = a.centroid[j] - b.centroid[j];
      sum += d * d;
    }
    return std::sqrt(sum);
  }

  void Merge(size_t into, size_t from) {
    Cluster& a = clusters[into];
    Cluster& b = clusters[from];
    const double na = static_cast<double>(a.members.size());
    const double nb = static_cast<double>(b.members.size());
    for (size_t j = 0; j < kDim; ++j)
      a.centroid[j] = (a.centroid[j] * na + b.centroid[j] * nb) / (na + nb);
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());
    b.alive = false;
    b.members.clear();
  }
};

}  // namespace

core::SamplingPlan TbPointSampler::BuildPlan(const KernelTrace& trace,
                                             uint64_t seed) const {
  (void)seed;  // fully deterministic
  if (trace.Empty())
    throw std::invalid_argument("TbPointSampler: empty trace");
  const size_t n = trace.NumInvocations();

  // Feature matrix (the same microarchitecture-independent metrics as
  // PKA), z-normalized.
  std::vector<double> features(n * kDim);
  for (size_t i = 0; i < n; ++i) {
    const profiler::PkaFeatures f =
        profiler::MetricProfiler::Extract(trace, trace.At(i));
    for (size_t j = 0; j < kDim; ++j) features[i * kDim + j] = f.values[j];
  }
  ZNormalizeColumns(features, kDim);

  // Seed the agglomeration: one cluster per invocation when the trace is
  // small; otherwise pre-reduce with k-means so the O(n^2) stage stays
  // bounded (TBPoint targeted small GPGPU traces).
  Agglomerator agg;
  if (n <= config_.agglomeration_cap) {
    agg.clusters.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      agg.clusters[i].centroid.assign(
          features.begin() + static_cast<ptrdiff_t>(i * kDim),
          features.begin() + static_cast<ptrdiff_t>((i + 1) * kDim));
      agg.clusters[i].members = {i};
    }
  } else {
    const uint32_t k = static_cast<uint32_t>(
        std::min<size_t>(config_.agglomeration_cap, 256));
    const core::KmeansResult pre = core::KmeansNd(features, kDim, k);
    agg.clusters.resize(k);
    for (uint32_t c = 0; c < k; ++c)
      agg.clusters[c].centroid.assign(
          pre.centers.begin() + static_cast<ptrdiff_t>(c * kDim),
          pre.centers.begin() + static_cast<ptrdiff_t>((c + 1) * kDim));
    for (uint32_t i = 0; i < n; ++i)
      agg.clusters[pre.assignment[i]].members.push_back(i);
    std::erase_if(agg.clusters,
                  [](const auto& c) { return c.members.empty(); });
  }

  // RMS feature radius sets the merge scale.
  double rms = 0.0;
  for (double v : features) rms += v * v;
  rms = std::sqrt(rms / static_cast<double>(n));
  const double cutoff = config_.merge_threshold * rms * std::sqrt(kDim);

  // Greedy nearest-pair merging until the closest pair exceeds the cutoff
  // or the cluster budget is met.
  while (true) {
    size_t alive = 0;
    for (const auto& c : agg.clusters) alive += c.alive ? 1 : 0;
    double best = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 0;
    for (size_t a = 0; a < agg.clusters.size(); ++a) {
      if (!agg.clusters[a].alive) continue;
      for (size_t b = a + 1; b < agg.clusters.size(); ++b) {
        if (!agg.clusters[b].alive) continue;
        const double d =
            agg.CentroidDist(agg.clusters[a], agg.clusters[b]);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!std::isfinite(best)) break;
    if (best > cutoff && alive <= config_.max_clusters) break;
    agg.Merge(best_a, best_b);
    if (alive - 1 <= 1) break;
  }

  // Representative: the member nearest the cluster centroid, weighted by
  // the cluster's size.
  core::SamplingPlan plan;
  plan.method = Name();
  for (const auto& cluster : agg.clusters) {
    if (!cluster.alive || cluster.members.empty()) continue;
    ++plan.num_clusters;
    uint32_t rep = cluster.members.front();
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t idx : cluster.members) {
      double d = 0.0;
      for (size_t j = 0; j < kDim; ++j) {
        const double diff =
            features[idx * kDim + j] - cluster.centroid[j];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        rep = idx;
      }
    }
    plan.entries.push_back(
        {rep, static_cast<double>(cluster.members.size())});
  }
  telemetry::Count("baselines.tbpoint.plans");
  telemetry::Record("baselines.tbpoint.clusters_per_plan",
                    static_cast<double>(plan.num_clusters));
  return plan;
}

}  // namespace stemroot::baselines
