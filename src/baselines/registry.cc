#include "baselines/registry.h"

#include <mutex>

#include "baselines/photon.h"
#include "baselines/pka.h"
#include "baselines/random_sampler.h"
#include "baselines/sieve.h"
#include "baselines/tbpoint.h"
#include "core/sampler_registry.h"

namespace stemroot::baselines {

void EnsureBuiltinSamplers() {
  static std::once_flag once;
  std::call_once(once, [] {
    core::SamplerRegistry& registry = core::SamplerRegistry::Global();

    registry.Register("random", [](const core::SamplerParams& params) {
      return std::make_unique<RandomSampler>(
          params.GetDouble("probability", 0.001));
    });

    registry.Register("pka", [](const core::SamplerParams& params) {
      PkaConfig config;
      config.max_k = static_cast<uint32_t>(
          params.GetInt("max_k", static_cast<int64_t>(config.max_k)));
      config.elbow_threshold =
          params.GetDouble("elbow_threshold", config.elbow_threshold);
      config.random_representative = params.GetBool(
          "random_representative", config.random_representative);
      return std::make_unique<PkaSampler>(config);
    });

    registry.Register("sieve", [](const core::SamplerParams& params) {
      SieveConfig config;
      config.stable_cov = params.GetDouble("stable_cov", config.stable_cov);
      config.variable_cov =
          params.GetDouble("variable_cov", config.variable_cov);
      config.use_kde = params.GetBool("use_kde", config.use_kde);
      config.kde_bins = static_cast<size_t>(
          params.GetInt("kde_bins", static_cast<int64_t>(config.kde_bins)));
      config.random_representative = params.GetBool(
          "random_representative", config.random_representative);
      return std::make_unique<SieveSampler>(config);
    });

    registry.Register("photon", [](const core::SamplerParams& params) {
      PhotonConfig config;
      config.similarity_threshold = params.GetDouble(
          "similarity_threshold", config.similarity_threshold);
      config.warp_tolerance =
          params.GetDouble("warp_tolerance", config.warp_tolerance);
      return std::make_unique<PhotonSampler>(config);
    });

    registry.Register("tbpoint", [](const core::SamplerParams& params) {
      TbPointConfig config;
      config.merge_threshold =
          params.GetDouble("merge_threshold", config.merge_threshold);
      config.max_clusters = static_cast<size_t>(params.GetInt(
          "max_clusters", static_cast<int64_t>(config.max_clusters)));
      config.agglomeration_cap = static_cast<size_t>(
          params.GetInt("agglomeration_cap",
                        static_cast<int64_t>(config.agglomeration_cap)));
      return std::make_unique<TbPointSampler>(config);
    });
  });
}

}  // namespace stemroot::baselines
