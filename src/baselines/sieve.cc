#include "baselines/sieve.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"
#include "common/telemetry.h"
#include "profiler/instr_collector.h"

namespace stemroot::baselines {

SieveSampler::SieveSampler(SieveConfig config) : config_(config) {
  if (config_.stable_cov < 0 || config_.variable_cov <= config_.stable_cov)
    throw std::invalid_argument("SieveSampler: bad CoV thresholds");
  if (config_.kde_bins < 4)
    throw std::invalid_argument("SieveSampler: kde_bins too small");
}

std::string SieveSampler::Name() const {
  return config_.random_representative ? "Sieve(random-rep)" : "Sieve";
}

namespace {

/// Split invocation indices into KDE modes over log instruction counts:
/// histogram + smoothing, cut at interior minima between modes.
std::vector<std::vector<uint32_t>> KdeModes(
    const KernelTrace& trace, const std::vector<uint32_t>& members,
    size_t bins) {
  std::vector<double> log_instrs(members.size());
  double lo = 1e300;
  double hi = -1e300;
  for (size_t i = 0; i < members.size(); ++i) {
    log_instrs[i] = std::log2(static_cast<double>(std::max<uint64_t>(
        1, trace.At(members[i]).behavior.instructions)));
    lo = std::min(lo, log_instrs[i]);
    hi = std::max(hi, log_instrs[i]);
  }
  if (hi - lo < 1e-9) return {members};

  // Smoothed histogram ~ Gaussian KDE with bandwidth ~ bin width.
  const double width = (hi - lo) / static_cast<double>(bins);
  std::vector<double> density(bins, 0.0);
  for (double v : log_instrs) {
    const double center = (v - lo) / width;
    for (ptrdiff_t b = static_cast<ptrdiff_t>(center) - 4;
         b <= static_cast<ptrdiff_t>(center) + 4; ++b) {
      if (b < 0 || b >= static_cast<ptrdiff_t>(bins)) continue;
      const double d = (center - (static_cast<double>(b) + 0.5)) / 1.5;
      density[static_cast<size_t>(b)] += std::exp(-0.5 * d * d);
    }
  }

  // Cut points: interior local minima below half the smaller neighbour
  // peak.
  std::vector<double> cuts;
  double left_peak = density[0];
  for (size_t b = 1; b + 1 < bins; ++b) {
    left_peak = std::max(left_peak, density[b - 1]);
    if (density[b] < density[b - 1] && density[b] <= density[b + 1]) {
      double right_peak = 0.0;
      for (size_t j = b + 1; j < bins; ++j)
        right_peak = std::max(right_peak, density[j]);
      if (density[b] < 0.4 * std::min(left_peak, right_peak)) {
        cuts.push_back(lo + (static_cast<double>(b) + 0.5) * width);
        left_peak = 0.0;
      }
    }
  }
  if (cuts.empty()) return {members};

  std::vector<std::vector<uint32_t>> modes(cuts.size() + 1);
  for (size_t i = 0; i < members.size(); ++i) {
    const size_t mode = static_cast<size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), log_instrs[i]) -
        cuts.begin());
    modes[mode].push_back(members[i]);
  }
  std::erase_if(modes, [](const auto& m) { return m.empty(); });
  return modes;
}

/// First-chronological member among those with the dominant CTA size
/// (Sieve's published representative rule).
uint32_t DominantCtaRep(const KernelTrace& trace,
                        const std::vector<uint32_t>& members) {
  std::map<uint32_t, uint64_t> cta_counts;
  for (uint32_t idx : members)
    ++cta_counts[trace.At(idx).launch.ThreadsPerCta()];
  uint32_t dominant = 0;
  uint64_t best = 0;
  for (const auto& [cta, count] : cta_counts) {
    if (count > best) {
      best = count;
      dominant = cta;
    }
  }
  for (uint32_t idx : members)
    if (trace.At(idx).launch.ThreadsPerCta() == dominant) return idx;
  return members.front();
}

}  // namespace

core::SamplingPlan SieveSampler::BuildPlan(const KernelTrace& trace,
                                           uint64_t seed) const {
  if (trace.Empty()) throw std::invalid_argument("SieveSampler: empty trace");

  core::SamplingPlan plan;
  plan.method = Name();
  Rng rng(DeriveSeed(seed, 0x534945564UL));

  auto emit = [&](const std::vector<uint32_t>& members) {
    if (members.empty()) return;
    ++plan.num_clusters;
    const uint32_t rep =
        config_.random_representative
            ? members[rng.NextBounded(members.size())]
            : DominantCtaRep(trace, members);
    plan.entries.push_back({rep, static_cast<double>(members.size())});
  };

  for (const auto& group : trace.GroupByKernel()) {
    if (group.empty()) continue;
    std::vector<double> instrs(group.size());
    for (size_t i = 0; i < group.size(); ++i)
      instrs[i] =
          static_cast<double>(trace.At(group[i]).behavior.instructions);
    const double cov = SummaryStats::Of(instrs).Cov();

    if (cov <= config_.stable_cov || !config_.use_kde) {
      // Stratum 1 (stable) -- or KDE disabled: one sample per kernel name.
      emit(group);
    } else {
      // Strata 2/3: subdivide by instruction-count modes, one sample per
      // mode; highly variable kernels (stratum 3) get a finer-grained KDE.
      const size_t bins = cov > config_.variable_cov ? config_.kde_bins * 2
                                                     : config_.kde_bins;
      for (const auto& mode : KdeModes(trace, group, bins)) emit(mode);
    }
  }
  telemetry::Count("baselines.sieve.plans");
  telemetry::Record("baselines.sieve.strata_per_plan",
                    static_cast<double>(plan.num_clusters));
  return plan;
}

}  // namespace stemroot::baselines
