/// \file
/// PKA — Principal Kernel Analysis (Avalos Baddouh et al., MICRO '21),
/// reimplemented per the paper's Table 1 summary: k-means over 12
/// instruction-level metrics from hardware profiling, k swept 1..20 with
/// an elbow criterion, and the *first-chronological* kernel of each
/// cluster chosen as the representative.
///
/// The hand-tuned variant (random representative instead of first
/// chronological) reproduces the paper's Sec. 5.1 fix for gaussian /
/// heartwall-style workloads.

#pragma once

#include "core/sampler.h"

namespace stemroot::baselines {

/// PKA knobs.
struct PkaConfig {
  uint32_t max_k = 20;
  double elbow_threshold = 0.02;
  /// false = first-chronological representative (PKA as published);
  /// true = random representative (the paper's hand-tuned variant).
  bool random_representative = false;
};

/// PKA sampler.
class PkaSampler : public core::Sampler {
 public:
  explicit PkaSampler(PkaConfig config = {});

  std::string Name() const override;
  bool Deterministic() const override {
    return !config_.random_representative;
  }
  core::SamplingPlan BuildPlan(const KernelTrace& trace,
                               uint64_t seed) const override;

 private:
  PkaConfig config_;
};

}  // namespace stemroot::baselines
