/// \file
/// Shared feature-engineering helpers for the baseline samplers:
/// column z-normalization for PKA's metric matrix and the elbow rule PKA
/// uses to choose k in its k-means sweep.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stemroot::baselines {

/// Z-normalize each column of a row-major n x dim matrix in place.
/// Zero-variance columns become all-zero. Throws on bad shape.
void ZNormalizeColumns(std::span<double> matrix, size_t dim);

/// Elbow rule over a k -> inertia curve (index 0 = k=1): the smallest k
/// whose marginal inertia reduction, relative to the k=1 inertia, falls
/// below `threshold`. Returns a value in [1, inertias.size()].
uint32_t ElbowK(std::span<const double> inertias, double threshold = 0.02);

}  // namespace stemroot::baselines
