/// \file
/// Uniform random kernel sampling: the paper's fallback baseline for the
/// HuggingFace suite (Sec. 5: "selecting each kernel independently with a
/// 0.1% probability") and a comparator everywhere else (10% on Rodinia).

#pragma once

#include "core/sampler.h"

namespace stemroot::baselines {

/// Bernoulli(p) per-invocation sampler; each selected invocation gets
/// weight 1/p. If the draw selects nothing, one invocation is forced so
/// the plan is never empty.
class RandomSampler : public core::Sampler {
 public:
  /// probability must be in (0, 1].
  explicit RandomSampler(double probability);

  std::string Name() const override;
  core::SamplingPlan BuildPlan(const KernelTrace& trace,
                               uint64_t seed) const override;

 private:
  double probability_;
};

}  // namespace stemroot::baselines
