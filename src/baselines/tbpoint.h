/// \file
/// TBPoint (Huang et al., IPDPS '14) — the precursor of PKA, per the
/// paper's Sec. 7.2: "uses microarchitecture-independent metrics obtained
/// from profiling to apply hierarchical clustering, grouping similar
/// kernels, and then sampling the kernel closest to the center of each
/// group."
///
/// Differences from our PkaSampler: agglomerative (bottom-up) hierarchical
/// clustering with a distance cutoff instead of a k-means sweep, and the
/// *centroid-nearest* member as representative instead of the first
/// chronological one. The paper's evaluation tables omit TBPoint (PKA
/// subsumes it); we provide it for completeness.

#pragma once

#include "core/sampler.h"

namespace stemroot::baselines {

/// TBPoint knobs.
struct TbPointConfig {
  /// Merge clusters while the closest pair is nearer than this fraction
  /// of the data's RMS feature radius.
  double merge_threshold = 0.15;
  /// Cap on the number of clusters kept (safety for huge traces).
  size_t max_clusters = 64;
  /// Invocation cap for the O(n^2) agglomeration; larger traces are
  /// pre-reduced with k-means (mirrors TBPoint's small-trace heritage).
  size_t agglomeration_cap = 1024;
};

/// TBPoint sampler.
class TbPointSampler : public core::Sampler {
 public:
  explicit TbPointSampler(TbPointConfig config = {});

  std::string Name() const override { return "TBPoint"; }
  bool Deterministic() const override { return true; }
  core::SamplingPlan BuildPlan(const KernelTrace& trace,
                               uint64_t seed) const override;

 private:
  TbPointConfig config_;
};

}  // namespace stemroot::baselines
