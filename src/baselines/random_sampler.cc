#include "baselines/random_sampler.h"

#include <stdexcept>

#include "common/rng.h"
#include "common/str.h"
#include "common/telemetry.h"

namespace stemroot::baselines {

RandomSampler::RandomSampler(double probability)
    : probability_(probability) {
  if (!(probability > 0.0 && probability <= 1.0))
    throw std::invalid_argument("RandomSampler: probability not in (0, 1]");
}

std::string RandomSampler::Name() const {
  return Format("Random(%.3g%%)", probability_ * 100.0);
}

core::SamplingPlan RandomSampler::BuildPlan(const KernelTrace& trace,
                                            uint64_t seed) const {
  if (trace.Empty())
    throw std::invalid_argument("RandomSampler: empty trace");
  core::SamplingPlan plan;
  plan.method = Name();
  Rng rng(DeriveSeed(seed, 0x52414E44ULL));
  const double weight = 1.0 / probability_;
  for (uint32_t i = 0; i < trace.NumInvocations(); ++i)
    if (rng.NextBool(probability_)) plan.entries.push_back({i, weight});
  if (plan.entries.empty()) {
    const uint32_t idx = static_cast<uint32_t>(
        rng.NextBounded(trace.NumInvocations()));
    plan.entries.push_back(
        {idx, static_cast<double>(trace.NumInvocations())});
  }
  plan.num_clusters = 1;
  telemetry::Count("baselines.random.plans");
  telemetry::Record("baselines.random.samples_per_plan",
                    static_cast<double>(plan.entries.size()));
  return plan;
}

}  // namespace stemroot::baselines
