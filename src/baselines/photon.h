/// \file
/// Photon — fine-grained sampled simulation for GPU workloads (Liu, Sun,
/// Carlson, MICRO '23), reimplemented at kernel granularity per the
/// paper's Table 1 / Sec. 7.2 summary:
///
///  - signature: GPU Basic Block Vector (BBV) plus warp count;
///  - online analysis over the launch timeline: each new invocation is
///    compared against the representatives kept so far; if one matches
///    (BBV similarity above a 95% threshold and warp count within
///    tolerance), the invocation is skipped and the representative's
///    weight grows; otherwise the invocation becomes a new representative;
///  - the comparison cost is what makes Photon O(N*S*d)..O(N^2*d)
///    (Sec. 5.6): every invocation scans the representative list.

#pragma once

#include "core/sampler.h"

namespace stemroot::baselines {

/// Photon knobs.
struct PhotonConfig {
  /// Similarity threshold (paper: 95%). Similarity = 1 - d/2 where d is
  /// the normalized Manhattan distance between BBVs.
  double similarity_threshold = 0.95;
  /// Relative warp-count tolerance for a match.
  double warp_tolerance = 0.10;
};

/// Photon sampler.
class PhotonSampler : public core::Sampler {
 public:
  explicit PhotonSampler(PhotonConfig config = {});

  std::string Name() const override { return "Photon"; }
  bool Deterministic() const override { return true; }
  core::SamplingPlan BuildPlan(const KernelTrace& trace,
                               uint64_t seed) const override;

  /// Number of representative comparisons performed by the last
  /// BuildPlan on this thread -- exposes the quadratic cost for the
  /// scalability bench.
  static uint64_t LastComparisonCount();

 private:
  PhotonConfig config_;
};

}  // namespace stemroot::baselines
