#include "baselines/pka.h"

#include <stdexcept>

#include "baselines/feature.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/kmeans.h"
#include "profiler/metric_profiler.h"

namespace stemroot::baselines {

PkaSampler::PkaSampler(PkaConfig config) : config_(config) {
  if (config_.max_k == 0)
    throw std::invalid_argument("PkaSampler: max_k == 0");
}

std::string PkaSampler::Name() const {
  return config_.random_representative ? "PKA(random-rep)" : "PKA";
}

core::SamplingPlan PkaSampler::BuildPlan(const KernelTrace& trace,
                                         uint64_t seed) const {
  if (trace.Empty()) throw std::invalid_argument("PkaSampler: empty trace");
  const size_t n = trace.NumInvocations();
  constexpr size_t kDim = profiler::PkaFeatures::kDim;

  // Feature matrix from the NCU-like profiler, z-normalized per metric.
  std::vector<double> matrix(n * kDim);
  for (size_t i = 0; i < n; ++i) {
    const profiler::PkaFeatures f =
        profiler::MetricProfiler::Extract(trace, trace.At(i));
    for (size_t j = 0; j < kDim; ++j) matrix[i * kDim + j] = f.values[j];
  }
  ZNormalizeColumns(matrix, kDim);

  // Sweep k = 1..max_k, stopping at the elbow.
  const uint32_t k_limit =
      static_cast<uint32_t>(std::min<size_t>(config_.max_k, n));
  std::vector<double> inertias;
  std::vector<core::KmeansResult> sweeps;
  for (uint32_t k = 1; k <= k_limit; ++k) {
    sweeps.push_back(core::KmeansNd(matrix, kDim, k));
    inertias.push_back(sweeps.back().inertia);
    // Early exit: once inertia flattens the elbow cannot move past here.
    if (k >= 2 && inertias[0] > 0.0 &&
        (inertias[k - 2] - inertias[k - 1]) / inertias[0] <
            config_.elbow_threshold)
      break;
  }
  const uint32_t k_best = ElbowK(inertias, config_.elbow_threshold);
  const core::KmeansResult& clustering = sweeps[k_best - 1];
  telemetry::Count("baselines.pka.plans");
  telemetry::Record("baselines.pka.chosen_k", static_cast<double>(k_best));

  // One representative per cluster, weighted by cluster size.
  std::vector<std::vector<uint32_t>> clusters(k_best);
  for (size_t i = 0; i < n; ++i)
    clusters[clustering.assignment[i]].push_back(static_cast<uint32_t>(i));

  core::SamplingPlan plan;
  plan.method = Name();
  plan.num_clusters = 0;
  Rng rng(DeriveSeed(seed, 0x504B41ULL));
  for (const auto& members : clusters) {
    if (members.empty()) continue;
    ++plan.num_clusters;
    const uint32_t rep =
        config_.random_representative
            ? members[rng.NextBounded(members.size())]
            : members.front();  // first chronological
    plan.entries.push_back({rep, static_cast<double>(members.size())});
  }
  return plan;
}

}  // namespace stemroot::baselines
