#include "baselines/photon.h"

#include <cmath>
#include <stdexcept>

#include "common/telemetry.h"
#include "profiler/bbv_collector.h"

namespace stemroot::baselines {

namespace {
thread_local uint64_t g_comparisons = 0;
}  // namespace

PhotonSampler::PhotonSampler(PhotonConfig config) : config_(config) {
  if (!(config_.similarity_threshold > 0.0 &&
        config_.similarity_threshold <= 1.0))
    throw std::invalid_argument("PhotonSampler: bad similarity threshold");
  if (config_.warp_tolerance < 0.0)
    throw std::invalid_argument("PhotonSampler: bad warp tolerance");
}

uint64_t PhotonSampler::LastComparisonCount() { return g_comparisons; }

core::SamplingPlan PhotonSampler::BuildPlan(const KernelTrace& trace,
                                            uint64_t seed) const {
  (void)seed;  // fully deterministic (online first-occurrence analysis)
  if (trace.Empty())
    throw std::invalid_argument("PhotonSampler: empty trace");
  g_comparisons = 0;

  struct Representative {
    uint32_t invocation;
    uint32_t kernel_id;
    double warps;
    profiler::Bbv bbv;
    uint64_t represented = 1;
  };
  std::vector<Representative> reps;

  const double max_distance = 2.0 * (1.0 - config_.similarity_threshold);
  for (uint32_t i = 0; i < trace.NumInvocations(); ++i) {
    const KernelInvocation& inv = trace.At(i);
    const profiler::Bbv bbv = profiler::BbvCollector::Extract(trace, inv);
    const double warps = static_cast<double>(inv.launch.TotalWarps());

    bool matched = false;
    for (Representative& rep : reps) {
      if (rep.kernel_id != inv.kernel_id) continue;
      ++g_comparisons;
      if (std::abs(warps - rep.warps) >
          config_.warp_tolerance * std::max(1.0, rep.warps))
        continue;
      if (profiler::BbvCollector::NormalizedDistance(bbv, rep.bbv) <=
          max_distance) {
        ++rep.represented;
        matched = true;
        break;
      }
    }
    if (!matched) reps.push_back({i, inv.kernel_id, warps, bbv, 1});
  }

  core::SamplingPlan plan;
  plan.method = Name();
  plan.num_clusters = reps.size();
  plan.entries.reserve(reps.size());
  for (const Representative& rep : reps)
    plan.entries.push_back(
        {rep.invocation, static_cast<double>(rep.represented)});
  telemetry::Count("baselines.photon.plans");
  telemetry::Count("baselines.photon.comparisons", g_comparisons);
  telemetry::Record("baselines.photon.reps_per_plan",
                    static_cast<double>(reps.size()));
  return plan;
}

}  // namespace stemroot::baselines
