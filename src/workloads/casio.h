/// \file
/// CASIO-like ML benchmark suite generators (11 workloads, Table 2).
///
/// Each workload lowers a model's compute graph into a repeated kernel
/// sequence over the shared ML kernel vocabulary (ml_builder.h), averaging
/// ~64k kernel invocations per workload as in the paper's Table 2. The
/// suite exhibits the Fig. 1 phenomenology: GEMMs with multiple narrow
/// peaks, batchnorm with three separated peaks, wide memory-bound pooling
/// and embedding kernels.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/context_model.h"

namespace stemroot::workloads {

/// Names of the 11 CASIO-like workloads.
const std::vector<std::string>& CasioNames();

/// Build the generative spec for one workload. size_scale scales the
/// number of graph iterations (batches). Throws for unknown names.
WorkloadSpec CasioSpec(const std::string& name, double size_scale = 1.0);

/// Generate a trace (durations unset; profile with hw::HardwareModel).
KernelTrace MakeCasio(const std::string& name, uint64_t seed,
                      double size_scale = 1.0);

}  // namespace stemroot::workloads
