/// \file
/// Generative workload model: kernels, contexts, and schedules.
///
/// The paper's key observation (Sec. 2.1) is that large GPU workloads
/// invoke a small set of kernel *types* a huge number of times, and each
/// type is used in a handful of runtime *contexts* (operating on different
/// tensors / memory regions / input shapes). We model a workload as:
///
///   - KernelSpec: a named kernel with a static CFG and a list of contexts;
///   - ContextSpec: a KernelBehavior template plus per-invocation jitter
///     knobs (instruction-count/footprint log-normal sigma, locality
///     Gaussian sigma);
///   - a schedule: either a repeated compute graph (how ML frameworks
///     launch kernels — paper Sec. 2.1 "fixed compute graph") or a random
///     mixture (irregular GPGPU workloads);
///   - an optional per-invocation mutator for irregular trends (e.g.
///     Rodinia gaussian's linearly shrinking kernels, heartwall's
///     1500x-short first call — paper Sec. 5.1).
///
/// Contexts are ground truth: invocations carry a context_id so validation
/// code can measure clustering quality, but samplers never read it.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace stemroot::workloads {

/// One runtime context of a kernel: a behaviour template + jitter knobs.
struct ContextSpec {
  KernelBehavior base;
  LaunchConfig launch;
  /// Log-normal sigma applied to instruction count per invocation.
  double instr_sigma = 0.02;
  /// Log-normal sigma applied to memory footprint per invocation.
  double footprint_sigma = 0.02;
  /// Gaussian sigma applied to locality per invocation (clamped to [0,1]).
  double locality_sigma = 0.01;
};

/// A named kernel and all of its runtime contexts.
struct KernelSpec {
  std::string name;
  uint32_t num_basic_blocks = 8;
  std::vector<ContextSpec> contexts;
};

/// One step of a compute graph: launch kernel `kernel` in context
/// `context`, `repeat` times in a row.
struct GraphOp {
  uint32_t kernel = 0;
  uint32_t context = 0;
  uint32_t repeat = 1;
};

/// How invocations are ordered.
enum class ScheduleKind {
  /// Repeat the `graph` sequence `iterations` times (ML compute graph).
  kGraphLoop,
  /// Draw (kernel, context) pairs i.i.d. by `mix_weights` (irregular code).
  kRandomMix,
};

/// Full generative description of one workload.
struct WorkloadSpec {
  std::string name;
  std::vector<KernelSpec> kernels;

  ScheduleKind schedule = ScheduleKind::kGraphLoop;

  /// kGraphLoop: one iteration of the compute graph, repeated.
  std::vector<GraphOp> graph;
  uint64_t iterations = 1;

  /// kRandomMix: number of invocations and flattened (kernel, context)
  /// weights in kernel-major order. Weights need not be normalized.
  uint64_t random_invocations = 0;
  std::vector<double> mix_weights;

  /// Optional hook mutating each invocation after context sampling;
  /// receives (index, total, invocation). Used for irregular trends.
  std::function<void(uint64_t, uint64_t, KernelInvocation&)> mutator;

  /// Total invocations this spec will generate.
  uint64_t TotalInvocations() const;

  /// Sanity-check indices and weights; throws std::invalid_argument.
  void Validate() const;
};

/// Materialize a trace from a spec. Deterministic given (spec, seed). The
/// returned trace has durations unset; run hw::HardwareModel::ProfileTrace
/// to "profile" it on a GPU.
KernelTrace GenerateWorkload(const WorkloadSpec& spec, uint64_t seed);

/// Scale every context's per-kernel work by `factor`: instructions and
/// grid size linearly (constant per-thread work), footprint sub-linearly.
/// Used to shrink workloads until full cycle-level simulation is feasible,
/// mirroring the paper's Sec. 5.4 ("reduced their sizes to run a full
/// simulation within a few days"). Throws for factor <= 0.
void ScaleSpecWork(WorkloadSpec& spec, double factor);

/// Convenience builders for common behaviour archetypes. All values can be
/// overridden on the returned struct.
/// Compute-bound dense math (GEMM-like): low mem fraction, high locality.
KernelBehavior ComputeBoundBehavior(uint64_t instructions,
                                    uint64_t footprint_bytes);
/// Memory-bound streaming (pooling / elementwise): high mem fraction,
/// moderate locality.
KernelBehavior MemoryBoundBehavior(uint64_t instructions,
                                   uint64_t footprint_bytes);
/// Irregular gather/scatter (embedding lookup / graph traversal): high mem
/// fraction, very low locality.
KernelBehavior IrregularBehavior(uint64_t instructions,
                                 uint64_t footprint_bytes);

}  // namespace stemroot::workloads
