/// \file
/// HuggingFace-like large-scale LLM/ML workload generators (6 workloads,
/// Table 2: Bert, Bloom, DeiT, Gemma, GPT-2, ResNet-50).
///
/// The paper's HuggingFace suite averages ~11.6M kernel calls per workload
/// (1000+ generated sentences / 7000+ classified images). We reproduce the
/// same structure -- prefill + token-by-token decode loops for the LLMs,
/// per-image forward passes for the classifiers -- at a 1:10 scale by
/// default (~0.6-1.5M invocations per workload) so a full suite run fits
/// this machine; size_scale restores or further reduces it. The scaling is
/// documented in EXPERIMENTS.md.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/context_model.h"

namespace stemroot::workloads {

/// Names of the 6 HuggingFace-like workloads.
const std::vector<std::string>& HuggingfaceNames();

/// Build the generative spec. size_scale scales the number of sentences /
/// images. Throws for unknown names.
WorkloadSpec HuggingfaceSpec(const std::string& name,
                             double size_scale = 1.0);

/// Generate a trace (durations unset).
KernelTrace MakeHuggingface(const std::string& name, uint64_t seed,
                            double size_scale = 1.0);

}  // namespace stemroot::workloads
