#include "workloads/context_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace stemroot::workloads {

uint64_t WorkloadSpec::TotalInvocations() const {
  if (schedule == ScheduleKind::kRandomMix) return random_invocations;
  uint64_t per_iteration = 0;
  for (const GraphOp& op : graph) per_iteration += op.repeat;
  return per_iteration * iterations;
}

void WorkloadSpec::Validate() const {
  if (kernels.empty())
    throw std::invalid_argument("WorkloadSpec: no kernels");
  for (const KernelSpec& k : kernels) {
    if (k.contexts.empty())
      throw std::invalid_argument("WorkloadSpec: kernel '" + k.name +
                                  "' has no contexts");
    for (const ContextSpec& c : k.contexts) c.base.Validate();
  }
  if (schedule == ScheduleKind::kGraphLoop) {
    if (graph.empty())
      throw std::invalid_argument("WorkloadSpec: empty graph");
    for (const GraphOp& op : graph) {
      if (op.kernel >= kernels.size())
        throw std::invalid_argument("WorkloadSpec: graph op kernel index");
      if (op.context >= kernels[op.kernel].contexts.size())
        throw std::invalid_argument("WorkloadSpec: graph op context index");
      if (op.repeat == 0)
        throw std::invalid_argument("WorkloadSpec: graph op repeat == 0");
    }
  } else {
    size_t pairs = 0;
    for (const KernelSpec& k : kernels) pairs += k.contexts.size();
    if (mix_weights.size() != pairs)
      throw std::invalid_argument(
          "WorkloadSpec: mix_weights arity != total (kernel, context) pairs");
    const double sum =
        std::accumulate(mix_weights.begin(), mix_weights.end(), 0.0);
    if (sum <= 0.0)
      throw std::invalid_argument("WorkloadSpec: mix_weights sum <= 0");
    if (random_invocations == 0)
      throw std::invalid_argument("WorkloadSpec: random_invocations == 0");
  }
}

namespace {

/// Draw one invocation of (kernel k, context c) with per-invocation jitter.
KernelInvocation DrawInvocation(const KernelSpec& kernel_spec,
                                uint32_t kernel_id, uint32_t context_id,
                                Rng& rng) {
  const ContextSpec& ctx = kernel_spec.contexts[context_id];
  KernelInvocation inv;
  inv.kernel_id = kernel_id;
  inv.context_id = context_id;
  inv.launch = ctx.launch;
  inv.behavior = ctx.base;

  if (ctx.instr_sigma > 0.0) {
    const double scale = rng.NextLogNormal(
        -0.5 * ctx.instr_sigma * ctx.instr_sigma, ctx.instr_sigma);
    inv.behavior.instructions = std::max<uint64_t>(
        32, static_cast<uint64_t>(std::llround(
                static_cast<double>(ctx.base.instructions) * scale)));
    // Input-size-dependent loop trips scale with dynamic instructions, so
    // BBVs see this jitter too.
    inv.behavior.input_scale =
        ctx.base.input_scale * static_cast<float>(scale);
  }
  if (ctx.footprint_sigma > 0.0) {
    const double scale = rng.NextLogNormal(
        -0.5 * ctx.footprint_sigma * ctx.footprint_sigma,
        ctx.footprint_sigma);
    inv.behavior.footprint_bytes = std::max<uint64_t>(
        1024, static_cast<uint64_t>(std::llround(
                  static_cast<double>(ctx.base.footprint_bytes) * scale)));
  }
  if (ctx.locality_sigma > 0.0) {
    const double loc = static_cast<double>(ctx.base.locality) +
                       rng.NextGaussian(0.0, ctx.locality_sigma);
    inv.behavior.locality =
        static_cast<float>(std::clamp(loc, 0.0, 1.0));
  }
  return inv;
}

}  // namespace

KernelTrace GenerateWorkload(const WorkloadSpec& spec, uint64_t seed) {
  spec.Validate();

  KernelTrace trace(spec.name);
  std::vector<uint32_t> kernel_ids;
  kernel_ids.reserve(spec.kernels.size());
  for (const KernelSpec& k : spec.kernels)
    kernel_ids.push_back(
        trace.AddKernelType(KernelType::Synthesize(k.name,
                                                   k.num_basic_blocks)));

  Rng rng(DeriveSeed(seed, HashString(spec.name)));
  const uint64_t total = spec.TotalInvocations();
  trace.Reserve(total);

  auto emit = [&](uint32_t kernel, uint32_t context, uint64_t index) {
    KernelInvocation inv =
        DrawInvocation(spec.kernels[kernel], kernel_ids[kernel], context,
                       rng);
    if (spec.mutator) spec.mutator(index, total, inv);
    inv.behavior.Validate();
    trace.Add(inv);
  };

  if (spec.schedule == ScheduleKind::kGraphLoop) {
    uint64_t index = 0;
    for (uint64_t it = 0; it < spec.iterations; ++it)
      for (const GraphOp& op : spec.graph)
        for (uint32_t r = 0; r < op.repeat; ++r)
          emit(op.kernel, op.context, index++);
  } else {
    // Flatten (kernel, context) pair table and build a cumulative weight
    // vector for O(log P) sampling.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (uint32_t k = 0; k < spec.kernels.size(); ++k)
      for (uint32_t c = 0; c < spec.kernels[k].contexts.size(); ++c)
        pairs.emplace_back(k, c);
    std::vector<double> cumulative(pairs.size());
    double acc = 0.0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      acc += spec.mix_weights[i];
      cumulative[i] = acc;
    }
    for (uint64_t i = 0; i < spec.random_invocations; ++i) {
      const double u = rng.NextDouble() * acc;
      const size_t pick = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      const auto [k, c] = pairs[std::min(pick, pairs.size() - 1)];
      emit(k, c, i);
    }
  }
  return trace;
}

void ScaleSpecWork(WorkloadSpec& spec, double factor) {
  if (factor <= 0.0)
    throw std::invalid_argument("ScaleSpecWork: factor <= 0");
  for (KernelSpec& kernel : spec.kernels) {
    for (ContextSpec& ctx : kernel.contexts) {
      ctx.base.instructions = std::max<uint64_t>(
          1024, static_cast<uint64_t>(std::llround(
                    static_cast<double>(ctx.base.instructions) * factor)));
      ctx.base.footprint_bytes = std::max<uint64_t>(
          16 * 1024,
          static_cast<uint64_t>(std::llround(
              static_cast<double>(ctx.base.footprint_bytes) *
              std::pow(factor, 0.7))));
      ctx.launch.grid_x = std::max<uint32_t>(
          2, static_cast<uint32_t>(std::llround(ctx.launch.grid_x *
                                                factor)));
    }
  }
}

KernelBehavior ComputeBoundBehavior(uint64_t instructions,
                                    uint64_t footprint_bytes) {
  KernelBehavior b;
  b.instructions = instructions;
  b.footprint_bytes = footprint_bytes;
  b.mem_fraction = 0.01f;
  b.shared_fraction = 0.15f;
  b.locality = 0.97f;
  b.coalescing = 0.95f;
  b.branch_divergence = 0.02f;
  b.fp16_fraction = 0.0f;
  b.fp32_fraction = 0.85f;
  b.ilp = 3.5f;
  return b;
}

KernelBehavior MemoryBoundBehavior(uint64_t instructions,
                                   uint64_t footprint_bytes) {
  KernelBehavior b;
  b.instructions = instructions;
  b.footprint_bytes = footprint_bytes;
  b.mem_fraction = 0.25f;
  b.shared_fraction = 0.02f;
  b.locality = 0.35f;
  b.coalescing = 0.92f;
  b.branch_divergence = 0.05f;
  b.fp16_fraction = 0.0f;
  b.fp32_fraction = 0.4f;
  b.ilp = 2.0f;
  return b;
}

KernelBehavior IrregularBehavior(uint64_t instructions,
                                 uint64_t footprint_bytes) {
  KernelBehavior b;
  b.instructions = instructions;
  b.footprint_bytes = footprint_bytes;
  b.mem_fraction = 0.45f;
  b.shared_fraction = 0.0f;
  b.locality = 0.08f;
  b.coalescing = 0.15f;
  b.branch_divergence = 0.35f;
  b.fp16_fraction = 0.0f;
  b.fp32_fraction = 0.3f;
  b.ilp = 1.5f;
  return b;
}

}  // namespace stemroot::workloads
