#include "workloads/rodinia.h"

#include <cmath>
#include <stdexcept>

namespace stemroot::workloads {

namespace {

/// Scale a count by a factor with a floor.
uint64_t ScaleN(uint64_t v, double s, uint64_t lo = 1) {
  const double scaled = static_cast<double>(v) * s;
  return std::max<uint64_t>(lo, static_cast<uint64_t>(std::llround(scaled)));
}

/// Scale invocation work (instructions + footprint) in a mutator.
void ScaleWork(KernelInvocation& inv, double factor,
               double footprint_exponent = 0.7) {
  inv.behavior.instructions =
      std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(
                                 static_cast<double>(
                                     inv.behavior.instructions) * factor)));
  inv.behavior.footprint_bytes = std::max<uint64_t>(
      2048, static_cast<uint64_t>(std::llround(
                static_cast<double>(inv.behavior.footprint_bytes) *
                std::pow(factor, footprint_exponent))));
  inv.behavior.input_scale = std::max(
      1e-4f, inv.behavior.input_scale * static_cast<float>(factor));
}

LaunchConfig Grid(uint32_t blocks, uint32_t threads) {
  LaunchConfig launch;
  launch.grid_x = blocks;
  launch.block_x = threads;
  return launch;
}

WorkloadSpec Backprop(double s) {
  WorkloadSpec spec;
  spec.name = "backprop";
  KernelSpec forward{"bpnn_layerforward", 10, {}};
  ContextSpec fwd;
  fwd.base = ComputeBoundBehavior(ScaleN(240'000'000, s, 4096),
                                  ScaleN(8u << 20, s, 4096));
  fwd.base.shared_fraction = 0.25f;
  fwd.launch = Grid(static_cast<uint32_t>(ScaleN(4096, s, 4)), 256);
  fwd.instr_sigma = 0.03;
  forward.contexts.push_back(fwd);

  KernelSpec adjust{"bpnn_adjust_weights", 6, {}};
  ContextSpec adj;
  adj.base = MemoryBoundBehavior(ScaleN(90'000'000, s, 4096),
                                 ScaleN(24u << 20, s, 4096));
  adj.launch = Grid(static_cast<uint32_t>(ScaleN(4096, s, 4)), 256);
  adj.instr_sigma = 0.03;
  adjust.contexts.push_back(adj);

  spec.kernels = {forward, adjust};
  spec.graph = {{0, 0, 1}, {1, 0, 1}};
  spec.iterations = ScaleN(200, std::sqrt(s), 8);
  return spec;
}

WorkloadSpec Bfs(double s) {
  WorkloadSpec spec;
  spec.name = "bfs";
  KernelSpec k1{"bfs_kernel", 12, {}};
  ContextSpec c1;
  c1.base = IrregularBehavior(ScaleN(60'000'000, s, 4096),
                              ScaleN(48u << 20, s, 8192));
  c1.launch = Grid(static_cast<uint32_t>(ScaleN(2048, s, 4)), 512);
  c1.instr_sigma = 0.10;
  c1.locality_sigma = 0.03;
  k1.contexts.push_back(c1);

  KernelSpec k2{"bfs_kernel2", 4, {}};
  ContextSpec c2;
  c2.base = MemoryBoundBehavior(ScaleN(8'000'000, s, 2048),
                                ScaleN(16u << 20, s, 8192));
  c2.launch = Grid(static_cast<uint32_t>(ScaleN(2048, s, 4)), 512);
  c2.instr_sigma = 0.08;
  k2.contexts.push_back(c2);

  spec.kernels = {k1, k2};
  spec.graph = {{0, 0, 1}, {1, 0, 1}};
  spec.iterations = ScaleN(600, std::sqrt(s), 12);
  // Frontier size follows a bell across BFS levels: tiny at the source,
  // peaking mid-traversal, shrinking to the fringe. This yields the
  // "kernel execution times vary widely" behaviour of Sec. 5.1.
  spec.mutator = [](uint64_t i, uint64_t total, KernelInvocation& inv) {
    const double progress = static_cast<double>(i) /
                            static_cast<double>(std::max<uint64_t>(1, total));
    const double bell =
        std::exp(-std::pow(progress - 0.5, 2) / (2 * 0.18 * 0.18));
    ScaleWork(inv, std::max(0.01, bell));
  };
  return spec;
}

WorkloadSpec Btree(double s) {
  WorkloadSpec spec;
  spec.name = "b+tree";
  KernelSpec find_k{"findK", 9, {}};
  ContextSpec fk;
  fk.base = IrregularBehavior(ScaleN(30'000'000, s, 2048),
                              ScaleN(96u << 20, s, 8192));
  fk.base.locality = 0.25f;
  fk.launch = Grid(static_cast<uint32_t>(ScaleN(6000, s, 4)), 256);
  fk.instr_sigma = 0.06;
  find_k.contexts.push_back(fk);

  KernelSpec find_range{"findRangeK", 11, {}};
  ContextSpec fr;
  fr.base = IrregularBehavior(ScaleN(45'000'000, s, 2048),
                              ScaleN(96u << 20, s, 8192));
  fr.base.locality = 0.22f;
  fr.launch = Grid(static_cast<uint32_t>(ScaleN(6000, s, 4)), 256);
  fr.instr_sigma = 0.07;
  find_range.contexts.push_back(fr);

  spec.kernels = {find_k, find_range};
  spec.schedule = ScheduleKind::kRandomMix;
  spec.random_invocations = ScaleN(200, std::sqrt(s), 16);
  spec.mix_weights = {1.0, 1.0};
  return spec;
}

WorkloadSpec Cfd(double s) {
  WorkloadSpec spec;
  spec.name = "cfd";
  KernelSpec step_factor{"compute_step_factor", 5, {}};
  ContextSpec sf;
  sf.base = MemoryBoundBehavior(ScaleN(24'000'000, s, 2048),
                                ScaleN(20u << 20, s, 8192));
  sf.launch = Grid(static_cast<uint32_t>(ScaleN(1212, s, 4)), 192);
  step_factor.contexts.push_back(sf);

  KernelSpec flux{"compute_flux", 14, {}};
  ContextSpec fx;
  fx.base = ComputeBoundBehavior(ScaleN(420'000'000, s, 4096),
                                 ScaleN(40u << 20, s, 8192));
  fx.base.mem_fraction = 0.06f;
  fx.base.locality = 0.85f;
  fx.launch = Grid(static_cast<uint32_t>(ScaleN(1212, s, 4)), 192);
  fx.instr_sigma = 0.025;
  flux.contexts.push_back(fx);

  KernelSpec time_step{"time_step", 4, {}};
  ContextSpec ts;
  ts.base = MemoryBoundBehavior(ScaleN(16'000'000, s, 2048),
                                ScaleN(20u << 20, s, 8192));
  ts.launch = Grid(static_cast<uint32_t>(ScaleN(1212, s, 4)), 192);
  time_step.contexts.push_back(ts);

  spec.kernels = {step_factor, flux, time_step};
  spec.graph = {{0, 0, 1}, {1, 0, 1}, {2, 0, 1}};
  spec.iterations = ScaleN(2000, std::sqrt(s), 20);
  return spec;
}

WorkloadSpec Gaussian(double s) {
  WorkloadSpec spec;
  spec.name = "gaussian";
  KernelSpec fan1{"Fan1", 3, {}};
  ContextSpec f1;
  f1.base = MemoryBoundBehavior(ScaleN(2'000'000, s, 1024),
                                ScaleN(4u << 20, s, 4096));
  f1.launch = Grid(static_cast<uint32_t>(ScaleN(4, s, 4)), 512);
  fan1.contexts.push_back(f1);

  KernelSpec fan2{"Fan2", 5, {}};
  ContextSpec f2;
  f2.base = ComputeBoundBehavior(ScaleN(160'000'000, s, 2048),
                                 ScaleN(16u << 20, s, 4096));
  f2.base.mem_fraction = 0.06f;
  f2.base.locality = 0.8f;
  f2.launch = Grid(static_cast<uint32_t>(ScaleN(256, s, 4)), 512);
  fan2.contexts.push_back(f2);

  spec.kernels = {fan1, fan2};
  spec.graph = {{0, 0, 1}, {1, 0, 1}};
  spec.iterations = ScaleN(1023, std::sqrt(s), 32);
  // Work on the remaining submatrix shrinks quadratically toward zero as
  // elimination proceeds (Sec. 5.1: "the number of executed instructions
  // decreases steadily, approaching zero in later iterations").
  spec.mutator = [](uint64_t i, uint64_t total, KernelInvocation& inv) {
    const double progress = static_cast<double>(i) /
                            static_cast<double>(std::max<uint64_t>(1, total));
    const double remaining = 1.0 - progress;
    ScaleWork(inv, std::max(1e-4, remaining * remaining));
  };
  return spec;
}

WorkloadSpec Heartwall(double s) {
  WorkloadSpec spec;
  spec.name = "heartwall";
  KernelSpec kernel{"heartwall_kernel", 16, {}};
  ContextSpec ctx;
  ctx.base = ComputeBoundBehavior(ScaleN(1'500'000'000, s, 1'500'000),
                                  ScaleN(64u << 20, s, 65536));
  ctx.base.mem_fraction = 0.012f;
  ctx.base.locality = 0.93f;
  ctx.launch = Grid(static_cast<uint32_t>(ScaleN(51, s, 4)), 512);
  ctx.instr_sigma = 0.02;
  kernel.contexts.push_back(ctx);

  spec.kernels = {kernel};
  spec.graph = {{0, 0, 1}};
  spec.iterations = 104;  // frames; fixed regardless of scale
  // The first frame only sets up tracking state: ~1500x fewer instructions
  // than the steady-state frames (Sec. 5.1).
  spec.mutator = [](uint64_t i, uint64_t, KernelInvocation& inv) {
    if (i == 0) ScaleWork(inv, 1.0 / 1500.0);
  };
  return spec;
}

WorkloadSpec Hotspot(double s) {
  WorkloadSpec spec;
  spec.name = "hotspot";
  KernelSpec kernel{"calculate_temp", 7, {}};
  ContextSpec ctx;
  ctx.base = ComputeBoundBehavior(ScaleN(110'000'000, s, 2048),
                                  ScaleN(12u << 20, s, 8192));
  ctx.base.shared_fraction = 0.3f;
  ctx.base.mem_fraction = 0.02f;
  ctx.launch = Grid(static_cast<uint32_t>(ScaleN(1849, s, 4)), 256);
  ctx.instr_sigma = 0.015;
  kernel.contexts.push_back(ctx);

  spec.kernels = {kernel};
  spec.graph = {{0, 0, 1}};
  spec.iterations = ScaleN(1000, std::sqrt(s), 16);
  return spec;
}

WorkloadSpec Kmeans(double s) {
  WorkloadSpec spec;
  spec.name = "kmeans";
  KernelSpec point{"kmeansPoint", 8, {}};
  ContextSpec kp;
  kp.base = ComputeBoundBehavior(ScaleN(300'000'000, s, 4096),
                                 ScaleN(32u << 20, s, 8192));
  kp.base.mem_fraction = 0.05f;
  kp.base.locality = 0.8f;
  kp.launch = Grid(static_cast<uint32_t>(ScaleN(1936, s, 4)), 256);
  kp.instr_sigma = 0.03;
  point.contexts.push_back(kp);

  KernelSpec invert{"invert_mapping", 3, {}};
  ContextSpec im;
  im.base = MemoryBoundBehavior(ScaleN(40'000'000, s, 2048),
                                ScaleN(32u << 20, s, 8192));
  im.launch = Grid(static_cast<uint32_t>(ScaleN(1936, s, 4)), 256);
  invert.contexts.push_back(im);

  spec.kernels = {point, invert};
  spec.graph = {{0, 0, 1}, {1, 0, 1}};
  spec.iterations = ScaleN(300, std::sqrt(s), 10);
  return spec;
}

WorkloadSpec Lavamd(double s) {
  WorkloadSpec spec;
  spec.name = "lavaMD";
  KernelSpec kernel{"kernel_gpu_cuda", 10, {}};
  ContextSpec ctx;
  ctx.base = ComputeBoundBehavior(ScaleN(2'400'000'000, s, 8192),
                                  ScaleN(20u << 20, s, 8192));
  ctx.base.shared_fraction = 0.2f;
  ctx.launch = Grid(static_cast<uint32_t>(ScaleN(1000, s, 4)), 128);
  ctx.instr_sigma = 0.015;
  kernel.contexts.push_back(ctx);

  spec.kernels = {kernel};
  spec.graph = {{0, 0, 1}};
  spec.iterations = ScaleN(100, std::sqrt(s), 8);
  return spec;
}

WorkloadSpec Lud(double s) {
  WorkloadSpec spec;
  spec.name = "lud";
  KernelSpec diagonal{"lud_diagonal", 6, {}};
  ContextSpec dg;
  dg.base = ComputeBoundBehavior(ScaleN(1'500'000, s, 1024),
                                 ScaleN(1u << 20, s, 4096));
  dg.launch = Grid(1, 256);
  diagonal.contexts.push_back(dg);

  KernelSpec perimeter{"lud_perimeter", 8, {}};
  ContextSpec pm;
  pm.base = ComputeBoundBehavior(ScaleN(40'000'000, s, 1024),
                                 ScaleN(8u << 20, s, 4096));
  pm.launch = Grid(static_cast<uint32_t>(ScaleN(128, s, 4)), 256);
  perimeter.contexts.push_back(pm);

  KernelSpec internal{"lud_internal", 7, {}};
  ContextSpec in;
  in.base = ComputeBoundBehavior(ScaleN(220'000'000, s, 2048),
                                 ScaleN(16u << 20, s, 4096));
  in.launch = Grid(static_cast<uint32_t>(ScaleN(4096, s, 4)), 256);
  internal.contexts.push_back(in);

  spec.kernels = {diagonal, perimeter, internal};
  spec.graph = {{0, 0, 1}, {1, 0, 1}, {2, 0, 1}};
  spec.iterations = ScaleN(300, std::sqrt(s), 12);
  // The trailing submatrix shrinks each step; perimeter/internal work
  // decays quadratically while the diagonal factor stays constant.
  spec.mutator = [](uint64_t i, uint64_t total, KernelInvocation& inv) {
    const double progress = static_cast<double>(i) /
                            static_cast<double>(std::max<uint64_t>(1, total));
    const double remaining = 1.0 - progress;
    if (inv.kernel_id != 0)  // diagonal kernel is constant-size
      ScaleWork(inv, std::max(1e-3, remaining * remaining));
  };
  return spec;
}

WorkloadSpec Nw(double s) {
  WorkloadSpec spec;
  spec.name = "nw";
  KernelSpec k1{"needle_cuda_shared_1", 5, {}};
  ContextSpec c1;
  c1.base = ComputeBoundBehavior(ScaleN(50'000'000, s, 1024),
                                 ScaleN(24u << 20, s, 4096));
  c1.base.shared_fraction = 0.35f;
  c1.base.mem_fraction = 0.03f;
  c1.launch = Grid(static_cast<uint32_t>(ScaleN(128, s, 4)), 256);
  k1.contexts.push_back(c1);

  KernelSpec k2{"needle_cuda_shared_2", 5, {}};
  ContextSpec c2 = c1;
  k2.contexts.push_back(c2);

  spec.kernels = {k1, k2};
  spec.graph = {{0, 0, 1}, {1, 0, 1}};
  spec.iterations = ScaleN(639, std::sqrt(s), 16);
  // Anti-diagonal wavefront: the active diagonal grows to the matrix width
  // then shrinks back; triangular work profile.
  spec.mutator = [](uint64_t i, uint64_t total, KernelInvocation& inv) {
    const double progress = static_cast<double>(i) /
                            static_cast<double>(std::max<uint64_t>(1, total));
    const double triangular = 1.0 - std::abs(2.0 * progress - 1.0);
    ScaleWork(inv, std::max(0.01, triangular));
  };
  return spec;
}

WorkloadSpec ParticleFilter(double s, bool naive) {
  WorkloadSpec spec;
  spec.name = naive ? "pf_naive" : "pf_float";

  // The likelihood kernel dwarfs everything else (up to 100x longer --
  // Sec. 5.1).
  KernelSpec likelihood{naive ? "likelihood_naive" : "likelihood_kernel", 13,
                        {}};
  ContextSpec lk;
  lk.base = ComputeBoundBehavior(ScaleN(4'500'000'000, s, 8192),
                                 ScaleN(32u << 20, s, 8192));
  lk.base.mem_fraction = naive ? 0.30f : 0.012f;
  lk.base.locality = naive ? 0.35f : 0.93f;
  lk.launch = Grid(static_cast<uint32_t>(ScaleN(512, s, 4)), 512);
  lk.instr_sigma = 0.04;
  likelihood.contexts.push_back(lk);

  KernelSpec sum{"sum_kernel", 3, {}};
  ContextSpec sm;
  sm.base = MemoryBoundBehavior(ScaleN(9'000'000, s, 1024),
                                ScaleN(4u << 20, s, 4096));
  sm.launch = Grid(static_cast<uint32_t>(ScaleN(512, s, 4)), 512);
  sum.contexts.push_back(sm);

  KernelSpec normalize{"normalize_weights", 3, {}};
  ContextSpec nw_ctx;
  nw_ctx.base = MemoryBoundBehavior(ScaleN(7'000'000, s, 1024),
                                    ScaleN(4u << 20, s, 4096));
  nw_ctx.launch = Grid(static_cast<uint32_t>(ScaleN(512, s, 4)), 512);
  normalize.contexts.push_back(nw_ctx);

  KernelSpec find_index{"find_index", 6, {}};
  ContextSpec fi;
  fi.base = IrregularBehavior(ScaleN(2'000'000, s, 1024),
                              ScaleN(8u << 20, s, 4096));
  fi.base.coalescing = 0.5f;
  fi.launch = Grid(static_cast<uint32_t>(ScaleN(512, s, 4)), 512);
  find_index.contexts.push_back(fi);

  if (naive) {
    spec.kernels = {likelihood, sum};
    spec.graph = {{0, 0, 1}, {1, 0, 1}};
    spec.iterations = ScaleN(750, std::sqrt(s), 16);
  } else {
    spec.kernels = {likelihood, sum, normalize, find_index};
    spec.graph = {{0, 0, 1}, {1, 0, 1}, {2, 0, 1}, {3, 0, 1}};
    spec.iterations = ScaleN(750, std::sqrt(s), 16);
  }
  return spec;
}

}  // namespace

const std::vector<std::string>& RodiniaNames() {
  static const std::vector<std::string> kNames = {
      "backprop", "bfs",       "b+tree", "cfd",    "gaussian",
      "heartwall", "hotspot",  "kmeans", "lavaMD", "lud",
      "nw",        "pf_float", "pf_naive"};
  return kNames;
}

WorkloadSpec RodiniaSpec(const std::string& name, double size_scale) {
  if (size_scale <= 0.0)
    throw std::invalid_argument("RodiniaSpec: size_scale <= 0");
  if (name == "backprop") return Backprop(size_scale);
  if (name == "bfs") return Bfs(size_scale);
  if (name == "b+tree") return Btree(size_scale);
  if (name == "cfd") return Cfd(size_scale);
  if (name == "gaussian") return Gaussian(size_scale);
  if (name == "heartwall") return Heartwall(size_scale);
  if (name == "hotspot") return Hotspot(size_scale);
  if (name == "kmeans") return Kmeans(size_scale);
  if (name == "lavaMD") return Lavamd(size_scale);
  if (name == "lud") return Lud(size_scale);
  if (name == "nw") return Nw(size_scale);
  if (name == "pf_float") return ParticleFilter(size_scale, false);
  if (name == "pf_naive") return ParticleFilter(size_scale, true);
  throw std::invalid_argument("RodiniaSpec: unknown workload '" + name + "'");
}

KernelTrace MakeRodinia(const std::string& name, uint64_t seed,
                        double size_scale) {
  return GenerateWorkload(RodiniaSpec(name, size_scale), seed);
}

}  // namespace stemroot::workloads
