#include "workloads/ml_builder.h"

#include <cmath>
#include <stdexcept>

namespace stemroot::workloads {

MlWorkloadBuilder::MlWorkloadBuilder(std::string name) {
  spec_.name = std::move(name);
  spec_.schedule = ScheduleKind::kGraphLoop;
}

uint32_t MlWorkloadBuilder::AddKernel(KernelSpec kernel) {
  if (kernel.contexts.empty())
    throw std::invalid_argument("MlWorkloadBuilder: kernel without contexts");
  spec_.kernels.push_back(std::move(kernel));
  return static_cast<uint32_t>(spec_.kernels.size() - 1);
}

MlWorkloadBuilder& MlWorkloadBuilder::Op(uint32_t kernel, uint32_t context,
                                         uint32_t repeat) {
  if (kernel >= spec_.kernels.size())
    throw std::invalid_argument("MlWorkloadBuilder::Op: bad kernel index");
  if (context >= spec_.kernels[kernel].contexts.size())
    throw std::invalid_argument("MlWorkloadBuilder::Op: bad context index");
  spec_.graph.push_back({kernel, context, repeat});
  return *this;
}

WorkloadSpec MlWorkloadBuilder::Build(uint64_t iterations) && {
  if (iterations == 0)
    throw std::invalid_argument("MlWorkloadBuilder::Build: iterations == 0");
  spec_.iterations = iterations;
  spec_.Validate();
  return std::move(spec_);
}

namespace {

uint64_t Work(double base, double work) {
  return std::max<uint64_t>(
      1024, static_cast<uint64_t>(std::llround(base * work)));
}

LaunchConfig Grid(uint32_t blocks, uint32_t threads) {
  LaunchConfig launch;
  launch.grid_x = blocks;
  launch.block_x = threads;
  return launch;
}

}  // namespace

KernelSpec MakeGemm(const std::string& name, double work, int contexts) {
  if (contexts < 1 || contexts > 4)
    throw std::invalid_argument("MakeGemm: contexts must be 1..4");
  KernelSpec kernel{name, 12, {}};
  // Context k scales work by ~2.2^k and shifts locality: the same GEMM code
  // applied to different operand shapes/placements. Narrow per-context
  // jitter => distinct peaks (Fig. 1).
  static constexpr float kLocality[4] = {0.97f, 0.93f, 0.88f, 0.95f};
  for (int c = 0; c < contexts; ++c) {
    ContextSpec ctx;
    const double scale = std::pow(2.2, c);
    ctx.base = ComputeBoundBehavior(Work(9.0e8 * scale, work),
                                    Work(6.0e6 * scale, work));
    ctx.base.locality = kLocality[c];
    ctx.base.input_scale = static_cast<float>(scale);
    // Identical launch parameters across contexts: the paper's observed
    // heterogeneity arises with "consistent parameters (grid size, block
    // size, instruction count)" (Sec. 2.1).
    ctx.launch = Grid(128, 256);
    ctx.instr_sigma = 0.012;
    ctx.locality_sigma = 0.004;
    kernel.contexts.push_back(ctx);
  }
  return kernel;
}

KernelSpec MakeWinogradConv(const std::string& name, double work) {
  KernelSpec kernel{name, 14, {}};
  // Early layers: large spatial extent, fewer channels; late layers: the
  // reverse. Same code, ~3x work ratio, different locality.
  ContextSpec early;
  early.base = ComputeBoundBehavior(Work(1.5e9, work), Work(2.4e7, work));
  early.base.shared_fraction = 0.22f;
  early.base.mem_fraction = 0.012f;
  early.base.locality = 0.95f;
  early.launch = Grid(256, 256);
  early.instr_sigma = 0.015;
  kernel.contexts.push_back(early);

  ContextSpec late;
  late.base = ComputeBoundBehavior(Work(5.0e8, work), Work(1.0e7, work));
  late.base.shared_fraction = 0.22f;
  late.base.mem_fraction = 0.012f;
  late.base.locality = 0.90f;
  late.base.input_scale = 0.33f;
  late.launch = Grid(256, 256);
  late.instr_sigma = 0.015;
  kernel.contexts.push_back(late);
  return kernel;
}

KernelSpec MakeBatchnorm(const std::string& name, double work) {
  KernelSpec kernel{name, 6, {}};
  // Three tensor shapes across the network depth -> three separated peaks.
  // Same instruction count per element; footprint and locality differ.
  static constexpr double kShape[3] = {1.0, 0.38, 0.10};
  static constexpr float kLoc[3] = {0.62f, 0.70f, 0.78f};
  for (int c = 0; c < 3; ++c) {
    ContextSpec ctx;
    ctx.base = MemoryBoundBehavior(Work(2.4e7 * kShape[c], work),
                                   Work(2.4e7 * kShape[c], work));
    ctx.base.locality = kLoc[c];
    ctx.base.input_scale = static_cast<float>(kShape[c]);
    ctx.launch = Grid(264, 256);
    ctx.instr_sigma = 0.02;
    ctx.locality_sigma = 0.012;
    kernel.contexts.push_back(ctx);
  }
  return kernel;
}

KernelSpec MakeMaxPool(const std::string& name, double work) {
  KernelSpec kernel{name, 4, {}};
  ContextSpec ctx;
  ctx.base = MemoryBoundBehavior(Work(2.0e7, work), Work(3.0e7, work));
  ctx.base.locality = 0.40f;
  ctx.base.mem_fraction = 0.35f;
  ctx.launch = Grid(512, 256);
  // Wide single-mode distribution: large locality jitter (cache-line
  // alignment of the sliding window varies per batch).
  ctx.instr_sigma = 0.03;
  ctx.locality_sigma = 0.05;
  kernel.contexts.push_back(ctx);
  return kernel;
}

KernelSpec MakeElementwise(const std::string& name, double work) {
  KernelSpec kernel{name, 3, {}};
  ContextSpec ctx;
  ctx.base = MemoryBoundBehavior(Work(1.0e7, work), Work(1.0e7, work));
  ctx.base.locality = 0.45f;
  ctx.launch = Grid(640, 256);
  ctx.instr_sigma = 0.025;
  ctx.locality_sigma = 0.02;
  kernel.contexts.push_back(ctx);
  return kernel;
}

KernelSpec MakeSoftmax(const std::string& name, double work) {
  KernelSpec kernel{name, 5, {}};
  ContextSpec big;
  big.base = MemoryBoundBehavior(Work(1.6e7, work), Work(1.2e7, work));
  big.base.locality = 0.5f;
  big.launch = Grid(384, 256);
  big.instr_sigma = 0.025;
  kernel.contexts.push_back(big);

  ContextSpec small = big;
  small.base = MemoryBoundBehavior(Work(5.0e6, work), Work(4.0e6, work));
  small.base.locality = 0.55f;
  small.base.input_scale = 0.3f;
  small.launch = Grid(384, 256);
  kernel.contexts.push_back(small);
  return kernel;
}

KernelSpec MakeLayerNorm(const std::string& name, double work) {
  KernelSpec kernel{name, 4, {}};
  ContextSpec pre_attn;
  pre_attn.base = MemoryBoundBehavior(Work(1.2e7, work), Work(1.0e7, work));
  pre_attn.base.locality = 0.75f;
  pre_attn.launch = Grid(256, 256);
  pre_attn.instr_sigma = 0.02;
  kernel.contexts.push_back(pre_attn);

  ContextSpec pre_ffn = pre_attn;
  // Same shape and instruction count; the input tensor lives cold in L2
  // after the FFN GEMMs evicted it -> lower locality, same static
  // signature. Only execution time can tell these apart (Sec. 5.2).
  pre_ffn.base.locality = 0.25f;
  kernel.contexts.push_back(pre_ffn);
  return kernel;
}

KernelSpec MakeEmbeddingLookup(const std::string& name, double work) {
  KernelSpec kernel{name, 7, {}};
  ContextSpec ctx;
  ctx.base = IrregularBehavior(Work(3.0e6, work), Work(6.0e8, work));
  ctx.base.locality = 0.10f;
  ctx.launch = Grid(256, 256);
  // Extremely wide: random gather across a huge table.
  ctx.instr_sigma = 0.05;
  ctx.locality_sigma = 0.04;
  kernel.contexts.push_back(ctx);
  return kernel;
}

KernelSpec MakeOptimizerStep(const std::string& name, double work) {
  KernelSpec kernel{name, 3, {}};
  ContextSpec ctx;
  ctx.base = MemoryBoundBehavior(Work(2.0e8, work), Work(3.0e8, work));
  ctx.base.locality = 0.05f;  // pure streaming: no reuse at all
  ctx.base.coalescing = 0.98f;
  ctx.base.mem_fraction = 0.5f;
  ctx.launch = Grid(4096, 256);
  ctx.instr_sigma = 0.015;
  kernel.contexts.push_back(ctx);
  return kernel;
}

KernelSpec MakeAttention(const std::string& name, double work) {
  KernelSpec kernel{name, 10, {}};
  ContextSpec prefill;
  prefill.base = ComputeBoundBehavior(Work(2.0e9, work), Work(3.2e7, work));
  prefill.base.fp16_fraction = 0.75f;
  prefill.base.fp32_fraction = 0.1f;
  prefill.base.shared_fraction = 0.2f;
  prefill.base.locality = 0.9f;
  prefill.launch = Grid(512, 256);
  prefill.instr_sigma = 0.015;
  kernel.contexts.push_back(prefill);

  ContextSpec decode;
  decode.base = MemoryBoundBehavior(Work(4.0e7, work), Work(4.0e7, work));
  decode.base.fp16_fraction = 0.6f;
  decode.base.fp32_fraction = 0.1f;
  decode.base.mem_fraction = 0.3f;
  decode.base.locality = 0.3f;
  decode.base.input_scale = 0.05f;
  decode.launch = Grid(512, 256);
  decode.instr_sigma = 0.03;
  decode.locality_sigma = 0.03;
  kernel.contexts.push_back(decode);
  return kernel;
}

}  // namespace stemroot::workloads
