/// \file
/// Unified enumeration of the three benchmark suites (paper Table 2).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.h"

namespace stemroot::workloads {

/// Benchmark suite identifiers.
enum class SuiteId { kRodinia, kCasio, kHuggingface };

/// Human-readable suite name ("Rodinia", "CASIO", "Huggingface").
const char* SuiteName(SuiteId id);

/// Parse a CLI-style suite token ("rodinia" / "casio" / "huggingface",
/// case-insensitive); std::nullopt for unknown names.
std::optional<SuiteId> SuiteFromName(std::string_view name);

/// Canonical lowercase token; round-trips through SuiteFromName for every
/// SuiteId.
const char* ToName(SuiteId id);

/// Workload names of one suite.
const std::vector<std::string>& SuiteWorkloads(SuiteId id);

/// All three suite ids.
const std::vector<SuiteId>& AllSuites();

/// Dispatch to the right suite generator. Throws for unknown names.
KernelTrace MakeWorkload(SuiteId id, const std::string& name, uint64_t seed,
                         double size_scale = 1.0);

}  // namespace stemroot::workloads
