#include "workloads/suite.h"

#include <stdexcept>

#include "workloads/casio.h"
#include "workloads/huggingface.h"
#include "workloads/rodinia.h"

namespace stemroot::workloads {

const char* SuiteName(SuiteId id) {
  switch (id) {
    case SuiteId::kRodinia: return "Rodinia";
    case SuiteId::kCasio: return "CASIO";
    case SuiteId::kHuggingface: return "Huggingface";
  }
  throw std::invalid_argument("SuiteName: bad id");
}

const std::vector<std::string>& SuiteWorkloads(SuiteId id) {
  switch (id) {
    case SuiteId::kRodinia: return RodiniaNames();
    case SuiteId::kCasio: return CasioNames();
    case SuiteId::kHuggingface: return HuggingfaceNames();
  }
  throw std::invalid_argument("SuiteWorkloads: bad id");
}

const std::vector<SuiteId>& AllSuites() {
  static const std::vector<SuiteId> kAll = {
      SuiteId::kRodinia, SuiteId::kCasio, SuiteId::kHuggingface};
  return kAll;
}

KernelTrace MakeWorkload(SuiteId id, const std::string& name, uint64_t seed,
                         double size_scale) {
  switch (id) {
    case SuiteId::kRodinia: return MakeRodinia(name, seed, size_scale);
    case SuiteId::kCasio: return MakeCasio(name, seed, size_scale);
    case SuiteId::kHuggingface:
      return MakeHuggingface(name, seed, size_scale);
  }
  throw std::invalid_argument("MakeWorkload: bad id");
}

}  // namespace stemroot::workloads
