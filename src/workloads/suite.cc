#include "workloads/suite.h"

#include <cctype>
#include <stdexcept>

#include "common/telemetry.h"
#include "workloads/casio.h"
#include "workloads/huggingface.h"
#include "workloads/rodinia.h"

namespace stemroot::workloads {

const char* SuiteName(SuiteId id) {
  switch (id) {
    case SuiteId::kRodinia: return "Rodinia";
    case SuiteId::kCasio: return "CASIO";
    case SuiteId::kHuggingface: return "Huggingface";
  }
  throw std::invalid_argument("SuiteName: bad id");
}

std::optional<SuiteId> SuiteFromName(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (lower == "rodinia") return SuiteId::kRodinia;
  if (lower == "casio") return SuiteId::kCasio;
  if (lower == "huggingface") return SuiteId::kHuggingface;
  return std::nullopt;
}

const char* ToName(SuiteId id) {
  switch (id) {
    case SuiteId::kRodinia: return "rodinia";
    case SuiteId::kCasio: return "casio";
    case SuiteId::kHuggingface: return "huggingface";
  }
  throw std::invalid_argument("ToName: bad id");
}

const std::vector<std::string>& SuiteWorkloads(SuiteId id) {
  switch (id) {
    case SuiteId::kRodinia: return RodiniaNames();
    case SuiteId::kCasio: return CasioNames();
    case SuiteId::kHuggingface: return HuggingfaceNames();
  }
  throw std::invalid_argument("SuiteWorkloads: bad id");
}

const std::vector<SuiteId>& AllSuites() {
  static const std::vector<SuiteId> kAll = {
      SuiteId::kRodinia, SuiteId::kCasio, SuiteId::kHuggingface};
  return kAll;
}

KernelTrace MakeWorkload(SuiteId id, const std::string& name, uint64_t seed,
                         double size_scale) {
  KernelTrace trace = [&] {
    switch (id) {
      case SuiteId::kRodinia: return MakeRodinia(name, seed, size_scale);
      case SuiteId::kCasio: return MakeCasio(name, seed, size_scale);
      case SuiteId::kHuggingface:
        return MakeHuggingface(name, seed, size_scale);
    }
    throw std::invalid_argument("MakeWorkload: bad id");
  }();
  telemetry::Count("workloads.traces_generated");
  telemetry::Count("workloads.invocations_generated",
                   trace.NumInvocations());
  telemetry::Record("workloads.trace_invocations",
                    static_cast<double>(trace.NumInvocations()));
  return trace;
}

}  // namespace stemroot::workloads
