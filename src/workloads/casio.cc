#include "workloads/casio.h"

#include <cmath>
#include <stdexcept>

#include "workloads/ml_builder.h"

namespace stemroot::workloads {

namespace {

uint64_t Iters(uint64_t base, double s) {
  return std::max<uint64_t>(
      4, static_cast<uint64_t>(std::llround(static_cast<double>(base) * s)));
}

/// Transformer encoder stack shared by bert_infer / bert_train.
WorkloadSpec Bert(double s, bool train) {
  MlWorkloadBuilder b(train ? "bert_train" : "bert_infer");
  const uint32_t gemm = b.AddKernel(MakeGemm("sgemm_128x64_nn", 1.0, 3));
  const uint32_t softmax = b.AddKernel(MakeSoftmax("softmax_fw", 1.0));
  const uint32_t ln = b.AddKernel(MakeLayerNorm("layernorm_fw", 1.0));
  const uint32_t gelu = b.AddKernel(MakeElementwise("gelu_fw", 1.0));
  const uint32_t add = b.AddKernel(MakeElementwise("elementwise_add", 1.0));
  uint32_t dgemm = 0, opt = 0, dropout = 0;
  if (train) {
    dgemm = b.AddKernel(MakeGemm("sgemm_128x64_tn", 1.1, 3));
    opt = b.AddKernel(MakeOptimizerStep("adam_update", 1.0));
    dropout = b.AddKernel(MakeElementwise("dropout_fw", 1.0));
  }

  const int layers = 12;
  for (int layer = 0; layer < layers; ++layer) {
    b.Op(ln, 0);
    b.Op(gemm, 0, 3);  // Q, K, V projections
    b.Op(softmax, 0);
    b.Op(gemm, 1);     // attention output projection
    b.Op(add, 0);
    b.Op(ln, 1);       // same code, colder cache (pre-FFN context)
    b.Op(gemm, 2);     // FFN up (4x hidden)
    b.Op(gelu, 0);
    b.Op(gemm, 1);     // FFN down
    b.Op(add, 0);
    if (train) {
      b.Op(dropout, 0, 2);
      b.Op(dgemm, 2);  // FFN weight grads
      b.Op(dgemm, 1, 2);
      b.Op(dgemm, 0, 3);
    }
  }
  b.Op(gemm, 1);  // pooler / classifier head
  if (train) b.Op(opt, 0);
  return std::move(b).Build(Iters(train ? 300 : 470, s));
}

/// DLRM: embedding-dominated recommendation model (paper Fig. 10 subject).
WorkloadSpec Dlrm(double s, bool train) {
  MlWorkloadBuilder b(train ? "dlrm_train" : "dlrm_infer");
  const uint32_t emb =
      b.AddKernel(MakeEmbeddingLookup("embedding_lookup", 1.0));
  const uint32_t bot = b.AddKernel(MakeGemm("sgemm_32x32_sliced", 0.05, 2));
  const uint32_t top = b.AddKernel(MakeGemm("sgemm_64x32_sliced", 0.12, 2));
  const uint32_t inter = b.AddKernel(MakeElementwise("interact_features", 0.4));
  const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", 0.3));
  uint32_t opt = 0, grad = 0;
  if (train) {
    grad = b.AddKernel(MakeEmbeddingLookup("embedding_grad", 1.3));
    opt = b.AddKernel(MakeOptimizerStep("sgd_update", 0.5));
  }

  b.Op(emb, 0, 26);  // 26 sparse features
  b.Op(bot, 0).Op(relu, 0).Op(bot, 1).Op(relu, 0);
  b.Op(inter, 0);
  b.Op(top, 0).Op(relu, 0).Op(top, 1).Op(relu, 0).Op(top, 1);
  if (train) {
    b.Op(grad, 0, 8);
    b.Op(opt, 0);
  }
  return std::move(b).Build(Iters(train ? 1400 : 1800, s));
}

/// GNMT-style recurrent seq2seq: per-timestep LSTM gate GEMMs.
WorkloadSpec GnmtInfer(double s) {
  MlWorkloadBuilder b("gnmt_infer");
  const uint32_t gemm = b.AddKernel(MakeGemm("lstm_gemm_128x64", 0.4, 2));
  const uint32_t gates = b.AddKernel(MakeElementwise("lstm_pointwise", 0.6));
  const uint32_t softmax = b.AddKernel(MakeSoftmax("softmax_fw", 1.4));
  const uint32_t attn = b.AddKernel(MakeElementwise("attention_score", 0.8));

  const int timesteps = 40;
  for (int t = 0; t < timesteps; ++t) {
    b.Op(gemm, 0).Op(gemm, 1);   // input + recurrent projections
    b.Op(gates, 0);
    b.Op(attn, 0);
    b.Op(softmax, t % 2 == 0 ? 0u : 1u);
  }
  return std::move(b).Build(Iters(310, s));
}

/// NCF: tiny MLP + two embedding gathers per step.
WorkloadSpec NcfInfer(double s) {
  MlWorkloadBuilder b("ncf_infer");
  const uint32_t emb = b.AddKernel(MakeEmbeddingLookup("embedding_lookup", 0.4));
  const uint32_t mlp = b.AddKernel(MakeGemm("sgemm_32x32_sliced", 0.03, 2));
  const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", 0.15));
  const uint32_t sig = b.AddKernel(MakeElementwise("sigmoid_fw", 0.05));

  b.Op(emb, 0, 2);
  b.Op(mlp, 0).Op(relu, 0).Op(mlp, 1).Op(relu, 0).Op(mlp, 1).Op(sig, 0);
  return std::move(b).Build(Iters(7800, s));
}

/// ResNet-50 style CNN.
WorkloadSpec Resnet50(double s, bool train) {
  MlWorkloadBuilder b(train ? "resnet50_train" : "resnet50_infer");
  const uint32_t conv =
      b.AddKernel(MakeWinogradConv("volta_scudnn_winograd_128x128", 1.0));
  const uint32_t bn = b.AddKernel(MakeBatchnorm("bn_fw_inf", 1.0));
  const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", 0.6));
  const uint32_t pool = b.AddKernel(MakeMaxPool("max_pool_fw", 1.0));
  const uint32_t fc = b.AddKernel(MakeGemm("sgemm_128x64_nn", 0.4, 1));
  const uint32_t add = b.AddKernel(MakeElementwise("elementwise_add", 0.6));
  uint32_t wgrad = 0, opt = 0;
  if (train) {
    wgrad = b.AddKernel(MakeWinogradConv("volta_scudnn_wgrad_128x128", 1.2));
    opt = b.AddKernel(MakeOptimizerStep("sgd_momentum_update", 0.8));
  }

  // Stage structure: early stages use the wide-context conv, late stages
  // the deep-context conv; bn context follows depth (its 3 shapes).
  b.Op(conv, 0).Op(bn, 0).Op(relu, 0).Op(pool, 0);
  for (int block = 0; block < 6; ++block) {  // stages 1-2
    b.Op(conv, 0, 3).Op(bn, 0, 3).Op(relu, 0, 3).Op(add, 0);
  }
  for (int block = 0; block < 6; ++block) {  // stage 3
    b.Op(conv, 1, 3).Op(bn, 1, 3).Op(relu, 0, 3).Op(add, 0);
  }
  for (int block = 0; block < 4; ++block) {  // stage 4
    b.Op(conv, 1, 3).Op(bn, 2, 3).Op(relu, 0, 3).Op(add, 0);
  }
  b.Op(pool, 0).Op(fc, 0);
  if (train) {
    b.Op(wgrad, 0, 8).Op(wgrad, 1, 8);
    b.Op(opt, 0);
  }
  return std::move(b).Build(Iters(train ? 280 : 380, s));
}

/// SSD-ResNet34 detector.
WorkloadSpec SsdRn34Infer(double s) {
  MlWorkloadBuilder b("ssdrn34_infer");
  const uint32_t conv =
      b.AddKernel(MakeWinogradConv("volta_scudnn_winograd_128x128", 0.8));
  const uint32_t bn = b.AddKernel(MakeBatchnorm("bn_fw_inf", 0.8));
  const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", 0.5));
  const uint32_t head = b.AddKernel(MakeGemm("detection_head_gemm", 0.25, 2));
  const uint32_t nms = b.AddKernel(MakeEmbeddingLookup("nms_gather", 0.15));
  const uint32_t softmax = b.AddKernel(MakeSoftmax("softmax_fw", 0.8));

  for (int block = 0; block < 10; ++block) {
    b.Op(conv, block < 6 ? 0u : 1u, 3);
    b.Op(bn, block < 4 ? 0u : (block < 8 ? 1u : 2u), 3);
    b.Op(relu, 0, 3);
  }
  b.Op(head, 0, 3).Op(head, 1, 3);
  b.Op(softmax, 0).Op(nms, 0);
  return std::move(b).Build(Iters(760, s));
}

/// UNet encoder/decoder.
WorkloadSpec Unet(double s, bool train) {
  MlWorkloadBuilder b(train ? "unet_train" : "unet_infer");
  const uint32_t conv =
      b.AddKernel(MakeWinogradConv("volta_scudnn_winograd_128x128", 1.3));
  const uint32_t bn = b.AddKernel(MakeBatchnorm("bn_fw_inf", 1.2));
  const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", 0.9));
  const uint32_t pool = b.AddKernel(MakeMaxPool("max_pool_fw", 1.3));
  const uint32_t up = b.AddKernel(MakeElementwise("upsample_nearest", 1.1));
  const uint32_t cat = b.AddKernel(MakeElementwise("concat_channels", 1.0));
  uint32_t wgrad = 0, opt = 0;
  if (train) {
    wgrad = b.AddKernel(MakeWinogradConv("volta_scudnn_wgrad_128x128", 1.5));
    opt = b.AddKernel(MakeOptimizerStep("adam_update", 1.1));
  }

  for (int level = 0; level < 4; ++level) {  // encoder
    b.Op(conv, level < 2 ? 0u : 1u, 2);
    b.Op(bn, level < 2 ? 0u : 2u, 2);
    b.Op(relu, 0, 2);
    b.Op(pool, 0);
  }
  b.Op(conv, 1, 2).Op(bn, 2, 2).Op(relu, 0, 2);  // bottleneck
  for (int level = 0; level < 4; ++level) {  // decoder
    b.Op(up, 0).Op(cat, 0);
    b.Op(conv, level < 2 ? 1u : 0u, 2);
    b.Op(bn, level < 2 ? 2u : 0u, 2);
    b.Op(relu, 0, 2);
  }
  if (train) {
    b.Op(wgrad, 0, 6).Op(wgrad, 1, 6);
    b.Op(opt, 0);
  }
  return std::move(b).Build(Iters(train ? 700 : 900, s));
}

}  // namespace

const std::vector<std::string>& CasioNames() {
  static const std::vector<std::string> kNames = {
      "bert_infer",     "bert_train",     "dlrm_infer",  "dlrm_train",
      "gnmt_infer",     "ncf_infer",      "resnet50_infer",
      "resnet50_train", "ssdrn34_infer",  "unet_infer",  "unet_train"};
  return kNames;
}

WorkloadSpec CasioSpec(const std::string& name, double size_scale) {
  if (size_scale <= 0.0)
    throw std::invalid_argument("CasioSpec: size_scale <= 0");
  if (name == "bert_infer") return Bert(size_scale, false);
  if (name == "bert_train") return Bert(size_scale, true);
  if (name == "dlrm_infer") return Dlrm(size_scale, false);
  if (name == "dlrm_train") return Dlrm(size_scale, true);
  if (name == "gnmt_infer") return GnmtInfer(size_scale);
  if (name == "ncf_infer") return NcfInfer(size_scale);
  if (name == "resnet50_infer") return Resnet50(size_scale, false);
  if (name == "resnet50_train") return Resnet50(size_scale, true);
  if (name == "ssdrn34_infer") return SsdRn34Infer(size_scale);
  if (name == "unet_infer") return Unet(size_scale, false);
  if (name == "unet_train") return Unet(size_scale, true);
  throw std::invalid_argument("CasioSpec: unknown workload '" + name + "'");
}

KernelTrace MakeCasio(const std::string& name, uint64_t seed,
                      double size_scale) {
  return GenerateWorkload(CasioSpec(name, size_scale), seed);
}

}  // namespace stemroot::workloads
