/// \file
/// Builder for ML-style workloads (CASIO / HuggingFace suites).
///
/// ML frameworks lower a fixed compute graph into a long sequence of
/// launches drawn from a small kernel vocabulary (paper Sec. 2.1). The
/// builder assembles such graphs: register kernels (with one ContextSpec
/// per usage context), append graph ops, and set the iteration (batch)
/// count. It also carries the shared kernel vocabulary both ML suites use
/// (GEMM, winograd conv, batchnorm, pooling, elementwise, softmax,
/// layernorm, embedding lookup, optimizer update, attention).

#pragma once

#include <cstdint>
#include <string>

#include "workloads/context_model.h"

namespace stemroot::workloads {

/// Incremental WorkloadSpec assembly for graph-loop workloads.
class MlWorkloadBuilder {
 public:
  explicit MlWorkloadBuilder(std::string name);

  /// Register a kernel; returns its index for Op().
  uint32_t AddKernel(KernelSpec kernel);

  /// Append `repeat` launches of (kernel, context) to the graph iteration.
  MlWorkloadBuilder& Op(uint32_t kernel, uint32_t context,
                        uint32_t repeat = 1);

  /// Finish with the given number of graph iterations (batches).
  WorkloadSpec Build(uint64_t iterations) &&;

 private:
  WorkloadSpec spec_;
};

/// Shared vocabulary of ML kernels. `work` scales instruction counts and
/// footprints; every factory returns a kernel with the listed contexts.

/// Dense GEMM with `contexts` distinct usage contexts. Contexts differ in
/// input scale (tile count) AND cache locality, producing the multiple
/// narrow peaks of Fig. 1's sgemm_128x64. Compute-bound: narrow jitter.
KernelSpec MakeGemm(const std::string& name, double work, int contexts);

/// Winograd convolution, 2 contexts (early wide layers / late deep layers).
KernelSpec MakeWinogradConv(const std::string& name, double work);

/// Batchnorm inference kernel with 3 contexts (Fig. 1's bn_fw_inf shows 3
/// clearly separated peaks). Memory-bound: moderate width per peak.
KernelSpec MakeBatchnorm(const std::string& name, double work);

/// Max-pooling: single context, memory-bound, wide distribution (Fig. 1's
/// max_pool shows significant runtime jitter).
KernelSpec MakeMaxPool(const std::string& name, double work);

/// Light elementwise op (ReLU / add / dropout): memory-bound streaming.
KernelSpec MakeElementwise(const std::string& name, double work);

/// Softmax over attention logits: memory-bound, 2 contexts.
KernelSpec MakeSoftmax(const std::string& name, double work);

/// LayerNorm: memory-bound, 2 contexts (pre-attention / pre-FFN).
KernelSpec MakeLayerNorm(const std::string& name, double work);

/// Embedding-table gather: irregular, very wide distribution. The DLRM
/// workload's dominant kernel (paper Sec. 5.4: "memory-intensive behaviour
/// and random access patterns due to large embedding tables").
KernelSpec MakeEmbeddingLookup(const std::string& name, double work);

/// Optimizer step (Adam/SGD): training-only; one context, heavy streaming
/// over all parameters -- the rare, long kernel that fattens the workload's
/// per-invocation duration tail.
KernelSpec MakeOptimizerStep(const std::string& name, double work);

/// Fused attention kernel (FP16 tensor-core path), 2 contexts
/// (prefill / decode shapes for LLM workloads).
KernelSpec MakeAttention(const std::string& name, double work);

}  // namespace stemroot::workloads
