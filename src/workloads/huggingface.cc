#include "workloads/huggingface.h"

#include <cmath>
#include <stdexcept>

#include "workloads/ml_builder.h"

namespace stemroot::workloads {

namespace {

uint64_t Iters(uint64_t base, double s) {
  return std::max<uint64_t>(
      2, static_cast<uint64_t>(std::llround(static_cast<double>(base) * s)));
}

/// Decoder-only LLM serving: one prefill pass then a decode loop, repeated
/// per generated sentence. `work` scales per-kernel cost with model size.
WorkloadSpec LlmServing(const std::string& name, double work, int layers,
                        int decode_tokens, uint64_t sentences, double s) {
  MlWorkloadBuilder b(name);
  const uint32_t attn = b.AddKernel(MakeAttention("fmha_cutlass_fwd", work));
  const uint32_t gemm =
      b.AddKernel(MakeGemm("ampere_fp16_gemm_256x128", work, 3));
  const uint32_t ln = b.AddKernel(MakeLayerNorm("layernorm_fw", work * 0.4));
  const uint32_t act = b.AddKernel(MakeElementwise("gelu_fw", work * 0.4));
  const uint32_t add =
      b.AddKernel(MakeElementwise("elementwise_add", work * 0.4));
  const uint32_t embed =
      b.AddKernel(MakeEmbeddingLookup("token_embedding", work * 0.15));
  const uint32_t sample = b.AddKernel(MakeSoftmax("sampling_softmax", work));

  // Prefill: context 0 of attention/GEMMs (large shapes).
  b.Op(embed, 0);
  for (int layer = 0; layer < layers; ++layer) {
    b.Op(ln, 0).Op(gemm, 2).Op(attn, 0).Op(gemm, 1).Op(add, 0);
    b.Op(ln, 1).Op(gemm, 2).Op(act, 0).Op(gemm, 1).Op(add, 0);
  }
  // Decode: context 1 (single-token shapes; memory-bound KV-cache reads).
  for (int token = 0; token < decode_tokens; ++token) {
    b.Op(embed, 0);
    for (int layer = 0; layer < layers; ++layer) {
      b.Op(ln, 0).Op(gemm, 0).Op(attn, 1).Op(gemm, 0).Op(add, 0);
      b.Op(ln, 1).Op(gemm, 0).Op(act, 0).Op(gemm, 0).Op(add, 0);
    }
    b.Op(sample, 1);
  }
  return std::move(b).Build(Iters(sentences, s));
}

/// Vision model classifying a stream of images.
WorkloadSpec VisionServing(const std::string& name, bool transformer,
                           double work, uint64_t images, double s) {
  MlWorkloadBuilder b(name);
  if (transformer) {
    // DeiT: ViT encoder.
    const uint32_t gemm =
        b.AddKernel(MakeGemm("ampere_fp16_gemm_128x64", work, 3));
    const uint32_t attn = b.AddKernel(MakeAttention("fmha_cutlass_fwd", work));
    const uint32_t ln = b.AddKernel(MakeLayerNorm("layernorm_fw", work * 0.5));
    const uint32_t act = b.AddKernel(MakeElementwise("gelu_fw", work * 0.5));
    const uint32_t patch =
        b.AddKernel(MakeWinogradConv("patch_embed_conv", work * 0.6));
    b.Op(patch, 0);
    for (int layer = 0; layer < 12; ++layer) {
      b.Op(ln, 0).Op(gemm, 0, 3).Op(attn, 0).Op(gemm, 1);
      b.Op(ln, 1).Op(gemm, 2).Op(act, 0).Op(gemm, 1);
    }
    b.Op(gemm, 1);  // classifier
  } else {
    // ResNet-50 serving.
    const uint32_t conv =
        b.AddKernel(MakeWinogradConv("volta_scudnn_winograd_128x128", work));
    const uint32_t bn = b.AddKernel(MakeBatchnorm("bn_fw_inf", work));
    const uint32_t relu = b.AddKernel(MakeElementwise("relu_fw", work * 0.5));
    const uint32_t pool = b.AddKernel(MakeMaxPool("max_pool_fw", work));
    const uint32_t fc = b.AddKernel(MakeGemm("sgemm_128x64_nn", work * 0.4, 1));
    b.Op(conv, 0).Op(bn, 0).Op(relu, 0).Op(pool, 0);
    for (int block = 0; block < 16; ++block) {
      b.Op(conv, block < 8 ? 0u : 1u, 3);
      b.Op(bn, block < 5 ? 0u : (block < 11 ? 1u : 2u), 3);
      b.Op(relu, 0, 3);
    }
    b.Op(pool, 0).Op(fc, 0);
  }
  return std::move(b).Build(Iters(images, s));
}

}  // namespace

const std::vector<std::string>& HuggingfaceNames() {
  static const std::vector<std::string> kNames = {"bert",  "bloom",
                                                  "deit",  "gemma",
                                                  "gpt2",  "resnet50"};
  return kNames;
}

WorkloadSpec HuggingfaceSpec(const std::string& name, double size_scale) {
  if (size_scale <= 0.0)
    throw std::invalid_argument("HuggingfaceSpec: size_scale <= 0");
  // Sentence/image counts are 1:10 of the paper's scale (1000+ sentences /
  // 7000+ images) so a full-suite run fits this machine.
  if (name == "bert")
    // Encoder; "generation" here is masked-LM scoring of sentences.
    return LlmServing("bert", 0.35, 12, 24, 260, size_scale);
  if (name == "bloom") return LlmServing("bloom", 1.6, 30, 56, 36, size_scale);
  if (name == "deit")
    return VisionServing("deit", true, 0.5, 1400, size_scale);
  if (name == "gemma")
    return LlmServing("gemma", 1.2, 26, 64, 48, size_scale);
  if (name == "gpt2") return LlmServing("gpt2", 0.5, 12, 80, 110, size_scale);
  if (name == "resnet50")
    return VisionServing("resnet50", false, 0.6, 1800, size_scale);
  throw std::invalid_argument("HuggingfaceSpec: unknown workload '" + name +
                              "'");
}

KernelTrace MakeHuggingface(const std::string& name, uint64_t seed,
                            double size_scale) {
  return GenerateWorkload(HuggingfaceSpec(name, size_scale), seed);
}

}  // namespace stemroot::workloads
