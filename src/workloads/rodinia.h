/// \file
/// Rodinia-like GPGPU/HPC workload generators (13 workloads, Table 2).
///
/// These reproduce the irregular behaviours the paper calls out in
/// Sec. 5.1:
///  - gaussian: the same elimination kernels invoked ~2N times with
///    steadily shrinking work, approaching zero in late iterations;
///  - heartwall: one kernel whose first invocation executes ~1500x fewer
///    instructions than every later invocation;
///  - pf_float / pf_naive: particle-filter pipelines where one kernel is up
///    to 100x longer than the others;
///  - bfs / nw: wavefront workloads whose kernel cost ramps up and back
///    down across iterations (frontier / anti-diagonal size).
///
/// Invocation counts are sized so the suite averages ~1.4k kernel calls per
/// workload, matching Table 2.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/context_model.h"

namespace stemroot::workloads {

/// Names of the 13 Rodinia-like workloads.
const std::vector<std::string>& RodiniaNames();

/// Build the generative spec of one Rodinia-like workload.
/// size_scale scales instruction counts / footprints / iteration counts
/// (used by the DSE bench to shrink workloads for full cycle simulation,
/// mirroring the paper's Sec. 5.4 "reduced their sizes"). Throws
/// std::invalid_argument for unknown names.
WorkloadSpec RodiniaSpec(const std::string& name, double size_scale = 1.0);

/// Generate a profiled-ready trace (durations unset) for one workload.
KernelTrace MakeRodinia(const std::string& name, uint64_t seed,
                        double size_scale = 1.0);

}  // namespace stemroot::workloads
