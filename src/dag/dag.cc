#include "dag/dag.h"

#include <algorithm>
#include <stdexcept>

namespace stemroot::dag {

uint32_t DagWorkload::InternKernel(const std::string& kernel_name) {
  auto it = name_to_id_.find(kernel_name);
  if (it != name_to_id_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(kernel_names_.size());
  name_to_id_.emplace(kernel_name, id);
  kernel_names_.push_back(kernel_name);
  return id;
}

const std::string& DagWorkload::KernelName(uint32_t kernel_id) const {
  return kernel_names_.at(kernel_id);
}

uint32_t DagWorkload::Add(DagOp op) {
  if (op.kernel_id >= kernel_names_.size())
    throw std::invalid_argument("DagWorkload::Add: unregistered kernel_id");
  if (op.device >= num_devices_)
    throw std::invalid_argument("DagWorkload::Add: device out of range");
  if (op.kind == OpKind::kPointToPoint && op.peer_device >= num_devices_)
    throw std::invalid_argument("DagWorkload::Add: peer out of range");
  const uint32_t index = static_cast<uint32_t>(ops_.size());
  for (uint32_t dep : op.deps) {
    if (dep >= index)
      throw std::invalid_argument(
          "DagWorkload::Add: dependency on a later op (not topological)");
  }
  ops_.push_back(std::move(op));
  return index;
}

std::vector<std::vector<uint32_t>> DagWorkload::GroupByKernel() const {
  std::vector<std::vector<uint32_t>> groups(kernel_names_.size());
  for (uint32_t i = 0; i < ops_.size(); ++i)
    groups[ops_[i].kernel_id].push_back(i);
  return groups;
}

double DagWorkload::TotalDurationUs() const {
  double total = 0.0;
  for (const DagOp& op : ops_) total += op.duration_us;
  return total;
}

ScheduleResult ScheduleDagWith(const DagWorkload& workload,
                               std::span<const double> durations_us) {
  if (durations_us.size() != workload.NumOps())
    throw std::invalid_argument("ScheduleDagWith: arity mismatch");

  ScheduleResult result;
  result.start_us.resize(workload.NumOps());
  // Resource-ready times: one per device plus one interconnect channel.
  std::vector<double> device_free(workload.NumDevices(), 0.0);
  double link_free = 0.0;
  std::vector<double> finish(workload.NumOps(), 0.0);

  for (uint32_t i = 0; i < workload.NumOps(); ++i) {
    const DagOp& op = workload.At(i);
    const double duration = durations_us[i];
    if (duration <= 0.0)
      throw std::invalid_argument("ScheduleDag: non-positive duration");

    double ready = 0.0;
    for (uint32_t dep : op.deps) ready = std::max(ready, finish[dep]);

    double start;
    switch (op.kind) {
      case OpKind::kCompute:
        start = std::max(ready, device_free[op.device]);
        device_free[op.device] = start + duration;
        result.compute_time_us += duration;
        break;
      case OpKind::kCollective:
        // A collective occupies the interconnect and synchronizes every
        // device: it cannot start before all devices are free, and all
        // devices resume after it.
        start = std::max(ready, link_free);
        for (double free_at : device_free) start = std::max(start, free_at);
        link_free = start + duration;
        for (double& free_at : device_free) free_at = start + duration;
        result.comm_time_us += duration;
        break;
      case OpKind::kPointToPoint:
        start = std::max(ready, link_free);
        link_free = start + duration;
        result.comm_time_us += duration;
        break;
      default:
        throw std::invalid_argument("ScheduleDag: bad op kind");
    }
    result.start_us[i] = start;
    finish[i] = start + duration;
    result.makespan_us = std::max(result.makespan_us, finish[i]);
  }
  return result;
}

ScheduleResult ScheduleDag(const DagWorkload& workload) {
  std::vector<double> durations;
  durations.reserve(workload.NumOps());
  for (const DagOp& op : workload.Ops()) durations.push_back(op.duration_us);
  return ScheduleDagWith(workload, durations);
}

}  // namespace stemroot::dag
