#include "dag/sampler.h"

#include <stdexcept>

#include "common/rng.h"
#include "core/kkt.h"

namespace stemroot::dag {

StemDagSampler::StemDagSampler(core::RootConfig config)
    : config_(std::move(config)) {
  config_.Validate();
}

DagSamplingPlan StemDagSampler::BuildPlan(const DagWorkload& workload,
                                          uint64_t seed) const {
  if (workload.NumOps() == 0)
    throw std::invalid_argument("StemDagSampler: empty workload");

  DagSamplingPlan plan;
  plan.flat.method = "STEM-DAG";
  plan.cluster_of_op.assign(workload.NumOps(), 0);

  // Group by op type, ROOT-cluster each group's durations.
  struct FinalCluster {
    std::vector<uint32_t> members;
    core::ClusterStats stats;
  };
  std::vector<FinalCluster> clusters;
  for (const auto& group : workload.GroupByKernel()) {
    if (group.empty()) continue;
    std::vector<double> durations;
    durations.reserve(group.size());
    for (uint32_t idx : group) {
      const double d = workload.At(idx).duration_us;
      if (d <= 0.0)
        throw std::invalid_argument("StemDagSampler: unprofiled op");
      durations.push_back(d);
    }
    for (auto& c : core::RootCluster1D(durations, group, config_)) {
      FinalCluster cluster;
      cluster.members = std::move(c.members);
      cluster.stats = c.stats;
      clusters.push_back(std::move(cluster));
    }
  }
  plan.num_clusters = clusters.size();

  // Joint KKT sizing across every cluster.
  std::vector<core::ClusterStats> stats;
  stats.reserve(clusters.size());
  for (const FinalCluster& c : clusters) stats.push_back(c.stats);
  const core::KktSolution solution = core::SolveKkt(stats, config_.stem);
  plan.flat.theoretical_error = solution.theoretical_error;
  plan.flat.num_clusters = clusters.size();

  // Random sampling with replacement inside each cluster; record the
  // per-cluster sampled mean for the plug-in makespan estimator.
  plan.cluster_mean_us.assign(clusters.size(), 0.0);
  Rng rng(DeriveSeed(seed, 0xDA65A4ULL));
  for (uint32_t c = 0; c < clusters.size(); ++c) {
    const FinalCluster& cluster = clusters[c];
    for (uint32_t idx : cluster.members) plan.cluster_of_op[idx] = c;

    const uint64_t n = cluster.members.size();
    const uint64_t m = solution.sample_sizes[c];
    if (m == 0 || n == 0) continue;
    double sum = 0.0;
    if (m >= n) {
      for (uint32_t idx : cluster.members) {
        plan.flat.entries.push_back({idx, 1.0});
        sum += workload.At(idx).duration_us;
      }
      plan.cluster_mean_us[c] = sum / static_cast<double>(n);
      continue;
    }
    const double weight = static_cast<double>(n) / static_cast<double>(m);
    for (uint64_t draw = 0; draw < m; ++draw) {
      const uint32_t idx = cluster.members[rng.NextBounded(n)];
      plan.flat.entries.push_back({idx, weight});
      sum += workload.At(idx).duration_us;
    }
    plan.cluster_mean_us[c] = sum / static_cast<double>(m);
  }
  return plan;
}

double EstimateTotalUs(const DagSamplingPlan& plan,
                       const DagWorkload& workload) {
  double total = 0.0;
  for (const core::SampleEntry& entry : plan.flat.entries) {
    if (entry.invocation >= workload.NumOps())
      throw std::out_of_range("EstimateTotalUs: op index");
    total += entry.weight * workload.At(entry.invocation).duration_us;
  }
  return total;
}

double EstimateMakespanUs(const DagSamplingPlan& plan,
                          const DagWorkload& workload) {
  if (plan.cluster_of_op.size() != workload.NumOps())
    throw std::invalid_argument("EstimateMakespanUs: plan/workload mismatch");
  std::vector<double> durations(workload.NumOps());
  for (uint32_t i = 0; i < workload.NumOps(); ++i) {
    const double mean = plan.cluster_mean_us[plan.cluster_of_op[i]];
    if (mean <= 0.0)
      throw std::invalid_argument(
          "EstimateMakespanUs: cluster without samples");
    durations[i] = mean;
  }
  return ScheduleDagWith(workload, durations).makespan_us;
}

double SampledCostUs(const DagSamplingPlan& plan,
                     const DagWorkload& workload) {
  double cost = 0.0;
  for (uint32_t idx : plan.flat.DistinctInvocations())
    cost += workload.At(idx).duration_us;
  return cost;
}

}  // namespace stemroot::dag
