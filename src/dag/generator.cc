#include "dag/generator.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "workloads/context_model.h"

namespace stemroot::dag {

void MultiGpuTrainingConfig::Validate() const {
  if (devices == 0 || layers == 0 || microbatches == 0 || steps == 0)
    throw std::invalid_argument("MultiGpuTrainingConfig: zero dimension");
  if (work <= 0.0)
    throw std::invalid_argument("MultiGpuTrainingConfig: work <= 0");
  if (parallelism == Parallelism::kPipeline && layers < devices)
    throw std::invalid_argument(
        "MultiGpuTrainingConfig: pipeline needs layers >= devices");
}

namespace {

/// Per-op behaviour archetypes with hidden contexts, shared with the
/// single-GPU suites' phenomenology.
struct OpTemplates {
  // Forward layer: compute bound; two contexts (early / late layers
  // differ in activation locality).
  KernelBehavior fwd[2];
  // Backward layer: ~2x forward work, same context structure.
  KernelBehavior bwd[2];
  // Optimizer: streaming memory bound, one context.
  KernelBehavior opt;

  static OpTemplates Make(double work) {
    OpTemplates t;
    t.fwd[0] = workloads::ComputeBoundBehavior(
        static_cast<uint64_t>(1.1e9 * work), 24u << 20);
    t.fwd[0].fp16_fraction = 0.6f;
    t.fwd[0].fp32_fraction = 0.2f;
    t.fwd[1] = t.fwd[0];
    // Deeper layers: wider FFN (more work) on colder activations.
    t.fwd[1].instructions = static_cast<uint64_t>(1.8e9 * work);
    t.fwd[1].locality = 0.88f;
    t.fwd[1].mem_fraction = 0.03f;
    t.fwd[1].input_scale = 1.6f;

    for (int c = 0; c < 2; ++c) {
      t.bwd[c] = t.fwd[c];
      t.bwd[c].instructions *= 2;
    }
    t.opt = workloads::MemoryBoundBehavior(
        static_cast<uint64_t>(2.0e8 * work), 300u << 20);
    t.opt.locality = 0.05f;
    t.opt.coalescing = 0.98f;
    t.opt.mem_fraction = 0.5f;
    return t;
  }
};

LaunchConfig TrainingLaunch() {
  LaunchConfig launch;
  launch.grid_x = 256;
  launch.block_x = 256;
  return launch;
}

/// Per-invocation jitter on a behaviour template (mirrors ContextSpec
/// jitter in the single-GPU generator).
KernelBehavior Jitter(const KernelBehavior& base, Rng& rng) {
  KernelBehavior b = base;
  const double scale = rng.NextLogNormal(-0.5 * 0.02 * 0.02, 0.02);
  b.instructions = std::max<uint64_t>(
      1024, static_cast<uint64_t>(std::llround(
                static_cast<double>(base.instructions) * scale)));
  b.input_scale = base.input_scale * static_cast<float>(scale);
  return b;
}

DagWorkload DataParallel(const MultiGpuTrainingConfig& config,
                         uint64_t seed) {
  DagWorkload workload("dp_training", config.devices);
  const OpTemplates templates = OpTemplates::Make(config.work);
  Rng rng(DeriveSeed(seed, HashString("dp")));

  const uint32_t fwd_id = workload.InternKernel("layer_forward");
  const uint32_t bwd_id = workload.InternKernel("layer_backward");
  const uint32_t allreduce_id = workload.InternKernel("grad_allreduce");
  const uint32_t opt_id = workload.InternKernel("adam_update");

  // Per device: the index of its most recent op in the current step.
  std::vector<uint32_t> last_op(config.devices);
  uint32_t last_allreduce = 0;
  bool first_step = true;

  for (uint32_t step = 0; step < config.steps; ++step) {
    std::vector<uint32_t> device_tail(config.devices);
    for (uint32_t device = 0; device < config.devices; ++device) {
      uint32_t prev = first_step ? 0u : last_allreduce;
      bool has_prev = !first_step;
      // Forward then backward over the layer stack.
      for (int pass = 0; pass < 2; ++pass) {
        for (uint32_t layer = 0; layer < config.layers; ++layer) {
          DagOp op;
          op.kind = OpKind::kCompute;
          op.device = device;
          const uint32_t ctx = layer < config.layers / 2 ? 0u : 1u;
          op.context_id = ctx;
          op.kernel_id = pass == 0 ? fwd_id : bwd_id;
          op.behavior = Jitter(
              pass == 0 ? templates.fwd[ctx] : templates.bwd[ctx], rng);
          op.behavior.Validate();
          if (has_prev) op.deps.push_back(prev);
          prev = workload.Add(op);
          has_prev = true;
        }
      }
      device_tail[device] = prev;
    }
    // Gradient all-reduce: depends on every device's backward tail.
    DagOp allreduce;
    allreduce.kind = OpKind::kCollective;
    allreduce.kernel_id = allreduce_id;
    allreduce.comm_bytes = config.gradient_bytes;
    allreduce.deps.assign(device_tail.begin(), device_tail.end());
    last_allreduce = workload.Add(allreduce);

    // Optimizer per device.
    for (uint32_t device = 0; device < config.devices; ++device) {
      DagOp op;
      op.kind = OpKind::kCompute;
      op.device = device;
      op.kernel_id = opt_id;
      op.behavior = Jitter(templates.opt, rng);
      op.behavior.Validate();
      op.deps.push_back(last_allreduce);
      last_op[device] = workload.Add(op);
    }
    // Next step's forwards wait for this step's optimizer via the
    // device-serialization resource; add the edge explicitly through the
    // all-reduce dependency of the next iteration.
    last_allreduce = last_op.back();
    first_step = false;
  }
  return workload;
}

DagWorkload PipelineParallel(const MultiGpuTrainingConfig& config,
                             uint64_t seed) {
  DagWorkload workload("pp_training", config.devices);
  const OpTemplates templates = OpTemplates::Make(config.work);
  Rng rng(DeriveSeed(seed, HashString("pp")));

  const uint32_t fwd_id = workload.InternKernel("stage_forward");
  const uint32_t bwd_id = workload.InternKernel("stage_backward");
  const uint32_t send_id = workload.InternKernel("activation_send");
  const uint32_t opt_id = workload.InternKernel("adam_update");

  const uint32_t stages = config.devices;
  for (uint32_t step = 0; step < config.steps; ++step) {
    // fwd_op[mb][stage] holds the forward op index of that cell.
    std::vector<std::vector<uint32_t>> fwd_op(
        config.microbatches, std::vector<uint32_t>(stages));
    std::vector<std::vector<uint32_t>> bwd_op = fwd_op;

    // Forward wavefront: microbatch mb at stage s depends on (mb, s-1)
    // via a P2P send and on (mb-1, s) via device serialization.
    for (uint32_t mb = 0; mb < config.microbatches; ++mb) {
      for (uint32_t stage = 0; stage < stages; ++stage) {
        uint32_t input_dep = UINT32_MAX;
        if (stage > 0) {
          DagOp send;
          send.kind = OpKind::kPointToPoint;
          send.device = stage - 1;
          send.peer_device = stage;
          send.kernel_id = send_id;
          send.comm_bytes = config.activation_bytes;
          send.deps.push_back(fwd_op[mb][stage - 1]);
          input_dep = workload.Add(send);
        }
        DagOp op;
        op.kind = OpKind::kCompute;
        op.device = stage;
        op.kernel_id = fwd_id;
        const uint32_t ctx = stage < stages / 2 ? 0u : 1u;
        op.context_id = ctx;
        op.behavior = Jitter(templates.fwd[ctx], rng);
        op.behavior.Validate();
        if (input_dep != UINT32_MAX) op.deps.push_back(input_dep);
        fwd_op[mb][stage] = workload.Add(op);
      }
    }
    // Backward wavefront in reverse stage order.
    for (uint32_t mb = 0; mb < config.microbatches; ++mb) {
      for (uint32_t rstage = 0; rstage < stages; ++rstage) {
        const uint32_t stage = stages - 1 - rstage;
        DagOp op;
        op.kind = OpKind::kCompute;
        op.device = stage;
        op.kernel_id = bwd_id;
        const uint32_t ctx = stage < stages / 2 ? 0u : 1u;
        op.context_id = ctx;
        op.behavior = Jitter(templates.bwd[ctx], rng);
        op.behavior.Validate();
        op.deps.push_back(fwd_op[mb][stage]);
        if (stage + 1 < stages) {
          DagOp send;
          send.kind = OpKind::kPointToPoint;
          send.device = stage + 1;
          send.peer_device = stage;
          send.kernel_id = send_id;
          send.comm_bytes = config.activation_bytes;
          send.deps.push_back(bwd_op[mb][stage + 1]);
          op.deps.push_back(workload.Add(send));
        }
        bwd_op[mb][stage] = workload.Add(op);
      }
    }
    // Per-stage optimizer after the last microbatch's backward.
    for (uint32_t stage = 0; stage < stages; ++stage) {
      DagOp op;
      op.kind = OpKind::kCompute;
      op.device = stage;
      op.kernel_id = opt_id;
      op.behavior = Jitter(templates.opt, rng);
      op.behavior.Validate();
      op.deps.push_back(bwd_op[config.microbatches - 1][stage]);
      workload.Add(op);
    }
  }
  return workload;
}

}  // namespace

DagWorkload MakeMultiGpuTraining(const MultiGpuTrainingConfig& config,
                                 uint64_t seed) {
  config.Validate();
  return config.parallelism == Parallelism::kData
             ? DataParallel(config, seed)
             : PipelineParallel(config, seed);
}

void ProfileDag(DagWorkload& workload, const hw::HardwareModel& gpu,
                const NetworkModel& network, uint64_t run_seed) {
  network.Validate();
  const LaunchConfig launch = TrainingLaunch();
  for (uint32_t i = 0; i < workload.NumOps(); ++i) {
    DagOp& op = workload.At(i);
    Rng rng(DeriveSeed(run_seed, i));
    switch (op.kind) {
      case OpKind::kCompute: {
        KernelInvocation inv;
        inv.behavior = op.behavior;
        inv.launch = launch;
        inv.seq = i;
        op.duration_us = gpu.SampleTimeUs(inv, run_seed);
        break;
      }
      case OpKind::kCollective:
        op.duration_us =
            network.CollectiveTimeUs(op.comm_bytes, workload.NumDevices()) *
            rng.NextLogNormal(-0.5 * network.jitter_sigma *
                                  network.jitter_sigma,
                              network.jitter_sigma);
        break;
      case OpKind::kPointToPoint:
        op.duration_us =
            network.P2pTimeUs(op.comm_bytes) *
            rng.NextLogNormal(-0.5 * network.jitter_sigma *
                                  network.jitter_sigma,
                              network.jitter_sigma);
        break;
    }
  }
}

}  // namespace stemroot::dag
