/// \file
/// Multi-GPU training workload generator: emits Chakra-ET-style DAGs for
/// data-parallel and pipeline-parallel LLM training, then profiles compute
/// ops on a hardware model and communication ops on a network model.
///
/// Structure (per training step):
///  - data parallel: every device runs fwd+bwd over all layers on its
///    shard, then a gradient all-reduce synchronizes, then the optimizer
///    step runs per device;
///  - pipeline parallel: layers are partitioned into stages (one per
///    device); microbatches flow through stages with P2P activations
///    forward and gradients backward, then per-stage optimizer steps.
///
/// Compute ops reuse the single-GPU ML kernel vocabulary's behaviour
/// archetypes, including multiple hidden contexts per kernel so STEM-DAG
/// has real heterogeneity to discover.

#pragma once

#include <cstdint>

#include "dag/dag.h"
#include "dag/network.h"
#include "hw/hardware_model.h"

namespace stemroot::dag {

/// Parallelism strategies.
enum class Parallelism { kData, kPipeline };

/// Generator knobs.
struct MultiGpuTrainingConfig {
  uint32_t devices = 4;
  uint32_t layers = 16;
  uint32_t microbatches = 8;
  uint32_t steps = 30;
  Parallelism parallelism = Parallelism::kData;
  /// Per-device gradient payload for the all-reduce (data parallel).
  uint64_t gradient_bytes = 700ull << 20;
  /// Activation payload for inter-stage P2P (pipeline parallel).
  uint64_t activation_bytes = 24ull << 20;
  /// Scales per-op compute work.
  double work = 1.0;

  void Validate() const;
};

/// Build the DAG (durations unset).
DagWorkload MakeMultiGpuTraining(const MultiGpuTrainingConfig& config,
                                 uint64_t seed);

/// Fill durations: compute ops on the hardware model (with its jitter),
/// communication ops on the network model (with congestion jitter).
void ProfileDag(DagWorkload& workload, const hw::HardwareModel& gpu,
                const NetworkModel& network, uint64_t run_seed);

}  // namespace stemroot::dag
