/// \file
/// DAG-structured multi-device workloads (the paper's Sec. 6.2 future
/// work): "using Chakra ET (execution trace), which is a standard method
/// of representing multi-device ML workloads with a DAG of operations and
/// dependencies. Node and edge sampling on such DAG-style ETs would be a
/// decent starting point."
///
/// A DagWorkload is a topologically ordered list of operations -- compute
/// kernels pinned to a device, and communication collectives/P2P transfers
/// spanning devices -- with explicit dependency edges. ScheduleDag replays
/// the DAG with device- and link-serialized resources to obtain the
/// makespan, the multi-GPU analogue of total execution time.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/kernel.h"

namespace stemroot::dag {

/// Operation kinds in a multi-device execution trace.
enum class OpKind : uint8_t {
  kCompute,        ///< GPU kernel on one device
  kCollective,     ///< all-device collective (all-reduce style)
  kPointToPoint,   ///< transfer between two devices
};

/// One node of the execution trace.
struct DagOp {
  OpKind kind = OpKind::kCompute;
  uint32_t device = 0;        ///< executing device (sender for P2P)
  uint32_t peer_device = 0;   ///< receiver for P2P; unused otherwise
  uint32_t kernel_id = 0;     ///< name-table index (op type)
  uint32_t context_id = 0;    ///< hidden ground-truth context
  KernelBehavior behavior;    ///< compute ops: behaviour descriptor
  uint64_t comm_bytes = 0;    ///< communication ops: payload size
  /// Indices (into the workload's op array) this op depends on; all must
  /// be smaller than the op's own index (topological order).
  std::vector<uint32_t> deps;
  /// Profiled duration in microseconds (resource-exclusive time).
  double duration_us = 0.0;
};

/// A complete multi-device workload.
class DagWorkload {
 public:
  DagWorkload() = default;
  DagWorkload(std::string name, uint32_t num_devices)
      : name_(std::move(name)), num_devices_(num_devices) {}

  const std::string& Name() const { return name_; }
  uint32_t NumDevices() const { return num_devices_; }

  /// Register an op-type name; returns its kernel_id.
  uint32_t InternKernel(const std::string& kernel_name);
  const std::string& KernelName(uint32_t kernel_id) const;
  size_t NumKernelTypes() const { return kernel_names_.size(); }

  /// Append an op; validates device/dep indices. Returns the op index.
  uint32_t Add(DagOp op);

  size_t NumOps() const { return ops_.size(); }
  const DagOp& At(size_t i) const { return ops_.at(i); }
  DagOp& At(size_t i) { return ops_.at(i); }
  const std::vector<DagOp>& Ops() const { return ops_; }

  /// Op indices grouped by (kernel_id): the unit STEM-DAG clusters.
  std::vector<std::vector<uint32_t>> GroupByKernel() const;

  /// Sum of all op durations (resource-time; lower bound context for
  /// speedup accounting).
  double TotalDurationUs() const;

 private:
  std::string name_;
  uint32_t num_devices_ = 1;
  std::vector<std::string> kernel_names_;
  std::unordered_map<std::string, uint32_t> name_to_id_;
  std::vector<DagOp> ops_;
};

/// Result of replaying the DAG on its resources.
struct ScheduleResult {
  double makespan_us = 0.0;
  /// Start time per op (timeline order).
  std::vector<double> start_us;
  double compute_time_us = 0.0;  ///< sum of compute durations
  double comm_time_us = 0.0;     ///< sum of communication durations
};

/// List-schedule the DAG: each device serializes its compute ops, the
/// interconnect serializes communication ops, and every op additionally
/// waits for its dependencies. Durations must be filled. Throws
/// std::invalid_argument on unprofiled ops.
ScheduleResult ScheduleDag(const DagWorkload& workload);

/// Re-schedule with substituted durations (same DAG): the plug-in
/// estimator used by sampled makespan estimation. durations_us must have
/// one entry per op.
ScheduleResult ScheduleDagWith(const DagWorkload& workload,
                               std::span<const double> durations_us);

}  // namespace stemroot::dag
