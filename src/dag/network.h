/// \file
/// Interconnect timing model for multi-device workloads: ring all-reduce
/// style collectives plus point-to-point transfers over NVLink-class
/// links. Stands in for the network portion of the multi-GPU simulators
/// the paper cites (ASTRA-sim / TrioSim).

#pragma once

#include <cstdint>

namespace stemroot::dag {

/// Link parameters.
struct NetworkModel {
  /// Per-direction link bandwidth, GB/s (NVLink 4 ~ 450 GB/s aggregate).
  double link_gbps = 200.0;
  /// Per-message latency (software + switch), microseconds.
  double latency_us = 8.0;
  /// Multiplicative jitter sigma for communication times (congestion).
  double jitter_sigma = 0.08;

  /// Ring all-reduce time across `devices` for `bytes` of gradients:
  /// 2 (n-1)/n * bytes over the link, plus 2 (n-1) latency hops.
  double CollectiveTimeUs(uint64_t bytes, uint32_t devices) const;

  /// Point-to-point transfer time.
  double P2pTimeUs(uint64_t bytes) const;

  /// Validate; throws std::invalid_argument.
  void Validate() const;
};

}  // namespace stemroot::dag
