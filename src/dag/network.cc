#include "dag/network.h"

#include <stdexcept>

namespace stemroot::dag {

void NetworkModel::Validate() const {
  if (link_gbps <= 0.0)
    throw std::invalid_argument("NetworkModel: link_gbps <= 0");
  if (latency_us < 0.0 || jitter_sigma < 0.0)
    throw std::invalid_argument("NetworkModel: negative latency/jitter");
}

double NetworkModel::CollectiveTimeUs(uint64_t bytes,
                                      uint32_t devices) const {
  if (devices == 0)
    throw std::invalid_argument("NetworkModel: zero devices");
  if (devices == 1) return latency_us;
  const double n = static_cast<double>(devices);
  const double wire_bytes = 2.0 * (n - 1.0) / n * static_cast<double>(bytes);
  // GB/s == bytes/us * 1e3.
  return wire_bytes / (link_gbps * 1e3) + 2.0 * (n - 1.0) * latency_us;
}

double NetworkModel::P2pTimeUs(uint64_t bytes) const {
  return static_cast<double>(bytes) / (link_gbps * 1e3) + latency_us;
}

}  // namespace stemroot::dag
