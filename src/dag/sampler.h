/// \file
/// STEM-DAG: node sampling on DAG execution traces (the Sec. 6.2 starting
/// point, implemented).
///
/// Node sampling groups ops by type, ROOT-clusters each group's duration
/// population, and sizes samples with the joint KKT solver -- exactly the
/// single-GPU pipeline, applied to DAG nodes. Estimation then has two
/// levels:
///  - total resource time: the usual weighted sum (Eq. of Sec. 3.1);
///  - makespan: a plug-in estimate -- every op's duration is replaced by
///    its cluster's sampled mean and the full DAG is re-scheduled (the
///    schedule replay is O(V+E), so this costs no simulation; only the
///    sampled ops ever need cycle-accurate simulation).

#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "core/root.h"
#include "dag/dag.h"

namespace stemroot::dag {

/// A node-sampling decision over a DAG workload.
struct DagSamplingPlan {
  /// Sampled (op index, weight) entries -- weights extrapolate totals.
  core::SamplingPlan flat;
  /// Cluster id per op (every op belongs to exactly one final cluster).
  std::vector<uint32_t> cluster_of_op;
  /// Sampled mean duration per cluster (plug-in values).
  std::vector<double> cluster_mean_us;
  size_t num_clusters = 0;
};

/// STEM+ROOT node sampler for DAG workloads.
class StemDagSampler {
 public:
  explicit StemDagSampler(core::RootConfig config = {});

  /// Build a plan from a profiled DAG. Throws on unprofiled ops.
  DagSamplingPlan BuildPlan(const DagWorkload& workload,
                            uint64_t seed) const;

  const core::RootConfig& Config() const { return config_; }

 private:
  core::RootConfig config_;
};

/// Weighted-sum estimate of the total resource time (microseconds).
double EstimateTotalUs(const DagSamplingPlan& plan,
                       const DagWorkload& workload);

/// Plug-in makespan estimate: schedule the DAG with per-cluster sampled
/// means substituted for every duration.
double EstimateMakespanUs(const DagSamplingPlan& plan,
                          const DagWorkload& workload);

/// Cost actually paid by the sampled simulation: durations of distinct
/// sampled ops (microseconds).
double SampledCostUs(const DagSamplingPlan& plan,
                     const DagWorkload& workload);

}  // namespace stemroot::dag
