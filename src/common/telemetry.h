/// \file
/// Process-wide pipeline telemetry: RAII wall-time spans, monotonic
/// counters, and value distributions, with JSON/CSV export.
///
/// Design constraints (DESIGN.md "Telemetry and the Pipeline facade"):
///
/// - **Off by default, near-zero when off.** Every entry point checks one
///   relaxed atomic and returns immediately when telemetry is disabled, so
///   instrumented hot paths (the ROOT recursion, the KKT solver, per-plan
///   bookkeeping) cost a load+branch in normal runs. Enable with
///   SetEnabled(true) (the CLI/benches do this when --telemetry is given).
/// - **Determinism.** Counters and distributions are schedule-invariant:
///   every thread records into its own mutex-guarded buffer, and Capture()
///   merges buffers into order-independent aggregates (integer sums for
///   counters; a sorted value multiset for distributions, whose mean is
///   summed in sorted order). Instrumentation must never count
///   schedule-dependent events (chunks, steals, thread ids) -- only facts
///   derived from (seed, index) like the rest of the library. Under that
///   rule the counters/distributions sections of the export are
///   byte-identical at any thread count; only span wall times (and span
///   parentage, which reflects per-thread nesting) may vary.
/// - **TSan cleanliness.** All shared state is mutex-protected; the
///   per-thread buffer mutex is uncontended on the hot path. Capture() and
///   Reset() must not race a parallel region that is still recording
///   (call them between regions, as the CLI and benches do).
///
/// Spans aggregate by (name, parent) where parent is the innermost open
/// span on the same thread ("" at top level -- e.g. inside a worker-thread
/// task). Use Span for pipeline stages, Count/Record for everything else.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace stemroot::telemetry {

/// Turn collection on or off (default off). Flipping the switch does not
/// clear existing data; pair with Reset() for a fresh run.
void SetEnabled(bool enabled);
bool Enabled();

/// Add `delta` to the named monotonic counter (no-op when disabled).
void Count(std::string_view name, uint64_t delta = 1);

/// Record one observation of the named distribution. Non-finite values are
/// dropped (they would poison the deterministic sorted merge).
void Record(std::string_view name, double value);

/// RAII wall-time span. Nest freely; the innermost open span on the same
/// thread becomes the parent. Inert when telemetry is disabled at
/// construction time. Tolerates SetEnabled flipping mid-span: a span that
/// opened while enabled always pops its stack entry, but only records an
/// aggregate if telemetry is still enabled at destruction.
///
/// When the trace-event subsystem (common/trace_events.h) is enabled, a
/// Span additionally emits a begin/end trace-event pair, independent of
/// the telemetry switch -- so `--trace` sees the pipeline stages even
/// without `--telemetry`.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::string parent_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;  ///< telemetry recording (stack entry pushed)
  bool traced_ = false;  ///< trace-event begin emitted
};

/// Aggregated wall-time statistics of one (name, parent) span identity.
struct SpanStats {
  std::string name;
  std::string parent;
  uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

/// Five-number summary of a distribution (computed over the sorted value
/// multiset; p50/p99 are nearest-rank quantiles).
struct DistSummary {
  uint64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// A merged, immutable view of everything recorded so far.
class Snapshot {
 public:
  /// Counter name -> cumulative value, sorted by name.
  const std::map<std::string, uint64_t>& Counters() const {
    return counters_;
  }
  /// Distribution name -> sorted observations.
  const std::map<std::string, std::vector<double>>& Distributions() const {
    return values_;
  }
  /// Span aggregates keyed by (name, parent), sorted.
  const std::map<std::pair<std::string, std::string>, SpanStats>& Spans()
      const {
    return spans_;
  }

  uint64_t Counter(std::string_view name) const;  ///< 0 when absent
  DistSummary Dist(std::string_view name) const;  ///< zeros when absent
  /// True when a span with this name was recorded under any parent.
  bool HasSpan(std::string_view name) const;

  /// Full export: {"schema": ..., "counters": {...},
  /// "distributions": {...}, "spans": [...]}.
  std::string ToJson() const;
  /// Flat CSV export: kind,name,parent,count,min,mean,max,p50,p99,total.
  std::string ToCsv() const;
  /// The counters object alone, e.g. {"a":1,"b":2} -- byte-identical
  /// across thread counts (the determinism contract).
  std::string CountersJson() const;
  /// The distributions object alone -- also byte-identical.
  std::string DistributionsJson() const;

 private:
  friend Snapshot Capture();
  friend Snapshot Sample();

  std::map<std::string, uint64_t> counters_;
  std::map<std::string, std::vector<double>> values_;
  std::map<std::pair<std::string, std::string>, SpanStats> spans_;
};

/// Merge every live thread buffer into the central aggregate and return a
/// copy. Cumulative: repeated captures include everything since the last
/// Reset(). Do not call while a parallel region is recording.
Snapshot Capture();

/// Lock-light, mid-run-safe sibling of Capture(): merge a *copy* of every
/// live thread buffer over the central aggregate without draining
/// anything, so recording state is untouched — a later Capture() sees
/// exactly what it would have seen had Sample() never run, and the
/// determinism contract on the final export is preserved. Safe to call
/// while parallel regions are recording (each buffer's mutex is held just
/// long enough to copy it); a concurrent recorder blocks only for that
/// copy, never for the cross-buffer merge.
///
/// A mid-run Sample() is a live observation: its counter values depend on
/// how far each thread has progressed and are NOT schedule-invariant.
/// Only quiesced samples (between parallel regions) match Capture()
/// byte-for-byte. Deltas between two Samples bound live throughput; the
/// final Capture() remains the deterministic record.
Snapshot Sample();

/// Per-counter increase from `before` to `after` (both cumulative
/// snapshots of one process). Counters absent from `before` count from
/// zero; counters that did not grow are omitted, so the result is exactly
/// the activity of the window.
std::map<std::string, uint64_t> CounterDeltas(const Snapshot& before,
                                              const Snapshot& after);

/// Clear the central aggregate and all live thread buffers.
void Reset();

}  // namespace stemroot::telemetry
