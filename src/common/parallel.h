/// \file
/// Deterministic parallel evaluation primitives: a work-stealing thread
/// pool plus ParallelFor/ParallelMap built on top of it.
///
/// Design constraints (DESIGN.md "Threading and reproducibility"):
///
/// - **Determinism.** Parallelism must never change results. Every loop
///   body receives its explicit index and derives any randomness from a
///   per-index seed (DeriveSeed in common/rng.h), so the schedule -- which
///   thread runs which chunk, in what order -- is unobservable. ParallelMap
///   writes results into index-addressed slots, preserving input order.
/// - **Exception propagation.** The first exception thrown by any loop
///   body cancels the remaining chunks and is rethrown on the calling
///   thread once all in-flight work has drained.
/// - **Nested-call safety.** A ParallelFor issued from inside another
///   parallel region (worker thread or a caller executing chunks) runs
///   serially inline: no deadlock, no oversubscription, same results.
/// - **Thread-count control.** SetNumThreads() > STEMROOT_THREADS env >
///   std::thread::hardware_concurrency(), resolved by NumThreads().
///   threads == 1 short-circuits to plain serial loops (the TSan baseline).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace stemroot {

/// Explicitly set the parallelism (0 restores auto: STEMROOT_THREADS env,
/// then hardware concurrency). Takes effect at the next parallel region;
/// do not call concurrently with running parallel work. Throws
/// std::invalid_argument for negative n.
void SetNumThreads(int n);

/// Resolved parallelism (always >= 1): explicit SetNumThreads value when
/// set, else the STEMROOT_THREADS environment variable when it parses to a
/// positive integer, else hardware concurrency.
int NumThreads();

/// True when the calling thread is inside a parallel region (a pool worker
/// or a caller thread currently executing ParallelFor chunks). Nested
/// parallel calls detect this and degrade to serial execution.
bool InParallelRegion();

/// Work-stealing thread pool. Each worker owns a deque: submissions are
/// distributed round-robin, workers pop their own deque LIFO and steal
/// FIFO from siblings when empty (classic Blumofe-Leiserson discipline --
/// LIFO keeps caches warm, FIFO steals grab the oldest, largest-granularity
/// work). All public methods are thread-safe except Resize.
class ThreadPool {
 public:
  /// The process-global pool used by ParallelFor/ParallelMap. Created on
  /// first use with NumThreads() - 1 workers (the caller is the Nth lane).
  static ThreadPool& Global();

  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not block on other tasks (ParallelFor's
  /// helpers never do; they only claim chunk indices).
  void Submit(std::function<void()> task);

  /// Stop workers, join, and restart with a new worker count. Must only be
  /// called while the pool is idle (between parallel regions); pending
  /// tasks are drained before the old workers exit.
  void Resize(size_t num_workers);

  size_t NumWorkers() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Start(size_t num_workers);
  void StopAndJoin();
  void WorkerLoop(size_t self);
  /// Pop from own queue (back) or steal from a sibling (front).
  std::function<void()> TryPop(size_t self);

  mutable std::mutex structural_mu_;  ///< guards threads_/queues_ layout
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  size_t pending_ = 0;      ///< submitted, not yet popped (under wake_mu_)
  bool stopping_ = false;   ///< under wake_mu_
  std::atomic<size_t> next_queue_{0};  ///< round-robin submit cursor
};

/// Run body(i) for every i in [begin, end), distributing contiguous chunks
/// over NumThreads() lanes (the calling thread plus pool workers). Chunks
/// are claimed from a shared atomic cursor, so load balances even when
/// iteration costs are skewed. `grain` is the chunk size; 0 picks
/// max(1, n / (threads * 8)). Runs serially when the range or thread count
/// is 1, or when already inside a parallel region (nested call).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, size_t grain = 0);

/// Run body(lane) exactly once for every lane in [0, lanes), with at most
/// `max_concurrency` lanes in flight (0 = NumThreads()). Unlike
/// ParallelFor, the concurrency cap is a per-call argument, so callers can
/// bound a region independently of the global thread count (the sharded
/// simulator's --sim-threads, the DSE sweep's point concurrency). Lanes
/// are claimed from a shared atomic cursor in index order; the determinism
/// contract is the same as ParallelFor's -- bodies address state by lane
/// index, so the schedule is unobservable. Runs serially when the lane
/// count or the cap is 1, or when already inside a parallel region.
void ParallelLanes(size_t lanes, size_t max_concurrency,
                   const std::function<void(size_t)>& body);

/// Map fn over [0, n), returning results in index order. fn must be
/// invocable as fn(size_t) -> R; R needs to be move-constructible. Order
/// and values are independent of the thread count.
template <typename F>
auto ParallelMap(size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F&, size_t>> {
  using R = std::invoke_result_t<F&, size_t>;
  std::vector<std::optional<R>> slots(n);
  ParallelFor(0, n, [&](size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace stemroot
