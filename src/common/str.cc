#include "common/str.h"

#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <system_error>

#include "common/log.h"

namespace stemroot {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = VFormat(fmt, args);
  va_end(args);
  return out;
}

namespace {

template <typename T>
std::optional<T> ParseFullString(std::string_view s) {
  // from_chars rejects a leading '+' that strtol/strtod accepted; keep
  // accepting it so "+1.5" flag values stay valid.
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<double> ParseDouble(std::string_view s) {
  return ParseFullString<double>(s);
}

std::optional<int64_t> ParseInt(std::string_view s) {
  return ParseFullString<int64_t>(s);
}

std::string FormatDouble(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ec == std::errc() ? ptr : buf);
}

std::string FormatDoubleFixed(double v, int precision) {
  // Fixed notation of the largest doubles runs ~310 digits plus the
  // fraction; 512 covers any sane precision.
  char buf[512];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed,
                    precision);
  if (ec != std::errc()) return FormatDouble(v);
  return std::string(buf, ptr);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return Format("%.1f%s", v, suffix);
}

std::string HumanDuration(double microseconds) {
  double v = microseconds;
  if (v < 1e3) return Format("%.1fus", v);
  v /= 1e3;
  if (v < 1e3) return Format("%.1fms", v);
  v /= 1e3;
  if (v < 60) return Format("%.2fs", v);
  v /= 60;
  if (v < 60) return Format("%.1fmin", v);
  v /= 60;
  if (v < 48) return Format("%.1fh", v);
  return Format("%.1fdays", v / 24);
}

}  // namespace stemroot
