#include "common/str.h"

#include <cstdarg>
#include <cstdio>

#include "common/log.h"

namespace stemroot {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = VFormat(fmt, args);
  va_end(args);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return Format("%.1f%s", v, suffix);
}

std::string HumanDuration(double microseconds) {
  double v = microseconds;
  if (v < 1e3) return Format("%.1fus", v);
  v /= 1e3;
  if (v < 1e3) return Format("%.1fms", v);
  v /= 1e3;
  if (v < 60) return Format("%.2fs", v);
  v /= 60;
  if (v < 60) return Format("%.1fmin", v);
  v /= 60;
  if (v < 48) return Format("%.1fh", v);
  return Format("%.1fdays", v / 24);
}

}  // namespace stemroot
