#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/trace_events.h"

namespace stemroot {

namespace {

/// Explicit override from SetNumThreads (0 = auto).
std::atomic<int> g_num_threads{0};

/// > 0 while the calling thread is executing ParallelFor chunks.
thread_local int tls_region_depth = 0;
/// Set for the lifetime of pool worker threads.
thread_local bool tls_pool_worker = false;

int ThreadsFromEnv() {
  const char* value = std::getenv("STEMROOT_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0 || parsed > 4096)
    return 0;  // unparseable / out of range: fall through to hardware
  return static_cast<int>(parsed);
}

}  // namespace

void SetNumThreads(int n) {
  if (n < 0)
    throw std::invalid_argument("SetNumThreads: n must be >= 0 (0 = auto)");
  g_num_threads.store(n, std::memory_order_relaxed);
}

int NumThreads() {
  const int explicit_n = g_num_threads.load(std::memory_order_relaxed);
  if (explicit_n > 0) return explicit_n;
  const int env_n = ThreadsFromEnv();
  if (env_n > 0) return env_n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool InParallelRegion() { return tls_pool_worker || tls_region_depth > 0; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(static_cast<size_t>(NumThreads() - 1));
  return pool;
}

ThreadPool::ThreadPool(size_t num_workers) { Start(num_workers); }

ThreadPool::~ThreadPool() { StopAndJoin(); }

void ThreadPool::Start(size_t num_workers) {
  queues_.clear();
  queues_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = false;
  }
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

void ThreadPool::StopAndJoin() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::Submit(std::function<void()> task) {
  // The queue push and the pending count must change together under the
  // structural lock: Resize drains by joining workers once pending_ hits
  // zero, so a push that became visible before its count (or vice versa)
  // could strand a task in a queue about to be destroyed.
  std::lock_guard<std::mutex> structural(structural_mu_);
  if (queues_.empty())
    throw std::logic_error("ThreadPool::Submit: pool has no workers");
  const size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

void ThreadPool::Resize(size_t num_workers) {
  std::lock_guard<std::mutex> structural(structural_mu_);
  if (num_workers == threads_.size()) return;
  StopAndJoin();  // drains every pending task before the old workers exit
  Start(num_workers);
}

size_t ThreadPool::NumWorkers() const {
  std::lock_guard<std::mutex> structural(structural_mu_);
  return threads_.size();
}

std::function<void()> ThreadPool::TryPop(size_t self) {
  // Own queue first, LIFO (most recently pushed: cache-warm).
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
      return task;
    }
  }
  // Steal FIFO from siblings (oldest task: largest remaining granularity).
  for (size_t k = 1; k < queues_.size(); ++k) {
    const size_t victim = (self + k) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[victim]->tasks.front());
      queues_[victim]->tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool_worker = true;
  while (true) {
    std::function<void()> task = TryPop(self);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
    if (stopping_ && pending_ == 0) return;
  }
}

namespace {

/// Shared per-ParallelFor state. Heap-allocated (shared_ptr) so helper
/// tasks that start after the fast lanes already finished the range still
/// touch live memory; the caller nevertheless waits for every helper, so
/// `body` may be held by raw pointer.
struct ForState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* body = nullptr;

  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr error;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t helpers_left = 0;
};

/// Claim chunks from the shared cursor until the range (or the region, on
/// error) is exhausted. Runs on the caller thread and on every helper.
void RunChunks(ForState& state) {
  ++tls_region_depth;
  while (!state.cancelled.load(std::memory_order_acquire)) {
    const size_t start =
        state.next.fetch_add(state.grain, std::memory_order_relaxed);
    if (start >= state.end) break;
    const size_t stop = std::min(start + state.grain, state.end);
    // One begin/end pair per claimed chunk: `--trace` shows how the range
    // was carved up across lanes (schedule-dependent by nature, see the
    // determinism caveat in common/trace_events.h).
    trace_events::Scope chunk_scope("parallel.chunk");
    try {
      for (size_t i = start; i < stop; ++i) (*state.body)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state.error_mu);
        if (!state.error) state.error = std::current_exception();
      }
      state.cancelled.store(true, std::memory_order_release);
    }
  }
  --tls_region_depth;
}

/// Shared driver behind ParallelFor and ParallelLanes: the caller plus up
/// to `lanes - 1` pool helpers claim chunks of [begin, end) from one
/// atomic cursor. `exact_pool` keeps the global pool sized to exactly
/// `lanes - 1` workers (ParallelFor tracks SetNumThreads this way);
/// otherwise the pool only grows when it has too few workers for the
/// requested cap (ParallelLanes must not shrink a pool another region
/// relies on).
void RunRegion(size_t begin, size_t end, size_t grain, size_t lanes,
               const std::function<void(size_t)>& body, bool exact_pool) {
  const size_t n = end - begin;
  const size_t chunks = (n + grain - 1) / grain;
  const size_t helpers = std::min(lanes, chunks) - 1;

  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->body = &body;
  state->helpers_left = helpers;

  if (helpers > 0) {
    ThreadPool& pool = ThreadPool::Global();
    if (exact_pool ? pool.NumWorkers() + 1 != lanes
                   : pool.NumWorkers() < helpers)
      pool.Resize(exact_pool ? lanes - 1 : helpers);
    for (size_t h = 0; h < helpers; ++h) {
      pool.Submit([state] {
        RunChunks(*state);
        {
          std::lock_guard<std::mutex> lock(state->done_mu);
          --state->helpers_left;
        }
        state->done_cv.notify_one();
      });
    }
  }

  RunChunks(*state);

  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] { return state->helpers_left == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, size_t grain) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const size_t threads = static_cast<size_t>(NumThreads());
  if (n == 1 || threads == 1 || InParallelRegion()) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  if (grain == 0) grain = std::max<size_t>(1, n / (threads * 8));
  RunRegion(begin, end, grain, threads, body, /*exact_pool=*/true);
}

void ParallelLanes(size_t lanes, size_t max_concurrency,
                   const std::function<void(size_t)>& body) {
  if (lanes == 0) return;
  const size_t cap = max_concurrency == 0
                         ? static_cast<size_t>(NumThreads())
                         : max_concurrency;
  if (lanes == 1 || cap == 1 || InParallelRegion()) {
    for (size_t i = 0; i < lanes; ++i) body(i);
    return;
  }
  RunRegion(0, lanes, /*grain=*/1, cap, body, /*exact_pool=*/false);
}

}  // namespace stemroot
