/// \file
/// Content-addressed artifact cache: a directory of self-verifying binary
/// entries keyed by a caller-supplied content key.
///
/// The cache memoizes expensive deterministic computations (the
/// generate->profile pipeline stages, see src/eval/trace_cache.h) across
/// process lifetimes. It is an *optimization layer*, never a source of
/// truth, so its failure contract is strict:
///
///   - A missing, truncated, checksum-mismatched, or wrong-key entry is a
///     plain miss (Get returns std::nullopt); it never throws and never
///     returns partial data. Corrupt bytes on disk can only cost a
///     recompute.
///   - Put writes the entry to a temp file in the cache directory and
///     atomically renames it into place, so a crash mid-store leaves
///     either the old entry or none -- never a torn one. Concurrent
///     writers of the same key are safe for the same reason (last rename
///     wins, both renames are complete entries).
///   - Put failures (full disk, permissions) throw; callers that treat
///     the cache as best-effort catch and continue.
///
/// Entry format "SRCE", version 1, little-endian:
///
///   magic[4] | format_version u32 | key_len u32 | key bytes |
///   payload_len u64 | payload_fnv1a u64 | payload bytes
///
/// The full key string is echoed in the header and verified on Get, so a
/// digest collision in the file name cannot serve the wrong artifact, and
/// the checksum covers the payload so bit rot falls back to recompute.
///
/// When telemetry is enabled the cache emits `cache.hit`, `cache.miss`,
/// `cache.store`, `cache.read_bytes`, and `cache.write_bytes` counters.
/// These are *environmental* (they depend on what is on disk, like wall
/// times), so `stemroot compare` excludes the `cache.` prefix from its
/// determinism gate -- see src/eval/regress.h.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stemroot {

/// FNV-1a over arbitrary bytes (the string overload in common/rng.h is
/// specified for stream ids; this one is the cache's integrity hash).
uint64_t Fnv1a64(std::string_view bytes);

/// Lowercase hex form of a 64-bit hash (16 chars), used for entry file
/// names.
std::string HexDigest64(uint64_t value);

/// A content-addressed cache rooted at one directory.
class ArtifactCache {
 public:
  /// One entry as seen by Stats/Verify/Evict sweeps.
  struct EntryInfo {
    std::string file;     ///< file name inside the cache directory
    uint64_t bytes = 0;   ///< file size on disk
    bool valid = false;   ///< header + checksum verified
    std::string problem;  ///< why `valid` is false ("" when valid)
  };

  struct Stats {
    uint64_t entries = 0;  ///< entry files present
    uint64_t bytes = 0;    ///< their total size
  };

  /// The cache directory is created lazily on the first Put.
  explicit ArtifactCache(std::string dir);

  const std::string& Dir() const { return dir_; }

  /// Look up `key`. Returns the payload on a verified hit, std::nullopt on
  /// a miss or on *any* entry defect (unreadable, truncated, bad magic or
  /// version, key mismatch, checksum mismatch). Never throws.
  std::optional<std::string> Get(const std::string& key) const;

  /// Store `payload` under `key` (atomic temp-file + rename; replaces any
  /// existing entry). Throws std::runtime_error on I/O failure.
  void Put(const std::string& key, std::string_view payload) const;

  /// True when a verified entry for `key` exists (same checks as Get,
  /// without returning the payload bytes).
  bool Contains(const std::string& key) const { return Get(key).has_value(); }

  /// Entry count and total bytes. A missing directory is an empty cache.
  Stats GetStats() const;

  /// Verify every entry's header and checksum. Sorted by file name so the
  /// report is deterministic.
  std::vector<EntryInfo> Verify() const;

  /// Remove entries, oldest first by mtime, until the cache holds at most
  /// `max_bytes` (0 = remove everything). Returns the number of entries
  /// removed. Never throws; undeletable files are skipped.
  uint64_t Evict(uint64_t max_bytes = 0) const;

  /// The file path an entry for `key` lives at (whether or not it exists).
  std::string EntryPath(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace stemroot
