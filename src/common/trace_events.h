/// \file
/// Chrome-trace event recording: a process-wide, bounded per-thread ring
/// buffer of timestamped begin/end/instant/counter events, exported as
/// Chrome trace-event JSON (load the file in Perfetto or chrome://tracing
/// to see the pipeline timeline). `--trace FILE` on the CLI and on every
/// bench turns it on.
///
/// Design constraints (DESIGN.md "Tracing and the error-budget audit"):
///
/// - **Off by default, near-zero when off.** Every entry point checks one
///   relaxed atomic and returns immediately when tracing is disabled --
///   the same cost contract as telemetry (common/telemetry.h). Both
///   subsystems are independent: `telemetry::Span` feeds whichever of the
///   two is enabled.
/// - **Bounded memory.** Each thread records into a fixed-capacity ring
///   (SetRingCapacity, default 65536 events). When the ring wraps, the
///   oldest events are overwritten and counted as dropped; ExportJson
///   repairs the resulting unbalanced begin/end pairs (a drop removes the
///   oldest prefix, so an end whose begin was dropped is skipped, and a
///   begin still open at export time is skipped) and reports both counts
///   in "otherData".
/// - **Wall-clock events are not deterministic.** Timestamps, thread ids,
///   and event interleavings reflect the schedule; traces are a
///   performance-debugging view, never an input to results. Per-thread
///   timestamps are monotonic (steady clock), which tools/trace_check
///   verifies.
/// - **TSan cleanliness.** Rings are mutex-guarded per thread (uncontended
///   on the hot path); Export/Reset take every ring's mutex.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stemroot::trace_events {

/// Turn recording on or off (default off). Pair with Reset() for a fresh
/// trace; flipping the switch does not clear recorded events.
void SetEnabled(bool enabled);
bool Enabled();

/// Per-thread ring capacity in events. Applies to rings created after the
/// call; existing rings adopt the new capacity on the next Reset(). Throws
/// std::invalid_argument for 0.
void SetRingCapacity(size_t events);
size_t RingCapacity();

/// Record a duration-begin ("B") / duration-end ("E") event on the
/// calling thread. Pairs must nest per thread; prefer Scope.
void Begin(std::string_view name);
void End(std::string_view name);

/// Record the matching end for a begin that was already emitted, even if
/// tracing has been disabled since. RAII holders (Scope here,
/// telemetry::Span) use this so begin/end pairs stay balanced across a
/// mid-scope SetEnabled(false); everything else should call End.
void EndOpen(std::string_view name);

/// Record an instant ("i", thread-scoped) event.
void Instant(std::string_view name);

/// Record a counter ("C") sample: the named series takes `value` at the
/// current timestamp.
void CounterValue(std::string_view name, double value);

/// RAII begin/end pair. Inert when tracing is disabled at construction;
/// always emits the matching end if it emitted the begin (even if tracing
/// is flipped off mid-scope, so pairs stay balanced).
class Scope {
 public:
  explicit Scope(std::string_view name);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::string name_;
  bool active_ = false;
};

/// Recording totals since the last Reset().
struct Stats {
  uint64_t recorded = 0;  ///< events written (including later-overwritten)
  uint64_t dropped = 0;   ///< events overwritten by ring wrap
  size_t threads = 0;     ///< threads that recorded at least one event
};
Stats GetStats();

/// Export everything recorded so far as a Chrome trace-event JSON object:
/// {"displayTimeUnit":"ms","otherData":{...},"traceEvents":[...]}.
/// Events are grouped per thread in chronological order; begin/end pairs
/// are balanced (see the repair rule above).
std::string ExportJson();

/// ExportJson to a file; throws std::runtime_error when it cannot write.
void WriteTrace(const std::string& path);

/// Clear every ring and the drop counters.
void Reset();

/// Post-validation stats from ValidateTraceJson.
struct TraceInfo {
  size_t events = 0;
  size_t threads = 0;
};

/// Strict validation of an exported trace: full JSON parse (common/json),
/// schema tag "stemroot-trace-v1" in "otherData", a "traceEvents" array
/// whose entries carry name/ph/ts/pid/tid, per-thread balanced and
/// name-matched B/E nesting, non-decreasing per-thread timestamps, and a
/// numeric args.value on every counter event. tools/trace_check wraps
/// this. `names` (when non-null) receives every event name in file order.
bool ValidateTraceJson(std::string_view json, std::string* error,
                       std::vector<std::string>* names = nullptr,
                       TraceInfo* info = nullptr);

}  // namespace stemroot::trace_events
