/// \file
/// Append-only structured JSONL event journal — the durable narrative of
/// a resident run (DESIGN.md §14).
///
/// Telemetry answers "how much"; the journal answers "what happened,
/// when": session lifecycle, feed batches, convergence and early-stop
/// decisions, slow requests, connection errors. One JSON object per
/// line, append-only, crash-tolerant (a torn final line is ignored by
/// the reader), machine-gateable (`stemroot regress --journal`).
///
/// Event line shape (reserved keys first, then the caller's fields):
///
///   {"ts_us":1234,"tid":3,"seq":7,"sev":"warn","event":"request.slow",
///    "session":2,"verb":"feed","latency_us":312000.0}
///
/// - ts_us: MonotonicMicros() — the same clock that stamps stderr log
///   lines, so journal and log output correlate directly.
/// - tid: LogThreadId() — same id namespace as the log lines.
/// - seq: process-wide emission sequence number (gap-free for emitted
///   events; rate-limited drops do not consume numbers).
/// - sev: "debug" | "info" | "warn" | "error".
///
/// **Cost contract.** Off by default; every Emit first checks one relaxed
/// atomic and returns — the same contract as telemetry and trace events
/// (pinned by BM_InstrumentationOff). When on, Emit serializes outside
/// the writer lock and appends one line under it.
///
/// **Rate limiting.** A per-second token budget (default 2000 events/s)
/// bounds journal growth under pathological event storms; over-budget
/// events are counted, not written, and the next written event carries a
/// "dropped_since_last" field so the gap is visible in the file itself.
/// Error-severity events bypass the limiter (losing errors would defeat
/// the regress gate).

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace stemroot::journal {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Canonical lowercase token ("debug", "info", "warn", "error").
const char* SeverityName(Severity severity);

/// One typed field of an event. Construct from the key plus a string,
/// number, bool, or unsigned value; the emitter writes the matching JSON
/// type.
struct Field {
  enum class Kind { kString, kNumber, kUint, kBool };

  Field(std::string_view key, std::string_view value)
      : key(key), kind(Kind::kString), string(value) {}
  Field(std::string_view key, const char* value)
      : key(key), kind(Kind::kString), string(value) {}
  Field(std::string_view key, double value)
      : key(key), kind(Kind::kNumber), number(value) {}
  Field(std::string_view key, uint64_t value)
      : key(key), kind(Kind::kUint), uint_value(value) {}
  Field(std::string_view key, int value)
      : key(key), kind(Kind::kUint),
        uint_value(static_cast<uint64_t>(value < 0 ? 0 : value)) {}
  Field(std::string_view key, bool value)
      : key(key), kind(Kind::kBool), uint_value(value ? 1 : 0) {}

  std::string key;
  Kind kind;
  std::string string;
  double number = 0.0;
  uint64_t uint_value = 0;
};

/// Open (create or append to) the journal at `path` and enable emission.
/// Throws std::runtime_error when the file cannot be opened. Reopening
/// over a live journal closes the previous file first.
void Open(const std::string& path);

/// Flush, close, and disable. Safe when no journal is open.
void Close();

/// One relaxed atomic load — the hot-path guard.
bool Enabled();

/// Cap on non-error events written per wall-clock second (default 2000).
/// 0 disables the limiter entirely.
void SetRateLimit(uint64_t events_per_second);

/// Append one event (no-op when disabled). Thread-safe; never throws —
/// an I/O failure disables nothing but is counted in Stats().write_errors
/// and the journal keeps accepting events (best-effort by design).
void Emit(Severity severity, std::string_view event,
          std::initializer_list<Field> fields = {});

/// Emission counters since process start (not since Open, so tests can
/// assert across reopen cycles). All relaxed-atomic reads.
struct Stats {
  uint64_t emitted = 0;       ///< lines written
  uint64_t dropped = 0;       ///< rate-limited (never error severity)
  uint64_t errors = 0;        ///< error-severity events emitted
  uint64_t write_errors = 0;  ///< append failures (stream went bad)
};
Stats GetStats();

/// Reset the Stats() counters to zero (tests; the seq counter is not
/// reset — seq numbers stay unique for the process lifetime).
void ResetStats();

}  // namespace stemroot::journal
