#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stemroot {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TextTable: empty header");
}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  if (std::isnan(v)) return "N/A";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size())
        line.append(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += render_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace stemroot
