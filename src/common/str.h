/// \file
/// Small string helpers (formatting, splitting) shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stemroot {

/// printf-style std::string formatting.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if s starts with prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Human-readable quantity with k/M/G suffix (e.g. 11599870 -> "11.6M").
std::string HumanCount(double v);

/// Human-readable duration from microseconds (us/ms/s/min/h/days).
std::string HumanDuration(double microseconds);

}  // namespace stemroot
