/// \file
/// Small string helpers (formatting, splitting) shared across modules.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stemroot {

/// printf-style std::string formatting. Note %f/%g/%e go through the C
/// locale's decimal point; machine-readable output (JSON, CSV, cache keys,
/// fingerprints) must use FormatDouble/FormatDoubleFixed below instead.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Locale-independent full-string parse (std::from_chars, plus an optional
/// leading '+'). std::nullopt on empty input, trailing characters, or
/// out-of-range values -- never affected by the global locale, unlike
/// std::stod/strtod which honor its decimal point.
std::optional<double> ParseDouble(std::string_view s);
std::optional<int64_t> ParseInt(std::string_view s);

/// Locale-independent shortest round-trip formatting (std::to_chars):
/// the shortest decimal string that parses back to exactly `v`.
std::string FormatDouble(double v);

/// Locale-independent fixed-precision formatting ("%.3f"-style).
std::string FormatDoubleFixed(double v, int precision);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if s starts with prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Human-readable quantity with k/M/G suffix (e.g. 11599870 -> "11.6M").
std::string HumanCount(double v);

/// Human-readable duration from microseconds (us/ms/s/min/h/days).
std::string HumanDuration(double microseconds);

}  // namespace stemroot
