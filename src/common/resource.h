/// \file
/// Process-resource observability (DESIGN.md §15): deterministic logical
/// memory accounting plus a low-overhead physical RSS/CPU sampler.
///
/// The pipeline has rich *time* observability (telemetry spans, trace
/// events, latency histograms, the journal) but memory — the resource
/// that actually caps simulator scale — was invisible. This module adds
/// two complementary views:
///
/// **Logical accounting** (`Account` / `AccountPeak`) charges byte counts
/// to named categories ("trace", "root", "plan", "eval", "sim", "cache",
/// "service.session") at the sites that own the big allocations. The
/// numbers are *logical*: computed from container sizes, not from the
/// allocator, so they are deterministic at any thread count and can be
/// compare-gated like telemetry counters. Two primitives keep the peaks
/// schedule-invariant:
///
/// - `Account(category, bytes)` is charge-only: the category's running
///   total only grows, so its peak equals the final sum regardless of the
///   order concurrent charges land in. Use it for monotone owners (trace
///   storage, cache payloads).
/// - `AccountPeak(category, bytes)` folds a per-call byte count into the
///   category peak with max(). Each call's value must itself be
///   deterministic (derived from seed/config/index, never from thread
///   ids or timing); max over a fixed call set is order-independent. Use
///   it for transient concurrent state (per-rep cluster/plan scratch,
///   per-point simulator lanes, per-session streaming state).
///
/// Categories prefixed "cache" or "service" are environmental (warmth-
/// and load-dependent) and are excluded from compare/regress gating,
/// mirroring the `cache.*`/`service.*` telemetry-counter exclusions.
///
/// **Physical sampling** reads `/proc/self/statm`, `/proc/self/status`
/// (VmRSS/VmHWM) and getrusage into monotonic high-water atomics and a
/// lock-free RSS histogram, either on demand (`SamplePhysical`) or from a
/// background sampler thread (`StartSampler`; serve mode turns it on,
/// `--resource-sample-ms N` opts in everywhere else). Physical numbers
/// are environmental: they go into the manifest `mem` block and the
/// Prometheus exposition but never into fingerprints or compare gates.
/// Missing or truncated `/proc` files are absent-not-fatal (containers
/// and non-Linux hosts degrade to getrusage or to nothing).
///
/// **Cost contract.** Accounting is off by default; `Account` and
/// `AccountPeak` first check one relaxed atomic and return — the same
/// contract as telemetry/trace_events/journal, pinned by
/// BM_InstrumentationOff. The sampler costs nothing when not started.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace stemroot {
class LogHistogram;
}  // namespace stemroot

namespace stemroot::resource {

// ---------------------------------------------------------------------------
// Logical accounting (deterministic, compare-gated)
// ---------------------------------------------------------------------------

/// Turn logical accounting on or off (default off). Flipping the switch
/// does not clear existing charges; pair with ResetAccounting() for a
/// fresh run.
void SetAccountingEnabled(bool enabled);

/// One relaxed atomic load — the hot-path guard.
bool AccountingEnabled();

/// Charge `bytes` to `category`'s running total (no-op when disabled).
/// Charge-only: totals never decrease, so the category peak equals the
/// final sum at any thread count.
void Account(std::string_view category, uint64_t bytes);

/// Fold one deterministic per-call byte count into `category`'s peak
/// with max() (no-op when disabled). `bytes` must be derived from
/// seed/config/index only — never from scheduling.
void AccountPeak(std::string_view category, uint64_t bytes);

/// Category -> peak bytes observed so far. Deterministic at any thread
/// count when every charge honored the rules above.
std::map<std::string, uint64_t> LogicalPeaks();

/// Clear all logical categories (tests, and the service between runs).
void ResetAccounting();

// ---------------------------------------------------------------------------
// Physical sampling (environmental, never compare-gated)
// ---------------------------------------------------------------------------

/// One physical observation. Every source is optional: a field is
/// std::nullopt when its `/proc` file (or getrusage) was unavailable or
/// unparseable — absent, not fatal.
struct PhysicalSample {
  std::optional<uint64_t> rss_bytes;      ///< current RSS (statm or VmRSS)
  std::optional<uint64_t> hwm_bytes;      ///< VmHWM (kernel high-water RSS)
  std::optional<uint64_t> max_rss_bytes;  ///< getrusage ru_maxrss
  double user_cpu_seconds = 0.0;          ///< getrusage ru_utime (0 if absent)
  double system_cpu_seconds = 0.0;        ///< getrusage ru_stime (0 if absent)
};

/// Parse `/proc/self/statm` text ("size resident shared ..." in pages):
/// resident pages * page_size_bytes. std::nullopt on truncated or
/// malformed input. Locale-proof (common/str ParseInt).
std::optional<uint64_t> ParseStatmRssBytes(std::string_view text,
                                           uint64_t page_size_bytes);

/// The VmRSS/VmHWM lines of `/proc/self/status` ("VmRSS:   123 kB").
/// Each field is independently optional; a truncated file yields
/// whatever lines were intact.
struct StatusFields {
  std::optional<uint64_t> vm_rss_bytes;
  std::optional<uint64_t> vm_hwm_bytes;
};
StatusFields ParseStatusText(std::string_view text);

/// Read + parse the two proc files (test seam: any paths). Missing files
/// leave the fields nullopt. Does not touch getrusage or the process
/// high-water state.
PhysicalSample ReadProcFiles(const std::string& statm_path,
                             const std::string& status_path,
                             uint64_t page_size_bytes);

/// Take one live observation of this process (/proc/self + getrusage)
/// and fold it into the monotonic high-water state below. Safe to call
/// from any thread at any time; the sampler thread calls it every tick.
PhysicalSample SamplePhysical();

/// Highest RSS ever observed for this process: max over VmHWM,
/// ru_maxrss, and every sampled VmRSS. 0 when no source was available.
/// Folds one fresh SamplePhysical() first, so the value is current even
/// when the sampler never ran.
uint64_t PeakRssBytes();

/// Most recently sampled RSS (0 before the first sample).
uint64_t CurrentRssBytes();

// ---------------------------------------------------------------------------
// Background sampler
// ---------------------------------------------------------------------------

/// Start the background sampler thread at the given tick interval. Each
/// tick takes one SamplePhysical(), records the RSS into the process
/// histogram (and, when telemetry is enabled, into the
/// "resource.rss_mb" distribution), and emits a warn-severity
/// "mem_highwater" journal event when RSS crosses a new high-water mark
/// by >= 20% (slow-request-style: visible, never gated — regress gates
/// errors only). No-op when already running; interval_ms == 0 is
/// clamped to 1.
void StartSampler(uint64_t interval_ms);

/// Stop and join the sampler thread (one final sample is taken). Safe
/// when not running.
void StopSampler();

bool SamplerRunning();

/// Cumulative physical-side statistics since process start.
struct Stats {
  uint64_t samples = 0;           ///< sampler ticks + on-demand samples
  uint64_t current_rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;    ///< monotonic high water
  double user_cpu_seconds = 0.0;  ///< from the latest sample
  double system_cpu_seconds = 0.0;
};
Stats GetStats();

/// Fold the process RSS histogram (one bucket per sampled RSS value)
/// into `into`, which must share the default resource-histogram
/// geometry (see MakeRssHistogram). This is the consistent-copy path:
/// LogHistogram is non-copyable, Merge is how readers take a snapshot.
void MergeRssHistogram(LogHistogram& into);

/// A LogHistogram with the resource geometry (1 MiB lo, 1.3 growth, 64
/// bins — spans ~1 MiB to ~10 TiB), matching the internal RSS histogram
/// so MergeRssHistogram accepts it.
LogHistogram MakeRssHistogram();

}  // namespace stemroot::resource
