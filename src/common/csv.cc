#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stemroot {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out)
    throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::~CsvWriter() { delete impl_; }

std::string CsvWriter::Quote(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << Quote(cells[i]);
  }
  impl_->out << '\n';
}

void CsvWriter::Flush() { impl_->out.flush(); }

CsvTable CsvTable::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvTable: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

CsvTable CsvTable::Parse(const std::string& text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    table.rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // swallow; \n terminates the row
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default:
        cell += c;
        row_has_content = true;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  return table;
}

}  // namespace stemroot
