#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace stemroot {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
  width_ = (hi - lo) / static_cast<double>(bins);
}

Histogram Histogram::FromData(std::span<const double> values, size_t bins) {
  if (values.empty()) throw std::invalid_argument("Histogram: empty data");
  double lo = values.front();
  double hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi == lo) {
    // Degenerate constant data: give it a unit-wide box around the value.
    lo -= 0.5;
    hi += 0.5;
  } else {
    const double pad = (hi - lo) / static_cast<double>(bins) * 0.5;
    lo -= pad;
    hi += pad;
  }
  Histogram h(lo, hi, bins);
  for (double v : values) h.Add(v);
  return h;
}

void Histogram::Add(double x) {
  ptrdiff_t bin = static_cast<ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<ptrdiff_t>(bin, 0,
                              static_cast<ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::BinCenter(size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

size_t Histogram::CountPeaks(double min_prominence_frac,
                             size_t smooth_radius) const {
  const size_t n = counts_.size();
  if (n == 0 || total_ == 0) return 0;

  // Moving-average smoothing to suppress bin noise.
  std::vector<double> smooth(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= smooth_radius ? i - smooth_radius : 0;
    const size_t hi = std::min(i + smooth_radius, n - 1);
    double sum = 0.0;
    for (size_t j = lo; j <= hi; ++j) sum += static_cast<double>(counts_[j]);
    smooth[i] = sum / static_cast<double>(hi - lo + 1);
  }

  const double max_val = *std::max_element(smooth.begin(), smooth.end());
  const double threshold = max_val * min_prominence_frac;

  // A peak is a maximal run of bins above threshold containing a local max.
  // Count runs above threshold separated by at least one bin that dips
  // below half the smaller neighbouring peak (valley test).
  size_t peaks = 0;
  bool in_peak = false;
  double run_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (smooth[i] >= threshold) {
      if (!in_peak) {
        in_peak = true;
        run_max = smooth[i];
        ++peaks;
      } else {
        run_max = std::max(run_max, smooth[i]);
      }
    } else if (in_peak && smooth[i] < 0.5 * run_max) {
      in_peak = false;
    }
  }
  return peaks;
}

LogHistogram::LogHistogram(double lo, double growth, size_t bins)
    : lo_(lo), growth_(growth), counts_(bins) {
  if (bins < 3)
    throw std::invalid_argument("LogHistogram: need >= 3 bins "
                                "(underflow, one log bucket, overflow)");
  if (!(lo > 0.0)) throw std::invalid_argument("LogHistogram: lo <= 0");
  if (!(growth > 1.0))
    throw std::invalid_argument("LogHistogram: growth <= 1");
  log_growth_ = std::log(growth);
}

size_t LogHistogram::BucketIndex(double value) const {
  if (value < lo_) return 0;
  // value in [lo*growth^(i-1), lo*growth^i) -> bucket i.
  const double exact = std::log(value / lo_) / log_growth_;
  size_t bin = static_cast<size_t>(exact) + 1;
  // Guard the float rounding at bucket edges: the bound itself belongs to
  // the next bucket up.
  if (value >= BinUpperBound(bin) && bin + 1 < counts_.size()) ++bin;
  return std::min(bin, counts_.size() - 1);
}

void LogHistogram::Record(double value) {
  if (!(value >= 0.0) || !std::isfinite(value)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Positive doubles order the same as their bit patterns, so max is one
  // integer CAS loop; sum needs the full double CAS.
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  uint64_t prev_max = max_bits_.load(std::memory_order_relaxed);
  while (bits > prev_max &&
         !max_bits_.compare_exchange_weak(prev_max, bits,
                                          std::memory_order_relaxed)) {
  }
  uint64_t prev_sum = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double next = std::bit_cast<double>(prev_sum) + value;
    if (sum_bits_.compare_exchange_weak(prev_sum,
                                        std::bit_cast<uint64_t>(next),
                                        std::memory_order_relaxed))
      break;
  }
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (lo_ != other.lo_ || growth_ != other.growth_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument(
        "LogHistogram::Merge: geometry mismatch (lo/growth/bins)");
  for (size_t i = 0; i < counts_.size(); ++i)
    counts_[i].fetch_add(other.BinCount(i), std::memory_order_relaxed);
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  dropped_.fetch_add(other.DroppedCount(), std::memory_order_relaxed);
  const double add = other.Sum();
  uint64_t prev_sum = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double next = std::bit_cast<double>(prev_sum) + add;
    if (sum_bits_.compare_exchange_weak(prev_sum,
                                        std::bit_cast<uint64_t>(next),
                                        std::memory_order_relaxed))
      break;
  }
  const uint64_t other_max = std::bit_cast<uint64_t>(other.Max());
  uint64_t prev_max = max_bits_.load(std::memory_order_relaxed);
  while (other_max > prev_max &&
         !max_bits_.compare_exchange_weak(prev_max, other_max,
                                          std::memory_order_relaxed)) {
  }
}

double LogHistogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double LogHistogram::Max() const {
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double LogHistogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double LogHistogram::BinUpperBound(size_t bin) const {
  if (bin == 0) return lo_;
  if (bin >= counts_.size() - 1)
    return std::numeric_limits<double>::infinity();
  return lo_ * std::pow(growth_, static_cast<double>(bin));
}

uint64_t LogHistogram::BinCount(size_t bin) const {
  return counts_.at(bin).load(std::memory_order_relaxed);
}

std::vector<uint64_t> LogHistogram::Snapshot() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = BinCount(i);
  return out;
}

double LogHistogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = Snapshot();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q >= 1.0) return Max();
  q = std::max(q, 0.0);
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(q * total) observations (rank 1 for q == 0).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank)
      return i == counts.size() - 1 ? Max() : BinUpperBound(i);
  }
  return Max();
}

std::string Histogram::Render(size_t max_width) const {
  uint64_t max_count = 0;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) max_count = 1;

  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        static_cast<size_t>(static_cast<double>(counts_[i]) /
                            static_cast<double>(max_count) *
                            static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "%12.3f | %-8llu ", BinCenter(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace stemroot
