#include "common/rng.h"

#include <cmath>
#include <stdexcept>

namespace stemroot {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t parent, uint64_t stream) {
  uint64_t state = parent ^ (0xD1B54A32D192ED03ULL * (stream + 1));
  (void)SplitMix64(state);
  return SplitMix64(state);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& word : s_) word = SplitMix64(state);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::NextBounded: bound == 0");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = (~bound + 1) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::NextInt: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextExponential(double lambda) {
  if (lambda <= 0.0)
    throw std::invalid_argument("Rng::NextExponential: lambda <= 0");
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  std::array<uint64_t, 4> t{0, 0, 0, 0};
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (int w = 0; w < 4; ++w) t[w] ^= s_[w];
      }
      (*this)();
    }
  }
  s_ = t;
}

}  // namespace stemroot
