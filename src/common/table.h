/// \file
/// Aligned plain-text tables for bench output.
///
/// Each bench binary prints the same rows the paper's tables report; this
/// helper keeps that output aligned and diff-friendly.

#pragma once

#include <string>
#include <vector>

namespace stemroot {

/// Column-aligned text table with an optional title and header separator.
class TextTable {
 public:
  /// Create with column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Optional title printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Add a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows: formats doubles with the given
  /// precision. "nan" renders as "N/A".
  static std::string Num(double v, int precision = 2);

  /// Render with single-space-padded columns and a dashed header rule.
  std::string Render() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stemroot
