#include "common/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/csv.h"
#include "common/json.h"
#include "common/str.h"
#include "common/trace_events.h"

namespace stemroot::telemetry {

namespace {

struct SpanAgg {
  uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;

  void Add(double us) {
    if (count == 0) {
      min_us = max_us = us;
    } else {
      min_us = std::min(min_us, us);
      max_us = std::max(max_us, us);
    }
    ++count;
    total_us += us;
  }

  void Merge(const SpanAgg& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    total_us += other.total_us;
    min_us = std::min(min_us, other.min_us);
    max_us = std::max(max_us, other.max_us);
  }
};

using SpanKey = std::pair<std::string, std::string>;  // (name, parent)

/// One thread's private staging area. The mutex is uncontended on the hot
/// path (only Capture/Reset from another thread ever take it).
struct ThreadBuffer {
  std::mutex mu;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<double>> values;
  std::map<SpanKey, SpanAgg> spans;

  bool Empty() const {
    return counters.empty() && values.empty() && spans.empty();
  }
};

/// Central aggregate + the list of live thread buffers. Leaked on purpose:
/// worker threads may outlive static destruction order, and their
/// thread_local handles must always find a live registry.
struct Registry {
  std::atomic<bool> enabled{false};
  std::mutex mu;  ///< guards buffers + the central maps below
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<double>> values;
  std::map<SpanKey, SpanAgg> spans;
};

Registry& Reg() {
  static Registry* registry = new Registry;
  return *registry;
}

/// Merge one buffer into the central maps (registry mutex already held by
/// the caller; the buffer's own mutex too). Clears the buffer.
void DrainLocked(ThreadBuffer& buf, Registry& reg) {
  for (const auto& [name, value] : buf.counters) reg.counters[name] += value;
  for (auto& [name, vals] : buf.values) {
    std::vector<double>& central = reg.values[name];
    central.insert(central.end(), vals.begin(), vals.end());
  }
  for (const auto& [key, agg] : buf.spans) reg.spans[key].Merge(agg);
  buf.counters.clear();
  buf.values.clear();
  buf.spans.clear();
}

/// Thread-exit hook: flush the buffer into the central aggregate and drop
/// it from the live list.
struct TlsHandle {
  std::shared_ptr<ThreadBuffer> buf;

  ~TlsHandle() {
    if (!buf) return;
    Registry& reg = Reg();
    std::lock_guard<std::mutex> reg_lock(reg.mu);
    {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      DrainLocked(*buf, reg);
    }
    std::erase(reg.buffers, buf);
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local TlsHandle handle;
  if (!handle.buf) {
    handle.buf = std::make_shared<ThreadBuffer>();
    Registry& reg = Reg();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(handle.buf);
  }
  return *handle.buf;
}

/// Innermost open span names of the current thread (for parent lookup).
thread_local std::vector<std::string>* tls_span_stack = nullptr;

std::vector<std::string>& SpanStack() {
  // Leaked per-thread vector: spans can close during thread_local
  // destruction; a plain thread_local vector could already be gone.
  if (tls_span_stack == nullptr)
    tls_span_stack = new std::vector<std::string>;
  return *tls_span_stack;
}

DistSummary Summarize(const std::vector<double>& sorted) {
  DistSummary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  auto quantile = [&sorted](double q) {
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    return sorted[idx];
  };
  s.p50 = quantile(0.50);
  s.p99 = quantile(0.99);
  return s;
}

void AppendDistJson(std::string& out, const DistSummary& s) {
  out += Format("{\"count\":%llu,\"min\":",
                static_cast<unsigned long long>(s.count));
  out += json::Number(s.min);
  out += ",\"mean\":";
  out += json::Number(s.mean);
  out += ",\"max\":";
  out += json::Number(s.max);
  out += ",\"p50\":";
  out += json::Number(s.p50);
  out += ",\"p99\":";
  out += json::Number(s.p99);
  out += '}';
}

}  // namespace

void SetEnabled(bool enabled) {
  Reg().enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return Reg().enabled.load(std::memory_order_relaxed); }

void Count(std::string_view name, uint64_t delta) {
  if (!Enabled()) return;
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.counters[std::string(name)] += delta;
}

void Record(std::string_view name, double value) {
  if (!Enabled()) return;
  if (!std::isfinite(value)) return;
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.values[std::string(name)].push_back(value);
}

Span::Span(std::string_view name) {
  const bool telemetry_on = Enabled();
  const bool tracing_on = trace_events::Enabled();
  if (!telemetry_on && !tracing_on) return;
  name_ = std::string(name);
  if (tracing_on) {
    traced_ = true;
    trace_events::Begin(name_);
  }
  if (!telemetry_on) return;
  active_ = true;
  std::vector<std::string>& stack = SpanStack();
  if (!stack.empty()) parent_ = stack.back();
  stack.push_back(name_);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  // Balanced even if tracing was flipped off mid-span.
  if (traced_) trace_events::EndOpen(name_);
  if (!active_) return;
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count();
  // The stack entry was pushed at construction, so it must be popped no
  // matter what SetEnabled did since -- otherwise an outer span would
  // inherit a stale parent. Recording the aggregate, however, honors the
  // *current* switch: a span closing after SetEnabled(false) leaves no
  // trace in the next Capture().
  std::vector<std::string>& stack = SpanStack();
  if (!stack.empty() && stack.back() == name_) stack.pop_back();
  if (!Enabled()) return;
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.spans[SpanKey(name_, parent_)].Add(us);
}

uint64_t Snapshot::Counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

DistSummary Snapshot::Dist(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? DistSummary{} : Summarize(it->second);
}

bool Snapshot::HasSpan(std::string_view name) const {
  for (const auto& [key, stats] : spans_)
    if (key.first == name) return true;
  return false;
}

std::string Snapshot::CountersJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    json::AppendString(out, name);
    out += Format(":%llu", static_cast<unsigned long long>(value));
  }
  out += '}';
  return out;
}

std::string Snapshot::DistributionsJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, vals] : values_) {
    if (!first) out += ',';
    first = false;
    json::AppendString(out, name);
    out += ':';
    AppendDistJson(out, Summarize(vals));
  }
  out += '}';
  return out;
}

std::string Snapshot::ToJson() const {
  std::string out = "{\"schema\":\"stemroot-telemetry-v1\",\"counters\":";
  out += CountersJson();
  out += ",\"distributions\":";
  out += DistributionsJson();
  out += ",\"spans\":[";
  bool first = true;
  for (const auto& [key, stats] : spans_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json::AppendString(out, stats.name);
    out += ",\"parent\":";
    json::AppendString(out, stats.parent);
    out += Format(",\"count\":%llu,\"total_us\":%.3f,\"min_us\":%.3f,"
                  "\"max_us\":%.3f}",
                  static_cast<unsigned long long>(stats.count),
                  stats.total_us, stats.min_us, stats.max_us);
  }
  out += "]}";
  return out;
}

std::string Snapshot::ToCsv() const {
  // Names are usually code-controlled identifiers, but nothing stops a
  // caller from embedding a comma or quote -- RFC 4180 quoting keeps the
  // export parseable regardless.
  std::string out = "kind,name,parent,count,min,mean,max,p50,p99,total\n";
  for (const auto& [name, value] : counters_) {
    out += "counter," + CsvWriter::Quote(name) + ",," +
           Format("%llu", static_cast<unsigned long long>(value)) +
           ",,,,,,\n";
  }
  for (const auto& [name, vals] : values_) {
    const DistSummary s = Summarize(vals);
    // FormatDouble, not %.17g: snprintf would write the global locale's
    // decimal point into the CSV cells.
    out += "distribution," + CsvWriter::Quote(name) + ",," +
           Format("%llu", static_cast<unsigned long long>(s.count)) + "," +
           FormatDouble(s.min) + "," + FormatDouble(s.mean) + "," +
           FormatDouble(s.max) + "," + FormatDouble(s.p50) + "," +
           FormatDouble(s.p99) + ",\n";
  }
  for (const auto& [key, stats] : spans_) {
    out += "span," + CsvWriter::Quote(stats.name) + "," +
           CsvWriter::Quote(stats.parent) + "," +
           Format("%llu", static_cast<unsigned long long>(stats.count)) +
           "," + FormatDoubleFixed(stats.min_us, 3) + ",," +
           FormatDoubleFixed(stats.max_us, 3) + ",,," +
           FormatDoubleFixed(stats.total_us, 3) + "\n";
  }
  return out;
}

Snapshot Capture() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const std::shared_ptr<ThreadBuffer>& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    DrainLocked(*buf, reg);
  }
  Snapshot snap;
  snap.counters_ = reg.counters;
  snap.values_ = reg.values;
  // Distributions merge deterministically as a sorted multiset: the value
  // *set* is schedule-invariant even though arrival order is not.
  for (auto& [name, vals] : snap.values_)
    std::sort(vals.begin(), vals.end());
  for (const auto& [key, agg] : reg.spans) {
    SpanStats stats;
    stats.name = key.first;
    stats.parent = key.second;
    stats.count = agg.count;
    stats.total_us = agg.total_us;
    stats.min_us = agg.min_us;
    stats.max_us = agg.max_us;
    snap.spans_[key] = stats;
  }
  return snap;
}

Snapshot Sample() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  Snapshot snap;
  snap.counters_ = reg.counters;
  snap.values_ = reg.values;
  for (const auto& [key, agg] : reg.spans) {
    SpanStats stats;
    stats.name = key.first;
    stats.parent = key.second;
    stats.count = agg.count;
    stats.total_us = agg.total_us;
    stats.min_us = agg.min_us;
    stats.max_us = agg.max_us;
    snap.spans_[key] = stats;
  }
  // Overlay each live buffer without clearing it (the non-draining
  // contract). The buffer mutex is held only for the copy.
  for (const std::shared_ptr<ThreadBuffer>& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const auto& [name, value] : buf->counters)
      snap.counters_[name] += value;
    for (const auto& [name, vals] : buf->values) {
      std::vector<double>& central = snap.values_[name];
      central.insert(central.end(), vals.begin(), vals.end());
    }
    for (const auto& [key, agg] : buf->spans) {
      SpanStats& stats = snap.spans_[key];
      stats.name = key.first;
      stats.parent = key.second;
      SpanAgg merged;
      merged.count = stats.count;
      merged.total_us = stats.total_us;
      merged.min_us = stats.min_us;
      merged.max_us = stats.max_us;
      merged.Merge(agg);
      stats.count = merged.count;
      stats.total_us = merged.total_us;
      stats.min_us = merged.min_us;
      stats.max_us = merged.max_us;
    }
  }
  for (auto& [name, vals] : snap.values_)
    std::sort(vals.begin(), vals.end());
  return snap;
}

std::map<std::string, uint64_t> CounterDeltas(const Snapshot& before,
                                              const Snapshot& after) {
  std::map<std::string, uint64_t> deltas;
  for (const auto& [name, value] : after.Counters()) {
    const uint64_t prior = before.Counter(name);
    if (value > prior) deltas[name] = value - prior;
  }
  return deltas;
}

void Reset() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const std::shared_ptr<ThreadBuffer>& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->counters.clear();
    buf->values.clear();
    buf->spans.clear();
  }
  reg.counters.clear();
  reg.values.clear();
  reg.spans.clear();
}

}  // namespace stemroot::telemetry
