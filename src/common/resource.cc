#include "common/resource.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define STEMROOT_HAVE_RUSAGE 1
#endif

#include "common/histogram.h"
#include "common/journal.h"
#include "common/str.h"
#include "common/telemetry.h"

namespace stemroot::resource {

namespace {

// Resource-histogram geometry: [1 MiB, 1 MiB * 1.3^62 ~= 10 TiB) — RSS
// from megabytes to far past any machine we run on.
constexpr double kRssHistLo = 1024.0 * 1024.0;
constexpr double kRssHistGrowth = 1.3;
constexpr size_t kRssHistBins = 64;

// A new high-water mark is journal-worthy when it beats the last
// reported one by this factor (hysteresis: growth is logged in ~20%
// steps, not every page).
constexpr double kHighwaterStep = 1.2;

std::atomic<bool> g_accounting_enabled{false};

/// Logical category state. Charges land at coarse sites (per pipeline
/// stage, per rep, per lane build, per feed chunk), so one mutex around
/// the map is uncontended in practice and trivially TSan-clean. The
/// determinism argument needs no atomics: `current` never decreases, so
/// `peak` ends at the schedule-invariant total for Account() charges,
/// and max() over deterministic AccountPeak() values is
/// order-independent.
struct Category {
  uint64_t current = 0;
  uint64_t peak = 0;
};

struct AccountState {
  std::mutex mu;
  std::map<std::string, Category> categories;
};

AccountState& Accounts() {
  static AccountState* state = new AccountState;  // never destroyed
  return *state;
}

// Physical high-water state: monotonic atomics, CAS-max updates.
std::atomic<uint64_t> g_current_rss{0};
std::atomic<uint64_t> g_peak_rss{0};
std::atomic<uint64_t> g_samples{0};
std::atomic<uint64_t> g_reported_hwm{0};  ///< last journal-logged peak

std::mutex g_cpu_mu;
double g_user_cpu_seconds = 0.0;
double g_system_cpu_seconds = 0.0;

LogHistogram& RssHist() {
  static LogHistogram* hist =
      new LogHistogram(kRssHistLo, kRssHistGrowth, kRssHistBins);
  return *hist;
}

void FoldMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t seen = target.load(std::memory_order_relaxed);
  while (value > seen &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

std::optional<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Trimmed whitespace-separated tokens of `text` (the shape of both
/// proc files we parse).
std::vector<std::string_view> Tokens(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r'))
      ++i;
    const size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '\n' && text[i] != '\r')
      ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

uint64_t PageSize() {
#if defined(_SC_PAGESIZE)
  const long page = sysconf(_SC_PAGESIZE);
  if (page > 0) return static_cast<uint64_t>(page);
#endif
  return 4096;
}

/// Fold one observation into the monotonic process state and count it.
void FoldSample(const PhysicalSample& sample) {
  uint64_t rss = 0;
  if (sample.rss_bytes) rss = *sample.rss_bytes;
  if (rss > 0) {
    g_current_rss.store(rss, std::memory_order_relaxed);
    FoldMax(g_peak_rss, rss);
    RssHist().Record(static_cast<double>(rss));
    if (telemetry::Enabled())
      telemetry::Record("resource.rss_mb",
                        static_cast<double>(rss) / (1024.0 * 1024.0));
  }
  if (sample.hwm_bytes) FoldMax(g_peak_rss, *sample.hwm_bytes);
  if (sample.max_rss_bytes) FoldMax(g_peak_rss, *sample.max_rss_bytes);
  {
    std::lock_guard<std::mutex> lock(g_cpu_mu);
    if (sample.user_cpu_seconds > g_user_cpu_seconds)
      g_user_cpu_seconds = sample.user_cpu_seconds;
    if (sample.system_cpu_seconds > g_system_cpu_seconds)
      g_system_cpu_seconds = sample.system_cpu_seconds;
  }
  g_samples.fetch_add(1, std::memory_order_relaxed);

  // Memory-pressure journaling, slow-request-style: a warn event per
  // ~20% high-water step, never per page. regress gates journal errors
  // only, so warn is visible but safe.
  const uint64_t peak = g_peak_rss.load(std::memory_order_relaxed);
  uint64_t reported = g_reported_hwm.load(std::memory_order_relaxed);
  while (peak > 0 &&
         (reported == 0 ||
          static_cast<double>(peak) >=
              static_cast<double>(reported) * kHighwaterStep)) {
    if (g_reported_hwm.compare_exchange_weak(reported, peak,
                                             std::memory_order_relaxed)) {
      if (journal::Enabled())
        journal::Emit(journal::Severity::kWarn, "mem_highwater",
                      {{"rss_bytes", rss},
                       {"peak_rss_bytes", peak},
                       {"samples",
                        g_samples.load(std::memory_order_relaxed)}});
      break;
    }
  }
}

/// Background sampler: the MetricsExporter shape — mutex+cv loop,
/// final sample in the destructor so even sub-interval runs observe
/// at least two points.
class SamplerThread {
 public:
  explicit SamplerThread(uint64_t interval_ms)
      : interval_ms_(interval_ms == 0 ? 1 : interval_ms),
        thread_([this] { Run(); }) {}

  ~SamplerThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    SamplePhysical();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      SamplePhysical();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_; });
    }
  }

  const uint64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

std::mutex g_sampler_mu;
std::unique_ptr<SamplerThread> g_sampler;

}  // namespace

void SetAccountingEnabled(bool enabled) {
  g_accounting_enabled.store(enabled, std::memory_order_relaxed);
}

bool AccountingEnabled() {
  return g_accounting_enabled.load(std::memory_order_relaxed);
}

void Account(std::string_view category, uint64_t bytes) {
  if (!g_accounting_enabled.load(std::memory_order_relaxed)) return;
  AccountState& state = Accounts();
  std::lock_guard<std::mutex> lock(state.mu);
  Category& cat = state.categories[std::string(category)];
  cat.current += bytes;
  if (cat.current > cat.peak) cat.peak = cat.current;
}

void AccountPeak(std::string_view category, uint64_t bytes) {
  if (!g_accounting_enabled.load(std::memory_order_relaxed)) return;
  AccountState& state = Accounts();
  std::lock_guard<std::mutex> lock(state.mu);
  Category& cat = state.categories[std::string(category)];
  if (bytes > cat.peak) cat.peak = bytes;
}

std::map<std::string, uint64_t> LogicalPeaks() {
  AccountState& state = Accounts();
  std::lock_guard<std::mutex> lock(state.mu);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, cat] : state.categories) out[name] = cat.peak;
  return out;
}

void ResetAccounting() {
  AccountState& state = Accounts();
  std::lock_guard<std::mutex> lock(state.mu);
  state.categories.clear();
}

std::optional<uint64_t> ParseStatmRssBytes(std::string_view text,
                                           uint64_t page_size_bytes) {
  const std::vector<std::string_view> tokens = Tokens(text);
  if (tokens.size() < 2) return std::nullopt;
  const std::optional<int64_t> pages = ParseInt(tokens[1]);
  if (!pages || *pages < 0) return std::nullopt;
  return static_cast<uint64_t>(*pages) * page_size_bytes;
}

StatusFields ParseStatusText(std::string_view text) {
  StatusFields out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    std::optional<uint64_t>* field = nullptr;
    std::string_view rest;
    if (StartsWith(line, "VmRSS:")) {
      field = &out.vm_rss_bytes;
      rest = line.substr(6);
    } else if (StartsWith(line, "VmHWM:")) {
      field = &out.vm_hwm_bytes;
      rest = line.substr(6);
    } else {
      continue;
    }
    // "   123456 kB" — the value is in kB; a missing unit is tolerated,
    // any other unit is malformed (absent, not fatal).
    const std::vector<std::string_view> tokens = Tokens(rest);
    if (tokens.empty() || (tokens.size() >= 2 && tokens[1] != "kB"))
      continue;
    const std::optional<int64_t> kb = ParseInt(tokens[0]);
    if (!kb || *kb < 0) continue;
    *field = static_cast<uint64_t>(*kb) * 1024;
  }
  return out;
}

PhysicalSample ReadProcFiles(const std::string& statm_path,
                             const std::string& status_path,
                             uint64_t page_size_bytes) {
  PhysicalSample sample;
  if (const std::optional<std::string> statm = ReadFileText(statm_path))
    sample.rss_bytes = ParseStatmRssBytes(*statm, page_size_bytes);
  if (const std::optional<std::string> status = ReadFileText(status_path)) {
    const StatusFields fields = ParseStatusText(*status);
    sample.hwm_bytes = fields.vm_hwm_bytes;
    // statm already gave current RSS; VmRSS is the fallback source.
    if (!sample.rss_bytes) sample.rss_bytes = fields.vm_rss_bytes;
  }
  return sample;
}

PhysicalSample SamplePhysical() {
  PhysicalSample sample =
      ReadProcFiles("/proc/self/statm", "/proc/self/status", PageSize());
#ifdef STEMROOT_HAVE_RUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in kilobytes.
    if (usage.ru_maxrss > 0)
      sample.max_rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
    sample.user_cpu_seconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    sample.system_cpu_seconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
  }
#endif
  FoldSample(sample);
  return sample;
}

uint64_t PeakRssBytes() {
  SamplePhysical();
  return g_peak_rss.load(std::memory_order_relaxed);
}

uint64_t CurrentRssBytes() {
  return g_current_rss.load(std::memory_order_relaxed);
}

void StartSampler(uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(g_sampler_mu);
  if (g_sampler) return;
  g_sampler = std::make_unique<SamplerThread>(interval_ms);
}

void StopSampler() {
  std::lock_guard<std::mutex> lock(g_sampler_mu);
  g_sampler.reset();
}

bool SamplerRunning() {
  std::lock_guard<std::mutex> lock(g_sampler_mu);
  return g_sampler != nullptr;
}

Stats GetStats() {
  Stats stats;
  stats.samples = g_samples.load(std::memory_order_relaxed);
  stats.current_rss_bytes = g_current_rss.load(std::memory_order_relaxed);
  stats.peak_rss_bytes = g_peak_rss.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_cpu_mu);
  stats.user_cpu_seconds = g_user_cpu_seconds;
  stats.system_cpu_seconds = g_system_cpu_seconds;
  return stats;
}

void MergeRssHistogram(LogHistogram& into) { into.Merge(RssHist()); }

LogHistogram MakeRssHistogram() {
  return LogHistogram(kRssHistLo, kRssHistGrowth, kRssHistBins);
}

}  // namespace stemroot::resource
