/// \file
/// Deterministic pseudo-random number generation for reproducible
/// experiments.
///
/// Every stochastic component in the library (workload generators, the
/// hardware jitter model, sampling with replacement) draws from an Rng that
/// is seeded explicitly, so a whole experiment is reproducible bit-for-bit
/// from a single top-level seed. We implement xoshiro256** (Blackman &
/// Vigna), which is small, fast, and has far better statistical quality than
/// std::minstd/rand while avoiding the platform-dependence of
/// std::mt19937's distribution implementations.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace stemroot {

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state and as a
/// cheap standalone mixer for deriving per-object seeds.
uint64_t SplitMix64(uint64_t& state);

/// Derive a child seed from a parent seed and a stream identifier. Used so
/// that e.g. every kernel invocation gets an independent, stable stream.
uint64_t DeriveSeed(uint64_t parent, uint64_t stream);

/// Hash a string into a 64-bit stream id (FNV-1a). Stable across platforms.
uint64_t HashString(std::string_view s);

/// xoshiro256** generator. Satisfies the essentials of
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Construct from a 64-bit seed; state is expanded via SplitMix64 so that
  /// nearby seeds yield uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Marsaglia polar method; cached spare).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Log-normal deviate parameterised by the mean/stddev of the underlying
  /// normal (i.e. exp(N(mu, sigma))).
  double NextLogNormal(double mu, double sigma);

  /// Exponential deviate with the given rate (lambda > 0).
  double NextExponential(double lambda);

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p);

  /// Jump ahead 2^128 steps: yields a non-overlapping parallel stream.
  void Jump();

 private:
  std::array<uint64_t, 4> s_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace stemroot
