#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stemroot {

double SummaryStats::Stddev() const { return std::sqrt(variance); }

double SummaryStats::Cov() const {
  return mean != 0.0 ? Stddev() / mean : 0.0;
}

SummaryStats SummaryStats::Of(std::span<const double> values) {
  SummaryStats s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);
  double m2 = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    m2 += d * d;
  }
  s.variance = m2 / static_cast<double>(s.count);
  return s;
}

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

StreamingStats StreamingStats::FromMoments(size_t count, double mean,
                                           double variance, double min,
                                           double max) {
  if (variance < 0.0)
    throw std::invalid_argument("StreamingStats::FromMoments: variance < 0");
  if (count > 0 && min > max)
    throw std::invalid_argument("StreamingStats::FromMoments: min > max");
  StreamingStats s;
  if (count == 0) return s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = variance * static_cast<double>(count);
  s.sum_ = mean * static_cast<double>(count);
  s.min_ = min;
  s.max_ = max;
  return s;
}

double StreamingStats::Stddev() const { return std::sqrt(Variance()); }

double StreamingStats::Cov() const {
  const double m = Mean();
  return m != 0.0 ? Stddev() / m : 0.0;
}

SummaryStats StreamingStats::Summary() const {
  SummaryStats s;
  s.count = count_;
  s.mean = Mean();
  s.variance = Variance();
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  return s;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("NormalQuantile: p must be in (0, 1)");

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double plow = 0.02425;

  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double ZScore(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument("ZScore: confidence must be in (0, 1)");
  const double alpha = 1.0 - confidence;
  return NormalQuantile(1.0 - alpha / 2.0);
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("Percentile: p outside [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double HarmonicMean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("HarmonicMean: empty input");
  double recip = 0.0;
  for (double v : values) {
    if (v <= 0.0)
      throw std::invalid_argument("HarmonicMean: values must be positive");
    recip += 1.0 / v;
  }
  return static_cast<double>(values.size()) / recip;
}

double GeometricMean(std::span<const double> values) {
  if (values.empty())
    throw std::invalid_argument("GeometricMean: empty input");
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0)
      throw std::invalid_argument("GeometricMean: values must be positive");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mad(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("Mad: empty input");
  const double med = Percentile(values, 50.0);
  std::vector<double> dev(values.size());
  for (size_t i = 0; i < values.size(); ++i)
    dev[i] = std::abs(values[i] - med);
  return 1.4826 * Percentile(dev, 50.0);
}

}  // namespace stemroot
