#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace stemroot {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

std::string VFormat(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return "<format error>";
  std::vector<char> buf(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  return std::string(buf.data(), static_cast<size_t>(needed));
}

namespace {
void Emit(const char* prefix, const char* fmt, va_list args) {
  const std::string msg = VFormat(fmt, args);
  std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}
}  // namespace

void Inform(const char* fmt, ...) {
  if (g_level < LogLevel::kInform) return;
  va_list args;
  va_start(args, fmt);
  Emit("info: ", fmt, args);
  va_end(args);
}

void Warn(const char* fmt, ...) {
  if (g_level < LogLevel::kWarn) return;
  va_list args;
  va_start(args, fmt);
  Emit("warn: ", fmt, args);
  va_end(args);
}

void Debug(const char* fmt, ...) {
  if (g_level < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  Emit("debug: ", fmt, args);
  va_end(args);
}

void Fatal(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  const std::string msg = VFormat(fmt, args);
  va_end(args);
  throw std::runtime_error("fatal: " + msg);
}

void Panic(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  const std::string msg = VFormat(fmt, args);
  va_end(args);
  std::fprintf(stderr, "panic: %s\n", msg.c_str());
  std::abort();
}

}  // namespace stemroot
