#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace stemroot {

namespace {
/// Level is read on every log call, possibly from many threads at once
/// (the parallel suite runner logs per-workload progress); counters are
/// bumped the same way. Plain relaxed atomics: no ordering is needed,
/// only tear-free reads.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<uint64_t> g_counts[kNumLogLevels] = {};

/// Serializes the actual stderr writes so messages from concurrent
/// workers never interleave mid-line.
std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

void Count(LogLevel level) {
  g_counts[static_cast<size_t>(level)].fetch_add(1,
                                                 std::memory_order_relaxed);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace {
constexpr const char* kLevelNames[kNumLogLevels] = {"silent", "warn",
                                                    "inform", "debug"};
}  // namespace

const char* LogLevelName(LogLevel level) {
  return kLevelNames[static_cast<size_t>(level)];
}

std::optional<LogLevel> LogLevelFromName(std::string_view name) {
  for (size_t i = 0; i < kNumLogLevels; ++i)
    if (name == kLevelNames[i]) return static_cast<LogLevel>(i);
  return std::nullopt;
}

uint64_t LogCount(LogLevel level) {
  return g_counts[static_cast<size_t>(level)].load(std::memory_order_relaxed);
}

void ResetLogCounts() {
  for (auto& c : g_counts) c.store(0, std::memory_order_relaxed);
}

std::string VFormat(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return "<format error>";
  std::vector<char> buf(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  return std::string(buf.data(), static_cast<size_t>(needed));
}

uint64_t MonotonicMicros() {
  // The epoch is pinned by the first call (static init is thread-safe);
  // journal events and log lines therefore share one zero point.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

uint32_t LogThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
void Emit(const char* prefix, const char* fmt, va_list args) {
  const std::string msg = VFormat(fmt, args);  // format outside the lock
  // Stamp before taking the lock: the timestamp is of the event, not of
  // the stderr write.
  const uint64_t us = MonotonicMicros();
  const uint32_t tid = LogThreadId();
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "%s[%llu.%06llu t%u] %s\n", prefix,
               static_cast<unsigned long long>(us / 1000000),
               static_cast<unsigned long long>(us % 1000000), tid,
               msg.c_str());
}
}  // namespace

void Inform(const char* fmt, ...) {
  Count(LogLevel::kInform);
  if (GetLogLevel() < LogLevel::kInform) return;
  va_list args;
  va_start(args, fmt);
  Emit("info: ", fmt, args);
  va_end(args);
}

void Warn(const char* fmt, ...) {
  Count(LogLevel::kWarn);
  if (GetLogLevel() < LogLevel::kWarn) return;
  va_list args;
  va_start(args, fmt);
  Emit("warn: ", fmt, args);
  va_end(args);
}

void Debug(const char* fmt, ...) {
  Count(LogLevel::kDebug);
  if (GetLogLevel() < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  Emit("debug: ", fmt, args);
  va_end(args);
}

void Fatal(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  const std::string msg = VFormat(fmt, args);
  va_end(args);
  throw std::runtime_error("fatal: " + msg);
}

void Panic(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  const std::string msg = VFormat(fmt, args);
  va_end(args);
  const uint64_t us = MonotonicMicros();
  std::fprintf(stderr, "panic: [%llu.%06llu t%u] %s\n",
               static_cast<unsigned long long>(us / 1000000),
               static_cast<unsigned long long>(us % 1000000), LogThreadId(),
               msg.c_str());
  std::abort();
}

}  // namespace stemroot
