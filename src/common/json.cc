#include "common/json.h"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <system_error>

#include "common/str.h"

namespace stemroot::json {

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(Value& out, std::string* error) {
    try {
      out = ParseValue();
      SkipWs();
      if (pos_ != text_.size()) Fail("trailing characters after document");
      return true;
    } catch (const std::exception& e) {
      if (error != nullptr)
        *error = Format("offset %zu: %s", pos_, e.what());
      return false;
    }
  }

 private:
  /// Recursion cap: ParseValue recurses once per container level, so a
  /// hostile "[[[[..." document would otherwise overflow the stack. 200
  /// levels is far beyond any manifest/telemetry payload.
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void Fail(const std::string& why) {
    throw std::runtime_error(why);
  }

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth)
        throw std::runtime_error("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(Format("expected '%c', got '%c'", c, Peek()));
    ++pos_;
  }

  Value ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
      case 'f': return ParseLiteralBool();
      case 'n': {
        ParseLiteral("null");
        return Value{};
      }
      default: return ParseNumber();
    }
  }

  void ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      Fail("bad literal (expected " + std::string(word) + ")");
    pos_ += word.size();
  }

  Value ParseLiteralBool() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (Peek() == 't') {
      ParseLiteral("true");
      v.number = 1.0;
    } else {
      ParseLiteral("false");
    }
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        Fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i)
            if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                0)
              Fail("bad \\u escape");
          // Validation only: keep the escape verbatim.
          out += "\\u";
          out.append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default: Fail("bad escape character");
      }
    }
  }

  Value ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) Fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) Fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) Fail("bad exponent");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    // from_chars, not std::stod: stod honors the global locale's decimal
    // point, so a comma-decimal locale would silently truncate "1.5" to 1.
    // The span was validated against the JSON grammar above, which is a
    // subset of what from_chars accepts.
    const std::string_view span = text_.substr(start, pos_ - start);
    const auto [ptr, ec] =
        std::from_chars(span.data(), span.data() + span.size(), v.number);
    if (ec == std::errc::result_out_of_range) Fail("number out of range");
    if (ec != std::errc() || ptr != span.data() + span.size())
      Fail("bad number");
    return v;
  }

  Value ParseObject() {
    DepthGuard guard(*this);
    Expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    v.object = std::make_shared<Object>();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.object->emplace_back(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  Value ParseArray() {
    DepthGuard guard(*this);
    Expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    v.array = std::make_shared<Array>();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Parse(std::string_view text, Value& out, std::string* error) {
  return Parser(text).Parse(out, error);
}

void AppendString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += Format("\\u%04x", c);
        else
          out += c;
    }
  }
  out += '"';
}

// FormatDouble (std::to_chars), not "%.17g": snprintf's %g goes through
// the C locale's decimal point, and the shortest round-trip form also
// keeps manifests, fingerprints, and cache keys free of %.17g's trailing
// digit noise ("0.1" instead of "0.10000000000000001").
std::string Number(double v) { return FormatDouble(v); }

}  // namespace stemroot::json
