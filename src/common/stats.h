/// \file
/// Descriptive statistics used throughout STEM+ROOT.
///
/// STEM's error model (paper Sec. 3.2) is built on the mean mu, standard
/// deviation sigma, and coefficient of variation sigma/mu of kernel
/// execution-time populations, so this module provides both batch
/// (SummaryStats::Of) and streaming (StreamingStats, Welford) computation,
/// plus the standard-normal machinery (z-scores) that converts a confidence
/// level 1 - alpha into the z_{1-alpha/2} factor of Eq. (2).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stemroot {

/// Batch summary of a sample: count, mean, (population) variance, extremes.
///
/// We use the population variance (divide by n) rather than the Bessel
/// corrected sample variance: in ROOT the "sample" is in fact the entire
/// finite population of invocations in a cluster, whose spread is what
/// Eq. (3) consumes.
struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divide by n)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  /// Standard deviation, sqrt(variance).
  double Stddev() const;

  /// Coefficient of variation sigma/mu; 0 when the mean is 0.
  double Cov() const;

  /// Compute over a span of values. Returns a zeroed struct for empty input.
  static SummaryStats Of(std::span<const double> values);
};

/// Numerically stable streaming moments (Welford's algorithm). Suitable for
/// single-pass profiling over millions of kernel invocations.
class StreamingStats {
 public:
  /// Fold one observation into the accumulator.
  void Add(double x);

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void Merge(const StreamingStats& other);

  /// Reconstruct an accumulator from population moments (count, mean,
  /// population variance) plus the observed range. Used by the streaming
  /// clusterer to synthesize children whose stats were estimated from a
  /// reservoir sample and scaled to the full population. Throws
  /// std::invalid_argument on negative variance or an inverted range.
  static StreamingStats FromMoments(size_t count, double mean,
                                    double variance, double min, double max);

  size_t Count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance.
  double Variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  double Stddev() const;
  double Cov() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Sum() const { return sum_; }

  /// Snapshot as a SummaryStats value.
  SummaryStats Summary() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Inverse standard normal CDF (quantile function); Acklam's rational
/// approximation refined with one Halley step, |error| < 1e-9.
/// Throws std::invalid_argument for p outside (0, 1).
double NormalQuantile(double p);

/// z_{1-alpha/2} for a two-sided confidence level 1 - alpha.
/// ZScore(0.95) == 1.95996... (the paper rounds to 1.96).
double ZScore(double confidence);

/// Percentile (linear interpolation, inclusive method) of a sample.
/// p in [0, 100]. The input need not be sorted. Throws on empty input.
double Percentile(std::span<const double> values, double p);

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values);

/// Harmonic mean; used for averaging speedups per the paper (Sec. 5,
/// citing Eeckhout's "RIP geomean speedup"). Throws if any value <= 0.
double HarmonicMean(std::span<const double> values);

/// Geometric mean. Throws if any value <= 0.
double GeometricMean(std::span<const double> values);

/// Median absolute deviation (scaled by 1.4826 to be consistent with the
/// standard deviation under normality). Robust spread estimate used by the
/// workload validators.
double Mad(std::span<const double> values);

}  // namespace stemroot
