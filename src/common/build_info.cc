#include "common/build_info.h"

#include "common/json.h"

// CMake injects these through set_source_files_properties on this file
// only, so a hash change never rebuilds the whole library.
#ifndef SR_GIT_HASH
#define SR_GIT_HASH "unknown"
#endif
#ifndef SR_GIT_DIRTY
#define SR_GIT_DIRTY 0
#endif
#ifndef SR_COMPILER_ID
#define SR_COMPILER_ID "unknown"
#endif
#ifndef SR_BUILD_TYPE
#define SR_BUILD_TYPE ""
#endif
#ifndef SR_SANITIZE_MODE
#define SR_SANITIZE_MODE ""
#endif

namespace stemroot {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo kInfo = {SR_GIT_HASH, SR_GIT_DIRTY != 0,
                                  SR_COMPILER_ID, SR_BUILD_TYPE,
                                  SR_SANITIZE_MODE};
  return kInfo;
}

std::string BuildInfoJson(const BuildInfo& info) {
  std::string out = "{\"git_hash\":";
  json::AppendString(out, info.git_hash);
  out += ",\"git_dirty\":";
  out += info.git_dirty ? "true" : "false";
  out += ",\"compiler\":";
  json::AppendString(out, info.compiler);
  out += ",\"build_type\":";
  json::AppendString(out, info.build_type);
  out += ",\"sanitizer\":";
  json::AppendString(out, info.sanitizer);
  out += '}';
  return out;
}

}  // namespace stemroot
