#include "common/flags.h"

#include <stdexcept>

#include "common/str.h"

namespace stemroot {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  int i = 0;
  while (i < argc && !StartsWith(argv[i], "--"))
    flags.positional_.emplace_back(argv[i++]);
  while (i < argc) {
    std::string key = argv[i];
    if (!StartsWith(key, "--"))
      throw std::invalid_argument("Flags: expected --flag, got '" + key +
                                  "'");
    key = key.substr(2);
    // Support --key=value and --key value.
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      flags.values_[key.substr(0, eq)] = key.substr(eq + 1);
      ++i;
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("Flags: --" + key + " needs a value");
    flags.values_[key] = argv[i + 1];
    i += 2;
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  read_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  read_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // ParseDouble (from_chars) rather than std::stod: stod reads the global
  // locale's decimal point, so "--scale 1.5" would parse as 1 under a
  // comma-decimal locale.
  const std::optional<double> value = ParseDouble(it->second);
  if (!value)
    throw std::invalid_argument("Flags: --" + key + " expects a number, got '" +
                                it->second + "'");
  return *value;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  read_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::optional<int64_t> value = ParseInt(it->second);
  if (!value)
    throw std::invalid_argument("Flags: --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  return *value;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  read_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("Flags: --" + key +
                              " expects true/false, got '" + it->second +
                              "'");
}

std::string Flags::Require(const std::string& key) const {
  read_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end())
    throw std::invalid_argument("Flags: missing required --" + key);
  return it->second;
}

void Flags::CheckAllRead() const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (read_.count(key) == 0) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + key;
    }
  }
  if (!unknown.empty())
    throw std::invalid_argument("Flags: unknown flag(s): " + unknown);
}

}  // namespace stemroot
