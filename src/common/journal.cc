#include "common/journal.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "common/json.h"
#include "common/log.h"
#include "common/str.h"

namespace stemroot::journal {

namespace {

/// Writer state. Leaked on purpose (like the telemetry registry): worker
/// threads may emit during static destruction, and the atomics must
/// outlive them.
struct State {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> emitted{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> write_errors{0};
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> rate_limit{2000};

  std::mutex mu;  ///< guards everything below
  std::ofstream out;
  uint64_t window_start_us = 0;   ///< current rate-limit second
  uint64_t window_emitted = 0;    ///< non-error events in the window
  uint64_t dropped_unreported = 0;  ///< drops not yet surfaced in a line
};

State& S() {
  static State* state = new State;
  return *state;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

void Open(const std::string& path) {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) s.out.close();
  s.out.open(path, std::ios::binary | std::ios::app);
  if (!s.out)
    throw std::runtime_error("journal: cannot open '" + path + "'");
  s.window_start_us = 0;
  s.window_emitted = 0;
  s.enabled.store(true, std::memory_order_release);
}

void Close() {
  State& s = S();
  s.enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) {
    s.out.flush();
    s.out.close();
  }
}

bool Enabled() { return S().enabled.load(std::memory_order_relaxed); }

void SetRateLimit(uint64_t events_per_second) {
  S().rate_limit.store(events_per_second, std::memory_order_relaxed);
}

void Emit(Severity severity, std::string_view event,
          std::initializer_list<Field> fields) {
  State& s = S();
  if (!s.enabled.load(std::memory_order_relaxed)) return;

  const uint64_t ts_us = MonotonicMicros();
  const uint32_t tid = LogThreadId();

  // Serialize outside the lock; seq is assigned only once the event is
  // admitted, so written seq numbers are gap-free.
  std::string body;
  body.reserve(128);
  body += ",\"sev\":\"";
  body += SeverityName(severity);
  body += "\",\"event\":";
  json::AppendString(body, event);
  for (const Field& f : fields) {
    body += ',';
    json::AppendString(body, f.key);
    body += ':';
    switch (f.kind) {
      case Field::Kind::kString:
        json::AppendString(body, f.string);
        break;
      case Field::Kind::kNumber:
        body += json::Number(f.number);
        break;
      case Field::Kind::kUint:
        body += Format("%llu",
                       static_cast<unsigned long long>(f.uint_value));
        break;
      case Field::Kind::kBool:
        body += f.uint_value != 0 ? "true" : "false";
        break;
    }
  }

  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return;  // raced with Close

  // Token-bucket per wall-clock second. Errors always pass: the regress
  // gate counts them, so the limiter must never eat one.
  const uint64_t limit = s.rate_limit.load(std::memory_order_relaxed);
  if (limit > 0 && severity != Severity::kError) {
    if (ts_us - s.window_start_us >= 1000000) {
      s.window_start_us = ts_us;
      s.window_emitted = 0;
    }
    if (s.window_emitted >= limit) {
      s.dropped.fetch_add(1, std::memory_order_relaxed);
      ++s.dropped_unreported;
      return;
    }
    ++s.window_emitted;
  }

  std::string line = Format(
      "{\"ts_us\":%llu,\"tid\":%u,\"seq\":%llu",
      static_cast<unsigned long long>(ts_us), tid,
      static_cast<unsigned long long>(
          s.seq.fetch_add(1, std::memory_order_relaxed)));
  line += body;
  if (s.dropped_unreported > 0) {
    line += Format(",\"dropped_since_last\":%llu",
                   static_cast<unsigned long long>(s.dropped_unreported));
    s.dropped_unreported = 0;
  }
  line += "}\n";
  s.out << line;
  if (severity == Severity::kError) {
    s.errors.fetch_add(1, std::memory_order_relaxed);
    s.out.flush();  // errors are the lines a crash must not lose
  }
  if (!s.out) {
    s.write_errors.fetch_add(1, std::memory_order_relaxed);
    s.out.clear();  // keep accepting events; best-effort by design
  } else {
    s.emitted.fetch_add(1, std::memory_order_relaxed);
  }
}

Stats GetStats() {
  State& s = S();
  Stats stats;
  stats.emitted = s.emitted.load(std::memory_order_relaxed);
  stats.dropped = s.dropped.load(std::memory_order_relaxed);
  stats.errors = s.errors.load(std::memory_order_relaxed);
  stats.write_errors = s.write_errors.load(std::memory_order_relaxed);
  return stats;
}

void ResetStats() {
  State& s = S();
  s.emitted.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
  s.errors.store(0, std::memory_order_relaxed);
  s.write_errors.store(0, std::memory_order_relaxed);
}

}  // namespace stemroot::journal
