/// \file
/// Fixed-bin histograms plus peak detection, and a log-bucketed
/// concurrent histogram for latency quantiles.
///
/// Execution-time histograms are the paper's central diagnostic (Fig. 1):
/// multi-peak histograms signal a kernel used in several runtime contexts,
/// wide single peaks signal memory-bound jitter. Histogram supports ASCII
/// rendering (for the fig01 bench) and a smoothed-mode peak counter used by
/// the workload validators and by tests that assert the generators really do
/// produce the documented shapes.
///
/// LogHistogram is the live-introspection counterpart (DESIGN.md §14):
/// geometric buckets spanning many decades, lock-free Record() via relaxed
/// atomics, and nearest-rank quantile readout (p50/p90/p99) over the
/// bucket counts — the per-request latency distribution behind the
/// service's Stats verb and Prometheus exposition.

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace stemroot {

/// Equal-width histogram over [lo, hi] with a fixed number of bins.
class Histogram {
 public:
  /// Build with explicit bounds. Throws if bins == 0 or hi <= lo.
  Histogram(double lo, double hi, size_t bins);

  /// Build with bounds spanning the data (padded by half a bin so extremes
  /// fall strictly inside). Throws on empty data or bins == 0.
  static Histogram FromData(std::span<const double> values, size_t bins);

  /// Insert one observation; values outside [lo, hi] clamp to edge bins.
  void Add(double x);

  size_t NumBins() const { return counts_.size(); }
  double Lo() const { return lo_; }
  double Hi() const { return hi_; }
  double BinWidth() const { return width_; }
  uint64_t Count(size_t bin) const { return counts_.at(bin); }
  uint64_t TotalCount() const { return total_; }

  /// Center of a bin.
  double BinCenter(size_t bin) const;

  /// Counts vector (bin order).
  const std::vector<uint64_t>& Counts() const { return counts_; }

  /// Number of local maxima after moving-average smoothing, ignoring modes
  /// shorter than min_prominence_frac * max_count. This is the "how many
  /// performance peaks does this kernel have" question from Fig. 1/2.
  size_t CountPeaks(double min_prominence_frac = 0.05,
                    size_t smooth_radius = 1) const;

  /// Render a horizontal ASCII bar chart (one row per bin) of at most
  /// max_width characters per bar; used by the fig01 bench and examples.
  std::string Render(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Log-bucketed histogram for positive, long-tailed values (request
/// latencies in microseconds). Bucket 0 is the underflow bin [0, lo);
/// bucket i (1 <= i <= bins-2) covers [lo*growth^(i-1), lo*growth^i); the
/// last bucket is the overflow bin. Record() is wait-free (one relaxed
/// fetch_add per bucket plus CAS loops for sum/max), so concurrent server
/// threads record without a lock and a sampler thread can read a
/// consistent-enough view mid-run. Counts never decrease; readers see
/// monotone totals (the Prometheus counter contract).
///
/// Quantiles are nearest-rank over the bucket counts: the reported value
/// is the upper bound of the bucket holding the rank (an overestimate by
/// at most one growth factor), except the overflow bucket, which reports
/// the exact maximum ever recorded. An empty histogram reports 0 for
/// every statistic.
class LogHistogram {
 public:
  /// Defaults span [1us, 1us * 1.5^48 ~= 1.6e8us ~= 160s) in ~50%-wide
  /// buckets — request latencies from sub-microsecond to minutes.
  explicit LogHistogram(double lo = 1.0, double growth = 1.5,
                        size_t bins = 50);

  /// Record one observation. Negative, NaN, and infinite values are
  /// dropped (counted in DroppedCount) so a bad clock can never poison
  /// the quantiles.
  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t DroppedCount() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  double Sum() const;
  double Max() const;  ///< exact maximum recorded; 0 when empty
  double Mean() const;

  /// Nearest-rank quantile (q in [0, 1]); see the class comment for the
  /// bucket-bound semantics. q >= 1 reports Max().
  double Quantile(double q) const;

  /// Fold `other` into this histogram: element-wise bucket-count add,
  /// plus count/dropped/sum accumulation and max of maxima. Both
  /// histograms must share (lo, growth, bins) — throws
  /// std::invalid_argument otherwise. This is the snapshot/aggregation
  /// path for a non-copyable type: readers Merge into a fresh instance
  /// (resource::MergeRssHistogram), aggregators Merge several shards.
  /// Reads of `other` are relaxed-atomic, so merging a live histogram
  /// yields the same consistent-enough view Snapshot() gives.
  void Merge(const LogHistogram& other);

  size_t NumBins() const { return counts_.size(); }
  /// Upper bound of bucket `bin` (inclusive range end for readout); the
  /// overflow bucket reports +inf.
  double BinUpperBound(size_t bin) const;
  /// Relaxed-atomic read of one bucket count.
  uint64_t BinCount(size_t bin) const;
  /// Copy of all bucket counts (one relaxed load per bucket).
  std::vector<uint64_t> Snapshot() const;

 private:
  size_t BucketIndex(double value) const;

  double lo_;
  double log_growth_;  ///< ln(growth), precomputed for BucketIndex
  double growth_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> sum_bits_{0};  ///< double bit pattern, CAS-updated
  std::atomic<uint64_t> max_bits_{0};  ///< double bit pattern, CAS-updated
};

}  // namespace stemroot
