/// \file
/// Fixed-bin histograms plus peak detection.
///
/// Execution-time histograms are the paper's central diagnostic (Fig. 1):
/// multi-peak histograms signal a kernel used in several runtime contexts,
/// wide single peaks signal memory-bound jitter. Histogram supports ASCII
/// rendering (for the fig01 bench) and a smoothed-mode peak counter used by
/// the workload validators and by tests that assert the generators really do
/// produce the documented shapes.

#pragma once

#include <span>
#include <string>
#include <vector>

namespace stemroot {

/// Equal-width histogram over [lo, hi] with a fixed number of bins.
class Histogram {
 public:
  /// Build with explicit bounds. Throws if bins == 0 or hi <= lo.
  Histogram(double lo, double hi, size_t bins);

  /// Build with bounds spanning the data (padded by half a bin so extremes
  /// fall strictly inside). Throws on empty data or bins == 0.
  static Histogram FromData(std::span<const double> values, size_t bins);

  /// Insert one observation; values outside [lo, hi] clamp to edge bins.
  void Add(double x);

  size_t NumBins() const { return counts_.size(); }
  double Lo() const { return lo_; }
  double Hi() const { return hi_; }
  double BinWidth() const { return width_; }
  uint64_t Count(size_t bin) const { return counts_.at(bin); }
  uint64_t TotalCount() const { return total_; }

  /// Center of a bin.
  double BinCenter(size_t bin) const;

  /// Counts vector (bin order).
  const std::vector<uint64_t>& Counts() const { return counts_; }

  /// Number of local maxima after moving-average smoothing, ignoring modes
  /// shorter than min_prominence_frac * max_count. This is the "how many
  /// performance peaks does this kernel have" question from Fig. 1/2.
  size_t CountPeaks(double min_prominence_frac = 0.05,
                    size_t smooth_radius = 1) const;

  /// Render a horizontal ASCII bar chart (one row per bin) of at most
  /// max_width characters per bar; used by the fig01 bench and examples.
  std::string Render(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace stemroot
