/// \file
/// Compile-time build provenance: which source revision, compiler, build
/// type, and sanitizer mode produced this binary.
///
/// Every run manifest (src/eval/manifest.h) embeds this stamp so a ledger
/// entry can always be traced back to the code that produced it -- a perf
/// or accuracy shift in `stemroot regress` is only actionable when the two
/// runs' revisions are known.
///
/// The values are injected by CMake at configure time (see
/// src/CMakeLists.txt): `git rev-parse` supplies the hash, `git status
/// --porcelain` the dirty flag, and the compiler/build-type/sanitizer
/// fields come from the CMake variables of the configured tree. A tree
/// configured before new commits reports the hash of the configure-time
/// HEAD; re-run cmake to refresh the stamp. Outside a git checkout the
/// hash is "unknown".

#pragma once

#include <string>

namespace stemroot {

/// Immutable description of how this binary was built.
struct BuildInfo {
  std::string git_hash;    ///< abbreviated HEAD hash, or "unknown"
  bool git_dirty = false;  ///< uncommitted changes at configure time
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string sanitizer;   ///< SR_SANITIZE: "", "thread", or "address"
};

/// The stamp baked into this binary.
const BuildInfo& GetBuildInfo();

/// Compact JSON object form, e.g.
/// {"git_hash":"abc123","git_dirty":false,"compiler":"GNU 13.2.0",
///  "build_type":"RelWithDebInfo","sanitizer":""}.
std::string BuildInfoJson(const BuildInfo& info);

}  // namespace stemroot
