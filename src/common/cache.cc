#include "common/cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/telemetry.h"

namespace stemroot {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'C', 'E'};
constexpr uint32_t kFormatVersion = 1;
constexpr const char* kEntrySuffix = ".srce";
constexpr uint32_t kMaxKeyLen = 1u << 16;

/// Fixed-size portion of the entry header, written/read as discrete
/// little-endian fields (memcpy through char buffers keeps this free of
/// alignment and padding concerns).
struct Header {
  uint32_t format_version = 0;
  uint32_t key_len = 0;
  uint64_t payload_len = 0;
  uint64_t payload_hash = 0;
};

template <typename T>
void AppendPod(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view bytes, size_t& pos, T& out) {
  if (bytes.size() - pos < sizeof(T)) return false;
  std::memcpy(&out, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

/// Parse + verify one entry file's bytes. On success fills `payload` (when
/// non-null) and returns true; otherwise stores a reason in `problem`.
bool VerifyEntryBytes(std::string_view bytes, const std::string* want_key,
                      std::string* payload, std::string* problem) {
  size_t pos = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    *problem = "bad magic";
    return false;
  }
  pos = sizeof(kMagic);
  Header h;
  if (!ReadPod(bytes, pos, h.format_version) ||
      !ReadPod(bytes, pos, h.key_len)) {
    *problem = "truncated header";
    return false;
  }
  if (h.format_version != kFormatVersion) {
    *problem = "unsupported format version";
    return false;
  }
  if (h.key_len == 0 || h.key_len > kMaxKeyLen ||
      bytes.size() - pos < h.key_len) {
    *problem = "truncated or implausible key";
    return false;
  }
  const std::string_view key = bytes.substr(pos, h.key_len);
  pos += h.key_len;
  if (want_key != nullptr && key != *want_key) {
    *problem = "key mismatch (digest collision or renamed entry)";
    return false;
  }
  if (!ReadPod(bytes, pos, h.payload_len) ||
      !ReadPod(bytes, pos, h.payload_hash)) {
    *problem = "truncated header";
    return false;
  }
  if (bytes.size() - pos != h.payload_len) {
    *problem = "payload length mismatch";
    return false;
  }
  const std::string_view body = bytes.substr(pos);
  if (Fnv1a64(body) != h.payload_hash) {
    *problem = "payload checksum mismatch";
    return false;
  }
  if (payload != nullptr) payload->assign(body);
  return true;
}

std::optional<std::string> ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

bool IsEntryFile(const std::filesystem::directory_entry& entry) {
  if (!entry.is_regular_file()) return false;
  const std::string name = entry.path().filename().string();
  return name.size() > std::strlen(kEntrySuffix) &&
         name.rfind(kEntrySuffix) == name.size() - std::strlen(kEntrySuffix);
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string HexDigest64(uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactCache::EntryPath(const std::string& key) const {
  return (std::filesystem::path(dir_) /
          (HexDigest64(Fnv1a64(key)) + kEntrySuffix))
      .string();
}

std::optional<std::string> ArtifactCache::Get(const std::string& key) const {
  const std::optional<std::string> bytes = ReadFileBytes(EntryPath(key));
  if (!bytes) {
    telemetry::Count("cache.miss");
    return std::nullopt;
  }
  std::string payload;
  std::string problem;
  if (!VerifyEntryBytes(*bytes, &key, &payload, &problem)) {
    // A defective entry is a miss by contract: recompute, never crash,
    // never serve stale or torn data.
    telemetry::Count("cache.miss");
    telemetry::Count("cache.corrupt");
    return std::nullopt;
  }
  telemetry::Count("cache.hit");
  telemetry::Count("cache.read_bytes", payload.size());
  return payload;
}

void ArtifactCache::Put(const std::string& key,
                        std::string_view payload) const {
  if (key.empty() || key.size() > kMaxKeyLen)
    throw std::runtime_error("ArtifactCache: bad key length");

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; open reports

  std::string entry;
  entry.reserve(sizeof(kMagic) + sizeof(Header) + key.size() +
                payload.size());
  entry.append(kMagic, sizeof(kMagic));
  AppendPod(entry, kFormatVersion);
  AppendPod(entry, static_cast<uint32_t>(key.size()));
  entry += key;
  AppendPod(entry, static_cast<uint64_t>(payload.size()));
  AppendPod(entry, Fnv1a64(payload));
  entry.append(payload.data(), payload.size());

  // Temp file in the same directory (rename is only atomic within one
  // filesystem), unique per process so concurrent stores cannot collide.
  const std::string final_path = EntryPath(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("ArtifactCache: cannot open " + tmp_path);
    out.write(entry.data(), static_cast<std::streamsize>(entry.size()));
    out.flush();
    if (!out) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      throw std::runtime_error("ArtifactCache: write failed: " + tmp_path);
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    throw std::runtime_error("ArtifactCache: rename into " + final_path +
                             " failed");
  }
  telemetry::Count("cache.store");
  telemetry::Count("cache.write_bytes", payload.size());
}

ArtifactCache::Stats ArtifactCache::GetStats() const {
  Stats stats;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!IsEntryFile(entry)) continue;
    ++stats.entries;
    stats.bytes += entry.file_size(ec);
  }
  return stats;
}

std::vector<ArtifactCache::EntryInfo> ArtifactCache::Verify() const {
  std::vector<EntryInfo> report;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!IsEntryFile(entry)) continue;
    EntryInfo info;
    info.file = entry.path().filename().string();
    info.bytes = entry.file_size(ec);
    const std::optional<std::string> bytes = ReadFileBytes(entry.path());
    if (!bytes) {
      info.problem = "unreadable";
    } else {
      // No expected key here: Verify checks self-consistency (header +
      // checksum); key/digest agreement is re-checked per lookup in Get.
      info.valid = VerifyEntryBytes(*bytes, nullptr, nullptr, &info.problem);
    }
    report.push_back(std::move(info));
  }
  std::sort(report.begin(), report.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              return a.file < b.file;
            });
  return report;
}

uint64_t ArtifactCache::Evict(uint64_t max_bytes) const {
  struct Candidate {
    std::filesystem::path path;
    uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Candidate> candidates;
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!IsEntryFile(entry)) continue;
    Candidate c;
    c.path = entry.path();
    c.bytes = entry.file_size(ec);
    c.mtime = entry.last_write_time(ec);
    total += c.bytes;
    candidates.push_back(std::move(c));
  }
  // Oldest first; tie-break on path so eviction order is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  uint64_t removed = 0;
  for (const Candidate& c : candidates) {
    if (total <= max_bytes) break;
    if (std::filesystem::remove(c.path, ec) && !ec) {
      total -= c.bytes;
      ++removed;
    }
  }
  return removed;
}

}  // namespace stemroot
