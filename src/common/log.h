/// \file
/// Leveled logging with the gem5-style fatal/panic distinction.
///
/// - Fatal(...)  : user error (bad configuration / arguments); throws
///                 std::runtime_error so callers and tests can recover.
/// - Panic(...)  : internal invariant violation (a library bug); aborts.
/// - Warn/Inform : status messages, never stop execution.
///
/// The global level filters Inform/Warn output; fatal/panic always act.
///
/// Every emitted line carries a monotonic timestamp (seconds since the
/// process-wide epoch, first use of either the logger or the journal) and
/// a small sequential thread id:
///
///   warn: [12.345678 t3] message
///
/// The journal (common/journal.h) stamps its events from the same
/// MonotonicMicros()/LogThreadId() pair, so stderr lines and journal
/// events interleave on one clock and one thread-id namespace.

#pragma once

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stemroot {

/// Verbosity levels, increasing detail.
enum class LogLevel { kSilent = 0, kWarn = 1, kInform = 2, kDebug = 3 };

inline constexpr size_t kNumLogLevels = 4;

/// Set the process-global verbosity (default kWarn). All logging entry
/// points are thread-safe: the level and the per-level counters are
/// atomics, and the stderr writes are serialized so concurrent workers
/// never interleave mid-line.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Canonical lowercase token ("silent", "warn", "inform", "debug");
/// round-trips through LogLevelFromName.
const char* LogLevelName(LogLevel level);

/// Parse a CLI-style level token (case-sensitive, the canonical lowercase
/// names); std::nullopt for unknown names.
std::optional<LogLevel> LogLevelFromName(std::string_view name);

/// How many times Warn/Inform/Debug have been called since process start
/// (or the last ResetLogCounts), counted even when the message is
/// filtered by the active level. Lets tests and tools assert on warning
/// traffic without scraping stderr.
uint64_t LogCount(LogLevel level);
void ResetLogCounts();

/// printf-style status message at kInform level.
void Inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style warning at kWarn level.
void Warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style debug message at kDebug level.
void Debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// User-caused error: format the message and throw std::runtime_error.
[[noreturn]] void Fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Internal bug: print to stderr and abort().
[[noreturn]] void Panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Format helper shared by the above (vsnprintf into a std::string).
std::string VFormat(const char* fmt, va_list args);

/// Microseconds on the process-wide monotonic clock. The epoch is the
/// first call from any subsystem (logger or journal), so all correlated
/// output shares one zero point. Thread-safe.
uint64_t MonotonicMicros();

/// Small sequential id of the calling thread (1 = first thread that ever
/// logged, usually main). Stable for the thread's lifetime; ids are never
/// reused within a process.
uint32_t LogThreadId();

}  // namespace stemroot
