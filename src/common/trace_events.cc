#include "common/trace_events.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/json.h"
#include "common/str.h"

namespace stemroot::trace_events {

namespace {

enum class Phase : uint8_t { kBegin, kEnd, kInstant, kCounter };

struct Event {
  double ts_us = 0.0;
  Phase phase = Phase::kInstant;
  std::string name;
  double value = 0.0;  ///< counter events only
};

/// One thread's bounded staging ring. The mutex is uncontended on the hot
/// path (only Export/Reset from another thread ever take it).
struct ThreadRing {
  std::mutex mu;
  uint32_t tid = 0;            ///< registration-order id, stable per thread
  std::vector<Event> ring;     ///< capacity fixed at creation
  size_t next = 0;             ///< next write slot
  uint64_t written = 0;        ///< total events ever written

  uint64_t Dropped() const {
    return written > ring.size() ? written - ring.size() : 0;
  }
};

/// The live ring list. Rings are never removed on thread exit (their
/// events must survive into the export); Reset() clears contents but
/// keeps registrations. Leaked on purpose, like the telemetry registry:
/// worker threads may outlive static destruction order.
struct Registry {
  std::atomic<bool> enabled{false};
  std::atomic<size_t> capacity{65536};
  std::mutex mu;  ///< guards `rings`
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& Reg() {
  static Registry* registry = new Registry;
  return *registry;
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring;
  if (!ring) {
    ring = std::make_shared<ThreadRing>();
    Registry& reg = Reg();
    ring->ring.resize(reg.capacity.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(reg.mu);
    ring->tid = static_cast<uint32_t>(reg.rings.size());
    reg.rings.push_back(ring);
  }
  return *ring;
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Reg().epoch)
      .count();
}

void Push(Phase phase, std::string_view name, double value) {
  ThreadRing& ring = LocalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  Event& slot = ring.ring[ring.next];
  slot.ts_us = NowUs();
  slot.phase = phase;
  slot.name.assign(name.data(), name.size());
  slot.value = value;
  ring.next = (ring.next + 1) % ring.ring.size();
  ++ring.written;
}

const char* PhaseTag(Phase phase) {
  switch (phase) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kInstant: return "i";
    case Phase::kCounter: return "C";
  }
  return "?";
}

}  // namespace

void SetEnabled(bool enabled) {
  Reg().enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return Reg().enabled.load(std::memory_order_relaxed); }

void SetRingCapacity(size_t events) {
  if (events == 0)
    throw std::invalid_argument("SetRingCapacity: capacity must be >= 1");
  Reg().capacity.store(events, std::memory_order_relaxed);
}

size_t RingCapacity() {
  return Reg().capacity.load(std::memory_order_relaxed);
}

void Begin(std::string_view name) {
  if (!Enabled()) return;
  Push(Phase::kBegin, name, 0.0);
}

void End(std::string_view name) {
  if (!Enabled()) return;
  Push(Phase::kEnd, name, 0.0);
}

void EndOpen(std::string_view name) { Push(Phase::kEnd, name, 0.0); }

void Instant(std::string_view name) {
  if (!Enabled()) return;
  Push(Phase::kInstant, name, 0.0);
}

void CounterValue(std::string_view name, double value) {
  if (!Enabled()) return;
  Push(Phase::kCounter, name, value);
}

Scope::Scope(std::string_view name) {
  if (!Enabled()) return;
  active_ = true;
  name_.assign(name.data(), name.size());
  Push(Phase::kBegin, name_, 0.0);
}

Scope::~Scope() {
  if (active_) EndOpen(name_);
}

Stats GetStats() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  Stats stats;
  for (const std::shared_ptr<ThreadRing>& ring : reg.rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->written == 0) continue;
    ++stats.threads;
    stats.recorded += ring->written;
    stats.dropped += ring->Dropped();
  }
  return stats;
}

std::string ExportJson() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> reg_lock(reg.mu);

  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t repaired = 0;
  std::string events_json;
  bool first = true;

  for (const std::shared_ptr<ThreadRing>& ring_ptr : reg.rings) {
    ThreadRing& ring = *ring_ptr;
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.written == 0) continue;
    recorded += ring.written;
    dropped += ring.Dropped();

    // Chronological view of the ring: oldest retained event first.
    const size_t retained =
        std::min<uint64_t>(ring.written, ring.ring.size());
    std::vector<const Event*> ordered;
    ordered.reserve(retained);
    const size_t start =
        ring.written > ring.ring.size() ? ring.next : 0;
    for (size_t k = 0; k < retained; ++k)
      ordered.push_back(&ring.ring[(start + k) % ring.ring.size()]);

    // Repair pass: a drop removes the oldest prefix of a well-formed
    // per-thread sequence, so an E with an empty open stack lost its B
    // (skip it), and any B still open at the end has no E (skip it too).
    std::vector<char> emit(retained, 1);
    std::vector<size_t> open;
    for (size_t k = 0; k < retained; ++k) {
      if (ordered[k]->phase == Phase::kBegin) {
        open.push_back(k);
      } else if (ordered[k]->phase == Phase::kEnd) {
        if (open.empty()) {
          emit[k] = 0;
          ++repaired;
        } else {
          open.pop_back();
        }
      }
    }
    for (size_t k : open) {
      emit[k] = 0;
      ++repaired;
    }

    for (size_t k = 0; k < retained; ++k) {
      if (!emit[k]) continue;
      const Event& e = *ordered[k];
      if (!first) events_json += ",\n";
      first = false;
      events_json += "{\"name\":";
      json::AppendString(events_json, e.name);
      events_json += Format(",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,"
                            "\"tid\":%u",
                            PhaseTag(e.phase), e.ts_us, ring.tid);
      if (e.phase == Phase::kInstant) events_json += ",\"s\":\"t\"";
      if (e.phase == Phase::kCounter) {
        events_json += ",\"args\":{\"value\":";
        events_json += json::Number(e.value);
        events_json += '}';
      }
      events_json += '}';
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                    "\"schema\":\"stemroot-trace-v1\"";
  out += Format(",\"recorded\":%llu,\"dropped\":%llu,\"repaired\":%llu}",
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(repaired));
  out += ",\"traceEvents\":[\n";
  out += events_json;
  out += "\n]}";
  return out;
}

void WriteTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("WriteTrace: cannot open " + path);
  out << ExportJson();
  out.flush();
  if (!out) throw std::runtime_error("WriteTrace: write failed: " + path);
}

void Reset() {
  Registry& reg = Reg();
  const size_t capacity = reg.capacity.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const std::shared_ptr<ThreadRing>& ring : reg.rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->next = 0;
    ring->written = 0;
    // A capacity change between traces lands here: existing rings adopt
    // the new size once they are empty again.
    if (ring->ring.size() != capacity) {
      ring->ring.resize(capacity);
      ring->ring.shrink_to_fit();
    }
  }
}

namespace {

bool CheckFail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = "trace: " + why;
  return false;
}

}  // namespace

bool ValidateTraceJson(std::string_view json_text, std::string* error,
                       std::vector<std::string>* names, TraceInfo* info) {
  json::Value root;
  if (!json::Parse(json_text, root, error)) return false;

  if (!root.IsObject())
    return CheckFail(error, "top level is not an object");
  const json::Value* other = root.Find("otherData");
  if (other == nullptr || !other->IsObject())
    return CheckFail(error, "\"otherData\" missing or not an object");
  const json::Value* schema = other->Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->string != "stemroot-trace-v1")
    return CheckFail(error, "missing or wrong \"schema\" tag");
  for (const char* field : {"recorded", "dropped", "repaired"}) {
    const json::Value* v = other->Find(field);
    if (v == nullptr || !v->IsNumber())
      return CheckFail(error, std::string("otherData lacks numeric \"") +
                                  field + "\"");
  }

  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->IsArray())
    return CheckFail(error, "\"traceEvents\" missing or not an array");

  // Per-(pid,tid) open-span stacks and last-seen timestamps.
  std::vector<std::pair<std::pair<double, double>,
                        std::vector<std::string>>> threads;  // key -> stack
  std::vector<std::pair<std::pair<double, double>, double>> last_ts;
  auto stack_of = [&](double pid, double tid) -> std::vector<std::string>& {
    for (auto& [key, stack] : threads)
      if (key.first == pid && key.second == tid) return stack;
    threads.push_back({{pid, tid}, {}});
    return threads.back().second;
  };

  size_t count = 0;
  for (const json::Value& event : *events->array) {
    ++count;
    if (!event.IsObject())
      return CheckFail(error, "event is not an object");
    const json::Value* name = event.Find("name");
    if (name == nullptr || !name->IsString())
      return CheckFail(error, "event lacks a string \"name\"");
    const json::Value* ph = event.Find("ph");
    if (ph == nullptr || !ph->IsString() ||
        (ph->string != "B" && ph->string != "E" && ph->string != "i" &&
         ph->string != "C"))
      return CheckFail(error, "event \"" + name->string +
                                  "\" has a bad \"ph\" phase");
    const json::Value* ts = event.Find("ts");
    const json::Value* pid = event.Find("pid");
    const json::Value* tid = event.Find("tid");
    if (ts == nullptr || !ts->IsNumber() || pid == nullptr ||
        !pid->IsNumber() || tid == nullptr || !tid->IsNumber())
      return CheckFail(error, "event \"" + name->string +
                                  "\" lacks numeric ts/pid/tid");

    // Monotonic per-thread timestamps.
    bool found = false;
    for (auto& [key, prev] : last_ts) {
      if (key.first != pid->number || key.second != tid->number) continue;
      found = true;
      if (ts->number < prev)
        return CheckFail(error,
                         Format("timestamp regression on tid %g at event "
                                "\"%s\" (%.3f < %.3f)",
                                tid->number, name->string.c_str(),
                                ts->number, prev));
      prev = ts->number;
    }
    if (!found) last_ts.push_back({{pid->number, tid->number}, ts->number});

    // Balanced, name-matched B/E nesting per thread.
    std::vector<std::string>& stack = stack_of(pid->number, tid->number);
    if (ph->string == "B") {
      stack.push_back(name->string);
    } else if (ph->string == "E") {
      if (stack.empty())
        return CheckFail(error, "end event \"" + name->string +
                                    "\" without a matching begin");
      if (stack.back() != name->string)
        return CheckFail(error, "end event \"" + name->string +
                                    "\" does not match open begin \"" +
                                    stack.back() + "\"");
      stack.pop_back();
    } else if (ph->string == "C") {
      const json::Value* args = event.Find("args");
      const json::Value* value =
          args != nullptr ? args->Find("value") : nullptr;
      if (value == nullptr || !value->IsNumber())
        return CheckFail(error, "counter event \"" + name->string +
                                    "\" lacks numeric args.value");
    }
    if (names != nullptr) names->push_back(name->string);
  }

  for (const auto& [key, stack] : threads)
    if (!stack.empty())
      return CheckFail(error, "begin event \"" + stack.back() +
                                  "\" is never closed");

  if (info != nullptr) {
    info->events = count;
    info->threads = threads.size();
  }
  return true;
}

}  // namespace stemroot::trace_events
