/// \file
/// Minimal command-line flag parsing for the CLI tools: positional
/// command words followed by `--key value` pairs, with typed accessors
/// and strict unknown-flag detection.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stemroot {

/// Parsed command line.
class Flags {
 public:
  /// Parse argv (excluding argv[0]). Words before the first `--flag` are
  /// positional; flags require a value (`--k v`). Throws
  /// std::invalid_argument on a flag without a value.
  static Flags Parse(int argc, const char* const* argv);

  const std::vector<std::string>& Positional() const { return positional_; }

  bool Has(const std::string& key) const;

  /// Typed getters with defaults. Throw std::invalid_argument when the
  /// value does not parse.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Required string; throws std::invalid_argument when missing.
  std::string Require(const std::string& key) const;

  /// After reading everything, verify no unread flags remain; throws
  /// std::invalid_argument listing them (catches typos).
  void CheckAllRead() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
};

}  // namespace stemroot
