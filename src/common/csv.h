/// \file
/// Minimal CSV reading/writing for experiment artifacts.
///
/// Every bench binary dumps its raw series as CSV next to its printed table
/// (mirroring the paper's artifact layout, which ships per-figure CSVs), so
/// the plots can be regenerated offline.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stemroot {

/// Append-only CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Open (truncate) path for writing. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write one row of string cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: header row.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  /// Flush underlying stream.
  void Flush();

  /// Quote a cell per RFC 4180 when it contains a comma/quote/newline.
  static std::string Quote(const std::string& cell);

 private:
  struct Impl;
  Impl* impl_;
};

/// Parsed CSV: rows of string cells. Handles quoted cells with embedded
/// commas/newlines.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;

  /// Parse a whole file. Throws std::runtime_error if unreadable.
  static CsvTable ReadFile(const std::string& path);

  /// Parse from a string.
  static CsvTable Parse(const std::string& text);
};

}  // namespace stemroot
