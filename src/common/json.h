/// \file
/// Minimal dependency-free JSON support shared by the observability
/// layers: a full-grammar recursive-descent parser (objects, arrays,
/// strings, numbers, bools, null) used by the telemetry/trace validators,
/// and the two writing helpers (escaped strings, shortest-round-trip
/// numbers) every exporter in the tree uses so their byte-level output
/// conventions cannot drift apart.
///
/// The parser exists for *validation* (tools/telemetry_check,
/// tools/trace_check, the audit tests): it keeps \u escapes verbatim
/// instead of decoding them, rejects trailing garbage, and reports a
/// character offset with every error.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace stemroot::json {

struct Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// One parsed JSON value. Objects keep their key order (validators check
/// schemas, not maps), and bools are stored in `number` (1.0 / 0.0).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Object> object;
  std::shared_ptr<Array> array;

  /// First member with this key (nullptr when absent or not an object).
  const Value* Find(std::string_view key) const;

  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
};

/// Parse a complete document. On failure returns false and, when `error`
/// is non-null, stores a one-line reason prefixed with the byte offset.
bool Parse(std::string_view text, Value& out, std::string* error);

/// Append `s` as a quoted JSON string with the mandatory escapes.
void AppendString(std::string& out, std::string_view s);

/// Shortest round-trip decimal form of a double (std::to_chars):
/// byte-stable for identical bits and locale-independent, so
/// deterministic exports stay byte-identical.
std::string Number(double v);

}  // namespace stemroot::json
