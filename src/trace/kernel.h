/// \file
/// Kernel-level workload representation.
///
/// A GPU workload is modelled exactly the way kernel-level samplers see it
/// (paper Sec. 3.1): an ordered sequence of kernel *invocations*, each an
/// instance of a named kernel *type* with a launch configuration and a
/// hardware-independent behaviour descriptor. The descriptor captures the
/// "input characteristics and memory locality" the paper identifies as the
/// hidden sources of runtime heterogeneity (Sec. 2.1): the same kernel type
/// invoked in different *contexts* carries different descriptors even though
/// its code (instruction mix, CFG) is unchanged.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stemroot {

/// CUDA-style launch geometry.
struct LaunchConfig {
  uint32_t grid_x = 1, grid_y = 1, grid_z = 1;
  uint32_t block_x = 32, block_y = 1, block_z = 1;

  uint64_t NumCtas() const {
    return static_cast<uint64_t>(grid_x) * grid_y * grid_z;
  }
  uint32_t ThreadsPerCta() const { return block_x * block_y * block_z; }
  uint64_t TotalThreads() const { return NumCtas() * ThreadsPerCta(); }
  /// Warps per CTA, rounded up to whole warps of 32 threads.
  uint32_t WarpsPerCta() const { return (ThreadsPerCta() + 31) / 32; }
  uint64_t TotalWarps() const { return NumCtas() * WarpsPerCta(); }

  bool operator==(const LaunchConfig&) const = default;
};

/// Hardware-independent description of what one kernel invocation does.
///
/// Both the analytic hardware model (src/hw) and the cycle-level simulator
/// (src/sim) consume this structure; neither ever sees the generator's
/// hidden context id, so timing differences between contexts arise only
/// through these observable fields (plus modelled jitter).
struct KernelBehavior {
  /// Total dynamic instructions across all threads.
  uint64_t instructions = 0;
  /// Working-set size touched in global memory.
  uint64_t footprint_bytes = 0;
  /// Fraction of instructions that are global loads/stores.
  float mem_fraction = 0.0f;
  /// Fraction of instructions that are shared-memory accesses.
  float shared_fraction = 0.0f;
  /// Temporal reuse in [0, 1]; drives cache hit rates (1 = tight blocking
  /// with short reuse distances). This is the field that differs across
  /// contexts with identical code -- the paper's "input sparsity, tensor
  /// layout, memory alignment, and cache locality".
  float locality = 0.5f;
  /// Spatial contiguity of simultaneous accesses within a warp, in [0, 1];
  /// 1 = perfectly coalesced (1 transaction per warp access), 0 = fully
  /// scattered (32 transactions). Orthogonal to temporal reuse: streaming
  /// kernels are coalesced but reuse nothing; gathers are neither.
  float coalescing = 0.9f;
  /// Branch divergence in [0, 1]; 0 = fully converged warps.
  float branch_divergence = 0.0f;
  /// Of compute instructions, fraction executed at FP16 precision.
  float fp16_fraction = 0.0f;
  /// Of compute instructions, fraction executed at FP32 precision.
  float fp32_fraction = 0.7f;
  /// Instruction-level parallelism: mean independent-chain width (>= 1).
  float ilp = 2.0f;
  /// Multiplier on the kernel type's loop trip counts; input-size dependent
  /// and therefore visible in BBVs (this is what lets Photon do better than
  /// instruction-count-only signatures).
  float input_scale = 1.0f;
  /// Store-to-load ratio among global memory ops, in [0, 1] = stores/(all).
  float store_fraction = 0.3f;

  /// Number of compute (non-memory) instructions.
  uint64_t ComputeInstructions() const;
  /// Number of global memory instructions.
  uint64_t GlobalMemInstructions() const;
  /// Number of shared memory instructions.
  uint64_t SharedMemInstructions() const;

  /// Validate ranges; throws std::invalid_argument on violation.
  void Validate() const;
};

/// The 13 microarchitectural metrics validated in the paper's Fig. 14,
/// spanning the four categories of Sec. 5.5: (1) shared/global memory
/// access, (2) L1/L2 cache, (3) FP16/FP32 operation counts, (4) warp
/// execution / branch efficiency.
struct KernelMetrics {
  double shared_load_transactions = 0;
  double shared_store_transactions = 0;
  double global_load_transactions = 0;
  double global_store_transactions = 0;
  double l1_hit_rate = 0;        ///< [0, 1]
  double l2_read_transactions = 0;
  double l2_read_hit_rate = 0;   ///< [0, 1]; writes always hit (Sec. 5.5)
  double l2_write_transactions = 0;
  double fp16_ops = 0;
  double fp32_ops = 0;
  double warp_execution_efficiency = 0;  ///< [0, 1]
  double branch_efficiency = 0;          ///< [0, 1]
  double achieved_occupancy = 0;         ///< [0, 1]

  /// Number of metric fields (for iteration in validators/benches).
  static constexpr size_t kCount = 13;
  /// Human-readable metric names, index-aligned with Get().
  static const char* Name(size_t i);
  /// Access by index in declaration order.
  double Get(size_t i) const;
  /// Mutate by index.
  void Set(size_t i, double v);
  /// True for rate-like metrics in [0,1] (averaged, not summed, when
  /// extrapolating a sampled workload).
  static bool IsRate(size_t i);
};

/// Static (code-level) identity of a kernel: what NVBit/NCU-style tools can
/// see without running it. Shared by all invocations of the same name.
struct KernelType {
  std::string name;
  /// Number of static basic blocks in the (synthetic) CFG; BBVs have this
  /// dimensionality.
  uint32_t num_basic_blocks = 8;
  /// Per-block relative weight of the static code (sums to ~1); contexts
  /// modulate these through KernelBehavior::input_scale.
  std::vector<float> block_weights;

  /// Build a type with a deterministic pseudo-random CFG derived from the
  /// name, with the given number of blocks.
  static KernelType Synthesize(const std::string& name,
                               uint32_t num_basic_blocks);
};

/// One kernel launch in the workload timeline.
struct KernelInvocation {
  uint32_t kernel_id = 0;    ///< index into the trace's kernel-type table
  uint32_t context_id = 0;   ///< hidden ground-truth context (validation only)
  uint64_t seq = 0;          ///< position in the workload timeline
  LaunchConfig launch;
  KernelBehavior behavior;
  /// Execution time measured by the profiling pass on the "real" GPU, in
  /// microseconds. Filled by hw::HardwareModel::ProfileTrace.
  double duration_us = 0.0;
};

}  // namespace stemroot
