#include "trace/kernel.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace stemroot {

uint64_t KernelBehavior::ComputeInstructions() const {
  const double mem = static_cast<double>(mem_fraction) +
                     static_cast<double>(shared_fraction);
  const double compute = std::max(0.0, 1.0 - mem);
  return static_cast<uint64_t>(std::llround(
      static_cast<double>(instructions) * compute));
}

uint64_t KernelBehavior::GlobalMemInstructions() const {
  return static_cast<uint64_t>(std::llround(
      static_cast<double>(instructions) * mem_fraction));
}

uint64_t KernelBehavior::SharedMemInstructions() const {
  return static_cast<uint64_t>(std::llround(
      static_cast<double>(instructions) * shared_fraction));
}

void KernelBehavior::Validate() const {
  auto in01 = [](float v) { return v >= 0.0f && v <= 1.0f; };
  if (!in01(mem_fraction) || !in01(shared_fraction) || !in01(locality) ||
      !in01(coalescing) || !in01(branch_divergence) || !in01(fp16_fraction) ||
      !in01(fp32_fraction) || !in01(store_fraction))
    throw std::invalid_argument("KernelBehavior: fraction outside [0, 1]");
  if (mem_fraction + shared_fraction > 1.0f)
    throw std::invalid_argument(
        "KernelBehavior: mem_fraction + shared_fraction > 1");
  if (fp16_fraction + fp32_fraction > 1.0f)
    throw std::invalid_argument(
        "KernelBehavior: fp16_fraction + fp32_fraction > 1");
  if (ilp < 1.0f) throw std::invalid_argument("KernelBehavior: ilp < 1");
  if (input_scale <= 0.0f)
    throw std::invalid_argument("KernelBehavior: input_scale <= 0");
}

const char* KernelMetrics::Name(size_t i) {
  static const char* kNames[kCount] = {
      "shared_load_transactions", "shared_store_transactions",
      "global_load_transactions", "global_store_transactions",
      "l1_hit_rate",              "l2_read_transactions",
      "l2_read_hit_rate",         "l2_write_transactions",
      "fp16_ops",                 "fp32_ops",
      "warp_execution_efficiency", "branch_efficiency",
      "achieved_occupancy"};
  if (i >= kCount) throw std::out_of_range("KernelMetrics::Name");
  return kNames[i];
}

double KernelMetrics::Get(size_t i) const {
  switch (i) {
    case 0: return shared_load_transactions;
    case 1: return shared_store_transactions;
    case 2: return global_load_transactions;
    case 3: return global_store_transactions;
    case 4: return l1_hit_rate;
    case 5: return l2_read_transactions;
    case 6: return l2_read_hit_rate;
    case 7: return l2_write_transactions;
    case 8: return fp16_ops;
    case 9: return fp32_ops;
    case 10: return warp_execution_efficiency;
    case 11: return branch_efficiency;
    case 12: return achieved_occupancy;
    default: throw std::out_of_range("KernelMetrics::Get");
  }
}

void KernelMetrics::Set(size_t i, double v) {
  switch (i) {
    case 0: shared_load_transactions = v; break;
    case 1: shared_store_transactions = v; break;
    case 2: global_load_transactions = v; break;
    case 3: global_store_transactions = v; break;
    case 4: l1_hit_rate = v; break;
    case 5: l2_read_transactions = v; break;
    case 6: l2_read_hit_rate = v; break;
    case 7: l2_write_transactions = v; break;
    case 8: fp16_ops = v; break;
    case 9: fp32_ops = v; break;
    case 10: warp_execution_efficiency = v; break;
    case 11: branch_efficiency = v; break;
    case 12: achieved_occupancy = v; break;
    default: throw std::out_of_range("KernelMetrics::Set");
  }
}

bool KernelMetrics::IsRate(size_t i) {
  // l1_hit_rate, l2_read_hit_rate, warp_execution_efficiency,
  // branch_efficiency, achieved_occupancy are rates; the rest are counts.
  return i == 4 || i == 6 || i == 10 || i == 11 || i == 12;
}

KernelType KernelType::Synthesize(const std::string& name,
                                  uint32_t num_basic_blocks) {
  if (num_basic_blocks == 0)
    throw std::invalid_argument("KernelType: num_basic_blocks == 0");
  KernelType type;
  type.name = name;
  type.num_basic_blocks = num_basic_blocks;
  type.block_weights.resize(num_basic_blocks);

  // Deterministic per-name CFG: weights follow a skewed distribution so a
  // few "hot loop" blocks dominate, like real GPU kernels.
  Rng rng(DeriveSeed(HashString(name), 0xB10C5));
  double total = 0.0;
  for (auto& w : type.block_weights) {
    w = static_cast<float>(std::pow(rng.NextDouble(0.02, 1.0), 3.0));
    total += w;
  }
  for (auto& w : type.block_weights)
    w = static_cast<float>(w / total);
  return type;
}

}  // namespace stemroot
