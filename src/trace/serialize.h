/// \file
/// Trace (de)serialization.
///
/// Two formats:
///  - a compact binary format ("SRTR") for round-tripping full traces, so
///    expensive generated workloads can be cached on disk;
///  - a CSV export of the profiled timeline (name, seq, duration, launch
///    geometry), mirroring what an Nsight Systems export looks like and
///    feeding external plotting.

#pragma once

#include <string>

#include "trace/trace.h"

namespace stemroot {

/// Write a full trace to a binary file. Throws std::runtime_error on I/O
/// failure.
void SaveTraceBinary(const KernelTrace& trace, const std::string& path);

/// Read a trace previously written by SaveTraceBinary. Throws
/// std::runtime_error on I/O failure or format violation.
KernelTrace LoadTraceBinary(const std::string& path);

/// Export the profiled timeline as CSV (header: kernel,seq,duration_us,
/// grid,block,instructions). Throws std::runtime_error on I/O failure.
void ExportTimelineCsv(const KernelTrace& trace, const std::string& path);

}  // namespace stemroot
