/// \file
/// Trace (de)serialization.
///
/// Three forms over one binary format ("SRTR"):
///  - file round-trips (SaveTraceBinary / LoadTraceBinary), so expensive
///    generated workloads can be kept on disk;
///  - in-memory round-trips (SerializeTrace / DeserializeTrace), the
///    payload representation of the content-addressed profile cache
///    (src/eval/trace_cache.h);
///  - a CSV export of the profiled timeline (name, seq, duration, launch
///    geometry), mirroring what an Nsight Systems export looks like and
///    feeding external plotting.
///
/// The binary format is versioned; readers reject other versions, and the
/// profile cache keys on TraceFormatVersion() so a format bump invalidates
/// cached artifacts instead of misreading them.
///
/// Byte-order contract: "SRTR" is explicitly LITTLE-ENDIAN. Writers emit
/// raw little-endian object bytes and readers consume them as such; a
/// big-endian host fails the build (static_assert in serialize.cc) rather
/// than misreading cached artifacts. Every length/count prefix is bounds-
/// checked against the bytes remaining in the stream before any
/// allocation is sized from it, so truncated or corrupt input throws
/// std::runtime_error immediately instead of attempting a huge resize.

#pragma once

#include <string>
#include <string_view>

#include "trace/trace.h"

namespace stemroot {

/// Version tag of the "SRTR" binary trace format.
uint32_t TraceFormatVersion();

/// Serialize a full trace to an in-memory byte string.
std::string SerializeTrace(const KernelTrace& trace);

/// Parse bytes produced by SerializeTrace. Throws std::runtime_error on
/// truncation or format violation.
KernelTrace DeserializeTrace(std::string_view bytes);

/// Write a full trace to a binary file. Throws std::runtime_error on I/O
/// failure.
void SaveTraceBinary(const KernelTrace& trace, const std::string& path);

/// Read a trace previously written by SaveTraceBinary. Throws
/// std::runtime_error on I/O failure or format violation.
KernelTrace LoadTraceBinary(const std::string& path);

/// Export the profiled timeline as CSV (header: kernel,seq,duration_us,
/// grid,block,instructions). Throws std::runtime_error on I/O failure.
void ExportTimelineCsv(const KernelTrace& trace, const std::string& path);

}  // namespace stemroot
