#include "trace/trace.h"

#include <stdexcept>

namespace stemroot {

uint32_t KernelTrace::AddKernelType(KernelType type) {
  auto it = name_to_id_.find(type.name);
  if (it != name_to_id_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(types_.size());
  name_to_id_.emplace(type.name, id);
  types_.push_back(std::move(type));
  return id;
}

uint32_t KernelTrace::InternKernel(const std::string& name,
                                   uint32_t num_basic_blocks) {
  auto it = name_to_id_.find(name);
  if (it != name_to_id_.end()) return it->second;
  return AddKernelType(KernelType::Synthesize(name, num_basic_blocks));
}

void KernelTrace::Add(KernelInvocation inv) {
  if (inv.kernel_id >= types_.size())
    throw std::invalid_argument("KernelTrace::Add: unregistered kernel_id");
  inv.seq = invocations_.size();
  invocations_.push_back(inv);
}

KernelTrace KernelTrace::HeaderClone() const {
  KernelTrace header(workload_name_);
  for (const KernelType& type : types_) header.AddKernelType(type);
  return header;
}

int64_t KernelTrace::FindKernel(const std::string& name) const {
  auto it = name_to_id_.find(name);
  return it == name_to_id_.end() ? -1 : static_cast<int64_t>(it->second);
}

double KernelTrace::TotalDurationUs() const {
  double total = 0.0;
  for (const auto& inv : invocations_) total += inv.duration_us;
  return total;
}

uint64_t KernelTrace::ApproxBytes() const {
  uint64_t bytes = sizeof(*this);
  bytes += invocations_.size() * sizeof(KernelInvocation);
  for (const KernelType& type : types_) {
    bytes += sizeof(KernelType) + type.name.size();
    bytes += type.block_weights.size() * sizeof(float);
    // name_to_id_ entry: key string + mapped id + node overhead (two
    // pointers is the conventional unordered_map node estimate).
    bytes += type.name.size() + sizeof(uint32_t) + 2 * sizeof(void*);
  }
  return bytes;
}

std::vector<std::vector<uint32_t>> KernelTrace::GroupByKernel() const {
  std::vector<std::vector<uint32_t>> groups(types_.size());
  for (size_t i = 0; i < invocations_.size(); ++i)
    groups[invocations_[i].kernel_id].push_back(static_cast<uint32_t>(i));
  return groups;
}

}  // namespace stemroot
