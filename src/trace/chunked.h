/// \file
/// Chunked, columnar, out-of-core trace storage -- the on-disk format and
/// the chunk-iterator abstraction that let the pipeline stream a
/// billion-invocation workload past the engine in bounded memory
/// (ROADMAP item 2, DESIGN.md §16).
///
/// # The "SRTC" file format (version 1, explicitly little-endian)
///
///   [header]
///     magic "SRTC" | u32 version | u64 chunk_capacity |
///     workload name (u32 len + bytes) | u32 num_types |
///     per type: name (u32 len + bytes) | u32 num_basic_blocks |
///               u32 num_weights | f32 weights[num_weights]
///   [chunk 0] .. [chunk N-1]     -- back-to-back chunk payloads
///   [footer]
///     per chunk: u64 offset | u64 count | u64 digest
///   [trailer]  (fixed 36 bytes at end of file)
///     u64 footer_offset | u64 num_chunks | u64 total_invocations |
///     u32 version | magic "SRTF"
///
/// Each chunk payload is self-delimiting and columnar:
///
///     u64 count |
///     kernel_id u32[count] | context_id u32[count] |
///     grid_x,grid_y,grid_z,block_x,block_y,block_z u32[count] each |
///     instructions u64[count] | footprint_bytes u64[count] |
///     mem_fraction, shared_fraction, locality, coalescing,
///     branch_divergence, fp16_fraction, fp32_fraction, ilp,
///     input_scale, store_fraction f32[count] each |
///     duration_us f64[count]
///
/// and its footer `digest` is FNV-1a64 over exactly those payload bytes,
/// so every chunk is independently loadable and independently verifiable:
/// a reader seeks the footer, picks any chunk, reads `offset..offset+len`
/// and checks the digest -- no scan of preceding chunks, which also makes
/// the layout mmap-friendly (all addressing is absolute offsets into an
/// immutable file). The invocation `seq` field is implicit: chunk i spans
/// global indices [i * chunk_capacity, i * chunk_capacity + count).
///
/// Failure contract mirrors the artifact cache (common/cache.h): any
/// defect found while *opening* a file (bad magic/version, inconsistent
/// footer, offsets outside the file) or while *reading* a chunk (short
/// read, digest mismatch) throws std::runtime_error. Callers that treat a
/// chunked file as a cache entry (eval::Pipeline's spill reuse) catch and
/// rebuild -- corrupt bytes on disk can only cost a recompute, never
/// serve wrong data (the PR 5 corrupt-entry-is-a-miss contract).
///
/// # ChunkSource
///
/// Streaming consumers (core::StreamingTraceClusterer, eval::StreamTrace)
/// are written against the ChunkSource interface, not a concrete file:
///
///   - InMemoryChunkSource slices an existing KernelTrace (no copy of the
///     timeline until a chunk is materialized);
///   - FileChunkSource reads an "SRTC" file chunk by chunk;
///   - ReplicatedChunkSource tiles a small profiled base trace out to an
///     arbitrary logical population (the 10^8..10^9-invocation synthetic
///     suites of the perf_scalability bench) without ever materializing
///     it.
///
/// All three yield byte-identical chunk contents for the same underlying
/// timeline, which is what pins the chunked-vs-in-memory equivalence
/// tests.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.h"

namespace stemroot {

/// Version tag of the "SRTC" chunked trace format.
uint32_t ChunkedTraceFormatVersion();

/// Default invocations per chunk (2^20 invocations ~= 96 MiB resident).
inline constexpr uint64_t kDefaultChunkInvocations = 1u << 20;

/// Bytes one invocation occupies in a chunk payload (the columnar record).
uint64_t ChunkWireBytesPerInvocation();

/// Footer metadata of one chunk.
struct ChunkInfo {
  uint64_t offset = 0;  ///< absolute file offset of the chunk payload
  uint64_t count = 0;   ///< invocations in this chunk
  uint64_t digest = 0;  ///< FNV-1a64 over the payload bytes
};

/// Encode one chunk of invocations as a self-delimiting columnar payload
/// (the byte string a chunk occupies on disk and in the chunk cache).
std::string EncodeChunk(std::span<const KernelInvocation> invocations);

/// Decode a payload produced by EncodeChunk. `first_seq` rebuilds the
/// implicit global seq numbering. Every length prefix is bounds-checked
/// against the payload size before any allocation; throws
/// std::runtime_error on truncation or trailing bytes.
std::vector<KernelInvocation> DecodeChunk(std::string_view payload,
                                          uint64_t first_seq);

/// Streaming writer: header up front, invocations appended in timeline
/// order, chunks flushed as they fill, footer on Finish(). `header`
/// supplies the workload name and kernel-type table; its invocations are
/// ignored. A file is only valid after Finish() -- an abandoned writer
/// leaves a footerless file every reader rejects.
class ChunkedTraceWriter {
 public:
  ChunkedTraceWriter(const std::string& path, const KernelTrace& header,
                     uint64_t chunk_invocations = kDefaultChunkInvocations);
  ~ChunkedTraceWriter();

  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  /// Append one invocation (kernel_id must be valid in the header table).
  void Append(const KernelInvocation& inv);
  /// Append a batch; flushes whole chunks as the buffer fills.
  void Append(std::span<const KernelInvocation> invocations);

  uint64_t NumAppended() const { return appended_; }
  uint64_t ChunkCapacity() const { return chunk_invocations_; }

  /// Flush the partial tail chunk and write the footer + trailer.
  /// Idempotent; called by the destructor only if never called (best
  /// effort -- call explicitly to observe failures). Throws
  /// std::runtime_error on I/O failure.
  void Finish();

 private:
  void FlushChunk();

  std::string path_;
  uint64_t chunk_invocations_ = 0;
  uint64_t appended_ = 0;
  bool finished_ = false;
  std::vector<KernelInvocation> buffer_;
  std::vector<ChunkInfo> chunks_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Random-access reader over an "SRTC" file. Opening validates the
/// header, trailer, and footer index (offsets inside the file, counts
/// consistent); chunk payload digests are verified on each ReadChunk.
class ChunkedTraceReader {
 public:
  /// Throws std::runtime_error on any open/format defect.
  explicit ChunkedTraceReader(const std::string& path);
  ~ChunkedTraceReader();

  ChunkedTraceReader(const ChunkedTraceReader&) = delete;
  ChunkedTraceReader& operator=(const ChunkedTraceReader&) = delete;

  const std::string& Path() const { return path_; }
  /// Workload name + kernel-type table (zero invocations).
  const KernelTrace& Header() const { return header_; }
  uint64_t NumInvocations() const { return total_invocations_; }
  size_t NumChunks() const { return chunks_.size(); }
  uint64_t ChunkCapacity() const { return chunk_invocations_; }
  const ChunkInfo& Chunk(size_t i) const { return chunks_.at(i); }

  /// Read chunk i, verify its digest, and materialize the invocations
  /// (seq fields globally consistent). Throws std::runtime_error on a
  /// short read or digest mismatch.
  std::vector<KernelInvocation> ReadChunk(size_t i) const;

  /// Raw verified payload bytes of chunk i (the chunk-cache
  /// representation). Throws like ReadChunk.
  std::string ReadChunkPayload(size_t i) const;

  /// Digest-check chunk i without materializing invocations; false on
  /// any defect (never throws).
  bool VerifyChunk(size_t i) const;

 private:
  std::string path_;
  KernelTrace header_;
  uint64_t chunk_invocations_ = 0;
  uint64_t total_invocations_ = 0;
  std::vector<ChunkInfo> chunks_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Chunk iterators
// ---------------------------------------------------------------------------

/// The chunk-iterator abstraction every streaming consumer is written
/// against. Chunk(i) materializes one chunk; implementations charge the
/// resident bytes to the "trace" resource category as a deterministic
/// per-worker peak (header + 2 chunk budgets -- current chunk plus one
/// in flight), never the whole-timeline total the in-memory path charges.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Workload name + kernel-type table shared by every chunk.
  virtual const KernelTrace& Header() const = 0;
  virtual uint64_t NumInvocations() const = 0;
  virtual size_t NumChunks() const = 0;
  virtual uint64_t ChunkCapacity() const = 0;
  /// Materialize chunk i with globally consistent seq fields. Throws
  /// std::runtime_error on storage defects.
  virtual std::vector<KernelInvocation> Chunk(size_t i) const = 0;

  /// Deterministic logical bytes resident while one worker streams: the
  /// shared header plus two chunk budgets. This is the number charged to
  /// resource::AccountPeak("trace", ...) by streaming consumers.
  uint64_t ResidentBudgetBytes() const;
};

/// Slices an in-memory trace into chunks (the zero-copy degenerate case;
/// chunks are copied out only when materialized).
class InMemoryChunkSource : public ChunkSource {
 public:
  /// `trace` must outlive the source.
  InMemoryChunkSource(const KernelTrace& trace, uint64_t chunk_invocations);

  const KernelTrace& Header() const override { return header_; }
  uint64_t NumInvocations() const override;
  size_t NumChunks() const override;
  uint64_t ChunkCapacity() const override { return chunk_invocations_; }
  std::vector<KernelInvocation> Chunk(size_t i) const override;

 private:
  const KernelTrace& trace_;
  KernelTrace header_;
  uint64_t chunk_invocations_ = 0;
};

/// Streams chunks out of an "SRTC" file.
class FileChunkSource : public ChunkSource {
 public:
  /// Throws std::runtime_error on any open/format defect.
  explicit FileChunkSource(const std::string& path);

  const KernelTrace& Header() const override { return reader_.Header(); }
  uint64_t NumInvocations() const override {
    return reader_.NumInvocations();
  }
  size_t NumChunks() const override { return reader_.NumChunks(); }
  uint64_t ChunkCapacity() const override { return reader_.ChunkCapacity(); }
  std::vector<KernelInvocation> Chunk(size_t i) const override;

  const ChunkedTraceReader& Reader() const { return reader_; }

 private:
  ChunkedTraceReader reader_;
};

/// Tiles a small profiled base trace out to `total_invocations` logical
/// invocations: global invocation j is base.At(j % base.NumInvocations())
/// with seq rewritten to j. Deterministic, never materialized, and the
/// base trace is the only resident state besides the chunk being built --
/// this is how the 10^8..10^9-invocation synthetic suites stream.
class ReplicatedChunkSource : public ChunkSource {
 public:
  /// `base` must be non-empty and outlive the source.
  ReplicatedChunkSource(const KernelTrace& base, uint64_t total_invocations,
                        uint64_t chunk_invocations);

  const KernelTrace& Header() const override { return header_; }
  uint64_t NumInvocations() const override { return total_invocations_; }
  size_t NumChunks() const override;
  uint64_t ChunkCapacity() const override { return chunk_invocations_; }
  std::vector<KernelInvocation> Chunk(size_t i) const override;

 private:
  const KernelTrace& base_;
  KernelTrace header_;
  uint64_t total_invocations_ = 0;
  uint64_t chunk_invocations_ = 0;
};

// ---------------------------------------------------------------------------
// Whole-trace helpers
// ---------------------------------------------------------------------------

/// Write an in-memory trace as a chunked file. Returns chunks written.
size_t SpillTraceChunked(const KernelTrace& trace, const std::string& path,
                         uint64_t chunk_invocations = kDefaultChunkInvocations);

/// Reassemble a full in-memory trace from any chunk source (tests and
/// small traces only -- this is exactly the materialization streaming
/// avoids). Throws on storage defects.
KernelTrace AssembleTrace(const ChunkSource& source);

}  // namespace stemroot
