/// \file
/// KernelTrace: an ordered workload of kernel invocations plus the kernel
/// type (name) table, with the group-by-name view that every kernel-level
/// sampler starts from (paper Fig. 3, step 1).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/kernel.h"

namespace stemroot {

/// A complete workload: kernel type table + invocation timeline.
class KernelTrace {
 public:
  KernelTrace() = default;
  explicit KernelTrace(std::string workload_name)
      : workload_name_(std::move(workload_name)) {}

  const std::string& WorkloadName() const { return workload_name_; }
  void SetWorkloadName(std::string name) { workload_name_ = std::move(name); }

  /// Register a kernel type; returns its id. Registering the same name
  /// twice returns the existing id (the type definition must match).
  uint32_t AddKernelType(KernelType type);

  /// Register-or-get by name with a synthesized CFG of the given size.
  uint32_t InternKernel(const std::string& name,
                        uint32_t num_basic_blocks = 8);

  /// Append an invocation. kernel_id must be registered; seq is assigned
  /// automatically as the current timeline length.
  void Add(KernelInvocation inv);

  size_t NumInvocations() const { return invocations_.size(); }
  size_t NumKernelTypes() const { return types_.size(); }
  bool Empty() const { return invocations_.empty(); }

  const KernelInvocation& At(size_t i) const { return invocations_.at(i); }
  KernelInvocation& At(size_t i) { return invocations_.at(i); }
  std::span<const KernelInvocation> Invocations() const {
    return invocations_;
  }
  std::span<KernelInvocation> MutableInvocations() { return invocations_; }

  const KernelType& TypeOf(const KernelInvocation& inv) const {
    return types_.at(inv.kernel_id);
  }
  const KernelType& Type(uint32_t kernel_id) const {
    return types_.at(kernel_id);
  }
  /// The whole kernel-type table in id order.
  std::span<const KernelType> Types() const { return types_; }
  const std::string& NameOf(const KernelInvocation& inv) const {
    return types_.at(inv.kernel_id).name;
  }

  /// Lookup a kernel id by name; returns -1 when unknown.
  int64_t FindKernel(const std::string& name) const;

  /// Sum of profiled durations over the whole timeline (microseconds).
  /// This is the ground-truth t* of Eq. (1) in profile-based evaluation.
  double TotalDurationUs() const;

  /// Indices of invocations grouped by kernel id, in timeline order.
  /// Index k of the result holds the invocation indices of kernel id k.
  std::vector<std::vector<uint32_t>> GroupByKernel() const;

  /// Reserve capacity for n invocations (generators know their size).
  void Reserve(size_t n) { invocations_.reserve(n); }

  /// A copy carrying only the identity of this trace -- workload name and
  /// the full kernel-type table, zero invocations. This is the shared
  /// "header" a chunked trace file or chunk iterator hands to streaming
  /// consumers (trace/chunked.h): kernel ids stay valid, the timeline
  /// arrives chunk by chunk.
  KernelTrace HeaderClone() const;

  /// Logical size of this trace's payload in bytes: invocation timeline +
  /// kernel type table (names, CFG weights) + the name index. Computed
  /// from element *counts*, never vector capacities, so the number is
  /// deterministic for a given trace regardless of growth history — the
  /// "trace" category of resource::Account (DESIGN.md §15).
  uint64_t ApproxBytes() const;

 private:
  std::string workload_name_;
  std::vector<KernelType> types_;
  std::unordered_map<std::string, uint32_t> name_to_id_;
  std::vector<KernelInvocation> invocations_;
};

}  // namespace stemroot
