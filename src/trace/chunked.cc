#include "trace/chunked.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/cache.h"
#include "common/str.h"

namespace stemroot {

// Same byte-order contract as "SRTR" (trace/serialize.cc): chunk payloads
// and index records are raw little-endian object bytes.
static_assert(std::endian::native == std::endian::little,
              "SRTC chunked trace format assumes a little-endian host; "
              "port trace/chunked.cc with explicit byte swapping before "
              "building for big-endian targets");

namespace {

constexpr char kMagic[4] = {'S', 'R', 'T', 'C'};
constexpr char kTrailerMagic[4] = {'S', 'R', 'T', 'F'};
constexpr uint32_t kVersion = 1;

/// Fixed trailer at the very end of the file: u64 footer_offset,
/// u64 num_chunks, u64 total_invocations, u32 version, magic.
constexpr uint64_t kTrailerBytes = 3 * sizeof(uint64_t) + sizeof(uint32_t) +
                                   sizeof(kTrailerMagic);
constexpr uint64_t kFooterRecordBytes = 3 * sizeof(uint64_t);

/// One invocation's footprint in a columnar chunk payload: 8 u32 columns
/// (ids + launch geometry), 2 u64 columns, 10 f32 behaviour columns, and
/// the f64 duration column.
constexpr uint64_t kColumnarBytesPerInvocation =
    8 * sizeof(uint32_t) + 2 * sizeof(uint64_t) + 10 * sizeof(float) +
    sizeof(double);

template <typename T>
void AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked cursor over a chunk payload. Like the SRTR reader, every
/// count is validated against the bytes remaining before any allocation is
/// sized from it.
class PayloadCursor {
 public:
  explicit PayloadCursor(std::string_view bytes) : bytes_(bytes) {}

  uint64_t Remaining() const { return bytes_.size() - pos_; }

  template <typename T>
  T Read() {
    if (Remaining() < sizeof(T))
      throw std::runtime_error("DecodeChunk: truncated chunk payload");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Read one column of `count` elements, invoking set(i, value).
  template <typename T, typename Setter>
  void ReadColumn(uint64_t count, Setter set) {
    if (Remaining() < count * sizeof(T))
      throw std::runtime_error("DecodeChunk: truncated chunk payload");
    for (uint64_t i = 0; i < count; ++i) {
      T value;
      std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      set(i, value);
    }
  }

 private:
  std::string_view bytes_;
  uint64_t pos_ = 0;
};

/// Serialize the header section (magic, version, chunk capacity, workload
/// name, kernel-type table) into a byte string.
std::string EncodeHeader(const KernelTrace& header,
                         uint64_t chunk_invocations) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendPod(out, kVersion);
  AppendPod(out, chunk_invocations);
  AppendPod(out, static_cast<uint32_t>(header.WorkloadName().size()));
  out.append(header.WorkloadName());
  AppendPod(out, static_cast<uint32_t>(header.NumKernelTypes()));
  for (const KernelType& type : header.Types()) {
    AppendPod(out, static_cast<uint32_t>(type.name.size()));
    out.append(type.name);
    AppendPod(out, type.num_basic_blocks);
    AppendPod(out, static_cast<uint32_t>(type.block_weights.size()));
    for (float w : type.block_weights) AppendPod(out, w);
  }
  return out;
}

std::string ReadFileString(std::ifstream& in, uint64_t remaining_bound,
                           const char* what) {
  uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > remaining_bound)
    throw std::runtime_error(std::string("ChunkedTraceReader: corrupt ") +
                             what);
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in)
    throw std::runtime_error(std::string("ChunkedTraceReader: truncated ") +
                             what);
  return s;
}

}  // namespace

uint32_t ChunkedTraceFormatVersion() { return kVersion; }

uint64_t ChunkWireBytesPerInvocation() { return kColumnarBytesPerInvocation; }

std::string EncodeChunk(std::span<const KernelInvocation> invocations) {
  const uint64_t count = invocations.size();
  std::string out;
  out.reserve(sizeof(uint64_t) + count * kColumnarBytesPerInvocation);
  AppendPod(out, count);
  for (const auto& inv : invocations) AppendPod(out, inv.kernel_id);
  for (const auto& inv : invocations) AppendPod(out, inv.context_id);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.grid_x);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.grid_y);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.grid_z);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.block_x);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.block_y);
  for (const auto& inv : invocations) AppendPod(out, inv.launch.block_z);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.instructions);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.footprint_bytes);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.mem_fraction);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.shared_fraction);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.locality);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.coalescing);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.branch_divergence);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.fp16_fraction);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.fp32_fraction);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.ilp);
  for (const auto& inv : invocations) AppendPod(out, inv.behavior.input_scale);
  for (const auto& inv : invocations)
    AppendPod(out, inv.behavior.store_fraction);
  for (const auto& inv : invocations) AppendPod(out, inv.duration_us);
  return out;
}

std::vector<KernelInvocation> DecodeChunk(std::string_view payload,
                                          uint64_t first_seq) {
  PayloadCursor cur(payload);
  const uint64_t count = cur.Read<uint64_t>();
  // Bound the count against the payload size BEFORE sizing the vector from
  // it -- a corrupt count must throw, never attempt a huge allocation.
  if (count > cur.Remaining() / kColumnarBytesPerInvocation ||
      count * kColumnarBytesPerInvocation != cur.Remaining())
    throw std::runtime_error(
        "DecodeChunk: invocation count prefix exceeds bytes remaining in "
        "chunk payload (corrupt or truncated input)");
  std::vector<KernelInvocation> out(count);
  cur.ReadColumn<uint32_t>(count,
                           [&](uint64_t i, uint32_t v) { out[i].kernel_id = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].context_id = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.grid_x = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.grid_y = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.grid_z = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.block_x = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.block_y = v; });
  cur.ReadColumn<uint32_t>(
      count, [&](uint64_t i, uint32_t v) { out[i].launch.block_z = v; });
  cur.ReadColumn<uint64_t>(count, [&](uint64_t i, uint64_t v) {
    out[i].behavior.instructions = v;
  });
  cur.ReadColumn<uint64_t>(count, [&](uint64_t i, uint64_t v) {
    out[i].behavior.footprint_bytes = v;
  });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.mem_fraction = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.shared_fraction = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.locality = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.coalescing = v; });
  cur.ReadColumn<float>(count, [&](uint64_t i, float v) {
    out[i].behavior.branch_divergence = v;
  });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.fp16_fraction = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.fp32_fraction = v; });
  cur.ReadColumn<float>(count,
                        [&](uint64_t i, float v) { out[i].behavior.ilp = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.input_scale = v; });
  cur.ReadColumn<float>(
      count, [&](uint64_t i, float v) { out[i].behavior.store_fraction = v; });
  cur.ReadColumn<double>(
      count, [&](uint64_t i, double v) { out[i].duration_us = v; });
  if (cur.Remaining() != 0)
    throw std::runtime_error("DecodeChunk: trailing bytes after chunk payload");
  for (uint64_t i = 0; i < count; ++i) out[i].seq = first_seq + i;
  return out;
}

// ---------------------------------------------------------------------------
// ChunkedTraceWriter
// ---------------------------------------------------------------------------

struct ChunkedTraceWriter::Impl {
  std::ofstream out;
};

ChunkedTraceWriter::ChunkedTraceWriter(const std::string& path,
                                       const KernelTrace& header,
                                       uint64_t chunk_invocations)
    : path_(path),
      chunk_invocations_(chunk_invocations),
      impl_(std::make_unique<Impl>()) {
  if (chunk_invocations_ == 0)
    throw std::invalid_argument(
        "ChunkedTraceWriter: chunk_invocations must be > 0");
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out)
    throw std::runtime_error("ChunkedTraceWriter: cannot open " + path);
  const std::string head = EncodeHeader(header, chunk_invocations_);
  impl_->out.write(head.data(), static_cast<std::streamsize>(head.size()));
  if (!impl_->out)
    throw std::runtime_error("ChunkedTraceWriter: header write failed: " +
                             path);
  buffer_.reserve(chunk_invocations_);
}

ChunkedTraceWriter::~ChunkedTraceWriter() {
  if (!finished_) {
    try {
      Finish();
    } catch (...) {
      // Best effort in a destructor; an unfinished file has no trailer and
      // every reader rejects it, so silence is safe here.
    }
  }
}

void ChunkedTraceWriter::Append(const KernelInvocation& inv) {
  buffer_.push_back(inv);
  ++appended_;
  if (buffer_.size() >= chunk_invocations_) FlushChunk();
}

void ChunkedTraceWriter::Append(std::span<const KernelInvocation> invocations) {
  for (const KernelInvocation& inv : invocations) Append(inv);
}

void ChunkedTraceWriter::FlushChunk() {
  if (buffer_.empty()) return;
  const std::string payload = EncodeChunk(buffer_);
  ChunkInfo info;
  info.offset = static_cast<uint64_t>(impl_->out.tellp());
  info.count = buffer_.size();
  info.digest = Fnv1a64(payload);
  impl_->out.write(payload.data(),
                   static_cast<std::streamsize>(payload.size()));
  if (!impl_->out)
    throw std::runtime_error("ChunkedTraceWriter: chunk write failed: " +
                             path_);
  chunks_.push_back(info);
  buffer_.clear();
}

void ChunkedTraceWriter::Finish() {
  if (finished_) return;
  FlushChunk();
  const uint64_t footer_offset = static_cast<uint64_t>(impl_->out.tellp());
  std::string tail;
  tail.reserve(chunks_.size() * kFooterRecordBytes + kTrailerBytes);
  for (const ChunkInfo& c : chunks_) {
    AppendPod(tail, c.offset);
    AppendPod(tail, c.count);
    AppendPod(tail, c.digest);
  }
  AppendPod(tail, footer_offset);
  AppendPod(tail, static_cast<uint64_t>(chunks_.size()));
  AppendPod(tail, appended_);
  AppendPod(tail, kVersion);
  tail.append(kTrailerMagic, sizeof(kTrailerMagic));
  impl_->out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  impl_->out.flush();
  if (!impl_->out)
    throw std::runtime_error("ChunkedTraceWriter: footer write failed: " +
                             path_);
  impl_->out.close();
  finished_ = true;
}

// ---------------------------------------------------------------------------
// ChunkedTraceReader
// ---------------------------------------------------------------------------

struct ChunkedTraceReader::Impl {
  // Opened once; ReadChunk seeks within it. mutable because chunk reads are
  // logically const (the file is immutable after Finish()).
  mutable std::ifstream in;
  uint64_t file_size = 0;
};

ChunkedTraceReader::ChunkedTraceReader(const std::string& path)
    : path_(path), impl_(std::make_unique<Impl>()) {
  std::ifstream& in = impl_->in;
  in.open(path, std::ios::binary);
  if (!in) throw std::runtime_error("ChunkedTraceReader: cannot open " + path);
  in.seekg(0, std::ios::end);
  impl_->file_size = static_cast<uint64_t>(in.tellg());
  if (impl_->file_size < kTrailerBytes)
    throw std::runtime_error("ChunkedTraceReader: file too small: " + path);

  // Trailer first: it locates the footer without scanning any chunks.
  in.seekg(static_cast<std::streamoff>(impl_->file_size - kTrailerBytes));
  uint64_t footer_offset = 0, num_chunks = 0;
  in.read(reinterpret_cast<char*>(&footer_offset), sizeof(footer_offset));
  in.read(reinterpret_cast<char*>(&num_chunks), sizeof(num_chunks));
  in.read(reinterpret_cast<char*>(&total_invocations_),
          sizeof(total_invocations_));
  uint32_t version = 0;
  char magic[4];
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTrailerMagic, sizeof(kTrailerMagic)) != 0)
    throw std::runtime_error("ChunkedTraceReader: bad trailer (unfinished or "
                             "not an SRTC file): " +
                             path);
  if (version != kVersion)
    throw std::runtime_error("ChunkedTraceReader: unsupported version: " +
                             path);
  const uint64_t footer_end = impl_->file_size - kTrailerBytes;
  if (footer_offset > footer_end ||
      num_chunks > (footer_end - footer_offset) / kFooterRecordBytes ||
      num_chunks * kFooterRecordBytes != footer_end - footer_offset)
    throw std::runtime_error("ChunkedTraceReader: inconsistent footer: " +
                             path);

  // Header.
  in.seekg(0);
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("ChunkedTraceReader: bad magic: " + path);
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion)
    throw std::runtime_error("ChunkedTraceReader: unsupported version: " +
                             path);
  in.read(reinterpret_cast<char*>(&chunk_invocations_),
          sizeof(chunk_invocations_));
  if (!in || chunk_invocations_ == 0)
    throw std::runtime_error("ChunkedTraceReader: corrupt chunk capacity: " +
                             path);
  header_.SetWorkloadName(
      ReadFileString(in, impl_->file_size, "workload name"));
  uint32_t num_types = 0;
  in.read(reinterpret_cast<char*>(&num_types), sizeof(num_types));
  if (!in || num_types > impl_->file_size / (3 * sizeof(uint32_t)))
    throw std::runtime_error("ChunkedTraceReader: corrupt kernel-type count: " +
                             path);
  for (uint32_t k = 0; k < num_types; ++k) {
    KernelType type;
    type.name = ReadFileString(in, impl_->file_size, "kernel-type name");
    in.read(reinterpret_cast<char*>(&type.num_basic_blocks),
            sizeof(type.num_basic_blocks));
    uint32_t weights = 0;
    in.read(reinterpret_cast<char*>(&weights), sizeof(weights));
    if (!in || weights > impl_->file_size / sizeof(float))
      throw std::runtime_error(
          "ChunkedTraceReader: corrupt block-weight count: " + path);
    type.block_weights.resize(weights);
    in.read(reinterpret_cast<char*>(type.block_weights.data()),
            static_cast<std::streamsize>(weights * sizeof(float)));
    if (!in)
      throw std::runtime_error("ChunkedTraceReader: truncated header: " +
                               path);
    header_.AddKernelType(std::move(type));
  }

  // Footer index.
  in.seekg(static_cast<std::streamoff>(footer_offset));
  chunks_.resize(num_chunks);
  uint64_t running_total = 0;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    ChunkInfo& c = chunks_[i];
    in.read(reinterpret_cast<char*>(&c.offset), sizeof(c.offset));
    in.read(reinterpret_cast<char*>(&c.count), sizeof(c.count));
    in.read(reinterpret_cast<char*>(&c.digest), sizeof(c.digest));
    if (!in)
      throw std::runtime_error("ChunkedTraceReader: truncated footer: " + path);
    const uint64_t payload_bytes =
        sizeof(uint64_t) + c.count * kColumnarBytesPerInvocation;
    if (c.offset > footer_offset || payload_bytes > footer_offset - c.offset ||
        c.count > chunk_invocations_ ||
        (c.count < chunk_invocations_ && i + 1 != num_chunks))
      throw std::runtime_error("ChunkedTraceReader: chunk " +
                               std::to_string(i) +
                               " index out of bounds: " + path);
    running_total += c.count;
  }
  if (running_total != total_invocations_)
    throw std::runtime_error(
        "ChunkedTraceReader: chunk counts disagree with trailer total: " +
        path);
}

ChunkedTraceReader::~ChunkedTraceReader() = default;

std::string ChunkedTraceReader::ReadChunkPayload(size_t i) const {
  const ChunkInfo& c = chunks_.at(i);
  const uint64_t payload_bytes =
      sizeof(uint64_t) + c.count * kColumnarBytesPerInvocation;
  std::string payload(payload_bytes, '\0');
  std::ifstream& in = impl_->in;
  in.clear();
  in.seekg(static_cast<std::streamoff>(c.offset));
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (!in)
    throw std::runtime_error("ChunkedTraceReader: short read of chunk " +
                             std::to_string(i) + ": " + path_);
  if (Fnv1a64(payload) != c.digest)
    throw std::runtime_error("ChunkedTraceReader: digest mismatch on chunk " +
                             std::to_string(i) + " (corrupt data): " + path_);
  return payload;
}

std::vector<KernelInvocation> ChunkedTraceReader::ReadChunk(size_t i) const {
  const std::string payload = ReadChunkPayload(i);
  return DecodeChunk(payload, static_cast<uint64_t>(i) * chunk_invocations_);
}

bool ChunkedTraceReader::VerifyChunk(size_t i) const {
  try {
    (void)ReadChunkPayload(i);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// Chunk sources
// ---------------------------------------------------------------------------

uint64_t ChunkSource::ResidentBudgetBytes() const {
  return Header().ApproxBytes() +
         2 * ChunkCapacity() * sizeof(KernelInvocation);
}

InMemoryChunkSource::InMemoryChunkSource(const KernelTrace& trace,
                                         uint64_t chunk_invocations)
    : trace_(trace),
      header_(trace.HeaderClone()),
      chunk_invocations_(chunk_invocations) {
  if (chunk_invocations_ == 0)
    throw std::invalid_argument(
        "InMemoryChunkSource: chunk_invocations must be > 0");
}

uint64_t InMemoryChunkSource::NumInvocations() const {
  return trace_.NumInvocations();
}

size_t InMemoryChunkSource::NumChunks() const {
  return static_cast<size_t>(
      (trace_.NumInvocations() + chunk_invocations_ - 1) / chunk_invocations_);
}

std::vector<KernelInvocation> InMemoryChunkSource::Chunk(size_t i) const {
  if (i >= NumChunks())
    throw std::out_of_range("InMemoryChunkSource: chunk index out of range");
  const uint64_t begin = static_cast<uint64_t>(i) * chunk_invocations_;
  const uint64_t end =
      std::min<uint64_t>(begin + chunk_invocations_, trace_.NumInvocations());
  std::span<const KernelInvocation> all = trace_.Invocations();
  return {all.begin() + static_cast<ptrdiff_t>(begin),
          all.begin() + static_cast<ptrdiff_t>(end)};
}

FileChunkSource::FileChunkSource(const std::string& path) : reader_(path) {}

std::vector<KernelInvocation> FileChunkSource::Chunk(size_t i) const {
  return reader_.ReadChunk(i);
}

ReplicatedChunkSource::ReplicatedChunkSource(const KernelTrace& base,
                                             uint64_t total_invocations,
                                             uint64_t chunk_invocations)
    : base_(base),
      header_(base.HeaderClone()),
      total_invocations_(total_invocations),
      chunk_invocations_(chunk_invocations) {
  if (base_.Empty())
    throw std::invalid_argument("ReplicatedChunkSource: base trace is empty");
  if (chunk_invocations_ == 0)
    throw std::invalid_argument(
        "ReplicatedChunkSource: chunk_invocations must be > 0");
}

size_t ReplicatedChunkSource::NumChunks() const {
  return static_cast<size_t>(
      (total_invocations_ + chunk_invocations_ - 1) / chunk_invocations_);
}

std::vector<KernelInvocation> ReplicatedChunkSource::Chunk(size_t i) const {
  if (i >= NumChunks())
    throw std::out_of_range("ReplicatedChunkSource: chunk index out of range");
  const uint64_t begin = static_cast<uint64_t>(i) * chunk_invocations_;
  const uint64_t end =
      std::min<uint64_t>(begin + chunk_invocations_, total_invocations_);
  const uint64_t base_n = base_.NumInvocations();
  std::vector<KernelInvocation> out;
  out.reserve(end - begin);
  for (uint64_t j = begin; j < end; ++j) {
    KernelInvocation inv = base_.At(j % base_n);
    inv.seq = j;
    out.push_back(inv);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Whole-trace helpers
// ---------------------------------------------------------------------------

size_t SpillTraceChunked(const KernelTrace& trace, const std::string& path,
                         uint64_t chunk_invocations) {
  ChunkedTraceWriter writer(path, trace, chunk_invocations);
  writer.Append(trace.Invocations());
  writer.Finish();
  const uint64_t cap = writer.ChunkCapacity();
  return static_cast<size_t>((trace.NumInvocations() + cap - 1) / cap);
}

KernelTrace AssembleTrace(const ChunkSource& source) {
  KernelTrace trace = source.Header().HeaderClone();
  trace.Reserve(source.NumInvocations());
  for (size_t i = 0; i < source.NumChunks(); ++i)
    for (const KernelInvocation& inv : source.Chunk(i))
      trace.Add(inv);  // Add reassigns seq == global timeline position
  return trace;
}

}  // namespace stemroot
