#include "trace/serialize.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/str.h"

namespace stemroot {

// The "SRTR" format contract is explicitly little-endian: WritePod/ReadPod
// move raw object bytes, so an artifact written on one host must only ever
// be read by a host with the same byte order. Every shipping target is
// little-endian; a big-endian port must add byte-swapping readers/writers
// rather than silently misreading cached artifacts, so fail the build
// loudly there instead of corrupting data at run time.
static_assert(std::endian::native == std::endian::little,
              "SRTR trace serialization assumes a little-endian host; "
              "port trace/serialize.cc with explicit byte swapping before "
              "building for big-endian targets");

namespace {

constexpr char kMagic[4] = {'S', 'R', 'T', 'R'};
constexpr uint32_t kVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("LoadTraceBinary: truncated file");
  return value;
}

/// Bytes left between the stream position and its end. Both ifstream and
/// istringstream support the seek dance; any seek failure reports zero
/// remaining, which makes every bound below fail closed (throw, never
/// allocate).
uint64_t BytesRemaining(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return 0;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur || !in) return 0;
  return static_cast<uint64_t>(end - cur);
}

/// Guard for every length/count prefix read from the stream: a truncated
/// or corrupt prefix must throw immediately, *before* any allocation is
/// sized from it -- a multi-GB resize on attacker/corruption-controlled
/// input is itself the failure mode.
void RequireRemaining(std::istream& in, uint64_t needed, const char* what) {
  if (needed > BytesRemaining(in))
    throw std::runtime_error(
        std::string("LoadTraceBinary: ") + what +
        " prefix exceeds bytes remaining in stream (corrupt or truncated "
        "input)");
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& in) {
  const uint32_t len = ReadPod<uint32_t>(in);
  if (len > (1u << 20))
    throw std::runtime_error("LoadTraceBinary: implausible string length");
  RequireRemaining(in, len, "string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("LoadTraceBinary: truncated string");
  return s;
}

void WriteTrace(std::ostream& out, const KernelTrace& trace) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WriteString(out, trace.WorkloadName());

  WritePod<uint32_t>(out, static_cast<uint32_t>(trace.NumKernelTypes()));
  for (uint32_t k = 0; k < trace.NumKernelTypes(); ++k) {
    const KernelType& type = trace.Type(k);
    WriteString(out, type.name);
    WritePod(out, type.num_basic_blocks);
    WritePod<uint32_t>(out, static_cast<uint32_t>(type.block_weights.size()));
    for (float w : type.block_weights) WritePod(out, w);
  }

  WritePod<uint64_t>(out, trace.NumInvocations());
  for (const KernelInvocation& inv : trace.Invocations()) {
    WritePod(out, inv.kernel_id);
    WritePod(out, inv.context_id);
    WritePod(out, inv.launch);
    WritePod(out, inv.behavior);
    WritePod(out, inv.duration_us);
  }
}

/// Wire size of one invocation record (the WritePod sequence above).
constexpr uint64_t kInvocationWireBytes =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(LaunchConfig) +
    sizeof(KernelBehavior) + sizeof(double);

/// Minimum wire size of one kernel-type record: empty name (4-byte
/// length), num_basic_blocks, and an empty weight table (4-byte count).
constexpr uint64_t kTypeMinWireBytes = 3 * sizeof(uint32_t);

KernelTrace ReadTrace(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("LoadTraceBinary: bad magic");
  const uint32_t version = ReadPod<uint32_t>(in);
  if (version != kVersion)
    throw std::runtime_error("LoadTraceBinary: unsupported version");

  KernelTrace trace(ReadString(in));

  const uint32_t num_types = ReadPod<uint32_t>(in);
  RequireRemaining(in, static_cast<uint64_t>(num_types) * kTypeMinWireBytes,
                   "kernel-type count");
  for (uint32_t k = 0; k < num_types; ++k) {
    KernelType type;
    type.name = ReadString(in);
    type.num_basic_blocks = ReadPod<uint32_t>(in);
    const uint32_t weights = ReadPod<uint32_t>(in);
    RequireRemaining(in, static_cast<uint64_t>(weights) * sizeof(float),
                     "block-weight count");
    type.block_weights.resize(weights);
    for (auto& w : type.block_weights) w = ReadPod<float>(in);
    trace.AddKernelType(std::move(type));
  }

  const uint64_t num_invocations = ReadPod<uint64_t>(in);
  RequireRemaining(in, num_invocations * kInvocationWireBytes,
                   "invocation count");
  trace.Reserve(num_invocations);
  for (uint64_t i = 0; i < num_invocations; ++i) {
    KernelInvocation inv;
    inv.kernel_id = ReadPod<uint32_t>(in);
    inv.context_id = ReadPod<uint32_t>(in);
    inv.launch = ReadPod<LaunchConfig>(in);
    inv.behavior = ReadPod<KernelBehavior>(in);
    inv.duration_us = ReadPod<double>(in);
    trace.Add(inv);
  }
  return trace;
}

}  // namespace

uint32_t TraceFormatVersion() { return kVersion; }

std::string SerializeTrace(const KernelTrace& trace) {
  std::ostringstream out(std::ios::binary);
  WriteTrace(out, trace);
  if (!out) throw std::runtime_error("SerializeTrace: stream failure");
  return std::move(out).str();
}

KernelTrace DeserializeTrace(std::string_view bytes) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  KernelTrace trace = ReadTrace(in);
  // Reject trailing garbage: a cache payload must be exactly one trace.
  in.peek();
  if (!in.eof())
    throw std::runtime_error("DeserializeTrace: trailing bytes after trace");
  return trace;
}

void SaveTraceBinary(const KernelTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("SaveTraceBinary: cannot open " + path);
  WriteTrace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("SaveTraceBinary: write failed");
}

KernelTrace LoadTraceBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("LoadTraceBinary: cannot open " + path);
  return ReadTrace(in);
}

void ExportTimelineCsv(const KernelTrace& trace, const std::string& path) {
  CsvWriter csv(path);
  csv.WriteHeader({"kernel", "seq", "duration_us", "grid", "block",
                   "instructions"});
  // Kernel names are the one externally-controlled cell: CsvWriter::
  // WriteRow applies RFC-4180 quoting to every cell, so names carrying
  // commas, quotes, or newlines round-trip through CsvTable::Parse
  // (pinned by the hostile-name test in tests/trace/serialize_test.cc).
  for (const KernelInvocation& inv : trace.Invocations()) {
    csv.WriteRow({trace.NameOf(inv), std::to_string(inv.seq),
                  Format("%.4f", inv.duration_us),
                  Format("%ux%ux%u", inv.launch.grid_x, inv.launch.grid_y,
                         inv.launch.grid_z),
                  Format("%ux%ux%u", inv.launch.block_x, inv.launch.block_y,
                         inv.launch.block_z),
                  std::to_string(inv.behavior.instructions)});
  }
  csv.Flush();
}

}  // namespace stemroot
