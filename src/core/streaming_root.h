/// \file
/// Streaming ROOT — incremental hierarchical clustering of one kernel's
/// execution-time population (the online counterpart of root.h).
///
/// Batch ROOT sees the whole population and recursively splits it; a
/// resident sampling session (service/service.h) sees invocations one
/// Feed() chunk at a time and must keep a useful cluster structure at all
/// times. StreamingRoot maintains that structure with mini-batch k-means
/// discipline:
///
///   - **Assign**: each new duration joins the cluster with the nearest
///     center (the running mean) and updates its Welford accumulator.
///   - **Split**: every `reassess_interval` observations, each cluster is
///     re-examined with the batch ROOT acceptance rule (Eq. 7 vs Eq. 8):
///     k-means with k = 2 runs over the cluster's *reservoir* (a bounded,
///     deterministic uniform sample of its members) and the split is taken
///     iff the KKT-sized children predict a cheaper sampled simulation
///     than the Eq. 3-sized parent.
///   - **Merge**: after splits, adjacent clusters (by center) are merged
///     back when the same cost rule says the separation no longer pays --
///     the guard against over-splitting on early, noisy data.
///
/// Every decision is a pure function of the observation order and the
/// seed (reservoir replacement uses a per-cluster Rng derived from the
/// seed and a monotone cluster uid), so a session that feeds the same
/// data in the same chunks reproduces the same structure at any thread
/// count -- StreamingRoot itself is single-owner and unsynchronized; the
/// owning session serializes access.
///
/// The streaming structure is *advisory*: it powers the cheap per-Query
/// error bound and the early-stop decision. Plan materialization always
/// re-runs the canonical batch sampler over the accumulated trace, which
/// is what pins the replay-equivalence contract (DESIGN.md section 13).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/root.h"
#include "trace/kernel.h"
#include "trace/trace.h"

namespace stemroot::core {

/// Knobs of the incremental clusterer, on top of the batch RootConfig
/// (whose stem member supplies epsilon/confidence for the cost rule).
struct StreamingRootConfig {
  RootConfig root;
  /// Per-cluster reservoir capacity: the bounded uniform sample that
  /// split decisions run k-means over.
  uint32_t reservoir_capacity = 256;
  /// Do not consider splitting a cluster before its reservoir holds this
  /// many observations (split decisions on a handful of points are noise).
  uint64_t min_split_observations = 64;
  /// Observations between split/merge reassessment passes (per kernel).
  uint64_t reassess_interval = 64;
  /// Hard cap on clusters per kernel (guards adversarial streams).
  uint32_t max_clusters = 64;

  void Validate() const;  ///< throws std::invalid_argument
};

/// Online clusterer for one kernel's execution-time population.
class StreamingRoot {
 public:
  /// `seed` scopes the deterministic reservoir sampling; use
  /// DeriveSeed(session_seed, kernel_id) so kernels get independent
  /// streams.
  StreamingRoot(const StreamingRootConfig& config, uint64_t seed);

  /// Fold one profiled invocation duration (microseconds, > 0) into the
  /// structure. Triggers a split/merge reassessment every
  /// `reassess_interval` observations.
  void Observe(double duration_us);

  uint64_t Observations() const { return observations_; }
  size_t NumClusters() const { return clusters_.size(); }

  /// Current population statistics of every cluster, ordered by center
  /// (ascending mean). The `n` fields sum to Observations().
  std::vector<ClusterStats> Stats() const;

  /// Lifetime structural-event counts (telemetry fodder for the service).
  uint64_t NumSplits() const { return splits_; }
  uint64_t NumMerges() const { return merges_; }

 private:
  struct Cluster {
    StreamingStats stats;           ///< Welford accumulator (population)
    std::vector<double> reservoir;  ///< bounded uniform member sample
    uint64_t reservoir_seen = 0;    ///< observations offered to the reservoir
    Rng rng;                        ///< reservoir replacement stream

    Cluster() : rng(0) {}
    double Center() const { return stats.Mean(); }
    ClusterStats PopulationStats() const;
  };

  Cluster MakeCluster();
  void ObserveInto(Cluster& cluster, double duration_us);
  void Reassess();
  bool TrySplit(size_t index);   ///< true when the cluster was split
  void TryMerges();

  StreamingRootConfig config_;
  uint64_t seed_ = 0;
  uint64_t next_cluster_uid_ = 0;
  uint64_t observations_ = 0;
  uint64_t since_reassess_ = 0;
  uint64_t splits_ = 0;
  uint64_t merges_ = 0;
  std::vector<Cluster> clusters_;  ///< kept sorted by center
};

/// Whole-trace streaming ROOT: one StreamingRoot per kernel type, fed
/// chunk by chunk (trace/chunked.h). This is the clustering stage of the
/// out-of-core pipeline -- it never needs more of the timeline resident
/// than the chunk currently being folded, so a billion-invocation trace
/// clusters in bounded memory.
///
/// Per-kernel seeds derive as DeriveSeed(seed, kernel_id), identical to
/// feeding each kernel's durations to a standalone StreamingRoot, so the
/// structure is a pure function of (header, chunk contents in order,
/// seed) -- invariant to chunk size and to whether the chunks came from
/// memory, a file, or a replicated synthetic source.
class StreamingTraceClusterer {
 public:
  /// `header` supplies the kernel-type table (a HeaderClone() is fine);
  /// one StreamingRoot is created per type.
  StreamingTraceClusterer(const StreamingRootConfig& config,
                          const KernelTrace& header, uint64_t seed);

  /// Fold one chunk of invocations (timeline order across calls).
  /// Invocations with non-positive durations are skipped, matching the
  /// service-session feed contract. Throws std::out_of_range on a
  /// kernel_id outside the header table.
  void ObserveChunk(std::span<const KernelInvocation> chunk);

  size_t NumKernels() const { return roots_.size(); }
  const StreamingRoot& Root(size_t kernel_id) const {
    return roots_.at(kernel_id);
  }

  /// Invocations folded (positive-duration only).
  uint64_t Observations() const { return observations_; }
  /// Current cluster count summed over kernels.
  size_t TotalClusters() const;
  /// Lifetime split/merge totals summed over kernels.
  uint64_t TotalSplits() const;
  uint64_t TotalMerges() const;

  /// Concatenated per-kernel cluster stats in kernel-id order (each
  /// kernel's clusters ordered by center), the flat form eval::StreamTrace
  /// reports.
  std::vector<ClusterStats> AllStats() const;

 private:
  std::vector<StreamingRoot> roots_;  ///< index == kernel_id
  uint64_t observations_ = 0;
};

}  // namespace stemroot::core
