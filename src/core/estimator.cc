#include "core/estimator.h"

#include <cmath>
#include <stdexcept>

namespace stemroot::core {

namespace {

/// Shared accumulator: sums of weight*value per metric plus total weight.
MetricAggregate Accumulate(
    std::span<const KernelMetrics> per_invocation,
    const std::vector<SampleEntry>& entries) {
  MetricAggregate agg;
  double total_weight = 0.0;
  for (const SampleEntry& e : entries) {
    if (e.invocation >= per_invocation.size())
      throw std::out_of_range("AggregateSampled: invocation out of range");
    const KernelMetrics& m = per_invocation[e.invocation];
    for (size_t i = 0; i < KernelMetrics::kCount; ++i)
      agg.values[i] += e.weight * m.Get(i);
    total_weight += e.weight;
  }
  if (total_weight > 0.0) {
    for (size_t i = 0; i < KernelMetrics::kCount; ++i)
      if (KernelMetrics::IsRate(i)) agg.values[i] /= total_weight;
  }
  return agg;
}

}  // namespace

std::array<double, KernelMetrics::kCount> MetricAggregate::RelativeError(
    const MetricAggregate& estimate, const MetricAggregate& reference) {
  std::array<double, KernelMetrics::kCount> err{};
  for (size_t i = 0; i < KernelMetrics::kCount; ++i) {
    const double diff = std::abs(estimate.values[i] - reference.values[i]);
    if (KernelMetrics::IsRate(i)) {
      err[i] = diff;  // already in [0, 1]
    } else {
      err[i] = reference.values[i] != 0.0
                   ? diff / std::abs(reference.values[i])
                   : diff;
    }
  }
  return err;
}

MetricAggregate AggregateSampled(
    const SamplingPlan& plan,
    std::span<const KernelMetrics> per_invocation) {
  return Accumulate(per_invocation, plan.entries);
}

MetricAggregate AggregateFull(
    std::span<const KernelMetrics> per_invocation) {
  std::vector<SampleEntry> all;
  all.reserve(per_invocation.size());
  for (uint32_t i = 0; i < per_invocation.size(); ++i)
    all.push_back({i, 1.0});
  return Accumulate(per_invocation, all);
}

}  // namespace stemroot::core
