#include "core/stem.h"

#include <cmath>
#include <stdexcept>

namespace stemroot::core {

void StemConfig::Validate() const {
  if (!(epsilon > 0.0))
    throw std::invalid_argument("StemConfig: epsilon must be > 0");
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument("StemConfig: confidence must be in (0, 1)");
  if (min_samples == 0)
    throw std::invalid_argument("StemConfig: min_samples must be >= 1");
}

ClusterStats ClusterStats::Of(std::span<const double> durations) {
  const SummaryStats s = SummaryStats::Of(durations);
  ClusterStats c;
  c.n = s.count;
  c.mean = s.mean;
  c.stddev = s.Stddev();
  return c;
}

uint64_t SingleClusterSampleSize(const ClusterStats& cluster,
                                 const StemConfig& config) {
  config.Validate();
  if (cluster.n == 0) return 0;
  if (cluster.mean <= 0.0)
    throw std::invalid_argument(
        "SingleClusterSampleSize: non-positive cluster mean");
  if (cluster.stddev <= 0.0)
    return std::min<uint64_t>(config.min_samples, cluster.n);

  const double z = config.Z();
  const double m_real =
      std::pow(z / config.epsilon * cluster.stddev / cluster.mean, 2.0);
  const uint64_t m = static_cast<uint64_t>(std::ceil(m_real));
  return std::min<uint64_t>(std::max(m, config.min_samples), cluster.n);
}

double TheoreticalError(const ClusterStats& cluster, uint64_t m,
                        const StemConfig& config) {
  config.Validate();
  if (m == 0) throw std::invalid_argument("TheoreticalError: m == 0");
  if (cluster.mean <= 0.0)
    throw std::invalid_argument("TheoreticalError: non-positive mean");
  return config.Z() * cluster.stddev /
         (cluster.mean * std::sqrt(static_cast<double>(m)));
}

double MultiClusterError(std::span<const ClusterStats> clusters,
                         std::span<const uint64_t> sample_sizes,
                         const StemConfig& config) {
  config.Validate();
  if (clusters.size() != sample_sizes.size())
    throw std::invalid_argument("MultiClusterError: arity mismatch");
  double variance = 0.0;  // sum N_i^2 sigma_i^2 / m_i
  double total_mean = 0.0;  // sum N_i mu_i
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterStats& c = clusters[i];
    if (c.n == 0) continue;
    if (sample_sizes[i] == 0)
      throw std::invalid_argument("MultiClusterError: m_i == 0");
    const double big_n = static_cast<double>(c.n);
    variance += big_n * big_n * c.stddev * c.stddev /
                static_cast<double>(sample_sizes[i]);
    total_mean += big_n * c.mean;
  }
  if (total_mean <= 0.0)
    throw std::invalid_argument("MultiClusterError: non-positive total");
  return config.Z() * std::sqrt(variance) / total_mean;
}

double SampleCost(std::span<const ClusterStats> clusters,
                  std::span<const uint64_t> sample_sizes) {
  if (clusters.size() != sample_sizes.size())
    throw std::invalid_argument("SampleCost: arity mismatch");
  double tau = 0.0;
  for (size_t i = 0; i < clusters.size(); ++i)
    tau += static_cast<double>(sample_sizes[i]) * clusters[i].mean;
  return tau;
}

}  // namespace stemroot::core
