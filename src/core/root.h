/// \file
/// ROOT — fine-grained hierarchical kernel clustering (paper Sec. 3.4).
///
/// Starting from one cluster per kernel name, ROOT recursively splits a
/// cluster with k-means (k = 2 by default) on execution times and accepts
/// the split iff it reduces STEM's predicted sampled-simulation cost
/// (Eq. 7 vs Eq. 8):
///
///   tau_old = m(C) * mean(C)                (Eq. 3 sizing of the parent)
///   tau_new = sum_i m_i * mean(C_i)         (Eq. 6 KKT sizing of children)
///
/// The recursion bottoms out when a split no longer saves simulated time,
/// when a cluster is too small to split, or at a depth guard. Because the
/// number of peaks in a kernel's time histogram is unknown in advance,
/// this adaptive stopping rule is what replaces "choose k" (Sec. 3.4).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stem.h"

namespace stemroot::core {

/// ROOT knobs on top of StemConfig.
struct RootConfig {
  StemConfig stem;
  /// Split arity for each recursive step (paper: "any number above 2
  /// works well"; they use k-means with k = 2).
  uint32_t branch_k = 2;
  /// Do not attempt to split clusters smaller than this.
  uint64_t min_split_size = 8;
  /// Hard recursion depth guard (a binary split tree over N points is at
  /// most ~log2 N deep in practice; this only bounds adversarial inputs).
  uint32_t max_depth = 40;

  void Validate() const;
};

/// One final cluster: member indices into the caller's duration array,
/// plus the population stats STEM sizes it with.
struct RootCluster {
  std::vector<uint32_t> members;
  ClusterStats stats;
  uint32_t depth = 0;  ///< depth in the split tree (0 = never split)
};

/// Recursively cluster one kernel's execution-time population.
/// `durations[i]` is the time of invocation `indices[i]`; the returned
/// clusters partition `indices`. Throws on arity mismatch.
std::vector<RootCluster> RootCluster1D(std::span<const double> durations,
                                       std::span<const uint32_t> indices,
                                       const RootConfig& config);

/// Convenience: cluster positions 0..durations.size()-1.
std::vector<RootCluster> RootCluster1D(std::span<const double> durations,
                                       const RootConfig& config);

}  // namespace stemroot::core
