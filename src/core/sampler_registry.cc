#include "core/sampler_registry.h"

#include <stdexcept>

#include "common/str.h"

namespace stemroot::core {

SamplerParams& SamplerParams::Set(const std::string& key,
                                  const std::string& value) {
  values_[key] = value;
  return *this;
}

SamplerParams& SamplerParams::Set(const std::string& key,
                                  const char* value) {
  values_[key] = value;
  return *this;
}

SamplerParams& SamplerParams::Set(const std::string& key, double value) {
  // Locale-independent shortest round-trip form: the stored string must
  // parse back to exactly `value` regardless of the global locale.
  values_[key] = FormatDouble(value);
  return *this;
}

SamplerParams& SamplerParams::Set(const std::string& key, int64_t value) {
  values_[key] = Format("%lld", static_cast<long long>(value));
  return *this;
}

SamplerParams& SamplerParams::Set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
  return *this;
}

bool SamplerParams::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string SamplerParams::GetString(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double SamplerParams::GetDouble(const std::string& key,
                                double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // from_chars-backed parse: std::stod honors the global locale's decimal
  // point and would misread "0.05" under a comma-decimal locale.
  const std::optional<double> value = ParseDouble(it->second);
  if (!value)
    throw std::invalid_argument("SamplerParams: '" + key +
                                "' expects a number, got '" + it->second +
                                "'");
  return *value;
}

int64_t SamplerParams::GetInt(const std::string& key,
                              int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::optional<int64_t> value = ParseInt(it->second);
  if (!value)
    throw std::invalid_argument("SamplerParams: '" + key +
                                "' expects an integer, got '" + it->second +
                                "'");
  return *value;
}

bool SamplerParams::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("SamplerParams: '" + key +
                              "' expects true/false, got '" + it->second +
                              "'");
}

SamplerRegistry& SamplerRegistry::Global() {
  static SamplerRegistry* registry = [] {
    auto* reg = new SamplerRegistry;
    reg->Register("stem", [](const SamplerParams& params) {
      StemRootConfig config;
      config.root.stem.epsilon =
          params.GetDouble("epsilon", config.root.stem.epsilon);
      config.root.stem.confidence =
          params.GetDouble("confidence", config.root.stem.confidence);
      config.root.stem.min_samples = static_cast<uint64_t>(params.GetInt(
          "min_samples",
          static_cast<int64_t>(config.root.stem.min_samples)));
      config.root.branch_k = static_cast<uint32_t>(params.GetInt(
          "branch_k", static_cast<int64_t>(config.root.branch_k)));
      return std::make_unique<StemRootSampler>(config);
    });
    return reg;
  }();
  return *registry;
}

void SamplerRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument(
        "SamplerRegistry: name and factory must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second)
    throw std::invalid_argument("SamplerRegistry: '" + name +
                                "' is already registered");
}

bool SamplerRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

std::vector<std::string> SamplerRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iteration order is already sorted
}

std::unique_ptr<Sampler> SamplerRegistry::Create(
    const std::string& name, const SamplerParams& params) const {
  // Entries are never removed and std::map nodes are stable, so the
  // factory can be invoked through a pointer after dropping the lock --
  // no std::function copy per Create, and no lock held during the
  // (arbitrary user code) factory call.
  const Factory* factory = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = &it->second;
  }
  if (factory == nullptr) {
    std::string known;
    for (const std::string& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown sampler '" + name +
                                "' (registered: " + known + ")");
  }
  return (*factory)(params);
}

}  // namespace stemroot::core
