#include "core/plan.h"

#include <algorithm>
#include <stdexcept>

namespace stemroot::core {

std::vector<uint32_t> SamplingPlan::DistinctInvocations() const {
  std::vector<uint32_t> distinct;
  distinct.reserve(entries.size());
  for (const SampleEntry& e : entries) distinct.push_back(e.invocation);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  return distinct;
}

double SamplingPlan::EstimateTotalUs(
    std::span<const double> durations_us) const {
  double total = 0.0;
  for (const SampleEntry& e : entries) {
    if (e.invocation >= durations_us.size())
      throw std::out_of_range("SamplingPlan: invocation index out of range");
    total += e.weight * durations_us[e.invocation];
  }
  return total;
}

double SamplingPlan::EstimateTotalUs(const KernelTrace& trace) const {
  double total = 0.0;
  for (const SampleEntry& e : entries) {
    if (e.invocation >= trace.NumInvocations())
      throw std::out_of_range("SamplingPlan: invocation index out of range");
    total += e.weight * trace.At(e.invocation).duration_us;
  }
  return total;
}

double SamplingPlan::SampledCostUs(
    std::span<const double> durations_us) const {
  double cost = 0.0;
  for (uint32_t idx : DistinctInvocations()) {
    if (idx >= durations_us.size())
      throw std::out_of_range("SamplingPlan: invocation index out of range");
    cost += durations_us[idx];
  }
  return cost;
}

double SamplingPlan::SampledCostUs(const KernelTrace& trace) const {
  double cost = 0.0;
  for (uint32_t idx : DistinctInvocations()) {
    if (idx >= trace.NumInvocations())
      throw std::out_of_range("SamplingPlan: invocation index out of range");
    cost += trace.At(idx).duration_us;
  }
  return cost;
}

double SamplingPlan::TotalWeight() const {
  double total = 0.0;
  for (const SampleEntry& e : entries) total += e.weight;
  return total;
}

uint64_t SamplingPlan::ApproxBytes() const {
  return sizeof(*this) + method.size() +
         entries.size() * sizeof(SampleEntry);
}

void SamplingPlan::Validate(size_t num_invocations) const {
  for (const SampleEntry& e : entries) {
    if (e.invocation >= num_invocations)
      throw std::out_of_range("SamplingPlan: invocation index out of range");
    if (e.weight <= 0.0)
      throw std::out_of_range("SamplingPlan: non-positive weight");
  }
}

}  // namespace stemroot::core
