#include "core/kkt.h"

#include <cmath>
#include <stdexcept>

#include "common/telemetry.h"
#include "common/trace_events.h"

namespace stemroot::core {

namespace {

/// Fill the theoretical error + cost of a finished solution.
void Finish(std::span<const ClusterStats> clusters, const StemConfig& config,
            KktSolution& solution) {
  solution.cost_us = SampleCost(clusters, solution.sample_sizes);
  // Exhaustive clusters (m_i == N_i) contribute zero estimation variance;
  // build the adjusted stats for error reporting.
  double variance = 0.0;
  double total_mean = 0.0;
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterStats& c = clusters[i];
    if (c.n == 0) continue;
    const double big_n = static_cast<double>(c.n);
    total_mean += big_n * c.mean;
    if (solution.sample_sizes[i] >= c.n) continue;  // exhaustive
    variance += big_n * big_n * c.stddev * c.stddev /
                static_cast<double>(solution.sample_sizes[i]);
  }
  solution.theoretical_error =
      total_mean > 0.0 ? config.Z() * std::sqrt(variance) / total_mean : 0.0;
}

}  // namespace

KktSolution SolveKkt(std::span<const ClusterStats> clusters,
                     const StemConfig& config) {
  config.Validate();
  telemetry::Count("core.kkt.solves");
  trace_events::Scope solve_scope("kkt.solve");
  KktSolution solution;
  solution.sample_sizes.assign(clusters.size(), 0);

  double total_mean = 0.0;  // sum N_i mu_i over non-empty clusters
  for (const ClusterStats& c : clusters) {
    if (c.n == 0) continue;
    if (c.mean <= 0.0)
      throw std::invalid_argument("SolveKkt: non-positive cluster mean");
    total_mean += static_cast<double>(c.n) * c.mean;
  }
  if (total_mean <= 0.0) return solution;

  const double z = config.Z();
  const double budget = std::pow(config.epsilon * total_mean / z, 2.0);

  // Clusters currently in the interior of the feasible region. Clusters
  // leave the active set when their closed-form m_i reaches the population
  // size (exhaustive) -- their variance term vanishes and the remaining
  // budget is re-split among the rest.
  std::vector<size_t> active;
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterStats& c = clusters[i];
    if (c.n == 0) continue;
    if (c.stddev <= 0.0) {
      // Degenerate cluster: its mean is exact after min_samples draws.
      solution.sample_sizes[i] =
          std::min<uint64_t>(config.min_samples, c.n);
    } else {
      active.push_back(i);
    }
  }

  while (!active.empty()) {
    telemetry::Count("core.kkt.clamp_rounds");
    trace_events::Instant("kkt.clamp_round");
    // Closed form over the active set: m_i = (sum_j sqrt(a_j b_j) / c)
    // * sqrt(b_i / a_i), a_i = mu_i, b_i = N_i^2 sigma_i^2.
    double lagrange_sum = 0.0;  // sum_j sqrt(a_j b_j)
    for (size_t i : active) {
      const ClusterStats& c = clusters[i];
      const double b = std::pow(static_cast<double>(c.n) * c.stddev, 2.0);
      lagrange_sum += std::sqrt(c.mean * b);
    }
    // Clamp at most the WORST violator per iteration: removing one
    // exhaustive cluster shrinks the remaining clusters' optimal sizes,
    // so clamping all violators against a stale multiplier over-clamps.
    ptrdiff_t worst = -1;
    double worst_ratio = 1.0;
    for (size_t i : active) {
      const ClusterStats& c = clusters[i];
      const double b = std::pow(static_cast<double>(c.n) * c.stddev, 2.0);
      const double m_real = lagrange_sum / budget * std::sqrt(b / c.mean);
      uint64_t m = static_cast<uint64_t>(std::ceil(m_real));
      m = std::max(m, config.min_samples);
      solution.sample_sizes[i] = m;
      const double ratio = m_real / static_cast<double>(c.n);
      if (m >= c.n && ratio >= worst_ratio) {
        worst_ratio = ratio;
        worst = static_cast<ptrdiff_t>(i);
      }
    }
    if (worst < 0) break;  // interior solution: done
    solution.sample_sizes[static_cast<size_t>(worst)] =
        clusters[static_cast<size_t>(worst)].n;
    std::erase(active, static_cast<size_t>(worst));
  }

  Finish(clusters, config, solution);
  return solution;
}

KktSolution SolvePerCluster(std::span<const ClusterStats> clusters,
                            const StemConfig& config) {
  config.Validate();
  telemetry::Count("core.kkt.per_cluster_solves");
  KktSolution solution;
  solution.sample_sizes.reserve(clusters.size());
  for (const ClusterStats& c : clusters)
    solution.sample_sizes.push_back(SingleClusterSampleSize(c, config));
  Finish(clusters, config, solution);
  return solution;
}

}  // namespace stemroot::core
