/// \file
/// Name -> factory registry for samplers, replacing the CLI's if-chain so
/// every front end (CLI, benches, tests, future services) builds samplers
/// the same way and unknown-method errors can list what is available.
///
/// Factories take a SamplerParams bag -- a small string map with typed
/// getters, shaped like common/flags.h but decoupled from argv parsing so
/// library code can use it too. The registry is created with "stem"
/// registered; the baseline samplers add themselves via
/// baselines::EnsureBuiltinSamplers() (core cannot depend on baselines).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sampler.h"

namespace stemroot::core {

/// Flags-like parameter map for sampler factories. Values are stored as
/// strings; typed getters parse with the same strictness as Flags and
/// throw std::invalid_argument on malformed values.
class SamplerParams {
 public:
  SamplerParams() = default;

  SamplerParams& Set(const std::string& key, const std::string& value);
  SamplerParams& Set(const std::string& key, const char* value);
  SamplerParams& Set(const std::string& key, double value);
  SamplerParams& Set(const std::string& key, int64_t value);
  SamplerParams& Set(const std::string& key, bool value);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Thread-safe name -> sampler factory registry.
class SamplerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Sampler>(const SamplerParams&)>;

  /// The process-wide registry; pre-registers "stem" on first use.
  static SamplerRegistry& Global();

  SamplerRegistry() = default;
  SamplerRegistry(const SamplerRegistry&) = delete;
  SamplerRegistry& operator=(const SamplerRegistry&) = delete;

  /// Register a factory under a unique lowercase name; throws
  /// std::invalid_argument on duplicates (register once).
  void Register(const std::string& name, Factory factory);

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Build a sampler. Unknown names throw std::invalid_argument whose
  /// message lists every registered name (the CLI surfaces it verbatim).
  std::unique_ptr<Sampler> Create(const std::string& name,
                                  const SamplerParams& params = {}) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace stemroot::core
