#include "core/streaming_root.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kkt.h"
#include "core/kmeans.h"

namespace stemroot::core {

void StreamingRootConfig::Validate() const {
  root.Validate();
  if (reservoir_capacity < 8)
    throw std::invalid_argument(
        "StreamingRootConfig: reservoir_capacity must be >= 8");
  if (min_split_observations < 2)
    throw std::invalid_argument(
        "StreamingRootConfig: min_split_observations must be >= 2");
  if (reassess_interval == 0)
    throw std::invalid_argument(
        "StreamingRootConfig: reassess_interval must be >= 1");
  if (max_clusters == 0)
    throw std::invalid_argument(
        "StreamingRootConfig: max_clusters must be >= 1");
}

ClusterStats StreamingRoot::Cluster::PopulationStats() const {
  ClusterStats out;
  out.n = stats.Count();
  out.mean = stats.Mean();
  out.stddev = stats.Stddev();
  return out;
}

StreamingRoot::StreamingRoot(const StreamingRootConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  config_.Validate();
}

StreamingRoot::Cluster StreamingRoot::MakeCluster() {
  Cluster cluster;
  // Monotone uids keep reservoir streams unique across splits/merges: a
  // cluster born later (even at the same center) draws differently.
  cluster.rng = Rng(DeriveSeed(seed_, next_cluster_uid_++));
  return cluster;
}

void StreamingRoot::ObserveInto(Cluster& cluster, double duration_us) {
  cluster.stats.Add(duration_us);
  ++cluster.reservoir_seen;
  if (cluster.reservoir.size() < config_.reservoir_capacity) {
    cluster.reservoir.push_back(duration_us);
  } else {
    // Algorithm R: replace a random slot with probability cap/seen, so the
    // reservoir stays a uniform sample of everything this cluster saw.
    const uint64_t j = cluster.rng.NextBounded(cluster.reservoir_seen);
    if (j < cluster.reservoir.size())
      cluster.reservoir[static_cast<size_t>(j)] = duration_us;
  }
}

void StreamingRoot::Observe(double duration_us) {
  if (!(duration_us > 0.0))
    throw std::invalid_argument(
        "StreamingRoot::Observe: duration must be positive (profiled)");
  ++observations_;
  if (clusters_.empty()) {
    clusters_.push_back(MakeCluster());
    ObserveInto(clusters_.front(), duration_us);
    return;
  }
  // Nearest center by running mean. Clusters are kept sorted by center, so
  // a binary search would do; populations hold a handful of clusters and
  // the linear scan is branch-predictable.
  size_t best = 0;
  double best_distance = std::abs(duration_us - clusters_[0].Center());
  for (size_t i = 1; i < clusters_.size(); ++i) {
    const double distance = std::abs(duration_us - clusters_[i].Center());
    if (distance < best_distance) {
      best = i;
      best_distance = distance;
    }
  }
  ObserveInto(clusters_[best], duration_us);
  if (++since_reassess_ >= config_.reassess_interval) {
    since_reassess_ = 0;
    Reassess();
  }
}

void StreamingRoot::Reassess() {
  // Split pass: examine each current cluster once (newly created children
  // wait for the next pass -- their stats are still the parent's guess).
  const size_t current = clusters_.size();
  size_t index = 0;
  for (size_t examined = 0; examined < current && index < clusters_.size();
       ++examined) {
    if (!TrySplit(index)) ++index;
    // On a split, the two children replace the parent at `index`; skip
    // both (they inherit a freshly partitioned reservoir).
    else index += 2;
  }
  TryMerges();
  std::sort(clusters_.begin(), clusters_.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.Center() < b.Center();
            });
}

bool StreamingRoot::TrySplit(size_t index) {
  Cluster& cluster = clusters_[index];
  const ClusterStats parent = cluster.PopulationStats();
  if (clusters_.size() >= config_.max_clusters) return false;
  if (cluster.reservoir.size() < config_.min_split_observations) return false;
  if (parent.n < config_.root.min_split_size) return false;
  if (parent.stddev <= 0.0) return false;

  const KmeansResult split = Kmeans1D(cluster.reservoir, 2);
  std::vector<double> low, high;
  low.reserve(cluster.reservoir.size());
  for (size_t i = 0; i < cluster.reservoir.size(); ++i)
    (split.assignment[i] == 0 ? low : high).push_back(cluster.reservoir[i]);
  if (low.empty() || high.empty()) return false;
  if (split.centers[0] > split.centers[1]) std::swap(low, high);

  // Scale reservoir-sample stats up to the full population: child sizes
  // proportional to the reservoir partition, remainders to the low child.
  const double fraction =
      static_cast<double>(low.size()) /
      static_cast<double>(cluster.reservoir.size());
  const uint64_t n_low = std::min<uint64_t>(
      parent.n - 1,
      std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(fraction * static_cast<double>(parent.n)))));
  const uint64_t n_high = parent.n - n_low;

  ClusterStats stats_low = ClusterStats::Of(low);
  ClusterStats stats_high = ClusterStats::Of(high);
  stats_low.n = n_low;
  stats_high.n = n_high;

  // Batch ROOT's acceptance rule (Eq. 7 vs Eq. 8) on the scaled children.
  const uint64_t m_old = SingleClusterSampleSize(parent, config_.root.stem);
  const double tau_old = static_cast<double>(m_old) * parent.mean;
  const ClusterStats children[] = {stats_low, stats_high};
  const double tau_new = SolveKkt(children, config_.root.stem).cost_us;
  if (tau_new >= tau_old) return false;

  // Rebuild the two children with Welford state synthesized from the
  // scaled sample stats; ranges come from the reservoir partitions.
  const auto [low_min, low_max] = std::minmax_element(low.begin(), low.end());
  const auto [high_min, high_max] =
      std::minmax_element(high.begin(), high.end());
  Cluster child_low = MakeCluster();
  Cluster child_high = MakeCluster();
  child_low.stats = StreamingStats::FromMoments(
      n_low, stats_low.mean, stats_low.stddev * stats_low.stddev, *low_min,
      *low_max);
  child_high.stats = StreamingStats::FromMoments(
      n_high, stats_high.mean, stats_high.stddev * stats_high.stddev,
      *high_min, *high_max);
  child_low.reservoir = std::move(low);
  child_high.reservoir = std::move(high);
  child_low.reservoir_seen = n_low;
  child_high.reservoir_seen = n_high;

  clusters_[index] = std::move(child_low);
  clusters_.insert(clusters_.begin() + static_cast<ptrdiff_t>(index) + 1,
                   std::move(child_high));
  ++splits_;
  return true;
}

void StreamingRoot::TryMerges() {
  if (clusters_.size() < 2) return;
  std::sort(clusters_.begin(), clusters_.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.Center() < b.Center();
            });
  for (size_t i = 0; i + 1 < clusters_.size();) {
    const ClusterStats a = clusters_[i].PopulationStats();
    const ClusterStats b = clusters_[i + 1].PopulationStats();
    if (a.n == 0 || b.n == 0) {
      ++i;
      continue;
    }
    StreamingStats merged_stats = clusters_[i].stats;
    merged_stats.Merge(clusters_[i + 1].stats);
    ClusterStats merged;
    merged.n = merged_stats.Count();
    merged.mean = merged_stats.Mean();
    merged.stddev = merged_stats.Stddev();

    // Inverse of the split rule: keep the pair separate only while the
    // KKT-sized pair predicts a strictly cheaper simulation than the
    // Eq. 3-sized union.
    const uint64_t m_merged =
        SingleClusterSampleSize(merged, config_.root.stem);
    const double tau_merged = static_cast<double>(m_merged) * merged.mean;
    const ClusterStats pair[] = {a, b};
    const double tau_pair = SolveKkt(pair, config_.root.stem).cost_us;
    if (tau_pair < tau_merged) {
      ++i;
      continue;
    }

    Cluster union_cluster = MakeCluster();
    union_cluster.stats = merged_stats;
    union_cluster.reservoir = std::move(clusters_[i].reservoir);
    union_cluster.reservoir.insert(union_cluster.reservoir.end(),
                                   clusters_[i + 1].reservoir.begin(),
                                   clusters_[i + 1].reservoir.end());
    // Downsample deterministically back to capacity (partial Fisher-Yates
    // keeps the kept prefix a uniform sample of the union).
    if (union_cluster.reservoir.size() > config_.reservoir_capacity) {
      std::vector<double>& r = union_cluster.reservoir;
      for (size_t k = 0; k < config_.reservoir_capacity; ++k) {
        const uint64_t pick =
            k + union_cluster.rng.NextBounded(r.size() - k);
        std::swap(r[k], r[static_cast<size_t>(pick)]);
      }
      r.resize(config_.reservoir_capacity);
    }
    union_cluster.reservoir_seen = merged.n;
    clusters_[i] = std::move(union_cluster);
    clusters_.erase(clusters_.begin() + static_cast<ptrdiff_t>(i) + 1);
    ++merges_;
    // Re-examine the union against its new right neighbour.
  }
}

std::vector<ClusterStats> StreamingRoot::Stats() const {
  std::vector<ClusterStats> out;
  out.reserve(clusters_.size());
  for (const Cluster& cluster : clusters_)
    out.push_back(cluster.PopulationStats());
  std::sort(out.begin(), out.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              return a.mean < b.mean;
            });
  return out;
}

StreamingTraceClusterer::StreamingTraceClusterer(
    const StreamingRootConfig& config, const KernelTrace& header,
    uint64_t seed) {
  roots_.reserve(header.NumKernelTypes());
  for (uint32_t k = 0; k < header.NumKernelTypes(); ++k)
    roots_.emplace_back(config, DeriveSeed(seed, k));
}

void StreamingTraceClusterer::ObserveChunk(
    std::span<const KernelInvocation> chunk) {
  for (const KernelInvocation& inv : chunk) {
    if (inv.duration_us <= 0.0) continue;
    roots_.at(inv.kernel_id).Observe(inv.duration_us);
    ++observations_;
  }
}

size_t StreamingTraceClusterer::TotalClusters() const {
  size_t total = 0;
  for (const StreamingRoot& root : roots_) total += root.NumClusters();
  return total;
}

uint64_t StreamingTraceClusterer::TotalSplits() const {
  uint64_t total = 0;
  for (const StreamingRoot& root : roots_) total += root.NumSplits();
  return total;
}

uint64_t StreamingTraceClusterer::TotalMerges() const {
  uint64_t total = 0;
  for (const StreamingRoot& root : roots_) total += root.NumMerges();
  return total;
}

std::vector<ClusterStats> StreamingTraceClusterer::AllStats() const {
  std::vector<ClusterStats> out;
  for (const StreamingRoot& root : roots_) {
    // Skip kernels that never observed a duration (zero clusters or a
    // single empty seed cluster contributes nothing).
    for (const ClusterStats& s : root.Stats())
      if (s.n > 0) out.push_back(s);
  }
  return out;
}

}  // namespace stemroot::core
