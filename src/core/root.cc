#include "core/root.h"

#include <numeric>
#include <stdexcept>

#include "common/telemetry.h"
#include "common/trace_events.h"
#include "core/kkt.h"
#include "core/kmeans.h"

namespace stemroot::core {

void RootConfig::Validate() const {
  stem.Validate();
  if (branch_k < 2)
    throw std::invalid_argument("RootConfig: branch_k must be >= 2");
  if (min_split_size < 2)
    throw std::invalid_argument("RootConfig: min_split_size must be >= 2");
  if (max_depth == 0)
    throw std::invalid_argument("RootConfig: max_depth must be >= 1");
}

namespace {

/// Recursive worker. `values` are the durations of `members` (parallel
/// arrays). Appends final clusters to `out`.
void Recurse(std::vector<double> values, std::vector<uint32_t> members,
             uint32_t depth, const RootConfig& config,
             std::vector<RootCluster>& out) {
  // Nested begin/end pairs make the split tree's shape visible in a
  // `--trace` timeline: stack depth == recursion depth.
  trace_events::Scope recurse_scope("root.recurse");
  RootCluster cluster;
  cluster.stats = ClusterStats::Of(values);
  cluster.depth = depth;

  const bool splittable = values.size() >= config.min_split_size &&
                          depth < config.max_depth &&
                          cluster.stats.stddev > 0.0;
  if (!splittable) {
    telemetry::Count("core.root.clusters");
    telemetry::Record("core.root.cluster_size",
                      static_cast<double>(values.size()));
    telemetry::Record("core.root.cluster_depth", static_cast<double>(depth));
    cluster.members = std::move(members);
    out.push_back(std::move(cluster));
    return;
  }

  // Try a k-way split (Eq. 7 vs Eq. 8).
  const KmeansResult split = Kmeans1D(values, config.branch_k);
  std::vector<std::vector<double>> child_values(config.branch_k);
  std::vector<std::vector<uint32_t>> child_members(config.branch_k);
  for (size_t i = 0; i < values.size(); ++i) {
    child_values[split.assignment[i]].push_back(values[i]);
    child_members[split.assignment[i]].push_back(members[i]);
  }

  bool degenerate = false;
  std::vector<ClusterStats> child_stats;
  for (uint32_t c = 0; c < config.branch_k; ++c) {
    if (child_values[c].empty()) {
      degenerate = true;  // fewer distinct values than branch_k
      break;
    }
    child_stats.push_back(ClusterStats::Of(child_values[c]));
  }

  if (!degenerate) {
    const uint64_t m_old = SingleClusterSampleSize(cluster.stats,
                                                   config.stem);
    const double tau_old = static_cast<double>(m_old) * cluster.stats.mean;
    const double tau_new = SolveKkt(child_stats, config.stem).cost_us;
    if (tau_new < tau_old) {
      telemetry::Count("core.root.splits");
      for (uint32_t c = 0; c < config.branch_k; ++c)
        Recurse(std::move(child_values[c]), std::move(child_members[c]),
                depth + 1, config, out);
      return;
    }
  }

  telemetry::Count("core.root.split_rejects");
  telemetry::Count("core.root.clusters");
  telemetry::Record("core.root.cluster_size",
                    static_cast<double>(values.size()));
  telemetry::Record("core.root.cluster_depth", static_cast<double>(depth));
  cluster.members = std::move(members);
  out.push_back(std::move(cluster));
}

}  // namespace

std::vector<RootCluster> RootCluster1D(std::span<const double> durations,
                                       std::span<const uint32_t> indices,
                                       const RootConfig& config) {
  config.Validate();
  if (durations.size() != indices.size())
    throw std::invalid_argument("RootCluster1D: arity mismatch");
  std::vector<RootCluster> out;
  if (durations.empty()) return out;
  Recurse(std::vector<double>(durations.begin(), durations.end()),
          std::vector<uint32_t>(indices.begin(), indices.end()), 0, config,
          out);
  return out;
}

std::vector<RootCluster> RootCluster1D(std::span<const double> durations,
                                       const RootConfig& config) {
  std::vector<uint32_t> indices(durations.size());
  std::iota(indices.begin(), indices.end(), 0u);
  return RootCluster1D(durations, indices, config);
}

}  // namespace stemroot::core
