#include "core/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/telemetry.h"
#include "common/trace_events.h"

namespace stemroot::core {

KmeansResult Kmeans1D(std::span<const double> values, uint32_t k,
                      uint32_t max_iters) {
  if (k == 0) throw std::invalid_argument("Kmeans1D: k == 0");
  if (values.empty()) throw std::invalid_argument("Kmeans1D: empty input");

  const size_t n = values.size();
  KmeansResult result;
  result.k = k;
  result.assignment.assign(n, 0);
  result.centers.resize(k);

  // Quantile seeding over a sorted copy: robust to skew, deterministic.
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t c = 0; c < k; ++c) {
    const double q = (c + 0.5) / static_cast<double>(k);
    result.centers[c] =
        sorted[std::min(n - 1, static_cast<size_t>(q * static_cast<double>(n)))];
  }

  telemetry::Count("core.kmeans.runs");
  trace_events::Scope run_scope("kmeans.run");
  std::vector<double> sums(k);
  std::vector<uint64_t> counts(k);
  for (uint32_t iter = 0; iter < max_iters; ++iter) {
    telemetry::Count("core.kmeans.iterations");
    trace_events::Instant("kmeans.iteration");
    bool moved = false;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);

    for (size_t i = 0; i < n; ++i) {
      uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (uint32_t c = 0; c < k; ++c) {
        const double d = std::abs(values[i] - result.centers[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        moved = true;
      }
      sums[best] += values[i];
      ++counts[best];
    }

    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centers[c] = sums[c] / static_cast<double>(counts[c]);
      } else {
        // Re-seed an empty cluster at the point farthest from its center.
        size_t far_idx = 0;
        double far_dist = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double d =
              std::abs(values[i] - result.centers[result.assignment[i]]);
          if (d > far_dist) {
            far_dist = d;
            far_idx = i;
          }
        }
        result.centers[c] = values[far_idx];
        moved = true;
      }
    }
    if (!moved && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = values[i] - result.centers[result.assignment[i]];
    result.inertia += d * d;
  }
  return result;
}

namespace {

double SqDist(std::span<const double> points, size_t dim, size_t i,
              std::span<const double> centers, uint32_t c) {
  double sum = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = points[i * dim + j] - centers[c * dim + j];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KmeansResult KmeansNd(std::span<const double> points, size_t dim, uint32_t k,
                      uint32_t max_iters) {
  if (k == 0) throw std::invalid_argument("KmeansNd: k == 0");
  if (dim == 0) throw std::invalid_argument("KmeansNd: dim == 0");
  if (points.empty() || points.size() % dim != 0)
    throw std::invalid_argument("KmeansNd: bad points array");
  const size_t n = points.size() / dim;

  KmeansResult result;
  result.k = k;
  result.assignment.assign(n, 0);
  result.centers.assign(static_cast<size_t>(k) * dim, 0.0);

  // Maximin seeding: first center = centroid-nearest point, then
  // iteratively the point farthest from all chosen centers.
  std::vector<double> centroid(dim, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < dim; ++j)
      centroid[j] += points[i * dim + j] / static_cast<double>(n);
  size_t first = 0;
  double first_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double d = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      const double diff = points[i * dim + j] - centroid[j];
      d += diff * diff;
    }
    if (d < first_dist) {
      first_dist = d;
      first = i;
    }
  }
  std::copy_n(points.begin() + static_cast<ptrdiff_t>(first * dim), dim,
              result.centers.begin());
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  for (uint32_t c = 1; c < k; ++c) {
    size_t far_idx = 0;
    double far_dist = -1.0;
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], SqDist(points, dim, i,
                                                 result.centers, c - 1));
      if (min_dist[i] > far_dist) {
        far_dist = min_dist[i];
        far_idx = i;
      }
    }
    std::copy_n(points.begin() + static_cast<ptrdiff_t>(far_idx * dim), dim,
                result.centers.begin() + static_cast<ptrdiff_t>(c) * dim);
  }

  telemetry::Count("core.kmeans.nd_runs");
  std::vector<double> sums(static_cast<size_t>(k) * dim);
  std::vector<uint64_t> counts(k);
  for (uint32_t iter = 0; iter < max_iters; ++iter) {
    telemetry::Count("core.kmeans.nd_iterations");
    bool moved = false;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);

    for (size_t i = 0; i < n; ++i) {
      uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (uint32_t c = 0; c < k; ++c) {
        const double d = SqDist(points, dim, i, result.centers, c);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        moved = true;
      }
      for (size_t j = 0; j < dim; ++j) sums[best * dim + j] += points[i * dim + j];
      ++counts[best];
    }

    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep previous center
      for (size_t j = 0; j < dim; ++j)
        result.centers[c * dim + j] =
            sums[c * dim + j] / static_cast<double>(counts[c]);
    }
    if (!moved && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i)
    result.inertia += SqDist(points, dim, i, result.centers,
                             result.assignment[i]);
  return result;
}

}  // namespace stemroot::core
