/// \file
/// STEM — Statistical Error Modeling for GPU simulation (paper Sec. 3.2).
///
/// Given the execution-time population of a kernel cluster (mean mu,
/// standard deviation sigma, size N), the Central Limit Theorem gives the
/// sampling distribution of the estimated total, and inverting its
/// confidence interval yields the minimal sample size with error bounded
/// by epsilon (Eq. 3):
///
///     m = ceil( (z_{1-alpha/2} / epsilon * sigma / mu)^2 )
///
/// TheoreticalError is the forward direction (Eq. 2). Multi-cluster joint
/// optimization lives in kkt.h.

#pragma once

#include <cstdint>
#include <span>

#include "common/stats.h"

namespace stemroot::core {

/// Global STEM knobs: the error bound epsilon and the confidence level
/// 1 - alpha (paper defaults: 0.05 and 0.95, z = 1.96).
struct StemConfig {
  double epsilon = 0.05;
  double confidence = 0.95;
  /// Floor on per-cluster sample sizes (>= 1; every non-empty cluster must
  /// contribute at least one representative).
  uint64_t min_samples = 1;

  /// z_{1-alpha/2} for this confidence level.
  double Z() const { return ZScore(confidence); }

  /// Validate ranges; throws std::invalid_argument.
  void Validate() const;
};

/// Execution-time population statistics of one kernel cluster.
struct ClusterStats {
  uint64_t n = 0;      ///< population size N_i = |C_i|
  double mean = 0.0;   ///< mu_i (microseconds)
  double stddev = 0.0; ///< sigma_i

  /// From a population of durations.
  static ClusterStats Of(std::span<const double> durations);

  /// Coefficient of variation sigma/mu (0 when mean is 0).
  double Cov() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Eq. (3): minimal sample size for a single cluster under the config's
/// error bound. Capped at the population size n (sampling more than the
/// population cannot be required for a bounded estimate). Returns
/// config.min_samples for degenerate (sigma == 0) clusters.
uint64_t SingleClusterSampleSize(const ClusterStats& cluster,
                                 const StemConfig& config);

/// Eq. (2): theoretical relative error (at the config's confidence level)
/// of estimating the cluster total from m samples. Throws for m == 0 or a
/// non-positive mean.
double TheoreticalError(const ClusterStats& cluster, uint64_t m,
                        const StemConfig& config);

/// Multi-cluster theoretical error (the left side of Eq. (5) folded into
/// relative form): z * sqrt(sum N_i^2 sigma_i^2 / m_i) / sum N_i mu_i.
/// Throws on arity mismatch, m_i == 0, or non-positive total mean.
double MultiClusterError(std::span<const ClusterStats> clusters,
                         std::span<const uint64_t> sample_sizes,
                         const StemConfig& config);

/// Predicted sampled-simulation cost tau = sum m_i * mu_i (microseconds):
/// the objective of Problem 1.
double SampleCost(std::span<const ClusterStats> clusters,
                  std::span<const uint64_t> sample_sizes);

}  // namespace stemroot::core
