/// \file
/// Weighted-sum extrapolation of sampled results (paper Sec. 3.1, 3.5 and
/// the microarchitectural-metric validation of Sec. 5.5).
///
/// Count-like metrics (transactions, FP ops) extrapolate as weighted sums;
/// rate-like metrics (hit rates, efficiencies, occupancy) extrapolate as
/// weighted means. The same machinery computes the full-workload reference
/// (every invocation, weight 1) for comparison.

#pragma once

#include <span>
#include <vector>

#include "core/plan.h"
#include "trace/kernel.h"

namespace stemroot::core {

/// Workload-level aggregate of the 13 microarchitectural metrics.
struct MetricAggregate {
  /// For count metrics: the extrapolated total. For rate metrics: the
  /// weighted mean. Indexed like KernelMetrics::Get.
  std::array<double, KernelMetrics::kCount> values{};

  /// Relative difference |a - b| / |b| per metric (b = reference). Rate
  /// metrics use absolute difference (they are already normalized).
  static std::array<double, KernelMetrics::kCount> RelativeError(
      const MetricAggregate& estimate, const MetricAggregate& reference);
};

/// Aggregate over a sampled plan: per_invocation[i] are the metrics of
/// trace invocation i. Throws std::out_of_range on bad plan indices.
MetricAggregate AggregateSampled(const SamplingPlan& plan,
                                 std::span<const KernelMetrics> per_invocation);

/// Aggregate over the full workload (weight 1 everywhere).
MetricAggregate AggregateFull(std::span<const KernelMetrics> per_invocation);

}  // namespace stemroot::core
