/// \file
/// Sampling plans: the output every sampler produces and every evaluator
/// consumes (paper Fig. 5's "sampling information").
///
/// A plan is a list of (invocation index, weight) entries. The weight is
/// the number of workload invocations the sample represents; estimating
/// any total quantity is then the weighted sum over entries (Sec. 3.1,
/// 3.5). Sampling with replacement may repeat an index; the repeated entry
/// carries its own weight, while simulation cost counts each distinct
/// invocation once (a simulator caches repeated kernels).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace stemroot::core {

/// One sampled invocation and the population mass it represents.
struct SampleEntry {
  uint32_t invocation = 0;  ///< index into the trace timeline
  double weight = 1.0;      ///< invocations represented (N_i / m_i)
};

/// A complete sampling decision for one workload.
struct SamplingPlan {
  std::string method;                ///< sampler name, for reporting
  std::vector<SampleEntry> entries;
  /// Diagnostics filled by the sampler when available.
  size_t num_clusters = 0;
  double theoretical_error = 0.0;    ///< STEM bound; 0 if not applicable

  size_t NumSamples() const { return entries.size(); }

  /// Distinct invocation indices, sorted (simulation work list).
  std::vector<uint32_t> DistinctInvocations() const;

  /// Weighted-sum estimate of the total execution time given a duration
  /// per invocation (microseconds). Throws if an entry is out of range.
  double EstimateTotalUs(std::span<const double> durations_us) const;

  /// Same, reading durations from the trace.
  double EstimateTotalUs(const KernelTrace& trace) const;

  /// Cost of the sampled simulation: sum of durations over *distinct*
  /// sampled invocations (microseconds).
  double SampledCostUs(std::span<const double> durations_us) const;
  double SampledCostUs(const KernelTrace& trace) const;

  /// Total represented mass (should approximate the workload size).
  double TotalWeight() const;

  /// Validate entries against a trace size; throws std::out_of_range.
  void Validate(size_t num_invocations) const;

  /// Logical size of this plan in bytes (entry vector + method name),
  /// from element counts only — deterministic for a given (trace, seed),
  /// the "plan" category of resource::AccountPeak (DESIGN.md §15).
  uint64_t ApproxBytes() const;
};

}  // namespace stemroot::core
