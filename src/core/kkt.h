/// \file
/// Joint multi-cluster sample-size optimization (paper Sec. 3.3, Problem 1).
///
/// minimize   tau = sum_i m_i mu_i
/// subject to sum_i N_i^2 sigma_i^2 / m_i <= (epsilon sum_i N_i mu_i / z)^2
///
/// The KKT conditions give the closed form (paper Eq. 6 / Appendix 9.1,
/// with a_i = mu_i, b_i = N_i^2 sigma_i^2, c the error budget):
///
///     m_i = (sum_j sqrt(a_j b_j) / c) * sqrt(b_i / a_i)
///
/// On top of the closed form we handle the integer/boundary cases the
/// paper ceils away: per-cluster floors (every cluster needs >= 1 sample
/// to measure its mean), and clusters whose optimal m_i reaches the
/// population size (we then simulate the cluster exhaustively -- zero
/// variance contribution -- and re-solve for the rest, which only tightens
/// the bound).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stem.h"

namespace stemroot::core {

/// Result of the joint optimization.
struct KktSolution {
  /// Per-cluster sample sizes, index-aligned with the input. A value equal
  /// to the cluster's population size means "simulate exhaustively".
  std::vector<uint64_t> sample_sizes;
  /// Objective value tau = sum m_i mu_i (microseconds).
  double cost_us = 0.0;
  /// Theoretical error of the solution (<= epsilon by construction unless
  /// every cluster is exhaustive, in which case it is 0).
  double theoretical_error = 0.0;
};

/// Solve Problem 1 for a set of clusters. Empty clusters get m = 0;
/// degenerate (sigma == 0) clusters get the floor. Throws
/// std::invalid_argument on non-positive means of non-empty clusters.
KktSolution SolveKkt(std::span<const ClusterStats> clusters,
                     const StemConfig& config);

/// Independent per-cluster sizing via Eq. (3) -- the naive alternative the
/// paper compares against ("imposes strict error bounds on every cluster,
/// often resulting in a larger total sample size"). Used by the
/// ablation_kkt bench to reproduce the claimed 2-3x reduction.
KktSolution SolvePerCluster(std::span<const ClusterStats> clusters,
                            const StemConfig& config);

}  // namespace stemroot::core
