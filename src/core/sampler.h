/// \file
/// Sampler interface + the STEM+ROOT sampler (the paper's contribution).
///
/// Pipeline (paper Fig. 3/5): group invocations by kernel name -> ROOT
/// hierarchically clusters each name's execution-time population -> STEM's
/// joint KKT solver sizes samples across ALL final clusters at once
/// (Sec. 3.3 optimizes across clusters from different kernels as well as
/// peaks of the same kernel) -> random sampling with replacement inside
/// each cluster (i.i.d. for the CLT, Sec. 3.5), weighting each draw by
/// N_i / m_i.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/plan.h"
#include "core/root.h"
#include "trace/trace.h"

namespace stemroot::core {

/// Abstract kernel-level sampler. Implementations: StemRootSampler here,
/// plus the baselines in src/baselines (PKA, Sieve, Photon, Random).
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Display name used in reports ("STEM", "PKA", ...).
  virtual std::string Name() const = 0;

  /// True when BuildPlan ignores the seed (first-chronological selection);
  /// evaluators then skip repeated runs.
  virtual bool Deterministic() const { return false; }

  /// Build a sampling plan for a profiled trace (durations must be
  /// filled). `seed` feeds any randomized choices so repeated experiment
  /// runs (the paper averages 10) differ.
  virtual SamplingPlan BuildPlan(const KernelTrace& trace,
                                 uint64_t seed) const = 0;
};

/// STEM+ROOT configuration.
struct StemRootConfig {
  RootConfig root;  ///< includes the StemConfig (epsilon, confidence)
};

/// The clustering front half of STEM+ROOT (steps 1+2: group by kernel
/// name, ROOT-cluster each group), shared by StemRootSampler::BuildPlan
/// and the error-budget audit (eval/audit.h) so both always see the same
/// partition.
struct StemClustering {
  /// Final clusters over the whole trace; members index the timeline.
  std::vector<RootCluster> clusters;
  /// Kernel id of each cluster, index-aligned with `clusters`.
  std::vector<uint32_t> kernel_ids;
};

/// Deterministic for a given (trace, config): ROOT clustering draws no
/// randomness. Throws std::invalid_argument on an empty or unprofiled
/// trace. Runs inside the "cluster" telemetry span.
StemClustering BuildStemClusters(const KernelTrace& trace,
                                 const RootConfig& config);

/// The proposed sampler.
class StemRootSampler : public Sampler {
 public:
  explicit StemRootSampler(StemRootConfig config = {});

  std::string Name() const override { return "STEM"; }
  SamplingPlan BuildPlan(const KernelTrace& trace,
                         uint64_t seed) const override;

  const StemRootConfig& Config() const { return config_; }

 private:
  StemRootConfig config_;
};

}  // namespace stemroot::core
