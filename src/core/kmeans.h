/// \file
/// k-means clustering: a fast 1-D specialization (ROOT clusters on scalar
/// execution times) and a general d-dimensional version (PKA clusters on
/// 12-dimensional feature vectors).
///
/// Both use deterministic quantile/maximin seeding and Lloyd iterations,
/// so results are reproducible without an RNG.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stemroot::core {

/// Assignment + centers of one clustering.
struct KmeansResult {
  std::vector<uint32_t> assignment;  ///< per-point cluster index in [0, k)
  std::vector<double> centers;       ///< 1-D: k centers; d-D: k*d row-major
  uint32_t k = 0;
  double inertia = 0.0;  ///< sum of squared distances to assigned centers
};

/// 1-D k-means over scalar values. Deterministic: centers seeded at the
/// (i + 0.5)/k quantiles. Empty clusters are re-seeded at the point
/// farthest from its center. Throws for k == 0 or empty input; if the
/// input has fewer distinct values than k the result may have empty
/// clusters (callers must check).
KmeansResult Kmeans1D(std::span<const double> values, uint32_t k,
                      uint32_t max_iters = 50);

/// General d-dimensional k-means (row-major points, n x d). Deterministic
/// maximin ("farthest point") seeding from the data centroid.
KmeansResult KmeansNd(std::span<const double> points, size_t dim, uint32_t k,
                      uint32_t max_iters = 50);

}  // namespace stemroot::core
