#include "core/sampler.h"

#include <stdexcept>

#include "common/rng.h"
#include "common/telemetry.h"
#include "core/kkt.h"

namespace stemroot::core {

StemRootSampler::StemRootSampler(StemRootConfig config)
    : config_(std::move(config)) {
  config_.root.Validate();
}

SamplingPlan StemRootSampler::BuildPlan(const KernelTrace& trace,
                                        uint64_t seed) const {
  if (trace.Empty())
    throw std::invalid_argument("StemRootSampler: empty trace");

  // Step 1+2: group by kernel name, ROOT-cluster each group. This is the
  // "cluster" stage of the pipeline's telemetry.
  std::vector<RootCluster> clusters;
  {
    telemetry::Span cluster_span("cluster");
    for (const auto& group : trace.GroupByKernel()) {
      if (group.empty()) continue;
      std::vector<double> durations;
      durations.reserve(group.size());
      for (uint32_t idx : group) {
        const double d = trace.At(idx).duration_us;
        if (d <= 0.0)
          throw std::invalid_argument(
              "StemRootSampler: trace has unprofiled (non-positive) "
              "durations");
        durations.push_back(d);
      }
      auto kernel_clusters = RootCluster1D(durations, group, config_.root);
      for (auto& c : kernel_clusters) clusters.push_back(std::move(c));
    }
  }
  telemetry::Count("core.stem.plans");
  telemetry::Record("core.stem.clusters_per_plan",
                    static_cast<double>(clusters.size()));

  // Step 3: joint sample sizing across every final cluster (Eq. 6).
  std::vector<ClusterStats> stats;
  stats.reserve(clusters.size());
  for (const RootCluster& c : clusters) stats.push_back(c.stats);
  const KktSolution solution = SolveKkt(stats, config_.root.stem);
  for (uint64_t m : solution.sample_sizes)
    telemetry::Record("core.stem.samples_per_cluster",
                      static_cast<double>(m));
  telemetry::Record("core.stem.theoretical_error",
                    solution.theoretical_error);

  // Step 4: random sampling with replacement inside each cluster.
  SamplingPlan plan;
  plan.method = Name();
  plan.num_clusters = clusters.size();
  plan.theoretical_error = solution.theoretical_error;
  Rng rng(DeriveSeed(seed, 0x57454D21ULL));
  for (size_t i = 0; i < clusters.size(); ++i) {
    const RootCluster& cluster = clusters[i];
    const uint64_t m = solution.sample_sizes[i];
    const uint64_t n = cluster.members.size();
    if (m == 0 || n == 0) continue;
    if (m >= n) {
      // Exhaustive cluster: simulate every member with weight 1.
      for (uint32_t idx : cluster.members)
        plan.entries.push_back({idx, 1.0});
      continue;
    }
    const double weight =
        static_cast<double>(n) / static_cast<double>(m);
    for (uint64_t draw = 0; draw < m; ++draw) {
      const uint32_t idx =
          cluster.members[rng.NextBounded(n)];
      plan.entries.push_back({idx, weight});
    }
  }
  return plan;
}

}  // namespace stemroot::core
