#include "core/sampler.h"

#include <stdexcept>

#include "common/resource.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace_events.h"
#include "core/kkt.h"

namespace stemroot::core {

StemClustering BuildStemClusters(const KernelTrace& trace,
                                 const RootConfig& config) {
  if (trace.Empty())
    throw std::invalid_argument("BuildStemClusters: empty trace");

  // This is the "cluster" stage of the pipeline's telemetry.
  StemClustering out;
  telemetry::Span cluster_span("cluster");
  const auto groups = trace.GroupByKernel();
  for (uint32_t kernel_id = 0; kernel_id < groups.size(); ++kernel_id) {
    const auto& group = groups[kernel_id];
    if (group.empty()) continue;
    std::vector<double> durations;
    durations.reserve(group.size());
    for (uint32_t idx : group) {
      const double d = trace.At(idx).duration_us;
      if (d <= 0.0)
        throw std::invalid_argument(
            "BuildStemClusters: trace has unprofiled (non-positive) "
            "durations");
      durations.push_back(d);
    }
    auto kernel_clusters = RootCluster1D(durations, group, config);
    for (auto& c : kernel_clusters) {
      out.clusters.push_back(std::move(c));
      out.kernel_ids.push_back(kernel_id);
    }
  }
  trace_events::CounterValue("stem.clusters",
                             static_cast<double>(out.clusters.size()));
  if (resource::AccountingEnabled()) {
    // Transient per-call state: the clustering is a pure function of the
    // trace, so this byte count is deterministic and max() over
    // concurrent reps is schedule-invariant.
    uint64_t bytes = out.kernel_ids.size() * sizeof(uint32_t);
    for (const RootCluster& c : out.clusters)
      bytes += sizeof(RootCluster) + c.members.size() * sizeof(uint32_t);
    resource::AccountPeak("root", bytes);
  }
  return out;
}

StemRootSampler::StemRootSampler(StemRootConfig config)
    : config_(std::move(config)) {
  config_.root.Validate();
}

SamplingPlan StemRootSampler::BuildPlan(const KernelTrace& trace,
                                        uint64_t seed) const {
  const std::vector<RootCluster> clusters =
      BuildStemClusters(trace, config_.root).clusters;
  telemetry::Count("core.stem.plans");
  telemetry::Record("core.stem.clusters_per_plan",
                    static_cast<double>(clusters.size()));

  // Step 3: joint sample sizing across every final cluster (Eq. 6).
  std::vector<ClusterStats> stats;
  stats.reserve(clusters.size());
  for (const RootCluster& c : clusters) stats.push_back(c.stats);
  const KktSolution solution = SolveKkt(stats, config_.root.stem);
  for (uint64_t m : solution.sample_sizes)
    telemetry::Record("core.stem.samples_per_cluster",
                      static_cast<double>(m));
  telemetry::Record("core.stem.theoretical_error",
                    solution.theoretical_error);

  // Step 4: random sampling with replacement inside each cluster.
  SamplingPlan plan;
  plan.method = Name();
  plan.num_clusters = clusters.size();
  plan.theoretical_error = solution.theoretical_error;
  Rng rng(DeriveSeed(seed, 0x57454D21ULL));
  for (size_t i = 0; i < clusters.size(); ++i) {
    const RootCluster& cluster = clusters[i];
    const uint64_t m = solution.sample_sizes[i];
    const uint64_t n = cluster.members.size();
    if (m == 0 || n == 0) continue;
    if (m >= n) {
      // Exhaustive cluster: simulate every member with weight 1.
      for (uint32_t idx : cluster.members)
        plan.entries.push_back({idx, 1.0});
      continue;
    }
    const double weight =
        static_cast<double>(n) / static_cast<double>(m);
    for (uint64_t draw = 0; draw < m; ++draw) {
      const uint32_t idx =
          cluster.members[rng.NextBounded(n)];
      plan.entries.push_back({idx, weight});
    }
  }
  return plan;
}

}  // namespace stemroot::core
