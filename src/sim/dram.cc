#include "sim/dram.h"

#include <algorithm>
#include <stdexcept>

namespace stemroot::sim {

DramModel::DramModel(double bytes_per_cycle, uint32_t latency_cycles)
    : bytes_per_cycle_(bytes_per_cycle), latency_cycles_(latency_cycles) {
  if (bytes_per_cycle <= 0.0)
    throw std::invalid_argument("DramModel: bytes_per_cycle <= 0");
}

double DramModel::Request(double now, uint32_t bytes) {
  const double start = std::max(now, bus_free_);
  const double transfer = static_cast<double>(bytes) / bytes_per_cycle_;
  bus_free_ = start + transfer;
  bytes_transferred_ += bytes;
  busy_cycles_ += transfer;
  return bus_free_ + static_cast<double>(latency_cycles_);
}

void DramModel::Reset() {
  bus_free_ = 0.0;
  bytes_transferred_ = 0;
  busy_cycles_ = 0.0;
}

}  // namespace stemroot::sim
