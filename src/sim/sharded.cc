#include "sim/sharded.h"

#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/parallel.h"
#include "common/resource.h"
#include "common/telemetry.h"
#include "sim/cta_scheduler.h"

namespace stemroot::sim {

namespace {

/// One shard lane: a private simulator plus its timeline-ordered work
/// list. `clock` is the pacing clock -- simulated cycles accumulated so
/// far, including untimed warmup replays; it bounds skew between lanes
/// but never feeds results, which is why epoch length cannot change them.
struct Lane {
  std::unique_ptr<Simulator> sim;
  std::vector<uint32_t> work;
  size_t next = 0;
  double clock = 0.0;

  // Per-mode accumulators, merged in lane-index order after the run.
  std::vector<std::pair<uint32_t, double>> cycles;  ///< (invocation, cycles)
  SmStats stats;
  double cost_cycles = 0.0;
  size_t kernels = 0;
  size_t wave_sampled = 0;
};

/// Previous invocation of the same kernel type, per invocation (-1 if
/// none): the dominant source of inherited L2 warmth (see SimulateSampled).
std::vector<int64_t> PrevSameKernel(const KernelTrace& trace) {
  std::vector<int64_t> prev(trace.NumInvocations(), -1);
  std::unordered_map<uint32_t, uint32_t> last_of_kernel;
  for (uint32_t i = 0; i < trace.NumInvocations(); ++i) {
    const uint32_t kernel_id = trace.At(i).kernel_id;
    auto it = last_of_kernel.find(kernel_id);
    if (it != last_of_kernel.end()) prev[i] = it->second;
    last_of_kernel[kernel_id] = i;
  }
  return prev;
}

/// Build lanes from a kernel-affine partition, keeping only invocations
/// with selected[i] != 0 (empty `selected` keeps everything).
std::vector<Lane> MakeLanes(const KernelTrace& trace, const SimConfig& config,
                            uint32_t shards,
                            const std::vector<char>& selected) {
  std::vector<std::vector<uint32_t>> partition =
      PlanShardLanes(trace, shards);
  std::vector<Lane> lanes(partition.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    if (selected.empty()) {
      lanes[i].work = std::move(partition[i]);
    } else {
      for (uint32_t idx : partition[i])
        if (selected[idx]) lanes[i].work.push_back(idx);
    }
    lanes[i].sim = std::make_unique<Simulator>(config);
  }
  if (resource::AccountingEnabled()) {
    // Lane state is a function of (trace, config, sim_shards, selected)
    // only -- sim_threads and epoch_cycles never enter, so the logical
    // "sim" peak compares clean across pacing settings (DESIGN.md §12).
    uint64_t bytes = 0;
    for (const Lane& lane : lanes)
      bytes += sizeof(Lane) + lane.sim->ApproxStateBytes() +
               lane.work.size() * sizeof(uint32_t);
    resource::AccountPeak("sim", bytes);
  }
  return lanes;
}

/// Advance every lane to completion in bounded-skew rounds. Each round
/// targets the next epoch boundary past the slowest unfinished lane; a
/// lane steps invocations while its pacing clock is below the target.
/// Rounds are separated by a barrier (ParallelLanes returns only when all
/// lanes finished the round), and no lane ever blocks on another lane's
/// task, so any sim_threads count -- even fewer threads than lanes -- is
/// deadlock-free. Returns the number of rounds (epochs) executed.
uint64_t DriveLanes(std::vector<Lane>& lanes, const ShardOptions& shard,
                    const std::function<void(Lane&)>& step_one) {
  const size_t cap = shard.sim_threads > 0
                         ? static_cast<size_t>(shard.sim_threads)
                         : static_cast<size_t>(NumThreads());
  const double epoch = static_cast<double>(shard.epoch_cycles);
  uint64_t rounds = 0;
  for (;;) {
    double min_clock = std::numeric_limits<double>::infinity();
    bool pending = false;
    for (const Lane& lane : lanes) {
      if (lane.next < lane.work.size()) {
        pending = true;
        min_clock = std::min(min_clock, lane.clock);
      }
    }
    if (!pending) break;
    ++rounds;
    // Next epoch boundary strictly past the slowest unfinished lane: that
    // lane always advances at least one invocation, so the loop
    // terminates; every lane within the skew window advances in parallel.
    const double target = (std::floor(min_clock / epoch) + 1.0) * epoch;
    ParallelLanes(lanes.size(), cap, [&](size_t i) {
      Lane& lane = lanes[i];
      while (lane.next < lane.work.size() && lane.clock < target)
        step_one(lane);
    });
  }
  return rounds;
}

void FillInfo(ShardedRunInfo* info, const std::vector<Lane>& lanes,
              uint64_t rounds) {
  if (info == nullptr) return;
  info->lanes = static_cast<uint32_t>(lanes.size());
  info->epochs = rounds;
  info->lane_l2_digests.clear();
  info->lane_cycles.clear();
  info->lane_dram_busy.clear();
  info->lane_invocations.clear();
  for (const Lane& lane : lanes) {
    info->lane_l2_digests.push_back(lane.sim->L2Digest());
    info->lane_cycles.push_back(lane.clock);
    info->lane_dram_busy.push_back(lane.sim->Dram().BusyCycles());
    info->lane_invocations.push_back(lane.work.size());
  }
}

/// The warmup preamble shared by the sampled modes, mirroring the serial
/// loops in sampled_sim.cc / intra_kernel.cc exactly. `replay` runs one
/// untimed invocation on the lane's simulator and returns the simulated
/// cycles it cost (pacing only).
void WarmLane(Lane& lane, uint32_t idx, const TraceSimOptions& options,
              const std::vector<int64_t>& prev_same_kernel,
              const KernelTrace& trace,
              const std::function<double(Lane&, uint32_t)>& replay) {
  if (options.flush_l2_between_kernels) {
    lane.sim->FlushL2();
    return;
  }
  const int64_t same = prev_same_kernel[idx];
  const bool warm_same =
      options.warmup == WarmupPolicy::kSameKernel ||
      options.warmup == WarmupPolicy::kSameKernelThenPredecessor;
  const bool warm_pred =
      options.warmup == WarmupPolicy::kPredecessor ||
      options.warmup == WarmupPolicy::kSameKernelThenPredecessor;
  if (warm_same && same >= 0)
    lane.clock += replay(lane, static_cast<uint32_t>(same));
  if (warm_pred && idx > 0 && static_cast<int64_t>(idx) - 1 != same)
    lane.clock += replay(lane, idx - 1);
}

}  // namespace

TraceSimResult ShardedSimulateTraceFull(const KernelTrace& trace,
                                        const SimConfig& config,
                                        const TraceSimOptions& options,
                                        ShardedRunInfo* info) {
  options.shard.Validate();
  std::vector<Lane> lanes =
      MakeLanes(trace, config, options.shard.sim_shards, {});

  const uint64_t rounds =
      DriveLanes(lanes, options.shard, [&](Lane& lane) {
        const uint32_t idx = lane.work[lane.next++];
        if (options.flush_l2_between_kernels) lane.sim->FlushL2();
        const KernelSimResult one =
            lane.sim->SimulateKernel(trace.At(idx), options.seed);
        lane.cycles.emplace_back(idx, one.cycles);
        lane.clock += one.cycles;
        lane.stats.Merge(one.stats);
      });

  // Merge in timeline order (scatter through index-addressed slots), so
  // the floating-point sum order -- and hence the bytes of total_cycles --
  // is independent of lane count and schedule.
  TraceSimResult result;
  result.per_invocation_cycles.assign(trace.NumInvocations(), 0.0);
  for (const Lane& lane : lanes) {
    for (const auto& [idx, cycles] : lane.cycles)
      result.per_invocation_cycles[idx] = cycles;
    result.stats.Merge(lane.stats);
  }
  for (double cycles : result.per_invocation_cycles)
    result.total_cycles += cycles;

  telemetry::Count("sim.kernels_simulated", trace.NumInvocations());
  telemetry::Count("sim.warp_instructions", result.stats.warp_instructions);
  FillInfo(info, lanes, rounds);
  return result;
}

SampledSimResult ShardedSimulateSampled(const KernelTrace& trace,
                                        const core::SamplingPlan& plan,
                                        const SimConfig& config,
                                        const TraceSimOptions& options,
                                        ShardedRunInfo* info) {
  options.shard.Validate();
  plan.Validate(trace.NumInvocations());

  const std::vector<int64_t> prev_same_kernel = PrevSameKernel(trace);
  std::vector<char> selected(trace.NumInvocations(), 0);
  for (uint32_t idx : plan.DistinctInvocations()) selected[idx] = 1;
  std::vector<Lane> lanes =
      MakeLanes(trace, config, options.shard.sim_shards, selected);

  const auto replay = [&](Lane& lane, uint32_t idx) {
    return lane.sim->SimulateKernel(trace.At(idx), options.seed).cycles;
  };
  const uint64_t rounds =
      DriveLanes(lanes, options.shard, [&](Lane& lane) {
        const uint32_t idx = lane.work[lane.next++];
        WarmLane(lane, idx, options, prev_same_kernel, trace, replay);
        const KernelSimResult one =
            lane.sim->SimulateKernel(trace.At(idx), options.seed);
        lane.cycles.emplace_back(idx, one.cycles);
        lane.cost_cycles += one.cycles;
        lane.clock += one.cycles;
        ++lane.kernels;
      });

  SampledSimResult result;
  std::unordered_map<uint32_t, double> cycles_by_invocation;
  for (const Lane& lane : lanes) {
    for (const auto& [idx, cycles] : lane.cycles)
      cycles_by_invocation.emplace(idx, cycles);
    result.simulated_cost_cycles += lane.cost_cycles;
    result.kernels_simulated += lane.kernels;
  }
  for (const core::SampleEntry& entry : plan.entries)
    result.estimated_total_cycles +=
        entry.weight * cycles_by_invocation.at(entry.invocation);

  telemetry::Count("sim.kernels_simulated", result.kernels_simulated);
  FillInfo(info, lanes, rounds);
  return result;
}

CombinedSimResult ShardedSimulateSampledIntra(
    const KernelTrace& trace, const core::SamplingPlan& plan,
    const SimConfig& config, const TraceSimOptions& trace_options,
    const IntraKernelOptions& intra_options, ShardedRunInfo* info) {
  trace_options.shard.Validate();
  plan.Validate(trace.NumInvocations());
  intra_options.Validate();

  const std::vector<int64_t> prev_same_kernel = PrevSameKernel(trace);
  std::vector<char> selected(trace.NumInvocations(), 0);
  for (uint32_t idx : plan.DistinctInvocations()) selected[idx] = 1;
  std::vector<Lane> lanes =
      MakeLanes(trace, config, trace_options.shard.sim_shards, selected);

  // Warmups are themselves wave-sampled, exactly like the serial loop.
  const auto replay = [&](Lane& lane, uint32_t idx) {
    return SimulateKernelIntra(*lane.sim, trace.At(idx), trace_options.seed,
                               intra_options)
        .simulated_cycles;
  };
  const uint64_t rounds =
      DriveLanes(lanes, trace_options.shard, [&](Lane& lane) {
        const uint32_t idx = lane.work[lane.next++];
        WarmLane(lane, idx, trace_options, prev_same_kernel, trace, replay);
        const IntraKernelResult one = SimulateKernelIntra(
            *lane.sim, trace.At(idx), trace_options.seed, intra_options);
        lane.cycles.emplace_back(idx, one.estimated_cycles);
        lane.cost_cycles += one.simulated_cycles;
        lane.clock += one.simulated_cycles;
        ++lane.kernels;
        if (one.sampled) ++lane.wave_sampled;
      });

  CombinedSimResult result;
  std::unordered_map<uint32_t, double> cycles_by_invocation;
  for (const Lane& lane : lanes) {
    for (const auto& [idx, cycles] : lane.cycles)
      cycles_by_invocation.emplace(idx, cycles);
    result.simulated_cost_cycles += lane.cost_cycles;
    result.kernels_simulated += lane.kernels;
    result.kernels_wave_sampled += lane.wave_sampled;
  }
  for (const core::SampleEntry& entry : plan.entries)
    result.estimated_total_cycles +=
        entry.weight * cycles_by_invocation.at(entry.invocation);

  telemetry::Count("sim.kernels_simulated", result.kernels_simulated);
  telemetry::Count("sim.kernels_wave_sampled", result.kernels_wave_sampled);
  FillInfo(info, lanes, rounds);
  return result;
}

}  // namespace stemroot::sim
