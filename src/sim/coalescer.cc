#include "sim/coalescer.h"

#include <algorithm>
#include <stdexcept>

namespace stemroot::sim {

void CoalesceLaneAddresses(std::span<const uint64_t> lane_addresses,
                           uint32_t line_bytes, std::vector<uint64_t>& out) {
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
    throw std::invalid_argument(
        "CoalesceLaneAddresses: line size not a power of two");
  const uint64_t mask = ~static_cast<uint64_t>(line_bytes - 1);
  out.clear();
  out.reserve(lane_addresses.size());
  for (uint64_t addr : lane_addresses) out.push_back(addr & mask);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<uint64_t> CoalesceLaneAddresses(
    std::span<const uint64_t> lane_addresses, uint32_t line_bytes) {
  std::vector<uint64_t> out;
  CoalesceLaneAddresses(lane_addresses, line_bytes, out);
  return out;
}

}  // namespace stemroot::sim
