/// \file
/// Warp execution context: a WarpProgram plus its scheduling state inside
/// an SM.

#pragma once

#include <memory>

#include "sim/itrace.h"

namespace stemroot::sim {

/// One resident warp.
struct WarpContext {
  std::unique_ptr<WarpProgram> program;
  /// Cycle at which this warp may issue its next instruction.
  double ready = 0.0;
  /// Cycle at which the previous instruction's result is available
  /// (dependent instructions must wait for this instead).
  double result_ready = 0.0;
  bool done = false;

  WarpContext(const KernelBehavior& behavior, const LaunchConfig& launch,
              const SimConfig& config, uint64_t stream_seed,
              uint64_t region_base, uint32_t global_warp_id)
      : program(std::make_unique<WarpProgram>(behavior, launch, config,
                                              stream_seed, region_base,
                                              global_warp_id)) {}
};

}  // namespace stemroot::sim
