#include "sim/intra_kernel.h"

#include <stdexcept>
#include <unordered_map>

namespace stemroot::sim {

void IntraKernelOptions::Validate() const {
  if (sample_waves == 0)
    throw std::invalid_argument("IntraKernelOptions: sample_waves == 0");
  if (min_waves_to_sample <= warmup_waves + sample_waves)
    throw std::invalid_argument(
        "IntraKernelOptions: min_waves_to_sample must exceed "
        "warmup_waves + sample_waves");
}

IntraKernelResult SimulateKernelIntra(Simulator& simulator,
                                      const KernelInvocation& inv,
                                      uint64_t seed,
                                      const IntraKernelOptions& options) {
  options.Validate();
  const double overhead_cycles =
      3.0 * simulator.Config().clock_ghz * 1e3;

  IntraKernelResult result;
  // The wave count is known from the launch geometry alone -- decide
  // whether to sample before simulating anything.
  result.total_waves =
      PlanWaves(inv.launch, simulator.Config()).wave_warps.size();
  const uint64_t prefix = options.warmup_waves + options.sample_waves;

  if (result.total_waves <= options.min_waves_to_sample) {
    // Short kernel: no gain from wave sampling, simulate fully.
    const WaveSimResult waves = simulator.SimulateKernelWaves(inv, seed, 0);
    for (double c : waves.wave_cycles) result.simulated_cycles += c;
    result.estimated_cycles = result.simulated_cycles + overhead_cycles;
    result.waves_simulated = waves.wave_cycles.size();
    result.sampled = false;
    return result;
  }

  const WaveSimResult waves =
      simulator.SimulateKernelWaves(inv, seed, prefix);
  result.waves_simulated = waves.wave_cycles.size();
  for (double c : waves.wave_cycles) result.simulated_cycles += c;

  // Extrapolate: warmup waves count at face value, the measured waves'
  // mean covers every remaining wave.
  double warmup_cycles = 0.0;
  for (uint64_t w = 0; w < options.warmup_waves; ++w)
    warmup_cycles += waves.wave_cycles[w];
  double measured = 0.0;
  for (uint64_t w = options.warmup_waves; w < prefix; ++w)
    measured += waves.wave_cycles[w];
  const double mean_wave =
      measured / static_cast<double>(options.sample_waves);
  const double remaining =
      static_cast<double>(waves.total_waves - options.warmup_waves);
  result.estimated_cycles =
      warmup_cycles + mean_wave * remaining + overhead_cycles;
  result.sampled = true;
  return result;
}

CombinedSimResult SimulateSampledIntra(
    const KernelTrace& trace, const core::SamplingPlan& plan,
    const SimConfig& config, const TraceSimOptions& trace_options,
    const IntraKernelOptions& intra_options) {
  plan.Validate(trace.NumInvocations());
  intra_options.Validate();
  Simulator simulator(config);

  // Previous same-kernel invocation (see SimulateSampled).
  std::vector<int64_t> prev_same_kernel(trace.NumInvocations(), -1);
  {
    std::unordered_map<uint32_t, uint32_t> last_of_kernel;
    for (uint32_t i = 0; i < trace.NumInvocations(); ++i) {
      const uint32_t kernel_id = trace.At(i).kernel_id;
      auto it = last_of_kernel.find(kernel_id);
      if (it != last_of_kernel.end()) prev_same_kernel[i] = it->second;
      last_of_kernel[kernel_id] = i;
    }
  }

  std::unordered_map<uint32_t, double> cycles_by_invocation;
  CombinedSimResult result;
  for (uint32_t idx : plan.DistinctInvocations()) {
    if (trace_options.flush_l2_between_kernels) {
      simulator.FlushL2();
    } else {
      const int64_t same = prev_same_kernel[idx];
      const bool warm_same =
          trace_options.warmup == WarmupPolicy::kSameKernel ||
          trace_options.warmup ==
              WarmupPolicy::kSameKernelThenPredecessor;
      const bool warm_pred =
          trace_options.warmup == WarmupPolicy::kPredecessor ||
          trace_options.warmup ==
              WarmupPolicy::kSameKernelThenPredecessor;
      // Warmups are themselves wave-sampled: a prefix suffices to warm
      // the L2 region, and the point of intra sampling is to avoid
      // full-kernel costs everywhere.
      if (warm_same && same >= 0)
        (void)SimulateKernelIntra(simulator,
                                  trace.At(static_cast<uint32_t>(same)),
                                  trace_options.seed, intra_options);
      if (warm_pred && idx > 0 && static_cast<int64_t>(idx) - 1 != same)
        (void)SimulateKernelIntra(simulator, trace.At(idx - 1),
                                  trace_options.seed, intra_options);
    }
    const IntraKernelResult one = SimulateKernelIntra(
        simulator, trace.At(idx), trace_options.seed, intra_options);
    cycles_by_invocation.emplace(idx, one.estimated_cycles);
    result.simulated_cost_cycles += one.simulated_cycles;
    ++result.kernels_simulated;
    if (one.sampled) ++result.kernels_wave_sampled;
  }

  for (const core::SampleEntry& entry : plan.entries)
    result.estimated_total_cycles +=
        entry.weight * cycles_by_invocation.at(entry.invocation);
  return result;
}

}  // namespace stemroot::sim
