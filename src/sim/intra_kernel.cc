#include "sim/intra_kernel.h"

#include <stdexcept>

#include "sim/sharded.h"

namespace stemroot::sim {

void IntraKernelOptions::Validate() const {
  if (sample_waves == 0)
    throw std::invalid_argument("IntraKernelOptions: sample_waves == 0");
  if (min_waves_to_sample <= warmup_waves + sample_waves)
    throw std::invalid_argument(
        "IntraKernelOptions: min_waves_to_sample must exceed "
        "warmup_waves + sample_waves");
}

IntraKernelResult SimulateKernelIntra(Simulator& simulator,
                                      const KernelInvocation& inv,
                                      uint64_t seed,
                                      const IntraKernelOptions& options) {
  options.Validate();
  const double overhead_cycles =
      3.0 * simulator.Config().clock_ghz * 1e3;

  IntraKernelResult result;
  // The wave count is known from the launch geometry alone -- decide
  // whether to sample before simulating anything.
  result.total_waves =
      PlanWaves(inv.launch, simulator.Config()).wave_warps.size();
  const uint64_t prefix = options.warmup_waves + options.sample_waves;

  if (result.total_waves <= options.min_waves_to_sample) {
    // Short kernel: no gain from wave sampling, simulate fully.
    const WaveSimResult waves = simulator.SimulateKernelWaves(inv, seed, 0);
    for (double c : waves.wave_cycles) result.simulated_cycles += c;
    result.estimated_cycles = result.simulated_cycles + overhead_cycles;
    result.waves_simulated = waves.wave_cycles.size();
    result.sampled = false;
    return result;
  }

  const WaveSimResult waves =
      simulator.SimulateKernelWaves(inv, seed, prefix);
  result.waves_simulated = waves.wave_cycles.size();
  for (double c : waves.wave_cycles) result.simulated_cycles += c;

  // Extrapolate: warmup waves count at face value, the measured waves'
  // mean covers every remaining wave.
  double warmup_cycles = 0.0;
  for (uint64_t w = 0; w < options.warmup_waves; ++w)
    warmup_cycles += waves.wave_cycles[w];
  double measured = 0.0;
  for (uint64_t w = options.warmup_waves; w < prefix; ++w)
    measured += waves.wave_cycles[w];
  const double mean_wave =
      measured / static_cast<double>(options.sample_waves);
  const double remaining =
      static_cast<double>(waves.total_waves - options.warmup_waves);
  result.estimated_cycles =
      warmup_cycles + mean_wave * remaining + overhead_cycles;
  result.sampled = true;
  return result;
}

CombinedSimResult SimulateSampledIntra(
    const KernelTrace& trace, const core::SamplingPlan& plan,
    const SimConfig& config, const TraceSimOptions& trace_options,
    const IntraKernelOptions& intra_options) {
  // Thin wrapper over the sharded engine (src/sim/sharded.cc): one lane
  // is exactly the legacy serial loop; trace_options.shard scales out.
  return ShardedSimulateSampledIntra(trace, plan, config, trace_options,
                                     intra_options);
}

}  // namespace stemroot::sim
