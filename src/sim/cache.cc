#include "sim/cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace stemroot::sim {

Cache::Cache(uint64_t size_bytes, uint32_t associativity,
             uint32_t line_bytes)
    : size_bytes_(size_bytes), assoc_(associativity),
      line_bytes_(line_bytes) {
  if (size_bytes == 0 || associativity == 0)
    throw std::invalid_argument("Cache: zero size or associativity");
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
    throw std::invalid_argument("Cache: line size not a power of two");
  const uint64_t num_lines = size_bytes / line_bytes;
  if (num_lines == 0 || num_lines % associativity != 0)
    throw std::invalid_argument(
        "Cache: size/line/assoc combination leaves no whole sets");
  num_sets_ = static_cast<uint32_t>(num_lines / associativity);
  line_shift_ = static_cast<uint32_t>(std::countr_zero(line_bytes));
  lines_.resize(num_lines);
}

bool Cache::Access(uint64_t addr) {
  const uint64_t line_addr = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr % num_sets_);
  const uint64_t tag = line_addr / num_sets_;
  Line* base = &lines_[static_cast<size_t>(set) * assoc_];
  ++clock_;

  Line* victim = base;
  for (uint32_t way = 0; way < assoc_; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      line.lru = clock_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  ++misses_;
  return false;
}

bool Cache::Contains(uint64_t addr) const {
  const uint64_t line_addr = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr % num_sets_);
  const uint64_t tag = line_addr / num_sets_;
  const Line* base = &lines_[static_cast<size_t>(set) * assoc_];
  for (uint32_t way = 0; way < assoc_; ++way)
    if (base[way].valid && base[way].tag == tag) return true;
  return false;
}

void Cache::Flush() {
  for (Line& line : lines_) line.valid = false;
}

void Cache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

uint64_t Cache::ContentDigest() const {
  constexpr uint64_t kOffset = 14695981039346656037ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t digest = kOffset;
  const auto mix = [&digest](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      digest ^= (v >> (byte * 8)) & 0xFF;
      digest *= kPrime;
    }
  };
  std::vector<uint32_t> ways(assoc_);
  for (uint32_t set = 0; set < num_sets_; ++set) {
    const Line* base = &lines_[static_cast<size_t>(set) * assoc_];
    // Valid ways in LRU-rank order (oldest first): the digest captures
    // replacement priority, not the absolute clock values.
    uint32_t valid = 0;
    for (uint32_t way = 0; way < assoc_; ++way)
      if (base[way].valid) ways[valid++] = way;
    std::sort(ways.begin(), ways.begin() + valid,
              [base](uint32_t a, uint32_t b) {
                if (base[a].lru != base[b].lru)
                  return base[a].lru < base[b].lru;
                return a < b;
              });
    mix(set);
    mix(valid);
    for (uint32_t k = 0; k < valid; ++k) mix(base[ways[k]].tag);
  }
  return digest;
}

}  // namespace stemroot::sim
