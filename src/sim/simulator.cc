#include "sim/simulator.h"

#include <algorithm>

#include "common/rng.h"

namespace stemroot::sim {

namespace {

/// The simulated SM sees the full shared L2 (the other, symmetric SMs
/// would have warmed/contended it; we keep capacity exact and accept
/// slightly optimistic L2 hit rates), but only a 1/num_sms share of DRAM
/// bandwidth. Associativity is reduced if it does not divide the line
/// count evenly.
Cache MakeL2(const SimConfig& config) {
  uint32_t assoc = config.l2_assoc;
  while (assoc > 1 && (config.l2_bytes / config.line_bytes) % assoc != 0)
    assoc /= 2;
  return Cache(config.l2_bytes, assoc, config.line_bytes);
}

}  // namespace

Simulator::Simulator(SimConfig config)
    : config_(config), l2_(MakeL2(config_)),
      dram_(config_.DramShareBytesPerCycle(), config_.dram_latency),
      sm_(config_, &l2_, &dram_) {
  config_.Validate();
}

void Simulator::FlushL2() { l2_.Flush(); }

WaveSimResult Simulator::SimulateKernelWaves(const KernelInvocation& inv,
                                             uint64_t seed,
                                             uint64_t max_waves) {
  WaveSimResult result;
  // Instruction-stream randomness is per invocation; the data region is
  // per *kernel*, so repeated launches of the same kernel touch the same
  // buffers and can reuse L2 content across launches (Sec. 6.2).
  const uint64_t stream_seed = DeriveSeed(seed, inv.seq);
  const uint64_t region_base =
      (DeriveSeed(0xDA7A0000ULL, inv.kernel_id) & 0xFFFFFFull) << 40;

  const WavePlan plan = PlanWaves(inv.launch, config_);
  result.total_waves = plan.wave_warps.size();
  sm_.ResetL1();
  dram_.Reset();

  PeerWarming peer_warming;
  peer_warming.region_base = region_base;
  peer_warming.footprint_lines = std::max<uint64_t>(
      1, inv.behavior.footprint_bytes / config_.line_bytes);
  peer_warming.peers = config_.num_sms - 1;

  double cycle = 0.0;
  uint32_t warp_id = 0;
  for (uint32_t wave_warps : plan.wave_warps) {
    if (max_waves != 0 && result.wave_cycles.size() >= max_waves) break;
    std::vector<WarpContext> warps;
    warps.reserve(wave_warps);
    for (uint32_t w = 0; w < wave_warps; ++w)
      warps.emplace_back(inv.behavior, inv.launch, config_, stream_seed,
                         region_base, warp_id++);
    const double end = sm_.ExecuteWave(warps, cycle, peer_warming,
                                       &result.stats);
    result.wave_cycles.push_back(end - cycle);
    cycle = end;
  }
  return result;
}

KernelSimResult Simulator::SimulateKernel(const KernelInvocation& inv,
                                          uint64_t seed) {
  const WaveSimResult waves = SimulateKernelWaves(inv, seed, 0);
  KernelSimResult result;
  result.stats = waves.stats;
  double cycle = 0.0;
  for (double c : waves.wave_cycles) cycle += c;
  // Fixed launch/drain overhead in cycles (mirrors the hardware model's
  // launch_overhead_us at the configured clock).
  result.cycles = cycle + 3.0 * config_.clock_ghz * 1e3;
  return result;
}

}  // namespace stemroot::sim
