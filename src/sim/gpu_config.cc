#include "sim/gpu_config.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stemroot::sim {

void ShardOptions::Validate() const {
  if (sim_shards == 0)
    throw std::invalid_argument("ShardOptions: sim_shards must be >= 1");
  if (epoch_cycles == 0)
    throw std::invalid_argument("ShardOptions: epoch_cycles must be >= 1");
  if (sim_threads < 0)
    throw std::invalid_argument(
        "ShardOptions: sim_threads must be >= 0 (0 = auto)");
}

SimConfig SimConfig::FromSpec(const hw::GpuSpec& spec) {
  spec.Validate();
  SimConfig config;
  config.num_sms = spec.num_sms;
  config.warp_size = spec.warp_size;
  config.max_warps_per_sm = spec.max_warps_per_sm;
  config.clock_ghz = spec.clock_ghz;
  config.issue_width = spec.issue_width;
  config.l1_bytes = spec.l1_bytes;
  config.line_bytes = spec.line_bytes;
  config.l2_bytes = spec.l2_bytes;
  config.l2_latency = static_cast<uint32_t>(
      std::lround(spec.l2_latency_ns * spec.clock_ghz));
  config.dram_latency = static_cast<uint32_t>(
      std::lround(spec.dram_latency_ns * spec.clock_ghz));
  // GB/s -> bytes/cycle: bw / (clock * 1e9) * 1e9.
  config.dram_bytes_per_cycle = spec.dram_bw_gbps / spec.clock_ghz;
  return config;
}

double SimConfig::DramShareBytesPerCycle() const {
  return dram_bytes_per_cycle / static_cast<double>(num_sms);
}

void SimConfig::Validate() const {
  if (num_sms == 0 || warp_size == 0 || max_warps_per_sm == 0)
    throw std::invalid_argument("SimConfig: zero machine geometry");
  if (clock_ghz <= 0.0 || issue_width <= 0.0)
    throw std::invalid_argument("SimConfig: bad clock/issue width");
  if (l1_bytes == 0 || l2_bytes == 0)
    throw std::invalid_argument("SimConfig: zero cache size");
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
    throw std::invalid_argument("SimConfig: line size not a power of two");
  if (l1_assoc == 0 || l2_assoc == 0)
    throw std::invalid_argument("SimConfig: zero associativity");
  if (dram_bytes_per_cycle <= 0.0)
    throw std::invalid_argument("SimConfig: zero DRAM bandwidth");
}

}  // namespace stemroot::sim
