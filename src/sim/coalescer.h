/// \file
/// Memory coalescer: collapses the per-lane addresses of one warp memory
/// access into the set of distinct cache-line requests, as GPU LD/ST units
/// do.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stemroot::sim {

/// Deduplicate lane addresses to distinct line addresses (sorted). The
/// returned addresses are line-aligned. Throws std::invalid_argument when
/// line_bytes is not a power of two.
std::vector<uint64_t> CoalesceLaneAddresses(
    std::span<const uint64_t> lane_addresses, uint32_t line_bytes);

/// In-place variant reusing the output vector (hot path).
void CoalesceLaneAddresses(std::span<const uint64_t> lane_addresses,
                           uint32_t line_bytes, std::vector<uint64_t>& out);

}  // namespace stemroot::sim
