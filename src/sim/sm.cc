#include "sim/sm.h"

#include <algorithm>
#include <queue>

namespace stemroot::sim {

void SmStats::Merge(const SmStats& other) {
  warp_instructions += other.warp_instructions;
  l1_hits += other.l1_hits;
  l1_misses += other.l1_misses;
  l2_hits += other.l2_hits;
  l2_misses += other.l2_misses;
  dram_bytes += other.dram_bytes;
}

SmModel::SmModel(const SimConfig& config, Cache* l2, DramModel* dram)
    : config_(config),
      l1_(config.l1_bytes, config.l1_assoc, config.line_bytes),
      l2_(l2), dram_(dram) {
  config.Validate();
}

void SmModel::ResetL1() { l1_.Flush(); }

double SmModel::ExecuteWave(std::vector<WarpContext>& warps,
                            double start_cycle,
                            const PeerWarming& peer_warming,
                            SmStats* stats) {
  struct HeapEntry {
    double ready;
    uint32_t warp;
    bool operator>(const HeapEntry& other) const {
      return ready > other.ready;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>> heap;
  for (uint32_t w = 0; w < warps.size(); ++w) {
    warps[w].ready = start_cycle;
    warps[w].result_ready = start_cycle;
    warps[w].done = false;
    heap.push({start_cycle, w});
  }

  const double issue_interval = 1.0 / config_.issue_width;
  double issue_free = start_cycle;
  double finish = start_cycle;
  WarpInstr instr;

  while (!heap.empty()) {
    const HeapEntry entry = heap.top();
    heap.pop();
    WarpContext& warp = warps[entry.warp];
    if (warp.done) continue;

    if (!warp.program->Next(instr)) {
      warp.done = true;
      finish = std::max(finish, warp.ready);
      continue;
    }
    if (stats) ++stats->warp_instructions;

    // Issue: wait for the warp's own readiness, for the previous result if
    // dependent, and for an issue slot.
    double t = std::max(entry.ready, issue_free);
    if (instr.depends_on_prev) t = std::max(t, warp.result_ready);
    issue_free = t + issue_interval;

    double result_at = t;
    switch (instr.kind) {
      case OpKind::kAlu:
        result_at = t + config_.alu_latency;
        break;
      case OpKind::kFp32:
        result_at = t + config_.fp32_latency;
        break;
      case OpKind::kFp16:
        result_at = t + config_.fp16_latency;
        break;
      case OpKind::kSfu:
        result_at = t + config_.sfu_latency;
        break;
      case OpKind::kSharedMem:
        result_at = t + config_.shmem_latency;
        break;
      case OpKind::kBranch:
        // Divergent branches serialize both paths at the issue stage;
        // modelled as an extra issue bubble.
        result_at = t + config_.alu_latency;
        issue_free += issue_interval;
        break;
      case OpKind::kLoad:
      case OpKind::kStore: {
        double data_at = t;
        for (uint64_t line : instr.lines) {
          double line_at;
          if (l1_.Access(line)) {
            if (stats) ++stats->l1_hits;
            line_at = t + config_.l1_latency;
          } else {
            if (stats) ++stats->l1_misses;
            if (l2_->Access(line)) {
              if (stats) ++stats->l2_hits;
              line_at = t + config_.l1_latency + config_.l2_latency;
            } else {
              if (stats) {
                ++stats->l2_misses;
                stats->dram_bytes += config_.line_bytes;
              }
              line_at = dram_->Request(t + config_.l1_latency +
                                           config_.l2_latency,
                                       config_.line_bytes);
              // Peer SMs are missing sibling lines of the same region
              // concurrently: insert them so the shared L2's content
              // evolves at machine rate (timing unaffected -- peer DRAM
              // traffic is already modelled by the per-SM bandwidth
              // share).
              if (peer_warming.peers > 0 &&
                  line >= peer_warming.region_base) {
                const uint64_t line_index =
                    (line - peer_warming.region_base) / config_.line_bytes;
                for (uint32_t peer = 1; peer <= peer_warming.peers;
                     ++peer) {
                  const uint64_t sibling =
                      (line_index + static_cast<uint64_t>(peer) * 2654435761ULL) %
                      peer_warming.footprint_lines;
                  (void)l2_->Access(peer_warming.region_base +
                                    sibling * config_.line_bytes);
                }
              }
            }
          }
          data_at = std::max(data_at, line_at);
        }
        // Stores retire through the write buffer: the warp does not wait.
        result_at = instr.kind == OpKind::kLoad ? data_at : t + 1.0;
        break;
      }
    }

    // Pipelined issue: the warp may issue its next (independent)
    // instruction one issue slot later; dependent consumers wait for
    // result_ready.
    warp.ready = t + 1.0;
    warp.result_ready = result_at;
    finish = std::max(finish, result_at);
    heap.push({warp.ready, entry.warp});
  }
  return finish;
}

}  // namespace stemroot::sim
