#include "sim/cta_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace stemroot::sim {

WavePlan PlanWaves(const LaunchConfig& launch, const SimConfig& config) {
  config.Validate();
  WavePlan plan;
  plan.warps_per_cta = launch.WarpsPerCta();
  if (plan.warps_per_cta > config.max_warps_per_sm)
    throw std::invalid_argument(
        "PlanWaves: CTA exceeds the SM warp capacity");

  const uint64_t total_ctas = launch.NumCtas();
  // Round-robin distribution: the representative SM gets the ceil share.
  plan.ctas = (total_ctas + config.num_sms - 1) / config.num_sms;

  const uint32_t ctas_per_wave =
      std::max<uint32_t>(1, config.max_warps_per_sm / plan.warps_per_cta);
  uint64_t remaining = plan.ctas;
  while (remaining > 0) {
    const uint32_t wave_ctas = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, ctas_per_wave));
    plan.wave_warps.push_back(wave_ctas * plan.warps_per_cta);
    remaining -= wave_ctas;
  }
  return plan;
}

std::vector<std::vector<uint32_t>> PlanShardLanes(const KernelTrace& trace,
                                                  uint32_t num_lanes) {
  if (num_lanes == 0)
    throw std::invalid_argument("PlanShardLanes: num_lanes must be >= 1");
  const uint32_t n = static_cast<uint32_t>(trace.NumInvocations());
  std::vector<std::vector<uint32_t>> lanes(num_lanes);
  if (num_lanes == 1) {
    lanes[0].reserve(n);
    for (uint32_t i = 0; i < n; ++i) lanes[0].push_back(i);
    return lanes;
  }

  // Estimated work per kernel id: dynamic instructions summed in timeline
  // order (+1 per launch so empty kernels still carry weight).
  struct KernelLoad {
    uint32_t kernel_id = 0;
    double weight = 0.0;
  };
  std::unordered_map<uint32_t, size_t> slot_of_kernel;
  std::vector<KernelLoad> kernels;
  for (uint32_t i = 0; i < n; ++i) {
    const KernelInvocation& inv = trace.At(i);
    auto [it, inserted] =
        slot_of_kernel.emplace(inv.kernel_id, kernels.size());
    if (inserted) kernels.push_back({inv.kernel_id, 0.0});
    kernels[it->second].weight +=
        1.0 + static_cast<double>(inv.behavior.instructions);
  }

  // Longest-processing-time-first over lanes: heaviest kernel to the
  // least-loaded lane, ties by kernel id (sort) and lane index (scan).
  std::sort(kernels.begin(), kernels.end(),
            [](const KernelLoad& a, const KernelLoad& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.kernel_id < b.kernel_id;
            });
  std::vector<double> lane_load(num_lanes, 0.0);
  std::unordered_map<uint32_t, uint32_t> lane_of_kernel;
  for (const KernelLoad& kernel : kernels) {
    uint32_t best = 0;
    for (uint32_t lane = 1; lane < num_lanes; ++lane)
      if (lane_load[lane] < lane_load[best]) best = lane;
    lane_of_kernel[kernel.kernel_id] = best;
    lane_load[best] += kernel.weight;
  }

  for (uint32_t i = 0; i < n; ++i)
    lanes[lane_of_kernel.at(trace.At(i).kernel_id)].push_back(i);
  return lanes;
}

}  // namespace stemroot::sim
