#include "sim/cta_scheduler.h"

#include <stdexcept>

namespace stemroot::sim {

WavePlan PlanWaves(const LaunchConfig& launch, const SimConfig& config) {
  config.Validate();
  WavePlan plan;
  plan.warps_per_cta = launch.WarpsPerCta();
  if (plan.warps_per_cta > config.max_warps_per_sm)
    throw std::invalid_argument(
        "PlanWaves: CTA exceeds the SM warp capacity");

  const uint64_t total_ctas = launch.NumCtas();
  // Round-robin distribution: the representative SM gets the ceil share.
  plan.ctas = (total_ctas + config.num_sms - 1) / config.num_sms;

  const uint32_t ctas_per_wave =
      std::max<uint32_t>(1, config.max_warps_per_sm / plan.warps_per_cta);
  uint64_t remaining = plan.ctas;
  while (remaining > 0) {
    const uint32_t wave_ctas = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, ctas_per_wave));
    plan.wave_warps.push_back(wave_ctas * plan.warps_per_cta);
    remaining -= wave_ctas;
  }
  return plan;
}

}  // namespace stemroot::sim
