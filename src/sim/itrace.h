/// \file
/// Synthetic warp instruction-trace generation.
///
/// The cycle simulator is trace-driven; since the workloads are generative
/// (no real binaries), each warp's instruction stream is synthesized
/// deterministically from the invocation's KernelBehavior: the mix follows
/// the behaviour fractions, global addresses follow a hot-set/streaming
/// model parameterized by locality, and coalescing controls how many
/// distinct cache lines one warp access touches. The same seed always
/// yields the same stream, so full and sampled simulations see identical
/// kernels.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/gpu_config.h"
#include "trace/kernel.h"

namespace stemroot::sim {

/// Warp instruction categories.
enum class OpKind : uint8_t {
  kAlu,
  kFp32,
  kFp16,
  kSfu,
  kSharedMem,
  kLoad,
  kStore,
  kBranch,
};

/// One warp-level instruction.
struct WarpInstr {
  OpKind kind = OpKind::kAlu;
  /// True when this instruction consumes the previous one's result
  /// (issue must wait for its latency). Probability 1/ilp.
  bool depends_on_prev = false;
  /// For kLoad/kStore: the distinct line addresses this warp access
  /// touches after coalescing.
  std::vector<uint64_t> lines;
};

/// Generates the instruction stream of one warp.
class WarpProgram {
 public:
  /// `global_warp_id` individualizes the stream (and its address
  /// partition); `stream_seed` ties all warps of one invocation together;
  /// `region_base` is the kernel's data region -- invocations of the same
  /// kernel share it, so repeated kernels reuse L2 content across launches
  /// (the inter-kernel reuse of the paper's Sec. 6.2).
  WarpProgram(const KernelBehavior& behavior, const LaunchConfig& launch,
              const SimConfig& config, uint64_t stream_seed,
              uint64_t region_base, uint32_t global_warp_id);

  /// Produce the next instruction; false when the warp is done. The
  /// WarpInstr is overwritten (lines vector reused to avoid allocation).
  bool Next(WarpInstr& out);

  uint64_t InstructionsRemaining() const { return remaining_; }
  uint64_t InstructionsTotal() const { return total_; }

 private:
  uint64_t NextAddress();

  const KernelBehavior& behavior_;
  const SimConfig& config_;
  Rng rng_;
  uint64_t total_ = 0;
  uint64_t remaining_ = 0;
  uint64_t region_base_ = 0;     ///< address-space base of this kernel
  uint64_t footprint_lines_ = 0; ///< footprint in cache lines
  uint64_t stream_pos_ = 0;      ///< streaming cursor (line units)
  double dep_prob_ = 0.0;
  uint32_t avg_transactions_ = 1;
  std::vector<uint64_t> hot_lines_;  ///< recent-reuse ring buffer
  size_t hot_cursor_ = 0;
};

}  // namespace stemroot::sim
