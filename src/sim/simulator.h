/// \file
/// Kernel-level cycle simulator (the MacSim-like substrate).
///
/// A Simulator instance owns the persistent shared state (the L2 slice and
/// DRAM channel), so consecutive kernels of one workload observe warm L2
/// content -- the inter-kernel reuse discussed in the paper's Sec. 6.2.
/// FlushL2() reproduces the paper's extreme-case warmup experiment.

#pragma once

#include <cstdint>

#include "sim/cta_scheduler.h"
#include "sim/dram.h"
#include "sim/sm.h"
#include "trace/trace.h"

namespace stemroot::sim {

/// Result of simulating one kernel invocation.
struct KernelSimResult {
  double cycles = 0.0;
  SmStats stats;

  /// Convert to microseconds at the config's clock.
  double Microseconds(const SimConfig& config) const {
    return cycles / (config.clock_ghz * 1e3);
  }
};

/// Wave-resolved result (intra-kernel sampling builds on this).
struct WaveSimResult {
  /// Cycles consumed by each simulated wave, in launch order.
  std::vector<double> wave_cycles;
  /// Total waves the launch would execute (>= wave_cycles.size()).
  uint64_t total_waves = 0;
  SmStats stats;
};

/// The simulator.
class Simulator {
 public:
  explicit Simulator(SimConfig config);

  const SimConfig& Config() const { return config_; }

  /// Simulate one kernel invocation. `seed` individualizes the synthetic
  /// instruction streams (full and sampled simulation of the same
  /// invocation use the same seed and therefore identical traces). The L1
  /// starts cold per kernel; the L2 slice persists across calls.
  KernelSimResult SimulateKernel(const KernelInvocation& inv, uint64_t seed);

  /// Simulate at most `max_waves` CTA waves of the launch, reporting
  /// per-wave cycle costs and the launch's total wave count. Used by
  /// intra-kernel sampling (Sec. 7.3) to extrapolate long kernels from a
  /// prefix of their waves. max_waves == 0 means all waves.
  WaveSimResult SimulateKernelWaves(const KernelInvocation& inv,
                                    uint64_t seed, uint64_t max_waves);

  /// Invalidate the persistent L2 slice (warmup ablation).
  void FlushL2();

  /// Content digest of the persistent L2 slice (see Cache::ContentDigest):
  /// the determinism tests compare microarchitectural state, not just
  /// cycle counts, across sharding/pacing configurations.
  uint64_t L2Digest() const { return l2_.ContentDigest(); }

  /// Content digest of the SM's private L1.
  uint64_t L1Digest() const { return sm_.L1Digest(); }

  /// The DRAM channel share (busy-cycle and byte accounting).
  const DramModel& Dram() const { return dram_; }

  /// Logical footprint of this simulator's persistent state (L2 slice +
  /// private L1 + the object itself) in bytes — a pure function of the
  /// SimConfig geometry, for the "sim" category of resource::AccountPeak
  /// (DESIGN.md §15).
  uint64_t ApproxStateBytes() const {
    return sizeof(*this) + l2_.ApproxBytes() + sm_.L1ApproxBytes();
  }

 private:
  SimConfig config_;
  Cache l2_;
  DramModel dram_;
  SmModel sm_;
};

}  // namespace stemroot::sim
