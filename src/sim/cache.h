/// \file
/// Set-associative LRU cache model shared by the simulator's L1 and L2
/// levels.

#pragma once

#include <cstdint>
#include <vector>

namespace stemroot::sim {

/// Classic set-associative cache with true-LRU replacement. Tracks hits
/// and misses; allocate-on-miss for both reads and writes (GPU L2s are
/// write-allocate; Sec. 5.5 notes writes always hit L2 under the paper's
/// policy assumption).
class Cache {
 public:
  /// Throws std::invalid_argument on non-power-of-two line size, zero
  /// sizes, or associativity that does not divide the line count.
  Cache(uint64_t size_bytes, uint32_t associativity, uint32_t line_bytes);

  /// Access one byte address; returns true on hit. Misses allocate.
  bool Access(uint64_t addr);

  /// Probe without state change; returns true if resident.
  bool Contains(uint64_t addr) const;

  /// Invalidate everything (the ablation_warmup bench's L2 flush).
  void Flush();

  uint64_t Hits() const { return hits_; }
  uint64_t Misses() const { return misses_; }
  void ResetStats();

  /// FNV-1a digest of the resident content and its recency order: per
  /// set, the valid tags in LRU-rank order. Two caches that hold the same
  /// lines with the same replacement priority digest identically, however
  /// they got there -- the determinism tests use this to compare L2 state
  /// across --sim-threads / --epoch-cycles settings without serializing
  /// the whole array.
  uint64_t ContentDigest() const;

  uint32_t NumSets() const { return num_sets_; }
  uint32_t Associativity() const { return assoc_; }
  uint64_t SizeBytes() const { return size_bytes_; }

  /// Logical model-state footprint in bytes (the line array plus the
  /// object itself) — a pure function of the cache geometry, for the
  /// "sim" category of resource::AccountPeak (DESIGN.md §15).
  uint64_t ApproxBytes() const {
    return sizeof(*this) + lines_.size() * sizeof(Line);
  }

 private:
  struct Line {
    uint64_t tag = ~0ULL;
    uint64_t lru = 0;  ///< global access counter at last touch
    bool valid = false;
  };

  uint64_t size_bytes_;
  uint32_t assoc_;
  uint32_t line_bytes_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  std::vector<Line> lines_;  ///< num_sets_ * assoc_, set-major
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace stemroot::sim
