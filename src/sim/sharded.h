/// \file
/// Sharded trace simulation: the parallel execution engine behind
/// SimulateTraceFull / SimulateSampled / SimulateSampledIntra (DESIGN.md
/// §12; Huerta et al.'s SM-sharded execution with bounded cycle
/// synchronization, adapted to the representative-SM substrate).
///
/// The representative-SM simulator already folds cross-SM contention into
/// analytic shares (1/num_sms DRAM bandwidth, peer warming of the L2), so
/// the only state that couples invocations is the per-simulator L2 slice.
/// The engine exploits that: invocations are partitioned kernel-affinely
/// into `sim_shards` lanes (PlanShardLanes), each lane owns a *private*
/// Simulator, and lanes advance concurrently in bounded-skew epochs of
/// `epoch_cycles` simulated cycles with a deterministic barrier between
/// rounds. Merges happen in shard-index / timeline order.
///
/// Determinism contract:
///  - `sim_shards` is a modeling knob: lane-private L2s keep same-kernel
///    reuse (the dominant warmth source) but drop cross-kernel pollution
///    between lanes, so shards > 1 yields different -- equally valid --
///    numbers than shards == 1. It therefore gates manifest comparability.
///  - `sim_threads` and `epoch_cycles` are pacing knobs: lanes are
///    independent between barriers and every merge is index-ordered, so
///    results are byte-identical at any setting (epoch length may change
///    speed, never outcome).
///  - shards == 1 is ONE lane stepping the whole timeline in order on one
///    Simulator: exactly the legacy serial loop, bit for bit (the golden
///    tests pin this).

#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "sim/intra_kernel.h"
#include "sim/sampled_sim.h"

namespace stemroot::sim {

/// Diagnostics from one sharded run, for tests and drills. Everything in
/// here is invariant to `sim_threads`; `epochs` depends on `epoch_cycles`
/// (it counts synchronization rounds), the rest does not.
struct ShardedRunInfo {
  uint32_t lanes = 0;
  uint64_t epochs = 0;  ///< synchronization rounds executed
  std::vector<uint64_t> lane_l2_digests;   ///< final L2 state per lane
  std::vector<double> lane_cycles;         ///< simulated cycles per lane
  std::vector<double> lane_dram_busy;      ///< final-kernel DRAM busy/lane
  std::vector<size_t> lane_invocations;    ///< work-list length per lane
};

/// Sharded full simulation: every invocation, lane-partitioned. With
/// options.shard.sim_shards == 1 this IS the serial SimulateTraceFull.
TraceSimResult ShardedSimulateTraceFull(const KernelTrace& trace,
                                        const SimConfig& config,
                                        const TraceSimOptions& options = {},
                                        ShardedRunInfo* info = nullptr);

/// Sharded sampled simulation: the plan's distinct invocations with the
/// options' warmup policy, lane-partitioned kernel-affinely so warmup
/// replays stay lane-local.
SampledSimResult ShardedSimulateSampled(const KernelTrace& trace,
                                        const core::SamplingPlan& plan,
                                        const SimConfig& config,
                                        const TraceSimOptions& options = {},
                                        ShardedRunInfo* info = nullptr);

/// Sharded kernel-level + intra-kernel (wave) sampling combination.
CombinedSimResult ShardedSimulateSampledIntra(
    const KernelTrace& trace, const core::SamplingPlan& plan,
    const SimConfig& config, const TraceSimOptions& trace_options = {},
    const IntraKernelOptions& intra_options = {},
    ShardedRunInfo* info = nullptr);

}  // namespace stemroot::sim
