#include "sim/sampled_sim.h"

#include <unordered_map>

namespace stemroot::sim {

TraceSimResult SimulateTraceFull(const KernelTrace& trace,
                                 const SimConfig& config,
                                 const TraceSimOptions& options) {
  Simulator simulator(config);
  TraceSimResult result;
  result.per_invocation_cycles.reserve(trace.NumInvocations());
  for (const KernelInvocation& inv : trace.Invocations()) {
    if (options.flush_l2_between_kernels) simulator.FlushL2();
    const KernelSimResult one = simulator.SimulateKernel(inv, options.seed);
    result.per_invocation_cycles.push_back(one.cycles);
    result.total_cycles += one.cycles;
    result.stats.Merge(one.stats);
  }
  return result;
}

SampledSimResult SimulateSampled(const KernelTrace& trace,
                                 const core::SamplingPlan& plan,
                                 const SimConfig& config,
                                 const TraceSimOptions& options) {
  plan.Validate(trace.NumInvocations());
  Simulator simulator(config);

  // Previous invocation of the same kernel type, per invocation (-1 if
  // none): the dominant source of inherited L2 warmth, since repeated
  // launches of a kernel touch the same data region.
  std::vector<int64_t> prev_same_kernel(trace.NumInvocations(), -1);
  {
    std::unordered_map<uint32_t, uint32_t> last_of_kernel;
    for (uint32_t i = 0; i < trace.NumInvocations(); ++i) {
      const uint32_t kernel_id = trace.At(i).kernel_id;
      auto it = last_of_kernel.find(kernel_id);
      if (it != last_of_kernel.end()) prev_same_kernel[i] = it->second;
      last_of_kernel[kernel_id] = i;
    }
  }

  // Simulate each distinct invocation once, in timeline order (matching
  // the L2 state evolution a sampling-aware simulator would see).
  std::unordered_map<uint32_t, double> cycles_by_invocation;
  SampledSimResult result;
  for (uint32_t idx : plan.DistinctInvocations()) {
    if (options.flush_l2_between_kernels) {
      simulator.FlushL2();
    } else {
      // Short warmup runs (Sec. 6.2's "short warmup kernels"): the
      // previous same-kernel launch warms this kernel's data region; the
      // immediate predecessor reproduces its cache pollution.
      const int64_t same = prev_same_kernel[idx];
      const bool warm_same =
          options.warmup == WarmupPolicy::kSameKernel ||
          options.warmup == WarmupPolicy::kSameKernelThenPredecessor;
      const bool warm_pred =
          options.warmup == WarmupPolicy::kPredecessor ||
          options.warmup == WarmupPolicy::kSameKernelThenPredecessor;
      if (warm_same && same >= 0)
        (void)simulator.SimulateKernel(
            trace.At(static_cast<uint32_t>(same)), options.seed);
      if (warm_pred && idx > 0 && static_cast<int64_t>(idx) - 1 != same)
        (void)simulator.SimulateKernel(trace.At(idx - 1), options.seed);
    }
    const KernelSimResult one =
        simulator.SimulateKernel(trace.At(idx), options.seed);
    cycles_by_invocation.emplace(idx, one.cycles);
    result.simulated_cost_cycles += one.cycles;
    ++result.kernels_simulated;
  }

  for (const core::SampleEntry& entry : plan.entries)
    result.estimated_total_cycles +=
        entry.weight * cycles_by_invocation.at(entry.invocation);
  return result;
}

}  // namespace stemroot::sim
