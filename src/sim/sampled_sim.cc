#include "sim/sampled_sim.h"

#include "sim/sharded.h"

namespace stemroot::sim {

// Both drivers are thin wrappers over the sharded engine: one lane
// stepping the whole timeline in order on one Simulator is exactly the
// serial algorithm (tests/sim/determinism_test.cc pins the equivalence
// against hand-rolled serial loops), and options.shard scales it out.

TraceSimResult SimulateTraceFull(const KernelTrace& trace,
                                 const SimConfig& config,
                                 const TraceSimOptions& options) {
  return ShardedSimulateTraceFull(trace, config, options);
}

SampledSimResult SimulateSampled(const KernelTrace& trace,
                                 const core::SamplingPlan& plan,
                                 const SimConfig& config,
                                 const TraceSimOptions& options) {
  return ShardedSimulateSampled(trace, plan, config, options);
}

}  // namespace stemroot::sim
