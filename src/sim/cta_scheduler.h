/// \file
/// CTA scheduler: distributes a kernel's thread blocks across SMs and
/// decomposes the simulated SM's share into occupancy-limited waves.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/gpu_config.h"
#include "trace/kernel.h"

namespace stemroot::sim {

/// Wave decomposition for the simulated (representative) SM.
struct WavePlan {
  /// Number of warps resident in each successive wave.
  std::vector<uint32_t> wave_warps;
  /// CTAs assigned to the simulated SM in total.
  uint64_t ctas = 0;
  /// Warps per CTA for this launch.
  uint32_t warps_per_cta = 0;
};

/// Round-robin CTA distribution: SM 0 receives ceil-share of the grid;
/// waves are limited by max_warps_per_sm. Throws std::invalid_argument if
/// a single CTA exceeds the SM's warp capacity.
WavePlan PlanWaves(const LaunchConfig& launch, const SimConfig& config);

}  // namespace stemroot::sim
