/// \file
/// CTA scheduler: distributes a kernel's thread blocks across SMs and
/// decomposes the simulated SM's share into occupancy-limited waves.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/gpu_config.h"
#include "trace/kernel.h"
#include "trace/trace.h"

namespace stemroot::sim {

/// Wave decomposition for the simulated (representative) SM.
struct WavePlan {
  /// Number of warps resident in each successive wave.
  std::vector<uint32_t> wave_warps;
  /// CTAs assigned to the simulated SM in total.
  uint64_t ctas = 0;
  /// Warps per CTA for this launch.
  uint32_t warps_per_cta = 0;
};

/// Round-robin CTA distribution: SM 0 receives ceil-share of the grid;
/// waves are limited by max_warps_per_sm. Throws std::invalid_argument if
/// a single CTA exceeds the SM's warp capacity.
WavePlan PlanWaves(const LaunchConfig& launch, const SimConfig& config);

/// Kernel-affine lane partition for sharded trace simulation (DESIGN.md
/// §12): every invocation of a kernel lands on the same lane, so
/// same-kernel L2 reuse -- the dominant source of inherited warmth (see
/// SimulateSampled) -- stays lane-local. Kernels are spread over lanes by
/// longest-processing-time-first on estimated work (dynamic instruction
/// counts), ties broken by kernel id then lane index. Returns `num_lanes`
/// lists of invocation indices, each in timeline order; the union is
/// exactly [0, NumInvocations). Deterministic: depends only on the trace
/// and the lane count, never on seeds, threads, or epoch length. Throws
/// std::invalid_argument for num_lanes == 0.
std::vector<std::vector<uint32_t>> PlanShardLanes(const KernelTrace& trace,
                                                  uint32_t num_lanes);

}  // namespace stemroot::sim
