#include "sim/itrace.h"

#include <algorithm>
#include <cmath>

namespace stemroot::sim {

WarpProgram::WarpProgram(const KernelBehavior& behavior,
                         const LaunchConfig& launch, const SimConfig& config,
                         uint64_t stream_seed, uint64_t region_base,
                         uint32_t global_warp_id)
    : behavior_(behavior), config_(config),
      rng_(DeriveSeed(stream_seed, global_warp_id)) {
  const uint64_t threads = std::max<uint64_t>(1, launch.TotalThreads());
  // Thread-level instructions per thread == warp instructions per warp
  // (all lanes execute together).
  total_ = std::max<uint64_t>(1, behavior.instructions / threads);
  remaining_ = total_;

  region_base_ = region_base;
  footprint_lines_ = std::max<uint64_t>(
      1, behavior.footprint_bytes / config.line_bytes);
  // Each warp streams through its own partition interleaved with others.
  stream_pos_ = (static_cast<uint64_t>(global_warp_id) * 977) %
                footprint_lines_;
  dep_prob_ = 1.0 / std::max(1.0f, behavior.ilp);
  // Distinct lines per warp access: geometric in (1 - coalescing), as in
  // the analytic model (1 when fully coalesced, warp_size when scattered).
  avg_transactions_ = static_cast<uint32_t>(std::clamp<double>(
      std::llround(std::pow(static_cast<double>(config.warp_size),
                            1.0 - behavior.coalescing)),
      1, config.warp_size));
  // Hot set sized like the analytic model's reuse distance: a geometric
  // blend between a tight 16 KB tile (locality 1) and the full footprint
  // (locality 0). Mid-locality kernels thus reuse at distances that
  // overflow L1 but can live in L2 -- which is what makes cache-size DSE
  // variants move hit rates.
  constexpr double kTileBytes = 16.0 * 1024.0;
  const double footprint = std::max(
      kTileBytes, static_cast<double>(behavior.footprint_bytes));
  const double loc = static_cast<double>(behavior.locality);
  const double reuse_bytes = std::exp(
      (1.0 - loc) * std::log(footprint) + loc * std::log(kTileBytes));
  const size_t hot_entries = std::max<size_t>(
      8, static_cast<size_t>(reuse_bytes / config.line_bytes));
  hot_lines_.assign(hot_entries, region_base_);
  // Pre-populate the ring with a spread of footprint lines so early
  // "reuse" draws do not all alias the base line.
  for (size_t i = 0; i < hot_lines_.size(); ++i)
    hot_lines_[i] = region_base_ +
                    (i * 31 % footprint_lines_) * config.line_bytes;
}

uint64_t WarpProgram::NextAddress() {
  const bool reuse = rng_.NextBool(behavior_.locality);
  if (reuse) {
    // Revisit a recently touched line.
    return hot_lines_[rng_.NextBounded(hot_lines_.size())];
  }
  // Fresh line: advance the streaming cursor (strided, wraps around the
  // footprint).
  stream_pos_ = (stream_pos_ + 1) % footprint_lines_;
  const uint64_t addr =
      region_base_ + stream_pos_ * config_.line_bytes;
  hot_lines_[hot_cursor_] = addr;
  hot_cursor_ = (hot_cursor_ + 1) % hot_lines_.size();
  return addr;
}

bool WarpProgram::Next(WarpInstr& out) {
  if (remaining_ == 0) return false;
  --remaining_;

  out.depends_on_prev = rng_.NextBool(dep_prob_);
  out.lines.clear();

  const double u = rng_.NextDouble();
  const double mem = behavior_.mem_fraction;
  const double shared = mem + behavior_.shared_fraction;
  if (u < mem) {
    out.kind = rng_.NextBool(behavior_.store_fraction) ? OpKind::kStore
                                                       : OpKind::kLoad;
    // Coalesced base line plus scattered extras.
    const uint64_t base = NextAddress();
    out.lines.push_back(base);
    for (uint32_t t = 1; t < avg_transactions_; ++t) {
      // Scattered lanes touch unrelated lines across the footprint.
      const uint64_t line = rng_.NextBounded(footprint_lines_);
      out.lines.push_back(region_base_ + line * config_.line_bytes);
    }
  } else if (u < shared) {
    out.kind = OpKind::kSharedMem;
  } else {
    // Compute mix: branches proportional to divergence, a small SFU
    // share, FP16/FP32 per the behaviour, rest integer ALU.
    const double v = rng_.NextDouble();
    const double branch = 0.04 + 0.1 * behavior_.branch_divergence;
    if (v < branch) {
      out.kind = OpKind::kBranch;
    } else if (v < branch + 0.05) {
      out.kind = OpKind::kSfu;
    } else if (v < branch + 0.05 + behavior_.fp16_fraction) {
      out.kind = OpKind::kFp16;
    } else if (v < branch + 0.05 + behavior_.fp16_fraction +
                       behavior_.fp32_fraction) {
      out.kind = OpKind::kFp32;
    } else {
      out.kind = OpKind::kAlu;
    }
  }
  return true;
}

}  // namespace stemroot::sim
