/// \file
/// DRAM channel model: fixed access latency plus a bandwidth-limited bus
/// (token-bucket over cycles). One instance models the simulated SM's
/// 1/num_sms share of the GPU memory system.

#pragma once

#include <cstdint>

namespace stemroot::sim {

/// Bandwidth/latency DRAM model.
class DramModel {
 public:
  /// bytes_per_cycle is the bus share; latency_cycles the pin-to-pin
  /// access latency. Throws std::invalid_argument on non-positive
  /// bandwidth.
  DramModel(double bytes_per_cycle, uint32_t latency_cycles);

  /// Issue one line fetch of `bytes` at time `now`; returns the cycle at
  /// which the data arrives. The bus is serialized: concurrent requests
  /// queue behind each other.
  double Request(double now, uint32_t bytes);

  /// Total bytes transferred.
  uint64_t BytesTransferred() const { return bytes_transferred_; }

  /// Cycles the bus spent actually transferring data (sum of transfer
  /// times, excluding the fixed latency). With the serialized-bus model
  /// this is the bandwidth-bound lower bound on memory time; the sharded
  /// determinism tests compare it across pacing configurations.
  double BusyCycles() const { return busy_cycles_; }

  /// Reset queue and stats (between kernels if desired).
  void Reset();

 private:
  double bytes_per_cycle_;
  uint32_t latency_cycles_;
  double bus_free_ = 0.0;  ///< next cycle the bus can start a transfer
  uint64_t bytes_transferred_ = 0;
  double busy_cycles_ = 0.0;
};

}  // namespace stemroot::sim
