/// \file
/// Intra-kernel (wave-level) sampling — the orthogonal technique of the
/// paper's Sec. 7.3 ("kernel-level sampling is orthogonal to warp- or
/// BB-level sampling, our method can be combined with cases of few kernel
/// calls or long-running kernels"), implemented at CTA-wave granularity.
///
/// A long kernel executes many occupancy-limited waves of CTAs that behave
/// near-identically once the caches warm up. Intra-kernel sampling
/// simulates a warmup prefix plus a few measured waves and extrapolates
/// the rest:
///
///   cycles ~ simulated_prefix + mean(measured waves) * remaining_waves
///
/// Combining this with kernel-level STEM+ROOT multiplies the speedups:
/// kernel sampling prunes the launch list, wave sampling prunes each
/// surviving launch.

#pragma once

#include <cstdint>

#include "core/plan.h"
#include "sim/sampled_sim.h"
#include "sim/simulator.h"

namespace stemroot::sim {

/// Wave-sampling knobs.
struct IntraKernelOptions {
  /// Waves simulated but not used for the per-wave estimate (cache
  /// warmup inside the kernel).
  uint64_t warmup_waves = 1;
  /// Waves measured for the extrapolation basis.
  uint64_t sample_waves = 2;
  /// Kernels with at most this many waves are simulated fully (no gain).
  uint64_t min_waves_to_sample = 6;

  void Validate() const;
};

/// Result of one intra-sampled kernel simulation.
struct IntraKernelResult {
  /// Estimated total cycles of the launch (incl. launch overhead).
  double estimated_cycles = 0.0;
  /// Cycles actually simulated (prefix only).
  double simulated_cycles = 0.0;
  uint64_t waves_simulated = 0;
  uint64_t total_waves = 0;
  bool sampled = false;  ///< false when the kernel was simulated fully
};

/// Simulate one kernel with wave-level sampling on an existing Simulator
/// (so L2 state behaves exactly as in SimulateKernel).
IntraKernelResult SimulateKernelIntra(Simulator& simulator,
                                      const KernelInvocation& inv,
                                      uint64_t seed,
                                      const IntraKernelOptions& options = {});

/// Combined result over a kernel-level plan.
struct CombinedSimResult {
  double estimated_total_cycles = 0.0;  ///< weighted extrapolation
  double simulated_cost_cycles = 0.0;   ///< prefix cycles actually run
  size_t kernels_simulated = 0;
  size_t kernels_wave_sampled = 0;  ///< how many used the intra path
};

/// Kernel-level plan + intra-kernel wave sampling on every selected
/// kernel (the Sec. 7.3 combination). Warmup policy follows `trace_options`
/// exactly as SimulateSampled does.
CombinedSimResult SimulateSampledIntra(
    const KernelTrace& trace, const core::SamplingPlan& plan,
    const SimConfig& config, const TraceSimOptions& trace_options = {},
    const IntraKernelOptions& intra_options = {});

}  // namespace stemroot::sim
