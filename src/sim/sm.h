/// \file
/// Streaming multiprocessor timing model.
///
/// Event-driven at warp-instruction granularity: a min-heap orders warps
/// by readiness; each issue consumes 1/issue_width cycles of the shared
/// issue pipeline; compute latencies stall only dependent instructions;
/// memory instructions walk L1 -> L2 slice -> DRAM share with the
/// serialized-bus DRAM model. This captures the latency-hiding behaviour
/// that makes GPU kernels compute- or memory-bound without a per-cycle
/// loop (cost is O(warp instructions * log warps)).

#pragma once

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/gpu_config.h"
#include "sim/warp.h"

namespace stemroot::sim {

/// Execution statistics of one wave/kernel on the simulated SM.
struct SmStats {
  uint64_t warp_instructions = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t dram_bytes = 0;

  void Merge(const SmStats& other);
};

/// Peer-SM L2 modelling: the simulated SM is one of num_sms symmetric
/// SMs all streaming the same kernel's data region. Timing is charged
/// only for the simulated SM, but the shared L2's *content* evolves at
/// machine rate: whenever the simulated SM misses in L2, the peers are
/// statistically missing sibling lines of the same region, so `peers`
/// strided lines are inserted alongside. This both warms the L2 (a
/// kernel's footprint becomes resident after one launch, as on real
/// hardware) and pollutes it (streaming kernels evict num_sms times
/// faster).
struct PeerWarming {
  uint64_t region_base = 0;
  uint64_t footprint_lines = 1;
  uint32_t peers = 0;  ///< 0 disables peer insertion
};

/// One SM with a private L1, executing waves of warps against a shared L2
/// slice and DRAM share owned by the caller.
class SmModel {
 public:
  /// l2 and dram must outlive the SmModel.
  SmModel(const SimConfig& config, Cache* l2, DramModel* dram);

  /// Run all warps to completion starting at `start_cycle`; returns the
  /// cycle at which the last warp finishes. Stats accumulate into *stats.
  double ExecuteWave(std::vector<WarpContext>& warps, double start_cycle,
                     const PeerWarming& peer_warming, SmStats* stats);

  /// Invalidate the private L1 (fresh per kernel).
  void ResetL1();

  /// Content digest of the private L1 (see Cache::ContentDigest).
  uint64_t L1Digest() const { return l1_.ContentDigest(); }

  /// Logical footprint of the private L1 (see Cache::ApproxBytes).
  uint64_t L1ApproxBytes() const { return l1_.ApproxBytes(); }

 private:
  const SimConfig& config_;
  Cache l1_;
  Cache* l2_;
  DramModel* dram_;
};

}  // namespace stemroot::sim
