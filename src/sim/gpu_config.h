/// \file
/// Cycle-level simulator configuration (the MacSim-like substrate of the
/// paper's Sec. 5.4 DSE experiments).
///
/// The simulator models one representative SM in detail and scales by
/// symmetry: CTAs are distributed round-robin, each SM owns a private L1,
/// shares the full-capacity L2, and owns a 1/num_sms share of DRAM
/// bandwidth. This keeps full cycle simulation tractable while preserving
/// exactly the sensitivities the DSE varies: growing caches raises hit
/// rates; doubling SMs halves each SM's CTA share but also halves its
/// DRAM-bandwidth share, so memory-bound kernels do not scale -- the
/// behaviour Table 4 probes.

#pragma once

#include <cstdint>

#include "hw/gpu_spec.h"

namespace stemroot::sim {

/// Sharded trace-simulation knobs (DESIGN.md §12). The trace's SMs are
/// partitioned kernel-affinely into `sim_shards` lanes, each owning a
/// private simulator instance; lanes advance in bounded-skew epochs of
/// `epoch_cycles` simulated cycles and merge deterministically in
/// shard-index order. `sim_shards` is a *modeling* knob like num_sms --
/// changing it changes results (each lane keeps its own L2 warmth).
/// `epoch_cycles` and `sim_threads` are *pacing* knobs: any value yields
/// byte-identical results (tests/sim/determinism_test.cc pins this).
struct ShardOptions {
  uint32_t sim_shards = 1;  ///< 1 = the exact legacy serial path
  /// Synchronization window in simulated cycles. Smaller windows mean
  /// tighter lock-step (slower, never different); the default is loose
  /// enough (~2.5 kernel launches) for real overlap.
  uint64_t epoch_cycles = 4'000'000;
  int sim_threads = 0;  ///< max concurrent lanes; 0 = NumThreads()

  /// Validate; throws std::invalid_argument.
  void Validate() const;
};

/// Full simulator parameter set.
struct SimConfig {
  // Machine geometry (from GpuSpec).
  uint32_t num_sms = 46;
  uint32_t warp_size = 32;
  uint32_t max_warps_per_sm = 32;
  double clock_ghz = 1.71;
  double issue_width = 4.0;  ///< warp instructions issued per cycle per SM

  // Private L1.
  uint64_t l1_bytes = 64 * 1024;
  uint32_t l1_assoc = 4;
  uint32_t line_bytes = 128;
  uint32_t l1_latency = 32;  ///< cycles

  // Shared L2 (the simulated SM sees the full capacity; see simulator.cc).
  uint64_t l2_bytes = 4ull * 1024 * 1024;
  uint32_t l2_assoc = 16;
  uint32_t l2_latency = 190;  ///< cycles

  // DRAM.
  uint32_t dram_latency = 480;     ///< cycles
  double dram_bytes_per_cycle = 256.0;  ///< whole-GPU bus width equivalent

  // Execution pipelines (latencies in cycles).
  uint32_t alu_latency = 4;
  uint32_t fp32_latency = 4;
  uint32_t fp16_latency = 2;
  uint32_t sfu_latency = 16;
  uint32_t shmem_latency = 24;

  /// Derive a simulator config from a GpuSpec (clock converts ns
  /// latencies to cycles).
  static SimConfig FromSpec(const hw::GpuSpec& spec);

  /// DRAM bandwidth share of the simulated SM (bytes/cycle).
  double DramShareBytesPerCycle() const;

  /// Validate; throws std::invalid_argument.
  void Validate() const;
};

}  // namespace stemroot::sim
