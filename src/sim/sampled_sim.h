/// \file
/// Full vs. sampled trace simulation drivers (paper Sec. 3.5 / Fig. 5 and
/// the Table 4 / Fig. 12 DSE experiments).
///
/// Full simulation runs every invocation in timeline order on one
/// Simulator instance (L2 stays warm across kernels). Sampled simulation
/// runs only the plan's distinct invocations and extrapolates the total
/// with the plan weights -- exactly what a sampling-aware simulator does
/// with the embedded sampling information.

#pragma once

#include <vector>

#include "core/plan.h"
#include "sim/simulator.h"

namespace stemroot::sim {

/// How the sampled simulation warms microarchitectural state before
/// timing each selected kernel. Warmup of sampled GPU simulations is the
/// open problem of the paper's Sec. 6.2 ("lightweight warmup strategies,
/// such as inserting warmup instructions or short warmup kernels, may
/// offer practical benefits"); these policies implement that spectrum.
enum class WarmupPolicy {
  /// No warmup: every sampled kernel starts from whatever L2 state the
  /// previously sampled kernel left (biased cold for sparse plans).
  kNone,
  /// Replay the timeline predecessor untimed: reproduces the pollution
  /// the measured kernel inherits.
  kPredecessor,
  /// Replay the previous invocation of the same kernel untimed: warms the
  /// kernel's own data region.
  kSameKernel,
  /// Both (default): previous same-kernel launch, then the immediate
  /// predecessor -- region warmth plus realistic pollution.
  kSameKernelThenPredecessor,
};

/// Options shared by full and sampled runs.
struct TraceSimOptions {
  uint64_t seed = 1;  ///< instruction-stream seed (shared full/sampled)
  /// Flush the L2 slice before every kernel (the Sec. 6.2 extreme-case
  /// warmup experiment). Overrides the warmup policy.
  bool flush_l2_between_kernels = false;
  /// Warmup strategy for sampled simulation (ignored by full simulation,
  /// which is always naturally warm).
  WarmupPolicy warmup = WarmupPolicy::kSameKernelThenPredecessor;
  /// Lane sharding and pacing (src/sim/sharded.h). The default --
  /// sim_shards == 1 -- is the exact legacy serial path; sim_threads and
  /// epoch_cycles never change results, only wall time.
  ShardOptions shard;
};

/// Full-simulation result.
struct TraceSimResult {
  double total_cycles = 0.0;
  std::vector<double> per_invocation_cycles;  ///< timeline order
  SmStats stats;
};

/// Simulate every invocation of the trace.
TraceSimResult SimulateTraceFull(const KernelTrace& trace,
                                 const SimConfig& config,
                                 const TraceSimOptions& options = {});

/// Sampled-simulation result.
struct SampledSimResult {
  double estimated_total_cycles = 0.0;  ///< weighted extrapolation
  double simulated_cost_cycles = 0.0;   ///< cycles actually simulated
  size_t kernels_simulated = 0;
};

/// Simulate only the plan's distinct invocations and extrapolate.
SampledSimResult SimulateSampled(const KernelTrace& trace,
                                 const core::SamplingPlan& plan,
                                 const SimConfig& config,
                                 const TraceSimOptions& options = {});

}  // namespace stemroot::sim
